package biglittle_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"biglittle"
)

// The golden-master corpus pins the full simulator output — every app on
// every §V-C hotplug configuration — byte for byte. Any model change that
// moves a number shows up as a diff here; deliberate changes regenerate the
// corpus with `make golden-update` and the diff documents exactly what moved.
var updateGolden = flag.Bool("golden-update", false, "rewrite testdata/golden from current simulator output")

// goldenDur and goldenRender live in the library (GoldenDuration,
// RenderGolden) so `bldiff golden` explains corpus breaks with the exact
// same renderer this test pins.
const goldenDur = biglittle.GoldenDuration

func goldenRender(cc biglittle.CoreConfig, r biglittle.Result) string {
	return biglittle.RenderGolden(cc, r)
}

func TestGoldenMaster(t *testing.T) {
	for _, app := range biglittle.Apps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			var b strings.Builder
			fmt.Fprintf(&b, "golden master: %s, seed 1, %v per config\n", app.Name, goldenDur)
			for _, cc := range biglittle.StudyConfigs() {
				aud := biglittle.NewAuditor()
				cfg := biglittle.DefaultConfig(app)
				cfg.Duration = goldenDur
				cfg.Cores = cc
				cfg.Check = aud
				r := biglittle.Run(cfg)
				if rep := aud.Report(); !rep.Ok() {
					t.Fatalf("%s on %v violated invariants:\n%s", app.Name, cc, rep)
				}
				if vs := biglittle.CheckResult(r); len(vs) != 0 {
					t.Fatalf("%s on %v failed the result self-check: %v", app.Name, cc, vs)
				}
				b.WriteString(goldenRender(cc, r))
			}
			got := b.String()

			path := filepath.Join("testdata", "golden", app.Name+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no golden file for %s (regenerate with `make golden-update`): %v", app.Name, err)
			}
			if explain := biglittle.ExplainTextDiff(string(want), got); explain != "" {
				t.Fatalf("golden mismatch for %s: %s\n(if the model change is intentional, run `make golden-update` and commit the diff; `bldiff run` isolates the first divergent decision between two configs)",
					app.Name, explain)
			}
		})
	}
}
