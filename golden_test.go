package biglittle_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"biglittle"
)

// The golden-master corpus pins the full simulator output — every app on
// every §V-C hotplug configuration — byte for byte. Any model change that
// moves a number shows up as a diff here; deliberate changes regenerate the
// corpus with `make golden-update` and the diff documents exactly what moved.
var updateGolden = flag.Bool("golden-update", false, "rewrite testdata/golden from current simulator output")

const goldenDur = 4 * biglittle.Second

// goldenRender is a compact, fully deterministic view of one result. It
// prints through %v/%.3f only — no maps, no pointers — so equal results
// always render to equal bytes.
func goldenRender(cc biglittle.CoreConfig, r biglittle.Result) string {
	var b strings.Builder
	perf := fmt.Sprintf("fps=%.3f min=%.3f frames=%d", r.AvgFPS, r.MinFPS, r.Frames)
	if r.Metric == biglittle.Latency {
		perf = fmt.Sprintf("lat=%v worst=%v n=%d", r.MeanLatency, r.WorstLatency, r.Interactions)
	}
	fmt.Fprintf(&b, "%v: %s power=%.3fmW energy=%.3fmJ work=%.3fGc mig=%d\n",
		cc, perf, r.AvgPowerMW, r.EnergyMJ, r.TotalWorkGc, r.HMPMigrations)
	fmt.Fprintf(&b, "  tlp=%.4f idle=%.3f%% littleonly=%.3f%% big=%.3f%% lutil=%.4f butil=%.4f\n",
		r.TLP.TLP, r.TLP.IdlePct, r.TLP.LittleOnlyPct, r.TLP.BigPct, r.AvgLittleUtil, r.AvgBigUtil)
	fmt.Fprintf(&b, "  eff=[%.3f %.3f %.3f %.3f %.3f %.3f]\n",
		r.Eff[0], r.Eff[1], r.Eff[2], r.Eff[3], r.Eff[4], r.Eff[5])
	b.WriteString("  lres=")
	for i, v := range r.LittleResidency {
		fmt.Fprintf(&b, "%d:%.2f ", r.LittleFreqs[i], v)
	}
	b.WriteString("\n  bres=")
	for i, v := range r.BigResidency {
		fmt.Fprintf(&b, "%d:%.2f ", r.BigFreqs[i], v)
	}
	b.WriteString("\n")
	return b.String()
}

func TestGoldenMaster(t *testing.T) {
	for _, app := range biglittle.Apps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			var b strings.Builder
			fmt.Fprintf(&b, "golden master: %s, seed 1, %v per config\n", app.Name, goldenDur)
			for _, cc := range biglittle.StudyConfigs() {
				aud := biglittle.NewAuditor()
				cfg := biglittle.DefaultConfig(app)
				cfg.Duration = goldenDur
				cfg.Cores = cc
				cfg.Check = aud
				r := biglittle.Run(cfg)
				if rep := aud.Report(); !rep.Ok() {
					t.Fatalf("%s on %v violated invariants:\n%s", app.Name, cc, rep)
				}
				if vs := biglittle.CheckResult(r); len(vs) != 0 {
					t.Fatalf("%s on %v failed the result self-check: %v", app.Name, cc, vs)
				}
				b.WriteString(goldenRender(cc, r))
			}
			got := b.String()

			path := filepath.Join("testdata", "golden", app.Name+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no golden file for %s (regenerate with `make golden-update`): %v", app.Name, err)
			}
			if string(want) == got {
				return
			}
			wantLines := strings.Split(string(want), "\n")
			gotLines := strings.Split(got, "\n")
			for i := 0; i < len(wantLines) || i < len(gotLines); i++ {
				w, g := "", ""
				if i < len(wantLines) {
					w = wantLines[i]
				}
				if i < len(gotLines) {
					g = gotLines[i]
				}
				if w != g {
					t.Fatalf("golden mismatch for %s at line %d:\n  golden:  %s\n  current: %s\n(if the model change is intentional, run `make golden-update` and commit the diff)",
						app.Name, i+1, w, g)
				}
			}
		})
	}
}
