// Benchmarks: one per table and figure of the paper's evaluation (see
// DESIGN.md's experiment index), plus ablations for the design decisions the
// simulator makes. Each benchmark runs a shortened version of the experiment
// per iteration and reports its headline quantity via b.ReportMetric, so
// `go test -bench=. -benchmem` both times the harness and regenerates the
// key numbers.
package biglittle_test

import (
	"sync"
	"testing"
	"time"

	"biglittle"
)

// benchOpts keeps per-iteration cost low while preserving every
// experiment's structure; cmd/blreport runs the full-length versions.
var benchOpts = biglittle.ExperimentOptions{
	Duration:     4 * biglittle.Second,
	Seed:         1,
	Instructions: 80_000,
}

func BenchmarkFig2Speedup(b *testing.B) {
	var max13 float64
	for i := 0; i < b.N; i++ {
		rows := biglittle.Fig2(benchOpts)
		max13 = 0
		for _, r := range rows {
			if r.Speedup13 > max13 {
				max13 = r.Speedup13
			}
		}
	}
	b.ReportMetric(max13, "max-speedup@1.3GHz")
}

func BenchmarkFig3SpecPower(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows := biglittle.Fig3(benchOpts)
		sumL, sumB := 0.0, 0.0
		for _, r := range rows {
			sumL += r.Little13
			sumB += r.Big13
		}
		ratio = sumB / sumL
	}
	b.ReportMetric(ratio, "big/little-power@1.3GHz")
}

func BenchmarkFig4LatencyApps(b *testing.B) {
	var avgRed float64
	for i := 0; i < b.N; i++ {
		rows := biglittle.Fig4(benchOpts)
		avgRed = 0
		for _, r := range rows {
			avgRed += r.LatencyReductionPct
		}
		avgRed /= float64(len(rows))
	}
	b.ReportMetric(avgRed, "avg-latency-reduction-%")
}

func BenchmarkFig5FPSApps(b *testing.B) {
	var avgMinGain float64
	for i := 0; i < b.N; i++ {
		rows := biglittle.Fig5(benchOpts)
		avgMinGain = 0
		for _, r := range rows {
			avgMinGain += r.MinFPSGainPct
		}
		avgMinGain /= float64(len(rows))
	}
	b.ReportMetric(avgMinGain, "avg-minFPS-gain-%")
}

func BenchmarkFig6UtilPower(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		rows := biglittle.Fig6(benchOpts)
		min, max := rows[0].MW, rows[0].MW
		for _, r := range rows {
			if r.MW < min {
				min = r.MW
			}
			if r.MW > max {
				max = r.MW
			}
		}
		spread = max / min
	}
	b.ReportMetric(spread, "power-range-ratio")
}

func characterize(b *testing.B) []biglittle.Result {
	b.Helper()
	return biglittle.Characterize(benchOpts)
}

func BenchmarkTable3TLP(b *testing.B) {
	var maxTLP float64
	for i := 0; i < b.N; i++ {
		for _, r := range characterize(b) {
			if r.TLP.TLP > maxTLP {
				maxTLP = r.TLP.TLP
			}
		}
	}
	b.ReportMetric(maxTLP, "max-TLP")
}

func BenchmarkTable4TLPMatrix(b *testing.B) {
	var b1Share float64
	for i := 0; i < b.N; i++ {
		results := characterize(b)
		b1, bmore := 0.0, 0.0
		for _, r := range results {
			for l := 0; l <= 4; l++ {
				b1 += r.Matrix[1][l]
				bmore += r.Matrix[2][l] + r.Matrix[3][l] + r.Matrix[4][l]
			}
		}
		if b1+bmore > 0 {
			b1Share = 100 * b1 / (b1 + bmore)
		}
	}
	b.ReportMetric(b1Share, "single-big-core-share-%")
}

func BenchmarkTable5Efficiency(b *testing.B) {
	var lowStates float64
	for i := 0; i < b.N; i++ {
		results := characterize(b)
		lowStates = 0
		for _, r := range results {
			lowStates += r.Eff[0] + r.Eff[1]
		}
		lowStates /= float64(len(results))
	}
	b.ReportMetric(lowStates, "avg-min+<50%-share-%")
}

func BenchmarkFig7CoreConfigPerf(b *testing.B) {
	var worstDrop float64
	for i := 0; i < b.N; i++ {
		worstDrop = 0
		for _, r := range biglittle.CoreConfigs(benchOpts) {
			if r.Config.Big == 0 && r.PerfChangePct < worstDrop {
				worstDrop = r.PerfChangePct
			}
		}
	}
	b.ReportMetric(-worstDrop, "worst-little-only-perf-drop-%")
}

func BenchmarkFig8CoreConfigPower(b *testing.B) {
	var bestSaving float64
	for i := 0; i < b.N; i++ {
		bestSaving = 0
		for _, r := range biglittle.CoreConfigs(benchOpts) {
			if r.PowerSavingPct > bestSaving {
				bestSaving = r.PowerSavingPct
			}
		}
	}
	b.ReportMetric(bestSaving, "best-power-saving-%")
}

func BenchmarkFig9LittleFreq(b *testing.B) {
	var minShare float64
	for i := 0; i < b.N; i++ {
		results := characterize(b)
		minShare = 0
		for _, r := range results {
			minShare += r.LittleResidency[0] // 500 MHz bucket
		}
		minShare /= float64(len(results))
	}
	b.ReportMetric(minShare, "avg-time-at-500MHz-%")
}

func BenchmarkFig10BigFreq(b *testing.B) {
	var topShare float64
	for i := 0; i < b.N; i++ {
		results := characterize(b)
		topShare = 0
		for _, r := range results {
			n := len(r.BigResidency)
			topShare += r.BigResidency[n-1] + r.BigResidency[n-2]
		}
		topShare /= float64(len(results))
	}
	b.ReportMetric(topShare, "avg-big-time-at-top-freqs-%")
}

func BenchmarkFig11TuningPower(b *testing.B) {
	var interval60 float64
	for i := 0; i < b.N; i++ {
		sums := biglittle.SummarizeTuning(biglittle.TuningStudy(benchOpts))
		for _, s := range sums {
			if s.Tuning == "interval60" {
				interval60 = s.AvgSavingPct
			}
		}
	}
	b.ReportMetric(interval60, "interval60-avg-saving-%")
}

func BenchmarkFig12TuningLatency(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, r := range biglittle.TuningStudy(benchOpts) {
			if r.LatencyDeltaPct > worst {
				worst = r.LatencyDeltaPct
			}
		}
	}
	b.ReportMetric(worst, "worst-latency-increase-%")
}

func BenchmarkFig13TuningFPS(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, r := range biglittle.TuningStudy(benchOpts) {
			if r.AvgFPSDeltaPct < worst {
				worst = r.AvgFPSDeltaPct
			}
		}
	}
	b.ReportMetric(-worst, "worst-FPS-drop-%")
}

// --- Ablations (DESIGN.md §4) -------------------------------------------

// BenchmarkAblationSpeedup: how sensitive the Fig. 4 latency story is to the
// per-task big-core efficiency — scaling every app thread's speedup to 1
// removes the microarchitectural advantage entirely.
func BenchmarkAblationSpeedup(b *testing.B) {
	app, _ := biglittle.AppByName("encoder")
	var latBig, latFlat float64
	for i := 0; i < b.N; i++ {
		cfg := biglittle.DefaultConfig(app)
		cfg.Duration = benchOpts.Duration
		cfg.Cores, _ = biglittle.ParseCoreConfig("L1+B4")
		cfg.Sched.UpThreshold = -1
		cfg.Sched.DownThreshold = -1
		latBig = biglittle.Run(cfg).MeanLatency.Seconds()

		// Same platform but big cores clocked like little ones and no IPC
		// advantage: pin both clusters to 1.3 GHz equivalents.
		cfg2 := cfg
		cfg2.Governor = biglittle.Userspace
		cfg2.PinnedMHz = map[int]int{0: 1300, 1: 800}
		latFlat = biglittle.Run(cfg2).MeanLatency.Seconds()
	}
	b.ReportMetric(100*(latFlat/latBig-1), "slowdown-big@0.8-vs-governed-%")
}

// BenchmarkAblationHistoryWeight: the §VI-C load-history weight sweep on the
// scheduler alone — migration counts under 16/32/64 ms half-lives.
func BenchmarkAblationHistoryWeight(b *testing.B) {
	app, _ := biglittle.AppByName("eternity_warrior")
	var migrations [3]int
	for i := 0; i < b.N; i++ {
		for j, hl := range []int{16, 32, 64} {
			cfg := biglittle.DefaultConfig(app)
			cfg.Duration = benchOpts.Duration
			cfg.Sched.HalfLifeMs = hl
			migrations[j] = biglittle.Run(cfg).HMPMigrations
		}
	}
	b.ReportMetric(float64(migrations[0]), "migrations-hl16")
	b.ReportMetric(float64(migrations[1]), "migrations-hl32")
	b.ReportMetric(float64(migrations[2]), "migrations-hl64")
}

// BenchmarkAblationSampling: governor sampling interval versus reaction — a
// direct measure of the Fig. 12 responsiveness cost.
func BenchmarkAblationSampling(b *testing.B) {
	app, _ := biglittle.AppByName("bbench")
	var lat20, lat100 float64
	for i := 0; i < b.N; i++ {
		for _, s := range []int{20, 100} {
			cfg := biglittle.DefaultConfig(app)
			cfg.Duration = benchOpts.Duration
			cfg.Gov.SampleMs = s
			r := biglittle.Run(cfg)
			if s == 20 {
				lat20 = r.MeanLatency.Seconds()
			} else {
				lat100 = r.MeanLatency.Seconds()
			}
		}
	}
	b.ReportMetric(100*(lat100/lat20-1), "latency-cost-of-100ms-sampling-%")
}

// BenchmarkSingleRun times one baseline app simulation end to end.
func BenchmarkSingleRun(b *testing.B) {
	app, _ := biglittle.AppByName("fifa15")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := biglittle.DefaultConfig(app)
		cfg.Duration = benchOpts.Duration
		biglittle.Run(cfg)
	}
}

// BenchmarkDigestOff is BenchmarkSingleRun under its digest-gate name: the
// baseline the gate holds BenchmarkDigestOn against. The digest recorder's
// nil fast path must keep this identical to an undigested run (0 extra
// allocs/op budget — see BENCH_baseline.json).
func BenchmarkDigestOff(b *testing.B) {
	app, _ := biglittle.AppByName("fifa15")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := biglittle.DefaultConfig(app)
		cfg.Duration = benchOpts.Duration
		biglittle.Run(cfg)
	}
}

// BenchmarkDigestOn times the same run with a digest recorder attached at
// the default ~1k-window rate, bounding the cost of always-on cross-run
// fingerprinting.
func BenchmarkDigestOn(b *testing.B) {
	app, _ := biglittle.AppByName("fifa15")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := biglittle.DefaultConfig(app)
		cfg.Duration = benchOpts.Duration
		cfg.Digest = biglittle.NewDigestRecorder()
		biglittle.Run(cfg)
	}
}

// --- Extension studies -----------------------------------------------------

// BenchmarkExtTinyCores: the §VI-B tiny-core proposal — average power saving
// across the suite from adding a T2 cluster, with interactivity preserved.
func BenchmarkExtTinyCores(b *testing.B) {
	var avgSaving float64
	for i := 0; i < b.N; i++ {
		rows := biglittle.TinyStudy(benchOpts)
		avgSaving = 0
		for _, r := range rows {
			avgSaving += r.PowerSavingPct
		}
		avgSaving /= float64(len(rows))
	}
	b.ReportMetric(avgSaving, "avg-power-saving-%")
}

// BenchmarkExtSchedulers: §IV-A policy comparison — how much extra power the
// efficiency-based policy burns on the suite relative to HMP.
func BenchmarkExtSchedulers(b *testing.B) {
	var effPower float64
	for i := 0; i < b.N; i++ {
		effPower = 0
		n := 0
		for _, r := range biglittle.SchedulerStudy(benchOpts) {
			if r.Scheduler == "efficiency" {
				effPower += r.PowerChangePct
				n++
			}
		}
		effPower /= float64(n)
	}
	b.ReportMetric(effPower, "efficiency-policy-power-delta-%")
}

// BenchmarkExtGovernors: §IV-D comparison — PAST's average power saving (and
// implied responsiveness loss) versus the interactive governor.
func BenchmarkExtGovernors(b *testing.B) {
	var pastPower float64
	for i := 0; i < b.N; i++ {
		pastPower = 0
		n := 0
		for _, r := range biglittle.GovernorStudy(benchOpts) {
			if r.Governor == "past" {
				pastPower += r.PowerChangePct
				n++
			}
		}
		pastPower /= float64(n)
	}
	b.ReportMetric(-pastPower, "PAST-power-saving-%")
}

// BenchmarkExtSession: a three-phase usage session end to end.
func BenchmarkExtSession(b *testing.B) {
	mk := func(name string) biglittle.App {
		app, _ := biglittle.AppByName(name)
		return app
	}
	var drain float64
	for i := 0; i < b.N; i++ {
		r := biglittle.RunSession(biglittle.NewSession(
			biglittle.SessionPhase{App: mk("browser"), Duration: 3 * biglittle.Second},
			biglittle.SessionPhase{App: mk("eternity_warrior"), Duration: 3 * biglittle.Second},
			biglittle.SessionPhase{App: mk("video_player"), Duration: 3 * biglittle.Second},
		))
		drain = r.TotalDrainPct
	}
	b.ReportMetric(drain*1000, "milli-%-battery-per-9s")
}

// BenchmarkExtEDP: the energy-delay synthesis across four configurations.
func BenchmarkExtEDP(b *testing.B) {
	var l4Wins float64
	for i := 0; i < b.N; i++ {
		l4Wins = 0
		for _, r := range biglittle.EDP(benchOpts) {
			if r.Best && (r.Config == "L4" || r.Config == "L4+B1") {
				l4Wins++
			}
		}
	}
	b.ReportMetric(l4Wins, "apps-won-by-L4-or-L4+B1")
}

// BenchmarkForkSweep times a 32-point governor-tuning grid (8 sample
// intervals x 4 target loads) through the fork-accelerated lab path: one
// shared prefix warmed to 95% of the run, then 32 cheap continuations, each
// applying its tuning at the fork point. The x-vs-cold metric is the
// wall-clock ratio against the same grid run from scratch (measured once
// per process); the acceptance bar is >=5x, and the perf gate holds the
// forked path's time/op alongside it.
func BenchmarkForkSweep(b *testing.B) {
	forkJobs, coldJobs := forkSweepJobs()
	coldOnce.Do(func() {
		start := time.Now()
		r := biglittle.NewLabRunner(1, nil)
		if _, err := r.RunAll(coldJobs); err != nil {
			b.Fatal(err)
		}
		coldSweep = time.Since(start)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := biglittle.NewLabRunner(1, nil)
		if _, err := r.RunAll(forkJobs); err != nil {
			b.Fatal(err)
		}
	}
	forked := b.Elapsed() / time.Duration(b.N)
	if forked > 0 {
		b.ReportMetric(float64(coldSweep)/float64(forked), "x-vs-cold")
	}
}

var (
	coldOnce  sync.Once
	coldSweep time.Duration
)

// forkSweepJobs builds the BenchmarkForkSweep grid twice over: the
// fork-accelerated jobs and their from-scratch equivalents.
func forkSweepJobs() ([]biglittle.LabJob, []biglittle.LabJob) {
	app, _ := biglittle.AppByName("encoder")
	base := biglittle.DefaultConfig(app)
	base.Duration = benchOpts.Duration
	spec := &biglittle.LabForkSpec{Base: base, At: base.Duration / 20 * 19}
	var forkJobs, coldJobs []biglittle.LabJob
	for i := 0; i < 8; i++ {
		for j := 0; j < 4; j++ {
			cfg := base
			cfg.Gov.SampleMs = 20 + 20*i
			cfg.Gov.TargetLoad = 70 + 5*j
			coldJobs = append(coldJobs, biglittle.LabJob{Config: cfg})
			forkJobs = append(forkJobs, biglittle.LabJob{Config: cfg, Fork: spec})
		}
	}
	return forkJobs, coldJobs
}

// BenchmarkExplore times the successive-halving search over a 3072-point
// hardware-led space (cores x governor x scheduler x sampling x target
// load on fifa15) and holds it to the tentpole claim: the ladder must find
// the exact energy-delay winner the exhaustive sweep finds while
// simulating >=10x fewer nanoseconds. The exhaustive ground truth runs
// once per process; the x-sim-avoided metric is exhaustive simulated time
// over the exploration's, and the gate tracks it alongside time/op.
func BenchmarkExplore(b *testing.B) {
	space := exploreBenchSpace()
	opts := func() biglittle.ExploreOptions {
		return biglittle.ExploreOptions{
			Runner:      biglittle.NewLabRunner(1, nil),
			Objective:   biglittle.ExploreEDP,
			Eta:         4,
			Keep:        16,
			MinDuration: space.Base.Duration / 64,
		}
	}
	exhaustiveOnce.Do(func() {
		rep, err := biglittle.ExploreExhaustive(space, opts())
		if err != nil {
			b.Fatal(err)
		}
		exhaustiveWinner = rep.Winner.Index
	})
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := biglittle.Explore(space, opts())
		if err != nil {
			b.Fatal(err)
		}
		if rep.Winner.Index != exhaustiveWinner {
			b.Fatalf("explore winner [%d] %s differs from exhaustive winner [%d]",
				rep.Winner.Index, rep.Winner.Desc, exhaustiveWinner)
		}
		ratio = float64(rep.ExhaustiveNs) / float64(rep.SimulatedNs)
		if ratio < 10 {
			b.Fatalf("explore simulated only %.1fx less than exhaustive, want >=10x", ratio)
		}
	}
	b.ReportMetric(ratio, "x-sim-avoided")
}

var (
	exhaustiveOnce   sync.Once
	exhaustiveWinner int
)

// exploreBenchSpace is the BenchmarkExplore search space: dimensions with
// first-order effects (core allocation, governor, scheduler) ahead of
// governor tunables, so the winner is separated by a margin low-fidelity
// screening preserves.
func exploreBenchSpace() biglittle.ExploreSpace {
	app, _ := biglittle.AppByName("fifa15")
	base := biglittle.DefaultConfig(app)
	base.Duration = benchOpts.Duration
	return biglittle.ExploreSpace{
		Base: base,
		Dims: []biglittle.ExploreDim{
			{Key: "cores", Values: []string{"L4+B4", "L4+B2", "L4+B1", "L4", "L2+B2", "L2+B1", "L2", "L1+B1"}},
			{Key: "governor", Values: []string{"interactive", "performance", "powersave", "ondemand", "conservative", "past"}},
			{Key: "scheduler", Values: []string{"hmp", "efficiency", "parallelism", "eas"}},
			{Key: "sample-ms", Values: []string{"10", "60", "150", "400"}},
			{Key: "target-load", Values: []string{"50", "70", "90", "99"}},
		},
	}
}

// BenchmarkAblationL2Size: how much of mcf's same-frequency gap the L2-size
// difference explains.
func BenchmarkAblationL2Size(b *testing.B) {
	var collapse float64
	for i := 0; i < b.N; i++ {
		for _, r := range biglittle.CacheSweep(benchOpts) {
			if r.Workload == "mcf" {
				collapse = r.SpeedupAt[512] / r.SpeedupAt[2048]
			}
		}
	}
	b.ReportMetric(collapse, "mcf-gap-from-L2-size-x")
}
