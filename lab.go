package biglittle

import "biglittle/internal/lab"

// LabRunner is the experiment orchestrator: it executes LabJobs on a
// bounded worker pool and memoizes results in a content-addressed on-disk
// cache, so warm re-runs of the same configuration skip simulation. Set one
// as ExperimentOptions.Runner to parallelize and cache the Fig*/Table*
// drivers; the zero value runs with GOMAXPROCS workers and no cache.
// Attach a *slog.Logger to Log for structured sweep progress (per-job
// transitions, completed/total, jobs/sec, ETA — what the experiment
// commands' -v flag does).
type LabRunner = lab.Runner

// LabJob is one declarative experiment for a LabRunner: a fully resolved
// Config plus optional fingerprint salt, a per-job Prepare hook, and an
// optional fork spec for snapshot acceleration.
type LabJob = lab.Job

// LabForkSpec names the shared warmed prefix of a fork-accelerated LabJob:
// the base config to run and the fork time. Jobs sharing a (Base, At) share
// one prefix simulation (see DESIGN.md §9).
type LabForkSpec = lab.ForkSpec

// LabCache is the content-addressed result store backing warm re-runs.
type LabCache = lab.Cache

// LabStats counts what a LabRunner did: jobs, cache hits and misses,
// simulations, results stored to the cache, retries, failures, and audit
// outcomes. Every field mirrors into a telemetry counter of the same
// meaning (lab_jobs, lab_cache_hits, ... lab_audit_failures) when a
// collector is attached to the runner.
type LabStats = lab.Stats

// LabEntry describes one cached result (what `bllab ls` prints).
type LabEntry = lab.Entry

// NewLabRunner returns a runner with the given worker count (<=0 for
// GOMAXPROCS) and cache (nil to disable memoization).
func NewLabRunner(workers int, cache *LabCache) *LabRunner { return lab.New(workers, cache) }

// OpenLabCache opens (creating if needed) the result cache rooted at dir;
// "" uses DefaultLabCacheDir.
func OpenLabCache(dir string) (*LabCache, error) { return lab.Open(dir) }

// DefaultLabCacheDir returns the default cache root, the OS equivalent of
// ~/.cache/biglittle.
func DefaultLabCacheDir() (string, error) { return lab.DefaultCacheDir() }

// LabCodeVersion identifies the simulator build that keys cached results;
// results from other versions are never served.
func LabCodeVersion() string { return lab.CodeVersion() }

// LabFingerprint returns the content fingerprint a runner would cache the
// job under, and whether the job is cacheable at all (jobs carrying live
// observers or an unnamed custom platform are not).
func LabFingerprint(job LabJob) (string, bool) { return lab.Fingerprint(job) }
