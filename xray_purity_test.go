package biglittle_test

import (
	"testing"

	"biglittle"
)

// TestXrayPureObserver pins the acceptance criterion that the causal tracer
// never perturbs a simulation: a golden-corpus config run with a tracer
// attached must render byte-identically to the same run without one, while
// the traced run actually records decision spans with candidates, rejection
// reasons, and causal links.
func TestXrayPureObserver(t *testing.T) {
	app, err := biglittle.AppByName("bbench")
	if err != nil {
		t.Fatal(err)
	}
	run := func(xr *biglittle.Xray) string {
		cfg := biglittle.DefaultConfig(app)
		cfg.Duration = goldenDur
		cfg.Xray = xr
		return goldenRender(cfg.Cores, biglittle.Run(cfg))
	}

	plain := run(nil)
	xr := biglittle.NewXray()
	traced := run(xr)
	if plain != traced {
		t.Fatalf("tracer perturbed the simulation:\n--- without xray ---\n%s\n--- with xray ---\n%s", plain, traced)
	}

	if xr.Len() == 0 {
		t.Fatal("traced run recorded no spans")
	}
	d := xr.Dump()
	wakes := d.ByKind(biglittle.XrayKindWake)
	if len(wakes) == 0 {
		t.Fatal("no wake spans recorded")
	}
	// At least one span must carry a full decision record: inputs,
	// candidates, a chosen one, and a rejected one with a reason.
	full := false
	for _, s := range wakes {
		chosen, rejected := false, false
		for _, c := range s.Candidates {
			if c.Rejected == "" {
				chosen = true
			} else {
				rejected = true
			}
		}
		if len(s.Inputs) > 0 && chosen && rejected {
			full = true
			break
		}
	}
	if !full {
		t.Fatal("no wake span carries inputs + chosen + rejected candidates")
	}
	// And the causal links must connect: some span must have a retained
	// parent (e.g. a governor step caused by a placement).
	linked := false
	for _, s := range d.Spans {
		if s.Parent >= 0 {
			if _, ok := d.Get(s.Parent); ok {
				linked = true
				break
			}
		}
	}
	if !linked {
		t.Fatal("no span is causally linked to a retained parent")
	}
}
