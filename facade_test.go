package biglittle_test

import (
	"strings"
	"testing"

	"biglittle"
)

// quick options exercise every facade driver end to end at minimal cost.
var quick = biglittle.ExperimentOptions{Duration: 2 * biglittle.Second, Seed: 1, Instructions: 30_000}

func TestFacadeDriversRender(t *testing.T) {
	if testing.Short() {
		t.Skip("facade sweep")
	}
	checks := map[string]func() string{
		"fig2":       func() string { return biglittle.RenderFig2(biglittle.Fig2(quick)) },
		"fig3":       func() string { return biglittle.RenderFig3(biglittle.Fig3(quick)) },
		"fig4":       func() string { return biglittle.RenderFig4(biglittle.Fig4(quick)) },
		"fig5":       func() string { return biglittle.RenderFig5(biglittle.Fig5(quick)) },
		"tuning":     func() string { return biglittle.RenderTuning(biglittle.TuningStudy(quick)) },
		"coreconfig": func() string { return biglittle.RenderCoreConfigs(biglittle.CoreConfigs(quick)) },
		"tiny":       func() string { return biglittle.RenderTiny(biglittle.TinyStudy(quick)) },
		"sched":      func() string { return biglittle.RenderSchedulers(biglittle.SchedulerStudy(quick)) },
		"gov":        func() string { return biglittle.RenderGovernors(biglittle.GovernorStudy(quick)) },
		"idle":       func() string { return biglittle.RenderIdle(biglittle.IdleStudy(quick)) },
		"battery":    func() string { return biglittle.RenderBattery(biglittle.BatteryStudy(quick)) },
		"multitask":  func() string { return biglittle.RenderMultitask(biglittle.MultitaskStudy(quick)) },
		"seeds":      func() string { return biglittle.RenderSeedStats(biglittle.SeedStats(quick, 2)) },
		"pred":       func() string { return biglittle.RenderPredictors(biglittle.PredictorStudy(quick)) },
		"edp":        func() string { return biglittle.RenderEDP(biglittle.EDP(quick)) },
		"fidelity":   func() string { return biglittle.RenderFidelity(biglittle.Fidelity(quick)) },
	}
	for name, fn := range checks {
		out := fn()
		if len(out) == 0 || !strings.Contains(out, "\n") {
			t.Errorf("%s: empty render", name)
		}
	}
}

func TestFacadeCharacterizeAndResidency(t *testing.T) {
	results := biglittle.Characterize(quick)
	if len(results) != 12 {
		t.Fatalf("%d results", len(results))
	}
	for _, render := range []string{
		biglittle.RenderTable3(results),
		biglittle.RenderTable4(results[0]),
		biglittle.RenderTable5(results),
		biglittle.RenderLittleResidency(results),
		biglittle.RenderBigResidency(results),
	} {
		if len(render) == 0 {
			t.Fatal("empty render")
		}
	}
}

func TestFacadeSession(t *testing.T) {
	app, _ := biglittle.AppByName("youtube")
	r := biglittle.RunSession(biglittle.NewSession(
		biglittle.SessionPhase{App: app, Duration: 2 * biglittle.Second},
	))
	if len(r.Phases) != 1 || r.TotalEnergyJ <= 0 {
		t.Fatalf("session %+v", r)
	}
	if !strings.Contains(biglittle.RenderSession(r), "youtube") {
		t.Fatal("render")
	}
	if biglittle.GalaxyS5Pack().HoursAt(r.AvgPowerMW) <= 0 {
		t.Fatal("battery estimate")
	}
}

func TestFacadeThermalAndStress(t *testing.T) {
	cfg := biglittle.DefaultConfig(biglittle.Stress(4))
	cfg.Duration = 10 * biglittle.Second
	par := biglittle.DefaultThermal()
	cfg.Thermal = &par
	r := biglittle.Run(cfg)
	if r.MaxTempC <= par.AmbientC {
		t.Fatalf("stress never heated the die (%.1fC)", r.MaxTempC)
	}
	if r.TotalWorkGc <= 0 {
		t.Fatal("no work")
	}
}

func TestFacadeTraceAttach(t *testing.T) {
	app, _ := biglittle.AppByName("angry_bird")
	cfg := biglittle.DefaultConfig(app)
	cfg.Duration = 2 * biglittle.Second
	var rec *biglittle.TraceRecorder
	cfg.OnSystem = func(sys *biglittle.SchedSystem) {
		rec = biglittle.AttachTrace(sys, 0, biglittle.Second)
	}
	biglittle.Run(cfg)
	if rec == nil || len(rec.Samples) == 0 {
		t.Fatal("trace recorder captured nothing")
	}
	if out := rec.Render(80); !strings.Contains(out, "cpu0") {
		t.Fatal("trace render")
	}
	if data, err := rec.ChromeTrace(); err != nil || len(data) == 0 {
		t.Fatalf("chrome trace: %v", err)
	}
}
