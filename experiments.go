package biglittle

import (
	"biglittle/internal/analysis"
	"biglittle/internal/apps"
	"biglittle/internal/platform"
	"biglittle/internal/power"
)

// ExperimentOptions scale the paper-reproduction drivers; the zero value
// uses the paper-faithful defaults (30 s per app run, full SPEC traces,
// seed 1).
type ExperimentOptions = analysis.Options

// Experiment row types, one per paper artifact.
type (
	// Fig2Row is one workload's speedup bars in Figure 2.
	Fig2Row = analysis.Fig2Row
	// Fig3Row is one workload's power bars in Figure 3.
	Fig3Row = analysis.Fig3Row
	// ClusterCompareRow is one app's point in Figure 4 or 5.
	ClusterCompareRow = analysis.ClusterCompareRow
	// Fig6Row is one (core type, frequency, utilization) power sample.
	Fig6Row = analysis.Fig6Row
	// CoreConfigRow is one app × hotplug-configuration cell of Figures 7/8.
	CoreConfigRow = analysis.CoreConfigRow
	// TuningRow is one app × governor/HMP-parameter cell of Figures 11-13.
	TuningRow = analysis.TuningRow
	// TuningSummary aggregates TuningRows into Figure 11's bars.
	TuningSummary = analysis.TuningSummary
	// Tuning is one of the eight §VI-C parameter configurations.
	Tuning = analysis.Tuning
)

// Fig2 reproduces Figure 2: SPEC speedups of the big core at 1.9/1.3/0.8 GHz
// over the little core at 1.3 GHz.
func Fig2(o ExperimentOptions) []Fig2Row { return analysis.Fig2(o) }

// Fig3 reproduces Figure 3: whole-system power for the SPEC workloads.
func Fig3(o ExperimentOptions) []Fig3Row { return analysis.Fig3(o) }

// Fig4 reproduces Figure 4: latency and power on 4 big versus 4 little
// cores for the latency-oriented apps.
func Fig4(o ExperimentOptions) []ClusterCompareRow { return analysis.Fig4(o) }

// Fig5 reproduces Figure 5: FPS and power on 4 big versus 4 little cores
// for the FPS-oriented apps.
func Fig5(o ExperimentOptions) []ClusterCompareRow { return analysis.Fig5(o) }

// Fig6 reproduces Figure 6: power versus utilization per core type and
// frequency, via the duty-cycle microbenchmark.
func Fig6(o ExperimentOptions) []Fig6Row { return analysis.Fig6(o) }

// Characterize runs every app on the baseline configuration, backing
// Tables III-V and Figures 9/10; index the returned Results' TLP, Matrix,
// Eff, and residency fields.
func Characterize(o ExperimentOptions) []Result { return analysis.Characterize(o) }

// CoreConfigs reproduces Figures 7/8: every app across the seven §V-C
// hotplug combinations versus the L4+B4 baseline.
func CoreConfigs(o ExperimentOptions) []CoreConfigRow { return analysis.CoreConfigs(o) }

// Tunings returns the paper's eight governor/HMP parameter variations.
func Tunings() []Tuning { return analysis.Tunings() }

// TuningStudy reproduces Figures 11-13: every app under the eight
// parameter configurations versus the baseline.
func TuningStudy(o ExperimentOptions) []TuningRow { return analysis.TuningStudy(o) }

// SummarizeTuning computes Figure 11's per-configuration aggregates.
func SummarizeTuning(rows []TuningRow) []TuningSummary { return analysis.SummarizeTuning(rows) }

// Renderers format experiment rows the way the paper presents them.
func RenderFig2(rows []Fig2Row) string              { return analysis.RenderFig2(rows) }
func RenderFig3(rows []Fig3Row) string              { return analysis.RenderFig3(rows) }
func RenderFig4(rows []ClusterCompareRow) string    { return analysis.RenderFig4(rows) }
func RenderFig5(rows []ClusterCompareRow) string    { return analysis.RenderFig5(rows) }
func RenderFig6(rows []Fig6Row) string              { return analysis.RenderFig6(rows) }
func RenderTable3(results []Result) string          { return analysis.RenderTable3(results) }
func RenderTable4(r Result) string                  { return analysis.RenderTable4(r) }
func RenderTable5(results []Result) string          { return analysis.RenderTable5(results) }
func RenderCoreConfigs(rows []CoreConfigRow) string { return analysis.RenderCoreConfigs(rows) }
func RenderTuning(rows []TuningRow) string          { return analysis.RenderTuning(rows) }

// RenderLittleResidency formats Figure 9 (little-cluster frequency
// distribution) from Characterize results.
func RenderLittleResidency(results []Result) string {
	return analysis.RenderResidency(results, platform.Little)
}

// RenderBigResidency formats Figure 10 (big-cluster frequency distribution).
func RenderBigResidency(results []Result) string {
	return analysis.RenderResidency(results, platform.Big)
}

// TinyRow is one app's cell in the tiny-core extension study.
type TinyRow = analysis.TinyRow

// TinyStudy evaluates the paper's §VI-B proposal — adding a cluster of two
// tiny cores to absorb "min"-state loads — across all twelve apps.
// See platform notes in DESIGN.md: tiny-tier placement is gated on each
// task's burst footprint (small-task packing).
func TinyStudy(o ExperimentOptions) []TinyRow { return analysis.TinyStudy(o) }

// RenderTiny formats the tiny-core extension study.
func RenderTiny(rows []TinyRow) string { return analysis.RenderTiny(rows) }

// SchedulerRow is one app × scheduling-policy cell of the §IV-A comparison.
type SchedulerRow = analysis.SchedulerRow

// SchedulerStudy compares utilization-based HMP with the efficiency-based
// and parallelism-aware policies of §IV-A across all twelve apps.
func SchedulerStudy(o ExperimentOptions) []SchedulerRow { return analysis.SchedulerStudy(o) }

// RenderSchedulers formats the scheduling-policy comparison.
func RenderSchedulers(rows []SchedulerRow) string { return analysis.RenderSchedulers(rows) }

// GovernorRow is one app × governor cell of the §IV-D comparison.
type GovernorRow = analysis.GovernorRow

// GovernorStudy compares the ondemand, conservative, PAST, and performance
// governors against the interactive baseline across all twelve apps.
func GovernorStudy(o ExperimentOptions) []GovernorRow { return analysis.GovernorStudy(o) }

// RenderGovernors formats the governor comparison.
func RenderGovernors(rows []GovernorRow) string { return analysis.RenderGovernors(rows) }

// IdleRow is one app's cell in the deep-idle (cpuidle) study.
type IdleRow = analysis.IdleRow

// IdleStudy quantifies the cpuidle trade-off: enabling a deep cluster-sleep
// state saves idle power but charges an exit latency on wakes.
func IdleStudy(o ExperimentOptions) []IdleRow { return analysis.IdleStudy(o) }

// RenderIdle formats the deep-idle study.
func RenderIdle(rows []IdleRow) string { return analysis.RenderIdle(rows) }

// ThermalRow is one (app, mapping) cell of the sustained-load thermal study.
type ThermalRow = analysis.ThermalRow

// ThermalStudy runs the CPU-heaviest apps plus a synthetic stress test for
// an extended duration with the thermal model enabled: mobile interactive
// apps never sustain enough power to throttle, while the stress load trips
// the throttle and the emergency big-core hotplug.
func ThermalStudy(o ExperimentOptions) []ThermalRow { return analysis.ThermalStudy(o) }

// RenderThermal formats the thermal study.
func RenderThermal(rows []ThermalRow) string { return analysis.RenderThermal(rows) }

// BatteryRow estimates one app's battery life on the paper's device.
type BatteryRow = analysis.BatteryRow

// BatteryStudy converts each app's average power into Galaxy S5 battery-life
// estimates with per-thread energy attribution.
func BatteryStudy(o ExperimentOptions) []BatteryRow { return analysis.BatteryStudy(o) }

// RenderBattery formats the battery study.
func RenderBattery(rows []BatteryRow) string { return analysis.RenderBattery(rows) }

// MultitaskRow compares a foreground app alone versus with a background app.
type MultitaskRow = analysis.MultitaskRow

// MultitaskStudy evaluates foreground+background app combinations.
func MultitaskStudy(o ExperimentOptions) []MultitaskRow { return analysis.MultitaskStudy(o) }

// RenderMultitask formats the multitasking study.
func RenderMultitask(rows []MultitaskRow) string { return analysis.RenderMultitask(rows) }

// SeedStatsRow aggregates one app's metrics over several workload seeds.
type SeedStatsRow = analysis.SeedStatsRow

// SeedStats quantifies run-to-run variation: every app re-run under n
// distinct seeds, reporting mean ± std and range per metric.
func SeedStats(o ExperimentOptions, n int) []SeedStatsRow { return analysis.SeedStats(o, n) }

// RenderSeedStats formats the seed-variation study.
func RenderSeedStats(rows []SeedStatsRow) string { return analysis.RenderSeedStats(rows) }

// Composite builds a multitasking scenario: the foreground app's metrics
// with background apps' demand added.
func Composite(name string, foreground App, background ...App) App {
	return apps.Composite(name, foreground, background...)
}

// PredictorRow holds one workload's misprediction rates per predictor class.
type PredictorRow = analysis.PredictorRow

// PredictorStudy measures bimodal (A7-class) and tournament (A15-class)
// branch predictors over structured branch traces, validating the uarch
// model's PredictorFactor.
func PredictorStudy(o ExperimentOptions) []PredictorRow { return analysis.PredictorStudy(o) }

// RenderPredictors formats the predictor validation study.
func RenderPredictors(rows []PredictorRow) string { return analysis.RenderPredictors(rows) }

// FidelityRow quantifies one app's distance from the paper's published
// Tables III and IV.
type FidelityRow = analysis.FidelityRow

// Fidelity scores the default characterization against the paper's
// published numbers: absolute Table III errors plus the total-variation
// distance between simulated and published Table IV distributions.
func Fidelity(o ExperimentOptions) []FidelityRow { return analysis.Fidelity(o) }

// RenderFidelity formats the fidelity scoring.
func RenderFidelity(rows []FidelityRow) string { return analysis.RenderFidelity(rows) }

// EDPRow is one app × configuration energy-delay cell.
type EDPRow = analysis.EDPRow

// EDP evaluates the energy-delay product of every app across little-only,
// single-big, full, and tiny-extended configurations.
func EDP(o ExperimentOptions) []EDPRow { return analysis.EDP(o) }

// RenderEDP formats the energy-delay study.
func RenderEDP(rows []EDPRow) string { return analysis.RenderEDP(rows) }

// CacheSweepRow is one workload's speedup across little-L2 capacities.
type CacheSweepRow = analysis.CacheSweepRow

// CacheSweep ablates the little cluster's L2 capacity, probing the paper's
// §III-A attribution of the big-core speedup spread to the 2MB/512KB gap.
func CacheSweep(o ExperimentOptions) []CacheSweepRow { return analysis.CacheSweep(o) }

// RenderCacheSweep formats the L2-size ablation.
func RenderCacheSweep(rows []CacheSweepRow) string { return analysis.RenderCacheSweep(rows) }

// Findings distills the paper's five headline conclusions with measured
// numbers.
type Findings = analysis.Findings

// Summarize runs the headline experiments and assembles the findings.
func Summarize(o ExperimentOptions) Findings { return analysis.Summarize(o) }

// RenderSummary formats the findings as prose.
func RenderSummary(f Findings) string { return analysis.RenderSummary(f) }

// CrossPlatformRow compares one app across SoC presets.
type CrossPlatformRow = analysis.CrossPlatformRow

// CrossPlatform runs the suite on the Exynos 5422 and a Snapdragon
// 810-class SoC with the identical kernel stack.
func CrossPlatform(o ExperimentOptions) []CrossPlatformRow { return analysis.CrossPlatform(o) }

// RenderCrossPlatform formats the cross-SoC comparison.
func RenderCrossPlatform(rows []CrossPlatformRow) string { return analysis.RenderCrossPlatform(rows) }

// Snapdragon810 returns the alternative SoC preset for Config.Platform; use
// with Snapdragon810Power.
func Snapdragon810() *platform.SoC { return platform.Snapdragon810() }

// Snapdragon810Power returns the matching power model.
func Snapdragon810Power() PowerParams { return power.Snapdragon810Params() }
