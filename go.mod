module biglittle

go 1.22
