package biglittle_test

import (
	"testing"

	"biglittle"
)

// forensicsConfig is the seeded A/B pair base: the paper's bbench baseline
// at a short duration (long enough to cross HMP migration activity).
func forensicsConfig(t *testing.T) biglittle.Config {
	t.Helper()
	app, err := biglittle.AppByName("bbench")
	if err != nil {
		t.Fatal(err)
	}
	cfg := biglittle.DefaultConfig(app)
	cfg.Duration = 2 * biglittle.Second
	return cfg
}

// Digest recording must be a pure observer: a digested run renders to the
// exact bytes an undigested run does.
func TestDigestPureObserver(t *testing.T) {
	cfg := forensicsConfig(t)
	plain := biglittle.RenderGolden(cfg.Cores, biglittle.Run(cfg))

	cfg2 := forensicsConfig(t)
	cfg2.Digest = biglittle.NewDigestRecorder()
	cfg2.Digest.FullFrom = 0
	cfg2.Digest.FullTo = cfg2.Duration // full-rate capture everywhere: worst case
	digested := biglittle.RenderGolden(cfg2.Cores, biglittle.Run(cfg2))

	if explain := biglittle.ExplainTextDiff(plain, digested); explain != "" {
		t.Fatalf("digest recording changed simulator output: %s", explain)
	}
	if ch := cfg2.Digest.Chain(); len(ch.Digests) == 0 {
		t.Fatal("recorder attached but recorded no windows")
	}
}

// Two runs of the same config must produce identical digest chains — the
// fingerprint property every cross-run comparison rests on.
func TestDigestChainsDeterministic(t *testing.T) {
	chain := func() biglittle.DigestChain {
		cfg := forensicsConfig(t)
		cfg.Digest = biglittle.NewDigestRecorder()
		biglittle.Run(cfg)
		return cfg.Digest.Chain()
	}
	c1, c2 := chain(), chain()
	if i, err := biglittle.FirstDivergentWindow(c1, c2); err != nil || i != -1 {
		t.Fatalf("same config diverged at window %d (%v)", i, err)
	}
	if c1.Fingerprint() != c2.Fingerprint() || len(c1.Digests) == 0 {
		t.Fatalf("fingerprints differ or chain empty: %016x vs %016x (%d windows)",
			c1.Fingerprint(), c2.Fingerprint(), len(c1.Digests))
	}
}

func TestDiffRunsIdentical(t *testing.T) {
	rep, err := biglittle.DiffRuns(forensicsConfig(t), forensicsConfig(t), biglittle.DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical {
		t.Fatalf("identical configs reported divergent at window %d", rep.DivergentWindow)
	}
	if rep.FingerprintA != rep.FingerprintB {
		t.Fatal("identical runs with different fingerprints")
	}
	if len(rep.ResultDeltas) != 0 {
		t.Fatalf("identical runs with result deltas: %v", rep.ResultDeltas)
	}
}

// The acceptance pair: two configs differing only in the HMP up-threshold.
// DiffRuns must locate the exact first divergent decision, verified against
// a hand-derived xray comparison and causal chain built directly from the
// raw dumps — no delta machinery involved on the "hand" side.
func TestDiffRunsFindsHMPThresholdDivergence(t *testing.T) {
	a := forensicsConfig(t)
	b := forensicsConfig(t)
	b.Sched.UpThreshold = 350

	rep, err := biglittle.DiffRuns(a, b, biglittle.DiffOptions{
		Tol: biglittle.DiffTolerance{Rel: 1e-12}, LabelA: "up=700", LabelB: "up=350"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Identical {
		t.Fatal("threshold change produced identical runs")
	}
	if rep.DivergentWindow < 0 || rep.SpanIndex < 0 {
		t.Fatalf("divergence not located: window %d, span %d", rep.DivergentWindow, rep.SpanIndex)
	}

	// Hand-derive the first divergent decision from scratch: run both sides
	// with an unbounded tracer and scan the streams manually.
	trace := func(cfg biglittle.Config) *biglittle.XrayDump {
		xr := biglittle.NewXray()
		xr.MaxSpans = -1
		cfg.Xray = xr
		biglittle.Run(cfg)
		d := xr.Dump()
		return &d
	}
	da, db := trace(a), trace(b)
	hand := -1
	n := len(da.Spans)
	if len(db.Spans) < n {
		n = len(db.Spans)
	}
	for i := 0; i < n; i++ {
		if !da.Spans[i].SameDecision(db.Spans[i]) {
			hand = i
			break
		}
	}
	if hand < 0 && len(da.Spans) != len(db.Spans) {
		hand = n
	}
	if hand < 0 {
		t.Fatal("hand scan found no decision divergence")
	}
	if rep.SpanIndex != hand {
		t.Fatalf("DiffRuns span index %d != hand-derived %d", rep.SpanIndex, hand)
	}
	if rep.SpanA == nil || hand >= len(da.Spans) {
		t.Fatal("side A has no span at the divergence index")
	}
	hs := da.Spans[hand]
	if !rep.SpanA.SameDecision(hs) || rep.SpanA.ID != hs.ID {
		t.Fatalf("reported span %+v != hand-derived %+v", rep.SpanA, hs)
	}

	// The divergent decision cannot postdate the divergent state window:
	// state divergence is caused by a decision at or before it.
	if rep.SpanA.At >= rep.WindowEnd {
		t.Fatalf("divergent decision at %v after window end %v", rep.SpanA.At, rep.WindowEnd)
	}

	// Hand-derive the causal chain by walking raw parent links.
	var handChain []int64
	for id := hs.ID; id >= 0; {
		s, ok := da.Get(id)
		if !ok {
			break
		}
		handChain = append([]int64{s.ID}, handChain...)
		id = s.Parent
	}
	if len(rep.ChainA) != len(handChain) {
		t.Fatalf("chain length %d != hand-derived %d", len(rep.ChainA), len(handChain))
	}
	for i, s := range rep.ChainA {
		if s.ID != handChain[i] {
			t.Fatalf("chain[%d] = span %d, hand-derived %d", i, s.ID, handChain[i])
		}
	}

	// The two sides disagreed on the threshold input, and the end metrics
	// moved: both must be visible in the report.
	if len(biglittle.SignificantDeltas(rep.ResultDeltas)) == 0 {
		t.Fatal("no significant metric deltas followed the divergence")
	}
	if got := rep.Render(); got == "" || len(got) < 100 {
		t.Fatalf("render too short: %q", got)
	}
}

func TestDiffRunsRejectsBadInputs(t *testing.T) {
	a := forensicsConfig(t)
	b := forensicsConfig(t)
	b.Duration = biglittle.Second
	if _, err := biglittle.DiffRuns(a, b, biglittle.DiffOptions{}); err == nil {
		t.Fatal("unequal durations must error")
	}
	c := forensicsConfig(t)
	c.Xray = biglittle.NewXray()
	if _, err := biglittle.DiffRuns(c, forensicsConfig(t), biglittle.DiffOptions{}); err == nil {
		t.Fatal("config with a caller observer must error")
	}
}
