package biglittle

import (
	"fmt"
	"strings"

	"biglittle/internal/delta"
	"biglittle/internal/event"
	"biglittle/internal/profile"
	"biglittle/internal/xray"
)

// DigestRecorder folds a rolling hash of simulator state into chained
// per-window digests — the run's fingerprint and the substrate cross-run
// diffing bisects. Set one as Config.Digest (or SessionConfig.Digest). Like
// the other observers it is pure: a digested run produces byte-identical
// results, and nil disables recording at zero cost.
type DigestRecorder = delta.Recorder

// DigestChain is a sealed digest chain: one cumulative digest per window.
type DigestChain = delta.Chain

// DigestStep is one full-rate state capture inside the recorder's
// [FullFrom, FullTo) range.
type DigestStep = delta.Step

// FieldDelta is one differing field between two structurally diffed values.
type FieldDelta = delta.FieldDelta

// DiffTolerance marks when a numeric difference counts as significant.
type DiffTolerance = delta.Tolerance

// NewDigestRecorder returns a recorder with the default ~1k-window chain.
func NewDigestRecorder() *DigestRecorder { return &delta.Recorder{} }

// FirstDivergentWindow returns the first window where two digest chains
// disagree, or -1 when one is a prefix of the other.
func FirstDivergentWindow(a, b DigestChain) (int, error) {
	return delta.FirstDivergentWindow(a, b)
}

// DiffValues structurally diffs two values of the same type (results,
// snapshots, steps), returning every differing exported field with numeric
// differences marked for significance against tol.
func DiffValues(a, b any, tol DiffTolerance) []FieldDelta { return delta.Diff(a, b, tol) }

// SignificantDeltas filters a delta list down to the significant entries.
func SignificantDeltas(ds []FieldDelta) []FieldDelta { return delta.Significant(ds) }

// DiffSummary renders up to max deltas one per line ("(no differences)" for
// an empty list; max <= 0 prints all).
func DiffSummary(ds []FieldDelta, max int) string { return delta.Summarize(ds, max) }

// DiffProfiles diffs two attribution snapshots with tasks aligned by name.
func DiffProfiles(a, b ProfileSnapshot, tol DiffTolerance) []FieldDelta {
	return delta.DiffProfiles(a, b, tol)
}

// FirstDivergentXraySpan aligns two span streams and returns the index of
// the first pair that is not the same decision (span identity and
// provenance ignored), or -1, false for identical decision sequences.
func FirstDivergentXraySpan(a, b []XraySpan) (int, bool) { return delta.FirstDivergentSpan(a, b) }

// DiffXraySpanProvenance reports the inputs and candidate-table differences
// of an aligned span pair — the "why" behind a divergent decision.
func DiffXraySpanProvenance(a, b XraySpan, tol DiffTolerance) []FieldDelta {
	return delta.DiffSpanProvenance(a, b, tol)
}

// ExplainTextDiff names the first divergence between two rendered texts at
// line and field granularity ("" when identical) — what golden-master
// failures and bldiff golden print instead of an opaque byte mismatch.
func ExplainTextDiff(want, got string) string { return delta.ExplainTextDiff(want, got) }

// GoldenDuration is the per-config duration the golden-master corpus pins.
const GoldenDuration = 4 * Second

// RenderGolden is the golden corpus's compact, fully deterministic view of
// one result. It prints through %v/%.3f only — no maps, no pointers — so
// equal results always render to equal bytes. golden_test.go and `bldiff
// golden` share this renderer, keeping the corpus and the forensic tool
// locked to one format.
func RenderGolden(cc CoreConfig, r Result) string {
	var b strings.Builder
	perf := fmt.Sprintf("fps=%.3f min=%.3f frames=%d", r.AvgFPS, r.MinFPS, r.Frames)
	if r.Metric == Latency {
		perf = fmt.Sprintf("lat=%v worst=%v n=%d", r.MeanLatency, r.WorstLatency, r.Interactions)
	}
	fmt.Fprintf(&b, "%v: %s power=%.3fmW energy=%.3fmJ work=%.3fGc mig=%d\n",
		cc, perf, r.AvgPowerMW, r.EnergyMJ, r.TotalWorkGc, r.HMPMigrations)
	fmt.Fprintf(&b, "  tlp=%.4f idle=%.3f%% littleonly=%.3f%% big=%.3f%% lutil=%.4f butil=%.4f\n",
		r.TLP.TLP, r.TLP.IdlePct, r.TLP.LittleOnlyPct, r.TLP.BigPct, r.AvgLittleUtil, r.AvgBigUtil)
	fmt.Fprintf(&b, "  eff=[%.3f %.3f %.3f %.3f %.3f %.3f]\n",
		r.Eff[0], r.Eff[1], r.Eff[2], r.Eff[3], r.Eff[4], r.Eff[5])
	b.WriteString("  lres=")
	for i, v := range r.LittleResidency {
		fmt.Fprintf(&b, "%d:%.2f ", r.LittleFreqs[i], v)
	}
	b.WriteString("\n  bres=")
	for i, v := range r.BigResidency {
		fmt.Fprintf(&b, "%d:%.2f ", r.BigFreqs[i], v)
	}
	b.WriteString("\n")
	return b.String()
}

// DiffOptions tunes a DiffRuns comparison.
type DiffOptions struct {
	// Windows is the digest-chain length (default ~1k).
	Windows int
	// Tol marks when end-metric differences count as significant. The zero
	// value means exact.
	Tol DiffTolerance
	// LabelA/LabelB name the two sides in the rendered report.
	LabelA, LabelB string
}

// DiffReport is the outcome of a DiffRuns comparison: where two runs first
// diverged (window, tick, and decision), why (the provenance that differed),
// and what followed (end-metric and attribution deltas).
type DiffReport struct {
	LabelA, LabelB string
	App            string
	Duration       Time
	// Window is the digest window length; Windows the chain length compared.
	Window  Time
	Windows int
	// FingerprintA/B are the whole-run digests.
	FingerprintA, FingerprintB uint64
	// Identical is true when the digest chains agree everywhere; the rest of
	// the divergence fields are then zero.
	Identical bool
	// DivergentWindow is the first window whose digests differ (-1 when
	// identical); [WindowStart, WindowEnd) are its bounds.
	DivergentWindow        int
	WindowStart, WindowEnd Time
	// SpanIndex is the position of the first divergent decision in both
	// (index-aligned) span streams; -1 when the streams record identical
	// decision sequences (state diverged without a recorded decision).
	SpanIndex int
	// SpanA/SpanB are the decisions at SpanIndex (nil on a side whose
	// stream ended before SpanIndex).
	SpanA, SpanB *XraySpan
	// ProvenanceDeltas are the inputs and candidate-table differences of
	// the divergent pair — why the same decision point went differently.
	ProvenanceDeltas []FieldDelta
	// ChainA/ChainB walk each divergent decision's causal ancestors
	// (oldest first, divergent span last).
	ChainA, ChainB []XraySpan
	// StepAt is the first tick whose full-rate digests differ inside the
	// divergent window; StepDeltas name the state components that moved.
	StepAt     Time
	StepDeltas []FieldDelta
	// ResultDeltas and ProfileDeltas are the end-of-run differences that
	// follow from the divergence (all fields, significance marked).
	ResultDeltas  []FieldDelta
	ProfileDeltas []FieldDelta
	// ResultA/ResultB are the two final results.
	ResultA, ResultB Result
}

// DiffRuns runs both configurations and locates their first divergence in
// two passes: a cheap digest-chain pass finds the first window in which
// simulator state differs, then both sides re-run (determinism makes the
// replay exact) with an unbounded xray tracer, a profiler, and full-rate
// state capture over that window to isolate the first divergent decision.
// Both configs must share one duration; any observers on them must be nil
// (DiffRuns installs its own).
func DiffRuns(a, b Config, opt DiffOptions) (*DiffReport, error) {
	a, b = a.Normalized(), b.Normalized()
	if a.Duration != b.Duration {
		return nil, fmt.Errorf("biglittle: DiffRuns needs equal durations (%v vs %v); diff results directly instead", a.Duration, b.Duration)
	}
	for side, cfg := range map[string]Config{"A": a, "B": b} {
		if cfg.Digest != nil || cfg.Xray != nil || cfg.Profiler != nil || cfg.Telemetry != nil || cfg.OnSystem != nil {
			return nil, fmt.Errorf("biglittle: DiffRuns config %s already carries an observer; DiffRuns installs its own", side)
		}
	}
	windows := opt.Windows
	if windows <= 0 {
		windows = delta.DefaultWindows
	}
	window := a.Duration / event.Time(windows)

	rep := &DiffReport{
		LabelA: opt.LabelA, LabelB: opt.LabelB,
		App: a.App.Name, Duration: a.Duration,
		DivergentWindow: -1, SpanIndex: -1,
	}
	if rep.LabelA == "" {
		rep.LabelA = "A"
	}
	if rep.LabelB == "" {
		rep.LabelB = "B"
	}

	// Pass 1: digest chains only.
	recA := &delta.Recorder{Window: window}
	recB := &delta.Recorder{Window: window}
	cfgA, cfgB := a, b
	cfgA.Digest, cfgB.Digest = recA, recB
	rep.ResultA = Run(cfgA)
	rep.ResultB = Run(cfgB)
	chA, chB := recA.Chain(), recB.Chain()
	rep.Window = recA.ResolvedWindow()
	rep.Windows = len(chA.Digests)
	rep.FingerprintA, rep.FingerprintB = chA.Fingerprint(), chB.Fingerprint()
	rep.ResultDeltas = delta.Diff(rep.ResultA, rep.ResultB, opt.Tol)

	idx, err := delta.FirstDivergentWindow(chA, chB)
	if err != nil {
		return nil, err
	}
	if idx < 0 {
		rep.Identical = true
		return rep, nil
	}
	rep.DivergentWindow = idx
	rep.WindowStart = rep.Window * event.Time(idx)
	rep.WindowEnd = rep.WindowStart + rep.Window

	// Pass 2: replay both sides with decision tracing and full-rate state
	// capture over the divergent window. Unbounded span retention is safe —
	// a 30 s run records a few thousand decisions.
	run2 := func(cfg Config) (*xray.Dump, []delta.Step, *profile.Snapshot) {
		rec := &delta.Recorder{Window: window, FullFrom: rep.WindowStart, FullTo: rep.WindowEnd}
		xr := xray.New()
		xr.MaxSpans = -1
		cfg.Digest, cfg.Xray, cfg.Profiler = rec, xr, profile.New()
		res := Run(cfg)
		d := xr.Dump()
		return &d, rec.Steps(), res.Profile
	}
	dumpA, stepsA, profA := run2(a)
	dumpB, stepsB, profB := run2(b)

	if profA != nil && profB != nil {
		rep.ProfileDeltas = delta.DiffProfiles(*profA, *profB, opt.Tol)
	}

	// First divergent decision over the full streams: every decision before
	// the divergent window matched (state was identical), so the first
	// non-matching pair is the first decision that went differently.
	if si, ok := delta.FirstDivergentSpan(dumpA.Spans, dumpB.Spans); ok {
		rep.SpanIndex = si
		if si < len(dumpA.Spans) {
			s := dumpA.Spans[si]
			rep.SpanA = &s
			rep.ChainA = causalChain(dumpA, s)
		}
		if si < len(dumpB.Spans) {
			s := dumpB.Spans[si]
			rep.SpanB = &s
			rep.ChainB = causalChain(dumpB, s)
		}
		if rep.SpanA != nil && rep.SpanB != nil {
			rep.ProvenanceDeltas = delta.DiffSpanProvenance(*rep.SpanA, *rep.SpanB, opt.Tol)
		}
	}

	// First divergent tick inside the window, by per-tick digest.
	n := len(stepsA)
	if len(stepsB) < n {
		n = len(stepsB)
	}
	for i := 0; i < n; i++ {
		if stepsA[i].Digest != stepsB[i].Digest {
			rep.StepAt = stepsA[i].At
			rep.StepDeltas = delta.Diff(stepsA[i], stepsB[i], opt.Tol)
			break
		}
	}
	return rep, nil
}

// Render formats the report as the two-column forensic text bldiff prints.
func (r *DiffReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "bldiff: %s, %v, %d windows of %v\n", r.App, r.Duration, r.Windows, r.Window)
	fmt.Fprintf(&b, "fingerprints: %s=%016x %s=%016x\n", r.LabelA, r.FingerprintA, r.LabelB, r.FingerprintB)
	if r.Identical {
		b.WriteString("identical: digest chains agree on every window\n")
		return b.String()
	}
	fmt.Fprintf(&b, "first divergent window: #%d [%v, %v)\n", r.DivergentWindow, r.WindowStart, r.WindowEnd)

	if r.SpanIndex >= 0 {
		fmt.Fprintf(&b, "\nfirst divergent decision (span stream index %d):\n", r.SpanIndex)
		b.WriteString(sideBySide(r.LabelA, r.LabelB, spanText(r.SpanA), spanText(r.SpanB)))
		if len(r.ProvenanceDeltas) > 0 {
			fmt.Fprintf(&b, "\ninputs and candidates that differed (%s -> %s):\n%s",
				r.LabelA, r.LabelB, DiffSummary(r.ProvenanceDeltas, 12))
		}
		if len(r.ChainA) > 1 || len(r.ChainB) > 1 {
			fmt.Fprintf(&b, "\ncausal chain to the divergent decision:\n")
			b.WriteString(sideBySide(r.LabelA, r.LabelB, chainText(r.ChainA), chainText(r.ChainB)))
		}
	} else {
		b.WriteString("\nno decision-level divergence recorded; state diverged between decisions\n")
	}

	if len(r.StepDeltas) > 0 {
		fmt.Fprintf(&b, "\nstate components at the first divergent tick (t=%v, %s -> %s):\n%s",
			r.StepAt, r.LabelA, r.LabelB, DiffSummary(significantFirst(r.StepDeltas), 12))
	}

	sig := SignificantDeltas(r.ResultDeltas)
	fmt.Fprintf(&b, "\nmetric deltas that follow (%s -> %s, %d significant of %d):\n%s",
		r.LabelA, r.LabelB, len(sig), len(r.ResultDeltas), DiffSummary(sig, 16))
	return b.String()
}

// causalChain walks s's ancestry and returns the chain oldest-cause first
// with s itself last (Dump.Ancestors is exclusive and closest-first).
func causalChain(d *xray.Dump, s xray.Span) []xray.Span {
	anc := d.Ancestors(s.ID)
	out := make([]xray.Span, 0, len(anc)+1)
	for i := len(anc) - 1; i >= 0; i-- {
		out = append(out, anc[i])
	}
	return append(out, s)
}

// significantFirst orders a delta list with significant entries first,
// preserving relative order within each class.
func significantFirst(ds []FieldDelta) []FieldDelta {
	out := make([]FieldDelta, 0, len(ds))
	for _, d := range ds {
		if d.Significant {
			out = append(out, d)
		}
	}
	for _, d := range ds {
		if !d.Significant {
			out = append(out, d)
		}
	}
	return out
}

func spanText(s *XraySpan) string {
	if s == nil {
		return "(no corresponding decision; stream ended)"
	}
	return strings.TrimRight(s.Format(), "\n")
}

func chainText(spans []XraySpan) string {
	if len(spans) == 0 {
		return "(none)"
	}
	var b strings.Builder
	for i, s := range spans {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(s.Line())
	}
	return b.String()
}

// sideBySide renders two blocks in labeled columns.
func sideBySide(labelA, labelB, a, b string) string {
	la := strings.Split(a, "\n")
	lb := strings.Split(b, "\n")
	width := len(labelA) + 4
	for _, l := range la {
		if len(l) > width {
			width = len(l)
		}
	}
	if width > 56 {
		width = 56
	}
	var out strings.Builder
	fmt.Fprintf(&out, "  %-*s | %s\n", width, "--- "+labelA+" ---", "--- "+labelB+" ---")
	n := len(la)
	if len(lb) > n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		va, vb := "", ""
		if i < len(la) {
			va = la[i]
		}
		if i < len(lb) {
			vb = lb[i]
		}
		if len(va) > width {
			va = va[:width-1] + "…"
		}
		fmt.Fprintf(&out, "  %-*s | %s\n", width, va, vb)
	}
	return out.String()
}
