// Package biglittle is a simulation library for studying mobile interactive
// applications on asymmetric (big.LITTLE) multi-core platforms. It
// reproduces the system studied in "Big or Little: A Study of Mobile
// Interactive Applications on an Asymmetric Multi-core Platform" (IISWC
// 2015): an Exynos 5422-like SoC with four Cortex-A15 "big" and four
// Cortex-A7 "little" cores, the Linaro HMP scheduler, the interactive
// cpufreq governor, a calibrated whole-system power model, trace-driven
// Cortex-A7/A15 microarchitecture models with split L2 caches, and stochastic
// models of twelve mobile applications.
//
// The top-level entry points:
//
//   - Run executes one application on one platform configuration and
//     returns every metric the paper reports (TLP, core-usage matrices,
//     efficiency states, frequency residency, power, latency/FPS).
//   - The Fig*/Table*/Characterize/CoreConfigs/TuningStudy functions
//     regenerate each table and figure of the paper's evaluation.
//   - RunTrace drives the microarchitectural core models directly with
//     synthetic SPEC-like workloads.
//   - CustomApp builds new workloads from the same primitives the twelve
//     bundled application models use.
//
// Everything is deterministic for a fixed seed.
package biglittle

import (
	"biglittle/internal/apps"
	"biglittle/internal/battery"
	"biglittle/internal/check"
	"biglittle/internal/core"
	"biglittle/internal/event"
	"biglittle/internal/governor"
	"biglittle/internal/platform"
	"biglittle/internal/power"
	"biglittle/internal/profile"
	"biglittle/internal/sched"
	"biglittle/internal/session"
	"biglittle/internal/spec"
	"biglittle/internal/synth"
	"biglittle/internal/telemetry"
	"biglittle/internal/thermal"
	"biglittle/internal/trace"
	"biglittle/internal/uarch"
	"biglittle/internal/workload"
	"biglittle/internal/xray"
)

// Time is a simulated timestamp or duration in nanoseconds.
type Time = event.Time

// Convenient durations.
const (
	Microsecond = event.Microsecond
	Millisecond = event.Millisecond
	Second      = event.Second
)

// App is a benchmark application model (Table II of the paper).
type App = apps.App

// Metric distinguishes latency-oriented from FPS-oriented applications.
type Metric = apps.Metric

// Metric values.
const (
	Latency = apps.Latency
	FPS     = apps.FPS
)

// Apps returns the twelve application models in Table II order.
func Apps() []App { return apps.All() }

// AppByName looks an application model up by name (e.g. "bbench").
func AppByName(name string) (App, error) { return apps.ByName(name) }

// LatencyApps returns the seven latency-oriented applications (Figure 4).
func LatencyApps() []App { return apps.LatencyApps() }

// FPSApps returns the five FPS-oriented applications (Figure 5).
func FPSApps() []App { return apps.FPSApps() }

// Micro returns the §III-B utilization microbenchmark: a spinner holding
// dutyPct utilization at pinnedMHz, optionally pinned to core pinCore
// (-1 for no affinity).
func Micro(dutyPct, pinnedMHz, pinCore int) App { return apps.Micro(dutyPct, pinnedMHz, pinCore) }

// Ctx is the workload-construction context passed to CustomApp builders.
type Ctx = workload.Ctx

// Workload-primitive re-exports for building custom applications.
type (
	// Thread is a schedulable app thread with per-segment callbacks.
	Thread = workload.Thread
	// Stage is one step of an interaction pipeline.
	Stage = workload.Stage
	// InteractionConfig drives a think-time interaction loop.
	InteractionConfig = workload.InteractionConfig
	// PeriodicConfig drives a periodic (frame-style) activity.
	PeriodicConfig = workload.PeriodicConfig
)

// NewThread creates a named thread with the given big-core speedup on the
// context's system.
func NewThread(ctx *Ctx, name string, speedup float64) *Thread {
	return workload.NewThread(ctx, name, speedup)
}

// InteractionLoop, Periodic, PoissonBursts, Continuous and TouchKicks expose
// the demand generators used by the bundled app models.
func InteractionLoop(ctx *Ctx, cfg InteractionConfig) { workload.InteractionLoop(ctx, cfg) }

// Periodic runs a periodic activity on th.
func Periodic(ctx *Ctx, th *Thread, cfg PeriodicConfig) { workload.Periodic(ctx, th, cfg) }

// PoissonBursts pushes exponentially spaced bursts of work onto th.
func PoissonBursts(ctx *Ctx, th *Thread, meanInterval Time, work, cv float64) {
	workload.PoissonBursts(ctx, th, meanInterval, work, cv)
}

// Continuous keeps th fully busy until the run ends.
func Continuous(ctx *Ctx, th *Thread, segment float64) { workload.Continuous(ctx, th, segment) }

// TouchKicks models the Android input booster's frequency floor on touch.
func TouchKicks(ctx *Ctx, meanGap Time) { workload.TouchKicks(ctx, meanGap) }

// Mc is one million work cycles (a little core at 1.3 GHz executes 1300 Mc
// per second).
const Mc = workload.Mc

// CustomApp builds an application model from workload primitives; it can be
// passed anywhere a bundled App is accepted.
func CustomApp(name string, metric Metric, build func(ctx *Ctx)) App {
	return App{Name: name, Desc: "custom workload", Metric: metric, Build: build}
}

// Config describes one simulation run.
type Config = core.Config

// Result holds every metric collected from one run.
type Result = core.Result

// GovernorKind selects the DVFS policy.
type GovernorKind = core.GovernorKind

// Governor kinds.
const (
	Interactive = core.Interactive
	Performance = core.Performance
	Powersave   = core.Powersave
	Userspace   = core.Userspace
)

// SchedConfig holds the HMP scheduler tunables (Algorithm 1).
type SchedConfig = sched.Config

// GovConfig holds the interactive governor tunables (Algorithm 2).
type GovConfig = governor.InteractiveConfig

// PowerParams is the calibrated whole-system power model.
type PowerParams = power.Params

// DefaultPower returns the calibrated Exynos 5422 power model.
func DefaultPower() PowerParams { return power.Default() }

// DefaultConfig returns the paper's baseline configuration for app: L4+B4,
// HMP scheduler with 700/256 thresholds and 32 ms load half-life, the
// interactive governor at a 20 ms sample interval, 30 s duration.
func DefaultConfig(app App) Config { return core.DefaultConfig(app) }

// Run executes one simulation.
func Run(cfg Config) Result { return core.Run(cfg) }

// CoreConfig is a hotplug configuration ("L4+B1" notation from §V-C).
type CoreConfig = platform.CoreConfig

// ParseCoreConfig parses "L2", "L4+B4" style notation.
func ParseCoreConfig(s string) (CoreConfig, error) { return platform.ParseCoreConfig(s) }

// StudyConfigs returns the seven §V-C hotplug combinations.
func StudyConfigs() []CoreConfig { return platform.StudyConfigs() }

// BaselineCores returns the default L4+B4 configuration.
func BaselineCores() CoreConfig { return platform.Baseline() }

// CoreModel describes one core microarchitecture for trace-driven runs.
type CoreModel = uarch.Model

// TraceResult summarizes one trace-driven run.
type TraceResult = uarch.Result

// SPECProfile statistically describes a SPEC-like workload.
type SPECProfile = synth.Profile

// CortexA7 returns the little-core microarchitecture model (Table I).
func CortexA7() CoreModel { return uarch.CortexA7() }

// CortexA15 returns the big-core microarchitecture model (Table I).
func CortexA15() CoreModel { return uarch.CortexA15() }

// SPECProfiles returns the twelve SPEC-like workload profiles of §III-A.
func SPECProfiles() []SPECProfile { return synth.SPEC() }

// RunTrace replays a workload profile on a core model at freqMHz;
// instructions <= 0 uses the profile's default trace length.
func RunTrace(m CoreModel, p SPECProfile, freqMHz, instructions int) TraceResult {
	return uarch.Run(m, p, freqMHz, instructions)
}

// TraceSpeedup returns how much faster candidate completed the same
// workload than baseline.
func TraceSpeedup(candidate, baseline TraceResult) float64 {
	return uarch.Speedup(candidate, baseline)
}

// SchedSystem exposes the scheduler system for extension points like
// Config.OnSystem (attaching trace recorders or custom policies).
type SchedSystem = sched.System

// TraceRecorder captures a per-core execution timeline; see AttachTrace.
type TraceRecorder = trace.Recorder

// AttachTrace installs a timeline recorder on a system capturing scheduler
// ticks in [from, to); use from Config.OnSystem. Render the result with
// TraceRecorder.Render.
func AttachTrace(sys *SchedSystem, from, to Time) *TraceRecorder {
	return trace.Attach(sys, from, to)
}

// Telemetry is the event-level instrumentation collector. Set one as
// Config.Telemetry to receive scheduler, governor, thermal, hotplug and
// power events from a run, plus metric registries (counters, gauges,
// histograms). A nil *Telemetry disables instrumentation at near-zero cost.
type Telemetry = telemetry.Collector

// TelemetryEvent is one instrumentation event.
type TelemetryEvent = telemetry.Event

// TelemetryKind classifies instrumentation events.
type TelemetryKind = telemetry.Kind

// Telemetry event kinds.
const (
	EvMigration = telemetry.KindMigration
	EvWake      = telemetry.KindWake
	EvPreempt   = telemetry.KindPreempt
	EvBoost     = telemetry.KindBoost
	EvFreq      = telemetry.KindFreq
	EvGovernor  = telemetry.KindGovernor
	EvHotplug   = telemetry.KindHotplug
	EvThrottle  = telemetry.KindThrottle
	EvPower     = telemetry.KindPower
)

// NewTelemetry creates an enabled telemetry collector with the default
// event-ring capacity.
func NewTelemetry() *Telemetry { return telemetry.NewCollector() }

// Xray is the causal decision tracer — a bounded flight recorder of every
// wake placement, migration, governor frequency step, thermal throttle, and
// hotplug decision, each with the candidate set considered, the thresholds
// compared, and per-alternative rejection reasons, causally linked into
// chains walkable in both directions. Set one as Config.Xray (or
// SessionConfig.Xray); a nil *Xray disables tracing at the cost of one
// pointer check per decision. Query dumps with cmd/blxray.
type Xray = xray.Tracer

// XraySpan is one recorded decision with its provenance.
type XraySpan = xray.Span

// XrayDump is the queryable snapshot of a tracer (what Xray.JSON emits and
// cmd/blxray consumes).
type XrayDump = xray.Dump

// XrayKind classifies decision spans.
type XrayKind = xray.Kind

// Xray span kinds.
const (
	XrayKindWake      = xray.KindWake
	XrayKindMigration = xray.KindMigration
	XrayKindFreq      = xray.KindFreq
	XrayKindHotplug   = xray.KindHotplug
	XrayKindThrottle  = xray.KindThrottle
)

// NewXray creates an enabled causal decision tracer with the default
// flight-recorder capacity.
func NewXray() *Xray { return xray.New() }

// ParseXrayDump reads a JSON dump written by Xray.JSON or served by blserve
// at /xray.
func ParseXrayDump(data []byte) (*XrayDump, error) { return xray.ParseDump(data) }

// Profiler is the streaming per-task attribution profiler. Set one as
// Config.Profiler (or SessionConfig.Profiler) to attribute run/wait time by
// core type, frequency residency, system energy, and migrations to
// individual tasks. A nil *Profiler disables attribution at the cost of one
// pointer check per scheduler event.
type Profiler = profile.Profiler

// ProfileSnapshot is a consistent point-in-time view of the profiler's
// attribution tables; take one with Profiler.Snapshot.
type ProfileSnapshot = profile.Snapshot

// TaskProfile is one task's row of a ProfileSnapshot.
type TaskProfile = profile.TaskSnapshot

// NewProfiler creates an enabled per-task attribution profiler.
func NewProfiler() *Profiler { return profile.New() }

// SchedulerKind selects the thread-to-core mapping policy (§IV-A).
type SchedulerKind = core.SchedulerKind

// Scheduler kinds.
const (
	HMP              = core.HMP
	EfficiencyBased  = core.EfficiencyBased
	ParallelismAware = core.ParallelismAware
	EAS              = core.EAS
)

// Additional governor kinds (§IV-D lineage).
const (
	Ondemand        = core.Ondemand
	ConservativeGov = core.Conservative
	PASTGov         = core.PAST
)

// ThermalParams configures the per-cluster thermal model and throttling.
type ThermalParams = thermal.Params

// DefaultThermal returns thermal parameters calibrated so sustained
// multi-core big-cluster load throttles in ~10-15 s while the twelve
// interactive app models never trip.
func DefaultThermal() ThermalParams { return thermal.Default() }

// Stress returns a synthetic stress-test workload of n sustained CPU-bound
// threads.
func Stress(n int) App { return apps.Stress(n) }

// WorkloadSpec is the JSON document format for defining application models
// without recompiling; see the internal/spec package documentation for the
// schema and LoadSpec/CompileSpec to build an App from it.
type WorkloadSpec = spec.File

// LoadSpec parses a JSON workload document into a runnable App.
func LoadSpec(data []byte) (App, error) { return spec.Parse(data) }

// CompileSpec validates an already-decoded WorkloadSpec into an App.
func CompileSpec(f WorkloadSpec) (App, error) { return spec.Compile(f) }

// SessionPhase is one app segment of a multi-app usage session.
type SessionPhase = session.Phase

// SessionConfig describes a session run.
type SessionConfig = session.Config

// SessionResult summarizes a session with per-phase metrics.
type SessionResult = session.Result

// NewSession returns a session on the paper's baseline platform with the
// Galaxy S5 battery.
func NewSession(phases ...SessionPhase) SessionConfig { return session.DefaultConfig(phases...) }

// RunSession executes a multi-app session: phases run back to back on one
// platform, with governor and load-tracker state carried across switches.
func RunSession(cfg SessionConfig) SessionResult { return session.Run(cfg) }

// RenderSession formats a session result.
func RenderSession(r SessionResult) string { return session.Render(r) }

// LiveSession is an incrementally-advanced session: the same assembly and
// phase sequencing as RunSession, but the caller controls how far simulated
// time moves on each Advance call. cmd/blserve uses it to pace a session
// against the wall clock while serving observability endpoints.
type LiveSession = session.Live

// NewLiveSession assembles a session ready to Advance.
func NewLiveSession(cfg SessionConfig) *LiveSession { return session.NewLive(cfg) }

// GalaxyS5Pack returns the paper device's battery.
func GalaxyS5Pack() battery.Pack { return battery.GalaxyS5() }

// BatteryPack describes a battery for session drain accounting.
type BatteryPack = battery.Pack

// Auditor is the runtime invariant checker. Set one as Config.Check (or
// SessionConfig.Check) to continuously verify the simulator's conservation
// laws during a run — legal cluster frequencies, the "one little core always
// online" hotplug constraint, monotone virtual time, per-core time
// accounting, and energy as the integral of modeled power — and reconcile
// end-of-run totals. The auditor is a pure observer: an audited run produces
// byte-identical results. A nil *Auditor disables auditing at the cost of
// one pointer check per hook site.
type Auditor = check.Auditor

// CheckReport is an auditor's final accounting: counters, reconciled totals,
// and every violation found.
type CheckReport = check.Report

// CheckViolation is one invariant violation (timestamp, invariant name,
// detail).
type CheckViolation = check.Violation

// NewAuditor creates an enabled invariant auditor.
func NewAuditor() *Auditor { return check.New() }

// CheckResult validates a finished Result for internal consistency — the
// cross-metric identities that must hold however the run went. It needs no
// live system, so it also applies to results loaded from the lab cache or a
// JSON file.
func CheckResult(r Result) []CheckViolation { return check.CheckResult(r) }
