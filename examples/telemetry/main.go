// Telemetry: attach an event-level collector to a run and inspect what the
// scheduler, governor, and power model actually did — every migration with
// its reason, every frequency decision with the load that triggered it, and
// latency/frame-time percentiles — rather than just the end-of-run averages.
package main

import (
	"fmt"
	"log"

	"biglittle"
)

func main() {
	app, err := biglittle.AppByName("angry_bird")
	if err != nil {
		log.Fatal(err)
	}

	cfg := biglittle.DefaultConfig(app)
	cfg.Duration = 15 * biglittle.Second
	cfg.Seed = 7

	tel := biglittle.NewTelemetry()
	cfg.Telemetry = tel

	r := biglittle.Run(cfg)

	fmt.Printf("ran %s for %v on %s\n\n", r.App, r.Duration, r.Cores)
	fmt.Print(tel.Summary(cfg.Duration))

	// Aggregates are queryable directly: how often did the HMP scheduler
	// move work up versus down, and did it agree with the Result?
	fmt.Printf("\nup-migrations:   %d\n", tel.CountReason(biglittle.EvMigration, "up-threshold"))
	fmt.Printf("down-migrations: %d\n", tel.CountReason(biglittle.EvMigration, "down-threshold"))
	fmt.Printf("cross-check:     telemetry %d == Result.HMPMigrations %d\n",
		tel.HMPMigrations(), r.HMPMigrations)

	// Frame-time distribution for the FPS-oriented apps (milliseconds).
	if h := tel.Histogram("frame_time_ms"); h.Count() > 0 {
		fmt.Printf("frame times:     p50 %.1f ms, p99 %.1f ms over %d frames\n",
			h.Quantile(0.50), h.Quantile(0.99), h.Count())
	}

	// A streaming subscriber sees events as they happen; re-run with one to
	// count governor decisions per cluster without buffering anything.
	decisions := map[int]int{}
	tel2 := biglittle.NewTelemetry()
	tel2.MaxEvents = -1 // unbounded buffer (short run)
	tel2.OnEvent = func(ev biglittle.TelemetryEvent) {
		if ev.Kind == biglittle.EvGovernor {
			decisions[ev.Cluster]++
		}
	}
	cfg.Telemetry = tel2
	biglittle.Run(cfg)
	fmt.Printf("\ngovernor decisions per cluster (streaming count): %v\n", decisions)
}
