// Daily session: a compressed slice of a day's phone use — check the news,
// read a PDF, play a game, watch a video — run as one continuous simulation
// with per-phase power, performance, and battery drain.
package main

import (
	"fmt"
	"log"

	"biglittle"
)

func main() {
	phase := func(name string, secs int) biglittle.SessionPhase {
		app, err := biglittle.AppByName(name)
		if err != nil {
			log.Fatal(err)
		}
		return biglittle.SessionPhase{App: app, Duration: biglittle.Time(secs) * biglittle.Second}
	}

	cfg := biglittle.NewSession(
		phase("browser", 20),
		phase("pdf_reader", 15),
		phase("eternity_warrior", 20),
		phase("video_player", 25),
	)
	r := biglittle.RunSession(cfg)
	fmt.Print(biglittle.RenderSession(r))

	hours := biglittle.GalaxyS5Pack().HoursAt(r.AvgPowerMW)
	fmt.Printf("\nat this mix the battery would last %.1f hours of continuous use\n", hours)
	fmt.Println("(CPU/SoC rails only, screen off — as in the paper's measurements)")
}
