// Governor tuning: sweep the interactive governor's sampling interval and
// target load for one latency-oriented app, reproducing the §VI-C trade-off
// between power saving and responsiveness on a single workload.
package main

import (
	"fmt"

	"biglittle"
)

func main() {
	app, _ := biglittle.AppByName("pdf_reader")

	base := biglittle.DefaultConfig(app)
	base.Duration = 15 * biglittle.Second
	baseline := biglittle.Run(base)
	fmt.Printf("baseline (20ms sample, target 70): latency %v, power %.0f mW\n\n",
		baseline.MeanLatency, baseline.AvgPowerMW)

	fmt.Printf("%-10s %-10s %12s %12s %12s\n", "sample", "target", "latency", "Δlatency", "Δpower")
	for _, sampleMs := range []int{20, 60, 100} {
		for _, target := range []int{60, 70, 80} {
			cfg := biglittle.DefaultConfig(app)
			cfg.Duration = base.Duration
			cfg.Gov.SampleMs = sampleMs
			cfg.Gov.TargetLoad = target
			r := biglittle.Run(cfg)
			dLat := 100 * (r.MeanLatency.Seconds()/baseline.MeanLatency.Seconds() - 1)
			dPow := 100 * (r.AvgPowerMW/baseline.AvgPowerMW - 1)
			fmt.Printf("%-10d %-10d %12v %+11.1f%% %+11.1f%%\n",
				sampleMs, target, r.MeanLatency, dLat, dPow)
		}
	}
	fmt.Println("\nlonger intervals and higher targets trade responsiveness for power —")
	fmt.Println("the paper's Figure 11/12 trade-off, here for a single app.")
}
