// Per-task attribution: run one app with the profiler attached and walk the
// attribution tables it produces — run/wait/sleep split by core type, each
// thread's frequency residency (the per-task Figures 9/10), the energy each
// thread owns under the powertop convention, and what migrations cost. The
// conservation footer shows the invariant the profiler maintains: per-task
// energy plus the unattributed idle/base remainder equals the power meter's
// reading.
package main

import (
	"fmt"

	"biglittle"
)

func main() {
	app, _ := biglittle.AppByName("angry_bird")
	cfg := biglittle.DefaultConfig(app)
	cfg.Duration = 10 * biglittle.Second

	prof := biglittle.NewProfiler()
	cfg.Profiler = prof

	res := biglittle.Run(cfg)
	snap := *res.Profile

	fmt.Printf("%s for %v: %.0f mW, %.1f fps, %d HMP migrations\n\n",
		app.Name, cfg.Duration, res.AvgPowerMW, res.AvgFPS, res.HMPMigrations)
	fmt.Print(snap.Summary())

	// Drill into the busiest thread: where did its cycles and energy go?
	hot := snap.Tasks[0]
	fmt.Printf("\nhottest thread %q:\n", hot.Name)
	fmt.Printf("  ran %.1f ms (%.1f ms big, %.1f ms little), waited %.1f ms, slept %.1f ms\n",
		hot.RunNs.Milliseconds(), hot.BigRunNs.Milliseconds(), hot.LittleRunNs.Milliseconds(),
		hot.WaitNs.Milliseconds(), hot.SleepNs.Milliseconds())
	fmt.Printf("  owns %.1f mJ of %.1f mJ total (%.1f%%)\n",
		hot.EnergyMJ, snap.TotalEnergyMJ, 100*hot.EnergyMJ/snap.TotalEnergyMJ)
	fmt.Printf("  woke %d times, %.2f ms mean wake-to-run latency\n",
		hot.Wakes, hot.WakeLatencyNs.Milliseconds()/float64(max(1, hot.Wakes)))
	for _, slot := range hot.Residency {
		fmt.Printf("  %6s @ %4d MHz: %.1f ms\n", slot.Type, slot.MHz, slot.Ns.Milliseconds())
	}

	// The same invariant the tests assert, visibly: attribution partitions
	// the meter's energy.
	fmt.Printf("\nconservation: %.3f (attributed+unattributed) vs %.3f (meter) mJ\n",
		snap.AttributedMJ+snap.UnattributedMJ, res.EnergyMJ)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
