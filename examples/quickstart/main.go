// Quickstart: run one bundled application model on the default platform
// (Exynos 5422-like, L4+B4, HMP scheduler, interactive governor) and print
// the headline metrics.
package main

import (
	"fmt"
	"log"

	"biglittle"
)

func main() {
	app, err := biglittle.AppByName("bbench")
	if err != nil {
		log.Fatal(err)
	}

	cfg := biglittle.DefaultConfig(app)
	cfg.Duration = 15 * biglittle.Second
	cfg.Seed = 7

	r := biglittle.Run(cfg)

	fmt.Printf("ran %s for %v on %s\n", r.App, r.Duration, r.Cores)
	fmt.Printf("  mean page-load latency: %v over %d pages\n", r.MeanLatency, r.Interactions)
	fmt.Printf("  average system power:   %.0f mW\n", r.AvgPowerMW)
	fmt.Printf("  TLP:                    %.2f active cores (non-idle time)\n", r.TLP.TLP)
	fmt.Printf("  big-core usage:         %.1f%% of active samples\n", r.TLP.BigPct)
	fmt.Printf("  HMP migrations:         %d\n", r.HMPMigrations)

	// Re-run without big cores to see what they were buying.
	cfg.Cores, _ = biglittle.ParseCoreConfig("L4")
	lr := biglittle.Run(cfg)
	fmt.Printf("\nwithout big cores (L4): latency %v (%.0f%% slower), power %.0f mW (%.0f%% less)\n",
		lr.MeanLatency,
		100*(lr.MeanLatency.Seconds()/r.MeanLatency.Seconds()-1),
		lr.AvgPowerMW,
		100*(1-lr.AvgPowerMW/r.AvgPowerMW))
}
