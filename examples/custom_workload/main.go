// Custom workload: build a new application model from the library's
// workload primitives — here a turn-based strategy game with an AI thread
// that spikes on its turn — and characterize how the HMP scheduler and
// governor handle it.
package main

import (
	"fmt"

	"biglittle"
)

func main() {
	app := biglittle.CustomApp("strategy_game", biglittle.FPS, func(ctx *biglittle.Ctx) {
		ui := biglittle.NewThread(ctx, "sg.ui", 1.5)
		render := biglittle.NewThread(ctx, "sg.render", 1.7)
		ai := biglittle.NewThread(ctx, "sg.ai", 1.9)

		// A light 30 FPS render loop...
		biglittle.Periodic(ctx, render, biglittle.PeriodicConfig{
			Period: 33 * biglittle.Millisecond,
			Work:   2.5 * biglittle.Mc,
			CV:     0.3,
			OnDone: func(now biglittle.Time) { ctx.FPS.FrameDone(now) },
		})
		// ...UI touches every ~2s with a deep AI search responding to each
		// move: a long, CPU-bound burst that should migrate to a big core.
		biglittle.InteractionLoop(ctx, biglittle.InteractionConfig{
			Think: 2 * biglittle.Second, ThinkCV: 0.4,
			Boost: []*biglittle.Thread{ai}, BoostLoad: 900,
			Stages: func() []biglittle.Stage {
				return []biglittle.Stage{
					{Threads: []*biglittle.Thread{ui}, Work: 1 * biglittle.Mc, CV: 0.3},
					{Threads: []*biglittle.Thread{ai}, Work: 180 * biglittle.Mc, CV: 0.4},
				}
			},
		})
		// Ambient system activity.
		biglittle.PoissonBursts(ctx, ui, 50*biglittle.Millisecond, 0.3*biglittle.Mc, 0.5)
	})

	cfg := biglittle.DefaultConfig(app)
	cfg.Duration = 20 * biglittle.Second
	r := biglittle.Run(cfg)

	fmt.Printf("custom app %q on %s:\n", r.App, r.Cores)
	fmt.Printf("  avg FPS %.1f, min FPS %.1f\n", r.AvgFPS, r.MinFPS)
	fmt.Printf("  AI turns drove big-core usage to %.1f%% of active samples\n", r.TLP.BigPct)
	fmt.Printf("  mean AI-turn latency: %v\n", r.MeanLatency)
	fmt.Printf("  power: %.0f mW, %d HMP migrations\n", r.AvgPowerMW, r.HMPMigrations)

	// The same app without big cores: the AI turn stalls the little cluster.
	cfg.Cores, _ = biglittle.ParseCoreConfig("L4")
	lr := biglittle.Run(cfg)
	fmt.Printf("\nwithout big cores: AI-turn latency %v (%.0f%% slower), min FPS %.1f\n",
		lr.MeanLatency, 100*(lr.MeanLatency.Seconds()/r.MeanLatency.Seconds()-1), lr.MinFPS)
}
