// Core configurations: evaluate a CPU-heavy game across the paper's seven
// §V-C hotplug combinations, showing that little-only configurations save
// power but hurt worst-case FPS, while a single big core recovers most of
// the interactivity (Figures 7/8 for one app).
package main

import (
	"fmt"

	"biglittle"
)

func main() {
	app, _ := biglittle.AppByName("eternity_warrior")

	base := biglittle.DefaultConfig(app)
	base.Duration = 15 * biglittle.Second
	baseline := biglittle.Run(base)
	fmt.Printf("baseline %s: %.1f avg FPS, %.1f min FPS, %.0f mW\n\n",
		baseline.Cores, baseline.AvgFPS, baseline.MinFPS, baseline.AvgPowerMW)

	fmt.Printf("%-8s %10s %10s %10s %12s\n", "config", "avg FPS", "min FPS", "power mW", "power saving")
	for _, cc := range biglittle.StudyConfigs() {
		cfg := biglittle.DefaultConfig(app)
		cfg.Duration = base.Duration
		cfg.Cores = cc
		r := biglittle.Run(cfg)
		fmt.Printf("%-8s %10.1f %10.1f %10.0f %+11.1f%%\n",
			cc, r.AvgFPS, r.MinFPS, r.AvgPowerMW,
			100*(1-r.AvgPowerMW/baseline.AvgPowerMW))
	}
	fmt.Println("\nL2/L4 save the most power but degrade worst-case FPS during combat")
	fmt.Println("scenes; adding one big core (L2+B1 / L4+B1) restores responsiveness")
	fmt.Println("at a fraction of the full L4+B4 power — the paper's §V-C conclusion.")
}
