// Thermal throttling: compare a 3D game with a synthetic stress test under
// the thermal model. Mobile interactive apps never sustain enough power to
// throttle (the thermal face of the paper's over-provisioning conclusion);
// a multi-threaded stress load trips the throttle within seconds and loses
// most of its throughput.
package main

import (
	"fmt"

	"biglittle"
)

func run(app biglittle.App, withThermal bool) biglittle.Result {
	cfg := biglittle.DefaultConfig(app)
	cfg.Duration = 45 * biglittle.Second
	if withThermal {
		par := biglittle.DefaultThermal()
		cfg.Thermal = &par
	}
	return biglittle.Run(cfg)
}

func main() {
	game, _ := biglittle.AppByName("eternity_warrior")
	hot := run(game, true)
	fmt.Printf("%s with thermal model (45s):\n", hot.App)
	fmt.Printf("  FPS first half %.1f, second half %.1f\n", hot.FPSFirstHalf, hot.FPSSecondHalf)
	fmt.Printf("  max die temperature %.1f C, throttled %.1f%% of the time\n",
		hot.MaxTempC, hot.ThrottledPct)
	fmt.Println("  -> a real game never heats the CPU enough to throttle")

	stress := biglittle.Stress(4)
	cold := run(stress, false)
	throttled := run(stress, true)
	fmt.Printf("\n%s (4 sustained CPU-bound threads, 45s):\n", stress.Name)
	fmt.Printf("  without thermal model: %.1f Gc executed, %.0f mW\n",
		cold.TotalWorkGc, cold.AvgPowerMW)
	fmt.Printf("  with thermal model:    %.1f Gc executed, %.0f mW\n",
		throttled.TotalWorkGc, throttled.AvgPowerMW)
	fmt.Printf("  max temp %.1f C, throttled %.1f%%, throughput lost %.0f%%\n",
		throttled.MaxTempC, throttled.ThrottledPct,
		100*(1-throttled.TotalWorkGc/cold.TotalWorkGc))
	fmt.Println("  -> the sustained-performance cliff of passively cooled devices")
}
