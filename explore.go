package biglittle

import "biglittle/internal/explore"

// ExploreSpace declares a configuration search space: a base Config plus
// the cross product of its dimensions, each an override key from the
// ApplyOverrides vocabulary (governor tunables, HMP thresholds, scheduler,
// cores, ...) with candidate values. Point indices enumerate in
// nested-loop order with the first dimension varying fastest.
type ExploreSpace = explore.Space

// ExploreDim is one axis of an ExploreSpace.
type ExploreDim = explore.Dim

// ExploreOptions tunes one exploration: the LabRunner executing rungs, the
// scalar objective, a simulated-time budget, the halving factor, the
// finalist count, and the screening-fidelity floor.
type ExploreOptions = explore.Options

// ExploreReport is the outcome of one exploration: the Pareto frontier of
// (energy, delay), the winning configuration, per-rung screening stats,
// and the planned versus exhaustive simulation costs.
type ExploreReport = explore.Report

// ExplorePoint is one evaluated configuration on (or off) the frontier.
type ExplorePoint = explore.Point

// ExploreObjective is the scalar the search minimizes when ranking
// candidates within a rung.
type ExploreObjective = explore.Objective

// The explore objectives: total energy, energy-delay product (the paper's
// preferred single-number efficiency metric), and delay alone.
const (
	ExploreEnergy  = explore.Energy
	ExploreEDP     = explore.EDP
	ExploreRuntime = explore.Runtime
)

// Explore searches the space for the Pareto front of (energy, delay) by
// successive halving: short snapshot-forked runs screen the whole space
// and survivors graduate to progressively longer runs, every rung memoized
// through the lab cache (see DESIGN.md §10). Deterministic for fixed
// (space, options).
func Explore(space ExploreSpace, opts ExploreOptions) (*ExploreReport, error) {
	return explore.Run(space, opts)
}

// ExploreExhaustive evaluates every point at full fidelity — the ground
// truth an exploration's frontier can be verified against. On a cache
// warmed by Explore, only the pruned points re-simulate.
func ExploreExhaustive(space ExploreSpace, opts ExploreOptions) (*ExploreReport, error) {
	return explore.Exhaustive(space, opts)
}

// SameExploreFrontier reports whether two reports found the same frontier
// and winner (by point index).
func SameExploreFrontier(a, b *ExploreReport) bool { return explore.SameFrontier(a, b) }

// ParseExploreObjective parses "energy", "edp", or "runtime".
func ParseExploreObjective(s string) (ExploreObjective, error) { return explore.ParseObjective(s) }

// ParseExploreDim parses one "key=v1,v2,v3" dimension spec.
func ParseExploreDim(spec string) (ExploreDim, error) { return explore.ParseDim(spec) }

// ParseExploreSpec parses a space-spec file: one dimension per line, '#'
// comments ignored.
func ParseExploreSpec(text string) ([]ExploreDim, error) { return explore.ParseSpec(text) }
