package biglittle

import "biglittle/internal/fleet"

// FleetCoordinator is the distributed-lab control plane: an HTTP JSON job
// API (Mount) over a bounded pending queue, a lease table with expiry and
// bounded retries, and Prometheus fleet metrics. blserve hosts one;
// stateless blworker processes pull leases from it.
type FleetCoordinator = fleet.Coordinator

// FleetOptions configures a FleetCoordinator (queue bound, lease TTL,
// attempt budget, coordinator-side cache, telemetry collector).
type FleetOptions = fleet.Options

// FleetClient talks to a coordinator. It implements the LabRunner.Remote
// executor interface, so attaching one routes every fingerprintable job in
// a sweep through the fleet while everything else simulates locally.
type FleetClient = fleet.Client

// FleetWorker is one stateless executor: it leases job specs, verifies and
// runs them through its own LabRunner (cache and audit mode included), and
// publishes results back with heartbeat renewal for long jobs.
type FleetWorker = fleet.Worker

// FleetJobSpec is the wire form of one simulation job: exactly the fields
// LabFingerprint hashes, with app and platform reduced to registry names.
type FleetJobSpec = fleet.JobSpec

// FleetStats is the coordinator's queue/lease/worker snapshot
// (GET /fleet/stats, `bllab fleet`).
type FleetStats = fleet.Stats

// NewFleetCoordinator builds a coordinator and starts its lease reaper;
// Close stops it.
func NewFleetCoordinator(opt FleetOptions) *FleetCoordinator { return fleet.NewCoordinator(opt) }

// FleetSpecFromJob serializes a LabJob into its wire form, or explains why
// the job cannot travel (observers, Prepare hooks, salts, unregistered apps
// or platforms).
func FleetSpecFromJob(job LabJob) (FleetJobSpec, error) { return fleet.SpecFromJob(job) }
