# Convenience targets; everything is plain `go` underneath.

.PHONY: build test test-race bench bench-smoke serve-smoke report quick-report cover fmt vet all

all: build vet test test-race

build:
	go build ./...

test:
	go test ./...

test-race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# One iteration of every benchmark — catches bit-rot without timing anything.
bench-smoke:
	go test -run '^$$' -bench=. -benchtime=1x ./...

# Boot blserve on a short free-running session and assert the observability
# endpoints actually serve: Prometheus text with per-task gauges, and a JSON
# snapshot with an attribution table.
serve-smoke:
	go build -o /tmp/blserve ./cmd/blserve
	/tmp/blserve -addr 127.0.0.1:9814 -phases browser:2s -repeat 1 -speed 0 & \
		pid=$$!; \
		sleep 2; \
		ok=0; \
		curl -fsS 127.0.0.1:9814/metrics | grep -q '^biglittle_task_' && \
		curl -fsS 127.0.0.1:9814/metrics | grep -q 'quantile=' && \
		curl -fsS 127.0.0.1:9814/snapshot | grep -q '"tasks"' && ok=1; \
		kill -INT $$pid; wait $$pid; \
		[ $$ok -eq 1 ] && echo "serve-smoke: OK"

# Regenerate every paper table/figure plus the extension studies (~30s).
report:
	go run ./cmd/blreport

quick-report:
	go run ./cmd/blreport -quick

cover:
	go test ./internal/... . -cover

fmt:
	gofmt -w .

vet:
	go vet ./...
