# Convenience targets; everything is plain `go` underneath.

.PHONY: build test test-race bench report quick-report cover fmt vet all

all: build vet test test-race

build:
	go build ./...

test:
	go test ./...

test-race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# Regenerate every paper table/figure plus the extension studies (~30s).
report:
	go run ./cmd/blreport

quick-report:
	go run ./cmd/blreport -quick

cover:
	go test ./internal/... . -cover

fmt:
	gofmt -w .

vet:
	go vet ./...
