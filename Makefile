# Convenience targets; everything is plain `go` underneath.

.PHONY: build test test-race bench bench-smoke bench-baseline bench-compare bench-record xray-smoke diff-smoke profile-single serve-smoke fleet-smoke fork-smoke explore-smoke report quick-report report-par cover fuzz-smoke golden-update fmt vet all

all: build vet test test-race

build:
	go build ./...

test:
	go test ./...

test-race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# One iteration of every benchmark — catches bit-rot without timing anything.
bench-smoke:
	go test -run '^$$' -bench=. -benchtime=1x ./...

# The perf-regression gate (see DESIGN.md "Performance"). bench-baseline
# measures the tracked benchmarks -count=6 and records the medians-ready raw
# output into BENCH_baseline.json; bench-compare re-measures and fails if a
# gated benchmark's median regressed >10% (time only on the same CPU model;
# allocs/op everywhere — it is machine-independent).
GATED_BENCH = BenchmarkSingleRun|BenchmarkFig2Speedup|BenchmarkFig3SpecPower|BenchmarkDigestOff|BenchmarkDigestOn|BenchmarkForkSweep|BenchmarkExplore

bench-baseline:
	go test -run '^$$' -bench '$(GATED_BENCH)' -benchmem -count 6 . | tee /tmp/blbench-baseline.txt
	go run ./cmd/blbench record -out BENCH_baseline.json /tmp/blbench-baseline.txt

bench-compare:
	go test -run '^$$' -bench '$(GATED_BENCH)' -benchmem -count 6 . | tee /tmp/blbench-new.txt
	go run ./cmd/blbench compare -baseline BENCH_baseline.json \
		-critical '^($(GATED_BENCH))$$' -max-regress 10 /tmp/blbench-new.txt

# Append today's gated-benchmark medians to the committed trend file and
# print the trend. Reuses the measurement bench-compare just made when
# /tmp/blbench-new.txt exists, so `make bench-compare bench-record` measures
# once; standalone it measures fresh.
bench-record:
	@[ -s /tmp/blbench-new.txt ] || \
		go test -run '^$$' -bench '$(GATED_BENCH)' -benchmem -count 6 . | tee /tmp/blbench-new.txt
	go run ./cmd/blbench history -append -file BENCH_history.jsonl \
		-rev $$(git rev-parse --short HEAD 2>/dev/null || echo unknown) /tmp/blbench-new.txt
	go run ./cmd/blbench history -file BENCH_history.jsonl

# Capture CPU and allocation profiles of the single-run hot path; DESIGN.md
# "Performance" explains how to read them.
profile-single:
	go test -run '^$$' -bench BenchmarkSingleRun -benchtime 200x \
		-cpuprofile /tmp/biglittle-cpu.prof -memprofile /tmp/biglittle-mem.prof .
	@echo "profile-single: go tool pprof -top /tmp/biglittle-cpu.prof"
	@echo "profile-single: go tool pprof -top -sample_index=alloc_objects /tmp/biglittle-mem.prof"

# Boot blserve on a short free-running session and assert the observability
# endpoints actually serve: Prometheus text with per-task gauges, and a JSON
# snapshot with an attribution table.
serve-smoke:
	go build -o /tmp/blserve ./cmd/blserve
	/tmp/blserve -addr 127.0.0.1:9814 -phases browser:2s -repeat 1 -speed 0 & \
		pid=$$!; \
		sleep 2; \
		ok=0; \
		curl -fsS 127.0.0.1:9814/metrics | grep -q '^biglittle_task_' && \
		curl -fsS 127.0.0.1:9814/metrics | grep -q 'quantile=' && \
		curl -fsS 127.0.0.1:9814/snapshot | grep -q '"tasks"' && ok=1; \
		kill -INT $$pid; wait $$pid; \
		[ $$ok -eq 1 ] && echo "serve-smoke: OK"

# End-to-end smoke of the distributed lab: a coordinator-only blserve, two
# blworker processes, and a small sweep routed through the fleet (-remote)
# must (a) emit CSV byte-identical to the same sweep in-process, (b) have
# actually executed on the fleet (nonzero "remote" in the lab stats), and
# (c) leave the Prometheus endpoint reporting zero failed fleet jobs.
# Teardown is SIGINT, so the graceful-drain path runs too.
fleet-smoke:
	go build -o /tmp/blserve ./cmd/blserve
	go build -o /tmp/blworker ./cmd/blworker
	go build -o /tmp/blsweep ./cmd/blsweep
	w1=$$(mktemp -d); w2=$$(mktemp -d); \
		/tmp/blserve -addr 127.0.0.1:9815 -phases none -fleet-no-cache & spid=$$!; \
		sleep 1; \
		/tmp/blworker -coordinator http://127.0.0.1:9815 -id w1 -cache-dir $$w1 & p1=$$!; \
		/tmp/blworker -coordinator http://127.0.0.1:9815 -id w2 -cache-dir $$w2 & p2=$$!; \
		/tmp/blsweep -param sample-ms -values 10,20,40,60 -app bbench -duration 2s -no-cache \
			-remote http://127.0.0.1:9815 >/tmp/fleet-remote.csv 2>/tmp/fleet-remote.log; \
		/tmp/blsweep -param sample-ms -values 10,20,40,60 -app bbench -duration 2s -no-cache \
			>/tmp/fleet-local.csv 2>/dev/null; \
		curl -fsS 127.0.0.1:9815/metrics > /tmp/fleet-metrics.txt; \
		kill -INT $$p1 $$p2; wait $$p1 $$p2; \
		kill -INT $$spid; wait $$spid; \
		cat /tmp/fleet-remote.log; \
		rm -rf $$w1 $$w2; \
		cmp /tmp/fleet-remote.csv /tmp/fleet-local.csv || { echo "fleet-smoke: fleet and in-process sweeps differ" >&2; exit 1; }; \
		grep -Eq '[1-9][0-9]* remote' /tmp/fleet-remote.log || { echo "fleet-smoke: sweep did not execute on the fleet" >&2; exit 1; }; \
		grep -q '^biglittle_fleet_jobs_failed_total 0$$' /tmp/fleet-metrics.txt || { echo "fleet-smoke: fleet reported failed jobs" >&2; exit 1; }; \
		echo "fleet-smoke: OK"

# End-to-end smoke of snapshot-accelerated sweeps: (a) forking the sweep's
# base value must reproduce the cold run byte-for-byte, (b) a multi-value
# forked sweep must share one warmed prefix (nonzero reuse in the lab
# stats), and (c) a second sweep over new values against the same cache must
# load that prefix from the disk tier instead of re-simulating it.
fork-smoke:
	go build -o /tmp/blsweep ./cmd/blsweep
	dir=$$(mktemp -d); \
		/tmp/blsweep -param sample-ms -values 20 -app encoder -duration 2s -no-cache >/tmp/fork-cold.csv 2>/dev/null; \
		/tmp/blsweep -param sample-ms -values 20 -app encoder -duration 2s -no-cache -fork-at 1500ms >/tmp/fork-base.csv 2>/tmp/fork-base.log; \
		/tmp/blsweep -param sample-ms -values 10,20,40,60 -app encoder -duration 2s -no-cache -fork-at 1500ms >/tmp/fork-sweep.csv 2>/tmp/fork-sweep.log; \
		/tmp/blsweep -param sample-ms -values 10,40 -app encoder -duration 2s -cache-dir $$dir -fork-at 1500ms >/dev/null 2>/tmp/fork-disk1.log; \
		/tmp/blsweep -param sample-ms -values 60,80 -app encoder -duration 2s -cache-dir $$dir -fork-at 1500ms >/dev/null 2>/tmp/fork-disk2.log; \
		cat /tmp/fork-base.log /tmp/fork-sweep.log /tmp/fork-disk1.log /tmp/fork-disk2.log; \
		rm -rf $$dir; \
		cmp /tmp/fork-cold.csv /tmp/fork-base.csv || { echo "fork-smoke: forked base run differs from the cold run" >&2; exit 1; }; \
		grep -q 'fork: 4 continuations: 1 prefixes simulated, 3 reused' /tmp/fork-sweep.log || { echo "fork-smoke: sweep did not share one prefix" >&2; exit 1; }; \
		grep -q 'fork: 2 continuations: 0 prefixes simulated, 2 reused' /tmp/fork-disk2.log || { echo "fork-smoke: prefix not reloaded from the disk tier" >&2; exit 1; }; \
		echo "fork-smoke: OK"

# End-to-end smoke of the design-space explorer: on a small
# screening-faithful space, the successive-halving ladder must (a) find the
# exact frontier the exhaustive sweep finds (-verify-exhaustive exits 1
# otherwise), (b) actually prune candidates along the way, and (c) replay
# byte-identically from the cache the first run warmed, simulating nothing.
explore-smoke:
	go build -o /tmp/blexplore ./cmd/blexplore
	dir=$$(mktemp -d); \
		/tmp/blexplore -app fifa15 -duration 2s -objective edp -eta 2 -keep 3 \
			-dim 'governor=interactive,performance,powersave,userspace,ondemand,conservative,past' \
			-cache-dir $$dir -verify-exhaustive >/tmp/explore-cold.txt 2>/tmp/explore-cold.log; \
		/tmp/blexplore -app fifa15 -duration 2s -objective edp -eta 2 -keep 3 \
			-dim 'governor=interactive,performance,powersave,userspace,ondemand,conservative,past' \
			-cache-dir $$dir -verify-exhaustive >/tmp/explore-warm.txt 2>/tmp/explore-warm.log; \
		cat /tmp/explore-cold.log /tmp/explore-warm.log; \
		rm -rf $$dir; \
		grep -q 'frontier matches exhaustive' /tmp/explore-cold.txt || { echo "explore-smoke: frontier differs from exhaustive" >&2; exit 1; }; \
		grep -Eq 'pruned [1-9]' /tmp/explore-cold.txt || { echo "explore-smoke: ladder pruned nothing" >&2; exit 1; }; \
		grep -Eq ' 0 simulated' /tmp/explore-warm.log || { echo "explore-smoke: warm re-run still simulated" >&2; exit 1; }; \
		cmp /tmp/explore-cold.txt /tmp/explore-warm.txt || { echo "explore-smoke: warm report differs from cold" >&2; exit 1; }; \
		echo "explore-smoke: OK"

# End-to-end smoke of the causal decision tracer: record a golden-config
# run with -xray, then require blxray to reconstruct a placement decision
# (inputs + candidate table with a chosen core) and to walk a migration's
# causal chain back to the wake that started it.
xray-smoke:
	go build -o /tmp/blsim ./cmd/blsim
	go build -o /tmp/blxray ./cmd/blxray
	/tmp/blsim -app bbench -duration 4s -seed 1 -xray /tmp/blxray-smoke.json > /dev/null
	/tmp/blxray explain -in /tmp/blxray-smoke.json -task bb.js > /tmp/blxray-explain.txt
	grep -q 'candidates:' /tmp/blxray-explain.txt
	grep -q 'CHOSEN' /tmp/blxray-explain.txt
	/tmp/blxray chain -in /tmp/blxray-smoke.json -migration 1 > /tmp/blxray-chain.txt
	grep -q 'wake' /tmp/blxray-chain.txt
	@echo "xray-smoke: OK"

# End-to-end smoke of the differential forensics tool: a seeded A/B pair
# differing in one HMP threshold must diff to a located first divergent
# decision (exit 1), and an identical pair must report "identical" (exit 0).
diff-smoke:
	go build -o /tmp/bldiff ./cmd/bldiff
	/tmp/bldiff run -app bbench -duration 2s -seed 1 -b up=350 > /tmp/bldiff-div.txt; \
		[ $$? -eq 1 ] || { echo "diff-smoke: divergent pair did not exit 1" >&2; exit 1; }
	grep -q 'first divergent window' /tmp/bldiff-div.txt
	grep -q 'first divergent decision' /tmp/bldiff-div.txt
	grep -q 'up_threshold' /tmp/bldiff-div.txt
	/tmp/bldiff run -app bbench -duration 2s -seed 1 > /tmp/bldiff-same.txt
	grep -q 'identical' /tmp/bldiff-same.txt
	@echo "diff-smoke: OK"

# Regenerate every paper table/figure plus the extension studies (~30s).
report:
	go run ./cmd/blreport

quick-report:
	go run ./cmd/blreport -quick

# Smoke-test the experiment orchestrator: run the quick report cold into a
# fresh cache, re-run warm, and assert (a) the warm run hit the cache and
# simulated nothing, (b) report stdout is byte-identical cold vs warm.
report-par:
	go build -o /tmp/blreport ./cmd/blreport
	dir=$$(mktemp -d); \
		/tmp/blreport -quick -cache-dir $$dir >/tmp/report-cold.txt 2>/tmp/report-cold.log; \
		/tmp/blreport -quick -cache-dir $$dir >/tmp/report-warm.txt 2>/tmp/report-warm.log; \
		cat /tmp/report-cold.log /tmp/report-warm.log; \
		rm -rf $$dir; \
		grep -Eq 'lab: [0-9]+ jobs: [1-9][0-9]* cache hits' /tmp/report-warm.log || { echo "report-par: warm run had no cache hits" >&2; exit 1; }; \
		grep -Eq ' 0 simulated' /tmp/report-warm.log || { echo "report-par: warm run still simulated" >&2; exit 1; }; \
		cmp /tmp/report-cold.txt /tmp/report-warm.txt || { echo "report-par: cold and warm output differ" >&2; exit 1; }; \
		echo "report-par: OK"

# Line-coverage floors for the simulation kernel packages. The profile can
# contain one copy of each block per test binary, so blocks are deduplicated
# by location before aggregating per package.
cover:
	go test -coverpkg=./internal/core,./internal/sched,./internal/platform,./internal/snapshot \
		-coverprofile=/tmp/biglittle-cover.out ./... > /dev/null
	awk 'NR>1 {key=$$1; stmts[key]=$$2; if ($$3>0) hit[key]=1} \
		END { \
			floors["biglittle/internal/core"]=90; \
			floors["biglittle/internal/sched"]=88; \
			floors["biglittle/internal/platform"]=90; \
			floors["biglittle/internal/snapshot"]=90; \
			bad=0; \
			for (k in stmts) {p=k; sub(/:.*/, "", p); sub(/\/[^\/]*$$/, "", p); total[p]+=stmts[k]; if (hit[k]) cov[p]+=stmts[k]} \
			for (p in floors) { \
				pct = total[p] ? 100*cov[p]/total[p] : 0; \
				status = pct >= floors[p] ? "ok" : "BELOW FLOOR"; \
				printf "cover: %-30s %5.1f%% (floor %d%%) %s\n", p, pct, floors[p], status; \
				if (pct < floors[p]) bad=1; \
			} \
			exit bad \
		}' /tmp/biglittle-cover.out

# 30 s of native fuzzing per target — a smoke pass over the parser and
# codec fuzzers, not a deep campaign (go test runs one -fuzz target at a
# time).
fuzz-smoke:
	go test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 30s ./internal/spec/
	go test -run '^$$' -fuzz '^FuzzParseCoreConfig$$' -fuzztime 30s ./internal/platform/
	go test -run '^$$' -fuzz '^FuzzInts$$' -fuzztime 30s ./internal/cli/
	go test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime 30s ./internal/snapshot/

# Regenerate the golden-master corpus after an intentional model change; the
# resulting testdata/golden diff documents exactly which numbers moved.
golden-update:
	go test -run TestGoldenMaster . -golden-update
	@echo "golden-update: testdata/golden regenerated — review the diff before committing"

fmt:
	gofmt -w .

vet:
	go vet ./...
