# Convenience targets; everything is plain `go` underneath.

.PHONY: build test bench report quick-report cover fmt vet all

all: build vet test

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem ./...

# Regenerate every paper table/figure plus the extension studies (~30s).
report:
	go run ./cmd/blreport

quick-report:
	go run ./cmd/blreport -quick

cover:
	go test ./internal/... . -cover

fmt:
	gofmt -w .

vet:
	go vet ./...
