# Convenience targets; everything is plain `go` underneath.

.PHONY: build test test-race bench bench-smoke serve-smoke report quick-report report-par cover fmt vet all

all: build vet test test-race

build:
	go build ./...

test:
	go test ./...

test-race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# One iteration of every benchmark — catches bit-rot without timing anything.
bench-smoke:
	go test -run '^$$' -bench=. -benchtime=1x ./...

# Boot blserve on a short free-running session and assert the observability
# endpoints actually serve: Prometheus text with per-task gauges, and a JSON
# snapshot with an attribution table.
serve-smoke:
	go build -o /tmp/blserve ./cmd/blserve
	/tmp/blserve -addr 127.0.0.1:9814 -phases browser:2s -repeat 1 -speed 0 & \
		pid=$$!; \
		sleep 2; \
		ok=0; \
		curl -fsS 127.0.0.1:9814/metrics | grep -q '^biglittle_task_' && \
		curl -fsS 127.0.0.1:9814/metrics | grep -q 'quantile=' && \
		curl -fsS 127.0.0.1:9814/snapshot | grep -q '"tasks"' && ok=1; \
		kill -INT $$pid; wait $$pid; \
		[ $$ok -eq 1 ] && echo "serve-smoke: OK"

# Regenerate every paper table/figure plus the extension studies (~30s).
report:
	go run ./cmd/blreport

quick-report:
	go run ./cmd/blreport -quick

# Smoke-test the experiment orchestrator: run the quick report cold into a
# fresh cache, re-run warm, and assert (a) the warm run hit the cache and
# simulated nothing, (b) report stdout is byte-identical cold vs warm.
report-par:
	go build -o /tmp/blreport ./cmd/blreport
	dir=$$(mktemp -d); \
		/tmp/blreport -quick -cache-dir $$dir >/tmp/report-cold.txt 2>/tmp/report-cold.log; \
		/tmp/blreport -quick -cache-dir $$dir >/tmp/report-warm.txt 2>/tmp/report-warm.log; \
		cat /tmp/report-cold.log /tmp/report-warm.log; \
		rm -rf $$dir; \
		grep -Eq 'lab: [0-9]+ jobs: [1-9][0-9]* cache hits' /tmp/report-warm.log || { echo "report-par: warm run had no cache hits" >&2; exit 1; }; \
		grep -Eq ' 0 simulated' /tmp/report-warm.log || { echo "report-par: warm run still simulated" >&2; exit 1; }; \
		cmp /tmp/report-cold.txt /tmp/report-warm.txt || { echo "report-par: cold and warm output differ" >&2; exit 1; }; \
		echo "report-par: OK"

cover:
	go test ./internal/... . -cover

fmt:
	gofmt -w .

vet:
	go vet ./...
