package biglittle_test

import (
	"testing"

	"biglittle"
)

// TestTelemetryCrossValidation checks the event log against the two
// independent accountings of the same seeded run: the scheduler's own
// per-task migration counters (exact match required) and the trace
// recorder's tick-sampled timeline (a lower bound, since 1 ms sampling can
// miss sub-tick placements).
func TestTelemetryCrossValidation(t *testing.T) {
	app, err := biglittle.AppByName("bbench")
	if err != nil {
		t.Fatal(err)
	}
	cfg := biglittle.DefaultConfig(app)
	cfg.Duration = 5 * biglittle.Second
	cfg.Seed = 3

	tel := biglittle.NewTelemetry()
	tel.MaxEvents = -1 // keep everything; this run is short
	cfg.Telemetry = tel

	var rec *biglittle.TraceRecorder
	cfg.OnSystem = func(sys *biglittle.SchedSystem) {
		rec = biglittle.AttachTrace(sys, 0, 0)
	}
	res := biglittle.Run(cfg)

	// Exact: telemetry's HMP view (up/down/policy) equals the scheduler's
	// per-task counters aggregated into the Result.
	if got, want := tel.HMPMigrations(), int64(res.HMPMigrations); got != want {
		t.Fatalf("telemetry HMP migrations %d != Result.HMPMigrations %d", got, want)
	}
	if res.HMPMigrations == 0 {
		t.Fatal("bbench run produced no migrations; cross-validation is vacuous")
	}

	// Lower bound: tier changes visible in the 1 ms-sampled timeline cannot
	// exceed the exact transition count (migrations plus wake placements,
	// either of which can move a task across tiers).
	tierOf := func(core int) int {
		// Exynos 5422: cores 0-3 little, 4-7 big.
		if core >= 4 {
			return 1
		}
		return 0
	}
	lastTier := map[int]int{}
	derived := int64(0)
	for _, s := range rec.Samples {
		for core, id := range s.TaskOnCore {
			if id < 0 {
				continue
			}
			tier := tierOf(core)
			if prev, ok := lastTier[id]; ok && prev != tier {
				derived++
			}
			lastTier[id] = tier
		}
	}
	exact := tel.Count(biglittle.EvMigration) + tel.Count(biglittle.EvWake)
	if derived == 0 {
		t.Fatal("recorder never observed a tier change")
	}
	if derived > exact {
		t.Fatalf("recorder-derived tier changes %d exceed exact event count %d",
			derived, exact)
	}
}

// TestTelemetryEventCoverage checks that every subsystem actually publishes:
// scheduler wakes/migrations, governor decisions, frequency transitions, and
// power snapshots all appear in one default run.
func TestTelemetryEventCoverage(t *testing.T) {
	app, err := biglittle.AppByName("bbench")
	if err != nil {
		t.Fatal(err)
	}
	cfg := biglittle.DefaultConfig(app)
	cfg.Duration = 5 * biglittle.Second
	cfg.Seed = 1
	tel := biglittle.NewTelemetry()
	cfg.Telemetry = tel
	biglittle.Run(cfg)

	for _, k := range []biglittle.TelemetryKind{
		biglittle.EvMigration, biglittle.EvWake, biglittle.EvFreq,
		biglittle.EvGovernor, biglittle.EvPower,
	} {
		if tel.Count(k) == 0 {
			t.Errorf("no %v events recorded", k)
		}
	}
	// Governor decisions carry the triggering utilization and frequency step.
	for _, ev := range tel.Events() {
		if ev.Kind != biglittle.EvGovernor {
			continue
		}
		if ev.MHz == ev.PrevMHz {
			t.Fatalf("governor event without a frequency change: %+v", ev)
		}
		if ev.Cluster < 0 {
			t.Fatalf("governor event without a cluster: %+v", ev)
		}
		break
	}

	// An FPS app populates the frame-time histogram.
	fps, _ := biglittle.AppByName("angry_bird")
	fcfg := biglittle.DefaultConfig(fps)
	fcfg.Duration = 5 * biglittle.Second
	ftel := biglittle.NewTelemetry()
	fcfg.Telemetry = ftel
	biglittle.Run(fcfg)
	if ftel.Histogram("frame_time_ms").Count() == 0 {
		t.Error("frame_time_ms histogram empty for an FPS app")
	}
}

// TestTelemetryDeterminism: identical seeds produce identical event streams.
func TestTelemetryDeterminism(t *testing.T) {
	run := func() *biglittle.Telemetry {
		app, _ := biglittle.AppByName("browser")
		cfg := biglittle.DefaultConfig(app)
		cfg.Duration = 3 * biglittle.Second
		cfg.Seed = 42
		tel := biglittle.NewTelemetry()
		cfg.Telemetry = tel
		biglittle.Run(cfg)
		return tel
	}
	a, b := run(), run()
	if a.TotalEvents() != b.TotalEvents() {
		t.Fatalf("event totals differ across identical runs: %d vs %d",
			a.TotalEvents(), b.TotalEvents())
	}
	ae, be := a.Events(), b.Events()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, ae[i], be[i])
		}
	}
}

// TestTelemetryLatencyHistogram: a latency app feeds latency_ms.
func TestTelemetryLatencyHistogram(t *testing.T) {
	app, _ := biglittle.AppByName("bbench")
	cfg := biglittle.DefaultConfig(app)
	cfg.Duration = 5 * biglittle.Second
	tel := biglittle.NewTelemetry()
	cfg.Telemetry = tel
	res := biglittle.Run(cfg)

	h := tel.Histogram("latency_ms")
	if h.Count() != res.Interactions {
		t.Fatalf("latency histogram has %d observations, Result has %d interactions",
			h.Count(), res.Interactions)
	}
	if h.Count() > 0 && h.Quantile(0.95) < h.Quantile(0.50) {
		t.Fatal("p95 below p50")
	}
}

// runForOverhead is the benchmark body shared by the telemetry on/off pair.
func runForOverhead(tel *biglittle.Telemetry) biglittle.Result {
	app, _ := biglittle.AppByName("eternity_warrior")
	cfg := biglittle.DefaultConfig(app)
	cfg.Duration = 4 * biglittle.Second
	cfg.Seed = 1
	cfg.Telemetry = tel
	return biglittle.Run(cfg)
}

// BenchmarkTelemetryOff is the baseline: a nil collector, so every emit site
// reduces to one pointer check. Compare with BenchmarkTelemetryOn; the delta
// must stay under a few percent (the tentpole's <3% overhead budget).
func BenchmarkTelemetryOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runForOverhead(nil)
	}
}

// BenchmarkTelemetryOn measures a fully-enabled collector with the default
// bounded event buffer.
func BenchmarkTelemetryOn(b *testing.B) {
	var events int64
	for i := 0; i < b.N; i++ {
		tel := biglittle.NewTelemetry()
		runForOverhead(tel)
		events = tel.TotalEvents()
	}
	b.ReportMetric(float64(events), "events/run")
}
