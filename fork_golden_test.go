package biglittle_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"biglittle"
)

// TestForkGoldenCorpus pushes every app on every §V-C hotplug configuration
// through the snapshot/fork path — one warmed prefix per (app, config),
// snapshotted at 25%, 50%, and 75% of the run, each snapshot resumed to the
// end — and requires the rendered output to match testdata/golden byte for
// byte. There is deliberately NO update path here: the corpus is written
// only by from-scratch runs (golden_test.go), so this test can never mask a
// fork divergence by regenerating the files it checks against.
func TestForkGoldenCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("fork corpus skipped in -short mode")
	}
	fracs := []struct {
		name string
		num  biglittle.Time
	}{{"25%", 1}, {"50%", 2}, {"75%", 3}}

	for _, app := range biglittle.Apps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			path := filepath.Join("testdata", "golden", app.Name+".txt")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no golden file for %s: %v", app.Name, err)
			}

			// One render per fork fraction, each spanning all study configs —
			// the same layout golden_test.go writes.
			renders := make([]strings.Builder, len(fracs))
			for i := range renders {
				fmt.Fprintf(&renders[i], "golden master: %s, seed 1, %v per config\n",
					app.Name, biglittle.GoldenDuration)
			}

			for _, cc := range biglittle.StudyConfigs() {
				cfg := biglittle.DefaultConfig(app)
				cfg.Duration = biglittle.GoldenDuration
				cfg.Cores = cc

				// One prefix run per config, snapshotted three times.
				sim, err := biglittle.NewSim(cfg)
				if err != nil {
					t.Fatal(err)
				}
				snaps := make([]*biglittle.Snapshot, len(fracs))
				for i, f := range fracs {
					sim.RunTo(cfg.Duration * f.num / 4)
					st, err := sim.Snapshot()
					if err != nil {
						t.Fatalf("%v snapshot at %s: %v", cc, f.name, err)
					}
					// Round-trip the codec so the corpus also pins the wire form.
					blob, err := biglittle.EncodeSnapshot(st)
					if err != nil {
						t.Fatal(err)
					}
					if snaps[i], err = biglittle.DecodeSnapshot(blob); err != nil {
						t.Fatal(err)
					}
				}
				for i := range fracs {
					forked, err := biglittle.Resume(cfg, snaps[i])
					if err != nil {
						t.Fatalf("%v resume at %s: %v", cc, fracs[i].name, err)
					}
					forked.RunTo(cfg.Duration)
					renders[i].WriteString(biglittle.RenderGolden(cc, forked.Finish()))
				}
			}

			for i, f := range fracs {
				if got := renders[i].String(); got != string(want) {
					t.Errorf("fork at %s diverges from the golden corpus:\n%s",
						f.name, biglittle.ExplainTextDiff(string(want), got))
				}
			}
		})
	}
}
