package biglittle_test

import (
	"fmt"

	"biglittle"
)

// Run one bundled application model on the paper's default platform and
// read the headline metrics.
func ExampleRun() {
	app, _ := biglittle.AppByName("video_player")
	cfg := biglittle.DefaultConfig(app)
	cfg.Duration = 5 * biglittle.Second
	r := biglittle.Run(cfg)
	fmt.Printf("%s: %.0f fps avg, big-core use %.1f%%\n", r.App, r.AvgFPS, r.TLP.BigPct)
	// Output: video_player: 30 fps avg, big-core use 0.0%
}

// Hotplug configurations use the paper's §V-C notation.
func ExampleParseCoreConfig() {
	cc, err := biglittle.ParseCoreConfig("L2+B1")
	fmt.Println(cc, err)
	_, err = biglittle.ParseCoreConfig("B4")
	fmt.Println(err != nil)
	// Output:
	// L2+B1 <nil>
	// true
}

// Drive the Cortex-A7/A15 microarchitecture models directly with a
// SPEC-like workload: the 2 MB big L2 holds mcf's working set, the little
// 512 KB L2 does not.
func ExampleRunTrace() {
	var mcf biglittle.SPECProfile
	for _, p := range biglittle.SPECProfiles() {
		if p.Name == "mcf" {
			mcf = p
		}
	}
	little := biglittle.RunTrace(biglittle.CortexA7(), mcf, 1300, 100_000)
	big := biglittle.RunTrace(biglittle.CortexA15(), mcf, 1300, 100_000)
	fmt.Printf("same-frequency speedup > 4: %v\n", biglittle.TraceSpeedup(big, little) > 4)
	fmt.Printf("little L2 misses, big L2 does not: %v\n",
		little.L2MissRate > 0.3 && big.L2MissRate < 0.05)
	// Output:
	// same-frequency speedup > 4: true
	// little L2 misses, big L2 does not: true
}

// Build a custom workload from the library's primitives: a periodic sensor
// task plus occasional processing bursts.
func ExampleCustomApp() {
	app := biglittle.CustomApp("sensor_hub", biglittle.Latency, func(ctx *biglittle.Ctx) {
		sample := biglittle.NewThread(ctx, "hub.sample", 1.2)
		process := biglittle.NewThread(ctx, "hub.process", 1.9)
		biglittle.Periodic(ctx, sample, biglittle.PeriodicConfig{
			Period: 20 * biglittle.Millisecond,
			Work:   0.2 * biglittle.Mc,
		})
		biglittle.InteractionLoop(ctx, biglittle.InteractionConfig{
			Think: 500 * biglittle.Millisecond,
			Stages: func() []biglittle.Stage {
				return []biglittle.Stage{
					{Threads: []*biglittle.Thread{process}, Work: 6 * biglittle.Mc},
				}
			},
		})
	})
	cfg := biglittle.DefaultConfig(app)
	cfg.Duration = 5 * biglittle.Second
	r := biglittle.Run(cfg)
	fmt.Printf("%s processed %d bursts, all on little cores: %v\n",
		r.App, r.Interactions, r.TLP.BigPct == 0)
	// Output: sensor_hub processed 10 bursts, all on little cores: true
}

// Load an application model from a JSON workload spec.
func ExampleLoadSpec() {
	app, err := biglittle.LoadSpec([]byte(`{
		"name": "beeper",
		"threads": [{"name": "beep", "speedup": 1.2}],
		"periodics": [{"thread": "beep", "period_ms": 100, "work_mc": 0.5}]
	}`))
	if err != nil {
		fmt.Println(err)
		return
	}
	cfg := biglittle.DefaultConfig(app)
	cfg.Duration = 2 * biglittle.Second
	r := biglittle.Run(cfg)
	fmt.Printf("%s ran %.1f Gc of work\n", r.App, r.TotalWorkGc)
	// Output: beeper ran 0.0 Gc of work
}
