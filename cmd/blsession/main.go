// Command blsession runs a multi-app usage session — a comma-separated list
// of app:duration phases — and prints per-phase power, performance, and
// battery drain.
//
// Usage:
//
//	blsession -phases browser:20s,pdf_reader:15s,eternity_warrior:20s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"biglittle"
)

func main() {
	var (
		phasesArg = flag.String("phases", "browser:10s,video_player:10s",
			"comma-separated app:duration phases")
		seed = flag.Int64("seed", 1, "workload random seed")
	)
	flag.Parse()

	var phases []biglittle.SessionPhase
	for _, part := range strings.Split(*phasesArg, ",") {
		fields := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(fields) != 2 {
			fmt.Fprintf(os.Stderr, "bad phase %q (want app:duration)\n", part)
			os.Exit(1)
		}
		app, err := biglittle.AppByName(fields[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		d, err := time.ParseDuration(fields[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		phases = append(phases, biglittle.SessionPhase{
			App: app, Duration: biglittle.Time(d.Nanoseconds()),
		})
	}

	cfg := biglittle.NewSession(phases...)
	cfg.Seed = *seed
	r := biglittle.RunSession(cfg)
	fmt.Print(biglittle.RenderSession(r))
	fmt.Printf("\nbattery at this mix: %.1f hours of continuous use\n",
		biglittle.GalaxyS5Pack().HoursAt(r.AvgPowerMW))
}
