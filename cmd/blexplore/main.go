// Command blexplore searches a declared configuration space for the Pareto
// front of (energy, run-time) using successive halving: short snapshot-forked
// runs screen the whole space cheaply, and only the survivors of each rung
// graduate to longer, higher-fidelity runs — the final rung at full fidelity
// from scratch. Every rung is memoized through the lab cache, so repeating or
// refining an exploration simulates only what is new.
//
// The space is the cross product of -dim axes (or a -space file with one
// "key = v1,v2,v3" dimension per line); keys come from the override
// vocabulary the other tools share (governor tunables, HMP up/down
// thresholds, scheduler, cores, ...).
//
// Usage:
//
//	blexplore -app fifa15 -dim "governor=interactive,ondemand,past" \
//	          -dim "sample-ms=10,60,150" -objective edp
//	blexplore -app bbench -space space.txt -budget 15m -objective energy
//	blexplore -app fifa15 -space space.txt -verify-exhaustive
//
// -budget caps the planned simulated time; a space too large for it is
// screened on a seeded deterministic sample. -verify-exhaustive re-runs the
// space exhaustively at full fidelity and fails unless the exploration found
// the identical frontier — on the cache the exploration just warmed, only
// the pruned points simulate.
//
// The report on stdout is deterministic for fixed inputs (plan-derived, so a
// warm re-run prints byte-identical output); runtime statistics go to
// stderr. With -check, the final full-fidelity rung runs under the
// invariant auditor. With -remote, full-fidelity from-scratch rungs execute
// on the fleet while fork-accelerated screening rungs stay local.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"biglittle"
	"biglittle/internal/cli"
)

// dimFlags collects repeatable -dim flags.
type dimFlags []biglittle.ExploreDim

func (d *dimFlags) String() string { return fmt.Sprintf("%d dims", len(*d)) }

func (d *dimFlags) Set(spec string) error {
	dim, err := biglittle.ParseExploreDim(spec)
	if err != nil {
		return err
	}
	*d = append(*d, dim)
	return nil
}

func main() {
	ex := cli.RegisterExperiment(flag.CommandLine, 15*time.Second)
	var dims dimFlags
	flag.Var(&dims, "dim", "space dimension as key=v1,v2,... (repeatable; override-vocabulary keys)")
	var (
		appName   = flag.String("app", "", "application to explore (required)")
		spaceFile = flag.String("space", "", "space spec file: one key=v1,v2,... dimension per line, '#' comments")
		objective = flag.String("objective", "edp", "scalar objective ranking candidates: energy|edp|runtime")
		budget    = flag.Duration("budget", 0, "cap on planned simulated time (e.g. 15m of simulated seconds; 0 = screen the whole space)")
		eta       = flag.Int("eta", 4, "halving factor: each rung keeps ~1/eta of its candidates and runs eta times longer")
		keep      = flag.Int("keep", 4, "finalists graduating to the full-fidelity final rung")
		minRung   = flag.Duration("min-rung", 0, "screening-fidelity floor: no rung runs shorter than this (default duration/16)")
		verify    = flag.Bool("verify-exhaustive", false, "re-run the space exhaustively and fail unless the frontier matches")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "blexplore:", err)
		os.Exit(1)
	}
	if *appName == "" {
		fail(fmt.Errorf("-app is required (one of: %s)", strings.Join(appNames(), ", ")))
	}
	app, err := biglittle.AppByName(*appName)
	if err != nil {
		fail(err)
	}
	obj, err := biglittle.ParseExploreObjective(*objective)
	if err != nil {
		fail(err)
	}
	if *spaceFile != "" {
		text, err := os.ReadFile(*spaceFile)
		if err != nil {
			fail(err)
		}
		fileDims, err := biglittle.ParseExploreSpec(string(text))
		if err != nil {
			fail(fmt.Errorf("%s: %w", *spaceFile, err))
		}
		dims = append(fileDims, dims...)
	}
	if len(dims) == 0 {
		fail(fmt.Errorf("no space: declare at least one -dim or a -space file"))
	}

	base := biglittle.DefaultConfig(app)
	base.Seed = ex.Seed
	base.Duration = biglittle.Time(ex.Duration.Nanoseconds())
	space := biglittle.ExploreSpace{Base: base, Dims: dims}

	runner, err := ex.Runner()
	if err != nil {
		fail(err)
	}
	// -check audits the final full-fidelity rung (Options.Check), not every
	// screening run: a globally checking runner cannot fork and the ladder
	// loses its acceleration. The engine flips the runner flag around the
	// final rung itself.
	runner.Check = false

	opts := biglittle.ExploreOptions{
		Runner:      runner,
		Objective:   obj,
		Budget:      biglittle.Time(budget.Nanoseconds()),
		Eta:         *eta,
		Keep:        *keep,
		MinDuration: biglittle.Time(minRung.Nanoseconds()),
		Seed:        ex.Seed,
		Check:       ex.Check,
		Log:         ex.Logger(),
	}

	start := time.Now()
	rep, err := biglittle.Explore(space, opts)
	if err != nil {
		fail(err)
	}
	rep.Render(os.Stdout)

	if *verify {
		exh, err := biglittle.ExploreExhaustive(space, biglittle.ExploreOptions{
			Runner: runner, Objective: obj, Log: ex.Logger(),
		})
		if err != nil {
			fail(err)
		}
		if !biglittle.SameExploreFrontier(rep, exh) {
			fmt.Fprintf(os.Stderr, "blexplore: frontier DIFFERS from exhaustive (explore %s vs exhaustive %s)\n",
				frontierIndices(rep), frontierIndices(exh))
			os.Exit(1)
		}
		fmt.Println("frontier matches exhaustive")
	}
	cli.PrintLabStats(os.Stderr, runner, time.Since(start))
}

func frontierIndices(rep *biglittle.ExploreReport) string {
	parts := make([]string, len(rep.Frontier))
	for i, p := range rep.Frontier {
		parts[i] = fmt.Sprint(p.Index)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func appNames() []string {
	apps := biglittle.Apps()
	names := make([]string, len(apps))
	for i, a := range apps {
		names[i] = a.Name
	}
	return names
}
