package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"biglittle"
)

// testServer builds a server around a short live session advanced far enough
// to have decisions in the flight recorder, with the full route table —
// fleet coordinator included, sharing the session's telemetry collector as
// main does.
func testServer(t *testing.T) (*server, http.Handler) {
	t.Helper()
	phases, err := parsePhases("bbench:2s")
	if err != nil {
		t.Fatal(err)
	}
	cfg := biglittle.NewSession(phases...)
	tel := biglittle.NewTelemetry()
	prof := biglittle.NewProfiler()
	xr := biglittle.NewXray()
	cfg.Telemetry = tel
	cfg.Profiler = prof
	cfg.Xray = xr
	s := &server{live: biglittle.NewLiveSession(cfg), tel: tel, prof: prof, xr: xr}
	s.live.Advance(1 * biglittle.Second)

	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/tasks/", s.handleTask)
	mux.HandleFunc("/xray", s.handleXray)
	mux.HandleFunc("/diff", s.handleDiff)
	mux.HandleFunc("/checkpoint", s.handleCheckpoint)
	coord := biglittle.NewFleetCoordinator(biglittle.FleetOptions{Tel: tel})
	t.Cleanup(coord.Close)
	coord.Mount(mux)
	return s, mux
}

// coordinatorOnlyServer is testServer for `-phases none`: no live session.
func coordinatorOnlyServer(t *testing.T) http.Handler {
	t.Helper()
	tel := biglittle.NewTelemetry()
	s := &server{tel: tel}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/tasks/", s.handleTask)
	mux.HandleFunc("/xray", s.handleXray)
	mux.HandleFunc("/diff", s.handleDiff)
	mux.HandleFunc("/checkpoint", s.handleCheckpoint)
	coord := biglittle.NewFleetCoordinator(biglittle.FleetOptions{Tel: tel})
	t.Cleanup(coord.Close)
	coord.Mount(mux)
	return mux
}

// checkpointServer is testServer for -app mode: a checkpointable single-app
// run advanced mid-way, with the same route table.
func checkpointServer(t *testing.T) (*server, http.Handler) {
	t.Helper()
	app, err := biglittle.AppByName("bbench")
	if err != nil {
		t.Fatal(err)
	}
	cfg := biglittle.DefaultConfig(app)
	cfg.Duration = 2 * biglittle.Second
	sim, err := biglittle.NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tel := biglittle.NewTelemetry()
	s := &server{sim: sim, simEnd: cfg.Duration, tel: tel}
	sim.RunTo(1 * biglittle.Second)

	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/checkpoint", s.handleCheckpoint)
	coord := biglittle.NewFleetCoordinator(biglittle.FleetOptions{Tel: tel})
	t.Cleanup(coord.Close)
	coord.Mount(mux)
	return s, mux
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestXrayEndpoint(t *testing.T) {
	_, h := testServer(t)
	rec := get(t, h, "/xray")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /xray = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	// The served dump must round-trip through the same parser blxray uses.
	d, err := biglittle.ParseXrayDump(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("ParseXrayDump on /xray body: %v", err)
	}
	if len(d.Spans) == 0 {
		t.Fatal("1s of simulated session recorded no decisions")
	}
}

func TestDiffEndpointIdentical(t *testing.T) {
	s, h := testServer(t)
	dump, err := s.xr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]json.RawMessage{"a": dump, "b": dump})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/diff", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /diff = %d, want 200; body: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	var resp diffResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response is not valid JSON: %v", err)
	}
	if !resp.Identical || resp.Index != -1 {
		t.Fatalf("self-diff not identical: %+v", resp)
	}
	if resp.SpansA == 0 || resp.SpansA != resp.SpansB {
		t.Fatalf("span counts wrong: %+v", resp)
	}
}

func TestDiffEndpointDivergent(t *testing.T) {
	_, h := testServer(t)
	// Two fresh single-run dumps differing only in the HMP up-threshold.
	dump := func(up int) json.RawMessage {
		app, err := biglittle.AppByName("bbench")
		if err != nil {
			t.Fatal(err)
		}
		cfg := biglittle.DefaultConfig(app)
		cfg.Duration = 1 * biglittle.Second
		cfg.Sched.UpThreshold = up
		xr := biglittle.NewXray()
		xr.MaxSpans = -1
		cfg.Xray = xr
		biglittle.Run(cfg)
		data, err := xr.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	body, _ := json.Marshal(map[string]json.RawMessage{"a": dump(700), "b": dump(350)})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/diff", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /diff = %d, want 200; body: %s", rec.Code, rec.Body)
	}
	var resp diffResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Identical || resp.Index < 0 {
		t.Fatalf("threshold change not detected: %+v", resp)
	}
	if resp.A == nil || resp.B == nil {
		t.Fatalf("divergent pair missing from response: %+v", resp)
	}
	if resp.A.SameDecision(*resp.B) {
		t.Fatal("reported spans do not actually diverge")
	}
	found := false
	for _, d := range resp.Provenance {
		if strings.Contains(d.Path, "up_threshold") {
			found = true
		}
	}
	if !found {
		t.Fatalf("provenance does not surface the changed threshold: %+v", resp.Provenance)
	}
}

func TestDiffEndpointErrors(t *testing.T) {
	_, h := testServer(t)
	post := func(body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/diff", strings.NewReader(body)))
		return rec
	}
	if rec := get(t, h, "/diff"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /diff = %d, want 405", rec.Code)
	}
	if rec := post("not json"); rec.Code != http.StatusBadRequest {
		t.Fatalf("garbage body = %d, want 400", rec.Code)
	}
	if rec := post(`{"a": {"spans": []}}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("missing side = %d, want 400", rec.Code)
	}
	if rec := post(`{"a": 42, "b": 42}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("unparseable dump = %d, want 400", rec.Code)
	}
}

func TestIndexListsDiff(t *testing.T) {
	_, h := testServer(t)
	rec := get(t, h, "/")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET / = %d, want 200", rec.Code)
	}
	for _, want := range []string{"/xray", "/diff", "/metrics", "/fleet/stats", "/readyz"} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Fatalf("index does not list %s:\n%s", want, rec.Body)
		}
	}
}

// TestCheckpointEndpoint pins the live-checkpoint contract: /checkpoint on a
// -app run serves a versioned snapshot blob that decodes, resumes, and runs
// out byte-identical to the run it was captured from.
func TestCheckpointEndpoint(t *testing.T) {
	s, h := checkpointServer(t)
	rec := get(t, h, "/checkpoint")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /checkpoint = %d, want 200; body: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("Content-Type = %q, want application/octet-stream", ct)
	}
	if at := rec.Header().Get("X-Sim-Time-Ns"); at == "" || at == "0" {
		t.Fatalf("X-Sim-Time-Ns = %q, want the capture time", at)
	}

	st, err := biglittle.DecodeSnapshot(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("served checkpoint does not decode: %v", err)
	}
	app, err := biglittle.AppByName("bbench")
	if err != nil {
		t.Fatal(err)
	}
	cfg := biglittle.DefaultConfig(app)
	cfg.Duration = 2 * biglittle.Second
	resumed, err := biglittle.Resume(cfg, st)
	if err != nil {
		t.Fatalf("served checkpoint does not resume: %v", err)
	}
	resumed.RunTo(cfg.Duration)
	got := resumed.Finish()
	if want := biglittle.Run(cfg); !reflect.DeepEqual(got, want) {
		t.Fatal("resumed checkpoint diverges from the uninterrupted run")
	}

	// The server's own run, continued in place, is undisturbed by having
	// been checkpointed.
	s.mu.Lock()
	s.sim.RunTo(cfg.Duration)
	own := s.sim.Finish()
	s.mu.Unlock()
	if !reflect.DeepEqual(own, got) {
		t.Fatal("checkpointing perturbed the live run")
	}
}

// TestCheckpointModeRoutes pins /checkpoint's error contract in the other
// two modes and the session routes' behavior in -app mode.
func TestCheckpointModeRoutes(t *testing.T) {
	_, session := testServer(t)
	rec := get(t, session, "/checkpoint")
	if rec.Code != http.StatusConflict {
		t.Fatalf("GET /checkpoint on a session = %d, want 409", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "observers") {
		t.Fatalf("session checkpoint error does not explain the observer exclusion: %s", rec.Body)
	}

	coord := coordinatorOnlyServer(t)
	if rec := get(t, coord, "/checkpoint"); rec.Code != http.StatusNotFound {
		t.Fatalf("GET /checkpoint with no simulation = %d, want 404", rec.Code)
	}

	// In -app mode the observability routes explain themselves instead of
	// panicking on the nil session.
	_, appMode := checkpointServer(t)
	rec = get(t, appMode, "/snapshot")
	if rec.Code != http.StatusNotFound || !strings.Contains(rec.Body.String(), "/checkpoint") {
		t.Fatalf("GET /snapshot in -app mode = %d (%s), want 404 pointing at /checkpoint", rec.Code, rec.Body)
	}
	if rec := get(t, appMode, "/"); !strings.Contains(rec.Body.String(), "checkpointable") {
		t.Fatalf("index does not announce checkpointable mode:\n%s", rec.Body)
	}
}

// TestFleetMounted pins the coordinator routes next to the observability
// ones, and that the shared collector surfaces fleet metrics in /metrics.
func TestFleetMounted(t *testing.T) {
	_, h := testServer(t)
	for path, want := range map[string]int{
		"/healthz":     http.StatusOK,
		"/readyz":      http.StatusOK,
		"/fleet/stats": http.StatusOK,
	} {
		if rec := get(t, h, path); rec.Code != want {
			t.Fatalf("GET %s = %d, want %d", path, rec.Code, want)
		}
	}
	rec := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", rec.Code)
	}
	body := rec.Body.String()
	for _, metric := range []string{
		"biglittle_fleet_jobs_failed_total 0",
		"biglittle_fleet_queue_depth 0",
		"biglittle_sim_seconds", // session metrics still present alongside
	} {
		if !strings.Contains(body, metric) {
			t.Fatalf("/metrics missing %q:\n%.2000s", metric, body)
		}
	}
}

// TestCoordinatorOnlyMode pins -phases none behavior: fleet and metrics
// routes serve, session routes explain there is no session instead of
// panicking on a nil live pointer.
func TestCoordinatorOnlyMode(t *testing.T) {
	h := coordinatorOnlyServer(t)
	if rec := get(t, h, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("GET /readyz = %d, want 200", rec.Code)
	}
	rec := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "biglittle_fleet_jobs_failed_total 0") {
		t.Fatalf("/metrics missing fleet counters:\n%.2000s", rec.Body.String())
	}
	for _, path := range []string{"/snapshot", "/xray", "/tasks/render"} {
		rec := get(t, h, path)
		if rec.Code != http.StatusNotFound {
			t.Fatalf("GET %s without a session = %d, want 404", path, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), "no live session") {
			t.Fatalf("GET %s error does not explain coordinator-only mode: %s", path, rec.Body)
		}
	}
	if rec := get(t, h, "/"); !strings.Contains(rec.Body.String(), "fleet coordinator") {
		t.Fatalf("index does not announce coordinator-only mode:\n%s", rec.Body)
	}
}
