// Command blserve drives a long-running multi-app session and serves its
// observability surface over HTTP while the simulation advances: Prometheus
// metrics from the telemetry registry and the per-task profiler, JSON
// attribution snapshots, per-task drill-down, and Go pprof. Simulated time
// is paced against the wall clock (-speed) so dashboards see a live system
// rather than an instant replay.
//
// blserve is also the fleet coordinator: it mounts the distributed-lab job
// API (/fleet/...) next to the observability routes, so blworker processes
// can lease simulation jobs from it and blsweep/blreport/bltlp can submit
// sweeps with -remote. `-phases none` runs a coordinator-only server with
// no live session.
//
// With -app, blserve instead drives a checkpointable single-app run: the
// whole simulation state is captured on demand at /checkpoint as a
// versioned snapshot blob that Resume continues byte-identically (DESIGN.md
// §9). Checkpointable runs carry no observers — the snapshot contract
// excludes them — so the session observability routes 404 in this mode.
//
// Usage:
//
//	blserve -phases browser:20s,video_player:20s -speed 4
//	blserve -phases none                      # fleet coordinator only
//	blserve -app fifa15 -app-duration 2m      # checkpointable live run
//	curl -o run.blsnap localhost:8377/checkpoint
//	curl localhost:8377/metrics        # Prometheus text format
//	curl localhost:8377/snapshot       # JSON attribution tables
//	curl localhost:8377/tasks/render   # one task's attribution row
//	curl localhost:8377/fleet/stats    # fleet queue/lease/worker snapshot
//	curl -s localhost:8377/xray | blxray ls   # causal decision flight recorder
//
// SIGINT drains the fleet (stops granting leases, waits for in-flight jobs,
// /readyz flips to 503), stops the simulation, shuts the server down, and
// prints a final telemetry and attribution summary.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"biglittle"
)

// step is how far simulated time advances per scheduler turn of the sim
// loop; HTTP readers see state at most one step stale.
const step = 100 * biglittle.Millisecond

// server owns the live simulation and serializes its advancement against
// HTTP reads. Exactly one of live/sim is set outside coordinator-only mode:
// live is the observable multi-app session; sim is a checkpointable
// single-app run (-app), which trades the observability surface for
// snapshot capability (the snapshot contract excludes live observers) and
// serves its state at /checkpoint. With neither (-phases none), the session
// routes report that there is nothing to observe.
type server struct {
	mu     sync.Mutex
	live   *biglittle.LiveSession
	sim    *biglittle.Sim
	simEnd biglittle.Time
	tel    *biglittle.Telemetry
	prof   *biglittle.Profiler
	xr     *biglittle.Xray
	done   bool
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8377", "HTTP listen address")
		phasesArg = flag.String("phases", "browser:10s,video_player:10s",
			"comma-separated app:duration phases, or \"none\" for a fleet-coordinator-only server")
		seed    = flag.Int64("seed", 1, "workload random seed")
		speed   = flag.Float64("speed", 1.0, "simulated seconds per wall second (0 = free-run)")
		repeat  = flag.Int("repeat", 0, "times to repeat the phase list (0 = forever)")
		verbose = flag.Bool("v", false, "log fleet job transitions to stderr")

		appArg = flag.String("app", "",
			"run a checkpointable single-app simulation instead of a session: its whole state is served at /checkpoint (no telemetry/profiler/xray — the snapshot contract excludes live observers)")
		appDur = flag.Duration("app-duration", 60*time.Second, "simulated duration of the -app run")

		fleetQueue    = flag.Int("fleet-queue", 1024, "fleet: max pending jobs before 429 backpressure")
		fleetTTL      = flag.Duration("fleet-lease-ttl", 30*time.Second, "fleet: lease duration before an unrenewed job is requeued")
		fleetAttempts = flag.Int("fleet-max-attempts", 3, "fleet: lease attempts before a job is failed")
		fleetCacheDir = flag.String("fleet-cache-dir", "", "fleet: coordinator result cache directory (default: the user cache dir)")
		fleetNoCache  = flag.Bool("fleet-no-cache", false, "fleet: disable the coordinator result cache")
		drainTimeout  = flag.Duration("drain-timeout", 10*time.Second, "fleet: max wait for in-flight jobs on shutdown")
	)
	flag.Parse()

	var logger *slog.Logger
	if *verbose {
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug}))
	}

	tel := biglittle.NewTelemetry()
	s := &server{tel: tel}
	switch {
	case *appArg != "":
		app, err := biglittle.AppByName(*appArg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "blserve:", err)
			os.Exit(1)
		}
		cfg := biglittle.DefaultConfig(app)
		cfg.Seed = *seed
		cfg.Duration = biglittle.Time(appDur.Nanoseconds())
		sim, err := biglittle.NewSim(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "blserve:", err)
			os.Exit(1)
		}
		s.sim, s.simEnd = sim, cfg.Duration
	case *phasesArg != "none":
		phases, err := parsePhases(*phasesArg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		reps := *repeat
		if reps <= 0 {
			reps = 10_000 // "forever" at human time scales; ~a month of sim time
		}
		var all []biglittle.SessionPhase
		for i := 0; i < reps; i++ {
			all = append(all, phases...)
		}

		cfg := biglittle.NewSession(all...)
		cfg.Seed = *seed
		s.prof = biglittle.NewProfiler()
		s.xr = biglittle.NewXray()
		cfg.Telemetry = tel
		cfg.Profiler = s.prof
		cfg.Xray = s.xr
		s.live = biglittle.NewLiveSession(cfg)
	}

	var fleetCache *biglittle.LabCache
	if !*fleetNoCache {
		var err error
		fleetCache, err = biglittle.OpenLabCache(*fleetCacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "blserve: fleet cache:", err)
			os.Exit(1)
		}
	}
	// The coordinator shares the session's telemetry collector, so one
	// /metrics scrape covers both the simulation and the fleet.
	coord := biglittle.NewFleetCoordinator(biglittle.FleetOptions{
		MaxQueue:    *fleetQueue,
		LeaseTTL:    *fleetTTL,
		MaxAttempts: *fleetAttempts,
		Cache:       fleetCache,
		Tel:         tel,
		Log:         logger,
	})
	defer coord.Close()

	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/tasks/", s.handleTask)
	mux.HandleFunc("/xray", s.handleXray)
	mux.HandleFunc("/diff", s.handleDiff)
	mux.HandleFunc("/checkpoint", s.handleCheckpoint)
	coord.Mount(mux)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Addr: *addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}()
	what := "phases " + *phasesArg
	if s.sim != nil {
		what = fmt.Sprintf("checkpointable app %s for %v", *appArg, *appDur)
	}
	fmt.Printf("blserve: listening on http://%s (%s, speed %gx, seed %d)\n",
		*addr, what, *speed, *seed)

	if s.live != nil || s.sim != nil {
		s.simLoop(ctx, *speed)
	} else {
		<-ctx.Done()
	}

	// Graceful shutdown: flip /readyz to 503, stop granting leases, and give
	// in-flight workers until -drain-timeout to publish their results before
	// the HTTP server goes away.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
	if err := coord.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "blserve:", err)
	}
	cancelDrain()

	shctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	srv.Shutdown(shctx)

	fs := coord.Stats()
	fmt.Printf("\nblserve: fleet: %d jobs completed, %d failed, %d retries, %d cache hits\n",
		fs.Completed, fs.FailedJobs, fs.Retries, fs.CacheHits)
	if s.sim != nil {
		s.mu.Lock()
		now, done := s.sim.Now(), s.done
		var res biglittle.Result
		if done {
			res = s.sim.Finish()
		}
		s.mu.Unlock()
		if done {
			fmt.Printf("blserve: run complete: %s: %.1f J, avg %.0f mW, %.1f fps, big %.1f%%\n",
				res.App, res.EnergyMJ/1000, res.AvgPowerMW, res.AvgFPS, res.TLP.BigPct)
		} else {
			fmt.Printf("blserve: stopped at sim t=%v (checkpoint was available at /checkpoint)\n", now)
		}
		return
	}
	if s.live == nil {
		return
	}
	// Final report: the event-level summary and the attribution table.
	s.mu.Lock()
	now := s.live.Now()
	snap := s.prof.Snapshot(now)
	s.mu.Unlock()
	fmt.Printf("blserve: stopped at sim t=%v\n\n", now)
	fmt.Print(tel.Summary(now))
	fmt.Println()
	fmt.Print(snap.Summary())
}

// simLoop advances the session in fixed sim-time steps, sleeping between
// steps to hold the requested sim/wall ratio, until the session completes or
// ctx is cancelled.
func (s *server) simLoop(ctx context.Context, speed float64) {
	var wallStep time.Duration
	if speed > 0 {
		wallStep = time.Duration(float64(step) / speed)
	}
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		s.mu.Lock()
		var done bool
		if s.sim != nil {
			s.sim.RunTo(s.sim.Now() + step)
			done = s.sim.Now() >= s.simEnd
		} else {
			done = s.live.Advance(s.live.Now() + step)
		}
		s.done = done
		s.mu.Unlock()
		if done {
			fmt.Println("blserve: simulation complete; serving final state until interrupted")
			<-ctx.Done()
			return
		}
		if wallStep > 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(wallStep):
			}
		}
	}
}

func parsePhases(arg string) ([]biglittle.SessionPhase, error) {
	var phases []biglittle.SessionPhase
	for _, part := range strings.Split(arg, ",") {
		fields := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(fields) != 2 {
			return nil, fmt.Errorf("bad phase %q (want app:duration)", part)
		}
		app, err := biglittle.AppByName(fields[0])
		if err != nil {
			return nil, err
		}
		d, err := time.ParseDuration(fields[1])
		if err != nil {
			return nil, err
		}
		if d <= 0 {
			return nil, fmt.Errorf("phase %q: duration must be positive", part)
		}
		phases = append(phases, biglittle.SessionPhase{
			App: app, Duration: biglittle.Time(d.Nanoseconds()),
		})
	}
	return phases, nil
}

// noSession replies 404 on session-observability routes when there is no
// observable session (coordinator-only mode, or a checkpointable -app run,
// which carries no observers); returns true when it handled the request.
func (s *server) noSession(w http.ResponseWriter) bool {
	if s.live != nil {
		return false
	}
	msg := "no live session: blserve is running as a fleet coordinator (-phases none)"
	if s.sim != nil {
		msg = "no live session: blserve is running a checkpointable single-app simulation (-app), which carries no observers; see /checkpoint"
	}
	http.Error(w, msg, http.StatusNotFound)
	return true
}

// handleCheckpoint serves the live run's whole-simulation snapshot in its
// versioned wire form — `curl -o run.blsnap .../checkpoint` captures a
// running experiment, and biglittle.DecodeSnapshot/Resume continue it
// elsewhere, byte-identical to never having stopped (DESIGN.md §9).
func (s *server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.sim == nil {
		if s.live != nil {
			http.Error(w, "checkpointing needs a single-app run (-app <name>): sessions carry live observers (telemetry, profiler, xray), which the snapshot contract excludes", http.StatusConflict)
			return
		}
		http.Error(w, "no live simulation to checkpoint: start blserve with -app <name>", http.StatusNotFound)
		return
	}
	s.mu.Lock()
	now := s.sim.Now()
	st, err := s.sim.Snapshot()
	var blob []byte
	if err == nil {
		blob, err = biglittle.EncodeSnapshot(st)
	}
	s.mu.Unlock()
	if err != nil {
		http.Error(w, "checkpoint: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", fmt.Sprintf("checkpoint-%v.blsnap", now)))
	w.Header().Set("X-Sim-Time-Ns", fmt.Sprintf("%d", int64(now)))
	w.Write(blob)
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	banner := "blserve: fleet coordinator (no live session)"
	if s.sim != nil {
		s.mu.Lock()
		now, done := s.sim.Now(), s.done
		s.mu.Unlock()
		state := "running"
		if done {
			state = "complete"
		}
		banner = fmt.Sprintf("blserve: checkpointable big.LITTLE simulation (sim t=%v, %s)", now, state)
	} else if s.live != nil {
		s.mu.Lock()
		now, phase := s.live.Now(), s.live.Phase()
		if s.done {
			phase = "(complete)"
		}
		s.mu.Unlock()
		banner = fmt.Sprintf("blserve: live big.LITTLE simulation (sim t=%v, phase %q)", now, phase)
	}
	fmt.Fprintf(w, `%s

endpoints:
  /metrics        Prometheus text format (telemetry registry + per-task profiler)
  /snapshot       JSON attribution tables (run/wait by core type, residency, energy, migrations)
  /tasks/<name>   one task's attribution row
  /xray           causal decision flight recorder (last spans, JSON; pipe to blxray)
  /diff           POST {"a": <xray dump>, "b": <xray dump>}: first divergent decision
  /checkpoint     whole-simulation snapshot of a -app run (versioned wire blob; resumable)
  /fleet/jobs     POST a job spec; /fleet/jobs/{id} polls it (distributed lab)
  /fleet/stats    fleet queue/lease/worker snapshot (also: bllab fleet)
  /healthz        liveness; /readyz flips 503 while draining
  /debug/pprof/   Go pprof
`, banner)
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.live == nil {
		// Coordinator-only: the shared collector still carries the fleet
		// counters and gauges.
		var b strings.Builder
		s.tel.WritePrometheus(&b)
		fmt.Fprint(w, b.String())
		return
	}
	s.mu.Lock()
	now := s.live.Now()
	phase := s.live.Phase()
	snap := s.prof.Snapshot(now)
	var b strings.Builder
	s.tel.WritePrometheus(&b)
	s.mu.Unlock()

	fmt.Fprintf(w, "# TYPE biglittle_sim_seconds gauge\nbiglittle_sim_seconds %g\n", now.Seconds())
	fmt.Fprintf(w, "# TYPE biglittle_sim_phase_info gauge\nbiglittle_sim_phase_info{phase=%q} 1\n", phase)
	fmt.Fprint(w, b.String())
	snap.WritePrometheus(w)
}

func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.noSession(w) {
		return
	}
	s.mu.Lock()
	now := s.live.Now()
	phase := s.live.Phase()
	snap := s.prof.Snapshot(now)
	s.mu.Unlock()

	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		SimNs   biglittle.Time            `json:"sim_ns"`
		Phase   string                    `json:"phase,omitempty"`
		Profile biglittle.ProfileSnapshot `json:"profile"`
	}{now, phase, snap})
}

// handleXray serves the causal-decision flight recorder: the most recent
// spans as a JSON dump that pipes straight into blxray, e.g.
// `curl -s .../xray | blxray explain -task br.layout -t 140ms`.
func (s *server) handleXray(w http.ResponseWriter, r *http.Request) {
	if s.noSession(w) {
		return
	}
	s.mu.Lock()
	data, err := s.xr.JSON()
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// diffRequest is /diff's POST body: two xray dumps (as served at /xray or
// written by blsim -xray), e.g. snapshots of the same session at two
// revisions or two tunings.
type diffRequest struct {
	A json.RawMessage `json:"a"`
	B json.RawMessage `json:"b"`
}

// diffResponse reports the first divergent decision between the two dumps.
type diffResponse struct {
	Identical bool `json:"identical"`
	// Index is the span-stream position of the first divergent decision
	// (-1 when identical).
	Index int `json:"index"`
	// SpansA/SpansB count each side's decisions.
	SpansA int `json:"spans_a"`
	SpansB int `json:"spans_b"`
	// A/B are the divergent pair (absent when identical or one-sided).
	A *biglittle.XraySpan `json:"a,omitempty"`
	B *biglittle.XraySpan `json:"b,omitempty"`
	// Provenance lists the inputs and candidate-table differences of the
	// divergent pair.
	Provenance []biglittle.FieldDelta `json:"provenance,omitempty"`
}

// handleDiff aligns two uploaded xray dumps and reports the first decision
// that went differently — the cross-run forensics bldiff performs, over HTTP
// so dashboards can compare a live session against a saved baseline.
func (s *server) handleDiff(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, `diff wants POST {"a": <xray dump>, "b": <xray dump>}`, http.StatusMethodNotAllowed)
		return
	}
	var req diffRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.A) == 0 || len(req.B) == 0 {
		http.Error(w, `both "a" and "b" dumps are required`, http.StatusBadRequest)
		return
	}
	da, err := biglittle.ParseXrayDump(req.A)
	if err != nil {
		http.Error(w, "dump a: "+err.Error(), http.StatusBadRequest)
		return
	}
	db, err := biglittle.ParseXrayDump(req.B)
	if err != nil {
		http.Error(w, "dump b: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp := diffResponse{Index: -1, SpansA: len(da.Spans), SpansB: len(db.Spans)}
	if idx, ok := biglittle.FirstDivergentXraySpan(da.Spans, db.Spans); ok {
		resp.Index = idx
		if idx < len(da.Spans) {
			sp := da.Spans[idx]
			resp.A = &sp
		}
		if idx < len(db.Spans) {
			sp := db.Spans[idx]
			resp.B = &sp
		}
		if resp.A != nil && resp.B != nil {
			resp.Provenance = biglittle.DiffXraySpanProvenance(*resp.A, *resp.B, biglittle.DiffTolerance{})
		}
	} else {
		resp.Identical = true
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

func (s *server) handleTask(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/tasks/")
	if name == "" {
		http.NotFound(w, r)
		return
	}
	if s.noSession(w) {
		return
	}
	s.mu.Lock()
	snap := s.prof.Snapshot(s.live.Now())
	s.mu.Unlock()

	t, ok := snap.Task(name)
	if !ok {
		http.Error(w, fmt.Sprintf("no task %q; see /snapshot for the full table", name), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(t)
}
