// Command blmetrics runs one application model with full telemetry enabled
// and reports the event-level view of the run: per-kind event counts,
// migration reasons and rate, the frequency-transition histogram, and
// latency/frame-time percentiles. The raw event log and metric registries
// can be dumped as CSV or JSON for offline analysis.
//
// Usage:
//
//	blmetrics -app bbench -duration 30s
//	blmetrics -app angry_birds -csv events.csv -json metrics.json
//	blmetrics -app youtube -prom -        # Prometheus text format to stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"biglittle"
)

func main() {
	var (
		appName  = flag.String("app", "bbench", "application model to run")
		cores    = flag.String("cores", "L4+B4", "hotplug configuration")
		seed     = flag.Int64("seed", 1, "workload random seed")
		duration = flag.Duration("duration", 30*time.Second, "simulated run duration")
		csvPath  = flag.String("csv", "", "write the raw event log as CSV")
		jsonPath = flag.String("json", "", "write events + metric registries as JSON")
		promPath = flag.String("prom", "", "write the metric registries in Prometheus text format (\"-\" = stdout)")
	)
	flag.Parse()

	app, err := biglittle.AppByName(*appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cc, err := biglittle.ParseCoreConfig(*cores)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cfg := biglittle.DefaultConfig(app)
	cfg.Seed = *seed
	cfg.Cores = cc
	cfg.Duration = biglittle.Time(duration.Nanoseconds())

	tel := biglittle.NewTelemetry()
	cfg.Telemetry = tel

	res := biglittle.Run(cfg)

	fmt.Printf("%s on %s, %v, seed %d\n\n", app.Name, *cores, *duration, *seed)
	fmt.Print(tel.Summary(cfg.Duration))
	fmt.Printf("\nscheduler cross-check: Result.HMPMigrations=%d telemetry=%d\n",
		res.HMPMigrations, tel.HMPMigrations())

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tel.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d events)\n", *csvPath, len(tel.Events()))
	}
	if *jsonPath != "" {
		data, err := tel.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *jsonPath, len(data))
	}
	if *promPath != "" {
		out := os.Stdout
		if *promPath != "-" {
			f, err := os.Create(*promPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := tel.WritePrometheus(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *promPath != "-" {
			fmt.Printf("wrote %s\n", *promPath)
		}
	}
}
