// Command blreport regenerates every table and figure of the paper's
// evaluation in order: Figures 2-6 (§III), Tables III-V and Figures 7-10
// (§V), and Figures 11-13 (§VI). With -quick it runs shortened simulations
// for a fast sanity pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"biglittle"
	"biglittle/internal/cli"
)

func main() {
	ex := cli.RegisterExperiment(flag.CommandLine, 30*time.Second)
	quick := flag.Bool("quick", false, "short runs (8s per app) for a fast pass")
	flag.Parse()

	runner, err := ex.Runner()
	if err != nil {
		fmt.Fprintln(os.Stderr, "blreport:", err)
		os.Exit(1)
	}
	start := time.Now()
	defer func() { cli.PrintLabStats(os.Stderr, runner, time.Since(start)) }()

	o := ex.Options(runner)
	if *quick {
		o.Duration = 8 * biglittle.Second
		o.Instructions = 120_000
	}

	section := func(title string) {
		fmt.Printf("\n===== %s =====\n\n", title)
	}

	section("headline findings")
	fmt.Print(biglittle.RenderSummary(biglittle.Summarize(o)))

	section("§III-A: architectural characteristics")
	fmt.Print(biglittle.RenderFig2(biglittle.Fig2(o)))
	fmt.Println()
	fmt.Print(biglittle.RenderFig3(biglittle.Fig3(o)))
	fmt.Println()
	fmt.Print(biglittle.RenderFig4(biglittle.Fig4(o)))
	fmt.Println()
	fmt.Print(biglittle.RenderFig5(biglittle.Fig5(o)))

	section("§III-B: power by core utilization")
	fmt.Print(biglittle.RenderFig6(biglittle.Fig6(o)))

	section("§V: application characterization (Tables III-V, Figures 9/10)")
	results := biglittle.Characterize(o)
	fmt.Print(biglittle.RenderTable3(results))
	fmt.Println()
	for _, r := range results {
		fmt.Print(biglittle.RenderTable4(r))
		fmt.Println()
	}
	fmt.Print(biglittle.RenderTable5(results))
	fmt.Println()
	fmt.Print(biglittle.RenderLittleResidency(results))
	fmt.Println()
	fmt.Print(biglittle.RenderBigResidency(results))

	section("§V-C: core configurations (Figures 7/8)")
	fmt.Print(biglittle.RenderCoreConfigs(biglittle.CoreConfigs(o)))

	section("§VI-C: governor and HMP parameter study (Figures 11-13)")
	fmt.Print(biglittle.RenderTuning(biglittle.TuningStudy(o)))

	section("extension: §VI-B tiny-core proposal")
	fmt.Print(biglittle.RenderTiny(biglittle.TinyStudy(o)))

	section("extension: §IV-A scheduling policies")
	fmt.Print(biglittle.RenderSchedulers(biglittle.SchedulerStudy(o)))

	section("extension: §IV-D DVFS governors")
	fmt.Print(biglittle.RenderGovernors(biglittle.GovernorStudy(o)))

	section("extension: cpuidle deep idle states")
	fmt.Print(biglittle.RenderIdle(biglittle.IdleStudy(o)))

	section("extension: thermal throttling under sustained load")
	fmt.Print(biglittle.RenderThermal(biglittle.ThermalStudy(o)))

	section("extension: L2-size ablation")
	fmt.Print(biglittle.RenderCacheSweep(biglittle.CacheSweep(o)))

	section("extension: branch predictor validation")
	fmt.Print(biglittle.RenderPredictors(biglittle.PredictorStudy(o)))

	section("extension: battery life and per-thread energy")
	fmt.Print(biglittle.RenderBattery(biglittle.BatteryStudy(o)))

	section("extension: multitasking")
	fmt.Print(biglittle.RenderMultitask(biglittle.MultitaskStudy(o)))

	section("extension: run-to-run variation (5 seeds)")
	fmt.Print(biglittle.RenderSeedStats(biglittle.SeedStats(o, 5)))

	section("extension: energy-delay product by core configuration")
	fmt.Print(biglittle.RenderEDP(biglittle.EDP(o)))

	section("extension: cross-platform (Snapdragon 810-class SoC)")
	fmt.Print(biglittle.RenderCrossPlatform(biglittle.CrossPlatform(o)))

	section("fidelity score vs the paper's published tables")
	fmt.Print(biglittle.RenderFidelity(biglittle.Fidelity(o)))
}
