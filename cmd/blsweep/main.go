// Command blsweep sweeps one scheduler or governor parameter across a range
// of values for one app (or all twelve) and emits CSV — the raw material
// behind Figures 11-13 style studies, for plotting or regression tracking.
//
// Sweeps run through the experiment orchestrator: fanned out over -workers
// simulations and memoized in the result cache, so re-sweeping overlapping
// ranges only simulates the new points.
//
// Usage:
//
//	blsweep -param sample-ms -values 10,20,40,60,80,100 -app bbench
//	blsweep -param up-threshold -values 500,600,700,800,900 > sweep.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"biglittle"
	"biglittle/internal/cli"
)

var params = map[string]func(*biglittle.Config, int){
	"sample-ms":      func(c *biglittle.Config, v int) { c.Gov.SampleMs = v },
	"target-load":    func(c *biglittle.Config, v int) { c.Gov.TargetLoad = v },
	"up-threshold":   func(c *biglittle.Config, v int) { c.Sched.UpThreshold = v },
	"down-threshold": func(c *biglittle.Config, v int) { c.Sched.DownThreshold = v },
	"weight-ms":      func(c *biglittle.Config, v int) { c.Sched.HalfLifeMs = v },
}

func main() {
	ex := cli.RegisterExperiment(flag.CommandLine, 15*time.Second)
	var (
		param   = flag.String("param", "sample-ms", "parameter to sweep: sample-ms|target-load|up-threshold|down-threshold|weight-ms")
		values  = flag.String("values", "10,20,40,60,80,100", "comma-separated values")
		appName = flag.String("app", "", "single app (default: all twelve)")
	)
	flag.Parse()

	setter, ok := params[*param]
	if !ok {
		fmt.Fprintf(os.Stderr, "blsweep: unknown parameter %q\n", *param)
		os.Exit(1)
	}
	vals, err := cli.Ints(*values)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blsweep: -values: %v (nothing to sweep)\n", err)
		os.Exit(1)
	}
	appsToRun, err := cli.ResolveApps(*appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "blsweep:", err)
		os.Exit(1)
	}
	runner, err := ex.Runner()
	if err != nil {
		fmt.Fprintln(os.Stderr, "blsweep:", err)
		os.Exit(1)
	}

	var cfgs []biglittle.Config
	for _, app := range appsToRun {
		for _, v := range vals {
			cfg := biglittle.DefaultConfig(app)
			cfg.Seed = ex.Seed
			cfg.Duration = biglittle.Time(ex.Duration.Nanoseconds())
			setter(&cfg, v)
			cfgs = append(cfgs, cfg)
		}
	}
	start := time.Now()
	results, err := runner.RunConfigs(cfgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "blsweep:", err)
		os.Exit(1)
	}

	fmt.Printf("app,metric,%s,avg_power_mw,energy_j,mean_latency_ms,avg_fps,min_fps,tlp,big_pct,migrations\n", *param)
	for ai := range appsToRun {
		for vi, v := range vals {
			r := results[ai*len(vals)+vi]
			fmt.Printf("%s,%s,%d,%.1f,%.3f,%.2f,%.2f,%.2f,%.3f,%.2f,%d\n",
				r.App, r.Metric, v,
				r.AvgPowerMW, r.EnergyMJ/1000,
				r.MeanLatency.Milliseconds(), r.AvgFPS, r.MinFPS,
				r.TLP.TLP, r.TLP.BigPct, r.HMPMigrations)
		}
	}
	cli.PrintLabStats(os.Stderr, runner, time.Since(start))
}
