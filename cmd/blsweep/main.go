// Command blsweep sweeps one scheduler or governor parameter across a range
// of values for one app (or all twelve) and emits CSV — the raw material
// behind Figures 11-13 style studies, for plotting or regression tracking.
//
// Sweeps run through the experiment orchestrator: fanned out over -workers
// simulations and memoized in the result cache, so re-sweeping overlapping
// ranges only simulates the new points.
//
// Usage:
//
//	blsweep -param sample-ms -values 10,20,40,60,80,100 -app bbench
//	blsweep -param up-threshold -values 500,600,700,800,900 > sweep.csv
//
// With -fork-at, the sweep is snapshot-accelerated: one warmed prefix per
// app (the config with the swept parameter at its default) runs to the fork
// time, and every swept value resumes from that shared snapshot — the knob
// takes effect at the fork point, isolating its post-warmup effect and
// collapsing N full runs into one prefix plus N cheap continuations:
//
//	blsweep -param sample-ms -values 10,20,40,60,80,100 -fork-at 10s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"biglittle"
	"biglittle/internal/cli"
)

var params = map[string]func(*biglittle.Config, int){
	"sample-ms":      func(c *biglittle.Config, v int) { c.Gov.SampleMs = v },
	"target-load":    func(c *biglittle.Config, v int) { c.Gov.TargetLoad = v },
	"up-threshold":   func(c *biglittle.Config, v int) { c.Sched.UpThreshold = v },
	"down-threshold": func(c *biglittle.Config, v int) { c.Sched.DownThreshold = v },
	"weight-ms":      func(c *biglittle.Config, v int) { c.Sched.HalfLifeMs = v },
}

func main() {
	ex := cli.RegisterExperiment(flag.CommandLine, 15*time.Second)
	var (
		param   = flag.String("param", "sample-ms", "parameter to sweep: sample-ms|target-load|up-threshold|down-threshold|weight-ms")
		values  = flag.String("values", "10,20,40,60,80,100", "comma-separated values")
		appName = flag.String("app", "", "single app (default: all twelve)")
		forkAt  = flag.Duration("fork-at", 0, "snapshot-accelerate the sweep: fork each value from a shared prefix warmed to this time (0 = off; swept values take effect at the fork point)")
	)
	flag.Parse()

	setter, ok := params[*param]
	if !ok {
		fmt.Fprintf(os.Stderr, "blsweep: unknown parameter %q\n", *param)
		os.Exit(1)
	}
	vals, err := cli.Ints(*values)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blsweep: -values: %v (nothing to sweep)\n", err)
		os.Exit(1)
	}
	appsToRun, err := cli.ResolveApps(*appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "blsweep:", err)
		os.Exit(1)
	}
	runner, err := ex.Runner()
	if err != nil {
		fmt.Fprintln(os.Stderr, "blsweep:", err)
		os.Exit(1)
	}

	if *forkAt < 0 || biglittle.Time(forkAt.Nanoseconds()) >= biglittle.Time(ex.Duration.Nanoseconds()) {
		if *forkAt != 0 {
			fmt.Fprintf(os.Stderr, "blsweep: -fork-at %v must fall inside the run (0, %v)\n", *forkAt, ex.Duration)
			os.Exit(1)
		}
	}
	var jobs []biglittle.LabJob
	for _, app := range appsToRun {
		base := biglittle.DefaultConfig(app)
		base.Seed = ex.Seed
		base.Duration = biglittle.Time(ex.Duration.Nanoseconds())
		var spec *biglittle.LabForkSpec
		if *forkAt > 0 {
			spec = &biglittle.LabForkSpec{Base: base, At: biglittle.Time(forkAt.Nanoseconds())}
		}
		for _, v := range vals {
			cfg := base
			setter(&cfg, v)
			jobs = append(jobs, biglittle.LabJob{Config: cfg, Fork: spec})
		}
	}
	start := time.Now()
	results, err := runner.RunAll(jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "blsweep:", err)
		os.Exit(1)
	}

	fmt.Printf("app,metric,%s,avg_power_mw,energy_j,mean_latency_ms,avg_fps,min_fps,tlp,big_pct,migrations\n", *param)
	for ai := range appsToRun {
		for vi, v := range vals {
			r := results[ai*len(vals)+vi]
			fmt.Printf("%s,%s,%d,%.1f,%.3f,%.2f,%.2f,%.2f,%.3f,%.2f,%d\n",
				r.App, r.Metric, v,
				r.AvgPowerMW, r.EnergyMJ/1000,
				r.MeanLatency.Milliseconds(), r.AvgFPS, r.MinFPS,
				r.TLP.TLP, r.TLP.BigPct, r.HMPMigrations)
		}
	}
	cli.PrintLabStats(os.Stderr, runner, time.Since(start))
}
