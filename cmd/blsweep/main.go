// Command blsweep sweeps one scheduler or governor parameter across a range
// of values for one app (or all twelve) and emits CSV — the raw material
// behind Figures 11-13 style studies, for plotting or regression tracking.
//
// Usage:
//
//	blsweep -param sample-ms -values 10,20,40,60,80,100 -app bbench
//	blsweep -param up-threshold -values 500,600,700,800,900 > sweep.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"biglittle"
)

var params = map[string]func(*biglittle.Config, int){
	"sample-ms":      func(c *biglittle.Config, v int) { c.Gov.SampleMs = v },
	"target-load":    func(c *biglittle.Config, v int) { c.Gov.TargetLoad = v },
	"up-threshold":   func(c *biglittle.Config, v int) { c.Sched.UpThreshold = v },
	"down-threshold": func(c *biglittle.Config, v int) { c.Sched.DownThreshold = v },
	"weight-ms":      func(c *biglittle.Config, v int) { c.Sched.HalfLifeMs = v },
}

func main() {
	var (
		param    = flag.String("param", "sample-ms", "parameter to sweep: sample-ms|target-load|up-threshold|down-threshold|weight-ms")
		values   = flag.String("values", "10,20,40,60,80,100", "comma-separated values")
		appName  = flag.String("app", "", "single app (default: all twelve)")
		duration = flag.Duration("duration", 15*time.Second, "simulated duration per run")
		seed     = flag.Int64("seed", 1, "workload random seed")
	)
	flag.Parse()

	setter, ok := params[*param]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown parameter %q\n", *param)
		os.Exit(1)
	}
	var vals []int
	for _, f := range strings.Split(*values, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad value %q: %v\n", f, err)
			os.Exit(1)
		}
		vals = append(vals, v)
	}

	var appsToRun []biglittle.App
	if *appName != "" {
		app, err := biglittle.AppByName(*appName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		appsToRun = []biglittle.App{app}
	} else {
		appsToRun = biglittle.Apps()
	}

	fmt.Printf("app,metric,%s,avg_power_mw,energy_j,mean_latency_ms,avg_fps,min_fps,tlp,big_pct,migrations\n", *param)
	for _, app := range appsToRun {
		for _, v := range vals {
			cfg := biglittle.DefaultConfig(app)
			cfg.Seed = *seed
			cfg.Duration = biglittle.Time(duration.Nanoseconds())
			setter(&cfg, v)
			r := biglittle.Run(cfg)
			fmt.Printf("%s,%s,%d,%.1f,%.3f,%.2f,%.2f,%.2f,%.3f,%.2f,%d\n",
				r.App, r.Metric, v,
				r.AvgPowerMW, r.EnergyMJ/1000,
				r.MeanLatency.Milliseconds(), r.AvgFPS, r.MinFPS,
				r.TLP.TLP, r.TLP.BigPct, r.HMPMigrations)
		}
	}
}
