// Command bltlp runs the §V thread-level-parallelism characterization for
// one application or the full suite: Table III rows, the Table IV
// active-core matrix, the Table V efficiency decomposition, and the
// Figure 9/10 frequency-residency distributions.
//
// Usage:
//
//	bltlp                  # Table III for all twelve apps
//	bltlp -app encoder     # full detail for one app
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"biglittle"
)

func main() {
	var (
		appName  = flag.String("app", "", "single app to characterize in detail (default: Table III for all)")
		duration = flag.Duration("duration", 30*time.Second, "simulated duration per app")
		seed     = flag.Int64("seed", 1, "workload random seed")
	)
	flag.Parse()

	o := biglittle.ExperimentOptions{
		Duration: biglittle.Time(duration.Nanoseconds()),
		Seed:     *seed,
	}

	if *appName == "" {
		results := biglittle.Characterize(o)
		fmt.Print(biglittle.RenderTable3(results))
		fmt.Println()
		fmt.Print(biglittle.RenderTable5(results))
		return
	}

	app, err := biglittle.AppByName(*appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := biglittle.DefaultConfig(app)
	cfg.Duration = o.Duration
	cfg.Seed = o.Seed
	r := biglittle.Run(cfg)

	results := []biglittle.Result{r}
	fmt.Print(biglittle.RenderTable3(results))
	fmt.Println()
	fmt.Print(biglittle.RenderTable4(r))
	fmt.Println()
	fmt.Print(biglittle.RenderTable5(results))
	fmt.Println()
	fmt.Print(biglittle.RenderLittleResidency(results))
	fmt.Println()
	fmt.Print(biglittle.RenderBigResidency(results))
}
