// Command bltlp runs the §V thread-level-parallelism characterization for
// one application or the full suite: Table III rows, the Table IV
// active-core matrix, the Table V efficiency decomposition, and the
// Figure 9/10 frequency-residency distributions.
//
// Runs go through the experiment orchestrator: the suite fans out over
// -workers simulations, and results are memoized in the on-disk cache so a
// repeated characterization is served without simulating.
//
// Usage:
//
//	bltlp                  # Table III for all twelve apps
//	bltlp -app encoder     # full detail for one app
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"biglittle"
	"biglittle/internal/cli"
)

func main() {
	ex := cli.RegisterExperiment(flag.CommandLine, 30*time.Second)
	appName := flag.String("app", "", "single app to characterize in detail (default: Table III for all)")
	flag.Parse()

	runner, err := ex.Runner()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bltlp:", err)
		os.Exit(1)
	}
	start := time.Now()
	defer func() { cli.PrintLabStats(os.Stderr, runner, time.Since(start)) }()

	o := ex.Options(runner)

	if *appName == "" {
		results := biglittle.Characterize(o)
		fmt.Print(biglittle.RenderTable3(results))
		fmt.Println()
		fmt.Print(biglittle.RenderTable5(results))
		return
	}

	app, err := biglittle.AppByName(*appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bltlp:", err)
		os.Exit(1)
	}
	cfg := biglittle.DefaultConfig(app)
	cfg.Duration = o.Duration
	cfg.Seed = o.Seed
	r, err := runner.Run(biglittle.LabJob{Config: cfg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bltlp:", err)
		os.Exit(1)
	}

	results := []biglittle.Result{r}
	fmt.Print(biglittle.RenderTable3(results))
	fmt.Println()
	fmt.Print(biglittle.RenderTable4(r))
	fmt.Println()
	fmt.Print(biglittle.RenderTable5(results))
	fmt.Println()
	fmt.Print(biglittle.RenderLittleResidency(results))
	fmt.Println()
	fmt.Print(biglittle.RenderBigResidency(results))
}
