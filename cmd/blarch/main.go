// Command blarch runs the architectural experiments of §III: the SPEC-like
// speedup comparison between the Cortex-A15 and Cortex-A7 models (Figure 2),
// the corresponding whole-system power (Figure 3), and per-workload trace
// details (CPI components and cache miss rates).
//
// Usage:
//
//	blarch              # Figures 2 and 3
//	blarch -detail mcf  # per-frequency trace breakdown for one workload
package main

import (
	"flag"
	"fmt"
	"os"

	"biglittle"
)

func main() {
	var (
		detail = flag.String("detail", "", "print per-frequency trace details for one SPEC workload")
		instr  = flag.Int("instructions", 0, "trace length override (0 = profile default)")
	)
	flag.Parse()

	if *detail != "" {
		printDetail(*detail, *instr)
		return
	}

	o := biglittle.ExperimentOptions{Instructions: *instr}
	fmt.Print(biglittle.RenderFig2(biglittle.Fig2(o)))
	fmt.Println()
	fmt.Print(biglittle.RenderFig3(biglittle.Fig3(o)))
	fmt.Println()
	fmt.Print(biglittle.RenderPredictors(biglittle.PredictorStudy(o)))
}

func printDetail(name string, instr int) {
	var prof biglittle.SPECProfile
	found := false
	for _, p := range biglittle.SPECProfiles() {
		if p.Name == name {
			prof, found = p, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown SPEC workload %q\n", name)
		os.Exit(1)
	}
	fmt.Printf("%s: working set %d KB, code %d KB, ILP %.1f, MLP %.1f\n\n",
		prof.Name, prof.WorkingSetB/1024, prof.CodeFootprintB/1024, prof.ILP, prof.MLP)
	fmt.Printf("%-12s %5s %6s %7s %7s %7s %7s %7s\n",
		"core", "MHz", "CPI", "base", "branch", "mem", "fetch", "L2miss")
	for _, m := range []biglittle.CoreModel{biglittle.CortexA7(), biglittle.CortexA15()} {
		for _, mhz := range []int{m.MinFreqMHz, (m.MinFreqMHz + m.MaxFreqMHz) / 2, m.MaxFreqMHz} {
			r := biglittle.RunTrace(m, prof, mhz, instr)
			n := float64(r.Instructions)
			fmt.Printf("%-12s %5d %6.2f %7.2f %7.2f %7.2f %7.2f %6.1f%%\n",
				r.Core, mhz, r.CPI, r.BaseCycles/n, r.BranchCycles/n, r.MemCycles/n,
				r.FetchCycles/n, 100*r.L2MissRate)
		}
	}
}
