package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"biglittle"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunIdenticalExitsZero(t *testing.T) {
	code, out, _ := runCmd(t, "run", "-app", "bbench", "-duration", "500ms")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; out:\n%s", code, out)
	}
	if !strings.Contains(out, "identical") {
		t.Fatalf("output does not report identical:\n%s", out)
	}
}

func TestRunDivergentExitsOne(t *testing.T) {
	code, out, _ := runCmd(t, "run", "-app", "bbench", "-duration", "1s", "-b", "up=350")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; out:\n%s", code, out)
	}
	for _, want := range []string{"first divergent window", "first divergent decision", "up_threshold"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunJSONReport(t *testing.T) {
	code, out, _ := runCmd(t, "run", "-app", "bbench", "-duration", "500ms", "-b", "up=350", "-json")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var rep biglittle.DiffReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Identical || rep.DivergentWindow < 0 {
		t.Fatalf("JSON report lost the divergence: %+v", rep)
	}
}

func TestRunUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"bogus"},
		{"run", "-app", "noapp"},
		{"run", "-b", "warp=9"},
		{"results"},
		{"xray", "-a", "x"},
		{"golden", "-app", "noapp"},
	} {
		if code, _, errb := runCmd(t, args...); code != 2 {
			t.Errorf("args %v: exit = %d, want 2 (stderr %q)", args, code, errb)
		} else if errb == "" {
			t.Errorf("args %v: no error message on stderr", args)
		}
	}
}

func TestResultsDiff(t *testing.T) {
	dir := t.TempDir()
	app, _ := biglittle.AppByName("bbench")
	cfg := biglittle.DefaultConfig(app)
	cfg.Duration = 500 * biglittle.Millisecond
	ra := biglittle.Run(cfg)
	rb := ra
	rb.EnergyMJ *= 1.1
	write := func(name string, r biglittle.Result) string {
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	pa, pb := write("a.json", ra), write("b.json", rb)

	if code, out, _ := runCmd(t, "results", "-a", pa, "-b", pa); code != 0 {
		t.Fatalf("self-compare exit = %d, out:\n%s", code, out)
	}
	code, out, _ := runCmd(t, "results", "-a", pa, "-b", pb)
	if code != 1 || !strings.Contains(out, "EnergyMJ") {
		t.Fatalf("exit = %d, out:\n%s", code, out)
	}
	// A tolerance wide enough to cover the tamper turns significance off.
	if code, _, _ := runCmd(t, "results", "-a", pa, "-b", pb, "-tol-rel", "0.5"); code != 0 {
		t.Fatal("wide tolerance should exit 0")
	}
}

func TestXrayDiff(t *testing.T) {
	dir := t.TempDir()
	dump := func(name string, up int) string {
		app, _ := biglittle.AppByName("bbench")
		cfg := biglittle.DefaultConfig(app)
		cfg.Duration = 1 * biglittle.Second
		cfg.Sched.UpThreshold = up
		xr := biglittle.NewXray()
		xr.MaxSpans = -1
		cfg.Xray = xr
		biglittle.Run(cfg)
		data, err := xr.JSON()
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	pa, pb := dump("a.json", 700), dump("b.json", 350)
	if code, out, _ := runCmd(t, "xray", "-a", pa, "-b", pa); code != 0 {
		t.Fatalf("self-compare exit = %d, out:\n%s", code, out)
	}
	code, out, _ := runCmd(t, "xray", "-a", pa, "-b", pb)
	if code != 1 || !strings.Contains(out, "first divergent decision") {
		t.Fatalf("exit = %d, out:\n%s", code, out)
	}
}

func TestGoldenCheck(t *testing.T) {
	dir := t.TempDir()
	app, _ := biglittle.AppByName("bbench")
	good := renderGoldenApp(app)
	path := filepath.Join(dir, "bbench.txt")
	if err := os.WriteFile(path, []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out, _ := runCmd(t, "golden", "-dir", dir, "-app", "bbench"); code != 0 {
		t.Fatalf("intact golden exit = %d, out:\n%s", code, out)
	}
	// Corrupt one numeric field; the tool must name the line and field.
	bad := strings.Replace(good, "power=", "power=9", 1)
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runCmd(t, "golden", "-dir", dir, "-app", "bbench")
	if code != 1 || !strings.Contains(out, "first divergence at line") {
		t.Fatalf("exit = %d, out:\n%s", code, out)
	}
}
