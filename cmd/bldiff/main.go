// Command bldiff is the differential forensics tool: it compares two
// simulator runs and reports the first place they diverge — window, tick,
// and decision — plus the metric deltas that follow.
//
// Subcommands:
//
//	bldiff run -app bbench -duration 2s -b up=350
//	    Run the base config and the config with -b's overrides applied
//	    (optionally -a overrides on the base too), locate the first
//	    divergent window via state-digest chains, replay both sides with
//	    decision tracing over just that window, and print the two-column
//	    forensic report. Exit 0 when identical, 1 when divergent.
//
//	bldiff results -a a.json -b b.json [-tol-rel 1e-9]
//	    Structurally diff two result files (blsim -json output) with
//	    tolerance-aware significance marking. Exit 1 on significant deltas.
//
//	bldiff xray -a a.json -b b.json
//	    Align two causal-decision dumps (blsim -xray / blserve /xray) and
//	    report the first divergent decision. Exit 1 when divergent.
//
//	bldiff golden [-dir testdata/golden] [-app bbench]
//	    Re-simulate the golden corpus configs and explain any break at
//	    line/field granularity with the corpus's own renderer. Exit 1 on
//	    mismatch.
//
// Exit codes follow diff(1): 0 = identical, 1 = divergent, 2 = error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"biglittle"
	"biglittle/internal/cli"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "bldiff: usage: bldiff <run|results|xray|golden> [flags] (-h for help)")
		return 2
	}
	switch args[0] {
	case "run":
		return runCompare(args[1:], stdout, stderr)
	case "results":
		return runResults(args[1:], stdout, stderr)
	case "xray":
		return runXray(args[1:], stdout, stderr)
	case "golden":
		return runGolden(args[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "bldiff: unknown subcommand %q (want run, results, xray, or golden)\n", args[0])
		return 2
	}
}

func runCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bldiff run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		appName  = fs.String("app", "bbench", "application model to compare")
		duration = fs.Duration("duration", 2*time.Second, "simulated duration (both sides)")
		seed     = fs.Int64("seed", 1, "workload random seed (both sides)")
		windows  = fs.Int("windows", 0, "digest-chain length (0 = default ~1k)")
		ovA      = fs.String("a", "", "side-A config overrides, e.g. up=700,governor=interactive")
		ovB      = fs.String("b", "", "side-B config overrides, e.g. up=350")
		tolRel   = fs.Float64("tol-rel", 1e-12, "relative tolerance for significance marking")
		tolAbs   = fs.Float64("tol-abs", 0, "absolute tolerance for significance marking")
		asJSON   = fs.Bool("json", false, "emit the report as JSON instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	app, err := biglittle.AppByName(*appName)
	if err != nil {
		fmt.Fprintf(stderr, "bldiff run: %v\n", err)
		return 2
	}
	base := biglittle.DefaultConfig(app)
	base.Duration = biglittle.Time(duration.Nanoseconds())
	base.Seed = *seed
	cfgA, cfgB := base, base
	if err := cli.ApplyOverrides(&cfgA, *ovA); err != nil {
		fmt.Fprintf(stderr, "bldiff run: -a: %v\n", err)
		return 2
	}
	if err := cli.ApplyOverrides(&cfgB, *ovB); err != nil {
		fmt.Fprintf(stderr, "bldiff run: -b: %v\n", err)
		return 2
	}
	labelA, labelB := *ovA, *ovB
	if labelA == "" {
		labelA = "base"
	}
	if labelB == "" {
		labelB = "base"
	}
	rep, err := biglittle.DiffRuns(cfgA, cfgB, biglittle.DiffOptions{
		Windows: *windows,
		Tol:     biglittle.DiffTolerance{Rel: *tolRel, Abs: *tolAbs},
		LabelA:  labelA, LabelB: labelB,
	})
	if err != nil {
		fmt.Fprintf(stderr, "bldiff run: %v\n", err)
		return 2
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "bldiff run: %v\n", err)
			return 2
		}
	} else {
		fmt.Fprint(stdout, rep.Render())
	}
	if rep.Identical {
		return 0
	}
	return 1
}

func runResults(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bldiff results", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fileA  = fs.String("a", "", "side-A result JSON (blsim -json)")
		fileB  = fs.String("b", "", "side-B result JSON")
		tolRel = fs.Float64("tol-rel", 1e-9, "relative tolerance for significance")
		tolAbs = fs.Float64("tol-abs", 0, "absolute tolerance for significance")
		all    = fs.Bool("all", false, "print every delta, not just the significant ones")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *fileA == "" || *fileB == "" {
		fmt.Fprintln(stderr, "bldiff results: both -a and -b result files are required")
		return 2
	}
	var ra, rb biglittle.Result
	if err := readJSON(*fileA, &ra); err != nil {
		fmt.Fprintf(stderr, "bldiff results: %v\n", err)
		return 2
	}
	if err := readJSON(*fileB, &rb); err != nil {
		fmt.Fprintf(stderr, "bldiff results: %v\n", err)
		return 2
	}
	ds := biglittle.DiffValues(ra, rb, biglittle.DiffTolerance{Rel: *tolRel, Abs: *tolAbs})
	sig := biglittle.SignificantDeltas(ds)
	show := sig
	if *all {
		show = ds
	}
	fmt.Fprintf(stdout, "results: %d field(s) differ, %d significant (a -> b):\n%s",
		len(ds), len(sig), biglittle.DiffSummary(show, 0))
	if len(sig) > 0 {
		return 1
	}
	return 0
}

func runXray(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bldiff xray", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fileA = fs.String("a", "", "side-A xray dump (blsim -xray / blserve /xray)")
		fileB = fs.String("b", "", "side-B xray dump")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *fileA == "" || *fileB == "" {
		fmt.Fprintln(stderr, "bldiff xray: both -a and -b dump files are required")
		return 2
	}
	da, err := readDump(*fileA)
	if err != nil {
		fmt.Fprintf(stderr, "bldiff xray: %v\n", err)
		return 2
	}
	db, err := readDump(*fileB)
	if err != nil {
		fmt.Fprintf(stderr, "bldiff xray: %v\n", err)
		return 2
	}
	idx, ok := biglittle.FirstDivergentXraySpan(da.Spans, db.Spans)
	if !ok {
		fmt.Fprintf(stdout, "identical: %d decisions, same sequence on both sides\n", len(da.Spans))
		return 0
	}
	fmt.Fprintf(stdout, "first divergent decision at stream index %d (a: %d spans, b: %d spans)\n",
		idx, len(da.Spans), len(db.Spans))
	if idx < len(da.Spans) {
		fmt.Fprintf(stdout, "--- a ---\n%s", da.Spans[idx].Format())
	} else {
		fmt.Fprintln(stdout, "--- a ---\n(stream ended)")
	}
	if idx < len(db.Spans) {
		fmt.Fprintf(stdout, "--- b ---\n%s", db.Spans[idx].Format())
	} else {
		fmt.Fprintln(stdout, "--- b ---\n(stream ended)")
	}
	if idx < len(da.Spans) && idx < len(db.Spans) {
		ds := biglittle.DiffXraySpanProvenance(da.Spans[idx], db.Spans[idx], biglittle.DiffTolerance{})
		if len(ds) > 0 {
			fmt.Fprintf(stdout, "inputs and candidates that differed (a -> b):\n%s", biglittle.DiffSummary(ds, 0))
		}
	}
	return 1
}

func runGolden(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bldiff golden", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir     = fs.String("dir", filepath.Join("testdata", "golden"), "golden corpus directory")
		appName = fs.String("app", "", "check one app (default: every app with a golden file)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	apps := biglittle.Apps()
	if *appName != "" {
		app, err := biglittle.AppByName(*appName)
		if err != nil {
			fmt.Fprintf(stderr, "bldiff golden: %v\n", err)
			return 2
		}
		apps = []biglittle.App{app}
	}
	broken := 0
	for _, app := range apps {
		path := filepath.Join(*dir, app.Name+".txt")
		want, err := os.ReadFile(path)
		if err != nil {
			if *appName == "" && os.IsNotExist(err) {
				continue // no golden file for this app; nothing to break
			}
			fmt.Fprintf(stderr, "bldiff golden: %v\n", err)
			return 2
		}
		got := renderGoldenApp(app)
		if explain := biglittle.ExplainTextDiff(string(want), got); explain != "" {
			broken++
			fmt.Fprintf(stdout, "%s: BROKEN: %s\n", app.Name, explain)
		} else {
			fmt.Fprintf(stdout, "%s: ok\n", app.Name)
		}
	}
	if broken > 0 {
		fmt.Fprintf(stdout, "%d golden file(s) broken (regenerate intentionally with `make golden-update`)\n", broken)
		return 1
	}
	return 0
}

// renderGoldenApp rebuilds one app's golden text exactly as golden_test.go
// does: every §V-C hotplug configuration at the pinned duration, rendered
// with the shared corpus renderer.
func renderGoldenApp(app biglittle.App) string {
	out := fmt.Sprintf("golden master: %s, seed 1, %v per config\n", app.Name, biglittle.GoldenDuration)
	for _, cc := range biglittle.StudyConfigs() {
		cfg := biglittle.DefaultConfig(app)
		cfg.Duration = biglittle.GoldenDuration
		cfg.Cores = cc
		out += biglittle.RenderGolden(cc, biglittle.Run(cfg))
	}
	return out
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	return nil
}

func readDump(path string) (*biglittle.XrayDump, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return biglittle.ParseXrayDump(data)
}
