// Command blbench records and compares Go benchmark results without
// external tooling. It parses standard `go test -bench` output (the same
// format benchstat consumes), stores a baseline as JSON with the raw
// benchmark lines embedded (so the file remains benchstat-compatible), and
// gates regressions by comparing per-benchmark medians.
//
// Usage:
//
//	go test -bench . -benchmem -count 6 . | blbench record -out BENCH_baseline.json
//	go test -bench . -benchmem -count 6 . | blbench compare -baseline BENCH_baseline.json
//
// Both subcommands also accept input files as positional arguments.
//
// A third subcommand tracks the long-run trend: `blbench history -append`
// appends per-benchmark medians (with a date and revision label) to a
// committed JSON-lines file, and `blbench history` renders the recorded
// trend with per-session deltas. `make bench-record` wires it up.
//
// compare exits non-zero when a critical benchmark (-critical, a regexp)
// regresses by more than -max-regress percent on its median. Allocation
// counts are gated unconditionally — they are machine-independent. Wall
// times are only gated when the baseline and candidate were measured on the
// same CPU model (per the `cpu:` header line), because absolute ns/op on
// different hardware is not comparable; set -force-time to override.
package main

import (
	"fmt"
	"os"

	"biglittle/internal/bench"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = bench.RecordMain(os.Args[2:])
	case "compare":
		err = bench.CompareMain(os.Args[2:])
	case "history", "-history":
		err = bench.HistoryMain(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "blbench:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: blbench record [-out file] [input...]
       blbench compare [-baseline file] [-max-regress pct] [-critical regexp] [-force-time] [input...]
       blbench history [-file file] [-append [-rev r] [-date d] [input...]]`)
	os.Exit(2)
}
