// Command blsim runs one application model on one platform configuration
// and prints its full characterization: performance, power, TLP, core-usage
// matrix, efficiency states, and frequency residency.
//
// Usage:
//
//	blsim -app bbench -cores L4+B1 -duration 30s -governor interactive
//	blsim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"biglittle"
)

func main() {
	var (
		appName  = flag.String("app", "pdf_reader", "application model to run (see -list)")
		specFile = flag.String("spec", "", "load the application from a JSON workload spec instead")
		list     = flag.Bool("list", false, "list application models and exit")
		cores    = flag.String("cores", "L4+B4", "hotplug configuration, e.g. L2, L4+B1")
		duration = flag.Duration("duration", 30*time.Second, "simulated duration")
		seed     = flag.Int64("seed", 1, "workload random seed")
		gov      = flag.String("governor", "interactive", "governor: interactive|performance|powersave")
		sample   = flag.Int("sample-ms", 20, "interactive governor sampling interval (ms)")
		target   = flag.Int("target-load", 70, "interactive governor target load (%)")
		up       = flag.Int("up", 700, "HMP up-threshold (of 1024)")
		down     = flag.Int("down", 256, "HMP down-threshold (of 1024)")
		weight   = flag.Int("weight", 32, "HMP load history half-life (ms)")
		matrix   = flag.Bool("matrix", false, "print the Table IV active-core matrix")
		asJSON   = flag.Bool("json", false, "emit the full result as JSON instead of text")
		doCheck  = flag.Bool("check", false, "audit the run with the invariant checker; exit 2 on any violation")
		xrayFile = flag.String("xray", "", "record causal decision spans and write the JSON dump to this file (query with blxray)")
	)
	flag.Parse()

	if *list {
		for _, a := range biglittle.Apps() {
			fmt.Printf("%-18s %-8s %s\n", a.Name, a.Metric, a.Desc)
		}
		return
	}

	var app biglittle.App
	var err error
	if *specFile != "" {
		data, rerr := os.ReadFile(*specFile)
		if rerr != nil {
			fmt.Fprintln(os.Stderr, rerr)
			os.Exit(1)
		}
		app, err = biglittle.LoadSpec(data)
	} else {
		app, err = biglittle.AppByName(*appName)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cc, err := biglittle.ParseCoreConfig(*cores)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cfg := biglittle.DefaultConfig(app)
	cfg.Seed = *seed
	cfg.Duration = biglittle.Time(duration.Nanoseconds())
	cfg.Cores = cc
	cfg.Gov.SampleMs = *sample
	cfg.Gov.TargetLoad = *target
	cfg.Sched.UpThreshold = *up
	cfg.Sched.DownThreshold = *down
	cfg.Sched.HalfLifeMs = *weight
	switch *gov {
	case "interactive":
		cfg.Governor = biglittle.Interactive
	case "performance":
		cfg.Governor = biglittle.Performance
	case "powersave":
		cfg.Governor = biglittle.Powersave
	default:
		fmt.Fprintf(os.Stderr, "unknown governor %q\n", *gov)
		os.Exit(1)
	}

	var aud *biglittle.Auditor
	if *doCheck {
		aud = biglittle.NewAuditor()
		cfg.Check = aud
	}

	var xr *biglittle.Xray
	if *xrayFile != "" {
		xr = biglittle.NewXray()
		cfg.Xray = xr
	}

	r := biglittle.Run(cfg)

	if xr != nil {
		data, err := xr.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*xrayFile, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "xray: %d spans (%d dropped) -> %s\n", xr.Len(), xr.Dropped(), *xrayFile)
	}

	if aud != nil {
		rep := aud.Report()
		rep.Violations = append(rep.Violations, biglittle.CheckResult(r)...)
		fmt.Fprint(os.Stderr, rep.String())
		if !rep.Ok() {
			os.Exit(2)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("app: %s (%s) on %s for %v, seed %d\n", r.App, r.Metric, r.Cores, duration, *seed)
	if r.Metric == biglittle.FPS {
		fmt.Printf("performance: %.1f avg FPS, %.1f min FPS (%d frames)\n", r.AvgFPS, r.MinFPS, r.Frames)
	} else {
		fmt.Printf("performance: %v mean latency, %v worst (%d interactions)\n",
			r.MeanLatency, r.WorstLatency, r.Interactions)
	}
	fmt.Printf("power: %.0f mW average, %.1f J total\n", r.AvgPowerMW, r.EnergyMJ/1000)
	fmt.Printf("TLP: %.2f   idle %.1f%%   little-only %.1f%%   big-active %.1f%%\n",
		r.TLP.TLP, r.TLP.IdlePct, r.TLP.LittleOnlyPct, r.TLP.BigPct)
	fmt.Printf("efficiency states: min %.1f%%  <50%% %.1f%%  <70%% %.1f%%  70-95%% %.1f%%  >95%% %.1f%%  full %.1f%%\n",
		r.Eff[0], r.Eff[1], r.Eff[2], r.Eff[3], r.Eff[4], r.Eff[5])
	fmt.Printf("HMP migrations: %d\n", r.HMPMigrations)

	if *matrix {
		fmt.Println(biglittle.RenderTable4(r))
	}
	fmt.Println("little cluster residency (%, by MHz):")
	for i, f := range r.LittleFreqs {
		fmt.Printf("  %4d: %5.1f\n", f, r.LittleResidency[i])
	}
	fmt.Println("big cluster residency (%, by MHz):")
	for i, f := range r.BigFreqs {
		fmt.Printf("  %4d: %5.1f\n", f, r.BigResidency[i])
	}
}
