// Command bltrace runs one application model and renders a systrace-style
// per-core execution timeline for a chosen window: which thread ran on
// which core at every millisecond, migrations between clusters, and the
// frequency bands the governor chose.
//
// Usage:
//
//	bltrace -app eternity_warrior -from 5s -window 300ms
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"biglittle"
)

func main() {
	var (
		appName  = flag.String("app", "eternity_warrior", "application model to trace")
		from     = flag.Duration("from", 5*time.Second, "window start (simulated time)")
		window   = flag.Duration("window", 300*time.Millisecond, "window length")
		duration = flag.Duration("duration", 0, "total run duration (0 = run exactly until the window ends)")
		width    = flag.Int("width", 120, "maximum timeline columns (0 = one per tick)")
		seed     = flag.Int64("seed", 1, "workload random seed")
		cores    = flag.String("cores", "L4+B4", "hotplug configuration")
		chrome   = flag.String("chrome", "", "write a Chrome trace-event JSON file (open in chrome://tracing)")
	)
	flag.Parse()

	app, err := biglittle.AppByName(*appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cc, err := biglittle.ParseCoreConfig(*cores)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cfg := biglittle.DefaultConfig(app)
	cfg.Seed = *seed
	cfg.Cores = cc
	cfg.Duration = biglittle.Time((*from + *window).Nanoseconds())
	if *duration > 0 {
		cfg.Duration = biglittle.Time(duration.Nanoseconds())
	}

	tel := biglittle.NewTelemetry()
	cfg.Telemetry = tel

	var rec *biglittle.TraceRecorder
	cfg.OnSystem = func(sys *biglittle.SchedSystem) {
		rec = biglittle.AttachTrace(sys,
			biglittle.Time(from.Nanoseconds()),
			biglittle.Time((*from + *window).Nanoseconds()))
		rec.Tel = tel
	}
	biglittle.Run(cfg)

	if len(rec.Samples) == 0 {
		fmt.Fprintf(os.Stderr,
			"bltrace: no samples recorded: the window [%v, %v) lies beyond the run duration %v; "+
				"lower -from/-window or raise -duration\n",
			*from, *from+*window, time.Duration(cfg.Duration))
		os.Exit(1)
	}

	if *chrome != "" {
		data, err := rec.ChromeTrace()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*chrome, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *chrome, len(data))
	}

	fmt.Print(rec.Render(*width))

	fmt.Println("\nper-thread core-type residency and runnable-wait in window:")
	res := rec.Residency()
	names := make([]string, 0, len(res))
	for name := range res {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tr := res[name]
		fmt.Printf("  %-20s", name)
		for typ, frac := range tr.Run {
			fmt.Printf(" %v %.0f%%", typ, 100*frac)
		}
		if tr.WaitTicks > 0 {
			fmt.Printf("  (waited %.0f%% of %d on-queue ticks)",
				100*tr.WaitShare(), tr.RunTicks+tr.WaitTicks)
		}
		fmt.Println()
	}
}
