package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"biglittle"
)

// dumpFile records a short run's decisions and writes the dump to a temp
// file, shared by every CLI test in this file.
func dumpFile(t *testing.T) string {
	t.Helper()
	app, err := biglittle.AppByName("bbench")
	if err != nil {
		t.Fatal(err)
	}
	cfg := biglittle.DefaultConfig(app)
	cfg.Duration = 1 * biglittle.Second
	xr := biglittle.NewXray()
	xr.MaxSpans = -1
	cfg.Xray = xr
	biglittle.Run(cfg)
	data, err := xr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dump.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCmd(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestLs(t *testing.T) {
	in := dumpFile(t)
	code, out, errb := runCmd(t, "", "ls", "-in", in)
	if code != 0 || out == "" {
		t.Fatalf("ls exit = %d, out %q", code, out)
	}
	if !strings.Contains(errb, "spans") {
		t.Fatalf("ls did not report span count: %q", errb)
	}
	code, out, _ = runCmd(t, "", "ls", "-in", in, "-kind", "migration")
	if code != 0 {
		t.Fatalf("ls -kind migration exit = %d", code)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line != "" && !strings.Contains(line, "migration") {
			t.Fatalf("kind filter leaked non-migration line: %q", line)
		}
	}
}

func TestLsUnknownKind(t *testing.T) {
	code, _, errb := runCmd(t, "", "ls", "-in", dumpFile(t), "-kind", "teleport")
	if code != 2 {
		t.Fatalf("unknown kind exit = %d, want 2", code)
	}
	if !strings.Contains(errb, "teleport") || !strings.Contains(errb, "migration") {
		t.Fatalf("error does not name the bad kind and the vocabulary: %q", errb)
	}
	if strings.Count(strings.TrimSpace(errb), "\n") != 0 {
		t.Fatalf("want a one-line error, got:\n%s", errb)
	}
}

func TestExplain(t *testing.T) {
	in := dumpFile(t)
	// Find a real task name from the dump itself.
	data, err := os.ReadFile(in)
	if err != nil {
		t.Fatal(err)
	}
	d, err := biglittle.ParseXrayDump(data)
	if err != nil {
		t.Fatal(err)
	}
	names := taskNames(d)
	if len(names) == 0 {
		t.Fatal("dump has no task names")
	}
	code, out, _ := runCmd(t, "", "explain", "-in", in, "-task", names[0])
	if code != 0 || !strings.Contains(out, "candidates:") {
		t.Fatalf("explain exit = %d, out:\n%s", code, out)
	}
}

func TestExplainUnknownTask(t *testing.T) {
	code, out, errb := runCmd(t, "", "explain", "-in", dumpFile(t), "-task", "no.such.task")
	if code == 0 {
		t.Fatal("unknown task must exit non-zero")
	}
	if out != "" {
		t.Fatalf("unknown task produced output: %q", out)
	}
	if !strings.Contains(errb, "no.such.task") || !strings.Contains(errb, "tasks seen") {
		t.Fatalf("error does not name the task and the alternatives: %q", errb)
	}
}

func TestExplainBadTime(t *testing.T) {
	in := dumpFile(t)
	for _, bad := range []string{"-5", "-140ms", "yesterday"} {
		code, _, errb := runCmd(t, "", "explain", "-in", in, "-task", "x", "-t", bad)
		if code != 2 {
			t.Fatalf("-t %q exit = %d, want 2", bad, code)
		}
		if errb == "" {
			t.Fatalf("-t %q: no error message", bad)
		}
	}
}

func TestChain(t *testing.T) {
	in := dumpFile(t)
	code, out, _ := runCmd(t, "", "chain", "-in", in, "-migration", "1")
	if code != 0 || out == "" {
		t.Fatalf("chain -migration 1 exit = %d, out %q", code, out)
	}
}

func TestChainBadIDs(t *testing.T) {
	in := dumpFile(t)
	for _, args := range [][]string{
		{"chain", "-in", in, "-migration", "999999"},
		{"chain", "-in", in, "-migration", "-3"},
		{"chain", "-in", in, "-span", "999999999"},
	} {
		code, out, errb := runCmd(t, "", args...)
		if code == 0 {
			t.Fatalf("args %v: must exit non-zero", args)
		}
		if out != "" {
			t.Fatalf("args %v: produced output %q", args, out)
		}
		if errb == "" || strings.Count(strings.TrimSpace(errb), "\n") != 0 {
			t.Fatalf("args %v: want a one-line error, got %q", args, errb)
		}
	}
	if code, _, _ := runCmd(t, "", "chain", "-in", in); code != 2 {
		t.Fatal("chain with neither -migration nor -span must exit 2")
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"warp"},
		{"explain", "-in", "x"}, // missing -task, before any file I/O
	} {
		code, _, errb := runCmd(t, "", args...)
		if code != 2 {
			t.Errorf("args %v: exit = %d, want 2", args, code)
		}
		if errb == "" {
			t.Errorf("args %v: no error on stderr", args)
		}
	}
	if code, _, errb := runCmd(t, "", "ls", "-in", filepath.Join(t.TempDir(), "missing.json")); code != 2 || errb == "" {
		t.Errorf("missing file: exit = %d, errb %q", code, errb)
	}
	if code, _, errb := runCmd(t, "", "ls"); code != 2 || !strings.Contains(errb, "empty dump") {
		t.Errorf("empty stdin: exit = %d, errb %q", code, errb)
	}
}
