// Command blxray queries a causal decision dump recorded with `blsim -xray`
// (or fetched from blserve's /xray endpoint): why a task was placed where it
// was, which candidates lost and why, and the causal chain a decision sits
// in (wake -> placement -> migration -> DVFS response -> throttle).
//
// Usage:
//
//	blsim -app bbench -duration 4s -xray /tmp/run.json
//	blxray ls -in /tmp/run.json [-kind migration]
//	blxray explain -in /tmp/run.json -task bb.js -t 140ms
//	blxray chain -in /tmp/run.json -migration 1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"biglittle"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  blxray ls      [-in FILE] [-kind wake|migration|freq|hotplug|throttle]
  blxray explain [-in FILE] -task NAME [-t DURATION]
  blxray chain   [-in FILE] -migration K | -span ID

-in defaults to stdin, so dumps pipe straight in:
  curl -s localhost:8080/xray | blxray explain -task bb.js -t 140ms
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "ls":
		lsMain(os.Args[2:])
	case "explain":
		explainMain(os.Args[2:])
	case "chain":
		chainMain(os.Args[2:])
	default:
		usage()
	}
}

func loadDump(path string) *biglittle.XrayDump {
	var data []byte
	var err error
	if path == "" || path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err == nil && len(data) == 0 {
		err = fmt.Errorf("empty dump (pass -in FILE or pipe a dump to stdin)")
	}
	var d *biglittle.XrayDump
	if err == nil {
		d, err = biglittle.ParseXrayDump(data)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "blxray:", err)
		os.Exit(1)
	}
	return d
}

// parseAt accepts a Go duration ("140ms", "1.5s") or a bare number of
// milliseconds.
func parseAt(s string) (biglittle.Time, error) {
	if ms, err := strconv.ParseFloat(s, 64); err == nil {
		return biglittle.Time(ms * float64(biglittle.Millisecond)), nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad time %q: want a duration like 140ms or a number of ms", s)
	}
	return biglittle.Time(d.Nanoseconds()), nil
}

func lsMain(args []string) {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	in := fs.String("in", "", "dump file (default stdin)")
	kind := fs.String("kind", "", "only spans of this kind (wake|migration|freq|hotplug|throttle)")
	fs.Parse(args)
	d := loadDump(*in)
	n := 0
	for _, s := range d.Spans {
		if *kind != "" && s.Kind.String() != *kind {
			continue
		}
		fmt.Println(s.Line())
		n++
	}
	fmt.Fprintf(os.Stderr, "%d spans", n)
	if d.Dropped > 0 {
		fmt.Fprintf(os.Stderr, " (%d older spans dropped from the flight recorder)", d.Dropped)
	}
	fmt.Fprintln(os.Stderr)
}

// printChain renders a span with its full causal context: the ancestors that
// led to it and the decisions it went on to cause.
func printChain(d *biglittle.XrayDump, s biglittle.XraySpan) {
	fmt.Print(s.Format())
	if anc := d.Ancestors(s.ID); len(anc) > 0 {
		fmt.Println("caused by:")
		for _, a := range anc {
			fmt.Println(" ", a.Line())
		}
	} else if s.Parent >= 0 {
		fmt.Printf("caused by: span %d (no longer retained)\n", s.Parent)
	}
	if desc := d.Descendants(s.ID); len(desc) > 0 {
		fmt.Println("leads to:")
		for _, c := range desc {
			fmt.Println(" ", c.Line())
		}
	}
}

func explainMain(args []string) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	in := fs.String("in", "", "dump file (default stdin)")
	task := fs.String("task", "", "task name, e.g. bb.js (required)")
	at := fs.String("t", "", "time of interest, e.g. 140ms (default: the task's last decision)")
	fs.Parse(args)
	if *task == "" {
		fmt.Fprintln(os.Stderr, "blxray explain: -task is required")
		os.Exit(2)
	}
	when := biglittle.Time(1 << 62) // default: latest span for the task
	if *at != "" {
		t, err := parseAt(*at)
		if err != nil {
			fmt.Fprintln(os.Stderr, "blxray explain:", err)
			os.Exit(2)
		}
		when = t
	}
	d := loadDump(*in)
	s, ok := d.TaskSpanNear(*task, when)
	if !ok {
		fmt.Fprintf(os.Stderr, "blxray explain: no placement spans for task %q in this dump\n", *task)
		os.Exit(1)
	}
	printChain(d, s)
}

func chainMain(args []string) {
	fs := flag.NewFlagSet("chain", flag.ExitOnError)
	in := fs.String("in", "", "dump file (default stdin)")
	mig := fs.Int("migration", -1, "walk the chain of the k-th migration span (1-based)")
	span := fs.Int64("span", -1, "walk the chain of the span with this ID")
	fs.Parse(args)
	d := loadDump(*in)
	var s biglittle.XraySpan
	switch {
	case *span >= 0:
		got, ok := d.Get(*span)
		if !ok {
			fmt.Fprintf(os.Stderr, "blxray chain: span %d not in this dump\n", *span)
			os.Exit(1)
		}
		s = got
	case *mig >= 1:
		migs := d.ByKind(biglittle.XrayKindMigration)
		if *mig > len(migs) {
			fmt.Fprintf(os.Stderr, "blxray chain: dump has %d migration spans, asked for #%d\n", len(migs), *mig)
			os.Exit(1)
		}
		s = migs[*mig-1]
	default:
		fmt.Fprintln(os.Stderr, "blxray chain: pass -migration K or -span ID")
		os.Exit(2)
	}
	printChain(d, s)
}
