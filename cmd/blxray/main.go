// Command blxray queries a causal decision dump recorded with `blsim -xray`
// (or fetched from blserve's /xray endpoint): why a task was placed where it
// was, which candidates lost and why, and the causal chain a decision sits
// in (wake -> placement -> migration -> DVFS response -> throttle).
//
// Usage:
//
//	blsim -app bbench -duration 4s -xray /tmp/run.json
//	blxray ls -in /tmp/run.json [-kind migration]
//	blxray explain -in /tmp/run.json -task bb.js -t 140ms
//	blxray chain -in /tmp/run.json -migration 1
//
// Exit codes: 0 = success, 1 = query found nothing (unknown task, span, or
// migration), 2 = usage or input error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"biglittle"
)

// spanKinds is the -kind vocabulary, kept in one place so the error message
// and the filter can't drift apart.
var spanKinds = []string{"wake", "migration", "freq", "hotplug", "throttle"}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintf(stderr, `usage:
  blxray ls      [-in FILE] [-kind wake|migration|freq|hotplug|throttle]
  blxray explain [-in FILE] -task NAME [-t DURATION]
  blxray chain   [-in FILE] -migration K | -span ID

-in defaults to stdin, so dumps pipe straight in:
  curl -s localhost:8080/xray | blxray explain -task bb.js -t 140ms
`)
		return 2
	}
	switch args[0] {
	case "ls":
		return lsMain(args[1:], stdin, stdout, stderr)
	case "explain":
		return explainMain(args[1:], stdin, stdout, stderr)
	case "chain":
		return chainMain(args[1:], stdin, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "blxray: unknown subcommand %q (want ls, explain, or chain)\n", args[0])
		return 2
	}
}

func loadDump(path string, stdin io.Reader) (*biglittle.XrayDump, error) {
	var data []byte
	var err error
	if path == "" || path == "-" {
		data, err = io.ReadAll(stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err == nil && len(data) == 0 {
		err = fmt.Errorf("empty dump (pass -in FILE or pipe a dump to stdin)")
	}
	if err != nil {
		return nil, err
	}
	return biglittle.ParseXrayDump(data)
}

// parseAt accepts a Go duration ("140ms", "1.5s") or a bare number of
// milliseconds. Negative times are rejected: simulated time starts at zero.
func parseAt(s string) (biglittle.Time, error) {
	var t biglittle.Time
	if ms, err := strconv.ParseFloat(s, 64); err == nil {
		t = biglittle.Time(ms * float64(biglittle.Millisecond))
	} else {
		d, err := time.ParseDuration(s)
		if err != nil {
			return 0, fmt.Errorf("bad time %q: want a duration like 140ms or a number of ms", s)
		}
		t = biglittle.Time(d.Nanoseconds())
	}
	if t < 0 {
		return 0, fmt.Errorf("bad time %q: simulated time starts at 0", s)
	}
	return t, nil
}

func lsMain(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("blxray ls", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "dump file (default stdin)")
	kind := fs.String("kind", "", "only spans of this kind (wake|migration|freq|hotplug|throttle)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *kind != "" {
		ok := false
		for _, k := range spanKinds {
			if *kind == k {
				ok = true
			}
		}
		if !ok {
			fmt.Fprintf(stderr, "blxray ls: unknown kind %q (want %s)\n", *kind, strings.Join(spanKinds, ", "))
			return 2
		}
	}
	d, err := loadDump(*in, stdin)
	if err != nil {
		fmt.Fprintln(stderr, "blxray ls:", err)
		return 2
	}
	n := 0
	for _, s := range d.Spans {
		if *kind != "" && s.Kind.String() != *kind {
			continue
		}
		fmt.Fprintln(stdout, s.Line())
		n++
	}
	fmt.Fprintf(stderr, "%d spans", n)
	if d.Dropped > 0 {
		fmt.Fprintf(stderr, " (%d older spans dropped from the flight recorder)", d.Dropped)
	}
	fmt.Fprintln(stderr)
	return 0
}

// printChain renders a span with its full causal context: the ancestors that
// led to it and the decisions it went on to cause.
func printChain(w io.Writer, d *biglittle.XrayDump, s biglittle.XraySpan) {
	fmt.Fprint(w, s.Format())
	if anc := d.Ancestors(s.ID); len(anc) > 0 {
		fmt.Fprintln(w, "caused by:")
		for _, a := range anc {
			fmt.Fprintln(w, " ", a.Line())
		}
	} else if s.Parent >= 0 {
		fmt.Fprintf(w, "caused by: span %d (no longer retained)\n", s.Parent)
	}
	if desc := d.Descendants(s.ID); len(desc) > 0 {
		fmt.Fprintln(w, "leads to:")
		for _, c := range desc {
			fmt.Fprintln(w, " ", c.Line())
		}
	}
}

func explainMain(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("blxray explain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "dump file (default stdin)")
	task := fs.String("task", "", "task name, e.g. bb.js (required)")
	at := fs.String("t", "", "time of interest, e.g. 140ms (default: the task's last decision)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *task == "" {
		fmt.Fprintln(stderr, "blxray explain: -task is required")
		return 2
	}
	when := biglittle.Time(1 << 62) // default: latest span for the task
	if *at != "" {
		t, err := parseAt(*at)
		if err != nil {
			fmt.Fprintln(stderr, "blxray explain:", err)
			return 2
		}
		when = t
	}
	d, err := loadDump(*in, stdin)
	if err != nil {
		fmt.Fprintln(stderr, "blxray explain:", err)
		return 2
	}
	s, ok := d.TaskSpanNear(*task, when)
	if !ok {
		known := taskNames(d)
		if len(known) > 0 {
			fmt.Fprintf(stderr, "blxray explain: no placement spans for task %q in this dump (tasks seen: %s)\n",
				*task, strings.Join(known, ", "))
		} else {
			fmt.Fprintf(stderr, "blxray explain: no placement spans for task %q in this dump\n", *task)
		}
		return 1
	}
	printChain(stdout, d, s)
	return 0
}

// taskNames collects the distinct task names in a dump, in first-seen order,
// so "unknown task" errors can say what would have worked.
func taskNames(d *biglittle.XrayDump) []string {
	seen := map[string]bool{}
	var names []string
	for _, s := range d.Spans {
		if s.TaskName != "" && !seen[s.TaskName] {
			seen[s.TaskName] = true
			names = append(names, s.TaskName)
		}
	}
	return names
}

func chainMain(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("blxray chain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "dump file (default stdin)")
	mig := fs.Int("migration", 0, "walk the chain of the k-th migration span (1-based)")
	span := fs.Int64("span", -1, "walk the chain of the span with this ID")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *span < 0 && *mig == 0 {
		fmt.Fprintln(stderr, "blxray chain: pass -migration K or -span ID")
		return 2
	}
	d, err := loadDump(*in, stdin)
	if err != nil {
		fmt.Fprintln(stderr, "blxray chain:", err)
		return 2
	}
	var s biglittle.XraySpan
	switch {
	case *span >= 0:
		got, ok := d.Get(*span)
		if !ok {
			fmt.Fprintf(stderr, "blxray chain: span %d not in this dump\n", *span)
			return 1
		}
		s = got
	default:
		migs := d.ByKind(biglittle.XrayKindMigration)
		if *mig < 1 || *mig > len(migs) {
			fmt.Fprintf(stderr, "blxray chain: dump has %d migration spans, asked for #%d (migrations are 1-based)\n",
				len(migs), *mig)
			return 1
		}
		s = migs[*mig-1]
	}
	printChain(stdout, d, s)
	return 0
}
