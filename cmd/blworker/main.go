// Command blworker is one stateless fleet executor: it leases simulation
// jobs from a blserve coordinator, reconstructs and verifies each job spec,
// runs it through the experiment orchestrator (content-addressed cache
// included), and publishes the result back. Run as many as you want, on as
// many machines as reach the coordinator; parallelism comes from the worker
// count, not from threads inside one worker.
//
// Usage:
//
//	blworker -coordinator http://127.0.0.1:8377
//	blworker -coordinator http://10.0.0.5:8377 -id rack3-a -check -v
//
// SIGINT/SIGTERM drains gracefully: the worker stops leasing, finishes and
// publishes the job it holds, prints a final summary, and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"biglittle"
	"biglittle/internal/cli"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "http://127.0.0.1:8377", "coordinator base URL (a blserve instance)")
		id          = flag.String("id", "", "worker id in leases and stats (default host:pid)")
		cacheDir    = flag.String("cache-dir", "", "result cache directory (default: the user cache dir, e.g. ~/.cache/biglittle)")
		noCache     = flag.Bool("no-cache", false, "run without the result cache")
		check       = flag.Bool("check", false, "audit cache hits by re-simulating (slow; catches stale caches)")
		leaseWait   = flag.Duration("lease-wait", 5*time.Second, "long-poll window per lease request")
		verbose     = flag.Bool("v", false, "log each lease/execute/publish to stderr")
	)
	flag.Parse()

	var logger *slog.Logger
	if *verbose {
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug}))
	}

	var cache *biglittle.LabCache
	if !*noCache {
		var err error
		cache, err = biglittle.OpenLabCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "blworker: cache:", err)
			os.Exit(1)
		}
	}

	// One job at a time per worker: the runner needs exactly one slot, and
	// the fleet scales by adding workers.
	runner := biglittle.NewLabRunner(1, cache)
	runner.Check = *check
	runner.Log = logger

	w := &biglittle.FleetWorker{
		Client:    &biglittle.FleetClient{Base: *coordinator, Log: logger},
		Runner:    runner,
		ID:        *id,
		LeaseWait: *leaseWait,
		Log:       logger,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "blworker: leasing from %s\n", *coordinator)
	start := time.Now()
	w.Run(ctx)

	fmt.Fprintf(os.Stderr, "blworker: executed %d jobs (%d failed)\n", w.Executed(), w.Failed())
	cli.PrintLabStats(os.Stderr, runner, time.Since(start))
}
