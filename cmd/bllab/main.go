// Command bllab inspects and maintains the experiment result cache that
// blreport, blsweep, and bltlp populate, and watches the distributed lab.
//
// Usage:
//
//	bllab [-cache-dir DIR] ls            # list cached results
//	bllab [-cache-dir DIR] stat          # cache location, version, entry counts
//	bllab [-cache-dir DIR] prune         # drop results from stale code versions
//	bllab [-cache-dir DIR] invalidate [-app NAME] [-all]
//	                                     # drop current-version results
//	bllab fleet [-coordinator URL]       # fleet queue, leases, worker liveness
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"text/tabwriter"
	"time"

	"biglittle/internal/fleet"
	"biglittle/internal/lab"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: bllab [-cache-dir DIR] [-v] <ls|stat|prune|invalidate> [-app NAME] [-all]")
	fmt.Fprintln(os.Stderr, "       bllab fleet [-coordinator URL]")
	flag.PrintDefaults()
}

func main() {
	cacheDir := flag.String("cache-dir", "", "result cache directory (default: the user cache dir, e.g. ~/.cache/biglittle)")
	verbose := flag.Bool("v", false, "log each affected cache entry to stderr")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)

	if cmd == "fleet" {
		// The fleet view talks to a coordinator, not to the local cache.
		fleetCmd(flag.Args()[1:])
		return
	}

	sub := flag.NewFlagSet("bllab "+cmd, flag.ExitOnError)
	app := sub.String("app", "", "restrict invalidate to one app's results")
	all := sub.Bool("all", false, "invalidate every current-version result")
	sub.Parse(flag.Args()[1:])

	cache, err := lab.Open(*cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bllab:", err)
		os.Exit(1)
	}
	var log *slog.Logger
	if *verbose {
		log = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug}))
		log.Debug("cache open", "dir", cache.Dir(), "version", cache.Version())
	}
	// logAffected lists the entries an operation is about to touch.
	logAffected := func(op string, match func(lab.Entry) bool) {
		if log == nil {
			return
		}
		entries, err := cache.List()
		if err != nil {
			return
		}
		for _, e := range entries {
			if match(e) {
				log.Debug(op, "app", e.App, "version", e.Version,
					"fingerprint", e.Fingerprint, "size_b", e.SizeB)
			}
		}
	}

	switch cmd {
	case "ls":
		entries, err := cache.List()
		if err != nil {
			fmt.Fprintln(os.Stderr, "bllab:", err)
			os.Exit(1)
		}
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "VERSION\tAPP\tSALT\tFINGERPRINT\tSIZE\tSAVED")
		for _, e := range entries {
			fp := e.Fingerprint
			if len(fp) > 12 {
				fp = fp[:12]
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%d\t%s\n",
				e.Version, e.App, e.Salt, fp, e.SizeB, e.SavedAt.Format("2006-01-02 15:04:05"))
		}
		w.Flush()
		fmt.Printf("%d entries\n", len(entries))

	case "stat":
		entries, err := cache.List()
		if err != nil {
			fmt.Fprintln(os.Stderr, "bllab:", err)
			os.Exit(1)
		}
		current, stale := 0, 0
		var bytes int64
		for _, e := range entries {
			if e.Version == cache.Version() {
				current++
			} else {
				stale++
			}
			bytes += e.SizeB
		}
		fmt.Printf("cache dir:       %s\n", cache.Dir())
		fmt.Printf("code version:    %s\n", lab.CodeVersion())
		fmt.Printf("current entries: %d\n", current)
		fmt.Printf("stale entries:   %d (from older code versions; `bllab prune` removes them)\n", stale)
		fmt.Printf("total size:      %d bytes\n", bytes)
		prefixes, prefixBytes, perr := cache.PrefixStats()
		if perr != nil {
			fmt.Fprintln(os.Stderr, "bllab:", perr)
			os.Exit(1)
		}
		fmt.Printf("warmed prefixes: %d (%d bytes; fork sweeps resume from these instead of simulating the shared prefix)\n",
			prefixes, prefixBytes)

	case "prune":
		logAffected("pruning", func(e lab.Entry) bool { return e.Version != cache.Version() })
		n, err := cache.PruneStale()
		if err != nil {
			fmt.Fprintln(os.Stderr, "bllab:", err)
			os.Exit(1)
		}
		fmt.Printf("pruned %d stale entries\n", n)

	case "invalidate":
		if *app == "" && !*all {
			fmt.Fprintln(os.Stderr, "bllab: invalidate needs -app NAME or -all")
			os.Exit(2)
		}
		logAffected("invalidating", func(e lab.Entry) bool {
			return e.Version == cache.Version() && (*app == "" || e.App == *app)
		})
		n, err := cache.Invalidate(*app)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bllab:", err)
			os.Exit(1)
		}
		fmt.Printf("invalidated %d entries\n", n)

	default:
		fmt.Fprintf(os.Stderr, "bllab: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
}

// fleetCmd renders a coordinator's queue/lease/worker snapshot: the
// operator's answer to "is the fleet healthy and who is doing what".
func fleetCmd(args []string) {
	sub := flag.NewFlagSet("bllab fleet", flag.ExitOnError)
	coordinator := sub.String("coordinator", "http://127.0.0.1:8377", "coordinator base URL (a blserve instance)")
	sub.Parse(args)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c := &fleet.Client{Base: *coordinator}
	s, err := c.Stats(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bllab:", err)
		os.Exit(1)
	}

	state := "serving"
	if s.Draining {
		state = "DRAINING (no new leases)"
	}
	fmt.Printf("coordinator:  %s (%s)\n", *coordinator, state)
	fmt.Printf("queue depth:  %d pending (%d held: %d leased, %d done, %d failed)\n",
		s.QueueDepth, s.Jobs, s.Leased, s.Done, s.Failed)
	fmt.Printf("throughput:   %.1f jobs/sec (last 10s)\n", s.JobsPerSec)
	fmt.Printf("lifetime:     %d submitted, %d deduped, %d completed, %d failed, %d cache hits\n",
		s.Submitted, s.Deduped, s.Completed, s.FailedJobs, s.CacheHits)
	fmt.Printf("retries:      %d requeues, %d lease expiries, %d backpressured submissions\n",
		s.Retries, s.LeaseExpiries, s.Backpressure)

	if len(s.Leases) > 0 {
		fmt.Println("\nactive leases:")
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "LEASE\tJOB\tAPP\tWORKER\tATTEMPT\tAGE\tEXPIRES IN")
		for _, l := range s.Leases {
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%d\t%.1fs\t%.1fs\n",
				l.Lease, l.Job, l.App, l.Worker, l.Attempt, l.AgeSec, l.TTLSec)
		}
		w.Flush()
	}
	if len(s.Workers) > 0 {
		fmt.Println("\nworkers:")
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "ID\tLIVE\tACTIVE\tCOMPLETED\tFAILED\tLAST SEEN")
		for _, wk := range s.Workers {
			live := "yes"
			if !wk.Live {
				live = "NO"
			}
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%.1fs ago\n",
				wk.ID, live, wk.Active, wk.Completed, wk.Failed, wk.LastSeenSec)
		}
		w.Flush()
	}
}
