// Command bllab inspects and maintains the experiment result cache that
// blreport, blsweep, and bltlp populate.
//
// Usage:
//
//	bllab [-cache-dir DIR] ls            # list cached results
//	bllab [-cache-dir DIR] stat          # cache location, version, entry counts
//	bllab [-cache-dir DIR] prune         # drop results from stale code versions
//	bllab [-cache-dir DIR] invalidate [-app NAME] [-all]
//	                                     # drop current-version results
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"text/tabwriter"

	"biglittle/internal/lab"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: bllab [-cache-dir DIR] [-v] <ls|stat|prune|invalidate> [-app NAME] [-all]")
	flag.PrintDefaults()
}

func main() {
	cacheDir := flag.String("cache-dir", "", "result cache directory (default: the user cache dir, e.g. ~/.cache/biglittle)")
	verbose := flag.Bool("v", false, "log each affected cache entry to stderr")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)

	sub := flag.NewFlagSet("bllab "+cmd, flag.ExitOnError)
	app := sub.String("app", "", "restrict invalidate to one app's results")
	all := sub.Bool("all", false, "invalidate every current-version result")
	sub.Parse(flag.Args()[1:])

	cache, err := lab.Open(*cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bllab:", err)
		os.Exit(1)
	}
	var log *slog.Logger
	if *verbose {
		log = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug}))
		log.Debug("cache open", "dir", cache.Dir(), "version", cache.Version())
	}
	// logAffected lists the entries an operation is about to touch.
	logAffected := func(op string, match func(lab.Entry) bool) {
		if log == nil {
			return
		}
		entries, err := cache.List()
		if err != nil {
			return
		}
		for _, e := range entries {
			if match(e) {
				log.Debug(op, "app", e.App, "version", e.Version,
					"fingerprint", e.Fingerprint, "size_b", e.SizeB)
			}
		}
	}

	switch cmd {
	case "ls":
		entries, err := cache.List()
		if err != nil {
			fmt.Fprintln(os.Stderr, "bllab:", err)
			os.Exit(1)
		}
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "VERSION\tAPP\tSALT\tFINGERPRINT\tSIZE\tSAVED")
		for _, e := range entries {
			fp := e.Fingerprint
			if len(fp) > 12 {
				fp = fp[:12]
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%d\t%s\n",
				e.Version, e.App, e.Salt, fp, e.SizeB, e.SavedAt.Format("2006-01-02 15:04:05"))
		}
		w.Flush()
		fmt.Printf("%d entries\n", len(entries))

	case "stat":
		entries, err := cache.List()
		if err != nil {
			fmt.Fprintln(os.Stderr, "bllab:", err)
			os.Exit(1)
		}
		current, stale := 0, 0
		var bytes int64
		for _, e := range entries {
			if e.Version == cache.Version() {
				current++
			} else {
				stale++
			}
			bytes += e.SizeB
		}
		fmt.Printf("cache dir:       %s\n", cache.Dir())
		fmt.Printf("code version:    %s\n", lab.CodeVersion())
		fmt.Printf("current entries: %d\n", current)
		fmt.Printf("stale entries:   %d (from older code versions; `bllab prune` removes them)\n", stale)
		fmt.Printf("total size:      %d bytes\n", bytes)

	case "prune":
		logAffected("pruning", func(e lab.Entry) bool { return e.Version != cache.Version() })
		n, err := cache.PruneStale()
		if err != nil {
			fmt.Fprintln(os.Stderr, "bllab:", err)
			os.Exit(1)
		}
		fmt.Printf("pruned %d stale entries\n", n)

	case "invalidate":
		if *app == "" && !*all {
			fmt.Fprintln(os.Stderr, "bllab: invalidate needs -app NAME or -all")
			os.Exit(2)
		}
		logAffected("invalidating", func(e lab.Entry) bool {
			return e.Version == cache.Version() && (*app == "" || e.App == *app)
		})
		n, err := cache.Invalidate(*app)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bllab:", err)
			os.Exit(1)
		}
		fmt.Printf("invalidated %d entries\n", n)

	default:
		fmt.Fprintf(os.Stderr, "bllab: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
}
