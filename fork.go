package biglittle

import (
	"biglittle/internal/core"
	"biglittle/internal/snapshot"
)

// Whole-simulation snapshot/fork (DESIGN.md §9): capture a running
// simulation's complete state, serialize it, and resume it any number of
// times — a fork continued to time T is byte-identical to a from-scratch
// run to T. Sweeps that vary only post-fork knobs run one warmed prefix
// and fork N cheap continuations (see Lab.ForkSpec and blsweep -fork-at).

// Snapshot is one captured whole-simulation state.
type Snapshot = snapshot.State

// Sim is a simulation with explicit clock control: RunTo advances it,
// Snapshot captures it, Finish collects the Result.
type Sim = core.Sim

// NewSim assembles a snapshot-capable simulation for cfg.
func NewSim(cfg Config) (*Sim, error) { return core.NewSim(cfg) }

// Resume reconstructs a running simulation from a captured snapshot. cfg
// must match the snapshot's identity (app, seed, topology); policy knobs
// may differ and take effect at the fork point.
func Resume(cfg Config, st *Snapshot) (*Sim, error) { return core.Resume(cfg, st) }

// RunForked runs cfg to at, snapshots, round-trips the snapshot through
// the wire codec, and resumes to completion — byte-identical to Run(cfg).
func RunForked(cfg Config, at Time) (Result, error) { return core.RunForked(cfg, at) }

// EncodeSnapshot serializes a snapshot into its versioned, checksummed
// wire form.
func EncodeSnapshot(st *Snapshot) ([]byte, error) { return snapshot.Encode(st) }

// DecodeSnapshot parses a blob written by EncodeSnapshot, rejecting
// corrupt, truncated, or version-skewed data.
func DecodeSnapshot(blob []byte) (*Snapshot, error) { return snapshot.Decode(blob) }
