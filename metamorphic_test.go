package biglittle_test

import (
	"reflect"
	"testing"

	"biglittle"
)

// Metamorphic properties: relations between runs that must hold whatever the
// absolute numbers are. They catch model regressions that point assertions
// on single runs cannot — a governor that silently stops scaling, a uarch
// model whose big cores got slower than little ones, a microbenchmark whose
// duty knob disconnects.

// Same seed, same config — bit-identical results. This is the foundation the
// lab cache, the golden corpus, and every "compare two runs" test stand on.
func TestMetamorphicSeedDeterminism(t *testing.T) {
	app, err := biglittle.AppByName("video_player")
	if err != nil {
		t.Fatal(err)
	}
	cfg := biglittle.DefaultConfig(app)
	cfg.Duration = 2 * biglittle.Second
	a := biglittle.Run(cfg)
	b := biglittle.Run(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical configs diverged:\n a: %+v\n b: %+v", a, b)
	}
	cfg.Seed = 2
	c := biglittle.Run(cfg)
	if c.EnergyMJ == a.EnergyMJ && c.HMPMigrations == a.HMPMigrations {
		t.Fatal("different seeds produced an identical run; the seed is not reaching the workload")
	}
}

// Raising a pinned cluster frequency never decreases the work a saturated
// workload completes (§IV-D: performance is monotone in frequency).
func TestMetamorphicFrequencyMonotonic(t *testing.T) {
	stress := biglittle.Stress(4)
	run := func(cores biglittle.CoreConfig, pinned map[int]int) float64 {
		cfg := biglittle.DefaultConfig(stress)
		cfg.Duration = 2 * biglittle.Second
		cfg.Cores = cores
		cfg.Governor = biglittle.Userspace
		cfg.PinnedMHz = pinned
		return biglittle.Run(cfg).TotalWorkGc
	}

	prev := 0.0
	for _, mhz := range []int{800, 1100, 1500, 1900} {
		work := run(biglittle.BaselineCores(), map[int]int{0: 1300, 1: mhz})
		if work < prev {
			t.Fatalf("raising the big cluster to %d MHz decreased completed work: %.3f -> %.3f Gc", mhz, prev, work)
		}
		prev = work
	}

	prev = 0.0
	for _, mhz := range []int{500, 700, 900, 1100, 1300} {
		work := run(biglittle.CoreConfig{Little: 4}, map[int]int{0: mhz, 1: 800})
		if work < prev {
			t.Fatalf("raising the little cluster to %d MHz decreased completed work: %.3f -> %.3f Gc", mhz, prev, work)
		}
		prev = work
	}
}

// On every SPEC-like profile a big core beats a little core at the same
// frequency, and by no more than the microarchitectural ceiling — a 3-wide
// out-of-order core cannot be more than 8x a 2-wide in-order one.
func TestMetamorphicBigLittleSpeedupBounds(t *testing.T) {
	big, little := biglittle.CortexA15(), biglittle.CortexA7()
	for _, p := range biglittle.SPECProfiles() {
		a7 := biglittle.RunTrace(little, p, 1000, 0)
		a15 := biglittle.RunTrace(big, p, 1000, 0)
		s := biglittle.TraceSpeedup(a15, a7)
		if s < 1 {
			t.Errorf("%s: big core slower than little at the same frequency (speedup %.3f)", p.Name, s)
		}
		if s > 8 {
			t.Errorf("%s: speedup %.3f exceeds the uarch model's plausible ceiling of 8", p.Name, s)
		}
	}
}

// The §III-B utilization microbenchmark: doubling the duty cycle doubles the
// measured little-cluster utilization (within sampling noise), and the
// measured utilization tracks the requested duty.
func TestMetamorphicDutyCycleScaling(t *testing.T) {
	measure := func(duty int) float64 {
		cfg := biglittle.DefaultConfig(biglittle.Micro(duty, 1300, 0))
		cfg.Duration = 2 * biglittle.Second
		cfg.Cores = biglittle.CoreConfig{Little: 1}
		cfg.Governor = biglittle.Userspace
		cfg.PinnedMHz = map[int]int{0: 1300, 1: 800}
		return biglittle.Run(cfg).AvgLittleUtil
	}
	prev := 0.0
	for _, duty := range []int{10, 20, 40, 80} {
		util := measure(duty)
		if util <= prev {
			t.Fatalf("duty %d%%: utilization %.4f did not increase from %.4f", duty, util, prev)
		}
		want := float64(duty) / 100
		if ratio := util / want; ratio < 0.8 || ratio > 1.25 {
			t.Errorf("duty %d%%: measured utilization %.4f is %.2fx the requested duty", duty, util, ratio)
		}
		prev = util
	}
}
