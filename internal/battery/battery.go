// Package battery converts the power model's output into battery-life
// estimates — the quantity mobile users actually experience. The default
// pack matches the paper's Galaxy S5 (2800 mAh at 3.85 V nominal).
package battery

import (
	"biglittle/internal/event"
)

// Pack describes a battery.
type Pack struct {
	CapacityMAh float64
	NominalV    float64
}

// GalaxyS5 returns the paper's device battery.
func GalaxyS5() Pack { return Pack{CapacityMAh: 2800, NominalV: 3.85} }

// EnergyJ returns the pack's total energy in joules.
func (p Pack) EnergyJ() float64 { return p.CapacityMAh / 1000 * p.NominalV * 3600 }

// HoursAt returns how long the pack lasts at a constant draw of mw
// milliwatts, capped at 1000 hours for near-zero draws.
func (p Pack) HoursAt(mw float64) float64 {
	if mw <= 0 {
		return 1000
	}
	h := p.EnergyJ() / (mw / 1000) / 3600
	if h > 1000 {
		h = 1000
	}
	return h
}

// DrainPct returns the percentage of the pack consumed by energyMJ
// millijoules of use.
func (p Pack) DrainPct(energyMJ float64) float64 {
	return 100 * (energyMJ / 1000) / p.EnergyJ()
}

// DrainOver returns the percentage of the pack consumed by running at mw
// milliwatts for the given duration.
func (p Pack) DrainOver(mw float64, d event.Time) float64 {
	return p.DrainPct(mw * d.Seconds())
}
