package battery

import (
	"math"
	"testing"

	"biglittle/internal/event"
)

func TestPackEnergy(t *testing.T) {
	p := GalaxyS5()
	// 2.8 Ah x 3.85 V = 10.78 Wh = 38808 J.
	if math.Abs(p.EnergyJ()-38808) > 1 {
		t.Fatalf("energy %.0f J, want 38808", p.EnergyJ())
	}
}

func TestHoursAt(t *testing.T) {
	p := GalaxyS5()
	// At 1078 mW the 10.78 Wh pack lasts exactly 10 hours.
	if h := p.HoursAt(1078); math.Abs(h-10) > 0.01 {
		t.Fatalf("HoursAt(1078) = %.3f, want 10", h)
	}
	if h := p.HoursAt(0); h != 1000 {
		t.Fatalf("zero draw returned %.1f, want the 1000h cap", h)
	}
	if h := p.HoursAt(0.001); h != 1000 {
		t.Fatal("cap not applied")
	}
}

func TestDrain(t *testing.T) {
	p := GalaxyS5()
	// Running 1000 mW for 1 hour = 3600 J.
	got := p.DrainOver(1000, 3600*event.Second)
	if math.Abs(got-100.0*3600.0/38808.0) > 0.01 {
		t.Fatalf("DrainOver = %.3f%%", got)
	}
	if p.DrainPct(0) != 0 {
		t.Fatal("zero energy drains")
	}
}
