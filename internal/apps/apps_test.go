package apps

import (
	"math/rand"
	"testing"

	"biglittle/internal/event"
	"biglittle/internal/governor"
	"biglittle/internal/metrics"
	"biglittle/internal/platform"
	"biglittle/internal/sched"
	"biglittle/internal/workload"
)

func buildAndRun(t *testing.T, app App, dur event.Time) (*workload.Ctx, *sched.System) {
	t.Helper()
	eng := event.New()
	sys := sched.New(eng, platform.Exynos5422(), sched.DefaultConfig())
	sys.Start()
	governor.NewInteractive(sys, governor.DefaultInteractive()).Start()
	ctx := &workload.Ctx{
		Eng: eng, Sys: sys, Rng: rand.New(rand.NewSource(1)),
		Duration: dur,
		FPS:      &metrics.FPSTracker{},
		Lat:      &metrics.LatencyTracker{},
	}
	app.Build(ctx)
	eng.Run(dur)
	return ctx, sys
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("%d apps, want 12 (Table II)", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Desc == "" || a.Build == nil {
			t.Errorf("incomplete app %+v", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate app %s", a.Name)
		}
		seen[a.Name] = true
	}
	if len(LatencyApps()) != 7 {
		t.Fatalf("%d latency apps, want 7", len(LatencyApps()))
	}
	if len(FPSApps()) != 5 {
		t.Fatalf("%d FPS apps, want 5", len(FPSApps()))
	}
	if _, err := ByName("bbench"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown app lookup succeeded")
	}
	if Latency.String() != "Latency" || FPS.String() != "FPS" {
		t.Fatal("Metric strings")
	}
}

func TestEveryAppGeneratesActivity(t *testing.T) {
	for _, app := range All() {
		ctx, sys := buildAndRun(t, app, 3*event.Second)
		total := 0.0
		for _, task := range sys.Tasks() {
			total += task.TotalWork
		}
		if total == 0 {
			t.Errorf("%s: no work executed", app.Name)
		}
		switch app.Metric {
		case Latency:
			if ctx.Lat.N == 0 {
				t.Errorf("%s: no interactions recorded", app.Name)
			}
		case FPS:
			if ctx.FPS.Count() == 0 {
				t.Errorf("%s: no frames recorded", app.Name)
			}
		}
	}
}

func TestAppsDeterministic(t *testing.T) {
	for _, app := range []App{BBench(), EternityWarrior()} {
		ctx1, sys1 := buildAndRun(t, app, 2*event.Second)
		ctx2, sys2 := buildAndRun(t, app, 2*event.Second)
		if ctx1.Lat.N != ctx2.Lat.N || ctx1.FPS.Count() != ctx2.FPS.Count() {
			t.Errorf("%s: nondeterministic metrics", app.Name)
		}
		w1, w2 := 0.0, 0.0
		for _, task := range sys1.Tasks() {
			w1 += task.TotalWork
		}
		for _, task := range sys2.Tasks() {
			w2 += task.TotalWork
		}
		if w1 != w2 {
			t.Errorf("%s: nondeterministic work %f vs %f", app.Name, w1, w2)
		}
	}
}

func TestGamesHoldFrameRate(t *testing.T) {
	for _, tc := range []struct {
		app    App
		minFPS float64
		maxFPS float64
	}{
		{AngryBird(), 40, 61},
		{VideoPlayer(), 25, 31},
		{Youtube(), 25, 31},
	} {
		ctx, _ := buildAndRun(t, tc.app, 5*event.Second)
		fps := ctx.FPS.Avg(5 * event.Second)
		if fps < tc.minFPS || fps > tc.maxFPS {
			t.Errorf("%s: %.1f FPS outside [%.0f, %.0f]", tc.app.Name, fps, tc.minFPS, tc.maxFPS)
		}
	}
}

func TestEncoderWorkerMigratesUp(t *testing.T) {
	_, sys := buildAndRun(t, Encoder(), 5*event.Second)
	for _, task := range sys.Tasks() {
		if task.Name == "enc.worker" {
			if task.BigRanNs == 0 {
				t.Fatal("encoder worker never ran on a big core")
			}
			if task.BigRanNs < task.LittleRanNs {
				t.Fatalf("encoder worker mostly on little (%v big vs %v little)",
					task.BigRanNs, task.LittleRanNs)
			}
			return
		}
	}
	t.Fatal("enc.worker not found")
}

func TestAngryBirdStaysLittle(t *testing.T) {
	_, sys := buildAndRun(t, AngryBird(), 5*event.Second)
	var big, little event.Time
	for _, task := range sys.Tasks() {
		big += task.BigRanNs
		little += task.LittleRanNs
	}
	if little == 0 {
		t.Fatal("no little-core execution")
	}
	if frac := float64(big) / float64(big+little); frac > 0.02 {
		t.Fatalf("angry bird ran %.1f%% on big cores, paper ~0.1%%", 100*frac)
	}
}

func TestMicroDutyCycle(t *testing.T) {
	eng := event.New()
	soc := platform.Exynos5422()
	sys := sched.New(eng, soc, sched.DefaultConfig())
	sys.Start()
	sys.SetClusterFreq(0, 1000)
	ctx := &workload.Ctx{
		Eng: eng, Sys: sys, Rng: rand.New(rand.NewSource(1)),
		Duration: 2 * event.Second,
	}
	Micro(40, 1000, 0).Build(ctx)
	eng.Run(ctx.Duration)
	var busy event.Time
	for _, task := range sys.Tasks() {
		busy += task.LittleRanNs + task.BigRanNs
	}
	frac := float64(busy) / float64(ctx.Duration)
	if frac < 0.37 || frac > 0.43 {
		t.Fatalf("microbenchmark duty %.3f, want 0.40", frac)
	}
	// The spinner must stay on its pinned core.
	for _, task := range sys.Tasks() {
		if task.BigRanNs != 0 {
			t.Fatal("pinned spinner ran on a big core")
		}
	}
}

func TestPhaseSchedulePrecomputed(t *testing.T) {
	// Building an app must not consume engine randomness lazily for phases:
	// two identical builds produce identical phase flips. Verified through
	// end-to-end determinism of the heavy-phase game.
	a1, _ := buildAndRun(t, EternityWarrior(), 3*event.Second)
	a2, _ := buildAndRun(t, EternityWarrior(), 3*event.Second)
	if a1.FPS.Count() != a2.FPS.Count() {
		t.Fatal("phase schedules diverged between identical runs")
	}
}
