// Package apps models the twelve mobile benchmark applications of Table II
// as compositions of workload primitives: user-input interaction pipelines
// for the latency-oriented apps, frame chains with scene phases for the
// games and video apps, and continuous pipelines for the encoder. Each model
// is parameterized (thread counts, per-stage work, burst shapes, phase
// durations, background activity) to reproduce the app's characterization in
// Tables III-V: its idle fraction, big-core usage, and thread-level
// parallelism.
//
// Two modeling elements deserve a note:
//
//   - backgroundHum stands in for the Android system services (input,
//     SurfaceFlinger, binder traffic, sensors) that keep one or two little
//     cores lightly active even when the foreground app is quiescent — this
//     is why the paper measures only 9-20% idle for apps whose foreground
//     work is rare.
//
//   - interaction Boost models Android's input boost: touch events raise the
//     responding threads' tracked load so they are immediately eligible for
//     a big core, producing the 5-15% big-core residency the paper observes
//     even for lightly loaded interactive apps.
//
// The models express CPU demand only — exactly what the HMP scheduler and
// interactive governor observe on the real device. Video decoding hardware
// is reflected by the tiny CPU-side work of the player apps (§VII notes
// special hardware "further reduces the CPU loads").
package apps

import (
	"fmt"

	"biglittle/internal/event"
	"biglittle/internal/metrics"
	"biglittle/internal/workload"
)

// Metric tells which performance metric an app reports (Table II).
type Metric int

const (
	Latency Metric = iota
	FPS
)

func (m Metric) String() string {
	if m == FPS {
		return "FPS"
	}
	return "Latency"
}

// App is one benchmark application model.
type App struct {
	Name   string
	Desc   string
	Metric Metric
	// Build wires the app's threads and generators into the context.
	Build func(ctx *workload.Ctx)
}

const (
	ms = event.Millisecond
	mc = workload.Mc
)

// phase alternates a work parameter between a normal and a heavy scene, with
// exponentially distributed phase durations — combat versus exploration in a
// game, simple versus complex pages in a browser run.
type phase struct {
	cur    float64
	normal float64
	heavy  float64
}

func newPhase(ctx *workload.Ctx, normal, heavy float64, normalDur, heavyDur event.Time) *phase {
	p := &phase{cur: normal, normal: normal, heavy: heavy}
	// The scene schedule is user/content behaviour: draw it up front in
	// wall-clock time so runs compared across configurations see identical
	// phases (see frameChain's pause schedule for the same reasoning).
	t := ctx.Eng.Now()
	for t < ctx.Duration {
		t += ctx.Exp(normalDur)
		start := t
		t += ctx.Exp(heavyDur)
		end := t
		ctx.At(start, func(event.Time) { p.cur = p.heavy })
		ctx.At(end, func(event.Time) { p.cur = p.normal })
	}
	return p
}

// backgroundHum models ambient Android system activity: a Poisson event
// stream (mean interval meanGap) where each event runs a sliver of work on a
// primary system thread, sometimes accompanied by a second (p2) and third
// (p3) thread — binder calls fan out across services. The slivers are tiny,
// so the hum keeps little cores at minimum frequency but marks them active
// in the 10 ms samples, reproducing the paper's low idle fractions and the
// Table V dominance of the "min" state.
func backgroundHum(ctx *workload.Ctx, prefix string, meanGap event.Time, p2, p3 float64) {
	a := workload.NewThread(ctx, prefix+".sys1", 1.3)
	b := workload.NewThread(ctx, prefix+".sys2", 1.3)
	c := workload.NewThread(ctx, prefix+".sys3", 1.3)
	var arrive func(now event.Time)
	arrive = func(now event.Time) {
		if now >= ctx.Duration {
			return
		}
		a.Push(ctx.Jitter(0.25*mc, 0.5), nil)
		if ctx.Rng.Float64() < p2 {
			b.Push(ctx.Jitter(0.3*mc, 0.5), nil)
		}
		if ctx.Rng.Float64() < p3 {
			c.Push(ctx.Jitter(0.25*mc, 0.5), nil)
		}
		ctx.At(now+ctx.Exp(meanGap), arrive)
	}
	ctx.After(ctx.Exp(meanGap), arrive)
}

// frameChain runs a game/video frame pipeline: every period, stage work
// flows logic -> (render ∥ helpers); a completed pipeline counts one frame.
// When the pipeline overruns the period the next frame is skipped (frame
// drop), which is how FPS degrades on slow cores. pauseP inserts think-time
// gaps (menus, level loads) with mean pauseMean.
type frameStage struct {
	th   *workload.Thread
	work func() float64
}

func frameChain(ctx *workload.Ctx, period event.Time, logic frameStage, parallel []frameStage,
	pauseGap, pauseMean event.Time) {

	// Pauses are user behaviour (menus, level loads): their schedule is
	// drawn up front in wall-clock time so that runs compared across core
	// configurations see the identical pause pattern.
	type window struct{ start, end event.Time }
	var pauses []window
	if pauseGap > 0 {
		for t := ctx.Eng.Now(); t < ctx.Duration; {
			t += ctx.Exp(pauseGap)
			end := t + ctx.Exp(pauseMean)
			pauses = append(pauses, window{t, end})
			t = end
		}
	}
	paused := func(now event.Time) event.Time {
		for _, w := range pauses {
			if now >= w.start && now < w.end {
				return w.end
			}
		}
		return 0
	}

	inFlight := 0 // triple buffering: up to two frames may be in flight
	var tick func(now event.Time)
	tick = func(now event.Time) {
		if now >= ctx.Duration {
			return
		}
		if end := paused(now); end > 0 {
			ctx.At(end, tick)
			return
		}
		ctx.At(now+period, tick)
		if inFlight >= 2 {
			return // frame dropped
		}
		inFlight++
		logic.th.Push(logic.work(), func(event.Time) {
			remaining := len(parallel)
			if remaining == 0 {
				inFlight--
				if ctx.FPS != nil {
					ctx.FPS.FrameDone(ctx.Eng.Now())
				}
				return
			}
			for _, st := range parallel {
				st.th.Push(st.work(), func(fin event.Time) {
					remaining--
					if remaining == 0 {
						inFlight--
						if ctx.FPS != nil {
							ctx.FPS.FrameDone(fin)
						}
					}
				})
			}
		})
	}
	ctx.After(0, tick)
}

func jit(ctx *workload.Ctx, mean, cv float64) func() float64 {
	return func() float64 { return ctx.Jitter(mean, cv) }
}

// All returns the twelve application models in Table II order.
func All() []App {
	return []App{
		PDFReader(), VideoEditor(), PhotoEditor(), BBench(), VirusScanner(),
		Browser(), Encoder(), AngryBird(), EternityWarrior(), FIFA15(),
		VideoPlayer(), Youtube(),
	}
}

// ByName returns the app model with the given name.
func ByName(name string) (App, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("apps: unknown app %q", name)
}

// LatencyApps returns the seven latency-oriented apps (Figure 4).
func LatencyApps() []App {
	var out []App
	for _, a := range All() {
		if a.Metric == Latency {
			out = append(out, a)
		}
	}
	return out
}

// FPSApps returns the five FPS-oriented apps (Figure 5).
func FPSApps() []App {
	var out []App
	for _, a := range All() {
		if a.Metric == FPS {
			out = append(out, a)
		}
	}
	return out
}

// PDFReader: open and read a PDF. Page turns trigger a boosted
// parse/render/raster pipeline; complex pages are several times heavier.
func PDFReader() App {
	return App{
		Name: "pdf_reader", Desc: "Open and read a pdf file", Metric: Latency,
		Build: func(ctx *workload.Ctx) {
			ui := workload.NewThread(ctx, "pdf.ui", 1.5)
			parser := workload.NewThread(ctx, "pdf.parse", 1.7)
			render := workload.NewThread(ctx, "pdf.render", 1.8)
			raster := workload.NewThread(ctx, "pdf.raster", 1.8)
			compose := workload.NewThread(ctx, "pdf.compose", 1.5)

			workload.InteractionLoop(ctx, workload.InteractionConfig{
				Think: 420 * ms, ThinkCV: 0.5,
				Boost: []*workload.Thread{ui, parser, render}, BoostLoad: 1000,
				Stages: func() []workload.Stage {
					return []workload.Stage{
						{Threads: []*workload.Thread{ui}, Work: 1.5 * mc, CV: 0.4},
						{Threads: []*workload.Thread{parser}, Work: 6 * mc, CV: 0.5, PostDelay: 6 * ms},
						{Threads: []*workload.Thread{render, raster}, Work: 11 * mc, CV: 0.5,
							HeavyP: 0.15, HeavyMult: 7, PostDelay: 8 * ms},
						{Threads: []*workload.Thread{compose}, Work: 2 * mc, CV: 0.3, PostDelay: 4 * ms},
					}
				},
			})
			backgroundHum(ctx, "pdf", 6*ms, 0.55, 0.1)
		},
	}
}

// VideoEditor: edit a video file — scrub/seek interactions decode a few
// frames and apply an effect; exports are occasional heavy bursts.
func VideoEditor() App {
	return App{
		Name: "video_editor", Desc: "Edit a video file", Metric: Latency,
		Build: func(ctx *workload.Ctx) {
			ui := workload.NewThread(ctx, "vedit.ui", 1.5)
			dec1 := workload.NewThread(ctx, "vedit.dec1", 2.0)
			dec2 := workload.NewThread(ctx, "vedit.dec2", 2.0)
			fx := workload.NewThread(ctx, "vedit.fx", 2.0)
			preview := workload.NewThread(ctx, "vedit.preview", 1.7)

			workload.InteractionLoop(ctx, workload.InteractionConfig{
				Think: 500 * ms, ThinkCV: 0.6,
				Boost: []*workload.Thread{ui, fx, dec1}, BoostLoad: 1000,
				Stages: func() []workload.Stage {
					return []workload.Stage{
						{Threads: []*workload.Thread{ui}, Work: 1 * mc, CV: 0.4},
						{Threads: []*workload.Thread{dec1, dec2}, Work: 9 * mc, CV: 0.4, PostDelay: 18 * ms},
						{Threads: []*workload.Thread{fx}, Work: 16 * mc, CV: 0.5, HeavyP: 0.18, HeavyMult: 8, PostDelay: 10 * ms},
						{Threads: []*workload.Thread{preview}, Work: 5 * mc, CV: 0.4, PostDelay: 6 * ms},
					}
				},
			})
			backgroundHum(ctx, "vedit", 7*ms, 0.6, 0.15)
		},
	}
}

// PhotoEditor: apply filters to a photo. Largely single-threaded — the app
// with the lowest TLP in Table III — with occasionally heavy filters.
func PhotoEditor() App {
	return App{
		Name: "photo_editor", Desc: "Edit a photo", Metric: Latency,
		Build: func(ctx *workload.Ctx) {
			ui := workload.NewThread(ctx, "pedit.ui", 1.5)
			filter := workload.NewThread(ctx, "pedit.filter", 2.0)
			preview := workload.NewThread(ctx, "pedit.preview", 1.6)

			workload.InteractionLoop(ctx, workload.InteractionConfig{
				Think: 500 * ms, ThinkCV: 0.6,
				Boost: []*workload.Thread{filter}, BoostLoad: 760,
				Stages: func() []workload.Stage {
					return []workload.Stage{
						{Threads: []*workload.Thread{ui}, Work: 1 * mc, CV: 0.4},
						{Threads: []*workload.Thread{filter}, Work: 22 * mc, CV: 0.5, HeavyP: 0.10, HeavyMult: 7, PostDelay: 16 * ms},
						{Threads: []*workload.Thread{preview}, Work: 2.5 * mc, CV: 0.3, PostDelay: 10 * ms},
					}
				},
			})
			backgroundHum(ctx, "pedit", 4500*event.Microsecond, 0.15, 0)
		},
	}
}

// BBench: automated browser benchmark — back-to-back page loads with wide
// fan-out and a JavaScript thread heavy enough to live on a big core. The
// highest-TLP, lowest-idle app in the suite.
func BBench() App {
	return App{
		Name: "bbench", Desc: "Run bbench on chrome browser", Metric: Latency,
		Build: func(ctx *workload.Ctx) {
			net1 := workload.NewThread(ctx, "bb.net1", 1.5)
			net2 := workload.NewThread(ctx, "bb.net2", 1.5)
			js := workload.NewThread(ctx, "bb.js", 1.9)
			layout := workload.NewThread(ctx, "bb.layout", 1.8)
			img1 := workload.NewThread(ctx, "bb.img1", 1.9)
			img2 := workload.NewThread(ctx, "bb.img2", 1.9)
			paint := workload.NewThread(ctx, "bb.paint", 1.7)
			comp := workload.NewThread(ctx, "bb.comp", 1.6)

			workload.InteractionLoop(ctx, workload.InteractionConfig{
				Think: 25 * ms, ThinkCV: 0.5,
				Boost: []*workload.Thread{js, layout, img1, img2}, BoostLoad: 820,
				Stages: func() []workload.Stage {
					return []workload.Stage{
						{Threads: []*workload.Thread{net1, net2}, Work: 2.5 * mc, CV: 0.5, PostDelay: 18 * ms},
						{Threads: []*workload.Thread{js}, Work: 52 * mc, CV: 0.5, HeavyP: 0.3, HeavyMult: 2.5},
						{Threads: []*workload.Thread{layout, img1, img2, comp}, Work: 13 * mc, CV: 0.5, HeavyP: 0.15, HeavyMult: 2.5, PostDelay: 5 * ms},
						{Threads: []*workload.Thread{paint}, Work: 6 * mc, CV: 0.4, PostDelay: 5 * ms},
					}
				},
			})
			backgroundHum(ctx, "bb", 5*ms, 0.9, 0.9)
		},
	}
}

// VirusScanner: scan applications and storage — a near-continuous pipeline
// of per-file IO + scan work where archives are much heavier, pulling a big
// core in for roughly a fifth of active cycles.
func VirusScanner() App {
	return App{
		Name: "virus_scanner", Desc: "Scan applications and storages", Metric: Latency,
		Build: func(ctx *workload.Ctx) {
			io := workload.NewThread(ctx, "scan.io", 1.4)
			scan := workload.NewThread(ctx, "scan.engine", 1.9)
			hash := workload.NewThread(ctx, "scan.hash", 1.8)
			ui := workload.NewThread(ctx, "scan.ui", 1.4)

			workload.InteractionLoop(ctx, workload.InteractionConfig{
				Think: 18 * ms, ThinkCV: 0.8,
				Stages: func() []workload.Stage {
					return []workload.Stage{
						{Threads: []*workload.Thread{io}, Work: 1 * mc, CV: 0.5, PostDelay: 4 * ms},
						{Threads: []*workload.Thread{scan, hash}, Work: 8 * mc, CV: 0.6, HeavyP: 0.13, HeavyMult: 12, PostDelay: 7 * ms},
					}
				},
			})
			workload.Periodic(ctx, ui, workload.PeriodicConfig{Period: 400 * ms, Work: 1 * mc, CV: 0.3})
			backgroundHum(ctx, "scan", 7*ms, 0.4, 0.1)
		},
	}
}

// Browser: interactive browsing with human think time — the idlest app in
// the suite (Table III: 53% idle), loading a page every couple of seconds.
func Browser() App {
	return App{
		Name: "browser", Desc: "Visit a site on chrome browser", Metric: Latency,
		Build: func(ctx *workload.Ctx) {
			input := workload.NewThread(ctx, "br.input", 1.5)
			net := workload.NewThread(ctx, "br.net", 1.5)
			js := workload.NewThread(ctx, "br.js", 1.9)
			layout := workload.NewThread(ctx, "br.layout", 1.8)
			img := workload.NewThread(ctx, "br.img", 1.9)
			paint := workload.NewThread(ctx, "br.paint", 1.7)

			workload.InteractionLoop(ctx, workload.InteractionConfig{
				Think: 1800 * ms, ThinkCV: 0.5,
				Boost: []*workload.Thread{js, layout}, BoostLoad: 790,
				Stages: func() []workload.Stage {
					return []workload.Stage{
						{Threads: []*workload.Thread{input}, Work: 0.8 * mc, CV: 0.4},
						{Threads: []*workload.Thread{net}, Work: 3 * mc, CV: 0.6, PostDelay: 35 * ms},
						{Threads: []*workload.Thread{js, layout}, Work: 9 * mc, CV: 0.6, HeavyP: 0.15, HeavyMult: 7, PostDelay: 6 * ms},
						{Threads: []*workload.Thread{img, paint}, Work: 5 * mc, CV: 0.5, PostDelay: 5 * ms},
					}
				},
			})
			workload.InteractionLoop(ctx, workload.InteractionConfig{
				Think: 420 * ms, ThinkCV: 0.7, Silent: true,
				Boost: []*workload.Thread{js}, BoostLoad: 760,
				Stages: func() []workload.Stage {
					return []workload.Stage{
						{Threads: []*workload.Thread{input}, Work: 0.4 * mc, CV: 0.4},
						{Threads: []*workload.Thread{js}, Work: 2.2 * mc, CV: 0.5},
					}
				},
			})
			backgroundHum(ctx, "br", 19*ms, 0.75, 0.2)
		},
	}
}

// Encoder: encode a file — one CPU-bound worker interleaving compute chunks
// with short IO waits, plus a light reader. The compute thread's sustained
// load promotes it to a big core for most of the run.
func Encoder() App {
	return App{
		Name: "encoder", Desc: "Encode a file", Metric: Latency,
		Build: func(ctx *workload.Ctx) {
			enc := workload.NewThread(ctx, "enc.worker", 1.6)
			reader := workload.NewThread(ctx, "enc.reader", 1.4)

			// Chunk pipeline: CPU chunk then an IO gap; latency is recorded
			// per chunk so the scenario latency is the sum.
			var chunk func(now event.Time)
			chunk = func(now event.Time) {
				if now >= ctx.Duration {
					return
				}
				start := now
				// Read wait, then the CPU chunk; the latency of a chunk
				// includes both, as on the real device.
				ctx.At(now+ctx.Exp(15*ms), func(at event.Time) {
					reader.Push(1.2*mc, nil)
					enc.Push(ctx.Jitter(45*mc, 0.3), func(fin event.Time) {
						if ctx.Lat != nil {
							ctx.Lat.Record(fin - start)
						}
						chunk(fin)
					})
				})
			}
			ctx.After(5*ms, chunk)
			backgroundHum(ctx, "enc", 12*ms, 0.15, 0)
		},
	}
}

// AngryBird: 2D physics shooter at 60 FPS. Per-frame work is far below the
// little cores' capacity, so big cores are essentially never used
// (Table III: 0.11% big) despite a TLP of ~2.3.
func AngryBird() App {
	return App{
		Name: "angry_bird", Desc: "Shooting game with physics engine", Metric: FPS,
		Build: func(ctx *workload.Ctx) {
			logic := workload.NewThread(ctx, "ab.logic", 1.6)
			physics := workload.NewThread(ctx, "ab.physics", 1.7)
			render := workload.NewThread(ctx, "ab.render", 1.7)
			audio := workload.NewThread(ctx, "ab.audio", 1.3)

			frameChain(ctx, 16667000,
				frameStage{logic, jit(ctx, 3.8*mc, 0.35)},
				[]frameStage{
					{render, jit(ctx, 3.2*mc, 0.3)},
				},
				2400*ms, 380*ms)
			workload.PoissonBursts(ctx, physics, 120*ms, 1.5*mc, 0.5)
			workload.Periodic(ctx, audio, workload.PeriodicConfig{Period: 23 * ms, Work: 0.4 * mc, CV: 0.3})
			workload.TouchKicks(ctx, 420*ms)
			backgroundHum(ctx, "ab", 14*ms, 0.25, 0)
		},
	}
}

// EternityWarrior: 3D action RPG — the most CPU-intensive game. Combat
// scenes roughly double the render load, which then exceeds little-core
// capacity and migrates to a big core (Table III: 27% big).
func EternityWarrior() App {
	return App{
		Name: "eternity_warrior", Desc: "3D action RPG game", Metric: FPS,
		Build: func(ctx *workload.Ctx) {
			logic := workload.NewThread(ctx, "ew.logic", 1.7)
			render := workload.NewThread(ctx, "ew.render", 1.9)
			physics := workload.NewThread(ctx, "ew.physics", 1.7)
			audio := workload.NewThread(ctx, "ew.audio", 1.3)

			scene := newPhase(ctx, 7*mc, 28*mc, 4000*ms, 2000*ms)
			frameChain(ctx, 16667000,
				frameStage{logic, jit(ctx, 2.8*mc, 0.3)},
				[]frameStage{
					{render, func() float64 { return ctx.Jitter(scene.cur, 0.25) }},
					{physics, jit(ctx, 2.6*mc, 0.4)},
				},
				1850*ms, 350*ms)
			workload.Periodic(ctx, audio, workload.PeriodicConfig{Period: 23 * ms, Work: 0.5 * mc, CV: 0.3})
			workload.TouchKicks(ctx, 380*ms)
			backgroundHum(ctx, "ew", 12*ms, 0.4, 0.1)
		},
	}
}

// FIFA15: 3D sports game at 30 FPS with heavy match-action scenes.
func FIFA15() App {
	return App{
		Name: "fifa15", Desc: "3D sport game", Metric: FPS,
		Build: func(ctx *workload.Ctx) {
			logic := workload.NewThread(ctx, "ff.logic", 1.7)
			render := workload.NewThread(ctx, "ff.render", 1.9)
			ai := workload.NewThread(ctx, "ff.ai", 1.7)
			audio := workload.NewThread(ctx, "ff.audio", 1.3)

			scene := newPhase(ctx, 8*mc, 52*mc, 5200*ms, 1100*ms)
			frameChain(ctx, 33333000,
				frameStage{logic, jit(ctx, 3.5*mc, 0.3)},
				[]frameStage{
					{render, func() float64 { return ctx.Jitter(scene.cur, 0.3) }},
					{ai, jit(ctx, 3*mc, 0.5)},
				},
				3300*ms, 900*ms)
			workload.Periodic(ctx, audio, workload.PeriodicConfig{Period: 23 * ms, Work: 0.5 * mc, CV: 0.3})
			workload.TouchKicks(ctx, 500*ms)
			backgroundHum(ctx, "ff", 13*ms, 0.4, 0.1)
		},
	}
}

// VideoPlayer: play a local video. Hardware decoding leaves only a light
// CPU-side pipeline (sync, render submission, audio) at 30 FPS — little
// cores at low frequency absorb nearly everything.
func VideoPlayer() App {
	return App{
		Name: "video_player", Desc: "Play a video file", Metric: FPS,
		Build: func(ctx *workload.Ctx) {
			demux := workload.NewThread(ctx, "vp.demux", 1.4)
			sync := workload.NewThread(ctx, "vp.sync", 1.4)
			render := workload.NewThread(ctx, "vp.render", 1.5)
			audio := workload.NewThread(ctx, "vp.audio", 1.3)

			frameChain(ctx, 33333000,
				frameStage{demux, jit(ctx, 0.9*mc, 0.4)},
				[]frameStage{
					{sync, jit(ctx, 0.35*mc, 0.3)},
					{render, jit(ctx, 0.9*mc, 0.3)},
				},
				33000*ms, 400*ms)
			workload.Periodic(ctx, audio, workload.PeriodicConfig{Period: 46 * ms, Work: 0.5 * mc, CV: 0.3})
			backgroundHum(ctx, "vp", 8*ms, 0.45, 0.1)
		},
	}
}

// Youtube: search and stream a video — the video-player pipeline plus
// network buffering bursts.
func Youtube() App {
	return App{
		Name: "youtube", Desc: "Search and play a video", Metric: FPS,
		Build: func(ctx *workload.Ctx) {
			demux := workload.NewThread(ctx, "yt.demux", 1.4)
			sync := workload.NewThread(ctx, "yt.sync", 1.4)
			render := workload.NewThread(ctx, "yt.render", 1.5)
			audio := workload.NewThread(ctx, "yt.audio", 1.3)
			net := workload.NewThread(ctx, "yt.net", 1.4)

			frameChain(ctx, 33333000,
				frameStage{demux, jit(ctx, 0.9*mc, 0.4)},
				[]frameStage{
					{sync, jit(ctx, 0.35*mc, 0.3)},
					{render, jit(ctx, 0.9*mc, 0.3)},
				},
				33000*ms, 400*ms)
			workload.Periodic(ctx, audio, workload.PeriodicConfig{Period: 46 * ms, Work: 0.5 * mc, CV: 0.3})
			workload.PoissonBursts(ctx, net, 450*ms, 1.8*mc, 0.6)
			backgroundHum(ctx, "yt", 8500*event.Microsecond, 0.45, 0.1)
		},
	}
}

// Stress returns a synthetic stress test: n CPU-bound threads running
// flat out for the whole duration (speedup 2.0 so HMP sends them to big
// cores). Used by the thermal study — mobile interactive apps never
// sustain enough power to throttle, a stress load does.
func Stress(n int) App {
	return App{
		Name:   fmt.Sprintf("stress_%d", n),
		Desc:   fmt.Sprintf("%d sustained CPU-bound threads", n),
		Metric: Latency,
		Build: func(ctx *workload.Ctx) {
			for i := 0; i < n; i++ {
				th := workload.NewThread(ctx, fmt.Sprintf("stress.%d", i), 2.0)
				workload.Continuous(ctx, th, 50*mc)
			}
		},
	}
}

// Micro returns the CPU-utilization microbenchmark of §III-B: a single
// thread alternating busy and idle periods to hold a target duty cycle.
// The busy work is sized against the given frequency so the duty cycle is
// exact at that pinned frequency. pinCore >= 0 pins the spinner to one core
// (the paper runs the microbenchmark on a single core of each type).
func Micro(dutyPct, pinnedMHz, pinCore int) App {
	period := 10 * ms
	return App{
		Name:   fmt.Sprintf("micro_%d", dutyPct),
		Desc:   fmt.Sprintf("utilization microbenchmark at %d%%", dutyPct),
		Metric: Latency,
		Build: func(ctx *workload.Ctx) {
			th := workload.NewThread(ctx, "micro.spin", 1.0)
			if pinCore >= 0 {
				th.Task.Pin(pinCore)
			}
			work := workload.CyclesForDuty(float64(dutyPct)/100, pinnedMHz, period)
			workload.Periodic(ctx, th, workload.PeriodicConfig{Period: period, Work: work})
		},
	}
}

// Composite runs several app models concurrently — a foreground app (whose
// latency/FPS metrics are the ones reported) plus background apps whose
// metrics are discarded. It models multitasking scenarios such as music
// streaming behind a browser; the paper notes the limited screen keeps
// simultaneously active apps rare, which is why its study is single-app.
func Composite(name string, foreground App, background ...App) App {
	metric := foreground.Metric
	return App{
		Name:   name,
		Desc:   "composite: " + foreground.Name + " + background",
		Metric: metric,
		Build: func(ctx *workload.Ctx) {
			foreground.Build(ctx)
			for _, bg := range background {
				shadow := *ctx
				shadow.FPS = &metrics.FPSTracker{}
				shadow.Lat = &metrics.LatencyTracker{}
				bg.Build(&shadow)
			}
		},
	}
}

// FrameConfig describes a public frame-style pipeline for custom apps (the
// bundled game models use the same machinery with scene phases).
type FrameConfig struct {
	Period event.Time
	// Logic runs first each frame; Parallel stages run concurrently after.
	Logic    FrameStageConfig
	Parallel []FrameStageConfig
	// PauseGap/PauseMean insert user pauses (0 disables).
	PauseGap  event.Time
	PauseMean event.Time
}

// FrameStageConfig is one thread's per-frame work.
type FrameStageConfig struct {
	Thread *workload.Thread
	WorkMc float64
	CV     float64
}

// FrameLoop runs a frame pipeline per cfg, counting completed frames in
// ctx.FPS. Frames drop when more than two are in flight.
func FrameLoop(ctx *workload.Ctx, cfg FrameConfig) {
	par := make([]frameStage, len(cfg.Parallel))
	for i, st := range cfg.Parallel {
		par[i] = frameStage{st.Thread, jit(ctx, st.WorkMc*mc, st.CV)}
	}
	frameChain(ctx, cfg.Period,
		frameStage{cfg.Logic.Thread, jit(ctx, cfg.Logic.WorkMc*mc, cfg.Logic.CV)},
		par, cfg.PauseGap, cfg.PauseMean)
}
