package altsched

import (
	"testing"

	"biglittle/internal/event"
	"biglittle/internal/governor"
	"biglittle/internal/platform"
	"biglittle/internal/power"
	"biglittle/internal/sched"
)

func rig() (*event.Engine, *sched.System) {
	eng := event.New()
	sys := sched.New(eng, platform.Exynos5422(), sched.DefaultConfig())
	sys.Start()
	governor.NewInteractive(sys, governor.DefaultInteractive()).Start()
	return eng, sys
}

func hog(eng *event.Engine, sys *sched.System, name string, speedup float64) *sched.Task {
	t := sys.NewTask(name, speedup)
	sys.Push(t, 1e12)
	return t
}

// Efficiency-based: with more loaded threads than big cores, the highest-
// speedup threads win the big cores.
func TestEfficiencyRanksBySpeedup(t *testing.T) {
	eng, sys := rig()
	NewEfficiency(sys)
	// Six CPU hogs with distinct speedups; only 4 big cores exist.
	speedups := []float64{2.4, 2.2, 2.0, 1.8, 1.3, 1.1}
	tasks := make([]*sched.Task, len(speedups))
	for i, sp := range speedups {
		tasks[i] = hog(eng, sys, "hog", sp)
	}
	eng.Run(500 * event.Millisecond)
	for i, task := range tasks {
		got := sys.SoC.Cores[task.CPU()].Type
		want := platform.Big
		if i >= 4 {
			want = platform.Little
		}
		if got != want {
			t.Errorf("hog %d (speedup %.1f) on %v, want %v", i, speedups[i], got, want)
		}
	}
}

// Efficiency-based: sliver threads never occupy big cores.
func TestEfficiencyDemotesSlivers(t *testing.T) {
	eng, sys := rig()
	NewEfficiency(sys)
	sliver := sys.NewTask("sliver", 2.5) // high speedup but no load
	var gen func(now event.Time)
	gen = func(now event.Time) {
		sys.Push(sliver, 1e5)
		eng.At(now+20*event.Millisecond, gen)
	}
	gen(0)
	eng.Run(time1s)
	if sliver.BigRanNs > sliver.LittleRanNs/5 {
		t.Fatalf("sliver ran %v on big cores (little %v)", sliver.BigRanNs, sliver.LittleRanNs)
	}
}

const time1s = event.Second

// Parallelism-aware: a single CPU-bound thread (serial phase) runs on a big
// core.
func TestParallelismSerialPhaseGoesBig(t *testing.T) {
	eng, sys := rig()
	NewParallelism(sys)
	task := hog(eng, sys, "serial", 1.5)
	eng.Run(300 * event.Millisecond)
	if got := sys.SoC.Cores[task.CPU()].Type; got != platform.Big {
		t.Fatalf("serial thread on %v, want big", got)
	}
}

// Parallelism-aware: with abundant parallelism (more threads than big
// cores, fitting the little cluster... here exactly 4 + 4), threads use the
// little cores... our threshold: active > bigSlots -> little when fits.
func TestParallelismAbundantGoesLittle(t *testing.T) {
	eng, sys := rig()
	// Take one big core offline so 4 hogs exceed the 3 big slots but fit
	// the 4 little cores.
	if err := (platform.CoreConfig{Little: 4, Big: 3}).Apply(sys.SoC); err != nil {
		t.Fatal(err)
	}
	NewParallelism(sys)
	tasks := make([]*sched.Task, 4)
	for i := range tasks {
		tasks[i] = hog(eng, sys, "par", 2.0)
	}
	eng.Run(300 * event.Millisecond)
	for i, task := range tasks {
		if got := sys.SoC.Cores[task.CPU()].Type; got != platform.Little {
			t.Errorf("parallel thread %d on %v, want little", i, got)
		}
	}
}

// Parallelism-aware: oversubscription spills the highest-load threads to
// big cores.
func TestParallelismOversubscribedSpills(t *testing.T) {
	eng, sys := rig()
	NewParallelism(sys)
	for i := 0; i < 6; i++ {
		hog(eng, sys, "many", 1.5)
	}
	eng.Run(400 * event.Millisecond)
	big := 0
	for _, task := range sys.Tasks() {
		if task.CPU() >= 0 && sys.SoC.Cores[task.CPU()].Type == platform.Big {
			big++
		}
	}
	if big == 0 {
		t.Fatal("no spill to big cores with 6 runnable hogs on 4 little cores")
	}
}

// The policies must respect hotplug: with no big cores online, everything
// stays on little cores and nothing panics.
func TestPoliciesWithoutBigCores(t *testing.T) {
	for _, attach := range []func(*sched.System){
		func(s *sched.System) { NewEfficiency(s) },
		func(s *sched.System) { NewParallelism(s) },
	} {
		eng, sys := rig()
		if err := (platform.CoreConfig{Little: 4}).Apply(sys.SoC); err != nil {
			t.Fatal(err)
		}
		attach(sys)
		task := hog(eng, sys, "hog", 2.0)
		eng.Run(300 * event.Millisecond)
		if got := sys.SoC.Cores[task.CPU()].Type; got != platform.Little {
			t.Fatalf("task on %v with big cluster offline", got)
		}
	}
}

// EAS: a saturating little cluster trips the overutilized escape hatch and
// spills load to big cores; a single efficient sliver stays on little.
func TestEASOverutilizedSpills(t *testing.T) {
	eng, sys := rig()
	NewEAS(sys, power.Default())
	tasks := make([]*sched.Task, 5)
	for i := range tasks {
		tasks[i] = hog(eng, sys, "hog", 1.8)
	}
	eng.Run(500 * event.Millisecond)
	big := 0
	for _, task := range tasks {
		if sys.SoC.Cores[task.CPU()].Type == platform.Big {
			big++
		}
	}
	if big == 0 {
		t.Fatal("EAS never spilled to big cores despite little-cluster saturation")
	}
}

// EAS: with a calm system, moderate tasks stay on the energy-efficient
// little cluster even when big cores are free.
func TestEASPrefersEfficientCluster(t *testing.T) {
	eng, sys := rig()
	NewEAS(sys, power.Default())
	task := sys.NewTask("mid", 1.5)
	var gen func(now event.Time)
	gen = func(now event.Time) {
		sys.Push(task, 2e6) // ~4ms at 500MHz, every 10ms: ~40% duty
		eng.At(now+10*event.Millisecond, gen)
	}
	gen(0)
	eng.Run(time1s)
	if task.BigRanNs > task.LittleRanNs/5 {
		t.Fatalf("moderate task ran %v on big cores (little %v)", task.BigRanNs, task.LittleRanNs)
	}
}
