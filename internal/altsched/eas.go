package altsched

import (
	"biglittle/internal/event"
	"biglittle/internal/platform"
	"biglittle/internal/power"
	"biglittle/internal/sched"
)

// EAS implements energy-aware scheduling, the approach that replaced HMP in
// mainline Linux after the paper's era: instead of fixed load thresholds,
// each loaded task is placed on the cluster that can serve its demand at
// the lowest energy per unit of work, computed from the platform's actual
// power model at the clusters' current frequencies.
type EAS struct {
	sys *sched.System
	pw  power.Params
	// capacityThreshold is the load above which a little core cannot serve
	// the task and capacity overrides efficiency (with headroom).
	capacityThreshold int

	// Overutilization escape hatch (as in mainline EAS): when any little
	// core saturates, energy-aware placement is suspended and loaded tasks
	// spill to the big cluster until the pressure clears.
	lastBusy      []event.Time
	lastCheck     event.Time
	overUtilUntil event.Time
}

// NewEAS attaches the policy to sys using pw as the energy model.
func NewEAS(sys *sched.System, pw power.Params) *EAS {
	e := &EAS{
		sys: sys, pw: pw, capacityThreshold: 850,
		lastBusy: make([]event.Time, len(sys.SoC.Cores)),
	}
	sys.MigrateHook = e.rebalance
	sys.WakeHook = e.wakeType
	return e
}

// overutilized updates and reports the escape-hatch state: any online
// little core above 90% utilization since the last check latches the state
// for 50 ms.
func (e *EAS) overutilized(now event.Time) bool {
	interval := now - e.lastCheck
	if interval > 0 {
		for _, id := range e.sys.SoC.OnlineCores(platform.Little) {
			busy := e.sys.BusyNs(id)
			if sched.CoreBusyFraction(e.lastBusy[id], busy, interval) > 0.9 {
				e.overUtilUntil = now + 50*event.Millisecond
			}
			e.lastBusy[id] = busy
		}
		// Keep the non-little counters fresh too.
		for id := range e.sys.SoC.Cores {
			e.lastBusy[id] = e.sys.BusyNs(id)
		}
		e.lastCheck = now
	}
	return now < e.overUtilUntil
}

// energyPerGc returns the modeled energy cost (mJ per giga-cycle of task
// work) of running the task on the given cluster type at its current
// frequency. Big-core speedup reduces the big cluster's cost proportionally.
func (e *EAS) energyPerGc(t *sched.Task, typ platform.CoreType) float64 {
	cl := e.sys.SoC.ClusterByType(typ)
	if cl == nil || len(e.sys.SoC.OnlineCores(typ)) == 0 {
		return 1e18
	}
	mw := e.pw.CorePowerMW(typ, cl.CurMHz, 1.0) - e.pw.CorePowerMW(typ, cl.CurMHz, 0.0)
	rate := float64(cl.CurMHz) * 1e6 // cycles per second of task work
	switch typ {
	case platform.Big:
		rate *= t.Speedup
	case platform.Tiny:
		rate *= sched.TinyPerfScale
	}
	return mw / (rate / 1e9) // mW per Gc/s == mJ per Gc
}

// place returns the energy-optimal feasible cluster type for a task.
func (e *EAS) place(t *sched.Task) platform.CoreType {
	if t.Load() > e.capacityThreshold {
		// Doesn't fit a little core even at max frequency: capacity first.
		if len(e.sys.SoC.OnlineCores(platform.Big)) > 0 {
			return platform.Big
		}
		return platform.Little
	}
	if e.energyPerGc(t, platform.Big) < e.energyPerGc(t, platform.Little) {
		return platform.Big
	}
	return platform.Little
}

func (e *EAS) wakeType(t *sched.Task) platform.CoreType {
	return e.place(t)
}

func (e *EAS) rebalance(now event.Time) {
	over := e.overutilized(now)
	for _, t := range e.sys.Tasks() {
		if t.CurState() == sched.Sleeping || t.CurState() == sched.Waking {
			continue
		}
		if t.Load() < minActiveLoad {
			// Background slivers stay off the big cluster.
			if e.sys.OnCPUType(t) == platform.Big {
				e.sys.MoveToType(t, platform.Little)
			}
			continue
		}
		if over && t.Load() >= 400 && len(e.sys.SoC.OnlineCores(platform.Big)) > 0 {
			// Escape hatch: capacity first until the little cluster calms.
			e.sys.MoveToType(t, platform.Big)
			continue
		}
		e.sys.MoveToType(t, e.place(t))
	}
}
