package altsched

import (
	"fmt"

	"biglittle/internal/event"
)

// EASSnap is the EAS policy's dynamic state for whole-simulation snapshot:
// the overutilization escape-hatch latch and its per-core busy baselines.
// Efficiency and Parallelism are stateless and need no snapshot.
type EASSnap struct {
	LastBusy      []event.Time `json:"lastBusy"`
	LastCheck     event.Time   `json:"lastCheck"`
	OverUtilUntil event.Time   `json:"overUtilUntil"`
}

// Snapshot captures the policy's dynamic state without modifying it.
func (e *EAS) Snapshot() EASSnap {
	return EASSnap{
		LastBusy:      append([]event.Time(nil), e.lastBusy...),
		LastCheck:     e.lastCheck,
		OverUtilUntil: e.overUtilUntil,
	}
}

// Restore loads sn into a freshly attached policy.
func (e *EAS) Restore(sn *EASSnap) error {
	if len(sn.LastBusy) != len(e.lastBusy) {
		return fmt.Errorf("altsched: snapshot has %d core entries, policy has %d",
			len(sn.LastBusy), len(e.lastBusy))
	}
	copy(e.lastBusy, sn.LastBusy)
	e.lastCheck = sn.LastCheck
	e.overUtilUntil = sn.OverUtilUntil
	return nil
}
