// Package altsched implements the two academic scheduling approaches the
// paper contrasts with the commercial utilization-based HMP scheduler in
// §IV-A:
//
//   - Efficiency-based scheduling (Kumar et al. [1,2]): the N threads with
//     the highest big-core speedup among the loaded threads are mapped to
//     the N big cores, maximizing throughput per watt of big-core time.
//   - Parallelism-aware scheduling (Saez et al. [8]): when few threads are
//     runnable the workload is in a serial phase and the critical thread
//     runs on a big core; when parallelism is abundant, threads spread over
//     the energy-efficient little cores.
//
// Both plug into sched.System's MigrateHook/WakeHook, replacing Algorithm 1
// while reusing the run queues, load tracking, balancing, and DVFS stack —
// so the comparison isolates exactly the mapping policy, as the paper's
// discussion does.
package altsched

import (
	"sort"

	"biglittle/internal/event"
	"biglittle/internal/platform"
	"biglittle/internal/sched"
)

// minActiveLoad filters out background slivers: threads below this tracked
// load are never considered for a big core by either policy (they cannot
// benefit, and both papers assume CPU-intensive candidates).
const minActiveLoad = 120

// Efficiency implements efficiency-based scheduling.
type Efficiency struct {
	sys *sched.System
}

// NewEfficiency attaches the policy to sys (replacing HMP migration).
func NewEfficiency(sys *sched.System) *Efficiency {
	e := &Efficiency{sys: sys}
	sys.MigrateHook = e.rebalance
	sys.WakeHook = e.wakeType
	return e
}

// wakeType sends known-efficient, non-sliver threads toward big cores and
// everything else to little cores; rebalance corrects within a tick.
func (e *Efficiency) wakeType(t *sched.Task) platform.CoreType {
	if t.BurstFootprint() >= minActiveLoad && t.Speedup >= 1.7 {
		return platform.Big
	}
	return platform.Little
}

func (e *Efficiency) rebalance(now event.Time) {
	bigSlots := len(e.sys.SoC.OnlineCores(platform.Big))
	var candidates []*sched.Task
	for _, t := range e.sys.Tasks() {
		if t.CurState() == sched.Sleeping || t.Load() < minActiveLoad {
			// Low-load or sleeping threads stay where they are; demote any
			// that linger on big cores.
			if t.CurState() != sched.Sleeping && e.sys.OnCPUType(t) == platform.Big {
				e.sys.MoveToType(t, platform.Little)
			}
			continue
		}
		candidates = append(candidates, t)
	}
	// Top-N by big-core speedup, load as tie-breaker (both Kumar variants
	// rank by measured big-core benefit).
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].Speedup != candidates[j].Speedup {
			return candidates[i].Speedup > candidates[j].Speedup
		}
		return candidates[i].Load() > candidates[j].Load()
	})
	for i, t := range candidates {
		if i < bigSlots {
			e.sys.MoveToType(t, platform.Big)
		} else {
			e.sys.MoveToType(t, platform.Little)
		}
	}
}

// Parallelism implements parallelism-aware scheduling.
type Parallelism struct {
	sys *sched.System
}

// NewParallelism attaches the policy to sys (replacing HMP migration).
func NewParallelism(sys *sched.System) *Parallelism {
	p := &Parallelism{sys: sys}
	sys.MigrateHook = p.rebalance
	sys.WakeHook = p.wakeType
	return p
}

func (p *Parallelism) wakeType(t *sched.Task) platform.CoreType {
	// Wake onto little; rebalance promotes the serial phase's critical
	// thread within a tick.
	return platform.Little
}

func (p *Parallelism) rebalance(now event.Time) {
	var active []*sched.Task
	for _, t := range p.sys.Tasks() {
		if t.CurState() != sched.Sleeping && t.Load() >= minActiveLoad {
			active = append(active, t)
		}
	}
	littleSlots := len(p.sys.SoC.OnlineCores(platform.Little))
	bigSlots := len(p.sys.SoC.OnlineCores(platform.Big))

	if len(active) <= bigSlots {
		// Serial phase (low parallelism): the few loaded threads form the
		// critical path — run them on big cores.
		for _, t := range active {
			p.sys.MoveToType(t, platform.Big)
		}
	} else if len(active) <= littleSlots {
		// Abundant parallelism that still fits the little cluster: use the
		// energy-efficient cores.
		for _, t := range active {
			p.sys.MoveToType(t, platform.Little)
		}
	} else {
		// Oversubscribed: spill the highest-load threads onto big cores.
		sort.Slice(active, func(i, j int) bool { return active[i].Load() > active[j].Load() })
		for i, t := range active {
			if i < bigSlots {
				p.sys.MoveToType(t, platform.Big)
			} else {
				p.sys.MoveToType(t, platform.Little)
			}
		}
	}
	// Sleeping-adjacent slivers that drifted onto big cores go home.
	for _, t := range p.sys.Tasks() {
		if t.CurState() != sched.Sleeping && t.Load() < minActiveLoad &&
			p.sys.OnCPUType(t) == platform.Big {
			p.sys.MoveToType(t, platform.Little)
		}
	}
}
