package analysis

import (
	"testing"

	"biglittle/internal/event"
	"biglittle/internal/lab"
)

// renderSlice renders a representative slice of the report — simulation-backed
// drivers spanning the cluster comparison, full characterization, and the
// parallel Fig6 microbenchmark grid — for the determinism check.
func renderSlice(o Options) string {
	return RenderFig4(Fig4(o)) +
		RenderTable3(Characterize(o)) +
		RenderFig6(Fig6(o))
}

// TestReportDeterministicAcrossWorkersAndCache asserts the orchestrator's
// core guarantee: rendered report output is byte-identical whether jobs run
// on 1 worker or 8, and whether results come from fresh simulation or the
// warm on-disk cache.
func TestReportDeterministicAcrossWorkersAndCache(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opts := func(r *lab.Runner) Options {
		return Options{Duration: 2 * event.Second, Seed: 1, Runner: r}
	}

	serial := renderSlice(opts(lab.New(1, nil)))
	parallel := renderSlice(opts(lab.New(8, nil)))
	if serial != parallel {
		t.Fatal("report output differs between 1 and 8 workers")
	}

	cache, err := lab.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coldRunner := lab.New(8, cache)
	cold := renderSlice(opts(coldRunner))
	if cold != serial {
		t.Fatal("cold-cache output differs from uncached output")
	}
	if s := coldRunner.Stats(); s.Simulated == 0 {
		t.Fatalf("cold stats = %+v, expected simulations", s)
	}

	warmRunner := lab.New(8, cache)
	warm := renderSlice(opts(warmRunner))
	if warm != serial {
		t.Fatal("warm-cache output differs from cold output")
	}
	s := warmRunner.Stats()
	if s.Simulated != 0 {
		t.Fatalf("warm stats = %+v, expected every simulation served from cache", s)
	}
	if s.Hits == 0 || s.Hits != coldRunner.Stats().Jobs {
		t.Fatalf("warm stats = %+v, want %d hits", s, coldRunner.Stats().Jobs)
	}
}
