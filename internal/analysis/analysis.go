// Package analysis implements one driver per table and figure in the
// paper's evaluation (§III, §V, §VI). Each driver returns typed rows so
// tests and benchmarks can assert on them, and render.go formats them the
// way the paper presents them. The experiment index lives in DESIGN.md.
package analysis

import (
	"fmt"

	"biglittle/internal/apps"
	"biglittle/internal/core"
	"biglittle/internal/event"
	"biglittle/internal/governor"
	"biglittle/internal/lab"
	"biglittle/internal/platform"
	"biglittle/internal/power"
	"biglittle/internal/sched"
	"biglittle/internal/synth"
	"biglittle/internal/uarch"
)

// Options control experiment scale; zero values take the paper-faithful
// defaults (30 s per app run, full SPEC traces).
type Options struct {
	// Duration per simulated app run.
	Duration event.Time
	// Seed for workload randomness.
	Seed int64
	// Instructions per SPEC trace (0 = the profile default).
	Instructions int
	// Runner orchestrates the driver's simulations: worker-pool fan-out and
	// (when it carries a cache) content-addressed result memoization. Nil
	// uses the shared default runner — GOMAXPROCS workers, no cache.
	Runner *lab.Runner
}

func (o Options) withDefaults() Options {
	if o.Duration <= 0 {
		o.Duration = 30 * event.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func (o Options) appConfig(app apps.App) core.Config {
	cfg := core.DefaultConfig(app)
	cfg.Duration = o.Duration
	cfg.Seed = o.Seed
	return cfg
}

func (o Options) lab() *lab.Runner {
	if o.Runner != nil {
		return o.Runner
	}
	return lab.Default()
}

// runAll executes jobs through the experiment runner and panics on failure:
// driver configs are validated values, so a job that exhausts its retries is
// a bug (core.Run's own convention for misuse).
func (o Options) runAll(jobs []lab.Job) []core.Result {
	res, err := o.lab().RunAll(jobs)
	if err != nil {
		panic(err)
	}
	return res
}

// forEach fans fn out over the runner's worker pool — the parallelism path
// for drivers whose unit of work is not a core simulation (microarchitecture
// and branch-predictor sweeps). Per-index results must be written to
// pre-sized slices so aggregation stays deterministic.
func (o Options) forEach(n int, fn func(i int)) { o.lab().ForEach(n, fn) }

func job(cfg core.Config) lab.Job { return lab.Job{Config: cfg} }

// ---------------------------------------------------------------------------
// Figure 2: SPEC speedup of big core at 1.9/1.3/0.8 GHz vs little at 1.3 GHz.

// Fig2Row is one workload's bars in Figure 2.
type Fig2Row struct {
	Workload  string
	Speedup19 float64 // big @1.9GHz vs little @1.3GHz
	Speedup13 float64 // big @1.3GHz
	Speedup08 float64 // big @0.8GHz
}

// Fig2 reproduces Figure 2.
func Fig2(o Options) []Fig2Row {
	o = o.withDefaults()
	little, big := uarch.CortexA7(), uarch.CortexA15()
	profiles := synth.SPEC()
	rows := make([]Fig2Row, len(profiles))
	o.forEach(len(profiles), func(i int) {
		p := profiles[i]
		base := uarch.Run(little, p, 1300, o.Instructions)
		rows[i] = Fig2Row{
			Workload:  p.Name,
			Speedup19: uarch.Speedup(uarch.Run(big, p, 1900, o.Instructions), base),
			Speedup13: uarch.Speedup(uarch.Run(big, p, 1300, o.Instructions), base),
			Speedup08: uarch.Speedup(uarch.Run(big, p, 800, o.Instructions), base),
		}
	})
	return rows
}

// ---------------------------------------------------------------------------
// Figure 3: whole-system power for SPEC on each core/frequency.

// Fig3Row is one workload's bars in Figure 3 (mW, screen and network off).
type Fig3Row struct {
	Workload string
	Little13 float64
	Big08    float64
	Big13    float64
	Big19    float64
}

// Fig3 reproduces Figure 3. Per-workload variation comes from switching
// activity: memory-bound workloads issue fewer instructions per cycle, so
// their dynamic power is scaled by an activity factor derived from IPC.
func Fig3(o Options) []Fig3Row {
	o = o.withDefaults()
	little, big := uarch.CortexA7(), uarch.CortexA15()
	pw := power.Default()
	sys := func(m uarch.Model, t platform.CoreType, p synth.Profile, mhz int) float64 {
		r := uarch.Run(m, p, mhz, o.Instructions)
		activity := 0.6 + 0.4*r.IPC/float64(m.IssueWidth)
		tp := pw.Little
		if t == platform.Big {
			tp = pw.Big
		}
		v := tp.Voltage(mhz)
		dyn := tp.DynCoefMW * v * v * float64(mhz) * activity
		return pw.BaseMW + dyn + tp.ActiveOverheadMW*v
	}
	profiles := synth.SPEC()
	rows := make([]Fig3Row, len(profiles))
	o.forEach(len(profiles), func(i int) {
		p := profiles[i]
		rows[i] = Fig3Row{
			Workload: p.Name,
			Little13: sys(little, platform.Little, p, 1300),
			Big08:    sys(big, platform.Big, p, 800),
			Big13:    sys(big, platform.Big, p, 1300),
			Big19:    sys(big, platform.Big, p, 1900),
		}
	})
	return rows
}

// ---------------------------------------------------------------------------
// Figures 4 and 5: 4 big cores versus 4 little cores for the mobile apps.

// ClusterCompareRow compares an app on little-only versus big-only cores.
type ClusterCompareRow struct {
	App string
	// Latency metrics (latency apps).
	LatencyReductionPct float64 // how much faster on big (positive = better)
	// FPS metrics (FPS apps).
	AvgFPSGainPct float64
	MinFPSGainPct float64
	// Power.
	PowerIncreasePct float64
	LittleMW, BigMW  float64
}

// clusterCompare builds the little-only and big-only configs for one app,
// and assembles the comparison row from their results.
func clusterConfigs(o Options, app apps.App) (littleCfg, bigCfg core.Config) {
	littleCfg = o.appConfig(app)
	littleCfg.Cores = platform.CoreConfig{Little: 4}

	bigCfg = o.appConfig(app)
	bigCfg.Cores = platform.CoreConfig{Little: 1, Big: 4}
	// Force everything onto the big cluster: with a zero up-threshold every
	// runnable task migrates up immediately, emulating the paper's
	// big-cores-only runs (one little core must stay online in hardware).
	bigCfg.Sched.UpThreshold = -1
	bigCfg.Sched.DownThreshold = -1
	return littleCfg, bigCfg
}

func clusterCompareRows(o Options, suite []apps.App) []ClusterCompareRow {
	jobs := make([]lab.Job, 0, 2*len(suite))
	for _, app := range suite {
		littleCfg, bigCfg := clusterConfigs(o, app)
		jobs = append(jobs, job(littleCfg), job(bigCfg))
	}
	res := o.runAll(jobs)
	rows := make([]ClusterCompareRow, len(suite))
	for i, app := range suite {
		lr, br := res[2*i], res[2*i+1]
		row := ClusterCompareRow{
			App:              app.Name,
			LittleMW:         lr.AvgPowerMW,
			BigMW:            br.AvgPowerMW,
			PowerIncreasePct: pct(br.AvgPowerMW, lr.AvgPowerMW),
		}
		if app.Metric == apps.Latency {
			if br.MeanLatency > 0 && lr.MeanLatency > 0 {
				row.LatencyReductionPct = 100 * (1 - br.MeanLatency.Seconds()/lr.MeanLatency.Seconds())
			}
		} else {
			row.AvgFPSGainPct = pct(br.AvgFPS, lr.AvgFPS)
			row.MinFPSGainPct = pct(br.MinFPS, lr.MinFPS)
		}
		rows[i] = row
	}
	return rows
}

func pct(new, old float64) float64 {
	if old == 0 {
		return 0
	}
	return 100 * (new - old) / old
}

// Fig4 reproduces Figure 4: latency reduction versus power increase when
// the seven latency-oriented apps run on 4 big instead of 4 little cores.
func Fig4(o Options) []ClusterCompareRow {
	o = o.withDefaults()
	return clusterCompareRows(o, apps.LatencyApps())
}

// Fig5 reproduces Figure 5: average and minimum FPS gain versus power
// increase for the five FPS-oriented apps.
func Fig5(o Options) []ClusterCompareRow {
	o = o.withDefaults()
	return clusterCompareRows(o, apps.FPSApps())
}

// ---------------------------------------------------------------------------
// Figure 6: power versus utilization for each core type and frequency.

// Fig6Row is one point of Figure 6.
type Fig6Row struct {
	Type    platform.CoreType
	MHz     int
	UtilPct int
	MW      float64
}

// Fig6 reproduces Figure 6 by running the duty-cycle microbenchmark pinned
// to a single core of each type with a userspace-pinned frequency.
func Fig6(o Options) []Fig6Row {
	o = o.withDefaults()
	dur := o.Duration / 5
	if dur < 2*event.Second {
		dur = o.Duration
	}
	var (
		jobs []lab.Job
		rows []Fig6Row
	)
	for _, tc := range []struct {
		typ   platform.CoreType
		cores platform.CoreConfig
		pin   int
		freqs []int
	}{
		{platform.Little, platform.CoreConfig{Little: 1}, 0, []int{500, 800, 1000, 1300}},
		{platform.Big, platform.CoreConfig{Little: 1, Big: 1}, 4, []int{800, 1200, 1500, 1900}},
	} {
		for _, mhz := range tc.freqs {
			for util := 0; util <= 100; util += 20 {
				cfg := o.appConfig(apps.Micro(util, mhz, tc.pin))
				cfg.Duration = dur
				cfg.Cores = tc.cores
				cfg.Governor = core.Userspace
				cfg.PinnedMHz = map[int]int{0: mhz, 1: mhz}
				// The microbenchmark's duty cycle and pinned core live in
				// its Build closure; salt them into the fingerprint.
				jobs = append(jobs, lab.Job{Config: cfg, Salt: fmt.Sprintf("fig6/%v/%d/%d/%d", tc.typ, mhz, util, tc.pin)})
				rows = append(rows, Fig6Row{Type: tc.typ, MHz: mhz, UtilPct: util})
			}
		}
	}
	res := o.runAll(jobs)
	for i := range rows {
		rows[i].MW = res[i].AvgPowerMW
	}
	return rows
}

// ---------------------------------------------------------------------------
// Tables III and IV, Figures 9/10, Table V: default-configuration runs.

// AppCharacterization bundles all per-app default-run metrics.
type AppCharacterization struct {
	Result core.Result
}

// Characterize runs every app on the baseline configuration; it backs
// Table III (TLP), Table IV (matrix), Table V (efficiency states), and
// Figures 9/10 (frequency residency).
func Characterize(o Options) []core.Result {
	o = o.withDefaults()
	all := apps.All()
	jobs := make([]lab.Job, len(all))
	for i, app := range all {
		jobs[i] = job(o.appConfig(app))
	}
	return o.runAll(jobs)
}

// ---------------------------------------------------------------------------
// Figures 7 and 8: core-count configurations.

// CoreConfigRow holds one app × core-configuration cell of Figures 7/8.
type CoreConfigRow struct {
	App    string
	Config platform.CoreConfig
	// PerfChangePct is the performance change versus the L4+B4 baseline
	// (latency apps: positive means faster interactions; FPS apps: average
	// FPS change).
	PerfChangePct float64
	MinFPSChange  float64
	// PowerSavingPct versus baseline (positive = saves power).
	PowerSavingPct float64
}

// CoreConfigs reproduces Figures 7 and 8 across the seven §V-C hotplug
// combinations for every app.
func CoreConfigs(o Options) []CoreConfigRow {
	o = o.withDefaults()
	all := apps.All()
	cfgs := platform.StudyConfigs()
	per := 1 + len(cfgs) // baseline first, then each hotplug config
	jobs := make([]lab.Job, 0, len(all)*per)
	for _, app := range all {
		jobs = append(jobs, job(o.appConfig(app)))
		for _, cc := range cfgs {
			cfg := o.appConfig(app)
			cfg.Cores = cc
			jobs = append(jobs, job(cfg))
		}
	}
	res := o.runAll(jobs)
	rows := make([]CoreConfigRow, len(all)*len(cfgs))
	for ai, app := range all {
		base := res[ai*per]
		for ci, cc := range cfgs {
			r := res[ai*per+1+ci]
			row := CoreConfigRow{
				App:            app.Name,
				Config:         cc,
				PowerSavingPct: pct(base.AvgPowerMW, r.AvgPowerMW),
				PerfChangePct:  pct(r.Performance(), base.Performance()),
			}
			if app.Metric == apps.FPS {
				row.MinFPSChange = pct(r.MinFPS, base.MinFPS)
			}
			rows[ai*len(cfgs)+ci] = row
		}
	}
	return rows
}

// ---------------------------------------------------------------------------
// Figures 11-13: governor and HMP parameter study.

// Tuning is one of the eight §VI-C configurations.
type Tuning struct {
	Name  string
	Gov   func(*governor.InteractiveConfig)
	Sched func(*sched.Config)
}

// Tunings returns the paper's eight parameter variations.
func Tunings() []Tuning {
	return []Tuning{
		{Name: "interval60", Gov: func(g *governor.InteractiveConfig) { g.SampleMs = 60 }},
		{Name: "interval100", Gov: func(g *governor.InteractiveConfig) { g.SampleMs = 100 }},
		{Name: "target80", Gov: func(g *governor.InteractiveConfig) { g.TargetLoad = 80 }},
		{Name: "target60", Gov: func(g *governor.InteractiveConfig) { g.TargetLoad = 60 }},
		{Name: "hmp_conservative", Sched: func(s *sched.Config) { s.UpThreshold, s.DownThreshold = 850, 400 }},
		{Name: "hmp_aggressive", Sched: func(s *sched.Config) { s.UpThreshold, s.DownThreshold = 550, 100 }},
		{Name: "weight_2x", Sched: func(s *sched.Config) { s.HalfLifeMs = 64 }},
		{Name: "weight_half", Sched: func(s *sched.Config) { s.HalfLifeMs = 16 }},
	}
}

// TuningRow is one app × tuning cell of Figures 11-13.
type TuningRow struct {
	App             string
	Tuning          string
	PowerSavingPct  float64 // vs baseline (positive = saves power)
	LatencyDeltaPct float64 // latency apps: positive = slower
	AvgFPSDeltaPct  float64 // FPS apps
}

// TuningStudy reproduces Figures 11, 12 and 13: every app under the eight
// governor/HMP parameter configurations, compared to the baseline.
func TuningStudy(o Options) []TuningRow {
	o = o.withDefaults()
	all := apps.All()
	tns := Tunings()
	per := 1 + len(tns) // baseline first, then each tuning
	jobs := make([]lab.Job, 0, len(all)*per)
	for _, app := range all {
		jobs = append(jobs, job(o.appConfig(app)))
		for _, tn := range tns {
			cfg := o.appConfig(app)
			if tn.Gov != nil {
				tn.Gov(&cfg.Gov)
			}
			if tn.Sched != nil {
				tn.Sched(&cfg.Sched)
			}
			jobs = append(jobs, job(cfg))
		}
	}
	res := o.runAll(jobs)
	rows := make([]TuningRow, len(all)*len(tns))
	for ai, app := range all {
		base := res[ai*per]
		for ti, tn := range tns {
			r := res[ai*per+1+ti]
			row := TuningRow{
				App:            app.Name,
				Tuning:         tn.Name,
				PowerSavingPct: pct(base.AvgPowerMW, r.AvgPowerMW),
			}
			if app.Metric == apps.Latency {
				row.LatencyDeltaPct = pct(r.MeanLatency.Seconds(), base.MeanLatency.Seconds())
			} else {
				row.AvgFPSDeltaPct = pct(r.AvgFPS, base.AvgFPS)
			}
			rows[ai*len(tns)+ti] = row
		}
	}
	return rows
}

// TuningSummary aggregates TuningStudy rows per tuning: average, min, and
// max power saving across apps — the bars and whiskers of Figure 11.
type TuningSummary struct {
	Tuning       string
	AvgSavingPct float64
	MinSavingPct float64
	MaxSavingPct float64
}

// SummarizeTuning computes Figure 11's aggregates from TuningStudy rows.
func SummarizeTuning(rows []TuningRow) []TuningSummary {
	order := []string{}
	agg := map[string]*TuningSummary{}
	for _, r := range rows {
		s, ok := agg[r.Tuning]
		if !ok {
			s = &TuningSummary{Tuning: r.Tuning, MinSavingPct: r.PowerSavingPct, MaxSavingPct: r.PowerSavingPct}
			agg[r.Tuning] = s
			order = append(order, r.Tuning)
		}
		s.AvgSavingPct += r.PowerSavingPct
		if r.PowerSavingPct < s.MinSavingPct {
			s.MinSavingPct = r.PowerSavingPct
		}
		if r.PowerSavingPct > s.MaxSavingPct {
			s.MaxSavingPct = r.PowerSavingPct
		}
	}
	counts := map[string]int{}
	for _, r := range rows {
		counts[r.Tuning]++
	}
	var out []TuningSummary
	for _, name := range order {
		s := agg[name]
		s.AvgSavingPct /= float64(counts[name])
		out = append(out, *s)
	}
	return out
}
