// Package analysis implements one driver per table and figure in the
// paper's evaluation (§III, §V, §VI). Each driver returns typed rows so
// tests and benchmarks can assert on them, and render.go formats them the
// way the paper presents them. The experiment index lives in DESIGN.md.
package analysis

import (
	"biglittle/internal/apps"
	"biglittle/internal/core"
	"biglittle/internal/event"
	"biglittle/internal/governor"
	"biglittle/internal/platform"
	"biglittle/internal/power"
	"biglittle/internal/sched"
	"biglittle/internal/synth"
	"biglittle/internal/uarch"
)

// Options control experiment scale; zero values take the paper-faithful
// defaults (30 s per app run, full SPEC traces).
type Options struct {
	// Duration per simulated app run.
	Duration event.Time
	// Seed for workload randomness.
	Seed int64
	// Instructions per SPEC trace (0 = the profile default).
	Instructions int
}

func (o Options) withDefaults() Options {
	if o.Duration <= 0 {
		o.Duration = 30 * event.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func (o Options) appConfig(app apps.App) core.Config {
	cfg := core.DefaultConfig(app)
	cfg.Duration = o.Duration
	cfg.Seed = o.Seed
	return cfg
}

// ---------------------------------------------------------------------------
// Figure 2: SPEC speedup of big core at 1.9/1.3/0.8 GHz vs little at 1.3 GHz.

// Fig2Row is one workload's bars in Figure 2.
type Fig2Row struct {
	Workload  string
	Speedup19 float64 // big @1.9GHz vs little @1.3GHz
	Speedup13 float64 // big @1.3GHz
	Speedup08 float64 // big @0.8GHz
}

// Fig2 reproduces Figure 2.
func Fig2(o Options) []Fig2Row {
	o = o.withDefaults()
	little, big := uarch.CortexA7(), uarch.CortexA15()
	var rows []Fig2Row
	for _, p := range synth.SPEC() {
		base := uarch.Run(little, p, 1300, o.Instructions)
		rows = append(rows, Fig2Row{
			Workload:  p.Name,
			Speedup19: uarch.Speedup(uarch.Run(big, p, 1900, o.Instructions), base),
			Speedup13: uarch.Speedup(uarch.Run(big, p, 1300, o.Instructions), base),
			Speedup08: uarch.Speedup(uarch.Run(big, p, 800, o.Instructions), base),
		})
	}
	return rows
}

// ---------------------------------------------------------------------------
// Figure 3: whole-system power for SPEC on each core/frequency.

// Fig3Row is one workload's bars in Figure 3 (mW, screen and network off).
type Fig3Row struct {
	Workload string
	Little13 float64
	Big08    float64
	Big13    float64
	Big19    float64
}

// Fig3 reproduces Figure 3. Per-workload variation comes from switching
// activity: memory-bound workloads issue fewer instructions per cycle, so
// their dynamic power is scaled by an activity factor derived from IPC.
func Fig3(o Options) []Fig3Row {
	o = o.withDefaults()
	little, big := uarch.CortexA7(), uarch.CortexA15()
	pw := power.Default()
	sys := func(m uarch.Model, t platform.CoreType, p synth.Profile, mhz int) float64 {
		r := uarch.Run(m, p, mhz, o.Instructions)
		activity := 0.6 + 0.4*r.IPC/float64(m.IssueWidth)
		tp := pw.Little
		if t == platform.Big {
			tp = pw.Big
		}
		v := tp.Voltage(mhz)
		dyn := tp.DynCoefMW * v * v * float64(mhz) * activity
		return pw.BaseMW + dyn + tp.ActiveOverheadMW*v
	}
	var rows []Fig3Row
	for _, p := range synth.SPEC() {
		rows = append(rows, Fig3Row{
			Workload: p.Name,
			Little13: sys(little, platform.Little, p, 1300),
			Big08:    sys(big, platform.Big, p, 800),
			Big13:    sys(big, platform.Big, p, 1300),
			Big19:    sys(big, platform.Big, p, 1900),
		})
	}
	return rows
}

// ---------------------------------------------------------------------------
// Figures 4 and 5: 4 big cores versus 4 little cores for the mobile apps.

// ClusterCompareRow compares an app on little-only versus big-only cores.
type ClusterCompareRow struct {
	App string
	// Latency metrics (latency apps).
	LatencyReductionPct float64 // how much faster on big (positive = better)
	// FPS metrics (FPS apps).
	AvgFPSGainPct float64
	MinFPSGainPct float64
	// Power.
	PowerIncreasePct float64
	LittleMW, BigMW  float64
}

func clusterCompare(o Options, app apps.App) ClusterCompareRow {
	littleCfg := o.appConfig(app)
	littleCfg.Cores = platform.CoreConfig{Little: 4}

	bigCfg := o.appConfig(app)
	bigCfg.Cores = platform.CoreConfig{Little: 1, Big: 4}
	// Force everything onto the big cluster: with a zero up-threshold every
	// runnable task migrates up immediately, emulating the paper's
	// big-cores-only runs (one little core must stay online in hardware).
	bigCfg.Sched.UpThreshold = -1
	bigCfg.Sched.DownThreshold = -1

	lr := core.Run(littleCfg)
	br := core.Run(bigCfg)

	row := ClusterCompareRow{
		App:              app.Name,
		LittleMW:         lr.AvgPowerMW,
		BigMW:            br.AvgPowerMW,
		PowerIncreasePct: pct(br.AvgPowerMW, lr.AvgPowerMW),
	}
	if app.Metric == apps.Latency {
		if br.MeanLatency > 0 && lr.MeanLatency > 0 {
			row.LatencyReductionPct = 100 * (1 - br.MeanLatency.Seconds()/lr.MeanLatency.Seconds())
		}
	} else {
		row.AvgFPSGainPct = pct(br.AvgFPS, lr.AvgFPS)
		row.MinFPSGainPct = pct(br.MinFPS, lr.MinFPS)
	}
	return row
}

func pct(new, old float64) float64 {
	if old == 0 {
		return 0
	}
	return 100 * (new - old) / old
}

// Fig4 reproduces Figure 4: latency reduction versus power increase when
// the seven latency-oriented apps run on 4 big instead of 4 little cores.
func Fig4(o Options) []ClusterCompareRow {
	o = o.withDefaults()
	la := apps.LatencyApps()
	rows := make([]ClusterCompareRow, len(la))
	forEach(len(la), func(i int) { rows[i] = clusterCompare(o, la[i]) })
	return rows
}

// Fig5 reproduces Figure 5: average and minimum FPS gain versus power
// increase for the five FPS-oriented apps.
func Fig5(o Options) []ClusterCompareRow {
	o = o.withDefaults()
	fa := apps.FPSApps()
	rows := make([]ClusterCompareRow, len(fa))
	forEach(len(fa), func(i int) { rows[i] = clusterCompare(o, fa[i]) })
	return rows
}

// ---------------------------------------------------------------------------
// Figure 6: power versus utilization for each core type and frequency.

// Fig6Row is one point of Figure 6.
type Fig6Row struct {
	Type    platform.CoreType
	MHz     int
	UtilPct int
	MW      float64
}

// Fig6 reproduces Figure 6 by running the duty-cycle microbenchmark pinned
// to a single core of each type with a userspace-pinned frequency.
func Fig6(o Options) []Fig6Row {
	o = o.withDefaults()
	dur := o.Duration / 5
	if dur < 2*event.Second {
		dur = o.Duration
	}
	var rows []Fig6Row
	for _, tc := range []struct {
		typ   platform.CoreType
		cores platform.CoreConfig
		pin   int
		freqs []int
	}{
		{platform.Little, platform.CoreConfig{Little: 1}, 0, []int{500, 800, 1000, 1300}},
		{platform.Big, platform.CoreConfig{Little: 1, Big: 1}, 4, []int{800, 1200, 1500, 1900}},
	} {
		for _, mhz := range tc.freqs {
			for util := 0; util <= 100; util += 20 {
				cfg := o.appConfig(apps.Micro(util, mhz, tc.pin))
				cfg.Duration = dur
				cfg.Cores = tc.cores
				cfg.Governor = core.Userspace
				cfg.PinnedMHz = map[int]int{0: mhz, 1: mhz}
				r := core.Run(cfg)
				rows = append(rows, Fig6Row{Type: tc.typ, MHz: mhz, UtilPct: util, MW: r.AvgPowerMW})
			}
		}
	}
	return rows
}

// ---------------------------------------------------------------------------
// Tables III and IV, Figures 9/10, Table V: default-configuration runs.

// AppCharacterization bundles all per-app default-run metrics.
type AppCharacterization struct {
	Result core.Result
}

// Characterize runs every app on the baseline configuration; it backs
// Table III (TLP), Table IV (matrix), Table V (efficiency states), and
// Figures 9/10 (frequency residency).
func Characterize(o Options) []core.Result {
	o = o.withDefaults()
	all := apps.All()
	out := make([]core.Result, len(all))
	forEach(len(all), func(i int) {
		out[i] = core.Run(o.appConfig(all[i]))
	})
	return out
}

// ---------------------------------------------------------------------------
// Figures 7 and 8: core-count configurations.

// CoreConfigRow holds one app × core-configuration cell of Figures 7/8.
type CoreConfigRow struct {
	App    string
	Config platform.CoreConfig
	// PerfChangePct is the performance change versus the L4+B4 baseline
	// (latency apps: positive means faster interactions; FPS apps: average
	// FPS change).
	PerfChangePct float64
	MinFPSChange  float64
	// PowerSavingPct versus baseline (positive = saves power).
	PowerSavingPct float64
}

// CoreConfigs reproduces Figures 7 and 8 across the seven §V-C hotplug
// combinations for every app.
func CoreConfigs(o Options) []CoreConfigRow {
	o = o.withDefaults()
	all := apps.All()
	cfgs := platform.StudyConfigs()
	rows := make([]CoreConfigRow, len(all)*len(cfgs))
	forEach(len(all), func(ai int) {
		app := all[ai]
		base := core.Run(o.appConfig(app))
		for ci, cc := range cfgs {
			cfg := o.appConfig(app)
			cfg.Cores = cc
			r := core.Run(cfg)
			row := CoreConfigRow{
				App:            app.Name,
				Config:         cc,
				PowerSavingPct: pct(base.AvgPowerMW, r.AvgPowerMW),
				PerfChangePct:  pct(r.Performance(), base.Performance()),
			}
			if app.Metric == apps.FPS {
				row.MinFPSChange = pct(r.MinFPS, base.MinFPS)
			}
			rows[ai*len(cfgs)+ci] = row
		}
	})
	return rows
}

// ---------------------------------------------------------------------------
// Figures 11-13: governor and HMP parameter study.

// Tuning is one of the eight §VI-C configurations.
type Tuning struct {
	Name  string
	Gov   func(*governor.InteractiveConfig)
	Sched func(*sched.Config)
}

// Tunings returns the paper's eight parameter variations.
func Tunings() []Tuning {
	return []Tuning{
		{Name: "interval60", Gov: func(g *governor.InteractiveConfig) { g.SampleMs = 60 }},
		{Name: "interval100", Gov: func(g *governor.InteractiveConfig) { g.SampleMs = 100 }},
		{Name: "target80", Gov: func(g *governor.InteractiveConfig) { g.TargetLoad = 80 }},
		{Name: "target60", Gov: func(g *governor.InteractiveConfig) { g.TargetLoad = 60 }},
		{Name: "hmp_conservative", Sched: func(s *sched.Config) { s.UpThreshold, s.DownThreshold = 850, 400 }},
		{Name: "hmp_aggressive", Sched: func(s *sched.Config) { s.UpThreshold, s.DownThreshold = 550, 100 }},
		{Name: "weight_2x", Sched: func(s *sched.Config) { s.HalfLifeMs = 64 }},
		{Name: "weight_half", Sched: func(s *sched.Config) { s.HalfLifeMs = 16 }},
	}
}

// TuningRow is one app × tuning cell of Figures 11-13.
type TuningRow struct {
	App             string
	Tuning          string
	PowerSavingPct  float64 // vs baseline (positive = saves power)
	LatencyDeltaPct float64 // latency apps: positive = slower
	AvgFPSDeltaPct  float64 // FPS apps
}

// TuningStudy reproduces Figures 11, 12 and 13: every app under the eight
// governor/HMP parameter configurations, compared to the baseline.
func TuningStudy(o Options) []TuningRow {
	o = o.withDefaults()
	all := apps.All()
	tns := Tunings()
	rows := make([]TuningRow, len(all)*len(tns))
	forEach(len(all), func(ai int) {
		app := all[ai]
		base := core.Run(o.appConfig(app))
		for ti, tn := range tns {
			cfg := o.appConfig(app)
			if tn.Gov != nil {
				tn.Gov(&cfg.Gov)
			}
			if tn.Sched != nil {
				tn.Sched(&cfg.Sched)
			}
			r := core.Run(cfg)
			row := TuningRow{
				App:            app.Name,
				Tuning:         tn.Name,
				PowerSavingPct: pct(base.AvgPowerMW, r.AvgPowerMW),
			}
			if app.Metric == apps.Latency {
				row.LatencyDeltaPct = pct(r.MeanLatency.Seconds(), base.MeanLatency.Seconds())
			} else {
				row.AvgFPSDeltaPct = pct(r.AvgFPS, base.AvgFPS)
			}
			rows[ai*len(tns)+ti] = row
		}
	})
	return rows
}

// TuningSummary aggregates TuningStudy rows per tuning: average, min, and
// max power saving across apps — the bars and whiskers of Figure 11.
type TuningSummary struct {
	Tuning       string
	AvgSavingPct float64
	MinSavingPct float64
	MaxSavingPct float64
}

// SummarizeTuning computes Figure 11's aggregates from TuningStudy rows.
func SummarizeTuning(rows []TuningRow) []TuningSummary {
	order := []string{}
	agg := map[string]*TuningSummary{}
	for _, r := range rows {
		s, ok := agg[r.Tuning]
		if !ok {
			s = &TuningSummary{Tuning: r.Tuning, MinSavingPct: r.PowerSavingPct, MaxSavingPct: r.PowerSavingPct}
			agg[r.Tuning] = s
			order = append(order, r.Tuning)
		}
		s.AvgSavingPct += r.PowerSavingPct
		if r.PowerSavingPct < s.MinSavingPct {
			s.MinSavingPct = r.PowerSavingPct
		}
		if r.PowerSavingPct > s.MaxSavingPct {
			s.MaxSavingPct = r.PowerSavingPct
		}
	}
	counts := map[string]int{}
	for _, r := range rows {
		counts[r.Tuning]++
	}
	var out []TuningSummary
	for _, name := range order {
		s := agg[name]
		s.AvgSavingPct /= float64(counts[name])
		out = append(out, *s)
	}
	return out
}
