package analysis

import (
	"fmt"
	"math"
	"text/tabwriter"

	"biglittle/internal/apps"
	"biglittle/internal/lab"
)

// Stat is a mean with spread over repeated seeded runs.
type Stat struct {
	Mean, Std, Min, Max float64
	N                   int
}

func newStat(samples []float64) Stat {
	s := Stat{N: len(samples), Min: math.Inf(1), Max: math.Inf(-1)}
	if s.N == 0 {
		return Stat{}
	}
	for _, v := range samples {
		s.Mean += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean /= float64(s.N)
	for _, v := range samples {
		s.Std += (v - s.Mean) * (v - s.Mean)
	}
	if s.N > 1 {
		s.Std = math.Sqrt(s.Std / float64(s.N-1))
	}
	return s
}

func (s Stat) String() string {
	return fmt.Sprintf("%.2f ± %.2f [%.2f, %.2f]", s.Mean, s.Std, s.Min, s.Max)
}

// SeedStatsRow aggregates one app's Table III metrics over multiple seeds.
type SeedStatsRow struct {
	App     string
	IdlePct Stat
	BigPct  Stat
	TLP     Stat
	PowerMW Stat
	Perf    Stat // FPS for FPS apps, mean latency in ms for latency apps
}

// SeedStats re-runs the Table III characterization under `seeds` different
// workload seeds and reports mean ± sample standard deviation (and range)
// per app — the run-to-run variation a measurement study would report as
// error bars. The paper reports single runs; this quantifies how much its
// numbers could wobble.
func SeedStats(o Options, seeds int) []SeedStatsRow {
	o = o.withDefaults()
	if seeds < 2 {
		seeds = 2
	}
	all := apps.All()
	jobs := make([]lab.Job, 0, len(all)*seeds)
	for _, app := range all {
		for s := 0; s < seeds; s++ {
			cfg := o.appConfig(app)
			cfg.Seed = o.Seed + int64(s)*7919 // distinct, deterministic seeds
			jobs = append(jobs, job(cfg))
		}
	}
	res := o.runAll(jobs)
	rows := make([]SeedStatsRow, len(all))
	for ai, app := range all {
		idle := make([]float64, seeds)
		big := make([]float64, seeds)
		tlp := make([]float64, seeds)
		pw := make([]float64, seeds)
		perf := make([]float64, seeds)
		for s := 0; s < seeds; s++ {
			r := res[ai*seeds+s]
			idle[s] = r.TLP.IdlePct
			big[s] = r.TLP.BigPct
			tlp[s] = r.TLP.TLP
			pw[s] = r.AvgPowerMW
			if app.Metric == apps.FPS {
				perf[s] = r.AvgFPS
			} else {
				perf[s] = r.MeanLatency.Milliseconds()
			}
		}
		rows[ai] = SeedStatsRow{
			App:     app.Name,
			IdlePct: newStat(idle),
			BigPct:  newStat(big),
			TLP:     newStat(tlp),
			PowerMW: newStat(pw),
			Perf:    newStat(perf),
		}
	}
	return rows
}

// RenderSeedStats formats the multi-seed variation study.
func RenderSeedStats(rows []SeedStatsRow) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Run-to-run variation across workload seeds (mean ± std [min, max])")
		fmt.Fprintln(w, "app\tidle %\tbig %\tTLP\tpower mW\tperf (fps | ms)")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%v\t%v\t%v\t%v\t%v\n",
				r.App, r.IdlePct, r.BigPct, r.TLP, r.PowerMW, r.Perf)
		}
	})
}
