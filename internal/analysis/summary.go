package analysis

import (
	"fmt"
	"strings"
)

// Findings distills the paper's five headline conclusions with this
// reproduction's measured numbers, in the order §VII presents them.
type Findings struct {
	// 1. Clear performance/energy trade-offs (§III).
	MaxSameFreqSpeedup float64
	BigLittlePowerX    float64
	// 2. Over-provisioned parallelism (§V-A/B).
	MaxTLP         float64
	AppsBelowTLP3  int
	MeanLittleUtil float64
	// 3. One big core is critical (§V-C).
	WorstLittleOnlyDropPct float64
	SingleBigRecoveryPct   float64
	// 4. Min-frequency little capacity is still too much (§VI-B).
	MeanMinStatePct float64
	// 5. Conservative governor/scheduler settings (§VI-C).
	MeanLowUtilStatesPct float64
}

// Summarize runs the headline experiments and assembles the findings.
func Summarize(o Options) Findings {
	o = o.withDefaults()
	var f Findings

	for _, r := range Fig2(o) {
		if r.Speedup13 > f.MaxSameFreqSpeedup {
			f.MaxSameFreqSpeedup = r.Speedup13
		}
	}
	fig3 := Fig3(o)
	sumL, sumB := 0.0, 0.0
	for _, r := range fig3 {
		sumL += r.Little13
		sumB += r.Big13
	}
	f.BigLittlePowerX = sumB / sumL

	results := Characterize(o)
	var minState, lowStates, littleUtil float64
	for _, r := range results {
		if r.TLP.TLP > f.MaxTLP {
			f.MaxTLP = r.TLP.TLP
		}
		if r.TLP.TLP < 3 {
			f.AppsBelowTLP3++
		}
		minState += r.Eff[0]
		lowStates += r.Eff[0] + r.Eff[1]
		littleUtil += r.AvgLittleUtil
	}
	n := float64(len(results))
	f.MeanMinStatePct = minState / n
	f.MeanLowUtilStatesPct = lowStates / n
	f.MeanLittleUtil = littleUtil / n

	ccRows := CoreConfigs(o)
	byApp := map[string]map[string]CoreConfigRow{}
	for _, r := range ccRows {
		if byApp[r.App] == nil {
			byApp[r.App] = map[string]CoreConfigRow{}
		}
		byApp[r.App][r.Config.String()] = r
	}
	worstApp := ""
	for app, m := range byApp {
		if d := m["L4"].PerfChangePct; d < f.WorstLittleOnlyDropPct {
			f.WorstLittleOnlyDropPct = d
			worstApp = app
		}
	}
	if worstApp != "" {
		l4 := byApp[worstApp]["L4"].PerfChangePct
		l4b1 := byApp[worstApp]["L4+B1"].PerfChangePct
		if l4 < 0 {
			f.SingleBigRecoveryPct = 100 * (l4b1 - l4) / -l4
		}
	}
	return f
}

// RenderSummary formats the findings as prose with measured values.
func RenderSummary(f Findings) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Headline findings (paper §VII, with this reproduction's numbers):")
	fmt.Fprintf(&b, "1. The asymmetric cores offer real trade-offs: up to %.1fx same-frequency\n", f.MaxSameFreqSpeedup)
	fmt.Fprintf(&b, "   SPEC speedup for %.1fx the power (big vs little at 1.3 GHz).\n", f.BigLittlePowerX)
	fmt.Fprintf(&b, "2. Mobile apps cannot feed 8 cores: max TLP %.2f, %d of 12 apps below 3\n", f.MaxTLP, f.AppsBelowTLP3)
	fmt.Fprintf(&b, "   active cores, mean little-cluster utilization %.0f%%.\n", 100*f.MeanLittleUtil)
	fmt.Fprintf(&b, "3. But one big core is critical: little-only costs up to %.0f%% performance,\n", -f.WorstLittleOnlyDropPct)
	fmt.Fprintf(&b, "   and a single big core recovers %.0f%% of that loss.\n", f.SingleBigRecoveryPct)
	fmt.Fprintf(&b, "4. Even the 500 MHz little floor is over-provisioned: %.0f%% of active\n", f.MeanMinStatePct)
	fmt.Fprintf(&b, "   core-samples sit in the irreducible \"min\" state (hence tiny cores, §VI-B).\n")
	fmt.Fprintf(&b, "5. The governor/scheduler run conservatively: %.0f%% of active samples are\n", f.MeanLowUtilStatesPct)
	fmt.Fprintf(&b, "   below 50%% utilization of the capacity they were given.\n")
	return b.String()
}
