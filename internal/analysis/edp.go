package analysis

import (
	"fmt"
	"text/tabwriter"

	"biglittle/internal/apps"
	"biglittle/internal/lab"
	"biglittle/internal/platform"
)

// EDPRow holds one app × configuration energy-efficiency cell.
type EDPRow struct {
	App    string
	Config string
	// EnergyPerOpJ is joules per interaction (latency apps) or per frame
	// (FPS apps).
	EnergyPerOpJ float64
	// DelayS is the mean interaction latency, or the frame time implied by
	// the average FPS.
	DelayS float64
	// EDP is EnergyPerOpJ x DelayS — lower is better.
	EDP float64
	// Best marks the configuration with the lowest EDP for this app.
	Best bool
}

// edpConfigs are the candidate platforms: little-only, the balanced single
// big core, the full baseline, and the tiny-core extension.
func edpConfigs() []platform.CoreConfig {
	return []platform.CoreConfig{
		{Little: 4},
		{Little: 4, Big: 1},
		{Little: 4, Big: 4},
		{Tiny: 2, Little: 4, Big: 4},
	}
}

// EDP evaluates the energy-delay product of every app across four core
// configurations, synthesizing the paper's §V-C question — how many big
// cores does a mobile platform need? — into a single designer-facing
// metric. The paper's qualitative answer (one big core is the balance
// point) should appear as L4+B1 winning or tying for most apps.
func EDP(o Options) []EDPRow {
	o = o.withDefaults()
	all := apps.All()
	cfgs := edpConfigs()
	jobs := make([]lab.Job, 0, len(all)*len(cfgs))
	for _, app := range all {
		for _, cc := range cfgs {
			cfg := o.appConfig(app)
			cfg.Cores = cc
			jobs = append(jobs, job(cfg))
		}
	}
	res := o.runAll(jobs)
	rows := make([]EDPRow, len(all)*len(cfgs))
	for ai, app := range all {
		bestIdx, bestEDP := -1, 0.0
		for ci, cc := range cfgs {
			r := res[ai*len(cfgs)+ci]

			ops := float64(r.Interactions)
			delay := r.MeanLatency.Seconds()
			if app.Metric == apps.FPS {
				ops = float64(r.Frames)
				if r.AvgFPS > 0 {
					delay = 1 / r.AvgFPS
				}
			}
			row := EDPRow{App: app.Name, Config: cc.String(), DelayS: delay}
			if ops > 0 {
				row.EnergyPerOpJ = r.EnergyMJ / 1000 / ops
				row.EDP = row.EnergyPerOpJ * delay
			}
			idx := ai*len(cfgs) + ci
			rows[idx] = row
			if row.EDP > 0 && (bestIdx < 0 || row.EDP < bestEDP) {
				bestIdx, bestEDP = idx, row.EDP
			}
		}
		if bestIdx >= 0 {
			rows[bestIdx].Best = true
		}
	}
	return rows
}

// RenderEDP formats the energy-delay study.
func RenderEDP(rows []EDPRow) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Energy-delay product by core configuration (lower is better; * = best)")
		fmt.Fprintln(w, "app\tconfig\tenergy/op mJ\tdelay ms\tEDP uJ*s\t")
		for _, r := range rows {
			mark := ""
			if r.Best {
				mark = "*"
			}
			fmt.Fprintf(w, "%s\t%s\t%.2f\t%.2f\t%.2f\t%s\n",
				r.App, r.Config, r.EnergyPerOpJ*1000, r.DelayS*1000, r.EDP*1e6, mark)
		}
	})
}
