package analysis

import (
	"fmt"
	"text/tabwriter"

	"biglittle/internal/synth"
	"biglittle/internal/uarch"
)

// CacheSweepRow shows one workload's big-over-little speedup (both at
// 1.3 GHz) as a function of the little core's L2 capacity.
type CacheSweepRow struct {
	Workload string
	// SpeedupAt maps little-L2 kilobytes to the same-frequency speedup.
	SpeedupAt map[int]float64
}

// cacheSweepSizes are the little-L2 capacities swept, in KiB. 512 is the
// real A7 cluster; 2048 equalizes the two clusters' L2s.
var cacheSweepSizes = []int{256, 512, 1024, 2048}

// CacheSweep probes the paper's §III-A attribution — "with the difference
// in the L2 size ... a big core always performs better ... The speedup can
// be up-to 4.5 times with the same 1.3GHz frequency" — by growing the
// little cluster's L2: for the cache-sensitive workloads the same-frequency
// gap must collapse toward the pure-microarchitecture gap, while the
// compute-dense workloads barely move.
func CacheSweep(o Options) []CacheSweepRow {
	o = o.withDefaults()
	big := uarch.CortexA15()
	profiles := synth.SPEC()
	rows := make([]CacheSweepRow, len(profiles))
	o.forEach(len(profiles), func(i int) {
		p := profiles[i]
		ref := uarch.Run(big, p, 1300, o.Instructions)
		row := CacheSweepRow{Workload: p.Name, SpeedupAt: map[int]float64{}}
		for _, kb := range cacheSweepSizes {
			little := uarch.CortexA7()
			little.L2.SizeB = kb << 10
			r := uarch.Run(little, p, 1300, o.Instructions)
			row.SpeedupAt[kb] = uarch.Speedup(ref, r)
		}
		rows[i] = row
	})
	return rows
}

// RenderCacheSweep formats the L2-size ablation.
func RenderCacheSweep(rows []CacheSweepRow) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "L2-size ablation: big@1.3GHz speedup vs little@1.3GHz with a grown little L2")
		fmt.Fprint(w, "workload")
		for _, kb := range cacheSweepSizes {
			fmt.Fprintf(w, "\tL2=%dK", kb)
		}
		fmt.Fprintln(w)
		for _, r := range rows {
			fmt.Fprint(w, r.Workload)
			for _, kb := range cacheSweepSizes {
				fmt.Fprintf(w, "\t%.2f", r.SpeedupAt[kb])
			}
			fmt.Fprintln(w)
		}
	})
}
