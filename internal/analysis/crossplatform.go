package analysis

import (
	"fmt"
	"text/tabwriter"

	"biglittle/internal/apps"
	"biglittle/internal/lab"
	"biglittle/internal/platform"
	"biglittle/internal/power"
)

// CrossPlatformRow compares one app across SoC presets running the same
// kernel stack.
type CrossPlatformRow struct {
	App      string
	Platform string
	// Deltas versus the Exynos 5422 baseline.
	PerfChangePct  float64
	PowerChangePct float64
	BigPct         float64
}

// CrossPlatform runs the full suite on the Exynos 5422 and a Snapdragon
// 810-class SoC with the identical HMP scheduler and interactive governor,
// showing that the characterization methodology — and the library — is not
// tied to one chip: faster clusters shift work placement and power but the
// TLP and usage structure persists.
func CrossPlatform(o Options) []CrossPlatformRow {
	o = o.withDefaults()
	all := apps.All()
	jobs := make([]lab.Job, 0, 2*len(all))
	for _, app := range all {
		jobs = append(jobs, job(o.appConfig(app)))
		cfg := o.appConfig(app)
		cfg.Platform = platform.Snapdragon810
		cfg.Power = power.Snapdragon810Params()
		jobs = append(jobs, job(cfg))
	}
	res := o.runAll(jobs)
	rows := make([]CrossPlatformRow, len(all)*2)
	for ai, app := range all {
		base, r := res[2*ai], res[2*ai+1]
		rows[ai*2] = CrossPlatformRow{
			App: app.Name, Platform: "exynos5422", BigPct: base.TLP.BigPct,
		}
		rows[ai*2+1] = CrossPlatformRow{
			App:            app.Name,
			Platform:       "snapdragon810",
			PerfChangePct:  pct(r.Performance(), base.Performance()),
			PowerChangePct: pct(r.AvgPowerMW, base.AvgPowerMW),
			BigPct:         r.TLP.BigPct,
		}
	}
	return rows
}

// RenderCrossPlatform formats the cross-SoC comparison.
func RenderCrossPlatform(rows []CrossPlatformRow) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Cross-platform: the same apps and kernel stack on a Snapdragon 810-class SoC")
		fmt.Fprintln(w, "app\tplatform\tperf vs exynos %\tpower vs exynos %\tbig share %")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%+.1f\t%+.1f\t%.1f\n",
				r.App, r.Platform, r.PerfChangePct, r.PowerChangePct, r.BigPct)
		}
	})
}
