package analysis

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"biglittle/internal/apps"
	"biglittle/internal/event"
	"biglittle/internal/platform"
)

var testOpts = Options{Duration: 8 * event.Second, Seed: 1, Instructions: 120_000}

func TestFig2Shape(t *testing.T) {
	rows := Fig2(testOpts)
	if len(rows) != 12 {
		t.Fatalf("%d rows, want 12 SPEC workloads", len(rows))
	}
	max13, slower08 := 0.0, 0
	for _, r := range rows {
		if r.Speedup13 <= 1.0 {
			t.Errorf("%s: big@1.3 speedup %.2f <= 1; paper: big always wins at equal frequency", r.Workload, r.Speedup13)
		}
		if r.Speedup19 <= r.Speedup13 {
			t.Errorf("%s: 1.9GHz speedup %.2f <= 1.3GHz %.2f", r.Workload, r.Speedup19, r.Speedup13)
		}
		if r.Speedup08 >= r.Speedup13 {
			t.Errorf("%s: 0.8GHz speedup %.2f >= 1.3GHz %.2f", r.Workload, r.Speedup08, r.Speedup13)
		}
		if r.Speedup13 > max13 {
			max13 = r.Speedup13
		}
		if r.Speedup08 < 1.0 {
			slower08++
		}
	}
	if max13 < 3.5 || max13 > 5.5 {
		t.Errorf("max equal-frequency speedup %.2f, paper ~4.5", max13)
	}
	if slower08 < 2 || slower08 > 5 {
		t.Errorf("%d workloads slower on big@0.8GHz, paper shows 3", slower08)
	}
}

func TestFig3Shape(t *testing.T) {
	rows := Fig3(testOpts)
	if len(rows) != 12 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if !(r.Little13 < r.Big08 && r.Big08 < r.Big13 && r.Big13 < r.Big19) {
			t.Errorf("%s: power not ordered little13 < big08 < big13 < big19: %+v", r.Workload, r)
		}
		// §III-A: big@1.3 ~2.3x little@1.3; big@0.8 ~1.5x little@1.3.
		if ratio := r.Big13 / r.Little13; ratio < 1.8 || ratio > 2.8 {
			t.Errorf("%s: big13/little13 = %.2f, paper ~2.3", r.Workload, ratio)
		}
		if ratio := r.Big08 / r.Little13; ratio < 1.2 || ratio > 1.9 {
			t.Errorf("%s: big08/little13 = %.2f, paper ~1.5", r.Workload, ratio)
		}
	}
	// Power variation across workloads is smaller than performance variation.
	min19, max19 := rows[0].Big19, rows[0].Big19
	for _, r := range rows {
		if r.Big19 < min19 {
			min19 = r.Big19
		}
		if r.Big19 > max19 {
			max19 = r.Big19
		}
	}
	if max19/min19 > 1.6 {
		t.Errorf("big@1.9 power spread %.2fx across workloads, paper: small differences", max19/min19)
	}
}

func TestFig4Shape(t *testing.T) {
	rows := Fig4(testOpts)
	if len(rows) != 7 {
		t.Fatalf("%d rows, want 7 latency apps", len(rows))
	}
	for _, r := range rows {
		if r.LatencyReductionPct <= 0 {
			t.Errorf("%s: big cores did not reduce latency (%.1f%%)", r.App, r.LatencyReductionPct)
		}
		// Paper: performance difference is relatively small (<~30%); our
		// reproduction lands under 50% for every app.
		if r.LatencyReductionPct > 55 {
			t.Errorf("%s: latency reduction %.1f%% far above the paper's band", r.App, r.LatencyReductionPct)
		}
		if r.BigMW <= r.LittleMW {
			t.Errorf("%s: big run cheaper than little run", r.App)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	rows := Fig5(testOpts)
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5 FPS apps", len(rows))
	}
	for _, r := range rows {
		// Paper: average FPS differences are small...
		if r.AvgFPSGainPct < -3 || r.AvgFPSGainPct > 25 {
			t.Errorf("%s: avg FPS gain %.1f%% outside the paper's small-gain band", r.App, r.AvgFPSGainPct)
		}
		// ...but the worst-case FPS benefits more than the average for the
		// CPU-heavy games.
		if r.MinFPSGainPct < -5 {
			t.Errorf("%s: min FPS regressed %.1f%% on big cores", r.App, r.MinFPSGainPct)
		}
	}
	// Eternity Warrior is the paper's callout for a real average gain.
	for _, r := range rows {
		if r.App == "eternity_warrior" && r.AvgFPSGainPct < 1 {
			t.Errorf("eternity_warrior avg gain %.1f%%, paper highlights it as the exception", r.AvgFPSGainPct)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	rows := Fig6(Options{Duration: 5 * event.Second, Seed: 1})
	byKey := map[string]map[int]float64{} // type-mhz -> util -> mW
	for _, r := range rows {
		k := r.Type.String() + "-" + strconv.Itoa(r.MHz)
		if byKey[k] == nil {
			byKey[k] = map[int]float64{}
		}
		byKey[k][r.UtilPct] = r.MW
	}
	for k, series := range byKey {
		prev := -1.0
		for u := 0; u <= 100; u += 20 {
			mw, ok := series[u]
			if !ok {
				t.Fatalf("%s: missing util %d", k, u)
			}
			if mw < prev-1 {
				t.Errorf("%s: power not monotone in utilization at %d%%", k, u)
			}
			prev = mw
		}
	}
	// Slope grows with frequency (Fig. 6's key claim).
	littleLow := byKey["little-500"][100] - byKey["little-500"][0]
	littleHigh := byKey["little-1300"][100] - byKey["little-1300"][0]
	if littleHigh <= littleLow*1.5 {
		t.Errorf("little slope at 1.3GHz (%.0f) not much steeper than 500MHz (%.0f)", littleHigh, littleLow)
	}
	bigLow := byKey["big-800"][100] - byKey["big-800"][0]
	bigHigh := byKey["big-1900"][100] - byKey["big-1900"][0]
	if bigHigh <= bigLow*1.5 {
		t.Errorf("big slope at 1.9GHz (%.0f) not much steeper than 800MHz (%.0f)", bigHigh, bigLow)
	}
	// Distinct power ranges per core type at full utilization.
	if byKey["big-800"][100] <= byKey["little-1300"][100] {
		t.Error("big and little power ranges overlap at full utilization")
	}
}

func TestCoreConfigsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("large sweep")
	}
	rows := CoreConfigs(Options{Duration: 8 * event.Second, Seed: 1})
	if len(rows) != 12*7 {
		t.Fatalf("%d rows, want 84", len(rows))
	}
	byApp := map[string]map[string]CoreConfigRow{}
	for _, r := range rows {
		if byApp[r.App] == nil {
			byApp[r.App] = map[string]CoreConfigRow{}
		}
		byApp[r.App][r.Config.String()] = r
	}
	for app, cfgs := range byApp {
		// Little-only configurations must save power vs the L4+B4 baseline.
		if cfgs["L4"].PowerSavingPct < -2 {
			t.Errorf("%s: L4 config saving %.1f%%, want >= 0", app, cfgs["L4"].PowerSavingPct)
		}
		// For angry bird and video player, little-only costs almost no
		// performance (paper's §V-C finding).
		if app == "angry_bird" || app == "video_player" {
			if cfgs["L4"].PerfChangePct < -8 {
				t.Errorf("%s: L4 perf change %.1f%%, paper: no degradation", app, cfgs["L4"].PerfChangePct)
			}
		}
	}
	// For the big-core-dependent apps, L4 hurts and a single big core
	// recovers most of it (the paper's headline for Figures 7/8).
	for _, app := range []string{"encoder", "bbench"} {
		l4 := byApp[app]["L4"].PerfChangePct
		l4b1 := byApp[app]["L4+B1"].PerfChangePct
		if l4 > -10 {
			t.Errorf("%s: removing big cores only cost %.1f%%, want severe drop", app, l4)
		}
		if l4b1 < l4+5 {
			t.Errorf("%s: one big core did not recover performance (L4 %.1f%%, L4+B1 %.1f%%)", app, l4, l4b1)
		}
	}
}

func TestTuningStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("large sweep")
	}
	rows := TuningStudy(Options{Duration: 8 * event.Second, Seed: 1})
	if len(rows) != 12*8 {
		t.Fatalf("%d rows, want 96", len(rows))
	}
	sum := SummarizeTuning(rows)
	if len(sum) != 8 {
		t.Fatalf("%d summaries, want 8", len(sum))
	}
	byName := map[string]TuningSummary{}
	for _, s := range sum {
		byName[s.Tuning] = s
		if s.MinSavingPct > s.AvgSavingPct || s.AvgSavingPct > s.MaxSavingPct {
			t.Errorf("%s: min/avg/max out of order: %+v", s.Tuning, s)
		}
	}
	// §VI-C: longer sampling intervals save power on average.
	if byName["interval60"].AvgSavingPct < 0 {
		t.Errorf("interval60 avg saving %.1f%%, paper ~2%%", byName["interval60"].AvgSavingPct)
	}
	// Aggressive HMP mostly increases power (negative saving).
	if byName["hmp_aggressive"].AvgSavingPct > 1.5 {
		t.Errorf("hmp_aggressive avg saving %.1f%%, paper: increases power", byName["hmp_aggressive"].AvgSavingPct)
	}
	// Weight-scale changes have only minor impact.
	for _, n := range []string{"weight_2x", "weight_half"} {
		if s := byName[n]; s.AvgSavingPct > 4 || s.AvgSavingPct < -4 {
			t.Errorf("%s avg saving %.1f%%, paper: minor impact", n, s.AvgSavingPct)
		}
	}
}

func TestCharacterize(t *testing.T) {
	res := Characterize(Options{Duration: 4 * event.Second, Seed: 1})
	if len(res) != 12 {
		t.Fatalf("%d results", len(res))
	}
	names := map[string]bool{}
	for _, r := range res {
		names[r.App] = true
	}
	for _, app := range apps.All() {
		if !names[app.Name] {
			t.Errorf("missing app %s", app.Name)
		}
	}
}

func TestRenderers(t *testing.T) {
	o := Options{Duration: 3 * event.Second, Seed: 1, Instructions: 60_000}
	res := Characterize(o)
	for name, out := range map[string]string{
		"fig2":  RenderFig2(Fig2(o)),
		"fig3":  RenderFig3(Fig3(o)),
		"fig4":  RenderFig4(Fig4(o)),
		"fig5":  RenderFig5(Fig5(o)),
		"t3":    RenderTable3(res),
		"t4":    RenderTable4(res[0]),
		"t5":    RenderTable5(res),
		"fig9":  RenderResidency(res, platform.Little),
		"fig10": RenderResidency(res, platform.Big),
	} {
		if len(out) == 0 || !strings.Contains(out, "\n") {
			t.Errorf("%s: empty render", name)
		}
	}
	if !strings.Contains(RenderTable3(res), "pdf_reader") {
		t.Error("Table III render missing app names")
	}
	if out := RenderResidency(nil, platform.Little); !strings.Contains(out, "Figure 9") {
		t.Error("empty residency render lost its header")
	}
}

func TestTuningsComplete(t *testing.T) {
	ts := Tunings()
	if len(ts) != 8 {
		t.Fatalf("%d tunings, want the paper's 8", len(ts))
	}
	seen := map[string]bool{}
	for _, tn := range ts {
		if seen[tn.Name] {
			t.Fatalf("duplicate tuning %s", tn.Name)
		}
		seen[tn.Name] = true
		if tn.Gov == nil && tn.Sched == nil {
			t.Errorf("%s changes nothing", tn.Name)
		}
	}
}

func TestTinyStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("large sweep")
	}
	rows := TinyStudy(Options{Duration: 10 * event.Second, Seed: 1})
	if len(rows) != 12 {
		t.Fatalf("%d rows, want 12", len(rows))
	}
	for _, r := range rows {
		// The small-task-packing gate keeps interactivity essentially
		// intact: no app loses more than ~12% performance.
		if r.PerfChangePct < -12 {
			t.Errorf("%s: tiny cores cost %.1f%% performance", r.App, r.PerfChangePct)
		}
		if r.TinyShare <= 0 {
			t.Errorf("%s: tiny cores unused", r.App)
		}
	}
	// The min-state-dominated apps must actually save power.
	saved := 0
	for _, r := range rows {
		if r.BaselineMinPct > 85 && r.PowerSavingPct > 0 {
			saved++
		}
	}
	if saved < 3 {
		t.Errorf("only %d min-state-dominated apps saved power with tiny cores", saved)
	}
}

func TestSchedulerStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("large sweep")
	}
	rows := SchedulerStudy(Options{Duration: 8 * event.Second, Seed: 1})
	if len(rows) != 12*4 {
		t.Fatalf("%d rows, want 48", len(rows))
	}
	byApp := map[string]map[string]SchedulerRow{}
	for _, r := range rows {
		if byApp[r.App] == nil {
			byApp[r.App] = map[string]SchedulerRow{}
		}
		byApp[r.App][r.Scheduler] = r
	}
	// §IV-A: the academic policies assume CPU-intensive workloads. For the
	// steady low-load games they burn extra power without any performance
	// gain, while HMP leaves them on little cores.
	for _, app := range []string{"angry_bird"} {
		eff := byApp[app]["efficiency"]
		if eff.PowerChangePct < 3 {
			t.Errorf("%s: efficiency-based policy power %+.1f%%, expected a clear increase", app, eff.PowerChangePct)
		}
		if eff.PerfChangePct > 5 {
			t.Errorf("%s: efficiency-based policy perf %+.1f%%, expected ~0 gain", app, eff.PerfChangePct)
		}
	}
	// Both alternative policies migrate far more than HMP overall.
	var hmpMigr, altMigr int
	for _, m := range byApp {
		hmpMigr += m["hmp"].Migrations
		altMigr += m["efficiency"].Migrations
	}
	if altMigr <= hmpMigr {
		t.Errorf("efficiency policy migrated less (%d) than HMP (%d)", altMigr, hmpMigr)
	}
	// No policy should catastrophically break any app.
	for app, m := range byApp {
		for pol, r := range m {
			if r.PerfChangePct < -30 {
				t.Errorf("%s under %s lost %.1f%% performance", app, pol, r.PerfChangePct)
			}
		}
	}
}

func TestGovernorStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("large sweep")
	}
	rows := GovernorStudy(Options{Duration: 8 * event.Second, Seed: 1})
	if len(rows) != 12*4 {
		t.Fatalf("%d rows, want 48", len(rows))
	}
	perfGain, perfPower := 0.0, 0.0
	pastPerf, pastPower := 0.0, 0.0
	for _, r := range rows {
		switch r.Governor {
		case "performance":
			perfGain += r.PerfChangePct
			perfPower += r.PowerChangePct
		case "past":
			pastPerf += r.PerfChangePct
			pastPower += r.PowerChangePct
		}
	}
	// The performance governor is the upper bound: faster and hungrier on
	// average than interactive.
	if perfGain <= 0 || perfPower <= 0 {
		t.Errorf("performance governor avg deltas perf %+.1f power %+.1f, want both positive", perfGain/12, perfPower/12)
	}
	// PAST (no hispeed jump) trades performance for power on average —
	// exactly why the interactive governor exists.
	if pastPerf >= 0 {
		t.Errorf("PAST avg perf delta %+.1f, want negative", pastPerf/12)
	}
	if pastPower >= 0 {
		t.Errorf("PAST avg power delta %+.1f, want negative", pastPower/12)
	}
}

func TestIdleStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("large sweep")
	}
	rows := IdleStudy(Options{Duration: 8 * event.Second, Seed: 1})
	if len(rows) != 12 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// Deep idle saves power for the idle-heavy players.
		if (r.App == "video_player" || r.App == "youtube") && r.PowerSavingPct < 10 {
			t.Errorf("%s: deep idle saved only %.1f%%", r.App, r.PowerSavingPct)
		}
		// And never catastrophically breaks performance.
		if r.PerfChangePct < -30 {
			t.Errorf("%s: deep idle cost %.1f%% performance", r.App, r.PerfChangePct)
		}
	}
}

func TestThermalStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long runs")
	}
	rows := ThermalStudy(Options{Duration: 12 * event.Second, Seed: 1})
	var stressThrottled, appsThrottled float64
	for _, r := range rows {
		if r.App == "stress_4" {
			stressThrottled += r.ThrottledPct
		} else {
			appsThrottled += r.ThrottledPct
		}
	}
	// The stress workload must throttle heavily...
	if stressThrottled < 100 {
		t.Errorf("stress rows throttled only %.1f%% total", stressThrottled)
	}
	// ...while the interactive apps never sustain enough power to trip.
	if appsThrottled > 10 {
		t.Errorf("interactive apps throttled %.1f%% total; they should stay cool", appsThrottled)
	}
}

func TestBatteryStudyShape(t *testing.T) {
	rows := BatteryStudy(Options{Duration: 6 * event.Second, Seed: 1})
	if len(rows) != 12 {
		t.Fatalf("%d rows", len(rows))
	}
	byApp := map[string]BatteryRow{}
	for _, r := range rows {
		byApp[r.App] = r
		if r.Hours <= 0 || r.AvgMW <= 0 {
			t.Errorf("%s: degenerate row %+v", r.App, r)
		}
		if r.HungriestThread == "" {
			t.Errorf("%s: no energy attribution", r.App)
		}
		if r.ThreadEnergyPct < 0 || r.ThreadEnergyPct > 100 {
			t.Errorf("%s: thread share %.1f%%", r.App, r.ThreadEnergyPct)
		}
	}
	// The CPU-heavy apps drain fastest.
	if byApp["bbench"].Hours >= byApp["browser"].Hours {
		t.Error("bbench should drain the battery faster than the browser")
	}
	// Encoder's energy concentrates in its worker thread.
	if byApp["encoder"].ThreadEnergyPct < 80 {
		t.Errorf("encoder worker share %.1f%%, want dominant", byApp["encoder"].ThreadEnergyPct)
	}
}

func TestMultitaskStudyShape(t *testing.T) {
	rows := MultitaskStudy(Options{Duration: 8 * event.Second, Seed: 1})
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// Adding a background app always costs power and raises TLP.
		if r.PowerIncreasePct <= 0 {
			t.Errorf("%s: background app reduced power (%.1f%%)", r.Scenario, r.PowerIncreasePct)
		}
		if r.TLP <= r.TLPAlone {
			t.Errorf("%s: TLP %.2f did not rise over alone %.2f", r.Scenario, r.TLP, r.TLPAlone)
		}
		// The 8-core platform absorbs the background app without wrecking
		// the foreground.
		if r.PerfChangePct < -25 {
			t.Errorf("%s: foreground lost %.1f%%", r.Scenario, r.PerfChangePct)
		}
	}
}

func TestSeedStatsShape(t *testing.T) {
	rows := SeedStats(Options{Duration: 4 * event.Second, Seed: 1}, 3)
	if len(rows) != 12 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.TLP.N != 3 {
			t.Errorf("%s: N = %d", r.App, r.TLP.N)
		}
		if r.TLP.Min > r.TLP.Mean || r.TLP.Mean > r.TLP.Max {
			t.Errorf("%s: stat ordering broken %+v", r.App, r.TLP)
		}
		if r.TLP.Std < 0 {
			t.Errorf("%s: negative std", r.App)
		}
		if r.PowerMW.Mean < 250 {
			t.Errorf("%s: power mean %.0f below base", r.App, r.PowerMW.Mean)
		}
	}
}

func TestStatMath(t *testing.T) {
	s := newStat([]float64{1, 2, 3})
	if s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.N != 3 {
		t.Fatalf("stat %+v", s)
	}
	if s.Std != 1 {
		t.Fatalf("std %f, want 1 (sample std of 1,2,3)", s.Std)
	}
	if z := newStat(nil); z.N != 0 || z.Mean != 0 {
		t.Fatalf("empty stat %+v", z)
	}
	if s.String() == "" {
		t.Fatal("empty render")
	}
}

func TestPredictorStudyShape(t *testing.T) {
	rows := PredictorStudy(Options{Instructions: 60_000, Duration: event.Second})
	if len(rows) != 12 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Bimodal > r.Static+0.02 {
			t.Errorf("%s: bimodal (%.3f) worse than static (%.3f)", r.Workload, r.Bimodal, r.Static)
		}
		if r.Tournament > r.Bimodal*1.05 {
			t.Errorf("%s: tournament (%.3f) worse than bimodal (%.3f)", r.Workload, r.Tournament, r.Bimodal)
		}
	}
}

func TestFidelityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-duration characterization")
	}
	rows := Fidelity(Options{Duration: 15 * event.Second, Seed: 1})
	if len(rows) != 12 {
		t.Fatalf("%d rows", len(rows))
	}
	s := SummarizeFidelity(rows)
	if s.MeanTLPErr > 0.35 {
		t.Errorf("mean TLP error %.2f too large", s.MeanTLPErr)
	}
	if s.MeanBigErr > 8 {
		t.Errorf("mean big%% error %.1f pp too large", s.MeanBigErr)
	}
	if s.MeanIdleErr > 6 {
		t.Errorf("mean idle error %.1f pp too large", s.MeanIdleErr)
	}
	if s.MeanMatrixTVD > 0.45 {
		t.Errorf("mean Table IV TVD %.3f too large", s.MeanMatrixTVD)
	}
	for _, r := range rows {
		if r.MatrixTVD < 0 || r.MatrixTVD > 1 {
			t.Errorf("%s: TVD %.3f out of range", r.App, r.MatrixTVD)
		}
	}
}

func TestMatrixTVDProperties(t *testing.T) {
	var a [5][5]float64
	a[0][0] = 100
	if d := matrixTVD(a, a); d != 0 {
		t.Fatalf("self distance %f", d)
	}
	var b [5][5]float64
	b[4][4] = 50 // scale must not matter
	if d := matrixTVD(a, b); math.Abs(d-1) > 1e-9 {
		t.Fatalf("disjoint distance %f, want 1", d)
	}
	var zero [5][5]float64
	if d := matrixTVD(a, zero); d != 1 {
		t.Fatalf("empty distance %f", d)
	}
}

func TestEDPShape(t *testing.T) {
	if testing.Short() {
		t.Skip("large sweep")
	}
	rows := EDP(Options{Duration: 8 * event.Second, Seed: 1})
	if len(rows) != 12*4 {
		t.Fatalf("%d rows", len(rows))
	}
	best := map[string]int{}
	perApp := map[string]int{}
	for _, r := range rows {
		if r.EDP < 0 {
			t.Errorf("%s/%s: negative EDP", r.App, r.Config)
		}
		if r.Best {
			best[r.Config]++
			perApp[r.App]++
		}
	}
	for app, n := range perApp {
		if n != 1 {
			t.Errorf("%s: %d best configs", app, n)
		}
	}
	// The paper's §V-C: little-only and single-big configurations are the
	// efficiency sweet spots; the full L4+B4 should win at most rarely.
	if best["L4"]+best["L4+B1"] < 8 {
		t.Errorf("L4/L4+B1 won only %d apps: %v", best["L4"]+best["L4+B1"], best)
	}
}

func TestCacheSweepShape(t *testing.T) {
	rows := CacheSweep(Options{Instructions: 100_000, Duration: event.Second})
	if len(rows) != 12 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]CacheSweepRow{}
	for _, r := range rows {
		byName[r.Workload] = r
		// Growing the little L2 never increases the big core's advantage
		// (allowing small measurement jitter).
		prev := 1e18
		for _, kb := range []int{256, 512, 1024, 2048} {
			sp := r.SpeedupAt[kb]
			if sp <= 0 {
				t.Errorf("%s: degenerate speedup at %dK", r.Workload, kb)
			}
			if sp > prev*1.03 {
				t.Errorf("%s: speedup rose when the little L2 grew (%.2f -> %.2f at %dK)",
					r.Workload, prev, sp, kb)
			}
			prev = sp
		}
	}
	// mcf's gap must collapse with an equal 2MB L2 while hmmer barely moves
	// — the paper's cache-sensitivity attribution.
	mcf := byName["mcf"]
	if mcf.SpeedupAt[512]/mcf.SpeedupAt[2048] < 2 {
		t.Errorf("mcf gap did not collapse: %.2f @512K vs %.2f @2048K",
			mcf.SpeedupAt[512], mcf.SpeedupAt[2048])
	}
	hmmer := byName["hmmer"]
	if hmmer.SpeedupAt[512]/hmmer.SpeedupAt[2048] > 1.2 {
		t.Errorf("hmmer moved with L2 size: %.2f @512K vs %.2f @2048K",
			hmmer.SpeedupAt[512], hmmer.SpeedupAt[2048])
	}
}

func TestSummaryFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several studies")
	}
	f := Summarize(Options{Duration: 8 * event.Second, Seed: 1, Instructions: 80_000})
	if f.MaxSameFreqSpeedup < 3.5 || f.BigLittlePowerX < 2 {
		t.Errorf("architectural findings off: %+v", f)
	}
	if f.MaxTLP < 3 || f.AppsBelowTLP3 < 10 {
		t.Errorf("TLP findings off: %+v", f)
	}
	if f.MeanLittleUtil > 0.5 {
		t.Errorf("mean little utilization %.2f not low", f.MeanLittleUtil)
	}
	if f.WorstLittleOnlyDropPct > -10 || f.SingleBigRecoveryPct < 50 {
		t.Errorf("core-config findings off: %+v", f)
	}
	if f.MeanMinStatePct < 30 || f.MeanLowUtilStatesPct < 50 {
		t.Errorf("efficiency findings off: %+v", f)
	}
	if len(RenderSummary(f)) < 100 {
		t.Fatal("summary too short")
	}
}

func TestCrossPlatformShape(t *testing.T) {
	if testing.Short() {
		t.Skip("two-platform sweep")
	}
	rows := CrossPlatform(Options{Duration: 8 * event.Second, Seed: 1})
	if len(rows) != 24 {
		t.Fatalf("%d rows", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		ex, sd := rows[i], rows[i+1]
		if ex.Platform != "exynos5422" || sd.Platform != "snapdragon810" {
			t.Fatalf("row ordering broken at %d", i)
		}
		// The faster clusters never make an app much slower. (A mild
		// latency regression is real: the SD810 preset idles at a lower
		// 400 MHz floor, so bursts ramp from further down.)
		if sd.PerfChangePct < -20 {
			t.Errorf("%s: slower on the faster SoC (%.1f%%)", sd.App, sd.PerfChangePct)
		}
		if sd.BigPct < 0 || sd.BigPct > 100 {
			t.Errorf("%s: big share %.1f", sd.App, sd.BigPct)
		}
	}
}
