package analysis

import (
	"fmt"
	"text/tabwriter"

	"biglittle/internal/apps"
	"biglittle/internal/core"
	"biglittle/internal/lab"
)

// GovernorRow compares one app across DVFS governors, relative to the
// interactive baseline.
type GovernorRow struct {
	App      string
	Governor string
	// Deltas versus the interactive-governor baseline.
	PerfChangePct  float64
	PowerChangePct float64
}

// GovernorStudy runs every app under the ondemand, conservative, and PAST
// governors (§IV-D's lineage of the interactive governor) plus the
// performance governor as an upper bound, comparing power and performance
// with the interactive baseline.
func GovernorStudy(o Options) []GovernorRow {
	o = o.withDefaults()
	kinds := []core.GovernorKind{core.Ondemand, core.Conservative, core.PAST, core.Performance}
	all := apps.All()
	per := 1 + len(kinds)
	jobs := make([]lab.Job, 0, len(all)*per)
	for _, app := range all {
		jobs = append(jobs, job(o.appConfig(app)))
		for _, k := range kinds {
			cfg := o.appConfig(app)
			cfg.Governor = k
			jobs = append(jobs, job(cfg))
		}
	}
	res := o.runAll(jobs)
	rows := make([]GovernorRow, len(all)*len(kinds))
	for ai, app := range all {
		base := res[ai*per]
		for ki, k := range kinds {
			r := res[ai*per+1+ki]
			rows[ai*len(kinds)+ki] = GovernorRow{
				App:            app.Name,
				Governor:       k.String(),
				PerfChangePct:  pct(r.Performance(), base.Performance()),
				PowerChangePct: pct(r.AvgPowerMW, base.AvgPowerMW),
			}
		}
	}
	return rows
}

// RenderGovernors formats the governor comparison.
func RenderGovernors(rows []GovernorRow) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "DVFS governors (§IV-D lineage) vs the interactive baseline")
		fmt.Fprintln(w, "app\tgovernor\tperf vs interactive %\tpower vs interactive %")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%+.1f\t%+.1f\n", r.App, r.Governor, r.PerfChangePct, r.PowerChangePct)
		}
	})
}
