package analysis

import (
	"fmt"
	"text/tabwriter"

	"biglittle/internal/bpred"
	"biglittle/internal/synth"
)

// PredictorRow holds one workload's misprediction rates under the predictor
// classes of the two core types.
type PredictorRow struct {
	Workload   string
	Static     float64 // static-taken baseline
	Bimodal    float64 // A7-class
	Tournament float64 // A15-class
	// Ratio is tournament/bimodal — the measured counterpart of the uarch
	// model's PredictorFactor (0.55).
	Ratio float64
}

// PredictorStudy measures real bimodal and tournament predictors over
// structured branch traces derived from each SPEC-like profile, validating
// the PredictorFactor the Cortex-A15 CPI model assumes.
func PredictorStudy(o Options) []PredictorRow {
	o = o.withDefaults()
	n := o.Instructions
	if n <= 0 {
		n = 200_000
	}
	profiles := synth.SPEC()
	rows := make([]PredictorRow, len(profiles))
	o.forEach(len(profiles), func(i int) {
		p := profiles[i]
		tr := bpred.Trace(p, n)
		row := PredictorRow{
			Workload:   p.Name,
			Static:     bpred.Measure(bpred.StaticTaken{}, tr),
			Bimodal:    bpred.Measure(bpred.CortexA7Predictor(), tr),
			Tournament: bpred.Measure(bpred.CortexA15Predictor(), tr),
		}
		if row.Bimodal > 0 {
			row.Ratio = row.Tournament / row.Bimodal
		}
		rows[i] = row
	})
	return rows
}

// RenderPredictors formats the predictor validation study.
func RenderPredictors(rows []PredictorRow) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Branch predictor validation (mispredict rates; A15 CPI model assumes tournament/bimodal = 0.55)")
		fmt.Fprintln(w, "workload\tstatic\tbimodal (A7)\ttournament (A15)\tratio")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\t%.2f\n",
				r.Workload, r.Static, r.Bimodal, r.Tournament, r.Ratio)
		}
	})
}
