package analysis

import (
	"fmt"
	"text/tabwriter"

	"biglittle/internal/apps"
	"biglittle/internal/event"
	"biglittle/internal/lab"
)

// IdleRow compares one app with and without the deep (cluster-sleep) idle
// state — the cpuidle trade-off: idle power drops, but every wake from deep
// idle pays an exit latency.
type IdleRow struct {
	App string
	// PowerSavingPct of enabling deep idle versus WFI-only.
	PowerSavingPct float64
	// PerfChangePct versus WFI-only (negative = wake latency hurt).
	PerfChangePct float64
	MinFPSChange  float64
}

// IdleStudy runs every app with deep idle disabled (the baseline everywhere
// else in this repository) and enabled (2 ms residency threshold, 1 ms exit
// latency — typical of mobile cluster-sleep states), quantifying the §III-B
// observation that idle power matters for low-utilization workloads.
func IdleStudy(o Options) []IdleRow {
	o = o.withDefaults()
	all := apps.All()
	jobs := make([]lab.Job, 0, 2*len(all))
	for _, app := range all {
		jobs = append(jobs, job(o.appConfig(app)))
		cfg := o.appConfig(app)
		cfg.Sched.DeepIdleAfter = 2 * event.Millisecond
		cfg.Sched.DeepIdleWake = event.Millisecond
		jobs = append(jobs, job(cfg))
	}
	res := o.runAll(jobs)
	rows := make([]IdleRow, len(all))
	for i, app := range all {
		base, r := res[2*i], res[2*i+1]
		row := IdleRow{
			App:            app.Name,
			PowerSavingPct: pct(base.AvgPowerMW, r.AvgPowerMW),
			PerfChangePct:  pct(r.Performance(), base.Performance()),
		}
		if app.Metric == apps.FPS {
			row.MinFPSChange = pct(r.MinFPS, base.MinFPS)
		}
		rows[i] = row
	}
	return rows
}

// RenderIdle formats the deep-idle study.
func RenderIdle(rows []IdleRow) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Deep idle states (cpuidle cluster sleep) vs WFI-only")
		fmt.Fprintln(w, "app\tpower saving %\tperf change %\tmin-FPS change %")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.1f\t%+.1f\t%+.1f\n", r.App, r.PowerSavingPct, r.PerfChangePct, r.MinFPSChange)
		}
	})
}
