package analysis

import (
	"runtime"
	"sync"
)

// forEach runs fn(i) for i in [0, n), fanning out over worker goroutines.
// Every simulation run is an isolated event engine, so experiment sweeps
// are embarrassingly parallel; the per-index results must be written to
// pre-sized slices (never appended) so no synchronization is needed beyond
// the WaitGroup.
func forEach(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
