package analysis

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"biglittle/internal/core"
	"biglittle/internal/platform"
)

func table(fill func(w *tabwriter.Writer)) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fill(w)
	w.Flush()
	return b.String()
}

// RenderFig2 formats Figure 2's speedup bars.
func RenderFig2(rows []Fig2Row) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Figure 2: speedup vs little core @1.3GHz")
		fmt.Fprintln(w, "workload\tbig@1.9\tbig@1.3\tbig@0.8")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\n", r.Workload, r.Speedup19, r.Speedup13, r.Speedup08)
		}
	})
}

// RenderFig3 formats Figure 3's power bars.
func RenderFig3(rows []Fig3Row) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Figure 3: system power (mW) for SPEC workloads")
		fmt.Fprintln(w, "workload\tlittle@1.3\tbig@0.8\tbig@1.3\tbig@1.9")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.0f\t%.0f\n", r.Workload, r.Little13, r.Big08, r.Big13, r.Big19)
		}
	})
}

// RenderFig4 formats Figure 4 (latency apps: 4 big vs 4 little).
func RenderFig4(rows []ClusterCompareRow) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Figure 4: 4 big vs 4 little cores (latency apps)")
		fmt.Fprintln(w, "app\tlatency reduction %\tpower increase %\tlittle mW\tbig mW")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.0f\t%.0f\n",
				r.App, r.LatencyReductionPct, r.PowerIncreasePct, r.LittleMW, r.BigMW)
		}
	})
}

// RenderFig5 formats Figure 5 (FPS apps: 4 big vs 4 little).
func RenderFig5(rows []ClusterCompareRow) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Figure 5: 4 big vs 4 little cores (FPS apps)")
		fmt.Fprintln(w, "app\tavg FPS gain %\tmin FPS gain %\tpower increase %")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\n",
				r.App, r.AvgFPSGainPct, r.MinFPSGainPct, r.PowerIncreasePct)
		}
	})
}

// RenderFig6 formats Figure 6 (power vs utilization per frequency).
func RenderFig6(rows []Fig6Row) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Figure 6: system power (mW) by core utilization and frequency")
		fmt.Fprintln(w, "core\tMHz\tutil%\tmW")
		for _, r := range rows {
			fmt.Fprintf(w, "%v\t%d\t%d\t%.0f\n", r.Type, r.MHz, r.UtilPct, r.MW)
		}
	})
}

// RenderTable3 formats Table III from default-run results.
func RenderTable3(results []core.Result) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Table III: thread-level parallelism with 8 cores")
		fmt.Fprintln(w, "app\tidle%\tlittle%\tbig%\tTLP")
		for _, r := range results {
			fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\t%.2f\n",
				r.App, r.TLP.IdlePct, r.TLP.LittleOnlyPct, r.TLP.BigPct, r.TLP.TLP)
		}
	})
}

// RenderTable4 formats one app's Table IV matrix.
func RenderTable4(r core.Result) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintf(w, "Table IV: %s (%% of samples, rows = big cores, cols = little cores)\n", r.App)
		fmt.Fprintln(w, "\tC0\tC1\tC2\tC3\tC4")
		for b := 0; b <= 4; b++ {
			fmt.Fprintf(w, "C%d", b)
			for l := 0; l <= 4; l++ {
				fmt.Fprintf(w, "\t%.2f", r.Matrix[b][l])
			}
			fmt.Fprintln(w)
		}
	})
}

// RenderTable5 formats Table V from default-run results.
func RenderTable5(results []core.Result) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Table V: efficiency decomposition (% of active core-samples)")
		fmt.Fprintln(w, "app\tMin\t<50%\t<70%\t70-95%\t>95%\tFull")
		for _, r := range results {
			fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
				r.App, r.Eff[0], r.Eff[1], r.Eff[2], r.Eff[3], r.Eff[4], r.Eff[5])
		}
	})
}

// RenderResidency formats Figure 9 (little) or Figure 10 (big) from
// default-run results.
func RenderResidency(results []core.Result, t platform.CoreType) string {
	return table(func(w *tabwriter.Writer) {
		if t == platform.Little {
			fmt.Fprintln(w, "Figure 9: little core frequency distribution (% of active time)")
		} else {
			fmt.Fprintln(w, "Figure 10: big core frequency distribution (% of active time)")
		}
		if len(results) == 0 {
			return
		}
		freqs := results[0].LittleFreqs
		if t == platform.Big {
			freqs = results[0].BigFreqs
		}
		fmt.Fprint(w, "app")
		for _, f := range freqs {
			fmt.Fprintf(w, "\t%d", f)
		}
		fmt.Fprintln(w)
		for _, r := range results {
			res := r.LittleResidency
			if t == platform.Big {
				res = r.BigResidency
			}
			fmt.Fprint(w, r.App)
			for _, v := range res {
				fmt.Fprintf(w, "\t%.1f", v)
			}
			fmt.Fprintln(w)
		}
	})
}

// RenderCoreConfigs formats Figures 7 and 8.
func RenderCoreConfigs(rows []CoreConfigRow) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Figures 7/8: core configurations vs L4+B4 baseline")
		fmt.Fprintln(w, "app\tconfig\tperf change %\tmin-FPS change %\tpower saving %")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%.1f\t%.1f\t%.1f\n",
				r.App, r.Config, r.PerfChangePct, r.MinFPSChange, r.PowerSavingPct)
		}
	})
}

// RenderTuning formats Figures 11-13 from TuningStudy rows.
func RenderTuning(rows []TuningRow) string {
	out := table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Figure 11: power saving by governor/HMP configuration")
		fmt.Fprintln(w, "tuning\tavg saving %\tmin %\tmax %")
		for _, s := range SummarizeTuning(rows) {
			fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\n", s.Tuning, s.AvgSavingPct, s.MinSavingPct, s.MaxSavingPct)
		}
	})
	out += table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Figures 12/13: performance change by configuration")
		fmt.Fprintln(w, "app\ttuning\tlatency delta %\tavg FPS delta %")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%.1f\t%.1f\n", r.App, r.Tuning, r.LatencyDeltaPct, r.AvgFPSDeltaPct)
		}
	})
	return out
}
