package analysis

import (
	"fmt"
	"text/tabwriter"

	"biglittle/internal/apps"
	"biglittle/internal/lab"
	"biglittle/internal/platform"
)

// TinyRow is one app's comparison between the standard L4+B4 platform and
// the same platform extended with two tiny cores (T2+L4+B4) — the paper's
// §VI-B proposal: "another core type, tiny core, with much weaker
// capability can be added to process such low CPU loads".
type TinyRow struct {
	App string
	// PowerSavingPct versus the L4+B4 baseline (positive = tiny cores save).
	PowerSavingPct float64
	// PerfChangePct versus baseline (latency apps: interaction rate; FPS
	// apps: average FPS).
	PerfChangePct float64
	MinFPSChange  float64
	// TinySharePct is the fraction of active core-samples served by tiny
	// cores in the extended configuration.
	TinyShare float64
	// BaselineMinPct is the Table V "min" share on the baseline — the
	// headroom the tiny cores are meant to absorb.
	BaselineMinPct float64
}

// TinyStudy runs every app on L4+B4 and on T2+L4+B4 and reports the energy
// and performance effect of adding the tiny cluster. Apps whose baseline
// execution is dominated by the Table V "min" state (video players,
// browsers, readers) should benefit the most; CPU-heavy apps should be
// unaffected.
func TinyStudy(o Options) []TinyRow {
	o = o.withDefaults()
	all := apps.All()
	jobs := make([]lab.Job, 0, 2*len(all))
	for _, app := range all {
		jobs = append(jobs, job(o.appConfig(app)))
		cfg := o.appConfig(app)
		cfg.Cores = platform.CoreConfig{Tiny: 2, Little: 4, Big: 4}
		jobs = append(jobs, job(cfg))
	}
	res := o.runAll(jobs)
	rows := make([]TinyRow, len(all))
	for i, app := range all {
		base, r := res[2*i], res[2*i+1]
		row := TinyRow{
			App:            app.Name,
			PowerSavingPct: pct(base.AvgPowerMW, r.AvgPowerMW),
			PerfChangePct:  pct(r.Performance(), base.Performance()),
			TinyShare:      r.TinyActivePct,
			BaselineMinPct: base.Eff[0],
		}
		if app.Metric == apps.FPS {
			row.MinFPSChange = pct(r.MinFPS, base.MinFPS)
		}
		rows[i] = row
	}
	return rows
}

// RenderTiny formats the tiny-core extension study.
func RenderTiny(rows []TinyRow) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Tiny-core extension (T2+L4+B4 vs L4+B4; paper §VI-B proposal)")
		fmt.Fprintln(w, "app\tpower saving %\tperf change %\tmin-FPS change %\ttiny share %\tbaseline min-state %")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n",
				r.App, r.PowerSavingPct, r.PerfChangePct, r.MinFPSChange, r.TinyShare, r.BaselineMinPct)
		}
	})
}
