package analysis

import (
	"fmt"
	"text/tabwriter"

	"biglittle/internal/apps"
	"biglittle/internal/battery"
	"biglittle/internal/lab"
)

// BatteryRow estimates battery life per app on the paper's device.
type BatteryRow struct {
	App             string
	AvgMW           float64
	Hours           float64 // continuous use on a Galaxy S5 pack (CPU+SoC rails only)
	DrainPctPerHour float64
	// HungriestThread attributes the largest share of active energy.
	HungriestThread string
	ThreadEnergyPct float64
}

// BatteryStudy converts each app's measured average power into battery-life
// estimates on the Galaxy S5's 2800 mAh pack, and attributes energy to the
// hungriest thread. Note the power model covers the CPU/SoC/DRAM rails with
// the screen off (as in the paper's methodology); real screen-on battery
// life is lower.
func BatteryStudy(o Options) []BatteryRow {
	o = o.withDefaults()
	pack := battery.GalaxyS5()
	all := apps.All()
	jobs := make([]lab.Job, len(all))
	for i, app := range all {
		jobs[i] = job(o.appConfig(app))
	}
	res := o.runAll(jobs)
	rows := make([]BatteryRow, len(all))
	for i := range all {
		r := res[i]
		row := BatteryRow{
			App:             all[i].Name,
			AvgMW:           r.AvgPowerMW,
			Hours:           pack.HoursAt(r.AvgPowerMW),
			DrainPctPerHour: pack.DrainOver(r.AvgPowerMW, 3600*1e9),
		}
		if len(r.TaskStats) > 0 {
			total := 0.0
			for _, ts := range r.TaskStats {
				total += ts.EnergyJ
			}
			row.HungriestThread = r.TaskStats[0].Name
			if total > 0 {
				row.ThreadEnergyPct = 100 * r.TaskStats[0].EnergyJ / total
			}
		}
		rows[i] = row
	}
	return rows
}

// RenderBattery formats the battery study.
func RenderBattery(rows []BatteryRow) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Battery life on a Galaxy S5 pack (CPU/SoC rails, screen off)")
		fmt.Fprintln(w, "app\tavg mW\thours\tdrain %/h\thungriest thread\tits energy share %")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.0f\t%.1f\t%.1f\t%s\t%.1f\n",
				r.App, r.AvgMW, r.Hours, r.DrainPctPerHour, r.HungriestThread, r.ThreadEnergyPct)
		}
	})
}

// MultitaskRow compares a foreground app running alone versus with a
// background app.
type MultitaskRow struct {
	Scenario string
	// Foreground performance change versus running alone.
	PerfChangePct float64
	// Power of the combination versus foreground alone.
	PowerIncreasePct float64
	TLP              float64
	TLPAlone         float64
}

// MultitaskStudy evaluates foreground+background combinations — the
// scenario the paper's single-app methodology sets aside (its §V-A notes
// the limited screen keeps concurrent apps rare). Each composite reports
// the foreground app's metric.
func MultitaskStudy(o Options) []MultitaskRow {
	o = o.withDefaults()
	type combo struct {
		name       string
		foreground string
		background string
	}
	combos := []combo{
		{"browser+music", "browser", "youtube"},
		{"pdf+video", "pdf_reader", "video_player"},
		{"game+encode", "angry_bird", "encoder"},
		{"bbench+scan", "bbench", "virus_scanner"},
	}
	jobs := make([]lab.Job, 0, 2*len(combos))
	for _, c := range combos {
		fg, err := apps.ByName(c.foreground)
		if err != nil {
			panic(err)
		}
		bg, err := apps.ByName(c.background)
		if err != nil {
			panic(err)
		}
		jobs = append(jobs, job(o.appConfig(fg)))
		// A composite's background set lives inside its Build closure, so
		// salt the fingerprint with the member apps.
		jobs = append(jobs, lab.Job{
			Config: o.appConfig(apps.Composite(c.name, fg, bg)),
			Salt:   "composite/" + c.foreground + "+" + c.background,
		})
	}
	res := o.runAll(jobs)
	rows := make([]MultitaskRow, len(combos))
	for i, c := range combos {
		alone, both := res[2*i], res[2*i+1]
		rows[i] = MultitaskRow{
			Scenario:         c.name,
			PerfChangePct:    pct(both.Performance(), alone.Performance()),
			PowerIncreasePct: pct(both.AvgPowerMW, alone.AvgPowerMW),
			TLP:              both.TLP.TLP,
			TLPAlone:         alone.TLP.TLP,
		}
	}
	return rows
}

// RenderMultitask formats the multitasking study.
func RenderMultitask(rows []MultitaskRow) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Multitasking: foreground app with a background app vs alone")
		fmt.Fprintln(w, "scenario\tforeground perf change %\tpower increase %\tTLP (combined)\tTLP (alone)")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%+.1f\t%+.1f\t%.2f\t%.2f\n",
				r.Scenario, r.PerfChangePct, r.PowerIncreasePct, r.TLP, r.TLPAlone)
		}
	})
}
