package analysis

import (
	"fmt"
	"text/tabwriter"

	"biglittle/internal/apps"
	"biglittle/internal/core"
	"biglittle/internal/lab"
)

// SchedulerRow compares one app across the three §IV-A mapping policies:
// utilization-based HMP (the commercial baseline), efficiency-based, and
// parallelism-aware scheduling.
type SchedulerRow struct {
	App       string
	Scheduler string
	// Deltas versus the HMP baseline.
	PerfChangePct  float64
	PowerChangePct float64
	BigSharePct    float64 // big-core usage share of active samples
	Migrations     int
}

// SchedulerStudy runs every app under the three scheduling approaches. The
// paper argues (§IV-A) that for fluctuating low-utilization mobile loads
// the simple utilization-based policy captures most of the benefit; this
// study quantifies that claim on the simulated platform.
func SchedulerStudy(o Options) []SchedulerRow {
	o = o.withDefaults()
	all := apps.All()
	kinds := []core.SchedulerKind{core.EfficiencyBased, core.ParallelismAware, core.EAS}
	per := 1 + len(kinds)
	jobs := make([]lab.Job, 0, len(all)*per)
	for _, app := range all {
		jobs = append(jobs, job(o.appConfig(app)))
		for _, k := range kinds {
			cfg := o.appConfig(app)
			cfg.Scheduler = k
			jobs = append(jobs, job(cfg))
		}
	}
	res := o.runAll(jobs)
	rows := make([]SchedulerRow, len(all)*per)
	for ai, app := range all {
		base := res[ai*per]
		rows[ai*per] = SchedulerRow{
			App:         app.Name,
			Scheduler:   core.HMP.String(),
			BigSharePct: base.TLP.BigPct,
			Migrations:  base.HMPMigrations,
		}
		for ki, k := range kinds {
			r := res[ai*per+1+ki]
			rows[ai*per+1+ki] = SchedulerRow{
				App:            app.Name,
				Scheduler:      k.String(),
				PerfChangePct:  pct(r.Performance(), base.Performance()),
				PowerChangePct: pct(r.AvgPowerMW, base.AvgPowerMW),
				BigSharePct:    r.TLP.BigPct,
				Migrations:     r.HMPMigrations,
			}
		}
	}
	return rows
}

// RenderSchedulers formats the scheduling-policy comparison.
func RenderSchedulers(rows []SchedulerRow) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Scheduling policies (§IV-A): efficiency-based and parallelism-aware vs HMP")
		fmt.Fprintln(w, "app\tpolicy\tperf vs HMP %\tpower vs HMP %\tbig share %\tmigrations")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%+.1f\t%+.1f\t%.1f\t%d\n",
				r.App, r.Scheduler, r.PerfChangePct, r.PowerChangePct, r.BigSharePct, r.Migrations)
		}
	})
}
