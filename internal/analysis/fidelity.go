package analysis

import (
	"fmt"
	"math"
	"text/tabwriter"
)

// PaperTable3 holds the paper's published Table III values per app:
// idle %, little-only %, big %, TLP.
var PaperTable3 = map[string][4]float64{
	"pdf_reader":       {16.14, 86.94, 13.05, 2.06},
	"video_editor":     {19.44, 89.55, 10.44, 2.25},
	"photo_editor":     {9.06, 92.49, 7.50, 1.40},
	"bbench":           {0.10, 52.16, 47.83, 3.95},
	"virus_scanner":    {2.93, 77.25, 22.74, 2.44},
	"browser":          {52.94, 94.58, 5.41, 1.86},
	"encoder":          {0.55, 37.80, 62.19, 1.78},
	"angry_bird":       {4.41, 99.88, 0.11, 2.34},
	"eternity_warrior": {3.65, 72.64, 27.35, 2.85},
	"fifa15":           {9.27, 85.62, 14.37, 2.37},
	"video_player":     {14.22, 99.38, 0.61, 2.29},
	"youtube":          {12.72, 99.92, 0.07, 2.29},
}

// PaperTable4 holds the paper's published Table IV matrices: percentage of
// 10 ms samples with [big][little] cores active.
var PaperTable4 = map[string][5][5]float64{
	"pdf_reader": {
		{16.14, 33.41, 15.56, 9.46, 4.10},
		{1.31, 6.84, 6.09, 4.07, 1.75},
		{0.03, 0.31, 0.23, 0.36, 0.20},
		{0.00, 0.01, 0.01, 0.03, 0.00},
		{0, 0, 0, 0, 0},
	},
	"video_editor": {
		{19.44, 26.05, 19.20, 12.23, 11.00},
		{1.81, 1.95, 1.47, 1.74, 1.02},
		{1.20, 0.39, 0.17, 0.12, 0.17},
		{0.59, 0.34, 0.05, 0.05, 0.00},
		{0.41, 0.25, 0.14, 0.05, 0.05},
	},
	"photo_editor": {
		{9.06, 64.81, 17.25, 4.01, 0.94},
		{0.35, 0.27, 0.23, 0.09, 0.13},
		{0.63, 0.19, 0.01, 0.00, 0.00},
		{0.69, 0.21, 0.01, 0.01, 0.00},
		{0.51, 0.33, 0.09, 0.01, 0.00},
	},
	"bbench": {
		{0.10, 0.33, 0.83, 1.08, 0.71},
		{0.92, 6.47, 8.67, 6.78, 5.17},
		{6.51, 13.26, 12.99, 8.98, 6.18},
		{2.28, 4.65, 5.09, 3.81, 2.93},
		{0.37, 0.52, 0.54, 0.44, 0.27},
	},
	"virus_scanner": {
		{2.93, 13.34, 20.09, 17.52, 10.55},
		{10.35, 5.27, 3.67, 2.64, 1.23},
		{4.20, 2.08, 0.72, 0.38, 0.24},
		{1.39, 1.29, 0.36, 0.16, 0.04},
		{0.56, 0.50, 0.26, 0.10, 0.02},
	},
	"browser": {
		{52.94, 23.16, 10.97, 4.94, 3.52},
		{0.65, 0.94, 1.05, 0.94, 0.55},
		{0.00, 0.11, 0.03, 0.09, 0.03},
		{0, 0, 0, 0, 0},
		{0, 0, 0, 0, 0},
	},
	"encoder": {
		{0.55, 0.39, 0.28, 0.20, 0.19},
		{47.34, 27.76, 9.47, 2.82, 1.19},
		{5.01, 2.13, 0.41, 0.15, 0.09},
		{0.83, 0.52, 0.03, 0.03, 0.00},
		{0.21, 0.24, 0.03, 0.01, 0.00},
	},
	"angry_bird": {
		{4.41, 21.16, 33.91, 26.50, 13.75},
		{0.01, 0.09, 0.01, 0.05, 0.05},
		{0, 0, 0, 0, 0},
		{0, 0, 0, 0, 0},
		{0, 0, 0, 0, 0},
	},
	"eternity_warrior": {
		{3.65, 8.28, 8.88, 7.71, 5.68},
		{8.84, 13.78, 13.91, 11.11, 8.84},
		{1.18, 2.28, 2.69, 1.76, 1.04},
		{0.03, 0.06, 0.08, 0.05, 0.03},
		{0, 0, 0, 0, 0},
	},
	"fifa15": {
		{9.27, 20.23, 21.11, 12.98, 7.97},
		{3.59, 7.57, 7.48, 4.49, 2.79},
		{0.50, 0.62, 0.61, 0.39, 0.20},
		{0.02, 0.02, 0.04, 0.01, 0.00},
		{0, 0, 0, 0, 0},
	},
	"video_player": {
		{14.22, 24.17, 26.09, 19.89, 14.55},
		{0.21, 0.25, 0.30, 0.02, 0.07},
		{0.01, 0.04, 0.04, 0.01, 0.05},
		{0, 0, 0, 0, 0},
		{0, 0, 0, 0, 0},
	},
	"youtube": {
		{12.72, 27.20, 23.39, 20.34, 16.18},
		{0.00, 0.03, 0.03, 0.09, 0.00},
		{0, 0, 0, 0, 0},
		{0, 0, 0, 0, 0},
		{0, 0, 0, 0, 0},
	},
}

// FidelityRow quantifies one app's distance from the paper's measurements.
type FidelityRow struct {
	App string
	// Absolute errors against Table III.
	IdleErr float64
	BigErr  float64
	TLPErr  float64
	// MatrixTVD is the total-variation distance between the simulated and
	// published Table IV active-core distributions, in [0,1]: 0 means the
	// distributions coincide, 1 means disjoint support.
	MatrixTVD float64
}

// Fidelity runs the default characterization and scores it against the
// paper's published Tables III and IV — an honest, quantitative statement
// of how close the reproduction is, beyond eyeballing.
func Fidelity(o Options) []FidelityRow {
	results := Characterize(o)
	rows := make([]FidelityRow, 0, len(results))
	for _, r := range results {
		p3, ok := PaperTable3[r.App]
		if !ok {
			continue
		}
		row := FidelityRow{
			App:     r.App,
			IdleErr: math.Abs(r.TLP.IdlePct - p3[0]),
			BigErr:  math.Abs(r.TLP.BigPct - p3[2]),
			TLPErr:  math.Abs(r.TLP.TLP - p3[3]),
		}
		if pm, ok := PaperTable4[r.App]; ok {
			row.MatrixTVD = matrixTVD(r.Matrix, pm)
		}
		rows = append(rows, row)
	}
	return rows
}

// matrixTVD is half the L1 distance between two (percent-valued)
// distributions, after normalizing each to sum to 1.
func matrixTVD(a, b [5][5]float64) float64 {
	sumA, sumB := 0.0, 0.0
	for i := range a {
		for j := range a[i] {
			sumA += a[i][j]
			sumB += b[i][j]
		}
	}
	if sumA == 0 || sumB == 0 {
		return 1
	}
	d := 0.0
	for i := range a {
		for j := range a[i] {
			d += math.Abs(a[i][j]/sumA - b[i][j]/sumB)
		}
	}
	return d / 2
}

// FidelitySummary aggregates the suite-wide fidelity.
type FidelitySummary struct {
	MeanIdleErr   float64
	MeanBigErr    float64
	MeanTLPErr    float64
	MeanMatrixTVD float64
	WorstApp      string
	WorstTVD      float64
}

// SummarizeFidelity computes suite averages and the worst matrix fit.
func SummarizeFidelity(rows []FidelityRow) FidelitySummary {
	var s FidelitySummary
	if len(rows) == 0 {
		return s
	}
	for _, r := range rows {
		s.MeanIdleErr += r.IdleErr
		s.MeanBigErr += r.BigErr
		s.MeanTLPErr += r.TLPErr
		s.MeanMatrixTVD += r.MatrixTVD
		if r.MatrixTVD > s.WorstTVD {
			s.WorstTVD = r.MatrixTVD
			s.WorstApp = r.App
		}
	}
	n := float64(len(rows))
	s.MeanIdleErr /= n
	s.MeanBigErr /= n
	s.MeanTLPErr /= n
	s.MeanMatrixTVD /= n
	return s
}

// RenderFidelity formats the fidelity scoring.
func RenderFidelity(rows []FidelityRow) string {
	out := table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Fidelity vs the paper's published Tables III/IV")
		fmt.Fprintln(w, "app\t|Δidle| pp\t|Δbig| pp\t|ΔTLP|\tTable IV TVD")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.2f\t%.3f\n", r.App, r.IdleErr, r.BigErr, r.TLPErr, r.MatrixTVD)
		}
	})
	s := SummarizeFidelity(rows)
	out += fmt.Sprintf("suite means: idle %.1f pp, big %.1f pp, TLP %.2f, matrix TVD %.3f (worst: %s %.3f)\n",
		s.MeanIdleErr, s.MeanBigErr, s.MeanTLPErr, s.MeanMatrixTVD, s.WorstApp, s.WorstTVD)
	return out
}
