package analysis

import (
	"fmt"
	"text/tabwriter"

	"biglittle/internal/apps"
	"biglittle/internal/core"
	"biglittle/internal/event"
	"biglittle/internal/lab"
	"biglittle/internal/thermal"
)

// ThermalRow summarizes one app's sustained-performance behaviour with the
// thermal model and throttling enabled, over a run long enough for the die
// to heat up.
type ThermalRow struct {
	App string
	// Mapping is "hmp" (default scheduler) or "big" (everything forced to
	// the big cluster — the sustained-maximum scenario where passively
	// cooled devices throttle).
	Mapping string
	// FPSFirstHalf/FPSSecondHalf show the sustained-performance drop for
	// FPS apps; latency apps report the performance change instead.
	FPSFirstHalf   float64
	FPSSecondHalf  float64
	PerfChangePct  float64 // versus the same run without thermal
	PowerChangePct float64
	MaxTempC       float64
	ThrottledPct   float64
}

// ThermalStudy runs the four CPU-heaviest apps for an extended duration
// (3x the configured duration, min 45 s) with and without the thermal
// model: sustained gaming and encoding trip the big cluster's throttle,
// while light apps never do — the dimension the paper's 30-second runs
// could not observe.
func ThermalStudy(o Options) []ThermalRow {
	o = o.withDefaults()
	dur := 3 * o.Duration
	if dur < 45*event.Second {
		dur = 45 * event.Second
	}
	par := thermal.Default()

	suite := []apps.App{}
	for _, name := range []string{"eternity_warrior", "fifa15", "encoder", "bbench", "video_player"} {
		app, err := apps.ByName(name)
		if err != nil {
			panic(err)
		}
		suite = append(suite, app)
	}
	suite = append(suite, apps.Stress(4))

	type cell struct {
		app     apps.App
		mapping string
	}
	var (
		cells []cell
		jobs  []lab.Job
	)
	for _, app := range suite {
		for _, mapping := range []string{"hmp", "big"} {
			mutate := func(c *core.Config) {
				c.Duration = dur
				if mapping == "big" {
					c.Cores.Little, c.Cores.Big = 1, 4
					c.Sched.UpThreshold = -1
					c.Sched.DownThreshold = -1
				}
			}
			base := o.appConfig(app)
			mutate(&base)

			cfg := o.appConfig(app)
			mutate(&cfg)
			cfg.Thermal = &par

			cells = append(cells, cell{app, mapping})
			jobs = append(jobs, job(base), job(cfg))
		}
	}
	res := o.runAll(jobs)
	rows := make([]ThermalRow, len(cells))
	for i, c := range cells {
		cold, hot := res[2*i], res[2*i+1]
		perf := pct(hot.Performance(), cold.Performance())
		if hot.Performance() == 0 {
			perf = pct(hot.TotalWorkGc, cold.TotalWorkGc)
		}
		rows[i] = ThermalRow{
			App:            c.app.Name,
			Mapping:        c.mapping,
			FPSFirstHalf:   hot.FPSFirstHalf,
			FPSSecondHalf:  hot.FPSSecondHalf,
			PerfChangePct:  perf,
			PowerChangePct: pct(hot.AvgPowerMW, cold.AvgPowerMW),
			MaxTempC:       hot.MaxTempC,
			ThrottledPct:   hot.ThrottledPct,
		}
	}
	return rows
}

// RenderThermal formats the sustained-performance study.
func RenderThermal(rows []ThermalRow) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Thermal throttling under sustained load (vs no thermal model)")
		fmt.Fprintln(w, "app\tmapping\tFPS 1st half\tFPS 2nd half\tperf change %\tpower change %\tmax temp C\tthrottled %")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%.1f\t%.1f\t%+.1f\t%+.1f\t%.1f\t%.1f\n",
				r.App, r.Mapping, r.FPSFirstHalf, r.FPSSecondHalf, r.PerfChangePct, r.PowerChangePct,
				r.MaxTempC, r.ThrottledPct)
		}
	})
}
