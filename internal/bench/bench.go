// Package bench parses standard `go test -bench` output, records baselines,
// and compares runs by per-benchmark medians. It exists because the repo
// vendors no external tools: the JSON baseline embeds the raw benchmark
// lines, so the file stays consumable by benchstat where that is available,
// while cmd/blbench provides the regression gate everywhere else.
package bench

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line: a name, the iteration count, and
// every "value unit" metric pair on the line (ns/op, B/op, allocs/op, and
// any custom ReportMetric units).
type Result struct {
	Name    string
	N       int
	Metrics map[string]float64
}

// Set is a parsed benchmark run: the environment header plus all results.
type Set struct {
	GOOS, GOARCH, CPU string
	Raw               []string // benchmark lines verbatim, in input order
	Results           []Result
}

var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// Parse reads `go test -bench` output. Unrecognized lines are skipped, so
// test chatter interleaved with benchmark output is harmless.
func Parse(r io.Reader) (*Set, error) {
	s := &Set{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			s.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			s.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			s.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseLine(line); ok {
				s.Results = append(s.Results, res)
				s.Raw = append(s.Raw, line)
			}
		}
	}
	return s, sc.Err()
}

func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	n, err := strconv.Atoi(f[1])
	if err != nil {
		return Result{}, false
	}
	// The GOMAXPROCS suffix is stripped so runs at different -cpu settings
	// still line up by benchmark identity.
	r := Result{Name: gomaxprocsSuffix.ReplaceAllString(f[0], ""), N: n, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[f[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return Result{}, false
	}
	return r, true
}

// Medians aggregates a set into name → unit → median across repeated runs
// (-count). The median, not the mean, so one descheduled run on a noisy
// machine cannot move the gate.
func (s *Set) Medians() map[string]map[string]float64 {
	samples := map[string]map[string][]float64{}
	for _, r := range s.Results {
		if samples[r.Name] == nil {
			samples[r.Name] = map[string][]float64{}
		}
		for unit, v := range r.Metrics {
			samples[r.Name][unit] = append(samples[r.Name][unit], v)
		}
	}
	out := map[string]map[string]float64{}
	for name, units := range samples {
		out[name] = map[string]float64{}
		for unit, vs := range units {
			out[name][unit] = median(vs)
		}
	}
	return out
}

// Runs returns how many times each benchmark appears in the set.
func (s *Set) Runs() map[string]int {
	n := map[string]int{}
	for _, r := range s.Results {
		n[r.Name]++
	}
	return n
}

func median(vs []float64) float64 {
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	m := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[m]
	}
	return (sorted[m-1] + sorted[m]) / 2
}

// Baseline is the on-disk format. Lines hold the raw benchmark output, so
// the stored data is exactly what was measured and remains benchstat-ready.
type Baseline struct {
	GOOS   string   `json:"goos"`
	GOARCH string   `json:"goarch"`
	CPU    string   `json:"cpu"`
	Note   string   `json:"note,omitempty"`
	Lines  []string `json:"lines"`
}

// Load reads a baseline file and re-parses its embedded lines.
func Load(path string) (*Baseline, *Set, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	set, err := Parse(strings.NewReader(strings.Join(b.Lines, "\n")))
	if err != nil {
		return nil, nil, err
	}
	set.GOOS, set.GOARCH, set.CPU = b.GOOS, b.GOARCH, b.CPU
	return &b, set, nil
}

// Delta is one (benchmark, unit) comparison row.
type Delta struct {
	Name, Unit string
	Old, New   float64
	Pct        float64 // (new-old)/old in percent; +∞ avoided: old==0 → 0
	Gated      bool    // this row participates in the pass/fail decision
	Fail       bool
}

// gatedUnits are the metrics where "bigger is worse" and a regression gate
// makes sense. B/op is reported but not gated (allocs/op subsumes it for
// the zero-alloc budgets this repo cares about); custom units are reported
// only.
func gatedUnit(unit string, gateTime bool) bool {
	switch unit {
	case "allocs/op":
		return true
	case "ns/op":
		return gateTime
	}
	return false
}

// Compare evaluates a candidate set against a baseline. Benchmarks matching
// critical are gated: a gated unit regressing by more than maxRegressPct on
// its median fails. gateTime should be false when the two sets were measured
// on different hardware.
func Compare(base, cand *Set, critical *regexp.Regexp, maxRegressPct float64, gateTime bool) ([]Delta, bool) {
	bm, cm := base.Medians(), cand.Medians()
	names := make([]string, 0, len(bm))
	for name := range bm {
		if _, ok := cm[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var rows []Delta
	failed := false
	for _, name := range names {
		units := make([]string, 0, len(bm[name]))
		for unit := range bm[name] {
			if _, ok := cm[name][unit]; ok {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			d := Delta{Name: name, Unit: unit, Old: bm[name][unit], New: cm[name][unit]}
			if d.Old != 0 {
				d.Pct = 100 * (d.New - d.Old) / d.Old
			}
			d.Gated = critical.MatchString(name) && gatedUnit(unit, gateTime)
			d.Fail = d.Gated && d.Pct > maxRegressPct
			failed = failed || d.Fail
			rows = append(rows, d)
		}
	}
	return rows, failed
}

// Render formats comparison rows as an aligned table.
func Render(w io.Writer, rows []Delta) {
	fmt.Fprintf(w, "%-28s %-14s %14s %14s %9s\n", "benchmark", "metric", "old median", "new median", "delta")
	for _, d := range rows {
		mark := ""
		switch {
		case d.Fail:
			mark = "  FAIL"
		case d.Gated:
			mark = "  ok"
		}
		fmt.Fprintf(w, "%-28s %-14s %14s %14s %+8.1f%%%s\n",
			d.Name, d.Unit, formatValue(d.Old, d.Unit), formatValue(d.New, d.Unit), d.Pct, mark)
	}
}

func formatValue(v float64, unit string) string {
	if unit == "ns/op" {
		switch {
		case v >= 1e9:
			return fmt.Sprintf("%.3gs", v/1e9)
		case v >= 1e6:
			return fmt.Sprintf("%.4gms", v/1e6)
		case v >= 1e3:
			return fmt.Sprintf("%.4gµs", v/1e3)
		}
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

func parseInputs(paths []string) (*Set, error) {
	if len(paths) == 0 {
		return Parse(os.Stdin)
	}
	var all strings.Builder
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		all.Write(data)
		all.WriteByte('\n')
	}
	return Parse(strings.NewReader(all.String()))
}

// RecordMain implements `blbench record`.
func RecordMain(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("out", "BENCH_baseline.json", "baseline file to write")
	note := fs.String("note", "", "free-form note stored with the baseline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	set, err := parseInputs(fs.Args())
	if err != nil {
		return err
	}
	if len(set.Results) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	b := Baseline{GOOS: set.GOOS, GOARCH: set.GOARCH, CPU: set.CPU, Note: *note, Lines: set.Raw}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	for name, n := range set.Runs() {
		fmt.Printf("recorded %s: %d runs\n", name, n)
	}
	fmt.Printf("wrote %s (cpu: %s)\n", *out, set.CPU)
	return nil
}

// CompareMain implements `blbench compare`.
func CompareMain(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	basePath := fs.String("baseline", "BENCH_baseline.json", "baseline file to compare against")
	maxRegress := fs.Float64("max-regress", 10, "max allowed median regression, percent")
	critical := fs.String("critical", "^BenchmarkSingleRun$", "regexp of gated benchmarks")
	forceTime := fs.Bool("force-time", false, "gate ns/op even across different CPU models")
	if err := fs.Parse(args); err != nil {
		return err
	}
	re, err := regexp.Compile(*critical)
	if err != nil {
		return fmt.Errorf("bad -critical: %w", err)
	}
	_, base, err := Load(*basePath)
	if err != nil {
		return err
	}
	cand, err := parseInputs(fs.Args())
	if err != nil {
		return err
	}
	if len(cand.Results) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}

	gateTime := *forceTime || (base.CPU != "" && base.CPU == cand.CPU)
	if !gateTime {
		fmt.Printf("note: baseline cpu %q != candidate cpu %q; ns/op reported but not gated (allocs/op still is)\n\n",
			base.CPU, cand.CPU)
	}
	rows, failed := Compare(base, cand, re, *maxRegress, gateTime)
	if len(rows) == 0 {
		return fmt.Errorf("no common benchmarks between baseline and input")
	}
	Render(os.Stdout, rows)
	if failed {
		return fmt.Errorf("regression over %.0f%% on a gated benchmark", *maxRegress)
	}
	return nil
}
