package bench

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: biglittle
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSingleRun 	      20	   2000000 ns/op	   31432 B/op	     623 allocs/op
BenchmarkSingleRun 	      20	   2200000 ns/op	   31432 B/op	     623 allocs/op
BenchmarkSingleRun 	      20	   1800000 ns/op	   31000 B/op	     620 allocs/op
BenchmarkFig2Speedup-4   	       5	    302713 ns/op	         4.968 max-speedup@1.3GHz	    2864 B/op	       5 allocs/op
PASS
ok  	biglittle	0.5s
`

func TestParse(t *testing.T) {
	s, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if s.GOOS != "linux" || s.GOARCH != "amd64" || !strings.Contains(s.CPU, "Xeon") {
		t.Fatalf("header parsed wrong: %+v", s)
	}
	if len(s.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(s.Results))
	}
	// GOMAXPROCS suffix stripped.
	if s.Results[3].Name != "BenchmarkFig2Speedup" {
		t.Fatalf("name = %q", s.Results[3].Name)
	}
	if v := s.Results[3].Metrics["max-speedup@1.3GHz"]; v != 4.968 {
		t.Fatalf("custom metric = %v", v)
	}
	if got := s.Medians()["BenchmarkSingleRun"]["ns/op"]; got != 2000000 {
		t.Fatalf("median ns/op = %v, want 2000000", got)
	}
	if got := s.Runs()["BenchmarkSingleRun"]; got != 3 {
		t.Fatalf("runs = %d, want 3", got)
	}
}

func TestMedianEven(t *testing.T) {
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("median = %v, want 2.5", m)
	}
}

func compareStrings(t *testing.T, baseTxt, candTxt string, maxPct float64, gateTime bool) ([]Delta, bool) {
	t.Helper()
	base, err := Parse(strings.NewReader(baseTxt))
	if err != nil {
		t.Fatal(err)
	}
	cand, err := Parse(strings.NewReader(candTxt))
	if err != nil {
		t.Fatal(err)
	}
	return Compare(base, cand, regexp.MustCompile("^BenchmarkSingleRun$"), maxPct, gateTime)
}

func TestCompareGatesRegression(t *testing.T) {
	slow := strings.ReplaceAll(sample, "2000000 ns/op", "3000000 ns/op")
	slow = strings.ReplaceAll(slow, "2200000 ns/op", "3300000 ns/op")
	slow = strings.ReplaceAll(slow, "1800000 ns/op", "2700000 ns/op")
	_, failed := compareStrings(t, sample, slow, 10, true)
	if !failed {
		t.Fatal("50% time regression on gated benchmark did not fail")
	}
	// The same regression passes when time gating is off (different CPU)...
	_, failed = compareStrings(t, sample, slow, 10, false)
	if failed {
		t.Fatal("time regression failed the gate with gateTime=false")
	}
	// ...but an allocation regression still fails regardless.
	allocs := strings.ReplaceAll(sample, "623 allocs/op", "1400 allocs/op")
	_, failed = compareStrings(t, sample, allocs, 10, false)
	if !failed {
		t.Fatal("alloc regression did not fail with gateTime=false")
	}
}

func TestCompareWithinToleranceAndImprovement(t *testing.T) {
	if _, failed := compareStrings(t, sample, sample, 10, true); failed {
		t.Fatal("identical runs failed the gate")
	}
	fast := strings.ReplaceAll(sample, "2000000 ns/op", "1000000 ns/op")
	if _, failed := compareStrings(t, sample, fast, 10, true); failed {
		t.Fatal("an improvement failed the gate")
	}
}

func TestCompareIgnoresNonCritical(t *testing.T) {
	// Fig2 regresses badly but is not in the critical set.
	slowFig := strings.ReplaceAll(sample, "302713 ns/op", "999999999 ns/op")
	if _, failed := compareStrings(t, sample, slowFig, 10, true); failed {
		t.Fatal("non-critical benchmark regression failed the gate")
	}
}

func TestRecordLoadRoundTrip(t *testing.T) {
	set, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "in.txt")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "BENCH.json")
	if err := RecordMain([]string{"-out", out, path}); err != nil {
		t.Fatal(err)
	}
	b, loaded, err := Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if b.CPU != set.CPU || len(loaded.Results) != len(set.Results) {
		t.Fatalf("round trip lost data: %+v vs %+v", loaded, set)
	}
	if loaded.Medians()["BenchmarkSingleRun"]["ns/op"] != set.Medians()["BenchmarkSingleRun"]["ns/op"] {
		t.Fatal("medians diverged after round trip")
	}
}
