package bench

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// HistoryEntry is one record in the benchmark history file (JSON lines,
// append-only, committed to the repo): the per-benchmark medians of one
// measurement session, labeled with when and at which revision it ran. The
// baseline/compare gate answers "did this change regress?"; the history
// answers "how has this benchmark trended across the project's life?".
type HistoryEntry struct {
	Date        string  `json:"date"`          // YYYY-MM-DD
	Rev         string  `json:"rev,omitempty"` // e.g. git short hash
	CPU         string  `json:"cpu,omitempty"`
	Benchmark   string  `json:"benchmark"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// AppendHistory appends entries to the JSONL history file, creating it if
// missing. Each entry is one line; the file stays greppable and diffable.
func AppendHistory(path string, entries []HistoryEntry) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	for _, e := range entries {
		data, err := json.Marshal(e)
		if err != nil {
			f.Close()
			return err
		}
		if _, err := f.Write(append(data, '\n')); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// LoadHistory reads every entry from a JSONL history file, in file order.
func LoadHistory(path string) ([]HistoryEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []HistoryEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e HistoryEntry
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// HistoryFromSet turns a parsed benchmark run into history entries: one per
// benchmark, carrying the ns/op and allocs/op medians.
func HistoryFromSet(set *Set, date, rev string) []HistoryEntry {
	medians := set.Medians()
	names := make([]string, 0, len(medians))
	for name := range medians {
		names = append(names, name)
	}
	sort.Strings(names)
	entries := make([]HistoryEntry, 0, len(names))
	for _, name := range names {
		entries = append(entries, HistoryEntry{
			Date:        date,
			Rev:         rev,
			CPU:         set.CPU,
			Benchmark:   name,
			NsPerOp:     medians[name]["ns/op"],
			AllocsPerOp: medians[name]["allocs/op"],
		})
	}
	return entries
}

// RenderHistory prints the per-benchmark trend: every recorded session in
// file (chronological) order with the percent change from the previous one.
// Time deltas across different CPU models are still printed — the history is
// a trend report, not a gate — but flagged with the CPU change.
func RenderHistory(w io.Writer, entries []HistoryEntry) {
	byBench := map[string][]HistoryEntry{}
	var order []string
	for _, e := range entries {
		if _, seen := byBench[e.Benchmark]; !seen {
			order = append(order, e.Benchmark)
		}
		byBench[e.Benchmark] = append(byBench[e.Benchmark], e)
	}
	sort.Strings(order)
	for bi, name := range order {
		if bi > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w, name)
		fmt.Fprintf(w, "  %-10s %-10s %12s %9s %12s %9s\n",
			"date", "rev", "ns/op", "Δ", "allocs/op", "Δ")
		var prev *HistoryEntry
		for i := range byBench[name] {
			e := byBench[name][i]
			dt, da := "", ""
			if prev != nil {
				dt = pctDelta(prev.NsPerOp, e.NsPerOp)
				if prev.CPU != e.CPU {
					dt += "*" // measured on a different CPU model
				}
				da = pctDelta(prev.AllocsPerOp, e.AllocsPerOp)
			}
			rev := e.Rev
			if rev == "" {
				rev = "-"
			}
			fmt.Fprintf(w, "  %-10s %-10s %12s %9s %12g %9s\n",
				e.Date, rev, formatValue(e.NsPerOp, "ns/op"), dt, e.AllocsPerOp, da)
			prev = &byBench[name][i]
		}
	}
}

func pctDelta(old, new float64) string {
	if old == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", 100*(new-old)/old)
}

// HistoryMain implements `blbench history`: with -append it parses
// benchmark output and appends one entry per benchmark to the history file;
// without it, it renders the recorded trend.
func HistoryMain(args []string) error {
	fs := flag.NewFlagSet("history", flag.ExitOnError)
	file := fs.String("file", "BENCH_history.jsonl", "history file (JSON lines)")
	doAppend := fs.Bool("append", false, "parse `go test -bench` output and append one entry per benchmark")
	rev := fs.String("rev", "", "revision label for appended entries (e.g. git short hash)")
	date := fs.String("date", "", "date label for appended entries (YYYY-MM-DD; default today)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if !*doAppend {
		entries, err := LoadHistory(*file)
		if err != nil {
			return err
		}
		if len(entries) == 0 {
			return fmt.Errorf("%s: no history entries", *file)
		}
		RenderHistory(os.Stdout, entries)
		return nil
	}

	set, err := parseInputs(fs.Args())
	if err != nil {
		return err
	}
	if len(set.Results) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	day := *date
	if day == "" {
		day = time.Now().Format("2006-01-02")
	}
	entries := HistoryFromSet(set, day, *rev)
	if err := AppendHistory(*file, entries); err != nil {
		return err
	}
	for _, e := range entries {
		fmt.Printf("appended %s: %s ns/op, %g allocs/op\n",
			e.Benchmark, formatValue(e.NsPerOp, "ns/op"), e.AllocsPerOp)
	}
	fmt.Printf("wrote %s (%d entries)\n", *file, len(entries))
	return nil
}
