package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

const runA = `goos: linux
goarch: amd64
cpu: Model A
BenchmarkSingleRun-8   	     100	  10000000 ns/op	     500 B/op	     100 allocs/op
BenchmarkSingleRun-8   	     100	  12000000 ns/op	     500 B/op	     100 allocs/op
BenchmarkSingleRun-8   	     100	  11000000 ns/op	     500 B/op	     100 allocs/op
BenchmarkFig2Speedup-8 	      50	  20000000 ns/op	     900 B/op	     200 allocs/op
`

const runB = `goos: linux
goarch: amd64
cpu: Model A
BenchmarkSingleRun-8   	     100	   9000000 ns/op	     500 B/op	      90 allocs/op
BenchmarkFig2Speedup-8 	      50	  22000000 ns/op	     900 B/op	     200 allocs/op
`

func parseRun(t *testing.T, raw string) *Set {
	t.Helper()
	set, err := Parse(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestHistoryAppendLoadRender(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_history.jsonl")

	a := HistoryFromSet(parseRun(t, runA), "2026-08-01", "aaaaaaa")
	if len(a) != 2 {
		t.Fatalf("entries from run A = %d, want 2", len(a))
	}
	// The median of {10, 12, 11} ms is 11 ms.
	for _, e := range a {
		if e.Benchmark == "BenchmarkSingleRun" {
			if e.NsPerOp != 11e6 || e.AllocsPerOp != 100 {
				t.Fatalf("SingleRun entry = %+v, want median 11e6 ns/op, 100 allocs/op", e)
			}
			if e.CPU != "Model A" || e.Date != "2026-08-01" || e.Rev != "aaaaaaa" {
				t.Fatalf("entry labels wrong: %+v", e)
			}
		}
	}
	if err := AppendHistory(path, a); err != nil {
		t.Fatal(err)
	}
	if err := AppendHistory(path, HistoryFromSet(parseRun(t, runB), "2026-08-07", "bbbbbbb")); err != nil {
		t.Fatal(err)
	}

	entries, err := LoadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("loaded %d entries, want 4", len(entries))
	}
	if entries[0].Date != "2026-08-01" || entries[3].Date != "2026-08-07" {
		t.Fatalf("entries out of order: %+v", entries)
	}

	var out strings.Builder
	RenderHistory(&out, entries)
	got := out.String()
	// 9 ms vs the 11 ms median is -18.2%; allocs 90 vs 100 is -10%.
	for _, want := range []string{
		"BenchmarkSingleRun", "BenchmarkFig2Speedup",
		"2026-08-01", "2026-08-07", "aaaaaaa", "bbbbbbb",
		"-18.2%", "-10.0%", "+10.0%",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("trend output missing %q:\n%s", want, got)
		}
	}
}

func TestHistoryCPUChangeFlagged(t *testing.T) {
	otherCPU := strings.Replace(runB, "cpu: Model A", "cpu: Model B", 1)
	entries := append(
		HistoryFromSet(parseRun(t, runA), "2026-08-01", "a"),
		HistoryFromSet(parseRun(t, otherCPU), "2026-08-07", "b")...)
	var out strings.Builder
	RenderHistory(&out, entries)
	if !strings.Contains(out.String(), "%*") {
		t.Errorf("time delta across CPU models not flagged:\n%s", out.String())
	}
}

func TestLoadHistoryMissing(t *testing.T) {
	if _, err := LoadHistory(filepath.Join(t.TempDir(), "nope.jsonl")); err == nil {
		t.Fatal("want error for missing history file")
	}
}
