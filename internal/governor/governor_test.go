package governor

import (
	"testing"

	"biglittle/internal/event"
	"biglittle/internal/platform"
	"biglittle/internal/sched"
)

func newSys() (*event.Engine, *sched.System) {
	eng := event.New()
	s := sched.New(eng, platform.Exynos5422(), sched.DefaultConfig())
	s.Start()
	return eng, s
}

func TestRampUpUnderLoad(t *testing.T) {
	eng, s := newSys()
	// Big cores offline so HMP cannot migrate the hog away mid-test.
	if err := (platform.CoreConfig{Little: 4}).Apply(s.SoC); err != nil {
		t.Fatal(err)
	}
	g := NewInteractive(s, DefaultInteractive())
	g.Start()
	task := s.NewTask("hog", 1)
	s.Push(task, 1e12)
	eng.Run(30 * event.Millisecond) // two samples
	lc := s.SoC.ClusterByType(platform.Little)
	if lc.CurMHz < g.Cfg.HispeedLittleMHz {
		t.Fatalf("little at %d MHz after load spike, want >= hispeed %d",
			lc.CurMHz, g.Cfg.HispeedLittleMHz)
	}
	eng.Run(200 * event.Millisecond)
	if lc.CurMHz != lc.MaxMHz() {
		t.Fatalf("little at %d MHz under sustained 100%% load, want max %d",
			lc.CurMHz, lc.MaxMHz())
	}
}

func TestDecayToMinWhenIdle(t *testing.T) {
	eng, s := newSys()
	g := NewInteractive(s, DefaultInteractive())
	g.Start()
	task := s.NewTask("burst", 1)
	s.Push(task, 2e7)
	eng.Run(300 * event.Millisecond)
	lc := s.SoC.ClusterByType(platform.Little)
	if lc.CurMHz != lc.MinMHz() {
		t.Fatalf("little at %d MHz after going idle, want min %d", lc.CurMHz, lc.MinMHz())
	}
}

func TestModerateLoadHolds(t *testing.T) {
	eng, s := newSys()
	cfg := DefaultInteractive()
	g := NewInteractive(s, cfg)
	g.Start()
	// ~55% duty at whatever frequency: between down (45) and target (70)
	// the governor should neither jump to hispeed nor drop to min forever.
	task := s.NewTask("mid", 1)
	var gen func(now event.Time)
	gen = func(now event.Time) {
		lc := s.SoC.ClusterByType(platform.Little)
		cycles := 0.55 * float64(lc.CurMHz) / 1000 * float64(10*event.Millisecond)
		s.Push(task, cycles)
		eng.At(now+10*event.Millisecond, gen)
	}
	gen(0)
	eng.Run(500 * event.Millisecond)
	lc := s.SoC.ClusterByType(platform.Little)
	// Frequency must settle somewhere; utilization across the window must
	// sit inside the governor's dead band.
	s.SyncAll(eng.Now())
	if lc.CurMHz < lc.MinMHz() || lc.CurMHz > lc.MaxMHz() {
		t.Fatalf("frequency %d outside table", lc.CurMHz)
	}
}

func TestBigClusterRampsIndependently(t *testing.T) {
	eng, s := newSys()
	g := NewInteractive(s, DefaultInteractive())
	g.Start()
	// Saturate one big core directly (white-box via load preset + push).
	task := s.NewTask("big", 2)
	// Pre-set high load so the wake lands on the big cluster.
	for i := 0; i < 200; i++ {
		// Can't reach tracker here (black-box); emulate by pushing huge work
		// and letting HMP migrate it up, after pinning little to max.
		_ = i
	}
	s.SetClusterFreq(0, 1300)
	s.Push(task, 1e12)
	eng.Run(400 * event.Millisecond)
	if got := s.SoC.Cores[task.CPU()].Type; got != platform.Big {
		t.Fatalf("hog still on %v", got)
	}
	bc := s.SoC.ClusterByType(platform.Big)
	if bc.CurMHz != bc.MaxMHz() {
		t.Fatalf("big at %d MHz under saturation, want %d", bc.CurMHz, bc.MaxMHz())
	}
	// Little cluster should fall back toward min once the hog has left.
	lc := s.SoC.ClusterByType(platform.Little)
	if lc.CurMHz != lc.MinMHz() {
		t.Fatalf("little at %d MHz with no load, want min", lc.CurMHz)
	}
}

func TestClusterTakesMaxOfCores(t *testing.T) {
	eng, s := newSys()
	if err := (platform.CoreConfig{Little: 4}).Apply(s.SoC); err != nil {
		t.Fatal(err)
	}
	g := NewInteractive(s, DefaultInteractive())
	g.Start()
	// One busy task and three idle little cores: cluster frequency follows
	// the busy core, not the average.
	task := s.NewTask("one", 1)
	s.Push(task, 1e12)
	eng.Run(100 * event.Millisecond)
	lc := s.SoC.ClusterByType(platform.Little)
	if lc.CurMHz < g.Cfg.HispeedLittleMHz {
		t.Fatalf("cluster freq %d ignores its one saturated core", lc.CurMHz)
	}
}

func TestFreqLogFires(t *testing.T) {
	eng, s := newSys()
	g := NewInteractive(s, DefaultInteractive())
	samples := 0
	g.FreqLog = func(now event.Time, cluster, mhz int) { samples++ }
	g.Start()
	eng.Run(100 * event.Millisecond)
	if samples != 2*5 { // 2 clusters x 5 samples in 100ms at 20ms
		t.Fatalf("FreqLog fired %d times, want 10", samples)
	}
}

func TestSampleIntervalRespected(t *testing.T) {
	eng, s := newSys()
	cfg := DefaultInteractive()
	cfg.SampleMs = 60
	g := NewInteractive(s, cfg)
	var times []event.Time
	g.FreqLog = func(now event.Time, cluster, mhz int) {
		if cluster == 0 {
			times = append(times, now)
		}
	}
	g.Start()
	eng.Run(400 * event.Millisecond)
	if len(times) < 2 {
		t.Fatal("too few samples")
	}
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] != 60*event.Millisecond {
			t.Fatalf("sample gap %v, want 60ms", times[i]-times[i-1])
		}
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	_, s := newSys()
	g := NewInteractive(s, InteractiveConfig{})
	if g.Cfg.SampleMs != 20 || g.Cfg.TargetLoad != 70 || g.Cfg.DownThreshold != 45 {
		t.Fatalf("zero config not defaulted: %+v", g.Cfg)
	}
}

func TestStaticGovernors(t *testing.T) {
	_, s := newSys()
	NewPerformance(s).Start()
	if s.SoC.ClusterByType(platform.Little).CurMHz != 1300 ||
		s.SoC.ClusterByType(platform.Big).CurMHz != 1900 {
		t.Fatal("performance governor did not pin max")
	}
	NewPowersave(s).Start()
	if s.SoC.ClusterByType(platform.Little).CurMHz != 500 ||
		s.SoC.ClusterByType(platform.Big).CurMHz != 800 {
		t.Fatal("powersave governor did not pin min")
	}
	NewUserspace(s, map[int]int{0: 900, 1: 1400}).Start()
	if s.SoC.ClusterByType(platform.Little).CurMHz != 900 ||
		s.SoC.ClusterByType(platform.Big).CurMHz != 1400 {
		t.Fatal("userspace governor did not pin requested frequencies")
	}
}

// A longer sampling interval reacts more slowly to a burst — the §VI-C
// trade-off.
func TestLongerIntervalSlowerReaction(t *testing.T) {
	reactTime := func(sampleMs int) event.Time {
		eng, s := newSys()
		cfg := DefaultInteractive()
		cfg.SampleMs = sampleMs
		g := NewInteractive(s, cfg)
		g.Start()
		task := s.NewTask("b", 1)
		eng.At(5*event.Millisecond, func(event.Time) { s.Push(task, 1e12) })
		lc := s.SoC.ClusterByType(platform.Little)
		var when event.Time
		for eng.Now() < 2*event.Second {
			eng.Run(eng.Now() + event.Millisecond)
			if lc.CurMHz >= 1000 {
				when = eng.Now()
				break
			}
		}
		return when
	}
	fast := reactTime(20)
	slow := reactTime(100)
	if fast == 0 || slow == 0 {
		t.Fatal("governor never reacted")
	}
	if slow <= fast {
		t.Fatalf("100ms interval reacted at %v, 20ms at %v; want slower", slow, fast)
	}
}

func TestOndemandJumpsToMax(t *testing.T) {
	eng, s := newSys()
	if err := (platform.CoreConfig{Little: 4}).Apply(s.SoC); err != nil {
		t.Fatal(err)
	}
	NewOndemand(s, 20, 80).Start()
	task := s.NewTask("hog", 1)
	s.Push(task, 1e12)
	eng.Run(50 * event.Millisecond) // two samples
	lc := s.SoC.ClusterByType(platform.Little)
	if lc.CurMHz != lc.MaxMHz() {
		t.Fatalf("ondemand at %d under saturation, want max immediately", lc.CurMHz)
	}
}

func TestConservativeStepsGradually(t *testing.T) {
	eng, s := newSys()
	if err := (platform.CoreConfig{Little: 4}).Apply(s.SoC); err != nil {
		t.Fatal(err)
	}
	NewConservative(s, 20, 80, 35).Start()
	task := s.NewTask("hog", 1)
	s.Push(task, 1e12)
	eng.Run(45 * event.Millisecond) // two samples: at most two 100MHz steps
	lc := s.SoC.ClusterByType(platform.Little)
	if lc.CurMHz > 700 {
		t.Fatalf("conservative at %d after two samples, want stepwise ramp", lc.CurMHz)
	}
	eng.Run(500 * event.Millisecond)
	if lc.CurMHz != lc.MaxMHz() {
		t.Fatalf("conservative never reached max under sustained load (%d)", lc.CurMHz)
	}
}

func TestPASTTracksLoad(t *testing.T) {
	eng, s := newSys()
	if err := (platform.CoreConfig{Little: 4}).Apply(s.SoC); err != nil {
		t.Fatal(err)
	}
	NewPAST(s, 20).Start()
	task := s.NewTask("hog", 1)
	s.Push(task, 1e12)
	eng.Run(event.Second)
	lc := s.SoC.ClusterByType(platform.Little)
	if lc.CurMHz != lc.MaxMHz() {
		t.Fatalf("PAST at %d under saturation after 1s", lc.CurMHz)
	}
	// Load vanishes: PAST must decay to min.
	s.Tasks()[0].Pin(0) // keep affinity stable while it drains
	eng.Run(eng.Now() + 2*event.Second)
	// The hog never drains (1e12 cycles); instead verify a fresh idle system.
	eng2, s2 := newSys()
	NewPAST(s2, 20).Start()
	eng2.Run(200 * event.Millisecond)
	lc2 := s2.SoC.ClusterByType(platform.Little)
	if lc2.CurMHz != lc2.MinMHz() {
		t.Fatalf("PAST at %d on an idle system, want min", lc2.CurMHz)
	}
}

func TestAboveHispeedDelayHolds(t *testing.T) {
	eng, s := newSys()
	if err := (platform.CoreConfig{Little: 4}).Apply(s.SoC); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultInteractive()
	cfg.AboveHispeedDelayMs = 100
	g := NewInteractive(s, cfg)
	g.Start()
	task := s.NewTask("hog", 1)
	s.Push(task, 1e12)
	lc := s.SoC.ClusterByType(platform.Little)
	// After two samples we are at hispeed, but the delay must block the
	// climb to max until 100ms of sustained demand above hispeed.
	eng.Run(60 * event.Millisecond)
	if lc.CurMHz != g.Cfg.HispeedLittleMHz {
		t.Fatalf("at %d MHz, want held at hispeed %d", lc.CurMHz, g.Cfg.HispeedLittleMHz)
	}
	eng.Run(400 * event.Millisecond)
	if lc.CurMHz != lc.MaxMHz() {
		t.Fatalf("at %d MHz after the delay elapsed, want max", lc.CurMHz)
	}
}

func TestMinSampleTimeBlocksDownscale(t *testing.T) {
	eng, s := newSys()
	if err := (platform.CoreConfig{Little: 4}).Apply(s.SoC); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultInteractive()
	cfg.MinSampleTimeMs = 200
	g := NewInteractive(s, cfg)
	g.Start()
	task := s.NewTask("burst", 1)
	// One short burst raises the frequency, then the load vanishes.
	s.Push(task, 3e7)
	lc := s.SoC.ClusterByType(platform.Little)
	eng.Run(70 * event.Millisecond) // burst over, recently raised
	raised := lc.CurMHz
	if raised <= lc.MinMHz() {
		t.Fatalf("burst never raised frequency (%d)", raised)
	}
	eng.Run(120 * event.Millisecond) // still inside min_sample_time window?
	// The hold only guarantees no drop within 200ms of the LAST raise; at
	// minimum it must eventually decay afterwards.
	eng.Run(800 * event.Millisecond)
	if lc.CurMHz != lc.MinMHz() {
		t.Fatalf("frequency %d never decayed after the hold window", lc.CurMHz)
	}
	_ = raised
	_ = g
}
