package governor

import (
	"fmt"

	"biglittle/internal/event"
	"biglittle/internal/platform"
	"biglittle/internal/sched"
	"biglittle/internal/telemetry"
	"biglittle/internal/xray"
)

// loadSampler is the shared skeleton of the load-tracking governors: every
// sample period it computes each online core's utilization and programs the
// cluster to the maximum of a per-core policy function's targets.
type loadSampler struct {
	// Tel, when non-nil, receives a KindGovernor event for each frequency
	// change decision; Reason carries the governor's name and Value the
	// triggering utilization (percent).
	Tel *telemetry.Collector
	// Xray, when non-nil, receives a decision span for every frequency
	// change with the per-core utilizations and targets as candidates; the
	// reason is the governor's name. See Interactive.Xray.
	Xray *xray.Tracer
	// xrayCands is the scratch candidate buffer, reused across samples.
	xrayCands []xray.Candidate

	sys      *sched.System
	name     string
	sample   event.Time
	sampleFn event.Handler // cached method value: evaluating g.onSample allocates
	sampleEv event.Handle  // the pending sample (retained for snapshot capture)
	lastBusy []event.Time
	target   func(cl *platform.Cluster, curMHz int, util float64) int
}

func newLoadSampler(sys *sched.System, name string, sampleMs int,
	target func(cl *platform.Cluster, curMHz int, util float64) int) *loadSampler {
	if sampleMs <= 0 {
		sampleMs = 20
	}
	g := &loadSampler{
		sys:      sys,
		name:     name,
		sample:   event.Time(sampleMs) * event.Millisecond,
		lastBusy: make([]event.Time, len(sys.SoC.Cores)),
		target:   target,
	}
	g.sampleFn = g.onSample
	return g
}

// Start schedules the periodic sampling.
func (g *loadSampler) Start() {
	g.sampleEv = g.sys.Eng.After(g.sample, g.sampleFn)
}

func (g *loadSampler) onSample(now event.Time) {
	g.sys.SyncAll(now)
	for ci := range g.sys.SoC.Clusters {
		cl := &g.sys.SoC.Clusters[ci]
		cur := cl.CurMHz
		best := 0
		maxUtil := 0.0
		if g.Xray != nil {
			g.xrayCands = g.xrayCands[:0]
		}
		for _, id := range cl.CoreIDs {
			if !g.sys.SoC.Cores[id].Online {
				if g.Xray != nil {
					g.xrayCands = append(g.xrayCands, xray.Candidate{
						Core: id, Type: g.sys.SoC.Cores[id].Type.String(), Rejected: "offline",
					})
				}
				continue
			}
			busy := g.sys.BusyNs(id)
			util := sched.CoreBusyFraction(g.lastBusy[id], busy, g.sample)
			g.lastBusy[id] = busy
			if util > maxUtil {
				maxUtil = util
			}
			t := g.target(cl, cur, util)
			if t > best {
				best = t
			}
			if g.Xray != nil {
				g.xrayCands = append(g.xrayCands, xray.Candidate{
					Core: id, Type: g.sys.SoC.Cores[id].Type.String(),
					QueueLen: g.sys.QueueLen(id), Load: 100 * util, TargetMHz: t,
				})
			}
		}
		if best == 0 {
			best = cl.MinMHz()
		}
		if best != cur {
			got := g.sys.SetClusterFreq(ci, best)
			if got != cur {
				if g.Tel != nil {
					g.Tel.Emit(telemetry.Event{
						At: now, Kind: telemetry.KindGovernor,
						Task: -1, Core: -1, FromCore: -1, Cluster: ci,
						PrevMHz: cur, MHz: got,
						Reason: g.name, Value: 100 * maxUtil,
					})
				}
				if g.Xray != nil {
					g.Xray.FreqStep(now, ci, cur, got,
						fmt.Sprintf("cluster%d %d -> %d MHz", ci, cur, got), g.name,
						[]xray.Input{{Name: "max_util_pct", Value: 100 * maxUtil}},
						markGovernorChoice(g.xrayCands, best))
				}
			}
		}
	}
	g.sampleEv = g.sys.Eng.After(g.sample, g.sampleFn)
}

// NewOndemand builds the classic Linux ondemand governor: jump straight to
// the maximum frequency when utilization exceeds upThresholdPct (default
// 80), otherwise set the lowest frequency that keeps utilization under the
// threshold. Fast reaction, jumpy power.
func NewOndemand(sys *sched.System, sampleMs, upThresholdPct int) *loadSampler {
	if upThresholdPct <= 0 || upThresholdPct > 100 {
		upThresholdPct = 80
	}
	up := float64(upThresholdPct) / 100
	return newLoadSampler(sys, "ondemand", sampleMs, func(cl *platform.Cluster, cur int, util float64) int {
		if util > up {
			return cl.MaxMHz()
		}
		// Proportional down-scaling with the same headroom.
		return int(float64(cur) * util / up)
	})
}

// NewConservative builds the Linux conservative governor: frequency moves
// one 100 MHz table step at a time — up above upPct utilization (default
// 80), down below downPct (default 35). Smooth power, slow reaction.
func NewConservative(sys *sched.System, sampleMs, upPct, downPct int) *loadSampler {
	if upPct <= 0 || upPct > 100 {
		upPct = 80
	}
	if downPct <= 0 || downPct >= upPct {
		downPct = 35
	}
	up, down := float64(upPct)/100, float64(downPct)/100
	return newLoadSampler(sys, "conservative", sampleMs, func(cl *platform.Cluster, cur int, util float64) int {
		switch {
		case util > up:
			return cl.ClampMHz(cur + 100)
		case util < down:
			if cur-100 < cl.MinMHz() {
				return cl.MinMHz()
			}
			return cur - 100
		default:
			return cur
		}
	})
}

// NewPAST builds Weiser et al.'s PAST policy (§IV-D cites it as the
// precursor of the interactive governor): the next interval is assumed to
// repeat the previous one, and the speed is set so that the predicted work
// just fits — i.e. target = current_speed × utilization, with a small
// headroom so minor increases do not immediately saturate.
func NewPAST(sys *sched.System, sampleMs int) *loadSampler {
	const headroom = 0.9 // run the predicted load at 90% utilization
	return newLoadSampler(sys, "past", sampleMs, func(cl *platform.Cluster, cur int, util float64) int {
		return int(float64(cur) * util / headroom)
	})
}
