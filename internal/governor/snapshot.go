package governor

import (
	"fmt"

	"biglittle/internal/event"
)

// Snap is a governor's dynamic state for whole-simulation snapshot/fork: the
// per-core busy baselines, the interactive governor's per-cluster hold state,
// and the pending self-rescheduled sample event's (at, seq) key. One type
// covers every governor; unused fields stay empty (the static governors have
// no dynamic state at all).
type Snap struct {
	LastBusy     []event.Time `json:"lastBusy,omitempty"`
	HispeedSince []event.Time `json:"hispeedSince,omitempty"`
	LastRaise    []event.Time `json:"lastRaise,omitempty"`

	SamplePending bool       `json:"sampleP,omitempty"`
	SampleAt      event.Time `json:"sampleAt,omitempty"`
	SampleSeq     uint64     `json:"sampleSeq,omitempty"`
}

// PendingEvents returns how many engine events the snapshot accounts for.
func (sn *Snap) PendingEvents() int {
	if sn.SamplePending {
		return 1
	}
	return 0
}

// Snapshotter is implemented by every governor: capture and restore of its
// dynamic state around an engine Reset.
type Snapshotter interface {
	Snapshot() Snap
	Restore(*Snap) error
}

func copyTimes(ts []event.Time) []event.Time { return append([]event.Time(nil), ts...) }

func restoreTimes(dst, src []event.Time, what string) error {
	if len(src) != len(dst) {
		return fmt.Errorf("governor: snapshot has %d %s entries, governor has %d", len(src), what, len(dst))
	}
	copy(dst, src)
	return nil
}

// Snapshot captures the interactive governor's dynamic state.
func (g *Interactive) Snapshot() Snap {
	sn := Snap{
		LastBusy:     copyTimes(g.lastBusy),
		HispeedSince: copyTimes(g.hispeedSince),
		LastRaise:    copyTimes(g.lastRaise),
	}
	if seq, ok := g.sampleEv.EventSeq(); ok {
		sn.SamplePending, sn.SampleAt, sn.SampleSeq = true, g.sampleEv.At(), seq
	}
	return sn
}

// Restore loads sn; the engine must already be Reset to the capture point.
func (g *Interactive) Restore(sn *Snap) error {
	if err := restoreTimes(g.lastBusy, sn.LastBusy, "lastBusy"); err != nil {
		return err
	}
	if err := restoreTimes(g.hispeedSince, sn.HispeedSince, "hispeedSince"); err != nil {
		return err
	}
	if err := restoreTimes(g.lastRaise, sn.LastRaise, "lastRaise"); err != nil {
		return err
	}
	if sn.SamplePending {
		g.sampleEv = g.sys.Eng.ScheduleAt(sn.SampleAt, sn.SampleSeq, g.sampleFn)
	}
	return nil
}

// Snapshot captures a load-sampling governor's dynamic state.
func (g *loadSampler) Snapshot() Snap {
	sn := Snap{LastBusy: copyTimes(g.lastBusy)}
	if seq, ok := g.sampleEv.EventSeq(); ok {
		sn.SamplePending, sn.SampleAt, sn.SampleSeq = true, g.sampleEv.At(), seq
	}
	return sn
}

// Restore loads sn; the engine must already be Reset to the capture point.
func (g *loadSampler) Restore(sn *Snap) error {
	if err := restoreTimes(g.lastBusy, sn.LastBusy, "lastBusy"); err != nil {
		return err
	}
	if sn.SamplePending {
		g.sampleEv = g.sys.Eng.ScheduleAt(sn.SampleAt, sn.SampleSeq, g.sampleFn)
	}
	return nil
}

// Snapshot captures nothing: static governors apply their policy once at
// Start and hold no dynamic state (the resulting frequencies live in the SoC
// snapshot).
func (s *Static) Snapshot() Snap { return Snap{} }

// Restore of a static governor is a no-op (see Snapshot).
func (s *Static) Restore(sn *Snap) error {
	if sn.SamplePending || len(sn.LastBusy) > 0 {
		return fmt.Errorf("governor: static governor cannot restore a sampling snapshot")
	}
	return nil
}
