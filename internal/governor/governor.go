// Package governor implements the CPU frequency governors from §IV-C of the
// paper. The centerpiece is the interactive governor (Algorithm 2): at every
// sampling period (default 20 ms) it reads each online core's utilization
// since the last sample, computes a target frequency freq·util/targetLoad,
// jumps to a preset hispeed frequency on load spikes, and — because each
// cluster shares one clock (§II) — programs every cluster to the maximum of
// its cores' targets.
//
// Performance, powersave, and userspace governors are provided as baselines.
package governor

import (
	"fmt"

	"biglittle/internal/event"
	"biglittle/internal/platform"
	"biglittle/internal/sched"
	"biglittle/internal/telemetry"
	"biglittle/internal/xray"
)

// InteractiveConfig holds the tunables the paper sweeps in §VI-C.
type InteractiveConfig struct {
	// SampleMs is the sampling period (default 20; swept to 60 and 100).
	SampleMs int
	// TargetLoad is the utilization the governor aims to maintain, percent
	// (default 70; swept to 60 and 80). It doubles as the hispeed-jump
	// threshold, as in the paper's description.
	TargetLoad int
	// DownThreshold: below this utilization percent the frequency is scaled
	// down to the target (default 45).
	DownThreshold int
	// HispeedMHz maps core type to the preset jump frequency.
	HispeedLittleMHz int
	HispeedBigMHz    int
	HispeedTinyMHz   int
	// AboveHispeedDelayMs delays climbing beyond the hispeed frequency
	// until the load has persisted that long (0 = climb immediately), and
	// MinSampleTimeMs holds the current frequency for at least that long
	// before any down-scaling — both are tunables of the real interactive
	// governor that damp frequency thrash.
	AboveHispeedDelayMs int
	MinSampleTimeMs     int
}

// DefaultInteractive returns the paper's baseline governor parameters.
func DefaultInteractive() InteractiveConfig {
	return InteractiveConfig{
		SampleMs:         20,
		TargetLoad:       70,
		DownThreshold:    45,
		HispeedLittleMHz: 1000,
		HispeedBigMHz:    1500,
		HispeedTinyMHz:   500,
	}
}

// Interactive is the load-tracking DVFS governor.
type Interactive struct {
	Cfg InteractiveConfig

	sys      *sched.System
	sample   event.Time
	sampleFn event.Handler // cached method value: evaluating g.onSample allocates
	sampleEv event.Handle  // the pending sample (retained for snapshot capture)
	lastBusy []event.Time
	// Per-cluster hold state for the delay tunables.
	hispeedSince []event.Time
	lastRaise    []event.Time
	// FreqLog, if set, receives (time, clusterID, newMHz) on every sample
	// (including unchanged frequencies) for residency accounting.
	FreqLog func(now event.Time, clusterID, mhz int)
	// Tel, when non-nil, receives a KindGovernor event for every frequency
	// change decision, carrying the triggering utilization (Value, percent)
	// and the reason (hispeed jump, scale-up, scale-down).
	Tel *telemetry.Collector
	// Xray, when non-nil, receives a decision span for every frequency
	// change: each online core's utilization and per-core target (the
	// candidates; the cluster takes the max), the thresholds compared, and
	// the reason. Nil disables tracing at one pointer check per sample.
	Xray *xray.Tracer
	// xrayCands is the scratch candidate buffer, reused across samples so
	// tracing only allocates when a span is actually recorded.
	xrayCands []xray.Candidate
}

// NewInteractive attaches an interactive governor to sys. Call Start to
// begin sampling.
func NewInteractive(sys *sched.System, cfg InteractiveConfig) *Interactive {
	if cfg.SampleMs <= 0 {
		cfg.SampleMs = 20
	}
	if cfg.TargetLoad <= 0 || cfg.TargetLoad > 100 {
		cfg.TargetLoad = 70
	}
	if cfg.DownThreshold <= 0 {
		cfg.DownThreshold = 45
	}
	g := &Interactive{
		Cfg:          cfg,
		sys:          sys,
		sample:       event.Time(cfg.SampleMs) * event.Millisecond,
		lastBusy:     make([]event.Time, len(sys.SoC.Cores)),
		hispeedSince: make([]event.Time, len(sys.SoC.Clusters)),
		lastRaise:    make([]event.Time, len(sys.SoC.Clusters)),
	}
	for i := range g.hispeedSince {
		g.hispeedSince[i] = -1
	}
	g.sampleFn = g.onSample
	return g
}

// Start schedules the periodic sampling.
func (g *Interactive) Start() {
	g.sampleEv = g.sys.Eng.After(g.sample, g.sampleFn)
}

func (g *Interactive) hispeed(t platform.CoreType) int {
	switch t {
	case platform.Big:
		return g.Cfg.HispeedBigMHz
	case platform.Tiny:
		if g.Cfg.HispeedTinyMHz > 0 {
			return g.Cfg.HispeedTinyMHz
		}
		return 500
	default:
		return g.Cfg.HispeedLittleMHz
	}
}

func (g *Interactive) onSample(now event.Time) {
	g.sys.SyncAll(now)
	for ci := range g.sys.SoC.Clusters {
		cl := &g.sys.SoC.Clusters[ci]
		cur := cl.CurMHz
		target := 0
		maxUtil := 0.0
		if g.Xray != nil {
			g.xrayCands = g.xrayCands[:0]
		}
		for _, id := range cl.CoreIDs {
			if !g.sys.SoC.Cores[id].Online {
				if g.Xray != nil {
					g.xrayCands = append(g.xrayCands, xray.Candidate{
						Core: id, Type: g.sys.SoC.Cores[id].Type.String(), Rejected: "offline",
					})
				}
				continue
			}
			busy := g.sys.BusyNs(id)
			util := sched.CoreBusyFraction(g.lastBusy[id], busy, g.sample)
			g.lastBusy[id] = busy
			if util > maxUtil {
				maxUtil = util
			}
			t := g.coreTarget(cl, cur, util)
			if t > target {
				target = t
			}
			if g.Xray != nil {
				g.xrayCands = append(g.xrayCands, xray.Candidate{
					Core: id, Type: g.sys.SoC.Cores[id].Type.String(),
					QueueLen: g.sys.QueueLen(id), Load: 100 * util, TargetMHz: t,
				})
			}
		}
		if target == 0 {
			target = cl.MinMHz()
		}
		// above_hispeed_delay: hold at hispeed until the demand persists.
		if d := g.Cfg.AboveHispeedDelayMs; d > 0 {
			hs := g.hispeed(cl.Type)
			if target > hs && cur >= hs {
				if g.hispeedSince[ci] < 0 {
					g.hispeedSince[ci] = now
				}
				if now-g.hispeedSince[ci] < event.Time(d)*event.Millisecond {
					target = cur
				}
			} else if target <= hs {
				g.hispeedSince[ci] = -1
			}
		}
		// min_sample_time: do not scale down right after a raise.
		if m := g.Cfg.MinSampleTimeMs; m > 0 && target < cur {
			if now-g.lastRaise[ci] < event.Time(m)*event.Millisecond {
				target = cur
			}
		}
		newMHz := cur
		if target != cur {
			newMHz = g.sys.SetClusterFreq(ci, target)
			if newMHz > cur {
				g.lastRaise[ci] = now
			}
			if newMHz != cur {
				reason := telemetry.ReasonScaleDown
				if newMHz > cur {
					if cur < g.hispeed(cl.Type) && newMHz >= g.hispeed(cl.Type) {
						reason = telemetry.ReasonHispeed
					} else {
						reason = telemetry.ReasonScaleUp
					}
				}
				if g.Tel != nil {
					g.Tel.Emit(telemetry.Event{
						At: now, Kind: telemetry.KindGovernor,
						Task: -1, Core: -1, FromCore: -1, Cluster: ci,
						PrevMHz: cur, MHz: newMHz,
						Reason: reason, Value: 100 * maxUtil,
					})
				}
				if g.Xray != nil {
					g.Xray.FreqStep(now, ci, cur, newMHz,
						fmt.Sprintf("cluster%d %d -> %d MHz", ci, cur, newMHz), reason,
						[]xray.Input{
							{Name: "max_util_pct", Value: 100 * maxUtil},
							{Name: "target_load", Value: float64(g.Cfg.TargetLoad)},
							{Name: "down_threshold", Value: float64(g.Cfg.DownThreshold)},
							{Name: "hispeed_mhz", Value: float64(g.hispeed(cl.Type))},
						},
						markGovernorChoice(g.xrayCands, target))
				}
			}
		}
		if g.FreqLog != nil {
			g.FreqLog(now, ci, newMHz)
		}
	}
	g.sampleEv = g.sys.Eng.After(g.sample, g.sampleFn)
}

// markGovernorChoice copies the scratch candidate buffer into a fresh slice
// for a span, marking the first core whose per-core target equals the
// cluster's winning target as chosen and rejecting the rest: the cluster
// shares one clock, so every lower per-core demand is overridden by the max.
func markGovernorChoice(scratch []xray.Candidate, target int) []xray.Candidate {
	out := make([]xray.Candidate, len(scratch))
	copy(out, scratch)
	// Prefer the core whose target exactly equals the programmed frequency;
	// when the hold/clamp logic overrode the raw max, fall back to the
	// highest per-core demand as the driving core.
	chosen := -1
	for i := range out {
		if out[i].Rejected != "" {
			continue
		}
		if out[i].TargetMHz == target {
			chosen = i
			break
		}
		if chosen < 0 || out[i].TargetMHz > out[chosen].TargetMHz {
			chosen = i
		}
	}
	for i := range out {
		if i != chosen && out[i].Rejected == "" {
			out[i].Rejected = "lower-target"
		}
	}
	return out
}

// coreTarget applies Algorithm 2 for one core.
func (g *Interactive) coreTarget(cl *platform.Cluster, curMHz int, util float64) int {
	utilPct := int(util*100 + 0.5)
	targetFreq := int(float64(curMHz) * util * 100 / float64(g.Cfg.TargetLoad))
	switch {
	case utilPct > g.Cfg.TargetLoad:
		hs := g.hispeed(cl.Type)
		if curMHz < hs {
			return hs
		}
		return targetFreq
	case utilPct < g.Cfg.DownThreshold:
		if targetFreq < cl.MinMHz() {
			return cl.MinMHz()
		}
		return targetFreq
	default:
		return curMHz
	}
}

// Static is a trivial governor that pins every cluster to a fixed frequency
// policy at start — the "performance", "powersave", and "userspace"
// governors used for the architectural experiments in §III, where the paper
// pins frequencies explicitly.
type Static struct {
	sys *sched.System
	// MHz maps cluster ID to the pinned frequency; missing entries pin to
	// the cluster maximum.
	MHz map[int]int
}

// NewPerformance pins all clusters to their maximum frequency.
func NewPerformance(sys *sched.System) *Static {
	return &Static{sys: sys}
}

// NewPowersave pins all clusters to their minimum frequency.
func NewPowersave(sys *sched.System) *Static {
	m := map[int]int{}
	for i := range sys.SoC.Clusters {
		m[i] = sys.SoC.Clusters[i].MinMHz()
	}
	return &Static{sys: sys, MHz: m}
}

// NewUserspace pins each cluster to an explicit frequency.
func NewUserspace(sys *sched.System, mhz map[int]int) *Static {
	return &Static{sys: sys, MHz: mhz}
}

// Start applies the pinned frequencies once.
func (s *Static) Start() {
	for i := range s.sys.SoC.Clusters {
		mhz, ok := s.MHz[i]
		if !ok {
			mhz = s.sys.SoC.Clusters[i].MaxMHz()
		}
		s.sys.SetClusterFreq(i, mhz)
	}
}
