package cli

import "testing"

// FuzzInts: the strict value-list parser must never panic, and an accepted
// list is never empty (the contract sweeps rely on).
func FuzzInts(f *testing.F) {
	f.Add("1,2,3")
	f.Add("500, 1000, 1300")
	f.Add("")
	f.Add(",")
	f.Add(" , , ")
	f.Add("1,,2")
	f.Add("-4")
	f.Add("1,x")
	f.Add("9999999999999999999")
	f.Fuzz(func(t *testing.T, s string) {
		out, err := Ints(s)
		if err != nil {
			return
		}
		if len(out) == 0 {
			t.Fatalf("Ints(%q) accepted an empty list", s)
		}
	})
}
