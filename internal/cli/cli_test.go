package cli

import (
	"flag"
	"strings"
	"testing"
	"time"

	"biglittle/internal/apps"
	"biglittle/internal/core"
)

func TestIntsStrict(t *testing.T) {
	got, err := Ints("10, 20,40")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 40 {
		t.Fatalf("Ints = %v", got)
	}
	for _, bad := range []string{"", ",", "  ,  ", "10,x,40", "1.5"} {
		if _, err := Ints(bad); err == nil {
			t.Errorf("Ints(%q): expected error", bad)
		}
	}
}

func TestResolveApps(t *testing.T) {
	all, err := ResolveApps("")
	if err != nil || len(all) != 12 {
		t.Fatalf("ResolveApps(\"\") = %d apps, %v; want the twelve-app suite", len(all), err)
	}
	one, err := ResolveApps("bbench")
	if err != nil || len(one) != 1 || one[0].Name != "bbench" {
		t.Fatalf("ResolveApps(bbench) = %v, %v", one, err)
	}
	if _, err := ResolveApps("nonexistent"); err == nil {
		t.Fatal("expected error for unknown app")
	}
}

func TestRegisterExperimentAndRunner(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	e := RegisterExperiment(fs, 15*time.Second)
	if err := fs.Parse([]string{"-seed", "7", "-workers", "3", "-cache-dir", t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	if e.Seed != 7 || e.Duration != 15*time.Second || e.Workers != 3 {
		t.Fatalf("parsed experiment = %+v", e)
	}
	r, err := e.Runner()
	if err != nil {
		t.Fatal(err)
	}
	if r.Cache == nil {
		t.Fatal("cache should be on by default")
	}
	o := e.Options(r)
	if o.Seed != 7 || o.Runner != r {
		t.Fatalf("options = %+v", o)
	}

	e.NoCache = true
	r2, err := e.Runner()
	if err != nil || r2.Cache != nil {
		t.Fatalf("-no-cache runner = %+v, %v; want nil cache", r2, err)
	}
}

func TestRunnerRemoteWiring(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	e := RegisterExperiment(fs, 15*time.Second)
	if err := fs.Parse([]string{"-remote", "http://127.0.0.1:8377", "-no-cache"}); err != nil {
		t.Fatal(err)
	}
	r, err := e.Runner()
	if err != nil {
		t.Fatal(err)
	}
	if r.Remote == nil {
		t.Fatal("-remote did not install a fleet executor")
	}
	// Remote pool slots wait on the coordinator, not a CPU: the default
	// widens so a sweep keeps the fleet busy.
	if r.Workers != 16 {
		t.Fatalf("remote default workers = %d, want 16", r.Workers)
	}

	// An explicit -workers wins.
	e.Workers = 2
	r2, err := e.Runner()
	if err != nil || r2.Workers != 2 {
		t.Fatalf("explicit workers = %d, %v; want 2", r2.Workers, err)
	}

	// Without -remote, no executor is attached.
	e.Remote = ""
	r3, err := e.Runner()
	if err != nil || r3.Remote != nil {
		t.Fatalf("runner without -remote has an executor: %+v, %v", r3.Remote, err)
	}
}

func TestApplyOverrides(t *testing.T) {
	app, err := apps.ByName("bbench")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(app)
	if err := ApplyOverrides(&cfg, "up=350, down=128, governor=ondemand, sample-ms=60, cores=L2+B4, seed=7"); err != nil {
		t.Fatal(err)
	}
	if cfg.Sched.UpThreshold != 350 || cfg.Sched.DownThreshold != 128 {
		t.Fatalf("thresholds = %d/%d", cfg.Sched.UpThreshold, cfg.Sched.DownThreshold)
	}
	if cfg.Governor != core.Ondemand || cfg.Gov.SampleMs != 60 {
		t.Fatalf("governor = %v sample=%d", cfg.Governor, cfg.Gov.SampleMs)
	}
	if cfg.Cores.Little != 2 || cfg.Cores.Big != 4 {
		t.Fatalf("cores = %+v", cfg.Cores)
	}
	if cfg.Seed != 7 {
		t.Fatalf("seed = %d", cfg.Seed)
	}
	// Empty spec is a no-op.
	before := cfg.Sched
	if err := ApplyOverrides(&cfg, ""); err != nil || cfg.Sched != before {
		t.Fatalf("empty spec changed the config or errored: %v", err)
	}
}

func TestApplyOverridesErrors(t *testing.T) {
	app, _ := apps.ByName("bbench")
	for _, bad := range []string{"up", "bogus=1", "up=abc", "governor=warp", "scheduler=warp", "cores=XYZ"} {
		cfg := core.DefaultConfig(app)
		if err := ApplyOverrides(&cfg, bad); err == nil {
			t.Errorf("override %q did not error", bad)
		}
	}
	cfg := core.DefaultConfig(app)
	if err := ApplyOverrides(&cfg, "bogus=1"); err == nil || !strings.Contains(err.Error(), "governor") {
		t.Errorf("unknown-key error should list the vocabulary: %v", err)
	}
}
