package cli

import (
	"flag"
	"testing"
	"time"
)

func TestIntsStrict(t *testing.T) {
	got, err := Ints("10, 20,40")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 40 {
		t.Fatalf("Ints = %v", got)
	}
	for _, bad := range []string{"", ",", "  ,  ", "10,x,40", "1.5"} {
		if _, err := Ints(bad); err == nil {
			t.Errorf("Ints(%q): expected error", bad)
		}
	}
}

func TestResolveApps(t *testing.T) {
	all, err := ResolveApps("")
	if err != nil || len(all) != 12 {
		t.Fatalf("ResolveApps(\"\") = %d apps, %v; want the twelve-app suite", len(all), err)
	}
	one, err := ResolveApps("bbench")
	if err != nil || len(one) != 1 || one[0].Name != "bbench" {
		t.Fatalf("ResolveApps(bbench) = %v, %v", one, err)
	}
	if _, err := ResolveApps("nonexistent"); err == nil {
		t.Fatal("expected error for unknown app")
	}
}

func TestRegisterExperimentAndRunner(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	e := RegisterExperiment(fs, 15*time.Second)
	if err := fs.Parse([]string{"-seed", "7", "-workers", "3", "-cache-dir", t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	if e.Seed != 7 || e.Duration != 15*time.Second || e.Workers != 3 {
		t.Fatalf("parsed experiment = %+v", e)
	}
	r, err := e.Runner()
	if err != nil {
		t.Fatal(err)
	}
	if r.Cache == nil {
		t.Fatal("cache should be on by default")
	}
	o := e.Options(r)
	if o.Seed != 7 || o.Runner != r {
		t.Fatalf("options = %+v", o)
	}

	e.NoCache = true
	r2, err := e.Runner()
	if err != nil || r2.Cache != nil {
		t.Fatalf("-no-cache runner = %+v, %v; want nil cache", r2, err)
	}
}
