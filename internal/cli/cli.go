// Package cli holds the flag plumbing shared by the experiment commands
// (blreport, blsweep, bltlp): the -seed/-duration pair every command
// carried its own copy of, the -workers/-cache-dir/-no-cache orchestration
// flags, app-list resolution, and strict value-list parsing.
package cli

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	"biglittle/internal/analysis"
	"biglittle/internal/apps"
	"biglittle/internal/core"
	"biglittle/internal/event"
	"biglittle/internal/fleet"
	"biglittle/internal/lab"
	"biglittle/internal/platform"
)

// Experiment bundles the flag values shared by the experiment commands.
type Experiment struct {
	Seed     int64
	Duration time.Duration
	Workers  int
	CacheDir string
	NoCache  bool
	Check    bool
	Verbose  bool
	Remote   string
}

// RegisterExperiment installs the shared experiment flags on fs and returns
// the struct their values land in (after fs.Parse).
func RegisterExperiment(fs *flag.FlagSet, defaultDuration time.Duration) *Experiment {
	e := &Experiment{}
	fs.Int64Var(&e.Seed, "seed", 1, "workload random seed")
	fs.DurationVar(&e.Duration, "duration", defaultDuration, "simulated duration per app run")
	fs.IntVar(&e.Workers, "workers", 0, "parallel simulations (0 = GOMAXPROCS, or 16 with -remote)")
	fs.StringVar(&e.CacheDir, "cache-dir", "", "result cache directory (default: the user cache dir, e.g. ~/.cache/biglittle)")
	fs.BoolVar(&e.NoCache, "no-cache", false, "disable the on-disk result cache")
	fs.BoolVar(&e.Check, "check", false, "audit every run with the invariant checker; cache hits are re-simulated and compared")
	fs.BoolVar(&e.Verbose, "v", false, "log sweep progress to stderr: per-job transitions, completed/total, jobs/sec, ETA")
	fs.StringVar(&e.Remote, "remote", "", "fleet coordinator base URL (a blserve instance); fingerprintable jobs execute on the fleet, the rest simulate locally")
	return e
}

// Logger returns the structured progress logger -v selects: a Debug-level
// text logger on stderr when verbose, nil (silent) otherwise. Stderr keeps
// report stdout byte-identical with or without -v.
func (e *Experiment) Logger() *slog.Logger {
	if !e.Verbose {
		return nil
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug}))
}

// Runner builds the experiment orchestrator the flags describe: the worker
// pool plus (unless -no-cache) the content-addressed result cache, with
// progress logging attached when -v is set. With -remote, a fleet client is
// installed as the remote executor: pool slots then mostly wait on the
// coordinator rather than burn a CPU, so the default pool widens to 16 to
// keep that many jobs in flight across the fleet.
func (e *Experiment) Runner() (*lab.Runner, error) {
	r := &lab.Runner{Workers: e.Workers, Check: e.Check, Log: e.Logger()}
	if !e.NoCache {
		c, err := lab.Open(e.CacheDir)
		if err != nil {
			return nil, err
		}
		r.Cache = c
	}
	if e.Remote != "" {
		r.Remote = &fleet.Client{Base: e.Remote, Log: e.Logger()}
		if r.Workers == 0 {
			r.Workers = 16
		}
	}
	return r, nil
}

// Options assembles the analysis options for the parsed flags and runner.
func (e *Experiment) Options(r *lab.Runner) analysis.Options {
	return analysis.Options{
		Duration: event.Time(e.Duration.Nanoseconds()),
		Seed:     e.Seed,
		Runner:   r,
	}
}

// ResolveApps returns the app named by an -app flag value, or the full
// twelve-app suite when the value is empty.
func ResolveApps(name string) ([]apps.App, error) {
	if name == "" {
		return apps.All(), nil
	}
	app, err := apps.ByName(name)
	if err != nil {
		return nil, err
	}
	return []apps.App{app}, nil
}

// Ints parses a comma-separated integer list strictly: an empty list or any
// unparseable element is an error, because a sweep over zero values would
// otherwise silently produce an empty report.
func Ints(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %v", f, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty value list %q", s)
	}
	return out, nil
}

// PrintLabStats writes the runner's job and cache counters to w — the
// commands pass stderr, so report stdout stays byte-identical whatever the
// cache state. A fully warm run shows "0 simulated".
func PrintLabStats(w io.Writer, r *lab.Runner, elapsed time.Duration) {
	s := r.Stats()
	cache := "off"
	if r.Cache != nil {
		cache = r.Cache.Dir()
	}
	fmt.Fprintf(w, "lab: %d jobs: %d cache hits, %d misses, %d simulated, %d remote, %d retried, %d failed in %s (cache %s)\n",
		s.Jobs, s.Hits, s.Misses, s.Simulated, s.Remote, s.Retries, s.Failures, elapsed.Round(time.Millisecond), cache)
	if s.Forks > 0 || s.PrefixMisses > 0 {
		fmt.Fprintf(w, "lab: fork: %d continuations: %d prefixes simulated, %d reused, %d evicted\n",
			s.Forks, s.PrefixMisses, s.PrefixHits, s.PrefixEvictions)
	}
	if r.Check {
		fmt.Fprintf(w, "lab: audit: %d runs verified, %d failed\n", s.Audited, s.AuditFailures)
	}
}

// intOverride adapts a set-an-int field to the override table, wrapping
// parse failures with the key and offending value.
func intOverride(set func(*core.Config, int)) func(*core.Config, string, string) error {
	return func(cfg *core.Config, k, v string) error {
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("override %s: bad value %q: %v", k, v, err)
		}
		set(cfg, n)
		return nil
	}
}

// overrides is the key=value vocabulary ApplyOverrides accepts, in the order
// error messages list it. The "keys:" list in those messages is derived from
// this table, so adding an override here is the whole change.
var overrides = []struct {
	key   string
	apply func(cfg *core.Config, k, v string) error
}{
	{"up", intOverride(func(c *core.Config, n int) { c.Sched.UpThreshold = n })},
	{"down", intOverride(func(c *core.Config, n int) { c.Sched.DownThreshold = n })},
	{"halflife-ms", intOverride(func(c *core.Config, n int) { c.Sched.HalfLifeMs = n })},
	{"tick-ms", intOverride(func(c *core.Config, n int) { c.Sched.TickMs = n })},
	{"tiny-wake-load", intOverride(func(c *core.Config, n int) { c.Sched.TinyWakeLoad = n })},
	{"sample-ms", intOverride(func(c *core.Config, n int) { c.Gov.SampleMs = n })},
	{"target-load", intOverride(func(c *core.Config, n int) { c.Gov.TargetLoad = n })},
	{"gov-down", intOverride(func(c *core.Config, n int) { c.Gov.DownThreshold = n })},
	{"governor", func(c *core.Config, _, v string) (err error) {
		c.Governor, err = parseGovernor(v)
		return
	}},
	{"scheduler", func(c *core.Config, _, v string) (err error) {
		c.Scheduler, err = parseScheduler(v)
		return
	}},
	{"cores", func(c *core.Config, _, v string) (err error) {
		c.Cores, err = platform.ParseCoreConfig(v)
		return
	}},
	{"seed", intOverride(func(c *core.Config, n int) { c.Seed = int64(n) })},
}

// overrideKeys renders the vocabulary for error messages.
func overrideKeys() string {
	keys := make([]string, len(overrides))
	for i, o := range overrides {
		keys[i] = o.key
	}
	return strings.Join(keys, ", ")
}

// ApplyOverrides applies a comma-separated key=value override list to a run
// configuration — the vocabulary bldiff's -a/-b flags use to describe the
// two sides of a comparison ("up=350", "governor=ondemand,sample-ms=60").
// Unknown keys and unparseable values are errors listing the vocabulary, so
// a typo can never silently diff a config against itself.
func ApplyOverrides(cfg *core.Config, spec string) error {
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("bad override %q (want key=value; keys: %s)", part, overrideKeys())
		}
		applied := false
		for _, o := range overrides {
			if o.key != k {
				continue
			}
			if err := o.apply(cfg, k, v); err != nil {
				return err
			}
			applied = true
			break
		}
		if !applied {
			return fmt.Errorf("unknown override key %q (keys: %s)", k, overrideKeys())
		}
	}
	return nil
}

func parseGovernor(s string) (core.GovernorKind, error) {
	for _, k := range []core.GovernorKind{core.Interactive, core.Performance,
		core.Powersave, core.Userspace, core.Ondemand, core.Conservative, core.PAST} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown governor %q (want interactive, performance, powersave, userspace, ondemand, conservative, or past)", s)
}

func parseScheduler(s string) (core.SchedulerKind, error) {
	for _, k := range []core.SchedulerKind{core.HMP, core.EfficiencyBased,
		core.ParallelismAware, core.EAS} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown scheduler %q (want hmp, efficiency, parallelism, or eas)", s)
}
