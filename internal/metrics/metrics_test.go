package metrics

import (
	"math"
	"testing"

	"biglittle/internal/event"
	"biglittle/internal/platform"
	"biglittle/internal/power"
	"biglittle/internal/sched"
)

func newRig() (*event.Engine, *sched.System, *Sampler) {
	eng := event.New()
	soc := platform.Exynos5422()
	sys := sched.New(eng, soc, sched.DefaultConfig())
	sys.Start()
	m := NewSampler(sys, power.Default())
	m.Start()
	return eng, sys, m
}

func TestIdleSystemAllIdleSamples(t *testing.T) {
	eng, _, m := newRig()
	eng.Run(event.Second)
	if m.Samples != 100 {
		t.Fatalf("samples %d, want 100 in 1s at 10ms", m.Samples)
	}
	if m.Matrix[0][0] != m.Samples {
		t.Fatalf("idle cell %d, want all %d", m.Matrix[0][0], m.Samples)
	}
	r := m.TLP()
	if r.IdlePct != 100 || r.TLP != 0 {
		t.Fatalf("idle report %+v", r)
	}
	// Power: base + online idle cores only.
	if m.AvgPowerMW() < 250 || m.AvgPowerMW() > 600 {
		t.Fatalf("idle power %.0f mW implausible", m.AvgPowerMW())
	}
}

func TestBusyCoreCounted(t *testing.T) {
	eng, sys, m := newRig()
	task := sys.NewTask("hog", 1)
	task.Pin(0)
	sys.Push(task, 1e12)
	eng.Run(event.Second)
	r := m.TLP()
	if r.IdlePct > 1 {
		t.Fatalf("idle %.1f%% with a pinned hog", r.IdlePct)
	}
	if math.Abs(r.TLP-1.0) > 0.05 {
		t.Fatalf("TLP %.2f, want ~1 for one busy core", r.TLP)
	}
	if r.LittleOnlyPct < 99 {
		t.Fatalf("little-only %.1f%%, hog is pinned to a little core", r.LittleOnlyPct)
	}
}

func TestTLPCountsParallelism(t *testing.T) {
	eng, sys, m := newRig()
	for i := 0; i < 3; i++ {
		task := sys.NewTask("hog", 1)
		task.Pin(i)
		sys.Push(task, 1e12)
	}
	eng.Run(event.Second)
	if r := m.TLP(); math.Abs(r.TLP-3.0) > 0.1 {
		t.Fatalf("TLP %.2f, want ~3", r.TLP)
	}
}

func TestBigUsageDetected(t *testing.T) {
	eng, sys, m := newRig()
	task := sys.NewTask("hog", 1)
	task.Pin(4) // big core
	sys.Push(task, 1e12)
	eng.Run(event.Second)
	r := m.TLP()
	if r.BigPct < 99 {
		t.Fatalf("big usage %.1f%%, hog pinned to big core", r.BigPct)
	}
}

func TestEfficiencyClassification(t *testing.T) {
	soc := platform.Exynos5422()
	little := soc.ClusterByType(platform.Little)
	big := soc.ClusterByType(platform.Big)

	cases := []struct {
		typ  platform.CoreType
		cl   *platform.Cluster
		mhz  int
		util float64
		want EffState
	}{
		{platform.Little, little, 500, 0.3, EffMin},
		{platform.Little, little, 600, 0.3, EffLt50},
		{platform.Little, little, 500, 0.6, EffLt70},
		{platform.Little, little, 1300, 0.8, EffMid},
		{platform.Little, little, 1300, 0.97, EffGt95},
		{platform.Big, big, 1900, 1.0, EffFull},
		{platform.Big, big, 1300, 1.0, EffGt95},
		{platform.Big, big, 800, 0.3, EffLt50},
	}
	for _, c := range cases {
		c.cl.CurMHz = c.mhz
		if got := classify(c.typ, c.cl, c.util); got != c.want {
			t.Errorf("classify(%v, %d MHz, %.2f) = %v, want %v", c.typ, c.mhz, c.util, got, c.want)
		}
	}
}

func TestEffStateStrings(t *testing.T) {
	want := []string{"Min", "<50%", "<70%", "70-95%", ">95%", "Full"}
	for i, w := range want {
		if got := EffState(i).String(); got != w {
			t.Errorf("EffState(%d) = %q, want %q", i, got, w)
		}
	}
}

func TestResidencyTracksFrequency(t *testing.T) {
	eng, sys, m := newRig()
	task := sys.NewTask("hog", 1)
	task.Pin(0)
	sys.Push(task, 1e12)
	sys.SetClusterFreq(0, 700)
	eng.At(500*event.Millisecond, func(event.Time) { sys.SetClusterFreq(0, 1200) })
	eng.Run(event.Second)
	lc := sys.SoC.ClusterByType(platform.Little)
	pct := m.ResidencyPct(platform.Little, lc.FreqsMHz)
	at := func(mhz int) float64 {
		for i, f := range lc.FreqsMHz {
			if f == mhz {
				return pct[i]
			}
		}
		return -1
	}
	if at(700) < 40 || at(700) > 60 {
		t.Errorf("700MHz residency %.1f%%, want ~50%%", at(700))
	}
	if at(1200) < 40 || at(1200) > 60 {
		t.Errorf("1200MHz residency %.1f%%, want ~50%%", at(1200))
	}
}

func TestFPSTracker(t *testing.T) {
	var f FPSTracker
	// 30 frames in first second, 10 in second.
	for i := 0; i < 30; i++ {
		f.FrameDone(event.Time(i) * event.Second / 30)
	}
	for i := 0; i < 10; i++ {
		f.FrameDone(event.Second + event.Time(i)*event.Second/10)
	}
	if f.Count() != 40 {
		t.Fatalf("count %d", f.Count())
	}
	if avg := f.Avg(2 * event.Second); math.Abs(avg-20) > 0.01 {
		t.Fatalf("avg %.2f, want 20", avg)
	}
	if min := f.Min(2 * event.Second); min != 10 {
		t.Fatalf("min %.1f, want 10", min)
	}
	if got := f.Avg(0); got != 0 {
		t.Fatalf("Avg(0) = %f", got)
	}
	// Sub-second run: Min falls back to Avg.
	var g FPSTracker
	g.FrameDone(100 * event.Millisecond)
	if got := g.Min(500 * event.Millisecond); math.Abs(got-2.0) > 0.01 {
		t.Fatalf("sub-second Min %.2f, want avg 2.0", got)
	}
}

func TestLatencyTracker(t *testing.T) {
	var l LatencyTracker
	if l.Mean() != 0 {
		t.Fatal("empty tracker mean not 0")
	}
	l.Record(10 * event.Millisecond)
	l.Record(30 * event.Millisecond)
	if l.N != 2 || l.Mean() != 20*event.Millisecond || l.Max != 30*event.Millisecond {
		t.Fatalf("tracker %+v mean %v", l, l.Mean())
	}
	if l.Total != 40*event.Millisecond {
		t.Fatalf("total %v", l.Total)
	}
}

func TestMatrixPctAndEffSum(t *testing.T) {
	eng, sys, m := newRig()
	task := sys.NewTask("burst", 1)
	var gen func(now event.Time)
	gen = func(now event.Time) {
		sys.Push(task, 3e5)
		eng.At(now+7*event.Millisecond, gen)
	}
	gen(0)
	eng.Run(2 * event.Second)
	sum := 0.0
	for _, row := range m.MatrixPct() {
		for _, v := range row {
			sum += v
		}
	}
	if math.Abs(sum-100) > 0.01 {
		t.Fatalf("matrix sums to %.3f", sum)
	}
	esum := 0.0
	for _, v := range m.EffPct() {
		esum += v
	}
	if math.Abs(esum-100) > 0.01 {
		t.Fatalf("eff sums to %.3f", esum)
	}
}

func TestEmptySamplerReports(t *testing.T) {
	_, sys, _ := newRig()
	m2 := NewSampler(sys, power.Default())
	if r := m2.TLP(); r.TLP != 0 || r.IdlePct != 0 {
		t.Fatalf("empty sampler TLP %+v", r)
	}
	var zero [6]float64
	if m2.EffPct() != zero {
		t.Fatal("empty sampler eff not zero")
	}
	if pct := m2.ResidencyPct(platform.Little, []int{500}); pct[0] != 0 {
		t.Fatal("empty residency not zero")
	}
}
