// Package metrics implements the measurement methodology of §V and §VI: a
// 10 ms state sampler (the paper checks CPU states "at every 10ms") feeding
// the thread-level-parallelism matrix of Table IV, the Blake-et-al. TLP
// metric of Table III, the frequency-residency distributions of Figures 9
// and 10, the six-state efficiency decomposition of Table V, and whole-system
// energy via the power model. Frame and scenario performance trackers provide
// the FPS and latency metrics of Table II.
package metrics

import (
	"biglittle/internal/event"
	"biglittle/internal/platform"
	"biglittle/internal/power"
	"biglittle/internal/profile"
	"biglittle/internal/sched"
	"biglittle/internal/telemetry"
)

// SampleInterval is the paper's state-sampling period.
const SampleInterval = 10 * event.Millisecond

// EffState is one of Table V's six utilization-efficiency categories.
type EffState int

const (
	// EffMin: load under 50% but the core is already a little core at the
	// minimum frequency — capacity cannot be reduced further.
	EffMin EffState = iota
	// EffLt50: utilization below 50% with headroom to scale down.
	EffLt50
	// EffLt70: utilization in [50%, 70%).
	EffLt70
	// EffMid: utilization in [70%, 95%).
	EffMid
	// EffGt95: utilization at or above 95% — capacity under-provisioned.
	EffGt95
	// EffFull: a big core at maximum frequency saturated; the load exceeds
	// any available CPU capacity.
	EffFull
	effStates
)

func (e EffState) String() string {
	switch e {
	case EffMin:
		return "Min"
	case EffLt50:
		return "<50%"
	case EffLt70:
		return "<70%"
	case EffMid:
		return "70-95%"
	case EffGt95:
		return ">95%"
	default:
		return "Full"
	}
}

// Sampler observes the system every SampleInterval and accumulates the
// paper's characterization metrics. Attach with Start before running.
type Sampler struct {
	// Tel, when non-nil, receives a KindPower meter snapshot (Value in mW)
	// every SampleInterval — the Monsoon-style power counter track.
	Tel *telemetry.Collector

	// Prof, when non-nil, receives every power-model interval's per-core
	// power terms (the same ones fed to the meter) so it can attribute the
	// interval's energy to the tasks that ran in it. Nil disables the feed
	// at the cost of one pointer check per sample.
	Prof *profile.Profiler

	sys *sched.System
	pw  power.Params

	lastBusy  []event.Time
	lastDeep  []event.Time
	profCores []profile.CorePower // reused per-sample buffer for Prof

	// Matrix[b][l] counts samples with exactly b big and l little cores
	// active (Table IV).
	Matrix [5][5]int
	// Samples is the total number of 10 ms observations.
	Samples int
	// ActiveCoreSamples counts (core, sample) pairs with non-zero
	// utilization, split per state for Table V.
	Eff [effStates]int
	// TinySamples counts (tiny core, sample) pairs with non-zero
	// utilization — used by the tiny-core extension study.
	TinySamples int
	// utilSum accumulates per-core-type utilization for averages
	// (summed over online cores and samples).
	utilSum   map[platform.CoreType]float64
	utilCount map[platform.CoreType]int

	// Residency accumulates active time per (core type, MHz) — Figures 9/10
	// count only periods where the cluster had at least one active core.
	Residency map[platform.CoreType]map[int]event.Time

	meter power.Meter

	sampleFn event.Handler // cached method value: evaluating m.onSample allocates
	sampleEv event.Handle  // the pending sample (retained for snapshot capture)
	// clusterActive is reused across samples, indexed by cluster ID.
	clusterActive []bool
}

// NewSampler creates a sampler over sys using power model pw.
func NewSampler(sys *sched.System, pw power.Params) *Sampler {
	m := &Sampler{
		sys:      sys,
		pw:       pw,
		lastBusy: make([]event.Time, len(sys.SoC.Cores)),
		lastDeep: make([]event.Time, len(sys.SoC.Cores)),
		Residency: map[platform.CoreType]map[int]event.Time{
			platform.Little: {},
			platform.Big:    {},
			platform.Tiny:   {},
		},
		utilSum:       map[platform.CoreType]float64{},
		utilCount:     map[platform.CoreType]int{},
		clusterActive: make([]bool, len(sys.SoC.Clusters)),
	}
	m.sampleFn = m.onSample
	return m
}

// Start schedules periodic sampling.
func (m *Sampler) Start() {
	m.sampleEv = m.sys.Eng.After(SampleInterval, m.sampleFn)
}

func (m *Sampler) onSample(now event.Time) {
	m.sys.SyncAll(now)
	soc := m.sys.SoC
	little, big := 0, 0
	clusterActive := m.clusterActive
	clear(clusterActive)
	// Whole-system power accumulates exactly as power.SystemPowerMW would
	// (base rail first, then each online core in ID order) so the meter
	// reading is unchanged; keeping the per-core terms lets the profiler
	// attribute the very same energy the meter integrates.
	mw := m.pw.BaseMW
	m.profCores = m.profCores[:0]

	for id := range soc.Cores {
		core := &soc.Cores[id]
		if !core.Online {
			m.lastBusy[id] = m.sys.BusyNs(id)
			continue
		}
		busy := m.sys.BusyNs(id)
		util := sched.CoreBusyFraction(m.lastBusy[id], busy, SampleInterval)
		m.lastBusy[id] = busy
		deep := m.sys.DeepIdleNs(id)
		deepFrac := sched.CoreBusyFraction(m.lastDeep[id], deep, SampleInterval)
		m.lastDeep[id] = deep

		cl := soc.ClusterOf(id)
		cmw := m.pw.CorePowerDeepMW(core.Type, cl.CurMHz, util, deepFrac)
		mw += cmw
		if m.Prof != nil {
			m.profCores = append(m.profCores, profile.CorePower{Core: id, MW: cmw})
		}
		m.utilSum[core.Type] += util
		m.utilCount[core.Type]++

		if util <= 0 {
			continue
		}
		clusterActive[cl.ID] = true
		switch core.Type {
		case platform.Big:
			big++
		case platform.Tiny:
			m.TinySamples++
			little++ // tiny cores occupy the little axis of Table IV
		default:
			little++
		}
		m.Eff[classify(core.Type, cl, util)]++
	}

	if big > 4 {
		big = 4
	}
	if little > 4 {
		little = 4
	}
	m.Matrix[big][little]++
	m.Samples++

	for ci := range soc.Clusters {
		cl := &soc.Clusters[ci]
		if clusterActive[cl.ID] {
			m.Residency[cl.Type][cl.CurMHz] += SampleInterval
		}
	}

	m.meter.Add(SampleInterval, mw)
	if m.Prof != nil {
		m.Prof.OnPowerInterval(SampleInterval, m.pw.BaseMW, m.profCores)
	}
	if m.Tel != nil {
		m.Tel.Emit(telemetry.Event{
			At: now, Kind: telemetry.KindPower,
			Task: -1, Core: -1, FromCore: -1, Cluster: -1,
			Value: mw,
		})
	}
	m.sampleEv = m.sys.Eng.After(SampleInterval, m.sampleFn)
}

func classify(t platform.CoreType, cl *platform.Cluster, util float64) EffState {
	switch {
	case util >= 0.995 && t == platform.Big && cl.CurMHz == cl.MaxMHz():
		return EffFull
	case util >= 0.95:
		return EffGt95
	case util >= 0.70:
		return EffMid
	case util >= 0.50:
		return EffLt70
	case t == platform.Little && cl.CurMHz == cl.MinMHz():
		return EffMin
	default:
		return EffLt50
	}
}

// AvgUtil returns the mean utilization of online cores of the given type
// across all samples — the paper's "low CPU utilization" claim quantified.
func (m *Sampler) AvgUtil(t platform.CoreType) float64 {
	if m.utilCount[t] == 0 {
		return 0
	}
	return m.utilSum[t] / float64(m.utilCount[t])
}

// TinyActivePct returns the share of active core-samples served by tiny
// cores (0 on the standard two-cluster platform).
func (m *Sampler) TinyActivePct() float64 {
	total := 0
	for _, n := range m.Eff {
		total += n
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(m.TinySamples) / float64(total)
}

// AvgPowerMW returns average system power over the sampled run.
func (m *Sampler) AvgPowerMW() float64 { return m.meter.AvgMW() }

// EnergyMJ returns total system energy over the sampled run.
func (m *Sampler) EnergyMJ() float64 { return m.meter.EnergyMJ() }

// TLPReport is a Table III row.
type TLPReport struct {
	IdlePct       float64 // samples with no active core
	LittleOnlyPct float64 // non-idle samples with only little cores active
	BigPct        float64 // non-idle samples with >= 1 big core active
	TLP           float64 // Blake et al.: average active cores over non-idle samples
}

// TLP computes the Table III row from the accumulated matrix.
func (m *Sampler) TLP() TLPReport {
	var r TLPReport
	if m.Samples == 0 {
		return r
	}
	idle := m.Matrix[0][0]
	nonIdle := m.Samples - idle
	r.IdlePct = 100 * float64(idle) / float64(m.Samples)
	if nonIdle == 0 {
		return r
	}
	weighted, littleOnly, bigAny := 0, 0, 0
	for b := 0; b <= 4; b++ {
		for l := 0; l <= 4; l++ {
			n := m.Matrix[b][l]
			if b == 0 && l == 0 {
				continue
			}
			weighted += n * (b + l)
			if b == 0 {
				littleOnly += n
			} else {
				bigAny += n
			}
		}
	}
	r.LittleOnlyPct = 100 * float64(littleOnly) / float64(nonIdle)
	r.BigPct = 100 * float64(bigAny) / float64(nonIdle)
	r.TLP = float64(weighted) / float64(nonIdle)
	return r
}

// MatrixPct returns Table IV: the percentage of samples in each
// (big, little) active-core cell, including the idle cell [0][0].
func (m *Sampler) MatrixPct() [5][5]float64 {
	var out [5][5]float64
	if m.Samples == 0 {
		return out
	}
	for b := range m.Matrix {
		for l := range m.Matrix[b] {
			out[b][l] = 100 * float64(m.Matrix[b][l]) / float64(m.Samples)
		}
	}
	return out
}

// EffPct returns Table V: the percentage of active core-samples in each of
// the six efficiency states, ordered Min, <50%, <70%, 70-95%, >95%, Full.
func (m *Sampler) EffPct() [effStates]float64 {
	var out [effStates]float64
	total := 0
	for _, n := range m.Eff {
		total += n
	}
	if total == 0 {
		return out
	}
	for i, n := range m.Eff {
		out[i] = 100 * float64(n) / float64(total)
	}
	return out
}

// ResidencyPct returns the Figure 9/10 distribution for one core type:
// fraction of active time at each table frequency, in ascending frequency
// order aligned with freqs.
func (m *Sampler) ResidencyPct(t platform.CoreType, freqs []int) []float64 {
	var total event.Time
	for _, dt := range m.Residency[t] {
		total += dt
	}
	out := make([]float64, len(freqs))
	if total == 0 {
		return out
	}
	for i, f := range freqs {
		out[i] = 100 * float64(m.Residency[t][f]) / float64(total)
	}
	return out
}

// FPSTracker measures frame performance for the FPS-oriented applications:
// average FPS over the whole run and the worst 1-second window (the paper's
// "minimum FPS").
type FPSTracker struct {
	frames []event.Time
}

// FrameDone records a frame completion.
func (f *FPSTracker) FrameDone(now event.Time) { f.frames = append(f.frames, now) }

// Times returns the recorded frame-completion timestamps in order — the raw
// material for frame-time distributions.
func (f *FPSTracker) Times() []event.Time { return f.frames }

// Count returns total frames rendered.
func (f *FPSTracker) Count() int { return len(f.frames) }

// Avg returns frames per second over duration.
func (f *FPSTracker) Avg(duration event.Time) float64 {
	if duration <= 0 {
		return 0
	}
	return float64(len(f.frames)) / duration.Seconds()
}

// CountIn returns frames completed in [from, to).
func (f *FPSTracker) CountIn(from, to event.Time) int {
	n := 0
	for _, t := range f.frames {
		if t >= from && t < to {
			n++
		}
	}
	return n
}

// Min returns the lowest FPS over any aligned 1-second window of the run.
func (f *FPSTracker) Min(duration event.Time) float64 {
	windows := int(duration / event.Second)
	if windows == 0 {
		return f.Avg(duration)
	}
	counts := make([]int, windows)
	for _, t := range f.frames {
		w := int(t / event.Second)
		if w >= windows {
			w = windows - 1
		}
		counts[w]++
	}
	min := counts[0]
	for _, c := range counts[1:] {
		if c < min {
			min = c
		}
	}
	return float64(min)
}

// LatencyTracker accumulates interaction latencies for the latency-oriented
// applications: each user action's start-to-completion time.
type LatencyTracker struct {
	Total event.Time
	Max   event.Time
	N     int

	// Observe, if set, additionally receives each individual latency —
	// used to feed a telemetry histogram without storing the distribution
	// here.
	Observe func(d event.Time)
}

// Record adds one completed interaction.
func (l *LatencyTracker) Record(d event.Time) {
	l.Total += d
	if d > l.Max {
		l.Max = d
	}
	l.N++
	if l.Observe != nil {
		l.Observe(d)
	}
}

// Mean returns the average interaction latency.
func (l *LatencyTracker) Mean() event.Time {
	if l.N == 0 {
		return 0
	}
	return l.Total / event.Time(l.N)
}
