package metrics

import (
	"fmt"
	"sort"

	"biglittle/internal/event"
	"biglittle/internal/platform"
)

// Snap is the sampler's accumulated state for whole-simulation snapshot.
// Maps are flattened into sorted slices (and the per-type accumulators into
// fixed arrays indexed by platform.CoreType) so the encoded form is
// deterministic byte-for-byte.
type Snap struct {
	LastBusy []event.Time `json:"lastBusy"`
	LastDeep []event.Time `json:"lastDeep"`

	Matrix      [5][5]int  `json:"matrix"`
	Samples     int        `json:"samples"`
	Eff         [6]int     `json:"eff"`
	TinySamples int        `json:"tiny"`
	UtilSum     [3]float64 `json:"utilSum"`   // indexed by CoreType
	UtilCount   [3]int     `json:"utilCount"` // indexed by CoreType

	Residency []ResidencyEntry `json:"residency,omitempty"`

	EnergyMJ float64    `json:"energyMJ"`
	Elapsed  event.Time `json:"elapsed"`

	SamplePending bool       `json:"sampleP,omitempty"`
	SampleAt      event.Time `json:"sampleAt,omitempty"`
	SampleSeq     uint64     `json:"sampleSeq,omitempty"`
}

// ResidencyEntry is one (core type, frequency) → active time cell.
type ResidencyEntry struct {
	Type platform.CoreType `json:"type"`
	MHz  int               `json:"mhz"`
	Ns   event.Time        `json:"ns"`
}

// PendingEvents returns how many engine events the snapshot accounts for.
func (sn *Snap) PendingEvents() int {
	if sn.SamplePending {
		return 1
	}
	return 0
}

// Snapshot captures the sampler's accumulated state without modifying it.
func (m *Sampler) Snapshot() Snap {
	sn := Snap{
		LastBusy:    append([]event.Time(nil), m.lastBusy...),
		LastDeep:    append([]event.Time(nil), m.lastDeep...),
		Matrix:      m.Matrix,
		Samples:     m.Samples,
		Eff:         m.Eff,
		TinySamples: m.TinySamples,
		EnergyMJ:    m.meter.EnergyMJ(),
		Elapsed:     m.meter.Elapsed(),
	}
	for t, v := range m.utilSum {
		sn.UtilSum[t] = v
	}
	for t, n := range m.utilCount {
		sn.UtilCount[t] = n
	}
	for t, byMHz := range m.Residency {
		for mhz, ns := range byMHz {
			sn.Residency = append(sn.Residency, ResidencyEntry{Type: t, MHz: mhz, Ns: ns})
		}
	}
	sort.Slice(sn.Residency, func(i, j int) bool {
		a, b := sn.Residency[i], sn.Residency[j]
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		return a.MHz < b.MHz
	})
	if seq, ok := m.sampleEv.EventSeq(); ok {
		sn.SamplePending, sn.SampleAt, sn.SampleSeq = true, m.sampleEv.At(), seq
	}
	return sn
}

// Restore loads sn into a freshly built sampler; the engine must already be
// Reset to the capture point.
func (m *Sampler) Restore(sn *Snap) error {
	if len(sn.LastBusy) != len(m.lastBusy) || len(sn.LastDeep) != len(m.lastDeep) {
		return fmt.Errorf("metrics: snapshot has %d/%d core entries, sampler has %d",
			len(sn.LastBusy), len(sn.LastDeep), len(m.lastBusy))
	}
	copy(m.lastBusy, sn.LastBusy)
	copy(m.lastDeep, sn.LastDeep)
	m.Matrix = sn.Matrix
	m.Samples = sn.Samples
	m.Eff = sn.Eff
	m.TinySamples = sn.TinySamples
	for t := range sn.UtilSum {
		if sn.UtilSum[t] != 0 {
			m.utilSum[platform.CoreType(t)] = sn.UtilSum[t]
		}
		if sn.UtilCount[t] != 0 {
			m.utilCount[platform.CoreType(t)] = sn.UtilCount[t]
		}
	}
	for _, e := range sn.Residency {
		byMHz := m.Residency[e.Type]
		if byMHz == nil {
			return fmt.Errorf("metrics: snapshot residency for unknown core type %d", e.Type)
		}
		byMHz[e.MHz] = e.Ns
	}
	m.meter.Restore(sn.EnergyMJ, sn.Elapsed)
	if sn.SamplePending {
		m.sampleEv = m.sys.Eng.ScheduleAt(sn.SampleAt, sn.SampleSeq, m.sampleFn)
	}
	return nil
}
