package check

import (
	"fmt"
	"math"

	"biglittle/internal/core"
	"biglittle/internal/event"
	"biglittle/internal/metrics"
)

// CheckResult validates a finished core.Result for internal consistency —
// the cross-metric identities that must hold however the run went. Unlike
// the Auditor it needs no live system, so it also applies to results loaded
// from the lab cache or a JSON file. It returns every violation found (nil
// when the result is consistent).
func CheckResult(res core.Result) []Violation {
	var out []Violation
	add := func(invariant, format string, args ...any) {
		out = append(out, Violation{At: res.Duration, Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
	}

	if res.Duration <= 0 {
		add("result-duration", "non-positive duration %v", res.Duration)
		return out
	}
	if res.EnergyMJ < 0 || res.AvgPowerMW < 0 {
		add("result-energy", "negative energy %v mJ or power %v mW", res.EnergyMJ, res.AvgPowerMW)
	}
	// The meter integrates whole samples only, so energy and average power
	// agree over the sampled time: within one SampleInterval of Duration.
	slack := res.AvgPowerMW*2*metrics.SampleInterval.Seconds() + 1e-6
	if diff := math.Abs(res.EnergyMJ - res.AvgPowerMW*res.Duration.Seconds()); diff > slack {
		add("result-energy", "EnergyMJ %.3f vs AvgPowerMW×Duration %.3f differ by %.3f (> %.3f)",
			res.EnergyMJ, res.AvgPowerMW*res.Duration.Seconds(), diff, slack)
	}

	checkPctTable := func(name string, cells []float64) {
		sum := 0.0
		for _, v := range cells {
			if v < -1e-9 || v > 100+1e-9 {
				add(name, "cell %v outside [0, 100]", v)
			}
			sum += v
		}
		if sum != 0 && math.Abs(sum-100) > 1e-6 {
			add(name, "percentages sum to %v, want 100 (or 0 for an empty run)", sum)
		}
	}
	var matrix []float64
	for b := range res.Matrix {
		matrix = append(matrix, res.Matrix[b][:]...)
	}
	checkPctTable("result-matrix", matrix)
	checkPctTable("result-eff", res.Eff[:])
	checkPctTable("result-little-residency", res.LittleResidency)
	checkPctTable("result-big-residency", res.BigResidency)
	if len(res.LittleResidency) != len(res.LittleFreqs) {
		add("result-little-residency", "%d residency bins for %d table frequencies", len(res.LittleResidency), len(res.LittleFreqs))
	}
	if len(res.BigResidency) != len(res.BigFreqs) {
		add("result-big-residency", "%d residency bins for %d table frequencies", len(res.BigResidency), len(res.BigFreqs))
	}

	if res.TLP.TLP < 0 || res.TLP.TLP > 8 {
		add("result-tlp", "TLP %v outside [0, 8]", res.TLP.TLP)
	}
	if res.TLP.IdlePct < -1e-9 || res.TLP.IdlePct > 100+1e-9 {
		add("result-tlp", "idle %v%% outside [0, 100]", res.TLP.IdlePct)
	}
	if s := res.TLP.LittleOnlyPct + res.TLP.BigPct; s != 0 && math.Abs(s-100) > 1e-6 {
		add("result-tlp", "little-only %v%% + big %v%% = %v, want 100", res.TLP.LittleOnlyPct, res.TLP.BigPct, s)
	}
	if v := res.AvgLittleUtil; v < 0 || v > 1 {
		add("result-util", "average little utilization %v outside [0, 1]", v)
	}
	if v := res.AvgBigUtil; v < 0 || v > 1 {
		add("result-util", "average big utilization %v outside [0, 1]", v)
	}
	if res.TinyActivePct < 0 || res.TinyActivePct > 100 {
		add("result-util", "tiny active share %v%% outside [0, 100]", res.TinyActivePct)
	}

	if res.MeanLatency > res.WorstLatency {
		add("result-latency", "mean latency %v exceeds worst %v", res.MeanLatency, res.WorstLatency)
	}
	if res.Interactions > 0 {
		// Mean is Total/N in integer nanoseconds: Mean·N <= Total < (Mean+1)·N.
		n := event.Time(res.Interactions)
		if res.MeanLatency*n > res.TotalLatency || res.TotalLatency >= (res.MeanLatency+1)*n {
			add("result-latency", "mean %v × %d interactions inconsistent with total %v", res.MeanLatency, res.Interactions, res.TotalLatency)
		}
	}
	if diff := math.Abs(res.AvgFPS*res.Duration.Seconds() - float64(res.Frames)); diff > 1e-6 {
		add("result-fps", "AvgFPS %v × duration %v inconsistent with %d frames", res.AvgFPS, res.Duration, res.Frames)
	}
	// The half-window counts exclude frames completing at exactly t=Duration,
	// which the total includes; allow that boundary.
	half := res.Duration / 2
	halves := res.FPSFirstHalf*half.Seconds() + res.FPSSecondHalf*(res.Duration-half).Seconds()
	if halves > float64(res.Frames)+1e-6 || float64(res.Frames)-halves > 4+1e-6 {
		add("result-fps", "half-window frames %.2f inconsistent with total %d", halves, res.Frames)
	}

	taskMig := 0
	var taskEnergyMJ float64
	for _, ts := range res.TaskStats {
		taskMig += ts.Migrations
		if ts.EnergyJ < 0 || ts.LittleMs < 0 || ts.BigMs < 0 || ts.TinyMs < 0 {
			add("result-tasks", "task %s has negative accounting: %+v", ts.Name, ts)
		}
		taskEnergyMJ += ts.EnergyJ * 1000
	}
	if taskMig != res.HMPMigrations {
		add("result-migrations", "per-task migrations sum to %d but HMPMigrations is %d", taskMig, res.HMPMigrations)
	}
	// Per-task energy is the marginal active power only; the meter adds the
	// base rail and idle overheads on top, so the attributed total must fit
	// strictly inside the metered total on any run that metered at all.
	if res.EnergyMJ > 0 && taskEnergyMJ > res.EnergyMJ*(1+1e-9) {
		add("result-tasks", "attributed task energy %.3f mJ exceeds metered %.3f mJ", taskEnergyMJ, res.EnergyMJ)
	}

	if res.ThrottledPct < 0 || res.ThrottledPct > 100 {
		add("result-thermal", "throttled %v%% outside [0, 100]", res.ThrottledPct)
	}
	if res.MaxTempC < 0 {
		add("result-thermal", "negative max temperature %v", res.MaxTempC)
	}
	return out
}
