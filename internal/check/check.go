// Package check is the simulator's runtime correctness kit: an invariant
// Auditor that attaches to a live scheduler system and continuously verifies
// the conservation laws the paper's conclusions rest on — cluster frequency
// always drawn from the legal table (§II's shared per-cluster clock), the
// "one little core always online" hotplug constraint, virtual time and busy
// counters monotone, per-core busy time bounded by wall time, energy equal to
// the independent integral of modeled power, per-task run time summing
// exactly to per-core busy time, and migration counters reconciling with the
// scheduler's event stream.
//
// The disabled path is a nil Auditor (or an unset Config.Check hook): like
// telemetry.Collector and profile.Profiler, every simulation holds at most
// one pointer check per hook site, so unaudited runs pay nothing.
//
// The auditor is a pure observer: it schedules its own 10 ms sampling event
// immediately after the metrics sampler's so both read identical state, it
// chains (never replaces) the scheduler's TickHook and the telemetry
// OnEvent subscriber, and it never mutates the system — an audited run
// produces byte-identical results to an unaudited one, which internal/lab's
// audit mode exploits to verify cached results against fresh simulations.
package check

import (
	"fmt"
	"math"
	"strings"

	"biglittle/internal/event"
	"biglittle/internal/metrics"
	"biglittle/internal/platform"
	"biglittle/internal/power"
	"biglittle/internal/sched"
	"biglittle/internal/telemetry"
)

// DefaultMaxViolations bounds the recorded violation list; a systemically
// broken run would otherwise record one violation per tick.
const DefaultMaxViolations = 64

// EnergyTolerance is the maximum relative disagreement allowed between the
// power meter and the auditor's independent power integral. The two are
// computed from the same state in the same order, so the observed error is
// zero; 0.1% leaves room for future power-model refactoring that reorders
// float accumulation.
const EnergyTolerance = 0.001

// Violation is one observed invariant breach.
type Violation struct {
	At        event.Time `json:"at"`
	Invariant string     `json:"invariant"`
	Detail    string     `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%v [%s] %s", v.At, v.Invariant, v.Detail)
}

// Report summarizes an audited run: how much was checked, the two energy
// accountings, the migration reconciliation, and every violation found.
type Report struct {
	Ticks   int   `json:"ticks"`
	Samples int   `json:"samples"`
	Checks  int64 `json:"checks"`

	EnergyMeterMJ    float64 `json:"energy_meter_mj"`
	EnergyIntegralMJ float64 `json:"energy_integral_mj"`
	MigrationEvents  int64   `json:"migration_events"`
	TaskMigrations   int     `json:"task_migrations"`

	Violations []Violation `json:"violations,omitempty"`
	// Dropped counts violations beyond the MaxViolations cap.
	Dropped int `json:"dropped,omitempty"`
}

// Ok reports whether the audited run violated no invariant.
func (r Report) Ok() bool { return len(r.Violations) == 0 && r.Dropped == 0 }

// String renders the report as a short text block, one violation per line.
func (r Report) String() string {
	var b strings.Builder
	status := "ok"
	if !r.Ok() {
		status = fmt.Sprintf("%d VIOLATIONS", len(r.Violations)+r.Dropped)
	}
	fmt.Fprintf(&b, "check: %s — %d invariant checks over %d ticks, %d samples\n",
		status, r.Checks, r.Ticks, r.Samples)
	fmt.Fprintf(&b, "check: energy meter %.3f mJ vs independent integral %.3f mJ; %d task migrations vs %d sched events\n",
		r.EnergyMeterMJ, r.EnergyIntegralMJ, r.TaskMigrations, r.MigrationEvents)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	if r.Dropped > 0 {
		fmt.Fprintf(&b, "  ... and %d more violations beyond the cap\n", r.Dropped)
	}
	return b.String()
}

// Auditor is the runtime invariant checker. Create with New, pass as
// core.Config.Check (or session.Config.Check), and read Report or Err after
// the run. All methods are safe on a nil receiver.
//
// Per scheduler tick it verifies: virtual time monotone, every cluster's
// frequency in its table and under its thermal cap, at least one little core
// online, offline cores with empty run queues, runnable tasks only on online
// cores, and per-core busy time monotone and bounded by wall time. Per 10 ms
// sample it re-integrates system power from busy-time deltas, mirroring the
// metrics sampler's accumulation order exactly. From the telemetry stream it
// validates every frequency-change and hotplug event and counts HMP
// migrations. Finish reconciles the integral against the meter, per-task run
// time against per-core busy time, and migration counters against events.
type Auditor struct {
	// MaxViolations caps the recorded violation list (DefaultMaxViolations
	// when zero); excess violations are counted in Report.Dropped.
	MaxViolations int

	sys *sched.System
	pw  power.Params

	lastTick   event.Time
	haveTick   bool
	lastSample event.Time
	sampleFn   event.Handler // cached method value: evaluating a.onSample allocates

	lastBusy []event.Time // per-core BusyNs at the last audit sample
	lastDeep []event.Time // per-core DeepIdleNs at the last audit sample
	tickBusy []event.Time // per-core BusyNs at the last tick (monotonicity)

	integralMJ float64
	migEvents  int64

	rep      Report
	finished bool
}

// New returns an enabled auditor with default limits.
func New() *Auditor { return &Auditor{} }

// Attach installs the auditor on a live system. It must be called after the
// metrics sampler's Start and before any workload is built, so the auditor's
// 10 ms sampling event fires immediately after the sampler's at every shared
// timestamp and both observe identical frequency and busy-time state
// (core.Run and session.NewLive do this via the Config.Check hook). Safe on
// nil; a second Attach is ignored.
func (a *Auditor) Attach(sys *sched.System, pw power.Params) {
	if a == nil || a.sys != nil {
		return
	}
	a.sys = sys
	a.pw = pw
	n := len(sys.SoC.Cores)
	a.lastBusy = make([]event.Time, n)
	a.lastDeep = make([]event.Time, n)
	a.tickBusy = make([]event.Time, n)

	// Migration reconciliation and event validation need the scheduler's
	// telemetry stream. Chain onto an existing collector; if the run has
	// none, install a minimal one (exact aggregates, tiny ring). Emission is
	// pure recording, so this does not perturb the simulation.
	if sys.Tel == nil {
		sys.Tel = &telemetry.Collector{MaxEvents: 1}
	}
	tel := sys.Tel
	prevOn := tel.OnEvent
	tel.OnEvent = func(ev telemetry.Event) {
		a.onEvent(ev)
		if prevOn != nil {
			prevOn(ev)
		}
	}

	prevTick := sys.TickHook
	sys.TickHook = func(now event.Time) {
		a.onTick(now)
		if prevTick != nil {
			prevTick(now)
		}
	}

	a.sampleFn = a.onSample
	sys.Eng.After(metrics.SampleInterval, a.sampleFn)
}

// onTick runs at the end of every scheduler tick, after SyncAll.
func (a *Auditor) onTick(now event.Time) {
	a.rep.Ticks++
	a.rep.Checks++
	if a.haveTick && now <= a.lastTick {
		a.fail(now, "time-monotone", fmt.Sprintf("tick at %v not after previous tick at %v", now, a.lastTick))
	}
	a.haveTick = true
	a.lastTick = now
	a.checkState(now)
}

// checkState verifies the platform and scheduler invariants that must hold
// at any consistent (synced) instant.
func (a *Auditor) checkState(now event.Time) {
	soc := a.sys.SoC
	for ci := range soc.Clusters {
		cl := &soc.Clusters[ci]
		a.rep.Checks++
		if !inTable(cl.FreqsMHz, cl.CurMHz) {
			a.fail(now, "freq-table", fmt.Sprintf("cluster %d (%v) at %d MHz, not in its frequency table", ci, cl.Type, cl.CurMHz))
		}
		a.rep.Checks++
		if cl.CapMHz > 0 && cl.CurMHz > cl.CapMHz {
			a.fail(now, "freq-cap", fmt.Sprintf("cluster %d (%v) at %d MHz above its thermal cap %d", ci, cl.Type, cl.CurMHz, cl.CapMHz))
		}
	}
	a.rep.Checks++
	if soc.OnlineCount(platform.Little) < 1 {
		a.fail(now, "little-online", "no little core online (§II hotplug constraint)")
	}
	for id := range soc.Cores {
		busy := a.sys.BusyNs(id)
		a.rep.Checks++
		if busy < a.tickBusy[id] {
			a.fail(now, "busy-monotone", fmt.Sprintf("core %d busy time went backwards: %v -> %v", id, a.tickBusy[id], busy))
		}
		a.tickBusy[id] = busy
		a.rep.Checks++
		if busy > now {
			a.fail(now, "busy-bound", fmt.Sprintf("core %d busy %v exceeds elapsed time %v", id, busy, now))
		}
		a.rep.Checks++
		if !soc.Cores[id].Online && a.sys.QueueLen(id) != 0 {
			a.fail(now, "offline-queue", fmt.Sprintf("offline core %d has %d queued tasks", id, a.sys.QueueLen(id)))
		}
	}
	for _, t := range a.sys.Tasks() {
		st := t.CurState()
		if st != sched.Runnable && st != sched.Running {
			continue
		}
		a.rep.Checks++
		if cpu := t.CPU(); cpu < 0 || !soc.Cores[cpu].Online {
			a.fail(now, "offline-task", fmt.Sprintf("task %d (%s) %v on offline core %d", t.ID, t.Name, st, cpu))
		}
	}
}

// onEvent validates state-changing telemetry events as they happen and
// counts the migrations that the per-task counters must reconcile with.
func (a *Auditor) onEvent(ev telemetry.Event) {
	switch ev.Kind {
	case telemetry.KindMigration:
		switch ev.Reason {
		case telemetry.ReasonUpThreshold, telemetry.ReasonDownThreshold, telemetry.ReasonPolicy:
			a.migEvents++
		}
	case telemetry.KindFreq:
		a.rep.Checks++
		cl := &a.sys.SoC.Clusters[ev.Cluster]
		if !inTable(cl.FreqsMHz, ev.MHz) {
			a.fail(ev.At, "freq-table", fmt.Sprintf("freq event set cluster %d to %d MHz, not in its table", ev.Cluster, ev.MHz))
		}
	case telemetry.KindHotplug:
		a.rep.Checks++
		if a.sys.SoC.OnlineCount(platform.Little) < 1 {
			a.fail(ev.At, "little-online", fmt.Sprintf("hotplug %s of core %d left no little core online", ev.Reason, ev.Core))
		}
	}
}

// onSample fires every metrics.SampleInterval, immediately after the metrics
// sampler (Attach ordering guarantees the event sequence), and independently
// integrates system power from the same busy-time deltas.
func (a *Auditor) onSample(now event.Time) {
	a.rep.Samples++
	a.rep.Checks++
	if now <= a.lastSample {
		a.fail(now, "time-monotone", fmt.Sprintf("sample at %v not after previous sample at %v", now, a.lastSample))
	}
	a.lastSample = now
	a.sys.SyncAll(now)
	soc := a.sys.SoC
	// Mirror the metrics sampler's accumulation exactly — base rail first,
	// then each online core in ID order — so a healthy run's integral agrees
	// with the meter bit-for-bit.
	mw := a.pw.BaseMW
	for id := range soc.Cores {
		core := &soc.Cores[id]
		busy := a.sys.BusyNs(id)
		if !core.Online {
			a.lastBusy[id] = busy
			continue
		}
		delta := busy - a.lastBusy[id]
		a.rep.Checks++
		if delta < 0 || delta > metrics.SampleInterval {
			a.fail(now, "sample-bound", fmt.Sprintf("core %d ran %v within a %v sample", id, delta, metrics.SampleInterval))
		}
		util := sched.CoreBusyFraction(a.lastBusy[id], busy, metrics.SampleInterval)
		a.lastBusy[id] = busy
		deep := a.sys.DeepIdleNs(id)
		a.rep.Checks++
		if deep < a.lastDeep[id] {
			a.fail(now, "deep-monotone", fmt.Sprintf("core %d deep-idle time went backwards: %v -> %v", id, a.lastDeep[id], deep))
		}
		deepFrac := sched.CoreBusyFraction(a.lastDeep[id], deep, metrics.SampleInterval)
		a.lastDeep[id] = deep
		cl := soc.ClusterOf(id)
		mw += a.pw.CorePowerDeepMW(core.Type, cl.CurMHz, util, deepFrac)
	}
	a.integralMJ += mw * metrics.SampleInterval.Seconds()
	a.sys.Eng.After(metrics.SampleInterval, a.sampleFn)
}

// Finish runs the end-of-run conservation checks: the energy integral
// against the meter reading, per-task run time against per-core busy time
// (exact, integer nanoseconds), per-core busy time against wall time, and
// task migration counters against the scheduler's event stream. core.Run and
// session.Live call it after the result is assembled; it is idempotent and
// safe on nil or unattached auditors.
func (a *Auditor) Finish(elapsed event.Time, meterMJ float64) {
	if a == nil || a.sys == nil || a.finished {
		return
	}
	a.finished = true
	a.rep.EnergyMeterMJ = meterMJ
	a.rep.EnergyIntegralMJ = a.integralMJ
	a.rep.Checks++
	if diff := math.Abs(meterMJ - a.integralMJ); diff > 1e-9 {
		tol := EnergyTolerance * math.Max(math.Abs(meterMJ), math.Abs(a.integralMJ))
		if diff > tol {
			a.fail(elapsed, "energy-integral", fmt.Sprintf("meter %.6f mJ vs independent power integral %.6f mJ (diff %.6f > tolerance %.6f)",
				meterMJ, a.integralMJ, diff, tol))
		}
	}

	// Run-time conservation: both sides of this identity advance in the same
	// sched.sync call, so they agree exactly at any instant — no final
	// SyncAll needed (and none is done: the auditor never mutates state the
	// result was assembled from).
	var taskNs, coreBusy event.Time
	taskMig := 0
	for _, t := range a.sys.Tasks() {
		taskNs += t.BigRanNs + t.LittleRanNs + t.TinyRanNs
		taskMig += t.Migrations
	}
	soc := a.sys.SoC
	for id := range soc.Cores {
		busy := a.sys.BusyNs(id)
		coreBusy += busy
		a.rep.Checks++
		if busy > elapsed {
			a.fail(elapsed, "busy-elapsed", fmt.Sprintf("core %d busy %v exceeds wall time %v", id, busy, elapsed))
		}
	}
	a.rep.Checks++
	if taskNs != coreBusy {
		a.fail(elapsed, "runtime-conservation", fmt.Sprintf("per-task run time %v != per-core busy time %v", taskNs, coreBusy))
	}

	a.rep.TaskMigrations = taskMig
	a.rep.MigrationEvents = a.migEvents
	a.rep.Checks++
	if int64(taskMig) != a.migEvents {
		a.fail(elapsed, "migration-reconcile", fmt.Sprintf("task migration counters sum to %d but the scheduler emitted %d threshold/policy migration events",
			taskMig, a.migEvents))
	}
}

// Report returns a copy of the audit report so far (complete after Finish).
func (a *Auditor) Report() Report {
	if a == nil {
		return Report{}
	}
	rep := a.rep
	rep.Violations = append([]Violation(nil), a.rep.Violations...)
	return rep
}

// Err returns nil when no invariant was violated, else an error naming the
// first violation and the total count.
func (a *Auditor) Err() error {
	if a == nil || a.rep.Ok() {
		return nil
	}
	return fmt.Errorf("check: %d invariant violations, first: %s",
		len(a.rep.Violations)+a.rep.Dropped, a.rep.Violations[0])
}

func (a *Auditor) fail(at event.Time, invariant, detail string) {
	max := a.MaxViolations
	if max <= 0 {
		max = DefaultMaxViolations
	}
	if len(a.rep.Violations) >= max {
		a.rep.Dropped++
		return
	}
	a.rep.Violations = append(a.rep.Violations, Violation{At: at, Invariant: invariant, Detail: detail})
}

func inTable(table []int, mhz int) bool {
	for _, f := range table {
		if f == mhz {
			return true
		}
	}
	return false
}
