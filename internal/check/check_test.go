package check

import (
	"reflect"
	"strings"
	"testing"

	"biglittle/internal/apps"
	"biglittle/internal/core"
	"biglittle/internal/event"
	"biglittle/internal/metrics"
	"biglittle/internal/platform"
	"biglittle/internal/power"
	"biglittle/internal/sched"
)

func quickConfig(app apps.App, dur event.Time) core.Config {
	cfg := core.DefaultConfig(app)
	cfg.Duration = dur
	return cfg
}

func TestAuditorCleanRun(t *testing.T) {
	app, err := apps.ByName("bbench")
	if err != nil {
		t.Fatal(err)
	}
	aud := New()
	cfg := quickConfig(app, 2*event.Second)
	cfg.Check = aud
	core.Run(cfg)

	rep := aud.Report()
	if !rep.Ok() {
		t.Fatalf("clean run reported violations:\n%s", rep)
	}
	if aud.Err() != nil {
		t.Fatalf("Err() = %v on a clean run", aud.Err())
	}
	if rep.Ticks == 0 || rep.Samples == 0 || rep.Checks == 0 {
		t.Fatalf("auditor did not observe the run: %+v", rep)
	}
	// The integral mirrors the meter's accumulation order, so a healthy run
	// agrees bit for bit — far inside the 0.1% tolerance.
	if rep.EnergyMeterMJ != rep.EnergyIntegralMJ {
		t.Errorf("energy meter %v != independent integral %v", rep.EnergyMeterMJ, rep.EnergyIntegralMJ)
	}
	if rep.EnergyMeterMJ <= 0 {
		t.Errorf("no energy metered: %+v", rep)
	}
	if !strings.Contains(rep.String(), "check: ok") {
		t.Errorf("report string missing ok status:\n%s", rep)
	}
}

// TestAuditorAllAppsAllConfigs is the acceptance sweep: every bundled app on
// every §V-C hotplug configuration, audited, with zero violations.
func TestAuditorAllAppsAllConfigs(t *testing.T) {
	dur := 2 * event.Second
	if testing.Short() {
		dur = 500 * event.Millisecond
	}
	for _, app := range apps.All() {
		for _, cc := range platform.StudyConfigs() {
			aud := New()
			cfg := quickConfig(app, dur)
			cfg.Cores = cc
			cfg.Check = aud
			r := core.Run(cfg)
			if err := aud.Err(); err != nil {
				t.Errorf("%s on %v: %v\n%s", app.Name, cc, err, aud.Report())
			}
			if vs := CheckResult(r); len(vs) != 0 {
				t.Errorf("%s on %v: result self-check failed: %v", app.Name, cc, vs)
			}
		}
	}
}

// TestAuditorPureObserver is the property lab's audit mode relies on: an
// audited run produces exactly the same Result as an unaudited one.
func TestAuditorPureObserver(t *testing.T) {
	app, err := apps.ByName("angry_bird")
	if err != nil {
		t.Fatal(err)
	}
	plain := core.Run(quickConfig(app, 2*event.Second))
	cfg := quickConfig(app, 2*event.Second)
	cfg.Check = New()
	audited := core.Run(cfg)
	if !reflect.DeepEqual(plain, audited) {
		t.Fatalf("audited run diverged from unaudited run:\nplain:   %+v\naudited: %+v", plain, audited)
	}
}

// TestAuditorDetectsCorruption injects an illegal cluster frequency mid-run
// through the OnSystem extension point and expects the auditor to flag it.
func TestAuditorDetectsCorruption(t *testing.T) {
	app, err := apps.ByName("pdf_reader")
	if err != nil {
		t.Fatal(err)
	}
	aud := New()
	cfg := quickConfig(app, 1*event.Second)
	cfg.Check = aud
	cfg.OnSystem = func(sys *sched.System) {
		// Half a tick off any governor sample point, so the corruption
		// survives until the next tick's audit instead of being overwritten
		// by a governor decision first.
		sys.Eng.After(500*event.Millisecond+500*event.Microsecond, func(now event.Time) {
			sys.SoC.Clusters[0].CurMHz = 12345 // not in any frequency table
		})
	}
	core.Run(cfg)

	rep := aud.Report()
	if rep.Ok() {
		t.Fatal("auditor missed an illegal cluster frequency")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Invariant == "freq-table" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a freq-table violation, got:\n%s", rep)
	}
	if aud.Err() == nil {
		t.Fatal("Err() = nil despite violations")
	}
	if !strings.Contains(rep.String(), "VIOLATIONS") {
		t.Errorf("report string missing violation status:\n%s", rep)
	}
}

// TestAuditorViolationCap: a persistently broken run must not accumulate
// unbounded violations.
func TestAuditorViolationCap(t *testing.T) {
	app, err := apps.ByName("pdf_reader")
	if err != nil {
		t.Fatal(err)
	}
	aud := New()
	aud.MaxViolations = 4
	cfg := quickConfig(app, 1*event.Second)
	cfg.Check = aud
	cfg.OnSystem = func(sys *sched.System) {
		sys.SoC.Clusters[0].CurMHz = 12345 // broken from the first tick on
	}
	core.Run(cfg)

	rep := aud.Report()
	if len(rep.Violations) != 4 {
		t.Fatalf("recorded %d violations, want cap of 4", len(rep.Violations))
	}
	if rep.Dropped == 0 {
		t.Fatal("no dropped violations counted beyond the cap")
	}
}

// TestFinishReconciliation drives Finish directly against a bare system to
// exercise the end-of-run checks without a workload.
func TestFinishReconciliation(t *testing.T) {
	eng := event.New()
	soc := platform.Exynos5422()
	sys := sched.New(eng, soc, sched.DefaultConfig())
	sys.Start()
	aud := New()
	aud.Attach(sys, power.Default())
	eng.Run(100 * event.Millisecond)

	// A wildly wrong meter reading must trip the energy reconciliation.
	aud.Finish(100*event.Millisecond, 1e9)
	rep := aud.Report()
	if rep.Ok() {
		t.Fatal("Finish accepted a meter reading 1e9 mJ away from the integral")
	}
	if rep.Violations[0].Invariant != "energy-integral" {
		t.Fatalf("expected energy-integral violation, got %v", rep.Violations[0])
	}

	// Finish is idempotent: a second call with different numbers is ignored.
	before := aud.Report()
	aud.Finish(200*event.Millisecond, 0)
	after := aud.Report()
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("second Finish changed the report:\nbefore: %+v\nafter:  %+v", before, after)
	}
}

func TestAuditorNilSafety(t *testing.T) {
	var aud *Auditor
	aud.Attach(nil, power.Params{}) // must not panic
	aud.Finish(event.Second, 0)
	if rep := aud.Report(); !rep.Ok() {
		t.Fatalf("nil auditor report not ok: %+v", rep)
	}
	if aud.Err() != nil {
		t.Fatalf("nil auditor Err() = %v", aud.Err())
	}

	// The typed-nil interface trap: a nil *Auditor stored in Config.Check is
	// a non-nil interface, so Run calls its methods — they must no-op.
	app, err := apps.ByName("pdf_reader")
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig(app, 200*event.Millisecond)
	cfg.Check = aud
	core.Run(cfg) // must not panic
}

func TestAuditorDoubleAttach(t *testing.T) {
	eng := event.New()
	soc := platform.Exynos5422()
	sys := sched.New(eng, soc, sched.DefaultConfig())
	sys.Start()
	sampler := metrics.NewSampler(sys, power.Default())
	sampler.Start()
	aud := New()
	aud.Attach(sys, power.Default())
	aud.Attach(sys, power.Default()) // ignored: one auditor observes one run
	eng.Run(50 * event.Millisecond)
	aud.Finish(50*event.Millisecond, sampler.EnergyMJ())
	rep := aud.Report()
	if !rep.Ok() {
		t.Fatalf("double attach corrupted the audit:\n%s", rep)
	}
	// One sampling chain, not two: 50 ms / 10 ms = 5 samples.
	if rep.Samples != 5 {
		t.Fatalf("got %d samples over 50 ms, want 5 (double attach must not double-sample)", rep.Samples)
	}
}

func TestCheckResult(t *testing.T) {
	app, err := apps.ByName("browser")
	if err != nil {
		t.Fatal(err)
	}
	res := core.Run(quickConfig(app, 2*event.Second))
	if vs := CheckResult(res); len(vs) != 0 {
		t.Fatalf("clean result reported violations: %v", vs)
	}

	corrupt := []struct {
		name      string
		invariant string
		mutate    func(*core.Result)
	}{
		{"negative energy", "result-energy", func(r *core.Result) { r.EnergyMJ = -1 }},
		{"energy power mismatch", "result-energy", func(r *core.Result) { r.AvgPowerMW *= 2 }},
		{"residency length", "result-little-residency", func(r *core.Result) { r.LittleResidency = r.LittleResidency[:1] }},
		{"migration mismatch", "result-migrations", func(r *core.Result) { r.HMPMigrations++ }},
		{"mean above worst", "result-latency", func(r *core.Result) { r.MeanLatency = r.WorstLatency + event.Second }},
		{"throttled range", "result-thermal", func(r *core.Result) { r.ThrottledPct = 150 }},
		{"tlp range", "result-tlp", func(r *core.Result) { r.TLP.TLP = -3 }},
		{"util range", "result-util", func(r *core.Result) { r.AvgBigUtil = 1.5 }},
		{"fps mismatch", "result-fps", func(r *core.Result) { r.Frames += 1000 }},
		{"duration", "result-duration", func(r *core.Result) { r.Duration = 0 }},
	}
	for _, tc := range corrupt {
		r := res
		tc.mutate(&r)
		vs := CheckResult(r)
		found := false
		for _, v := range vs {
			if v.Invariant == tc.invariant {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: expected a %s violation, got %v", tc.name, tc.invariant, vs)
		}
	}
}

// BenchmarkAuditorOff/On quantify the auditor's cost: Off is the one
// pointer-check-per-site disabled path (the "no measurable overhead"
// acceptance bar), On the full invariant sweep.
func benchmarkRun(b *testing.B, audit bool) {
	app, err := apps.ByName("eternity_warrior")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := quickConfig(app, 4*event.Second)
		if audit {
			cfg.Check = New()
		}
		core.Run(cfg)
	}
}

func BenchmarkAuditorOff(b *testing.B) { benchmarkRun(b, false) }
func BenchmarkAuditorOn(b *testing.B)  { benchmarkRun(b, true) }
