package thermal

import (
	"testing"

	"biglittle/internal/event"
	"biglittle/internal/governor"
	"biglittle/internal/platform"
	"biglittle/internal/power"
	"biglittle/internal/sched"
)

func rig() (*event.Engine, *sched.System) {
	eng := event.New()
	sys := sched.New(eng, platform.Exynos5422(), sched.DefaultConfig())
	sys.Start()
	governor.NewInteractive(sys, governor.DefaultInteractive()).Start()
	return eng, sys
}

func stress(sys *sched.System, n int) {
	for i := 0; i < n; i++ {
		t := sys.NewTask("hog", 2.0)
		sys.Push(t, 1e15)
	}
}

func TestIdleStaysAmbient(t *testing.T) {
	eng, sys := rig()
	m := Attach(sys, power.Default(), Default())
	m.Start()
	eng.Run(10 * event.Second)
	for ci, temp := range m.TempC {
		if temp > m.Par.AmbientC+3 {
			t.Fatalf("cluster %d at %.1fC while idle", ci, temp)
		}
	}
	if m.ThrottledNs != 0 {
		t.Fatal("throttled while idle")
	}
}

func TestSustainedLoadTripsAndCaps(t *testing.T) {
	eng, sys := rig()
	m := Attach(sys, power.Default(), Default())
	m.Start()
	stress(sys, 4)
	eng.Run(40 * event.Second)

	if m.MaxTempC <= m.Par.TripC {
		t.Fatalf("max temp %.1fC never tripped (trip %.1fC)", m.MaxTempC, m.Par.TripC)
	}
	if m.ThrottledNs == 0 {
		t.Fatal("no throttling recorded under 4-thread stress")
	}
	// The critical hotplug must bound the temperature near CriticalC.
	if m.MaxTempC > m.Par.CriticalC+5 {
		t.Fatalf("max temp %.1fC far above critical %.1fC", m.MaxTempC, m.Par.CriticalC)
	}
	bc := sys.SoC.ClusterByType(platform.Big)
	if bc.CapMHz == 0 && sys.SoC.OnlineCount(platform.Big) == 4 {
		t.Fatal("neither frequency cap nor hotplug engaged at the end of a stress run")
	}
}

func TestCoolDownReleasesCap(t *testing.T) {
	eng, sys := rig()
	par := Default()
	m := Attach(sys, power.Default(), par)
	m.Start()
	// Burst of stress that ends, then a long cool-down.
	for i := 0; i < 4; i++ {
		task := sys.NewTask("hog", 2.0)
		sys.Push(task, 5e10) // ~15s of big-core work in aggregate
	}
	eng.Run(60 * event.Second)
	bc := sys.SoC.ClusterByType(platform.Big)
	if bc.CapMHz != 0 {
		t.Fatalf("cap %d MHz still engaged after cool-down (temp %.1fC)", bc.CapMHz, m.TempC[bc.ID])
	}
	if sys.SoC.OnlineCount(platform.Big) != 4 {
		t.Fatalf("only %d big cores back online after cool-down", sys.SoC.OnlineCount(platform.Big))
	}
}

func TestThrottledPct(t *testing.T) {
	m := &Model{}
	m.ThrottledNs = 3 * event.Second
	if got := m.ThrottledPct(10 * event.Second); got != 30 {
		t.Fatalf("ThrottledPct = %f, want 30", got)
	}
	if got := m.ThrottledPct(0); got != 0 {
		t.Fatalf("ThrottledPct(0) = %f", got)
	}
}

func TestHotplugEviction(t *testing.T) {
	eng, sys := rig()
	task := sys.NewTask("t", 1)
	task.Pin(5)
	sys.Push(task, 1e12)
	eng.Run(10 * event.Millisecond)
	if err := sys.SetCoreOnline(5, false); err != nil {
		t.Fatal(err)
	}
	eng.Run(50 * event.Millisecond)
	if task.CPU() == 5 {
		t.Fatal("task still on the offlined core")
	}
	if task.CurState() == sched.Sleeping {
		t.Fatal("evicted task lost its work")
	}
	// The platform constraint still holds.
	if err := sys.SetCoreOnline(5, true); err != nil {
		t.Fatal(err)
	}
}
