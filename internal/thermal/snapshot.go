package thermal

import (
	"fmt"

	"biglittle/internal/event"
)

// Snap is the thermal model's dynamic state for whole-simulation snapshot.
// The frequency caps it imposes live in the SoC snapshot; this carries the
// temperatures, the accounting, and the pending sample event.
type Snap struct {
	LastBusy []event.Time `json:"lastBusy"`
	LastDeep []event.Time `json:"lastDeep"`

	TempC         []float64  `json:"tempC"`
	MaxTempC      float64    `json:"maxTempC"`
	ThrottledNs   event.Time `json:"throttledNs"`
	Events        int        `json:"events"`
	HotplugEvents int        `json:"hotplug"`

	SamplePending bool       `json:"sampleP,omitempty"`
	SampleAt      event.Time `json:"sampleAt,omitempty"`
	SampleSeq     uint64     `json:"sampleSeq,omitempty"`
}

// PendingEvents returns how many engine events the snapshot accounts for.
func (sn *Snap) PendingEvents() int {
	if sn.SamplePending {
		return 1
	}
	return 0
}

// Snapshot captures the model's dynamic state without modifying it.
func (m *Model) Snapshot() Snap {
	sn := Snap{
		LastBusy:      append([]event.Time(nil), m.lastBusy...),
		LastDeep:      append([]event.Time(nil), m.lastDeep...),
		TempC:         append([]float64(nil), m.TempC...),
		MaxTempC:      m.MaxTempC,
		ThrottledNs:   m.ThrottledNs,
		Events:        m.Events,
		HotplugEvents: m.HotplugEvents,
	}
	if seq, ok := m.sampleEv.EventSeq(); ok {
		sn.SamplePending, sn.SampleAt, sn.SampleSeq = true, m.sampleEv.At(), seq
	}
	return sn
}

// Restore loads sn into a freshly attached model; the engine must already be
// Reset to the capture point.
func (m *Model) Restore(sn *Snap) error {
	if len(sn.LastBusy) != len(m.lastBusy) || len(sn.LastDeep) != len(m.lastDeep) {
		return fmt.Errorf("thermal: snapshot has %d/%d core entries, model has %d",
			len(sn.LastBusy), len(sn.LastDeep), len(m.lastBusy))
	}
	if len(sn.TempC) != len(m.TempC) {
		return fmt.Errorf("thermal: snapshot has %d clusters, model has %d", len(sn.TempC), len(m.TempC))
	}
	copy(m.lastBusy, sn.LastBusy)
	copy(m.lastDeep, sn.LastDeep)
	copy(m.TempC, sn.TempC)
	m.MaxTempC = sn.MaxTempC
	m.ThrottledNs = sn.ThrottledNs
	m.Events = sn.Events
	m.HotplugEvents = sn.HotplugEvents
	if sn.SamplePending {
		m.sampleEv = m.sys.Eng.ScheduleAt(sn.SampleAt, sn.SampleSeq, m.sampleFn)
	}
	return nil
}
