// Package thermal models per-cluster die temperature with a first-order RC
// model driven by the power model, and a throttling governor that caps a
// cluster's frequency when it trips — the mechanism behind the sustained-
// performance drop every passively-cooled phone exhibits. The Exynos 5422
// in the paper's Galaxy S5 throttles its A15 cluster aggressively under
// sustained gaming load; the paper's 30-second runs largely avoid it, and
// this package quantifies what longer runs would have seen.
package thermal

import (
	"fmt"

	"biglittle/internal/event"
	"biglittle/internal/platform"
	"biglittle/internal/power"
	"biglittle/internal/sched"
	"biglittle/internal/telemetry"
	"biglittle/internal/xray"
)

// Params configures the thermal model.
type Params struct {
	// AmbientC is the ambient (and initial die) temperature.
	AmbientC float64
	// ResistanceCPerW converts cluster power to steady-state temperature
	// rise above ambient.
	ResistanceCPerW float64
	// TimeConstant is the RC time constant of the die+package.
	TimeConstant event.Time
	// TripC engages throttling; ClearC disengages it.
	TripC  float64
	ClearC float64
	// CriticalC hotplugs big cores offline one per sample until the
	// temperature recovers (0 disables).
	CriticalC float64
	// SampleMs is the polling period of the thermal governor.
	SampleMs int
}

// Default returns parameters tuned so a fully-loaded big cluster at maximum
// frequency trips in roughly 10-15 seconds — the behaviour reported for
// Exynos 5422 devices under sustained load.
func Default() Params {
	return Params{
		AmbientC:        28,
		ResistanceCPerW: 20,
		TimeConstant:    6 * event.Second,
		TripC:           68,
		ClearC:          60,
		CriticalC:       85,
		SampleMs:        50,
	}
}

// Model tracks per-cluster temperature and applies throttling.
type Model struct {
	Par Params

	// Tel, when non-nil, receives a KindThrottle event for every cap step
	// (Reason throttle/release, MHz the new cap with 0 = fully released,
	// Value the cluster temperature). Emergency hotplug transitions are
	// emitted by sched.SetCoreOnline as KindHotplug events.
	Tel *telemetry.Collector

	// Xray, when non-nil, receives a decision span for every cap step: the
	// cluster temperature against the trip/clear points, the watts that drove
	// it, and the previous cap. Spans link causally to the cluster's last
	// governor step. Nil disables tracing at one pointer check per step.
	Xray *xray.Tracer

	sys      *sched.System
	pw       power.Params
	sample   event.Time
	sampleFn event.Handler // cached method value: evaluating m.onSample allocates
	sampleEv event.Handle  // the pending sample (retained for snapshot capture)
	lastBusy []event.Time
	lastDeep []event.Time

	// TempC holds current per-cluster temperatures.
	TempC []float64
	// MaxTempC records the hottest any cluster got.
	MaxTempC float64
	// ThrottledNs accumulates time with any cluster capped below max.
	ThrottledNs event.Time
	// Events counts cap adjustments.
	Events int
	// HotplugEvents counts emergency core offline/online transitions.
	HotplugEvents int
}

// Attach installs a thermal model on sys; call Start to begin sampling.
func Attach(sys *sched.System, pw power.Params, par Params) *Model {
	if par.SampleMs <= 0 {
		par.SampleMs = 50
	}
	m := &Model{
		Par:      par,
		sys:      sys,
		pw:       pw,
		sample:   event.Time(par.SampleMs) * event.Millisecond,
		lastBusy: make([]event.Time, len(sys.SoC.Cores)),
		lastDeep: make([]event.Time, len(sys.SoC.Cores)),
		TempC:    make([]float64, len(sys.SoC.Clusters)),
	}
	for i := range m.TempC {
		m.TempC[i] = par.AmbientC
	}
	m.MaxTempC = par.AmbientC
	m.sampleFn = m.onSample
	return m
}

// Start schedules the periodic thermal sampling.
func (m *Model) Start() {
	m.sampleEv = m.sys.Eng.After(m.sample, m.sampleFn)
}

func (m *Model) onSample(now event.Time) {
	m.sys.SyncAll(now)
	soc := m.sys.SoC
	dt := m.sample.Seconds()
	alpha := dt / m.Par.TimeConstant.Seconds()
	if alpha > 1 {
		alpha = 1
	}

	throttledNow := false
	for ci := range soc.Clusters {
		cl := &soc.Clusters[ci]
		// Cluster power from per-core utilization over the last sample.
		var watts float64
		for _, id := range cl.CoreIDs {
			if !soc.Cores[id].Online {
				continue
			}
			busy := m.sys.BusyNs(id)
			util := sched.CoreBusyFraction(m.lastBusy[id], busy, m.sample)
			m.lastBusy[id] = busy
			deep := m.sys.DeepIdleNs(id)
			deepFrac := sched.CoreBusyFraction(m.lastDeep[id], deep, m.sample)
			m.lastDeep[id] = deep
			watts += m.pw.CorePowerDeepMW(cl.Type, cl.CurMHz, util, deepFrac) / 1000
		}
		target := m.Par.AmbientC + watts*m.Par.ResistanceCPerW
		m.TempC[ci] += alpha * (target - m.TempC[ci])
		if m.TempC[ci] > m.MaxTempC {
			m.MaxTempC = m.TempC[ci]
		}

		// Throttling governor: step the cap down two table entries past the
		// trip point, release one entry at a time once cooled.
		switch {
		case m.TempC[ci] > m.Par.TripC:
			cur := cl.CapMHz
			if cur == 0 {
				cur = cl.MaxMHz()
			}
			newCap := cl.ClampDownMHz(cur - 200)
			if newCap != cur {
				cl.CapMHz = newCap
				m.sys.SetClusterFreq(ci, cl.CurMHz) // re-clamp under the new cap
				m.Events++
				if m.Tel != nil {
					m.Tel.Emit(telemetry.Event{
						At: now, Kind: telemetry.KindThrottle,
						Task: -1, Core: -1, FromCore: -1, Cluster: ci,
						MHz: newCap, Reason: telemetry.ReasonThrottle, Value: m.TempC[ci],
					})
				}
				if m.Xray != nil {
					m.Xray.Throttle(now, ci, newCap,
						fmt.Sprintf("cap cluster%d at %d MHz", ci, newCap),
						telemetry.ReasonThrottle,
						[]xray.Input{
							{Name: "temp_c", Value: m.TempC[ci]},
							{Name: "trip_c", Value: m.Par.TripC},
							{Name: "clear_c", Value: m.Par.ClearC},
							{Name: "watts", Value: watts},
							{Name: "prev_cap_mhz", Value: float64(cur)},
						})
				}
			}
		case m.TempC[ci] < m.Par.ClearC && cl.CapMHz > 0:
			newCap := cl.CapMHz + 100
			if newCap >= cl.MaxMHz() {
				cl.CapMHz = 0 // fully released
			} else {
				cl.CapMHz = newCap
			}
			m.Events++
			if m.Tel != nil {
				m.Tel.Emit(telemetry.Event{
					At: now, Kind: telemetry.KindThrottle,
					Task: -1, Core: -1, FromCore: -1, Cluster: ci,
					MHz: cl.CapMHz, Reason: telemetry.ReasonRelease, Value: m.TempC[ci],
				})
			}
			if m.Xray != nil {
				choice := fmt.Sprintf("raise cluster%d cap to %d MHz", ci, cl.CapMHz)
				if cl.CapMHz == 0 {
					choice = fmt.Sprintf("release cluster%d cap", ci)
				}
				m.Xray.Throttle(now, ci, cl.CapMHz, choice, telemetry.ReasonRelease,
					[]xray.Input{
						{Name: "temp_c", Value: m.TempC[ci]},
						{Name: "trip_c", Value: m.Par.TripC},
						{Name: "clear_c", Value: m.Par.ClearC},
						{Name: "watts", Value: watts},
					})
			}
		}
		if cl.CapMHz > 0 && cl.CapMHz < cl.MaxMHz() {
			throttledNow = true
		}

		// Emergency hotplug for the big cluster: shed one core per sample
		// above the critical temperature, restore one once fully cooled.
		if m.Par.CriticalC > 0 && cl.Type == platform.Big {
			online := soc.OnlineCores(platform.Big)
			switch {
			case m.TempC[ci] > m.Par.CriticalC && len(online) > 0:
				if err := m.sys.SetCoreOnline(online[len(online)-1], false); err == nil {
					m.HotplugEvents++
				}
			case m.TempC[ci] < m.Par.ClearC && len(online) < len(cl.CoreIDs):
				for _, id := range cl.CoreIDs {
					if !soc.Cores[id].Online {
						if err := m.sys.SetCoreOnline(id, true); err == nil {
							m.HotplugEvents++
						}
						break
					}
				}
			}
		}
	}
	if throttledNow {
		m.ThrottledNs += m.sample
	}
	m.sampleEv = m.sys.Eng.After(m.sample, m.sampleFn)
}

// ThrottledPct returns the share of elapsed time with a throttle cap
// engaged.
func (m *Model) ThrottledPct(elapsed event.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return 100 * float64(m.ThrottledNs) / float64(elapsed)
}
