// Package pelt implements the per-task load tracking the HMP scheduler uses
// (the paper's Algorithm 1): a geometric-decay average of per-millisecond
// runnable time, normalized by the current clock frequency so the tracked
// load is "an absolute load value independent from the current clock
// frequency". The decay is tuned so a 1 ms contribution from 32 ms ago
// carries half the weight of the current one — the paper's "time weight",
// swept as 2x / ½x in §VI-C.
package pelt

import "math"

// Scale is the fixed-point load scale: a task running continuously at a
// core's maximum frequency converges to Scale.
const Scale = 1024

// DefaultHalfLifeMs matches the paper: load from 32 ms ago is weighted 50%.
const DefaultHalfLifeMs = 32

// Tracker tracks one task's decayed CPU load. The zero value is unusable;
// use NewTracker. Time advances in 1 ms steps via Update, matching the
// paper's "1 millisecond granularity" load history.
type Tracker struct {
	halfLife int
	decay    float64 // per-step geometric factor y, y^halfLife = 0.5
	load     float64 // current decayed average in [0, Scale]
}

// NewTracker returns a tracker with the given half-life in milliseconds.
// Non-positive values fall back to the default.
func NewTracker(halfLifeMs int) *Tracker {
	if halfLifeMs <= 0 {
		halfLifeMs = DefaultHalfLifeMs
	}
	return &Tracker{
		halfLife: halfLifeMs,
		decay:    math.Pow(0.5, 1.0/float64(halfLifeMs)),
	}
}

// HalfLifeMs returns the configured half-life.
func (t *Tracker) HalfLifeMs() int { return t.halfLife }

// Update advances one 1 ms period. ranFrac is the fraction of the period the
// task spent running (or runnable, per HMP semantics), in [0,1]; freqScale is
// current/maximum frequency of the CPU it ran on, making the contribution
// frequency-invariant. Sleeping tasks are NOT updated ("if a task enters the
// sleep state, its load is not updated") — simply do not call Update.
func (t *Tracker) Update(ranFrac, freqScale float64) {
	if ranFrac < 0 {
		ranFrac = 0
	}
	if ranFrac > 1 {
		ranFrac = 1
	}
	if freqScale < 0 {
		freqScale = 0
	}
	if freqScale > 1 {
		freqScale = 1
	}
	contrib := Scale * ranFrac * freqScale
	t.load = t.load*t.decay + contrib*(1-t.decay)
}

// UpdateN applies the same (ranFrac, freqScale) for n consecutive 1 ms
// periods in O(1), used when a task runs or idles through a long interval.
func (t *Tracker) UpdateN(n int, ranFrac, freqScale float64) {
	if n <= 0 {
		return
	}
	if ranFrac < 0 {
		ranFrac = 0
	}
	if ranFrac > 1 {
		ranFrac = 1
	}
	if freqScale < 0 {
		freqScale = 0
	}
	if freqScale > 1 {
		freqScale = 1
	}
	contrib := Scale * ranFrac * freqScale
	// load' = load·y^n + contrib·(1-y)·(1 + y + ... + y^(n-1))
	//       = load·y^n + contrib·(1 - y^n)
	yn := math.Pow(t.decay, float64(n))
	t.load = t.load*yn + contrib*(1-yn)
}

// Load returns the tracked load in [0, Scale].
func (t *Tracker) Load() int { return int(t.load + 0.5) }

// LoadF returns the unrounded load.
func (t *Tracker) LoadF() float64 { return t.load }

// Set forces the load value (used when forking tasks inherit parent load).
func (t *Tracker) Set(load float64) {
	if load < 0 {
		load = 0
	}
	if load > Scale {
		load = Scale
	}
	t.load = load
}
