package pelt

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConvergesToInput(t *testing.T) {
	tr := NewTracker(32)
	for i := 0; i < 1000; i++ {
		tr.Update(1, 1)
	}
	if l := tr.Load(); l != Scale {
		t.Fatalf("full-running load = %d, want %d", l, Scale)
	}
	tr2 := NewTracker(32)
	for i := 0; i < 1000; i++ {
		tr2.Update(0.5, 1)
	}
	if l := tr2.Load(); l < Scale/2-5 || l > Scale/2+5 {
		t.Fatalf("half-running load = %d, want ~%d", l, Scale/2)
	}
}

// The paper: "the 1ms-period load generated 32ms ago will be weighted by 50%".
func TestHalfLife(t *testing.T) {
	tr := NewTracker(32)
	tr.Update(1, 1) // one period of load, then idle
	initial := tr.LoadF()
	for i := 0; i < 32; i++ {
		tr.Update(0, 1)
	}
	after := tr.LoadF()
	if ratio := after / initial; math.Abs(ratio-0.5) > 0.01 {
		t.Fatalf("load retained %.3f after 32ms, want 0.50", ratio)
	}
}

func TestHalfLifeSweep(t *testing.T) {
	for _, hl := range []int{16, 32, 64} {
		tr := NewTracker(hl)
		tr.Update(1, 1)
		initial := tr.LoadF()
		for i := 0; i < hl; i++ {
			tr.Update(0, 1)
		}
		if ratio := tr.LoadF() / initial; math.Abs(ratio-0.5) > 0.01 {
			t.Errorf("half-life %d: retained %.3f, want 0.50", hl, ratio)
		}
		if tr.HalfLifeMs() != hl {
			t.Errorf("HalfLifeMs = %d, want %d", tr.HalfLifeMs(), hl)
		}
	}
}

// Frequency invariance: running flat-out at half the max frequency must
// converge to half scale — the normalization Algorithm 1 requires.
func TestFrequencyInvariance(t *testing.T) {
	tr := NewTracker(32)
	for i := 0; i < 1000; i++ {
		tr.Update(1, 0.5)
	}
	if l := tr.Load(); l < Scale/2-5 || l > Scale/2+5 {
		t.Fatalf("load at 50%% freq = %d, want ~%d", l, Scale/2)
	}
}

func TestUpdateNMatchesLoop(t *testing.T) {
	a, b := NewTracker(32), NewTracker(32)
	a.Update(1, 1) // establish some state
	b.Update(1, 1)
	for _, step := range []struct {
		n       int
		ran, fs float64
	}{{5, 0.3, 0.8}, {100, 1, 1}, {1, 0, 1}, {47, 0.9, 0.4}} {
		for i := 0; i < step.n; i++ {
			a.Update(step.ran, step.fs)
		}
		b.UpdateN(step.n, step.ran, step.fs)
		if math.Abs(a.LoadF()-b.LoadF()) > 1e-6 {
			t.Fatalf("UpdateN diverged from loop: %.6f vs %.6f", a.LoadF(), b.LoadF())
		}
	}
	b.UpdateN(0, 1, 1)
	b.UpdateN(-3, 1, 1) // no-ops
	if math.Abs(a.LoadF()-b.LoadF()) > 1e-6 {
		t.Fatal("non-positive UpdateN changed state")
	}
}

func TestDefaults(t *testing.T) {
	tr := NewTracker(0)
	if tr.HalfLifeMs() != DefaultHalfLifeMs {
		t.Fatalf("default half-life %d, want %d", tr.HalfLifeMs(), DefaultHalfLifeMs)
	}
	tr = NewTracker(-1)
	if tr.HalfLifeMs() != DefaultHalfLifeMs {
		t.Fatal("negative half-life not defaulted")
	}
}

func TestSetClamps(t *testing.T) {
	tr := NewTracker(32)
	tr.Set(2000)
	if tr.Load() != Scale {
		t.Fatal("Set above scale not clamped")
	}
	tr.Set(-10)
	if tr.Load() != 0 {
		t.Fatal("Set below zero not clamped")
	}
	tr.Set(512)
	if tr.Load() != 512 {
		t.Fatal("Set(512) lost")
	}
}

func TestInputClamping(t *testing.T) {
	a, b := NewTracker(32), NewTracker(32)
	a.Update(1.7, 2.0)
	b.Update(1, 1)
	if a.LoadF() != b.LoadF() {
		t.Fatal("out-of-range inputs not clamped")
	}
	a.Update(-1, -1)
	if a.LoadF() >= b.LoadF() {
		t.Fatal("negative inputs should decay like zero")
	}
}

// Property: load always stays within [0, Scale] and a higher constant input
// never yields a lower steady-state load.
func TestPropertyBounded(t *testing.T) {
	f := func(inputs []float64) bool {
		tr := NewTracker(32)
		for _, in := range inputs {
			tr.Update(in, 1)
			if tr.LoadF() < 0 || tr.LoadF() > Scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: monotonicity — feeding a pointwise-larger input sequence yields
// a load at least as large at every step.
func TestPropertyMonotone(t *testing.T) {
	f := func(seq []uint8) bool {
		lo, hi := NewTracker(32), NewTracker(32)
		for _, v := range seq {
			a := float64(v) / 255
			b := a + (1-a)/2
			lo.Update(a, 1)
			hi.Update(b, 1)
			if hi.LoadF() < lo.LoadF()-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
