package platform

import (
	"testing"
	"testing/quick"
)

func TestExynos5422Topology(t *testing.T) {
	s := Exynos5422()
	if len(s.Cores) != 8 || len(s.Clusters) != 2 {
		t.Fatalf("got %d cores %d clusters, want 8/2", len(s.Cores), len(s.Clusters))
	}
	if n := s.OnlineCount(Little); n != 4 {
		t.Fatalf("little online = %d, want 4", n)
	}
	if n := s.OnlineCount(Big); n != 4 {
		t.Fatalf("big online = %d, want 4", n)
	}
	lc, bc := s.ClusterByType(Little), s.ClusterByType(Big)
	if lc.MinMHz() != 500 || lc.MaxMHz() != 1300 {
		t.Fatalf("little freq range %d-%d, want 500-1300", lc.MinMHz(), lc.MaxMHz())
	}
	if bc.MinMHz() != 800 || bc.MaxMHz() != 1900 {
		t.Fatalf("big freq range %d-%d, want 800-1900", bc.MinMHz(), bc.MaxMHz())
	}
	for id := 0; id < 4; id++ {
		if s.Cores[id].Type != Little {
			t.Fatalf("core %d should be little", id)
		}
	}
	for id := 4; id < 8; id++ {
		if s.Cores[id].Type != Big {
			t.Fatalf("core %d should be big", id)
		}
		if s.ClusterOf(id) != bc {
			t.Fatalf("core %d not in big cluster", id)
		}
	}
	if Little.String() != "little" || Big.String() != "big" {
		t.Fatal("CoreType.String mismatch")
	}
}

func TestClampMHz(t *testing.T) {
	c := Exynos5422().ClusterByType(Little)
	cases := []struct{ in, want int }{
		{0, 500}, {500, 500}, {501, 600}, {649, 700}, {1300, 1300}, {9999, 1300},
	}
	for _, cse := range cases {
		if got := c.ClampMHz(cse.in); got != cse.want {
			t.Errorf("ClampMHz(%d) = %d, want %d", cse.in, got, cse.want)
		}
	}
}

func TestSetFreq(t *testing.T) {
	s := Exynos5422()
	if got := s.SetFreq(1, 1550); got != 1600 {
		t.Fatalf("SetFreq big 1550 -> %d, want 1600", got)
	}
	if s.ClusterByType(Big).CurMHz != 1600 {
		t.Fatal("cluster frequency not updated")
	}
}

func TestLittleCoreConstraint(t *testing.T) {
	s := Exynos5422()
	for id := 1; id < 4; id++ {
		if err := s.SetOnline(id, false); err != nil {
			t.Fatalf("offline little %d: %v", id, err)
		}
	}
	if err := s.SetOnline(0, false); err == nil {
		t.Fatal("offlining the last little core must fail")
	}
	// All big cores may go offline.
	for id := 4; id < 8; id++ {
		if err := s.SetOnline(id, false); err != nil {
			t.Fatalf("offline big %d: %v", id, err)
		}
	}
	if n := s.OnlineCount(Big); n != 0 {
		t.Fatalf("big online = %d, want 0", n)
	}
}

func TestParseCoreConfig(t *testing.T) {
	good := map[string]CoreConfig{
		"L2":    {Little: 2},
		"L4+B4": {Little: 4, Big: 4},
		"L2+B1": {Little: 2, Big: 1},
		"l3+b2": {Little: 3, Big: 2},
	}
	for in, want := range good {
		got, err := ParseCoreConfig(in)
		if err != nil || got != want {
			t.Errorf("ParseCoreConfig(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "B4", "L0+B1", "L5", "X2", "L+B", "L2+B9"} {
		if _, err := ParseCoreConfig(bad); err == nil {
			t.Errorf("ParseCoreConfig(%q) succeeded, want error", bad)
		}
	}
}

func TestCoreConfigString(t *testing.T) {
	if s := (CoreConfig{Little: 2}).String(); s != "L2" {
		t.Errorf("got %q", s)
	}
	if s := (CoreConfig{Little: 4, Big: 1}).String(); s != "L4+B1" {
		t.Errorf("got %q", s)
	}
}

func TestApplyConfigs(t *testing.T) {
	for _, cfg := range append(StudyConfigs(), Baseline()) {
		s := Exynos5422()
		if err := cfg.Apply(s); err != nil {
			t.Fatalf("Apply(%v): %v", cfg, err)
		}
		if got := s.OnlineCount(Little); got != cfg.Little {
			t.Errorf("%v: little online %d", cfg, got)
		}
		if got := s.OnlineCount(Big); got != cfg.Big {
			t.Errorf("%v: big online %d", cfg, got)
		}
	}
}

func TestApplyTransitions(t *testing.T) {
	// Apply must work from any starting state, including from a minimal one.
	s := Exynos5422()
	if err := (CoreConfig{Little: 1}).Apply(s); err != nil {
		t.Fatal(err)
	}
	if err := (CoreConfig{Little: 4, Big: 4}).Apply(s); err != nil {
		t.Fatal(err)
	}
	if s.OnlineCount(Little) != 4 || s.OnlineCount(Big) != 4 {
		t.Fatal("did not restore full config")
	}
	if err := (CoreConfig{Little: 0, Big: 4}).Apply(s); err == nil {
		t.Fatal("zero little cores must be rejected")
	}
}

func TestStudyConfigsCount(t *testing.T) {
	cfgs := StudyConfigs()
	if len(cfgs) != 7 {
		t.Fatalf("StudyConfigs returned %d, want 7 (paper §V-C)", len(cfgs))
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		if seen[c.String()] {
			t.Fatalf("duplicate config %v", c)
		}
		seen[c.String()] = true
	}
}

// Property: ClampMHz always returns a table frequency >= request (or max).
func TestPropertyClamp(t *testing.T) {
	c := Exynos5422().ClusterByType(Big)
	f := func(mhz uint16) bool {
		got := c.ClampMHz(int(mhz))
		inTable := false
		for _, tf := range c.FreqsMHz {
			if tf == got {
				inTable = true
			}
		}
		if !inTable {
			return false
		}
		if int(mhz) <= c.MaxMHz() && got < int(mhz) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: round-tripping any valid CoreConfig through String/Parse is
// identity, and Apply always leaves at least one little core online.
func TestPropertyConfigRoundTrip(t *testing.T) {
	for little := 1; little <= 4; little++ {
		for big := 0; big <= 4; big++ {
			cfg := CoreConfig{Little: little, Big: big}
			parsed, err := ParseCoreConfig(cfg.String())
			if err != nil || parsed != cfg {
				t.Fatalf("round trip %v -> %q -> %v, %v", cfg, cfg.String(), parsed, err)
			}
			s := Exynos5422()
			if err := cfg.Apply(s); err != nil {
				t.Fatalf("Apply(%v): %v", cfg, err)
			}
			if s.OnlineCount(Little) < 1 {
				t.Fatalf("Apply(%v) left no little core online", cfg)
			}
		}
	}
}

func TestTierMapping(t *testing.T) {
	if Tiny.Tier() != 0 || Little.Tier() != 1 || Big.Tier() != 2 {
		t.Fatal("tier order")
	}
	for _, typ := range []CoreType{Tiny, Little, Big} {
		if TypeForTier(typ.Tier()) != typ {
			t.Fatalf("round trip %v", typ)
		}
	}
	if Tiny.String() != "tiny" {
		t.Fatal("tiny string")
	}
}

func TestClampDownMHz(t *testing.T) {
	c := Exynos5422().ClusterByType(Big)
	cases := []struct{ in, want int }{
		{1900, 1900}, {1850, 1800}, {800, 800}, {100, 800}, {5000, 1900},
	}
	for _, cse := range cases {
		if got := c.ClampDownMHz(cse.in); got != cse.want {
			t.Errorf("ClampDownMHz(%d) = %d, want %d", cse.in, got, cse.want)
		}
	}
}

func TestThermalCapLimitsSetFreq(t *testing.T) {
	s := Exynos5422()
	bc := s.ClusterByType(Big)
	bc.CapMHz = 1200
	if got := s.SetFreq(bc.ID, 1900); got != 1200 {
		t.Fatalf("SetFreq under cap = %d, want 1200", got)
	}
	bc.CapMHz = 0
	if got := s.SetFreq(bc.ID, 1900); got != 1900 {
		t.Fatalf("SetFreq after cap release = %d", got)
	}
	// A cap between table entries clamps down to a table frequency.
	bc.CapMHz = 1250
	if got := s.SetFreq(bc.ID, 1900); got != 1200 {
		t.Fatalf("mid-table cap gave %d, want 1200", got)
	}
}

func TestExynos5422Tiny(t *testing.T) {
	s := Exynos5422Tiny()
	if len(s.Cores) != 10 || len(s.Clusters) != 3 {
		t.Fatalf("%d cores %d clusters", len(s.Cores), len(s.Clusters))
	}
	tc := s.ClusterByType(Tiny)
	if tc.MinMHz() != 600 || tc.MaxMHz() != 600 {
		t.Fatalf("tiny cluster is single-frequency 600: %d-%d", tc.MinMHz(), tc.MaxMHz())
	}
	if s.OnlineCount(Tiny) != 2 {
		t.Fatal("tiny cores offline")
	}
	cfg, err := ParseCoreConfig("T2+L4+B4")
	if err != nil || cfg.Tiny != 2 {
		t.Fatalf("parse tiny config: %v %v", cfg, err)
	}
	if cfg.String() != "T2+L4+B4" {
		t.Fatalf("round trip %q", cfg.String())
	}
	if err := cfg.Apply(s); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseCoreConfig("T3+L4"); err == nil {
		t.Fatal("T3 accepted")
	}
}

func TestSnapdragon810Preset(t *testing.T) {
	s := Snapdragon810()
	if len(s.Cores) != 8 || len(s.Clusters) != 2 {
		t.Fatalf("%d cores %d clusters", len(s.Cores), len(s.Clusters))
	}
	lc, bc := s.ClusterByType(Little), s.ClusterByType(Big)
	if lc.MinMHz() != 400 || lc.MaxMHz() != 1500 {
		t.Fatalf("little range %d-%d", lc.MinMHz(), lc.MaxMHz())
	}
	if bc.MinMHz() != 600 || bc.MaxMHz() != 2000 {
		t.Fatalf("big range %d-%d", bc.MinMHz(), bc.MaxMHz())
	}
	if err := (CoreConfig{Little: 4, Big: 4}).Apply(s); err != nil {
		t.Fatal(err)
	}
}
