// Package platform models the asymmetric SoC topology of the paper's target
// device (Exynos 5422 in a Galaxy S5): two clusters — four Cortex-A15 "big"
// cores and four Cortex-A7 "little" cores — each with its own frequency
// table and a single shared clock (per §II, "each core type must have the
// same frequency setting"), plus hotplug with the hardware constraint that
// one little core must always remain online.
package platform

import (
	"fmt"
	"strconv"
	"strings"
)

// CoreType distinguishes the two core microarchitectures.
type CoreType int

const (
	Little CoreType = iota
	Big
	// Tiny is the hypothetical third core type the paper's §VI-B proposes:
	// "another core type, tiny core, with much weaker capability can be
	// added to process such low CPU loads". See Exynos5422Tiny.
	Tiny
)

func (t CoreType) String() string {
	switch t {
	case Big:
		return "big"
	case Tiny:
		return "tiny"
	default:
		return "little"
	}
}

// Tier orders core types by capability: Tiny < Little < Big. The HMP
// scheduler migrates tasks one tier at a time.
func (t CoreType) Tier() int {
	switch t {
	case Tiny:
		return 0
	case Little:
		return 1
	default:
		return 2
	}
}

// TypeForTier is the inverse of Tier.
func TypeForTier(tier int) CoreType {
	switch tier {
	case 0:
		return Tiny
	case 1:
		return Little
	default:
		return Big
	}
}

// Core is one CPU in the SoC.
type Core struct {
	ID      int
	Type    CoreType
	Cluster int
	Online  bool
}

// Cluster groups cores of one type behind a shared clock and L2.
type Cluster struct {
	ID       int
	Type     CoreType
	FreqsMHz []int // ascending frequency table
	CurMHz   int
	CoreIDs  []int
	// CapMHz, when non-zero, caps SetFreq requests (thermal throttling).
	CapMHz int
}

// MinMHz returns the lowest table frequency.
func (c *Cluster) MinMHz() int { return c.FreqsMHz[0] }

// MaxMHz returns the highest table frequency.
func (c *Cluster) MaxMHz() int { return c.FreqsMHz[len(c.FreqsMHz)-1] }

// ClampMHz returns the lowest table frequency >= mhz, or the max if mhz
// exceeds the table (the governor rounds target frequencies up so the core
// always has at least the requested capacity).
func (c *Cluster) ClampMHz(mhz int) int {
	for _, f := range c.FreqsMHz {
		if f >= mhz {
			return f
		}
	}
	return c.MaxMHz()
}

// ClampDownMHz returns the highest table frequency <= mhz, or the minimum
// if mhz is below the table (used for thermal caps).
func (c *Cluster) ClampDownMHz(mhz int) int {
	out := c.MinMHz()
	for _, f := range c.FreqsMHz {
		if f <= mhz {
			out = f
		}
	}
	return out
}

// SoC is the modeled system-on-chip.
type SoC struct {
	// Name identifies the preset ("exynos5422", "snapdragon810", ...).
	// Custom SoCs may leave it empty; experiment-result caching treats an
	// unnamed platform as unidentifiable and skips caching such runs.
	Name     string
	Cores    []Core
	Clusters []Cluster
}

// Exynos5422 builds the paper's target SoC: cores 0-3 are little
// (500-1300 MHz in 100 MHz steps), cores 4-7 are big (800-1900 MHz in
// 100 MHz steps). All cores start online at the minimum frequency, as after
// an idle period on the real device.
func Exynos5422() *SoC {
	little := Cluster{ID: 0, Type: Little, FreqsMHz: freqTable(500, 1300), CoreIDs: []int{0, 1, 2, 3}}
	big := Cluster{ID: 1, Type: Big, FreqsMHz: freqTable(800, 1900), CoreIDs: []int{4, 5, 6, 7}}
	little.CurMHz = little.MinMHz()
	big.CurMHz = big.MinMHz()
	s := &SoC{Name: "exynos5422", Clusters: []Cluster{little, big}}
	for i := 0; i < 8; i++ {
		t, cl := Little, 0
		if i >= 4 {
			t, cl = Big, 1
		}
		s.Cores = append(s.Cores, Core{ID: i, Type: t, Cluster: cl, Online: true})
	}
	return s
}

// Exynos5422Tiny is the paper's §VI-B thought experiment made concrete: the
// standard SoC plus a third cluster of two tiny in-order cores (cores 8-9)
// sized to absorb the "min"-state loads that even a little core at minimum
// frequency over-serves. The tiny cluster runs at a single fixed 600 MHz:
// its power is low enough that DVFS machinery (and its reaction latency)
// is not worth carrying.
func Exynos5422Tiny() *SoC {
	s := Exynos5422()
	s.Name = "exynos5422-tiny"
	tiny := Cluster{ID: 2, Type: Tiny, FreqsMHz: freqTable(600, 600), CoreIDs: []int{8, 9}}
	tiny.CurMHz = tiny.MinMHz()
	s.Clusters = append(s.Clusters, tiny)
	s.Cores = append(s.Cores,
		Core{ID: 8, Type: Tiny, Cluster: 2, Online: true},
		Core{ID: 9, Type: Tiny, Cluster: 2, Online: true},
	)
	return s
}

// Snapdragon810 builds a contemporary competitor SoC: four Cortex-A57-class
// big cores (up to 1.96 GHz, rounded to 2.0 GHz steps here) and four
// Cortex-A53-class little cores (up to 1.56 GHz, rounded to 1.5 GHz). The
// same HMP/governor stack runs unchanged — the library is not tied to one
// chip.
func Snapdragon810() *SoC {
	little := Cluster{ID: 0, Type: Little, FreqsMHz: freqTable(400, 1500), CoreIDs: []int{0, 1, 2, 3}}
	big := Cluster{ID: 1, Type: Big, FreqsMHz: freqTable(600, 2000), CoreIDs: []int{4, 5, 6, 7}}
	little.CurMHz = little.MinMHz()
	big.CurMHz = big.MinMHz()
	s := &SoC{Name: "snapdragon810", Clusters: []Cluster{little, big}}
	for i := 0; i < 8; i++ {
		t, cl := Little, 0
		if i >= 4 {
			t, cl = Big, 1
		}
		s.Cores = append(s.Cores, Core{ID: i, Type: t, Cluster: cl, Online: true})
	}
	return s
}

func freqTable(minMHz, maxMHz int) []int {
	var t []int
	for f := minMHz; f <= maxMHz; f += 100 {
		t = append(t, f)
	}
	return t
}

// ClusterOf returns the cluster a core belongs to.
func (s *SoC) ClusterOf(coreID int) *Cluster { return &s.Clusters[s.Cores[coreID].Cluster] }

// ClusterByType returns the cluster of the given type.
func (s *SoC) ClusterByType(t CoreType) *Cluster {
	for i := range s.Clusters {
		if s.Clusters[i].Type == t {
			return &s.Clusters[i]
		}
	}
	return nil
}

// SetFreq sets a cluster's frequency to the nearest table entry at or above
// mhz, subject to the cluster's thermal cap. It returns the frequency
// actually set.
func (s *SoC) SetFreq(clusterID, mhz int) int {
	c := &s.Clusters[clusterID]
	target := c.ClampMHz(mhz)
	if c.CapMHz > 0 && target > c.CapMHz {
		target = c.ClampDownMHz(c.CapMHz)
	}
	c.CurMHz = target
	return c.CurMHz
}

// SetOnline changes a core's hotplug state. Taking the last little core
// offline violates the hardware constraint (§II) and returns an error.
func (s *SoC) SetOnline(coreID int, online bool) error {
	c := &s.Cores[coreID]
	if !online && c.Type == Little {
		others := 0
		for _, o := range s.Cores {
			if o.Type == Little && o.Online && o.ID != coreID {
				others++
			}
		}
		if others == 0 {
			return fmt.Errorf("platform: cannot offline core %d: one little core must stay online", coreID)
		}
	}
	c.Online = online
	return nil
}

// OnlineCores returns the IDs of online cores of type t, ascending.
func (s *SoC) OnlineCores(t CoreType) []int {
	var ids []int
	for _, c := range s.Cores {
		if c.Type == t && c.Online {
			ids = append(ids, c.ID)
		}
	}
	return ids
}

// OnlineCount returns the number of online cores of type t without
// allocating the ID slice OnlineCores builds.
func (s *SoC) OnlineCount(t CoreType) int {
	n := 0
	for i := range s.Cores {
		if s.Cores[i].Type == t && s.Cores[i].Online {
			n++
		}
	}
	return n
}

// CoreConfig is a hotplug configuration: how many little and big cores are
// online. The paper's §V-C notation "L2+B1" means two little cores and one
// big core.
type CoreConfig struct {
	Little int
	Big    int
	// Tiny cores are only available on the Exynos5422Tiny platform.
	Tiny int
}

func (c CoreConfig) String() string {
	s := ""
	if c.Tiny > 0 {
		s = fmt.Sprintf("T%d+", c.Tiny)
	}
	s += fmt.Sprintf("L%d", c.Little)
	if c.Big > 0 {
		s += fmt.Sprintf("+B%d", c.Big)
	}
	return s
}

// ParseCoreConfig parses "L4+B4", "L2", "L2+B1" style notation.
func ParseCoreConfig(s string) (CoreConfig, error) {
	var cfg CoreConfig
	for _, part := range strings.Split(s, "+") {
		part = strings.TrimSpace(part)
		if len(part) < 2 {
			return cfg, fmt.Errorf("platform: bad core config part %q", part)
		}
		n, err := strconv.Atoi(part[1:])
		if err != nil {
			return cfg, fmt.Errorf("platform: bad core config part %q: %v", part, err)
		}
		switch part[0] {
		case 'L', 'l':
			cfg.Little = n
		case 'B', 'b':
			cfg.Big = n
		case 'T', 't':
			cfg.Tiny = n
		default:
			return cfg, fmt.Errorf("platform: bad core config part %q", part)
		}
	}
	if cfg.Little < 1 || cfg.Little > 4 || cfg.Big < 0 || cfg.Big > 4 || cfg.Tiny < 0 || cfg.Tiny > 2 {
		return cfg, fmt.Errorf("platform: core config %v out of range (1-4 little, 0-4 big, 0-2 tiny)", cfg)
	}
	return cfg, nil
}

// Apply hotplugs the SoC to match the configuration: the first cfg.Little
// little cores and first cfg.Big big cores online, the rest offline.
func (cfg CoreConfig) Apply(s *SoC) error {
	if cfg.Little < 1 {
		return fmt.Errorf("platform: config %v needs at least one little core", cfg)
	}
	want := map[CoreType]int{Little: cfg.Little, Big: cfg.Big, Tiny: cfg.Tiny}
	// Bring requested cores online first so the little-core constraint
	// never trips while reshuffling.
	got := map[CoreType]int{}
	for i := range s.Cores {
		c := &s.Cores[i]
		if got[c.Type] < want[c.Type] {
			got[c.Type]++
			if err := s.SetOnline(c.ID, true); err != nil {
				return err
			}
		}
	}
	kept := map[CoreType]int{}
	for i := range s.Cores {
		c := &s.Cores[i]
		if kept[c.Type] < want[c.Type] {
			kept[c.Type]++
			continue
		}
		if err := s.SetOnline(c.ID, false); err != nil {
			return err
		}
	}
	for t, n := range want {
		if kept[t] < n {
			return fmt.Errorf("platform: SoC cannot satisfy config %v (missing %v cores)", cfg, t)
		}
	}
	return nil
}

// StudyConfigs returns the seven hotplug combinations evaluated in the
// paper's §V-C (Figures 7 and 8), plus helpers use Baseline for L4+B4.
func StudyConfigs() []CoreConfig {
	return []CoreConfig{
		{Little: 2}, {Little: 4},
		{Little: 2, Big: 1}, {Little: 4, Big: 1},
		{Little: 2, Big: 2}, {Little: 4, Big: 2},
		{Little: 2, Big: 4},
	}
}

// Baseline returns the default L4+B4 configuration.
func Baseline() CoreConfig { return CoreConfig{Little: 4, Big: 4} }
