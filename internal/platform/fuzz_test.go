package platform

import "testing"

// FuzzParseCoreConfig: any accepted hotplug notation must round-trip through
// String and apply cleanly to the (tiny-extended, so every cluster exists)
// SoC; rejected inputs must error rather than panic.
func FuzzParseCoreConfig(f *testing.F) {
	f.Add("L4+B4")
	f.Add("L2")
	f.Add("L2+B1")
	f.Add("T2+L4+B4")
	f.Add("l1+b0")
	f.Add(" L3 + B2 ")
	f.Add("L5+B9")
	f.Add("B4")
	f.Add("L-1")
	f.Add("X4")
	f.Add("")
	f.Add("+")
	f.Add("L")
	f.Add("L4++B4")
	f.Fuzz(func(t *testing.T, s string) {
		cfg, err := ParseCoreConfig(s)
		if err != nil {
			return
		}
		again, err := ParseCoreConfig(cfg.String())
		if err != nil {
			t.Fatalf("accepted %q but rejected its rendering %q: %v", s, cfg, err)
		}
		if again != cfg {
			t.Fatalf("round-trip changed %q: %v -> %v", s, cfg, again)
		}
		if err := cfg.Apply(Exynos5422Tiny()); err != nil {
			t.Fatalf("accepted %q but Apply failed: %v", s, err)
		}
	})
}
