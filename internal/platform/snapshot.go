package platform

import "fmt"

// Snap is the SoC's mutable state for whole-simulation snapshot/fork: the
// per-cluster DVFS operating point and thermal cap, and the per-core hotplug
// state. Topology and frequency tables are immutable and reconstructed from
// the run config.
type Snap struct {
	ClusterMHz []int  `json:"mhz"`
	ClusterCap []int  `json:"cap"`
	CoreOnline []bool `json:"online"`
}

// Snapshot captures the SoC's mutable state without modifying it.
func (s *SoC) Snapshot() Snap {
	sn := Snap{
		ClusterMHz: make([]int, len(s.Clusters)),
		ClusterCap: make([]int, len(s.Clusters)),
		CoreOnline: make([]bool, len(s.Cores)),
	}
	for i := range s.Clusters {
		sn.ClusterMHz[i] = s.Clusters[i].CurMHz
		sn.ClusterCap[i] = s.Clusters[i].CapMHz
	}
	for i := range s.Cores {
		sn.CoreOnline[i] = s.Cores[i].Online
	}
	return sn
}

// Restore loads sn into an SoC of the same topology. It writes the raw
// fields directly (no SetFreq/SetOnline legality checks): the values were
// read from a live SoC of identical shape, and re-running the transition
// logic could clamp them differently than the original sequence of calls.
func (s *SoC) Restore(sn *Snap) error {
	if len(sn.ClusterMHz) != len(s.Clusters) || len(sn.ClusterCap) != len(s.Clusters) {
		return fmt.Errorf("platform: snapshot has %d/%d cluster entries, soc has %d",
			len(sn.ClusterMHz), len(sn.ClusterCap), len(s.Clusters))
	}
	if len(sn.CoreOnline) != len(s.Cores) {
		return fmt.Errorf("platform: snapshot has %d cores, soc has %d", len(sn.CoreOnline), len(s.Cores))
	}
	for i := range s.Clusters {
		s.Clusters[i].CurMHz = sn.ClusterMHz[i]
		s.Clusters[i].CapMHz = sn.ClusterCap[i]
	}
	for i := range s.Cores {
		s.Cores[i].Online = sn.CoreOnline[i]
	}
	return nil
}
