// Package workload provides the demand-generation primitives from which the
// twelve mobile application models (package apps) are composed: periodic
// frame loops (games, video), Poisson-triggered bursts (user input),
// continuous CPU hogs (encoding), and multi-stage interaction pipelines with
// parallel fan-out (page loads, photo filters), mirroring the burst-on-touch
// and steady-frame CPU load patterns §II describes.
//
// All randomness flows through one seeded source per run, so every
// simulation is reproducible.
package workload

import (
	"math/rand"

	"biglittle/internal/event"
	"biglittle/internal/metrics"
	"biglittle/internal/platform"
	"biglittle/internal/sched"
)

// Ctx bundles what generators need to drive a simulation.
type Ctx struct {
	Eng      *event.Engine
	Sys      *sched.System
	Rng      *rand.Rand
	Duration event.Time

	FPS *metrics.FPSTracker
	Lat *metrics.LatencyTracker

	// Rec, when non-nil, records (or replays) the workload's interaction
	// with the simulator for whole-run snapshot/restore; see record.go.
	// Plain runs leave it nil and pay nothing.
	Rec *Recorder
}

// At schedules fn at absolute time at. Workload code must schedule through
// Ctx.At/Ctx.After (not ctx.Eng directly) so snapshot-enabled runs can log
// and replay the firing; with no recorder it is exactly ctx.Eng.At.
func (c *Ctx) At(at event.Time, fn func(now event.Time)) {
	if c.Rec == nil {
		c.Eng.At(at, fn)
		return
	}
	c.Rec.schedule(c.Eng, at, fn)
}

// After schedules fn to run d after the current time, via Ctx.At.
func (c *Ctx) After(d event.Time, fn func(now event.Time)) { c.At(c.Eng.Now()+d, fn) }

// Mc is one million cycles — the natural unit for segment sizes (a little
// core at 1.3 GHz executes 1300 Mc per second).
const Mc = 1e6

// Thread wraps a scheduler task with per-segment completion callbacks so
// pipelines can sequence work across threads.
type Thread struct {
	Task *sched.Task
	sys  *sched.System
	rec  *Recorder
	idx  int // creation index under rec (RecSeg target)
	// cbs[cbHead:] are the pending per-segment callbacks. The head index
	// (rather than re-slicing cbs[1:]) keeps the backing array's front
	// capacity, so steady push/pop cycles reuse one allocation.
	cbs    []func(now event.Time)
	cbHead int
}

// NewThread creates a named thread with the given big-core speedup.
func NewThread(ctx *Ctx, name string, speedup float64) *Thread {
	th := &Thread{Task: ctx.Sys.NewTask(name, speedup), sys: ctx.Sys, rec: ctx.Rec}
	if th.rec != nil {
		th.idx = th.rec.registerThread(th)
	}
	th.Task.OnSegment = func(now event.Time) {
		if th.rec != nil {
			th.rec.noteSeg(th.idx, now)
		}
		if th.cbHead >= len(th.cbs) {
			return
		}
		cb := th.cbs[th.cbHead]
		th.cbs[th.cbHead] = nil // release the closure for GC
		th.cbHead++
		if th.cbHead == len(th.cbs) {
			th.cbs = th.cbs[:0]
			th.cbHead = 0
		}
		if cb != nil {
			cb(now)
		}
	}
	return th
}

// Push enqueues cycles of work; done (may be nil) fires when this specific
// segment completes.
func (th *Thread) Push(cycles float64, done func(now event.Time)) {
	if cycles <= 0 {
		if done != nil {
			done(th.sys.Eng.Now())
		}
		return
	}
	th.cbs = append(th.cbs, done)
	if th.rec.replaying() {
		// The scheduler does not run during replay; the segment's completion
		// is driven from the log (a RecSeg record pops the callback).
		return
	}
	th.sys.Push(th.Task, cycles)
}

// Jitter returns mean scaled by a uniform factor in [1-cv, 1+cv], never
// below 10% of mean. cv = 0 returns mean unchanged.
func (c *Ctx) Jitter(mean, cv float64) float64 {
	if cv <= 0 {
		return mean
	}
	v := mean * (1 + cv*(2*c.Rng.Float64()-1))
	if v < 0.1*mean {
		v = 0.1 * mean
	}
	return v
}

// Exp returns an exponentially distributed duration with the given mean
// (Poisson inter-arrival), clamped to at least 100 µs.
func (c *Ctx) Exp(mean event.Time) event.Time {
	d := event.Time(float64(mean) * c.Rng.ExpFloat64())
	if d < 100*event.Microsecond {
		d = 100 * event.Microsecond
	}
	return d
}

// HeavyTail returns mean-centered work with an occasional heavy value:
// with probability p the result is mult x mean (a "hard" page, frame, or
// file), otherwise jittered around mean. Used to reproduce the occasional
// load spikes that pull in a big core.
func (c *Ctx) HeavyTail(mean, cv, p, mult float64) float64 {
	if c.Rng.Float64() < p {
		return c.Jitter(mean*mult, cv/2)
	}
	return c.Jitter(mean, cv)
}

// PeriodicConfig drives a frame-style loop.
type PeriodicConfig struct {
	Period event.Time
	// Work per activation in cycles (mean) with uniform CV jitter.
	Work float64
	CV   float64
	// DropIfBusy skips an activation when the previous one has not finished
	// (games drop frames instead of queueing them).
	DropIfBusy bool
	// HeavyP/HeavyMult add a heavy-tail to the work distribution.
	HeavyP    float64
	HeavyMult float64
	// Offset delays the first activation.
	Offset event.Time
	// OnDone fires on each completed activation (e.g. FPS accounting).
	OnDone func(now event.Time)
	// Until stops the loop (defaults to ctx.Duration).
	Until event.Time
}

// Periodic runs cfg on th: every Period, push one activation's work.
func Periodic(ctx *Ctx, th *Thread, cfg PeriodicConfig) {
	until := cfg.Until
	if until == 0 {
		until = ctx.Duration
	}
	var tick func(now event.Time)
	tick = func(now event.Time) {
		if now >= until {
			return
		}
		drop := false
		if cfg.DropIfBusy {
			drop = th.Task.CurState() != sched.Sleeping
			if ctx.Rec != nil {
				// A live scheduler read: recorded on capture, served from the
				// log on replay (the scheduler does not run during replay).
				drop = ctx.Rec.observeBusy(drop)
			}
		}
		if !drop {
			w := cfg.Work
			if cfg.HeavyP > 0 {
				w = ctx.HeavyTail(cfg.Work, cfg.CV, cfg.HeavyP, cfg.HeavyMult)
			} else {
				w = ctx.Jitter(cfg.Work, cfg.CV)
			}
			th.Push(w, cfg.OnDone)
		}
		ctx.At(now+cfg.Period, tick)
	}
	ctx.After(cfg.Offset, tick)
}

// Continuous keeps th 100% busy with segment-sized chunks until ctx.Duration
// (an encoder worker or CPU hog).
func Continuous(ctx *Ctx, th *Thread, segment float64) {
	var refill func(now event.Time)
	refill = func(now event.Time) {
		if now >= ctx.Duration {
			return
		}
		th.Push(ctx.Jitter(segment, 0.1), refill)
	}
	refill(0)
}

// PoissonBursts pushes exponentially spaced bursts of work onto th —
// background activity such as network callbacks or GC.
func PoissonBursts(ctx *Ctx, th *Thread, meanInterval event.Time, work, cv float64) {
	var arrive func(now event.Time)
	arrive = func(now event.Time) {
		if now >= ctx.Duration {
			return
		}
		th.Push(ctx.Jitter(work, cv), nil)
		ctx.At(now+ctx.Exp(meanInterval), arrive)
	}
	ctx.After(ctx.Exp(meanInterval), arrive)
}

// Stage is one step of an interaction pipeline: Work cycles pushed to every
// thread in Threads in parallel; the stage completes when all finish.
type Stage struct {
	Threads []*Thread
	Work    float64
	CV      float64
	// HeavyP/HeavyMult give the stage an occasional heavy activation.
	HeavyP    float64
	HeavyMult float64
	// PostDelay is non-CPU time after the stage completes before the next
	// stage starts — disk and network waits, GPU rendering, vsync. It does
	// not shrink on faster cores, which (together with the governor's
	// utilization targeting) is why the paper measures <30% latency gain
	// from big cores on mobile apps despite SPEC speedups of 2-4.5x.
	PostDelay event.Time
}

// RunStages executes stages sequentially starting now; done fires when the
// last stage completes.
func RunStages(ctx *Ctx, stages []Stage, done func(now event.Time)) {
	var runFrom func(i int, now event.Time)
	runFrom = func(i int, now event.Time) {
		if i >= len(stages) {
			if done != nil {
				done(now)
			}
			return
		}
		st := stages[i]
		next := func(fin event.Time) {
			if st.PostDelay > 0 {
				ctx.At(fin+st.PostDelay, func(at event.Time) { runFrom(i+1, at) })
				return
			}
			runFrom(i+1, fin)
		}
		if len(st.Threads) == 0 {
			next(now)
			return
		}
		remaining := len(st.Threads)
		for _, th := range st.Threads {
			w := st.Work
			if st.HeavyP > 0 {
				w = ctx.HeavyTail(st.Work, st.CV, st.HeavyP, st.HeavyMult)
			} else {
				w = ctx.Jitter(st.Work, st.CV)
			}
			th.Push(w, func(fin event.Time) {
				remaining--
				if remaining == 0 {
					next(fin)
				}
			})
		}
	}
	runFrom(0, ctx.Eng.Now())
}

// InteractionConfig drives InteractionLoop.
type InteractionConfig struct {
	// Think is the mean user think time between interactions, with ThinkCV
	// uniform jitter.
	Think   event.Time
	ThinkCV float64
	// Stages produces the interaction's pipeline (called per interaction so
	// work draws fresh randomness).
	Stages func() []Stage
	// Boost lists threads whose load is boosted to BoostLoad at each
	// interaction start — Android's input boost, which makes the responding
	// threads immediately eligible for a big core. The boost is re-applied
	// every 25 ms for BoostWindow (default 120 ms), matching the input
	// booster's hold window, so threads woken by later pipeline stages are
	// still covered.
	Boost       []*Thread
	BoostLoad   int
	BoostWindow event.Time
	// Silent excludes this loop's interactions from latency accounting
	// (auxiliary activity such as scrolling between measured page loads).
	Silent bool
}

// InteractionLoop models a user performing actions separated by think time:
// each interaction runs the stage pipeline produced by cfg.Stages and its
// start-to-finish latency is recorded in ctx.Lat.
func InteractionLoop(ctx *Ctx, cfg InteractionConfig) {
	boostLoad := cfg.BoostLoad
	if boostLoad == 0 {
		boostLoad = 800
	}
	var next func(now event.Time)
	next = func(now event.Time) {
		if now >= ctx.Duration {
			return
		}
		window := cfg.BoostWindow
		if window == 0 {
			window = 120 * event.Millisecond
		}
		for off := event.Time(0); off <= window; off += 25 * event.Millisecond {
			ctx.At(now+off, func(event.Time) {
				if ctx.Rec.replaying() {
					// Boosts mutate live scheduler state; during replay the
					// scheduler is restored from the snapshot instead.
					return
				}
				for _, th := range cfg.Boost {
					th.Task.Boost(boostLoad)
				}
			})
		}
		start := now
		RunStages(ctx, cfg.Stages(), func(fin event.Time) {
			if ctx.Lat != nil && !cfg.Silent {
				ctx.Lat.Record(fin - start)
			}
			think := event.Time(ctx.Jitter(float64(cfg.Think), cfg.ThinkCV))
			ctx.At(fin+think, next)
		})
	}
	ctx.After(event.Time(ctx.Jitter(float64(cfg.Think/2), 0.5)), next)
}

// TouchKicks models the Android input booster: while the user is touching
// the screen (Poisson events with the given mean gap), the little cluster's
// frequency is kicked to maximum. At full frequency a heavily loaded
// thread's frequency-invariant load can finally cross the HMP up-threshold,
// so sustained heavy scenes migrate to a big core — while light workloads
// just scale back down at the next governor sample.
func TouchKicks(ctx *Ctx, meanGap event.Time) {
	soc := ctx.Sys.SoC
	var touch func(now event.Time)
	touch = func(now event.Time) {
		if now >= ctx.Duration {
			return
		}
		if !ctx.Rec.replaying() {
			// Frequency kicks act on live DVFS state; during replay that
			// state is restored from the snapshot. The RNG draw below still
			// runs, keeping the replayed stream in lockstep.
			for ci := range soc.Clusters {
				cl := &soc.Clusters[ci]
				floor := cl.MaxMHz()
				if cl.Type == platform.Big {
					floor = 1500 // the booster's big-cluster frequency floor
				}
				if cl.CurMHz < floor && len(soc.OnlineCores(cl.Type)) > 0 {
					ctx.Sys.SetClusterFreq(ci, floor)
				}
			}
		}
		ctx.At(now+ctx.Exp(meanGap), touch)
	}
	ctx.After(ctx.Exp(meanGap), touch)
}

// CyclesForDuty returns the work in cycles that occupies the given duty
// fraction of a core at mhz for one period — used by app models to size
// frame work against frame budgets.
func CyclesForDuty(duty float64, mhz int, period event.Time) float64 {
	return duty * float64(mhz) / 1000 * float64(period)
}
