package workload

import (
	"fmt"
	"sort"

	"biglittle/internal/event"
)

// Whole-simulation snapshot needs the workload layer's state, but that state
// lives in Go closures (frame loops, interaction pipelines, staged fan-outs)
// which cannot be serialized. Instead of serializing them, a snapshot-enabled
// run records the workload's interaction with the simulator — every firing of
// a workload-scheduled event, every per-segment completion callback, and
// every read of scheduler state — into a compact log. Restoring re-runs the
// app's Build in replay mode (closures re-register instead of scheduling) and
// then replays the log in strict lockstep: the same closures run in the same
// order with the same clock and consume the same RNG draws, reconstructing
// the closure graph, the RNG position, and the FPS/latency trackers exactly.
// Replay touches neither the event heap nor the scheduler, so it costs a few
// microseconds per thousand records instead of re-simulating the prefix.
//
// The lockstep contract is strict: any mismatch between the replayed code
// path and the log (an unknown event id, a record of the wrong kind, a
// missing registration) means the snapshot and the binary disagree, and the
// restore fails loudly with a *DivergenceError rather than continuing from
// corrupt state.

// RecKind labels one Record in a workload log.
type RecKind uint8

const (
	// RecFire marks a workload-scheduled event (Ctx.At/After) firing.
	RecFire RecKind = 1
	// RecSeg marks a thread's per-segment completion callback running.
	RecSeg RecKind = 2
	// RecBusy marks a DropIfBusy gate reading the thread's run state.
	RecBusy RecKind = 3
	// RecPhase marks a session phase build (not replayable by core.Resume;
	// it documents where a live-session checkpoint's phases begin).
	RecPhase RecKind = 4
)

func (k RecKind) String() string {
	switch k {
	case RecFire:
		return "fire"
	case RecSeg:
		return "seg"
	case RecBusy:
		return "busy"
	case RecPhase:
		return "phase"
	}
	return fmt.Sprintf("RecKind(%d)", uint8(k))
}

// Record is one entry of a workload log. Field use depends on Kind:
// RecFire uses Wid and At; RecSeg uses Th (thread creation index) and At;
// RecBusy uses Busy; RecPhase uses App and At.
type Record struct {
	Kind RecKind    `json:"k"`
	Wid  int        `json:"w,omitempty"`
	Th   int        `json:"t,omitempty"`
	At   event.Time `json:"at,omitempty"`
	Busy bool       `json:"b,omitempty"`
	App  string     `json:"app,omitempty"`
}

// PendingEvent describes one workload event still queued at capture time:
// its log id and its exact (at, seq) engine ordering key, so restore can
// re-insert it with event.Engine.ScheduleAt and preserve the firing order.
type PendingEvent struct {
	Wid int        `json:"w"`
	At  event.Time `json:"at"`
	Seq uint64     `json:"seq"`
}

// DivergenceError reports that a replayed run's code path disagreed with the
// recorded log — the snapshot was taken by a different binary, config, or
// seed than the one restoring it.
type DivergenceError struct{ Msg string }

func (e *DivergenceError) Error() string { return "workload replay diverged: " + e.Msg }

// diverge aborts the replay. It panics (restore runs deep inside re-entered
// workload closures with no error path); core.Resume recovers the
// *DivergenceError and returns it as an ordinary error.
func diverge(format string, args ...any) {
	panic(&DivergenceError{Msg: fmt.Sprintf(format, args...)})
}

type recMode uint8

const (
	modeRecord recMode = iota
	modeReplay
)

// Recorder captures (and later replays) a run's workload log. A nil *Recorder
// on the Ctx disables recording entirely; plain runs pay nothing.
type Recorder struct {
	mode    recMode
	log     []Record
	cursor  int
	nextWid int
	live    map[int]event.Handle         // record mode: pending wid → handle
	fns     map[int]func(now event.Time) // replay mode: registered wid → fn
	threads []*Thread                    // creation order; RecSeg targets
}

// NewRecorder returns a Recorder in record mode, for a fresh snapshot-enabled
// run.
func NewRecorder() *Recorder {
	return &Recorder{mode: modeRecord, live: make(map[int]event.Handle)}
}

// NewReplayer returns a Recorder in replay mode over a copy of log. The copy
// makes the Recorder own its backing array, so the resumed run can append new
// records without mutating the (possibly shared) snapshot it was created
// from.
func NewReplayer(log []Record) *Recorder {
	return &Recorder{
		mode: modeReplay,
		log:  append([]Record(nil), log...),
		live: make(map[int]event.Handle),
		fns:  make(map[int]func(now event.Time)),
	}
}

// Recording reports whether the recorder is capturing (as opposed to
// replaying). A snapshot may only be taken while recording.
func (r *Recorder) Recording() bool { return r != nil && r.mode == modeRecord }

func (r *Recorder) replaying() bool { return r != nil && r.mode == modeReplay }

// Log returns the recorded log. The caller must treat it as read-only.
func (r *Recorder) Log() []Record { return r.log }

// PendingCount returns the number of workload events currently queued on the
// engine. Capture uses it to prove every engine event is accounted for.
func (r *Recorder) PendingCount() int { return len(r.live) }

// ThreadCount returns how many threads the workload build registered — a
// cheap cross-check that a replayed build recreated the original structure.
func (r *Recorder) ThreadCount() int { return len(r.threads) }

// Pending returns descriptors for the workload events still queued at
// capture, ordered by engine sequence number (deterministic).
func (r *Recorder) Pending() []PendingEvent {
	out := make([]PendingEvent, 0, len(r.live))
	for wid, h := range r.live {
		seq, ok := h.EventSeq()
		if !ok {
			diverge("live event %d is not pending on the engine", wid)
		}
		out = append(out, PendingEvent{Wid: wid, At: h.At(), Seq: seq})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// registerThread assigns the thread its creation index. Creation order is
// deterministic (builds are single-threaded), so record and replay agree on
// the numbering.
func (r *Recorder) registerThread(th *Thread) int {
	r.threads = append(r.threads, th)
	return len(r.threads) - 1
}

// schedule is the record/replay interposition point for Ctx.At. In record
// mode it schedules fn wrapped so the firing is logged; in replay mode it
// only registers fn under the next id — the replay driver (or the pending
// re-binding) invokes it later.
func (r *Recorder) schedule(eng *event.Engine, at event.Time, fn func(now event.Time)) {
	wid := r.nextWid
	r.nextWid++
	if r.mode == modeReplay {
		r.fns[wid] = fn
		return
	}
	r.live[wid] = eng.At(at, r.wrap(wid, fn))
}

// wrap returns fn wrapped to log its firing and drop it from the live set.
func (r *Recorder) wrap(wid int, fn func(now event.Time)) event.Handler {
	return func(now event.Time) {
		delete(r.live, wid)
		r.log = append(r.log, Record{Kind: RecFire, Wid: wid, At: now})
		fn(now)
	}
}

// noteSeg logs a per-segment callback invocation (record mode only; replay
// invocations are driven from the log and must not re-log).
func (r *Recorder) noteSeg(th int, now event.Time) {
	if r.mode == modeRecord {
		r.log = append(r.log, Record{Kind: RecSeg, Th: th, At: now})
	}
}

// observeBusy routes a DropIfBusy read through the log: recorded on capture,
// served from the log on replay (the scheduler does not run during replay, so
// the live read would be wrong).
func (r *Recorder) observeBusy(busy bool) bool {
	if r.mode == modeRecord {
		r.log = append(r.log, Record{Kind: RecBusy, Busy: busy})
		return busy
	}
	rec := r.next()
	if rec.Kind != RecBusy {
		diverge("log[%d]: replay read a busy gate but the record is %v", r.cursor-1, rec.Kind)
	}
	return rec.Busy
}

// NotePhase logs a session phase build marker. core.Resume refuses logs that
// contain phase markers (a live session's phases cannot be rebuilt by
// core.Resume); the marker documents the checkpoint's structure for
// inspection and for a future session-resume path.
func (r *Recorder) NotePhase(app string, now event.Time) {
	if r.mode == modeRecord {
		r.log = append(r.log, Record{Kind: RecPhase, App: app, At: now})
	}
}

// next consumes one record.
func (r *Recorder) next() Record {
	if r.cursor >= len(r.log) {
		diverge("log exhausted at record %d", r.cursor)
	}
	rec := r.log[r.cursor]
	r.cursor++
	return rec
}

// Replay drives the log to its end: for each top-level record it forces the
// clock to the recorded firing time and re-invokes the registered closure
// (RecFire) or the thread's segment callback (RecSeg). Nested reads (RecBusy)
// are consumed inline by the closures themselves. On any mismatch it panics
// with *DivergenceError.
func (r *Recorder) Replay(eng *event.Engine) {
	if r.mode != modeReplay {
		diverge("Replay called on a recording Recorder")
	}
	for r.cursor < len(r.log) {
		rec := r.next()
		switch rec.Kind {
		case RecFire:
			fn := r.fns[rec.Wid]
			if fn == nil {
				diverge("log[%d]: event %d fired but was never registered", r.cursor-1, rec.Wid)
			}
			delete(r.fns, rec.Wid)
			eng.SetNow(rec.At)
			fn(rec.At)
		case RecSeg:
			if rec.Th < 0 || rec.Th >= len(r.threads) {
				diverge("log[%d]: segment callback for unknown thread %d (have %d)",
					r.cursor-1, rec.Th, len(r.threads))
			}
			eng.SetNow(rec.At)
			r.threads[rec.Th].Task.OnSegment(rec.At)
		case RecBusy:
			diverge("log[%d]: busy-gate record not consumed by its event", r.cursor-1)
		case RecPhase:
			diverge("log[%d]: phase marker %q — session checkpoints cannot be resumed here",
				r.cursor-1, rec.App)
		default:
			diverge("log[%d]: unknown record kind %d", r.cursor-1, uint8(rec.Kind))
		}
	}
}

// Resched re-inserts the captured pending workload events onto the engine
// (after the engine has been Reset to the capture point) under their original
// (at, seq) keys, then switches the Recorder to record mode so the resumed
// run extends the log exactly as an uninterrupted run would have.
func (r *Recorder) Resched(eng *event.Engine, pending []PendingEvent) {
	if r.mode != modeReplay {
		diverge("Resched called on a recording Recorder")
	}
	for _, p := range pending {
		fn := r.fns[p.Wid]
		if fn == nil {
			diverge("pending event %d was never registered during replay", p.Wid)
		}
		delete(r.fns, p.Wid)
		r.live[p.Wid] = eng.ScheduleAt(p.At, p.Seq, r.wrap(p.Wid, fn))
	}
	for wid := range r.fns {
		diverge("event %d registered during replay but neither fired nor pending", wid)
	}
	r.mode = modeRecord
	r.fns = nil
}
