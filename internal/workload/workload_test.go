package workload

import (
	"math"
	"math/rand"
	"testing"

	"biglittle/internal/event"
	"biglittle/internal/metrics"
	"biglittle/internal/platform"
	"biglittle/internal/sched"
)

func newCtx(dur event.Time) *Ctx {
	eng := event.New()
	sys := sched.New(eng, platform.Exynos5422(), sched.DefaultConfig())
	sys.Start()
	return &Ctx{
		Eng: eng, Sys: sys, Rng: rand.New(rand.NewSource(1)),
		Duration: dur,
		FPS:      &metrics.FPSTracker{},
		Lat:      &metrics.LatencyTracker{},
	}
}

func TestThreadPushCallbacks(t *testing.T) {
	ctx := newCtx(event.Second)
	th := NewThread(ctx, "t", 1.5)
	var order []int
	th.Push(1000, func(event.Time) { order = append(order, 1) })
	th.Push(1000, nil)
	th.Push(1000, func(event.Time) { order = append(order, 3) })
	ctx.Eng.Run(100 * event.Millisecond)
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("callback order %v", order)
	}
}

func TestThreadPushZeroImmediate(t *testing.T) {
	ctx := newCtx(event.Second)
	th := NewThread(ctx, "t", 1)
	fired := false
	th.Push(0, func(event.Time) { fired = true })
	if !fired {
		t.Fatal("zero-work push must complete synchronously")
	}
}

func TestJitterBounds(t *testing.T) {
	ctx := newCtx(event.Second)
	for i := 0; i < 1000; i++ {
		v := ctx.Jitter(100, 0.3)
		if v < 70-1e-9 || v > 130+1e-9 {
			t.Fatalf("jitter %f outside [70,130]", v)
		}
	}
	if ctx.Jitter(100, 0) != 100 {
		t.Fatal("cv=0 must be exact")
	}
	// Extreme cv clamps at 10% of mean.
	for i := 0; i < 1000; i++ {
		if v := ctx.Jitter(100, 2); v < 10-1e-9 {
			t.Fatalf("jitter %f below clamp", v)
		}
	}
}

func TestExpDistribution(t *testing.T) {
	ctx := newCtx(event.Second)
	var sum float64
	n := 5000
	for i := 0; i < n; i++ {
		d := ctx.Exp(10 * event.Millisecond)
		if d < 100*event.Microsecond {
			t.Fatal("below minimum clamp")
		}
		sum += d.Seconds()
	}
	mean := sum / float64(n)
	if mean < 0.008 || mean > 0.012 {
		t.Fatalf("mean %f, want ~0.010", mean)
	}
}

func TestHeavyTail(t *testing.T) {
	ctx := newCtx(event.Second)
	heavy := 0
	n := 10000
	for i := 0; i < n; i++ {
		if ctx.HeavyTail(100, 0, 0.1, 5) > 300 {
			heavy++
		}
	}
	frac := float64(heavy) / float64(n)
	if frac < 0.07 || frac > 0.13 {
		t.Fatalf("heavy fraction %f, want ~0.10", frac)
	}
}

func TestPeriodicRuns(t *testing.T) {
	ctx := newCtx(event.Second)
	th := NewThread(ctx, "p", 1)
	count := 0
	Periodic(ctx, th, PeriodicConfig{
		Period: 100 * event.Millisecond,
		Work:   1000,
		OnDone: func(event.Time) { count++ },
	})
	ctx.Eng.Run(ctx.Duration)
	if count != 10 {
		t.Fatalf("%d activations, want 10", count)
	}
}

func TestPeriodicDropIfBusy(t *testing.T) {
	ctx := newCtx(event.Second)
	th := NewThread(ctx, "p", 1)
	done := 0
	// Work takes 300ms at 500 MHz, period is 100ms: with DropIfBusy most
	// activations are skipped.
	Periodic(ctx, th, PeriodicConfig{
		Period:     100 * event.Millisecond,
		Work:       150e6,
		DropIfBusy: true,
		OnDone:     func(event.Time) { done++ },
	})
	ctx.Eng.Run(ctx.Duration)
	if done >= 10 || done == 0 {
		t.Fatalf("%d completions, want a dropped-frame count in (0,10)", done)
	}
}

func TestContinuousSaturates(t *testing.T) {
	ctx := newCtx(event.Second)
	th := NewThread(ctx, "c", 1)
	Continuous(ctx, th, 1e6)
	ctx.Eng.Run(ctx.Duration)
	busy := th.Task.LittleRanNs + th.Task.BigRanNs
	if busy < 950*event.Millisecond {
		t.Fatalf("continuous thread busy only %v of 1s", busy)
	}
}

func TestPoissonBursts(t *testing.T) {
	ctx := newCtx(2 * event.Second)
	th := NewThread(ctx, "b", 1)
	PoissonBursts(ctx, th, 50*event.Millisecond, 1000, 0.2)
	ctx.Eng.Run(ctx.Duration)
	if th.Task.SegmentsDone < 20 || th.Task.SegmentsDone > 70 {
		t.Fatalf("%d bursts in 2s at 50ms mean, want ~40", th.Task.SegmentsDone)
	}
}

func TestRunStagesSequential(t *testing.T) {
	ctx := newCtx(event.Second)
	a := NewThread(ctx, "a", 1)
	b := NewThread(ctx, "b", 1)
	var doneAt event.Time
	var aDone, bDone event.Time
	a.Task.OnIdle = func(now event.Time) { aDone = now }
	b.Task.OnIdle = func(now event.Time) { bDone = now }
	RunStages(ctx, []Stage{
		{Threads: []*Thread{a}, Work: 5e5}, // 1ms at 500MHz
		{Threads: []*Thread{b}, Work: 5e5},
	}, func(now event.Time) { doneAt = now })
	ctx.Eng.Run(ctx.Duration)
	if doneAt == 0 {
		t.Fatal("pipeline never completed")
	}
	if !(aDone > 0 && bDone >= aDone && doneAt >= bDone) {
		t.Fatalf("stage ordering violated: a=%v b=%v done=%v", aDone, bDone, doneAt)
	}
}

func TestRunStagesParallelBarrier(t *testing.T) {
	ctx := newCtx(event.Second)
	a := NewThread(ctx, "a", 1)
	b := NewThread(ctx, "b", 1)
	c := NewThread(ctx, "c", 1)
	var doneAt event.Time
	RunStages(ctx, []Stage{
		{Threads: []*Thread{a, b}, Work: 5e5},
		{Threads: []*Thread{c}, Work: 5e5},
	}, func(now event.Time) { doneAt = now })
	ctx.Eng.Run(ctx.Duration)
	if doneAt == 0 {
		t.Fatal("pipeline never completed")
	}
	if a.Task.TotalWork == 0 || b.Task.TotalWork == 0 || c.Task.TotalWork == 0 {
		t.Fatal("some stage thread did no work")
	}
}

func TestRunStagesPostDelay(t *testing.T) {
	ctx := newCtx(event.Second)
	a := NewThread(ctx, "a", 1)
	var doneAt event.Time
	RunStages(ctx, []Stage{
		{Threads: []*Thread{a}, Work: 5e5, PostDelay: 50 * event.Millisecond},
	}, func(now event.Time) { doneAt = now })
	ctx.Eng.Run(ctx.Duration)
	if doneAt < 51*event.Millisecond {
		t.Fatalf("pipeline completed at %v, PostDelay not applied", doneAt)
	}
}

func TestRunStagesEmptyStage(t *testing.T) {
	ctx := newCtx(event.Second)
	fired := false
	RunStages(ctx, []Stage{{}, {}}, func(event.Time) { fired = true })
	if !fired {
		t.Fatal("empty pipeline should complete immediately")
	}
}

func TestInteractionLoopRecordsLatency(t *testing.T) {
	ctx := newCtx(2 * event.Second)
	th := NewThread(ctx, "ui", 1)
	InteractionLoop(ctx, InteractionConfig{
		Think: 100 * event.Millisecond,
		Stages: func() []Stage {
			return []Stage{{Threads: []*Thread{th}, Work: 5e5}}
		},
	})
	ctx.Eng.Run(ctx.Duration)
	if ctx.Lat.N < 10 {
		t.Fatalf("%d interactions in 2s at 100ms think", ctx.Lat.N)
	}
	if ctx.Lat.Mean() <= 0 {
		t.Fatal("no latency recorded")
	}
}

func TestInteractionLoopSilent(t *testing.T) {
	ctx := newCtx(event.Second)
	th := NewThread(ctx, "ui", 1)
	InteractionLoop(ctx, InteractionConfig{
		Think: 50 * event.Millisecond, Silent: true,
		Stages: func() []Stage {
			return []Stage{{Threads: []*Thread{th}, Work: 1e5}}
		},
	})
	ctx.Eng.Run(ctx.Duration)
	if ctx.Lat.N != 0 {
		t.Fatalf("silent loop recorded %d latencies", ctx.Lat.N)
	}
	if th.Task.SegmentsDone == 0 {
		t.Fatal("silent loop did no work")
	}
}

func TestInteractionBoostPlacesOnBig(t *testing.T) {
	ctx := newCtx(event.Second)
	th := NewThread(ctx, "ui", 1.8)
	sawBig := false
	InteractionLoop(ctx, InteractionConfig{
		Think: 50 * event.Millisecond,
		Boost: []*Thread{th}, BoostLoad: 900,
		Stages: func() []Stage {
			return []Stage{{Threads: []*Thread{th}, Work: 2e6}}
		},
	})
	ctx.Sys.TickHook = func(now event.Time) {
		if cpu := th.Task.CPU(); cpu >= 4 {
			sawBig = true
		}
	}
	ctx.Eng.Run(ctx.Duration)
	if !sawBig {
		t.Fatal("boosted thread never placed on a big core")
	}
}

func TestTouchKicksRaiseFrequency(t *testing.T) {
	ctx := newCtx(event.Second)
	TouchKicks(ctx, 50*event.Millisecond)
	lc := ctx.Sys.SoC.ClusterByType(platform.Little)
	bc := ctx.Sys.SoC.ClusterByType(platform.Big)
	sawLittleMax, sawBigFloor := false, false
	ctx.Sys.TickHook = func(now event.Time) {
		if lc.CurMHz == lc.MaxMHz() {
			sawLittleMax = true
		}
		if bc.CurMHz >= 1500 {
			sawBigFloor = true
		}
	}
	ctx.Eng.Run(ctx.Duration)
	if !sawLittleMax || !sawBigFloor {
		t.Fatalf("kicks not observed: littleMax=%v bigFloor=%v", sawLittleMax, sawBigFloor)
	}
}

func TestCyclesForDuty(t *testing.T) {
	// 50% of a 1300 MHz core over 10ms = 6.5e6 cycles.
	got := CyclesForDuty(0.5, 1300, 10*event.Millisecond)
	if math.Abs(got-6.5e6) > 1 {
		t.Fatalf("CyclesForDuty = %f, want 6.5e6", got)
	}
}
