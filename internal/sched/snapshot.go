package sched

import (
	"fmt"

	"biglittle/internal/event"
)

// Snapshot/Restore of the scheduler for whole-simulation fork (DESIGN.md §9).
// Capture is a pure read of the lazily-synced state — it deliberately does
// NOT SyncAll first, because splitting an accounting interval at the capture
// point would change floating-point accumulation order versus an
// uninterrupted run and break byte-identity. Pending engine events
// (completions, the tick, in-flight deep-idle wakes) are captured as
// (at, seq) keys and re-bound onto the once-bound handlers at restore.

// TaskSnap is the dynamic state of one Task. Static identity (ID, Name,
// Speedup, callbacks) is reconstructed by re-running the workload build.
type TaskSnap struct {
	State     State      `json:"state"`
	CPU       int        `json:"cpu"`
	Pinned    int        `json:"pin"`
	LastCPU   int        `json:"last"`
	Remaining float64    `json:"rem"`
	Fifo      []float64  `json:"fifo,omitempty"`
	RanNs     event.Time `json:"ran"`
	WokeAt    event.Time `json:"woke"`
	SleepLoad float64    `json:"sleepLoad"`
	Load      float64    `json:"load"`

	TotalWork    float64    `json:"work"`
	Migrations   int        `json:"migr"`
	SegmentsDone int        `json:"segs"`
	BigRanNs     event.Time `json:"bigNs"`
	LittleRanNs  event.Time `json:"littleNs"`
	TinyRanNs    event.Time `json:"tinyNs"`
	EnergyMJ     float64    `json:"energyMJ"`

	// In-flight deep-idle wake, if any.
	WakePending bool       `json:"wakeP,omitempty"`
	WakeAt      event.Time `json:"wakeAt,omitempty"`
	WakeSeq     uint64     `json:"wakeSeq,omitempty"`
	WakeDst     int        `json:"wakeDst,omitempty"`
}

// CPUSnap is the dynamic state of one run queue.
type CPUSnap struct {
	Queue     []int      `json:"q,omitempty"` // task IDs, head first
	LastSync  event.Time `json:"sync"`
	BusyCum   event.Time `json:"busy"`
	SliceUsed int        `json:"slice"`
	IdleSince event.Time `json:"idle"`
	DeepCum   event.Time `json:"deep"`

	// Pending completion event for the head task, if any.
	CompPending bool       `json:"compP,omitempty"`
	CompAt      event.Time `json:"compAt,omitempty"`
	CompSeq     uint64     `json:"compSeq,omitempty"`
}

// Snap is the scheduler's full dynamic state.
type Snap struct {
	Tasks   []TaskSnap `json:"tasks"`
	CPUs    []CPUSnap  `json:"cpus"`
	Started bool       `json:"started"`

	// The pending scheduler tick (always pending once Started).
	TickPending bool       `json:"tickP,omitempty"`
	TickAt      event.Time `json:"tickAt,omitempty"`
	TickSeq     uint64     `json:"tickSeq,omitempty"`
}

// PendingEvents returns how many engine events the snapshot accounts for —
// used by capture to prove every queued event belongs to some subsystem.
func (sn *Snap) PendingEvents() int {
	n := 0
	if sn.TickPending {
		n++
	}
	for i := range sn.CPUs {
		if sn.CPUs[i].CompPending {
			n++
		}
	}
	for i := range sn.Tasks {
		if sn.Tasks[i].WakePending {
			n++
		}
	}
	return n
}

// Snapshot captures the scheduler's dynamic state. It does not mutate the
// system.
func (s *System) Snapshot() Snap {
	sn := Snap{Started: s.started}
	if seq, ok := s.tickEv.EventSeq(); ok {
		sn.TickPending, sn.TickAt, sn.TickSeq = true, s.tickEv.At(), seq
	}
	for _, t := range s.tasks {
		ts := TaskSnap{
			State:     t.state,
			CPU:       t.cpu,
			Pinned:    t.pinned,
			LastCPU:   t.lastCPU,
			Remaining: t.remaining,
			RanNs:     t.ranNs,
			WokeAt:    t.wokeAt,
			SleepLoad: t.sleepLoad,
			Load:      t.tracker.LoadF(),

			TotalWork:    t.TotalWork,
			Migrations:   t.Migrations,
			SegmentsDone: t.SegmentsDone,
			BigRanNs:     t.BigRanNs,
			LittleRanNs:  t.LittleRanNs,
			TinyRanNs:    t.TinyRanNs,
			EnergyMJ:     t.EnergyMJ,
		}
		if pend := t.fifo[t.fifoHead:]; len(pend) > 0 {
			ts.Fifo = append([]float64(nil), pend...)
		}
		if seq, ok := t.wakeEv.EventSeq(); ok {
			ts.WakePending, ts.WakeAt, ts.WakeSeq = true, t.wakeEv.At(), seq
			ts.WakeDst = t.wakeDst
		}
		sn.Tasks = append(sn.Tasks, ts)
	}
	for _, c := range s.cpus {
		cs := CPUSnap{
			LastSync:  c.lastSync,
			BusyCum:   c.busyCum,
			SliceUsed: c.sliceUsed,
			IdleSince: c.idleSince,
			DeepCum:   c.deepCum,
		}
		for _, t := range c.queue {
			cs.Queue = append(cs.Queue, t.ID)
		}
		if seq, ok := c.completion.EventSeq(); ok {
			cs.CompPending, cs.CompAt, cs.CompSeq = true, c.completion.At(), seq
		}
		sn.CPUs = append(sn.CPUs, cs)
	}
	return sn
}

// Restore loads sn into a freshly built system whose tasks were re-created
// (in the same order) by a replayed workload build. The engine must already
// be Reset to the capture point; pending events are re-bound with their
// original (at, seq) keys so the firing order is preserved exactly.
func (s *System) Restore(sn *Snap) error {
	if len(sn.Tasks) != len(s.tasks) {
		return fmt.Errorf("sched: snapshot has %d tasks, system has %d", len(sn.Tasks), len(s.tasks))
	}
	if len(sn.CPUs) != len(s.cpus) {
		return fmt.Errorf("sched: snapshot has %d cpus, system has %d", len(sn.CPUs), len(s.cpus))
	}
	for i, t := range s.tasks {
		ts := &sn.Tasks[i]
		t.state = ts.State
		t.cpu = ts.CPU
		t.pinned = ts.Pinned
		t.lastCPU = ts.LastCPU
		t.remaining = ts.Remaining
		t.fifo = append(t.fifo[:0], ts.Fifo...)
		t.fifoHead = 0
		t.ranNs = ts.RanNs
		t.wokeAt = ts.WokeAt
		t.sleepLoad = ts.SleepLoad
		t.tracker.Set(ts.Load)
		t.TotalWork = ts.TotalWork
		t.Migrations = ts.Migrations
		t.SegmentsDone = ts.SegmentsDone
		t.BigRanNs = ts.BigRanNs
		t.LittleRanNs = ts.LittleRanNs
		t.TinyRanNs = ts.TinyRanNs
		t.EnergyMJ = ts.EnergyMJ
		if ts.WakePending {
			if ts.WakeDst < 0 || ts.WakeDst >= len(s.cpus) {
				return fmt.Errorf("sched: task %d wake destination %d out of range", i, ts.WakeDst)
			}
			t.wakeDst = ts.WakeDst
			t.wakeEv = s.Eng.ScheduleAt(ts.WakeAt, ts.WakeSeq, t.wakeFn)
		}
	}
	for i, c := range s.cpus {
		cs := &sn.CPUs[i]
		c.queue = c.queue[:0]
		for _, id := range cs.Queue {
			if id < 0 || id >= len(s.tasks) {
				return fmt.Errorf("sched: cpu %d queue references unknown task %d", i, id)
			}
			c.queue = append(c.queue, s.tasks[id])
		}
		c.lastSync = cs.LastSync
		c.busyCum = cs.BusyCum
		c.sliceUsed = cs.SliceUsed
		c.idleSince = cs.IdleSince
		c.deepCum = cs.DeepCum
		if cs.CompPending {
			c.completion = s.Eng.ScheduleAt(cs.CompAt, cs.CompSeq, c.completeFn)
		}
	}
	s.started = sn.Started
	if sn.TickPending {
		s.tickEv = s.Eng.ScheduleAt(sn.TickAt, sn.TickSeq, s.tickFn)
	}
	return nil
}
