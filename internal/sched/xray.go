package sched

import (
	"fmt"

	"biglittle/internal/event"
	"biglittle/internal/platform"
	"biglittle/internal/xray"
)

// This file holds the scheduler's causal-tracer emit sites. They are pure
// observers: each re-derives the candidate set a decision considered using
// the same inputs the decision used, after the decision was made, entirely
// inside an `s.Xray != nil` guard — so the traced and untraced runs are
// byte-identical and the disabled path costs one pointer check.

// xray rejection reasons for scheduler candidates. Shared string constants
// keep dumps greppable and the vocabulary documented in one place.
const (
	xrayOffline     = "offline"
	xrayAboveTier   = "above-preferred-tier"
	xrayBelowTier   = "below-preferred-tier"
	xrayDeeperQueue = "deeper-queue"
	xrayNotPrevCPU  = "not-previous-cpu"
	xrayQueueTie    = "queue-tie-earlier-core-won"
	xraySourceCore  = "source-core"
)

// xrayCandidates re-derives the candidate set for a placement onto chosen:
// every core, with the reason each non-chosen one lost. affinity marks that
// chosen won as the task's idle previous CPU (cache affinity), in which case
// same-tier peers lose to affinity rather than queue depth. adjust maps a
// core ID to a queue-length correction so callers can report pre-decision
// depths after the queues already changed.
func (s *System) xrayCandidates(chosen *cpu, affinity bool, src int, adjust func(id int) int) []xray.Candidate {
	chosenTier := chosen.typ.Tier()
	cands := make([]xray.Candidate, 0, len(s.cpus))
	for _, c := range s.cpus {
		qlen := len(c.queue) + adjust(c.id)
		cand := xray.Candidate{Core: c.id, Type: c.typ.String(), QueueLen: qlen}
		switch {
		case c == chosen:
			// chosen: Rejected stays ""
		case !s.SoC.Cores[c.id].Online:
			cand.Rejected = xrayOffline
		case c.id == src:
			cand.Rejected = xraySourceCore
		case c.typ.Tier() > chosenTier:
			cand.Rejected = xrayAboveTier
		case c.typ.Tier() < chosenTier:
			cand.Rejected = xrayBelowTier
		case affinity:
			cand.Rejected = xrayNotPrevCPU
		case qlen > len(chosen.queue)+adjust(chosen.id):
			cand.Rejected = xrayDeeperQueue
		default:
			cand.Rejected = xrayQueueTie
		}
		cands = append(cands, cand)
	}
	return cands
}

func noAdjust(int) int { return 0 }

// xrayWake records the wake-placement span for t onto c. Call it before t is
// enqueued (queue depths are the ones wakeCPU compared); prevCPU is the
// task's previous core as wakeCPU saw it, before Push overwrote lastCPU.
// Only called when s.Xray != nil.
func (s *System) xrayWake(t *Task, c *cpu, prevCPU int, now event.Time, reason string) {
	if t.pinned >= 0 {
		s.Xray.Wake(now, t.ID, t.Name, c.id, s.SoC.Cores[c.id].Cluster,
			fmt.Sprintf("woke pinned on cpu%d", c.id), reason,
			[]xray.Input{
				{Name: "load", Value: float64(t.Load())},
				{Name: "pinned", Value: float64(t.pinned)},
			},
			[]xray.Candidate{{Core: c.id, Type: c.typ.String(), QueueLen: len(c.queue)}})
		return
	}
	// Re-derive the tier hysteresis exactly as wakeCPU did.
	lastTier := platform.Little.Tier()
	if prevCPU >= 0 {
		lastTier = s.cpus[prevCPU].typ.Tier()
	}
	targetTier := lastTier
	switch {
	case t.Load() > s.Cfg.UpThreshold:
		targetTier++
	case t.Load() < s.Cfg.DownThreshold:
		targetTier--
	}
	if targetTier > 2 {
		targetTier = 2
	}
	if targetTier < 1 && t.sleepLoad >= float64(s.Cfg.TinyWakeLoad) {
		targetTier = 1
	}
	if targetTier < 0 {
		targetTier = 0
	}
	affinity := prevCPU == c.id && len(c.queue) == 0
	s.Xray.Wake(now, t.ID, t.Name, c.id, s.SoC.Cores[c.id].Cluster,
		fmt.Sprintf("woke on cpu%d (%s)", c.id, c.typ), reason,
		[]xray.Input{
			{Name: "load", Value: float64(t.Load())},
			{Name: "up_threshold", Value: float64(s.Cfg.UpThreshold)},
			{Name: "down_threshold", Value: float64(s.Cfg.DownThreshold)},
			{Name: "burst_footprint", Value: t.sleepLoad},
			{Name: "tiny_wake_load", Value: float64(s.Cfg.TinyWakeLoad)},
			{Name: "last_cpu", Value: float64(prevCPU)},
			{Name: "target_tier", Value: float64(targetTier)},
		},
		s.xrayCandidates(c, affinity, -1, noAdjust))
}

// xrayMigrate records a migration span. Call it after the queues moved: t is
// already on dst, so queue depths are corrected back to decision time. Only
// called when s.Xray != nil.
func (s *System) xrayMigrate(t *Task, src, dst *cpu, now event.Time, reason string) {
	adjust := func(id int) int {
		switch id {
		case dst.id:
			return -1 // t already appended to dst
		case src.id:
			return 1 // t already removed from src
		}
		return 0
	}
	// No affinity flag here: at migration time the task's previous CPU is the
	// source it is leaving, so cache affinity never picks the destination.
	s.Xray.Migration(now, t.ID, t.Name, src.id, dst.id, s.SoC.Cores[dst.id].Cluster,
		fmt.Sprintf("cpu%d (%s) -> cpu%d (%s)", src.id, src.typ, dst.id, dst.typ), reason,
		[]xray.Input{
			{Name: "load", Value: float64(t.Load())},
			{Name: "up_threshold", Value: float64(s.Cfg.UpThreshold)},
			{Name: "down_threshold", Value: float64(s.Cfg.DownThreshold)},
			{Name: "burst_footprint", Value: t.sleepLoad},
			{Name: "tiny_wake_load", Value: float64(s.Cfg.TinyWakeLoad)},
			{Name: "src_tier", Value: float64(src.typ.Tier())},
			{Name: "dst_tier", Value: float64(dst.typ.Tier())},
		},
		s.xrayCandidates(dst, false, src.id, adjust))
}

// xrayHotplug records a core online/offline transition. queued is the number
// of tasks about to be evicted (offline only). Only called when s.Xray != nil.
func (s *System) xrayHotplug(id int, online bool, queued int, now event.Time, reason string) {
	state := "offline"
	if online {
		state = "online"
	}
	s.Xray.Hotplug(now, id, s.SoC.Cores[id].Cluster,
		fmt.Sprintf("cpu%d %s", id, state), reason,
		[]xray.Input{{Name: "evicted", Value: float64(queued)}})
}
