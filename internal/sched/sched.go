// Package sched implements the CPU execution engine and the HMP
// (Heterogeneous Multi-Processing) scheduler described in §IV-B of the paper
// (Algorithm 1): per-core run queues with round-robin time slicing at 1 ms
// scheduler ticks, per-task frequency-invariant load tracking with geometric
// decay (half-life 32 ms), up/down-threshold migration between the big and
// little clusters, intra-cluster load balancing, and load-based wake
// placement.
//
// Work is expressed in little-core cycles: a task segment of W cycles runs at
// rate f·1e6 cycles/s on a little core at f MHz and at Speedup·f·1e6 on a big
// core, where Speedup is the task's big-core efficiency (§IV-A).
package sched

import (
	"fmt"

	"biglittle/internal/event"
	"biglittle/internal/pelt"
	"biglittle/internal/platform"
	"biglittle/internal/profile"
	"biglittle/internal/telemetry"
	"biglittle/internal/xray"
)

// Config holds the HMP scheduler tunables swept in §VI-C.
type Config struct {
	// UpThreshold: a task on a little core migrates up when its tracked
	// load exceeds this (default 700 of 1024).
	UpThreshold int
	// DownThreshold: a task on a big core migrates down below this
	// (default 256).
	DownThreshold int
	// HalfLifeMs is the load-history time weight (default 32; the paper
	// sweeps 2x and ½x).
	HalfLifeMs int
	// TickMs is the scheduler tick (load update / migration / balancing
	// period). The paper's load history operates at 1 ms granularity.
	TickMs int
	// DeepIdle enables the deep (cluster-sleep) idle state: a core idle for
	// longer than DeepIdleAfter powers down its activity overhead entirely
	// but pays DeepIdleWake of extra latency on the next wake — the cpuidle
	// menu-governor trade-off. Zero values disable deep idle (WFI only).
	DeepIdleAfter event.Time
	DeepIdleWake  event.Time
	// TinyWakeLoad gates the tiny tier (platforms with tiny cores only): a
	// task may wake on or migrate down to a tiny core only when its
	// burst footprint — the EWMA of its load at sleep time — is below this
	// value. This is the small-task-packing heuristic tiny-core proposals
	// rely on; placing by instantaneous (decayed) load alone would sink
	// every interactive thread into the tiny cluster. Default 70.
	TinyWakeLoad int
}

// DefaultConfig returns the paper's baseline HMP parameters.
func DefaultConfig() Config {
	return Config{UpThreshold: 700, DownThreshold: 256, HalfLifeMs: pelt.DefaultHalfLifeMs, TickMs: 1, TinyWakeLoad: 70}
}

// State is a task's lifecycle state.
type State int

const (
	Sleeping State = iota
	Waking         // paying a deep-idle exit latency before enqueue
	Runnable       // on a run queue, not executing
	Running        // head of a run queue
)

func (s State) String() string {
	switch s {
	case Sleeping:
		return "sleeping"
	case Waking:
		return "waking"
	case Runnable:
		return "runnable"
	default:
		return "running"
	}
}

// Task is a schedulable entity.
type Task struct {
	ID   int
	Name string
	// Speedup is the big-core efficiency: execution rate multiplier when
	// running on a big core (>= 1).
	Speedup float64

	// OnSegment fires when a pushed work segment completes.
	OnSegment func(now event.Time)
	// OnIdle fires when the task drains all queued work and goes to sleep.
	OnIdle func(now event.Time)

	sys       *System
	tracker   *pelt.Tracker
	state     State
	cpu       int // current queue, -1 when sleeping
	pinned    int // affinity: -1 means any core
	lastCPU   int // last cpu it was queued on (for wake placement / freq scale)
	remaining float64
	// fifo[fifoHead:] holds pending work segments. The head index (rather
	// than re-slicing fifo[1:]) keeps the backing array's front capacity, so
	// steady push/pop cycles reuse one allocation instead of growing forever.
	fifo     []float64
	fifoHead int
	ranNs    event.Time // execution time within the current tick window
	wokeAt   event.Time
	// sleepLoad is an EWMA of the task's load at each sleep transition —
	// its "burst footprint", used to gate the tiny tier.
	sleepLoad float64
	// wakeFn/wakeEv/wakeDst track the deep-idle exit event: the handler is
	// bound once at task creation and the handle retained so snapshot can
	// capture (and restore can re-bind) an in-flight wake.
	wakeFn  event.Handler
	wakeEv  event.Handle
	wakeDst int

	// Stats
	TotalWork    float64
	Migrations   int
	SegmentsDone int
	BigRanNs     event.Time
	LittleRanNs  event.Time
	TinyRanNs    event.Time
	// EnergyMJ attributes the activity-proportional system energy to the
	// task (accumulated when System.EnergyModel is set).
	EnergyMJ float64
}

// Load returns the task's tracked HMP load (0..1024).
func (t *Task) Load() int { return t.tracker.Load() }

// Pin restricts the task to one core: it always wakes there and is exempt
// from HMP migration and load balancing (the kernel's CPU affinity mask).
// Pin must be called while the task is asleep; pinning to an offline core
// panics at the next wake.
func (t *Task) Pin(cpu int) { t.pinned = cpu }

// Boost raises the task's tracked load to at least v (0..1024), mimicking
// the input-boost mechanism Android applies on touch events so that the
// responding threads are immediately eligible for a big core. The boost
// decays through normal load tracking.
func (t *Task) Boost(v int) {
	if float64(v) > t.tracker.LoadF() {
		t.tracker.Set(float64(v))
		if t.sys != nil && t.sys.Tel != nil {
			t.sys.Tel.Emit(telemetry.Event{
				At: t.sys.Eng.Now(), Kind: telemetry.KindBoost,
				Task: t.ID, TaskName: t.Name,
				Core: t.cpu, FromCore: -1, Cluster: -1,
				Value: float64(v),
			})
		}
	}
}

// State returns the current lifecycle state.
func (t *Task) CurState() State { return t.state }

// CPU returns the core the task is queued on, or -1.
func (t *Task) CPU() int { return t.cpu }

// Queued returns the number of pending work segments beyond the current one.
func (t *Task) Queued() int { return len(t.fifo) - t.fifoHead }

type cpu struct {
	id       int
	typ      platform.CoreType
	queue    []*Task
	lastSync event.Time
	busyCum  event.Time
	// completion is the pending completion event for the head task.
	// completeFn is the handler it fires, built once per cpu so dispatch —
	// the hottest scheduler path — never allocates a closure.
	completion event.Handle
	completeFn event.Handler
	sliceUsed  int // consecutive ticks the head has run (for round-robin)
	// idleSince marks when the core last became idle; deepCum accumulates
	// time spent in the deep idle state (after Cfg.DeepIdleAfter of idling).
	idleSince event.Time
	deepCum   event.Time
}

// System drives task execution over a platform SoC.
type System struct {
	Eng *event.Engine
	SoC *platform.SoC
	Cfg Config

	cpus    []*cpu
	tasks   []*Task
	tick    event.Time
	tickFn  event.Handler // onTick bound once; re-arming it must not allocate
	tickEv  event.Handle  // the pending tick (retained for snapshot capture)
	started bool

	// Tel, when non-nil, receives a telemetry event for every migration
	// (with its reason), wake placement, round-robin preemption, boost,
	// frequency change, and hotplug transition. Nil disables all recording
	// at the cost of one pointer check per occurrence.
	Tel *telemetry.Collector

	// Prof, when non-nil, receives per-task attribution streams: every sync
	// interval's run time (with core type and frequency) and runnable wait,
	// every wake, and every migration. Nil disables attribution at the cost
	// of one pointer check per emit site.
	Prof *profile.Profiler

	// Xray, when non-nil, receives a decision span for every wake placement,
	// migration, and hotplug transition: the candidate cores considered, the
	// thresholds compared, and the rejection reason per alternative, causally
	// linked into chains. Nil disables causal tracing at the cost of one
	// pointer check per decision (see internal/sched/xray.go).
	Xray *xray.Tracer

	// TickHook, if set, runs at the end of every scheduler tick (used by
	// metrics and tests to observe a consistent state).
	//
	// Hook-chaining contract (applies to TickHook, MigrateHook, and
	// WakeHook alike): installing a hook on a system that already has one
	// MUST save the previous hook and invoke it from the replacement —
	// hooks form a chain, not a slot. trace.Attach is the reference
	// implementation. Overwriting without chaining silently detaches
	// whatever was observing the system before you.
	TickHook func(now event.Time)

	// MigrateHook, if set, replaces the built-in HMP threshold migration:
	// it runs every tick after load updates and may call MoveToType to
	// reassign tasks. Alternative scheduling policies (efficiency-based,
	// parallelism-aware; §IV-A of the paper) plug in here. See TickHook
	// for the hook-chaining contract.
	MigrateHook func(now event.Time)
	// WakeHook, if set, overrides HMP wake placement: it returns the core
	// type a waking task should be placed on. Pinned tasks ignore it. See
	// TickHook for the hook-chaining contract.
	WakeHook func(t *Task) platform.CoreType

	// EnergyModel, if set, returns the marginal active power (mW) of a core
	// of the given type at the given frequency; the scheduler uses it to
	// attribute energy to the running task in sync.
	EnergyModel func(typ platform.CoreType, mhz int) float64
}

// New creates a System over soc. Call Start before running the engine.
func New(eng *event.Engine, soc *platform.SoC, cfg Config) *System {
	if cfg.TickMs <= 0 {
		cfg.TickMs = 1
	}
	s := &System{Eng: eng, SoC: soc, Cfg: cfg, tick: event.Time(cfg.TickMs) * event.Millisecond}
	s.tickFn = s.onTick
	for i := range soc.Cores {
		c := &cpu{id: i, typ: soc.Cores[i].Type}
		c.completeFn = func(at event.Time) { s.onCompletion(c, at) }
		s.cpus = append(s.cpus, c)
	}
	return s
}

// Tasks returns all created tasks.
func (s *System) Tasks() []*Task { return s.tasks }

// NewTask registers a task. speedup is its big-core efficiency (clamped to
// >= 1). Tasks start asleep with zero load.
func (s *System) NewTask(name string, speedup float64) *Task {
	if speedup < 1 {
		speedup = 1
	}
	t := &Task{
		ID:      len(s.tasks),
		Name:    name,
		Speedup: speedup,
		sys:     s,
		tracker: pelt.NewTracker(s.Cfg.HalfLifeMs),
		cpu:     -1,
		pinned:  -1,
		lastCPU: -1,
		wakeDst: -1,
	}
	t.wakeFn = func(at event.Time) { s.onDeepWake(t, at) }
	s.tasks = append(s.tasks, t)
	return t
}

// Start begins the scheduler tick loop.
func (s *System) Start() {
	if s.started {
		return
	}
	s.started = true
	s.tickEv = s.Eng.After(s.tick, s.tickFn)
}

// TinyPerfScale is the per-clock efficiency of a tiny core relative to a
// little core (narrower in-order pipeline).
const TinyPerfScale = 0.65

// rate returns a cpu's execution rate in cycles per nanosecond for a task.
func (s *System) rate(c *cpu, t *Task) float64 {
	f := float64(s.SoC.ClusterOf(c.id).CurMHz)
	sp := 1.0
	switch c.typ {
	case platform.Big:
		sp = t.Speedup
	case platform.Tiny:
		sp = TinyPerfScale
	}
	return f * sp / 1000.0 // MHz·1e6 cycles/s = MHz/1000 cycles/ns
}

// sync advances the head task of cpu c to the current time.
func (s *System) sync(c *cpu, now event.Time) {
	dt := now - c.lastSync
	c.lastSync = now
	if dt <= 0 {
		return
	}
	if len(c.queue) == 0 {
		if s.Cfg.DeepIdleAfter > 0 {
			deepStart := c.idleSince + s.Cfg.DeepIdleAfter
			if now > deepStart {
				from := deepStart
				if now-dt > from {
					from = now - dt
				}
				c.deepCum += now - from
			}
		}
		return
	}
	head := c.queue[0]
	done := float64(dt) * s.rate(c, head)
	if done > head.remaining {
		// The completion event fires within 1 ns of the true finish time;
		// clamp so executed work exactly matches pushed work.
		done = head.remaining
	}
	head.remaining -= done
	head.TotalWork += done
	head.ranNs += dt
	if s.EnergyModel != nil {
		cl := s.SoC.ClusterOf(c.id)
		head.EnergyMJ += dt.Seconds() * s.EnergyModel(c.typ, cl.CurMHz)
	}
	switch c.typ {
	case platform.Big:
		head.BigRanNs += dt
	case platform.Tiny:
		head.TinyRanNs += dt
	default:
		head.LittleRanNs += dt
	}
	c.busyCum += dt
	if s.Prof != nil {
		s.Prof.OnRun(head.ID, head.Name, c.id, c.typ, s.SoC.ClusterOf(c.id).CurMHz, dt, now)
		// Queue membership is constant between syncs, so the same dt is
		// exact runnable-wait time for everyone behind the head.
		for _, w := range c.queue[1:] {
			s.Prof.OnWait(w.ID, w.Name, dt)
		}
	}
}

// SyncAll advances every cpu to now; callers observing busy time or task
// progress (governor, metrics) should sync first.
func (s *System) SyncAll(now event.Time) {
	for _, c := range s.cpus {
		s.sync(c, now)
	}
}

// BusyNs returns cumulative busy time of core id (valid after SyncAll).
func (s *System) BusyNs(id int) event.Time { return s.cpus[id].busyCum }

// DeepIdleNs returns cumulative deep-idle time of core id (valid after
// SyncAll); always zero when deep idle is disabled.
func (s *System) DeepIdleNs(id int) event.Time { return s.cpus[id].deepCum }

// QueueLen returns the run-queue length of core id.
func (s *System) QueueLen(id int) int { return len(s.cpus[id].queue) }

// dispatch (re)programs the completion event for cpu c's head task.
func (s *System) dispatch(c *cpu, now event.Time) {
	c.completion.Cancel()
	c.completion = event.Handle{}
	if len(c.queue) == 0 {
		return
	}
	head := c.queue[0]
	head.state = Running
	for i := 1; i < len(c.queue); i++ {
		c.queue[i].state = Runnable
	}
	r := s.rate(c, head)
	if r <= 0 {
		return
	}
	ns := event.Time(head.remaining/r) + 1
	c.completion = s.Eng.At(now+ns, c.completeFn)
}

// onCompletion handles the head task finishing its current segment.
func (s *System) onCompletion(c *cpu, now event.Time) {
	s.sync(c, now)
	if len(c.queue) == 0 {
		return
	}
	head := c.queue[0]
	if head.remaining > 0.5 {
		// Frequency changed since scheduling; not actually done.
		s.dispatch(c, now)
		return
	}
	head.remaining = 0
	head.SegmentsDone++
	if head.fifoHead < len(head.fifo) {
		head.remaining = head.fifo[head.fifoHead]
		head.fifoHead++
		if head.fifoHead == len(head.fifo) {
			head.fifo = head.fifo[:0]
			head.fifoHead = 0
		}
		if head.OnSegment != nil {
			head.OnSegment(now)
		}
		s.dispatch(c, now)
		return
	}
	// Drained: go to sleep; fold the current load into the burst footprint.
	// Shift in place (not queue[1:]) so the backing array's capacity is kept
	// for reuse; queues are a handful of tasks, so the copy is trivial.
	copy(c.queue, c.queue[1:])
	c.queue[len(c.queue)-1] = nil
	c.queue = c.queue[:len(c.queue)-1]
	c.sliceUsed = 0
	head.state = Sleeping
	head.cpu = -1
	head.sleepLoad = 0.5*head.sleepLoad + 0.5*head.tracker.LoadF()
	if head.OnSegment != nil {
		head.OnSegment(now)
	}
	if head.OnIdle != nil {
		head.OnIdle(now)
	}
	if len(c.queue) == 0 {
		c.idleSince = now
	}
	s.dispatch(c, now)
}

// Push enqueues work (in little-core cycles) for a task, waking it if
// asleep. Zero or negative work is ignored.
func (s *System) Push(t *Task, cycles float64) {
	if cycles <= 0 {
		return
	}
	now := s.Eng.Now()
	if t.state != Sleeping {
		t.fifo = append(t.fifo, cycles)
		return
	}
	t.remaining = cycles
	t.wokeAt = now
	if s.Prof != nil {
		s.Prof.OnWake(t.ID, t.Name, now)
	}
	c := s.wakeCPU(t)
	prevCPU := t.lastCPU // placement input, captured before it is overwritten
	t.cpu = c.id
	t.lastCPU = c.id
	s.sync(c, now)
	deepWake := s.Cfg.DeepIdleAfter > 0 && len(c.queue) == 0 && now-c.idleSince > s.Cfg.DeepIdleAfter
	if s.Tel != nil {
		reason := ""
		if deepWake {
			reason = telemetry.ReasonDeepIdle
		}
		s.Tel.Emit(telemetry.Event{
			At: now, Kind: telemetry.KindWake,
			Task: t.ID, TaskName: t.Name,
			Core: c.id, FromCore: -1, Cluster: s.SoC.Cores[c.id].Cluster,
			Reason: reason, Value: float64(t.Load()),
		})
	}
	if s.Xray != nil {
		reason := ""
		if deepWake {
			reason = telemetry.ReasonDeepIdle
		}
		s.xrayWake(t, c, prevCPU, now, reason)
	}
	if deepWake {
		// The core was in deep idle: the task pays the exit latency before
		// it can be enqueued (cpuidle wake-up cost).
		t.state = Waking
		t.wakeDst = c.id
		t.wakeEv = s.Eng.At(now+s.Cfg.DeepIdleWake, t.wakeFn)
		return
	}
	t.state = Runnable
	c.queue = append(c.queue, t)
	if len(c.queue) == 1 {
		s.dispatch(c, now)
	}
}

// onDeepWake completes a deep-idle wake after the exit latency: the task is
// enqueued on the core chosen at Push time (t.wakeDst), unless that core was
// hotplugged offline while the task paid the latency (offlining only evicts
// queued tasks, not Waking ones), in which case it is re-placed; as with
// eviction, hotplug breaks affinity to the now-offline core.
func (s *System) onDeepWake(t *Task, at event.Time) {
	dst := s.cpus[t.wakeDst]
	if !s.SoC.Cores[dst.id].Online {
		if t.pinned >= 0 && !s.SoC.Cores[t.pinned].Online {
			t.pinned = -1
		}
		dst = s.wakeCPU(t)
		prevCPU := t.lastCPU
		t.cpu = dst.id
		t.lastCPU = dst.id
		if s.Xray != nil {
			s.xrayWake(t, dst, prevCPU, at, telemetry.ReasonHotplug)
		}
	}
	s.sync(dst, at)
	t.state = Runnable
	dst.queue = append(dst.queue, t)
	if len(dst.queue) == 1 {
		s.dispatch(dst, at)
	}
}

// wakeCPU implements HMP wake placement with the same hysteresis as the
// migration rules: a task last on a little core moves up only when its load
// exceeds the up-threshold, while a task last on a big core stays
// big-preferred until its load falls below the down-threshold. Within a
// cluster pick an idle core (preferring the task's previous one), else the
// shortest queue.
func (s *System) wakeCPU(t *Task) *cpu {
	if t.pinned >= 0 {
		if !s.SoC.Cores[t.pinned].Online {
			panic(fmt.Sprintf("sched: task %d pinned to offline core %d", t.ID, t.pinned))
		}
		return s.cpus[t.pinned]
	}
	if s.WakeHook != nil {
		if c := s.pickCPU(s.WakeHook(t), t); c != nil {
			return c
		}
		// Requested type offline: fall through to the default placement.
	}
	// Tier hysteresis, mirroring the migration rules: move one tier up when
	// above the up-threshold, one tier down below the down-threshold,
	// otherwise stay on the last tier. Fresh tasks start on the little
	// tier. The tiny tier additionally requires a small burst footprint.
	tier := platform.Little.Tier()
	if t.lastCPU >= 0 {
		tier = s.cpus[t.lastCPU].typ.Tier()
	}
	switch {
	case t.Load() > s.Cfg.UpThreshold:
		tier++
	case t.Load() < s.Cfg.DownThreshold:
		tier--
	}
	if tier > 2 {
		tier = 2
	}
	if tier < 1 && t.sleepLoad >= float64(s.Cfg.TinyWakeLoad) {
		tier = 1
	}
	if tier < 0 {
		tier = 0
	}
	// Try the preferred tier, then walk outward (up first: capacity beats
	// efficiency when the preferred cluster is offline).
	for _, cand := range []int{tier, tier + 1, tier + 2, tier - 1, tier - 2} {
		if cand < 0 || cand > 2 {
			continue
		}
		if c := s.pickCPU(platform.TypeForTier(cand), t); c != nil {
			return c
		}
	}
	panic("sched: no online cores")
}

// pickCPU selects the wake/migration destination among online cores of typ:
// the task's idle previous core if eligible (cache affinity), else the first
// shortest queue in core-ID order. It iterates the cpu array directly rather
// than materializing an online-ID slice — this runs on every wake and every
// migration check, and must not allocate.
func (s *System) pickCPU(typ platform.CoreType, t *Task) *cpu {
	// Idle previous CPU wins (cache affinity).
	if t.lastCPU >= 0 {
		if c := s.cpus[t.lastCPU]; c.typ == typ && s.SoC.Cores[c.id].Online && len(c.queue) == 0 {
			return c
		}
	}
	var best *cpu
	for _, c := range s.cpus {
		if c.typ != typ || !s.SoC.Cores[c.id].Online {
			continue
		}
		if best == nil || len(c.queue) < len(best.queue) {
			best = c
		}
	}
	return best
}

// onTick is the scheduler tick: accounting, load update, HMP migration,
// intra-cluster balancing, and round-robin rotation.
func (s *System) onTick(now event.Time) {
	s.SyncAll(now)
	s.updateLoads(now)
	if s.MigrateHook != nil {
		s.MigrateHook(now)
	} else {
		s.hmpMigrate(now)
	}
	s.balance(now)
	s.rotate(now)
	for _, c := range s.cpus {
		s.dispatch(c, now)
	}
	if s.TickHook != nil {
		s.TickHook(now)
	}
	s.tickEv = s.Eng.After(s.tick, s.tickFn)
}

// updateLoads feeds each task's tracker with its runnable fraction of the
// tick, scaled by current/max frequency of the cluster it sits on. A task
// asleep for the whole tick contributes nothing but still decays — in the
// kernel's load tracking, slept periods are decayed into the history when
// the task next wakes, so a bursty task's load converges to its duty cycle
// rather than its burst intensity.
func (s *System) updateLoads(now event.Time) {
	tickStart := now - s.tick
	for _, t := range s.tasks {
		var activeNs event.Time
		switch t.state {
		case Sleeping:
			activeNs = t.ranNs
		default:
			from := tickStart
			if t.wokeAt > from {
				from = t.wokeAt
			}
			activeNs = now - from
			if activeNs > s.tick {
				activeNs = s.tick
			}
		}
		if activeNs < 0 {
			activeNs = 0
		}
		frac := float64(activeNs) / float64(s.tick)
		fs := 1.0
		if t.lastCPU >= 0 {
			cl := s.SoC.ClusterOf(t.lastCPU)
			fs = float64(cl.CurMHz) / float64(cl.MaxMHz())
		}
		t.tracker.Update(frac, fs)
		t.ranNs = 0
	}
}

// hmpMigrate applies Algorithm 1's up/down migration rules, generalized to
// one-tier-at-a-time moves across tiny/little/big clusters.
func (s *System) hmpMigrate(now event.Time) {
	for _, t := range s.tasks {
		if t.state == Sleeping || t.state == Waking || t.pinned >= 0 {
			continue
		}
		c := s.cpus[t.cpu]
		tier := c.typ.Tier()
		switch {
		case t.Load() > s.Cfg.UpThreshold && tier < 2:
			if dst := s.pickCPU(platform.TypeForTier(tier+1), t); dst != nil {
				s.migrate(t, dst, now, telemetry.ReasonUpThreshold)
			}
		case t.Load() < s.Cfg.DownThreshold && tier > 0:
			if tier == 1 && t.sleepLoad >= float64(s.Cfg.TinyWakeLoad) {
				continue // burst footprint too large for the tiny tier
			}
			if dst := s.pickCPU(platform.TypeForTier(tier-1), t); dst != nil {
				s.migrate(t, dst, now, telemetry.ReasonDownThreshold)
			}
		}
	}
}

func (s *System) migrate(t *Task, dst *cpu, now event.Time, reason string) {
	src := s.cpus[t.cpu]
	if src == dst {
		return
	}
	s.sync(src, now)
	s.sync(dst, now)
	s.removeFromQueue(src, t)
	t.cpu = dst.id
	t.lastCPU = dst.id
	t.Migrations++
	dst.queue = append(dst.queue, t)
	if s.Prof != nil {
		s.Prof.OnMigration(t.ID, t.Name, src.typ, dst.typ, reason)
	}
	if s.Tel != nil {
		s.Tel.Emit(telemetry.Event{
			At: now, Kind: telemetry.KindMigration,
			Task: t.ID, TaskName: t.Name,
			Core: dst.id, FromCore: src.id, Cluster: s.SoC.Cores[dst.id].Cluster,
			Reason: reason, Value: float64(t.Load()),
		})
	}
	if s.Xray != nil {
		s.xrayMigrate(t, src, dst, now, reason)
	}
	s.dispatch(src, now)
	s.dispatch(dst, now)
}

func (s *System) removeFromQueue(c *cpu, t *Task) {
	for i, q := range c.queue {
		if q == t {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			if i == 0 {
				c.sliceUsed = 0
			}
			return
		}
	}
	panic(fmt.Sprintf("sched: task %d not on cpu %d", t.ID, c.id))
}

// balance performs intra-cluster load balancing: idle cores pull a waiting
// task from the most loaded core of their own cluster (traditional load
// balancing across same-type cores, §IV-B).
func (s *System) balance(now event.Time) {
	// Fast path: nothing to pull anywhere. On interactive workloads most
	// ticks have no queue deeper than one, and this scan is a fraction of
	// the full idle-core x busiest-core product below.
	overloaded := false
	for _, c := range s.cpus {
		if len(c.queue) > 1 {
			overloaded = true
			break
		}
	}
	if !overloaded {
		return
	}
	for _, c := range s.cpus {
		if !s.SoC.Cores[c.id].Online || len(c.queue) != 0 {
			continue
		}
		var busiest *cpu
		for _, o := range s.cpus {
			if o.typ != c.typ || o == c || !s.SoC.Cores[o.id].Online {
				continue
			}
			if len(o.queue) > 1 && (busiest == nil || len(o.queue) > len(busiest.queue)) {
				busiest = o
			}
		}
		if busiest == nil {
			continue
		}
		// Pull the last waiting unpinned task.
		var t *Task
		for i := len(busiest.queue) - 1; i >= 1; i-- {
			if busiest.queue[i].pinned < 0 {
				t = busiest.queue[i]
				break
			}
		}
		if t == nil {
			continue
		}
		s.migrate(t, c, now, telemetry.ReasonBalance)
		t.Migrations-- // intra-cluster moves are not HMP migrations
	}
}

// rotate implements round-robin: after a full tick of execution with other
// tasks waiting, the head yields.
func (s *System) rotate(now event.Time) {
	for _, c := range s.cpus {
		if len(c.queue) < 2 {
			c.sliceUsed = 0
			continue
		}
		c.sliceUsed++
		if c.sliceUsed >= 1 { // 1-tick quantum
			head := c.queue[0]
			copy(c.queue, c.queue[1:])
			c.queue[len(c.queue)-1] = head
			c.sliceUsed = 0
			if s.Tel != nil {
				s.Tel.Emit(telemetry.Event{
					At: now, Kind: telemetry.KindPreempt,
					Task: head.ID, TaskName: head.Name,
					Core: c.id, FromCore: -1, Cluster: s.SoC.Cores[c.id].Cluster,
					Reason: telemetry.ReasonSlice,
				})
			}
		}
	}
}

// MoveToType migrates a non-sleeping, unpinned task to the least-loaded
// online core of the given type; it is a no-op if the task is already
// there, asleep, pinned, or the type has no online cores. Intended for
// MigrateHook policies.
func (s *System) MoveToType(t *Task, typ platform.CoreType) {
	if t.state == Sleeping || t.state == Waking || t.pinned >= 0 {
		return
	}
	if s.cpus[t.cpu].typ == typ {
		return
	}
	if dst := s.pickCPU(typ, t); dst != nil {
		s.migrate(t, dst, s.Eng.Now(), telemetry.ReasonPolicy)
	}
}

// BurstFootprint returns the task's EWMA load at sleep transitions — the
// signal policies use to classify small background work.
func (t *Task) BurstFootprint() float64 { return t.sleepLoad }

// OnCPUType returns the core type the task currently sits on, or Little for
// sleeping tasks (their wake placement will decide).
func (s *System) OnCPUType(t *Task) platform.CoreType {
	if t.cpu < 0 {
		return platform.Little
	}
	return s.cpus[t.cpu].typ
}

// SetCoreOnline hotplugs a core at runtime: offlining first evicts every
// queued task to another online core (breaking affinity if necessary, as
// the kernel does), onlining simply re-enables placement. It returns the
// platform-constraint error, if any.
func (s *System) SetCoreOnline(id int, online bool) error {
	now := s.Eng.Now()
	c := s.cpus[id]
	s.sync(c, now)
	if online {
		if err := s.SoC.SetOnline(id, true); err != nil {
			return err
		}
		c.idleSince = now
		if s.Tel != nil {
			s.Tel.Emit(telemetry.Event{
				At: now, Kind: telemetry.KindHotplug,
				Task: -1, Core: id, FromCore: -1, Cluster: s.SoC.Cores[id].Cluster,
				Reason: telemetry.ReasonOnline,
			})
		}
		if s.Xray != nil {
			s.xrayHotplug(id, true, 0, now, telemetry.ReasonOnline)
		}
		return nil
	}
	if err := s.SoC.SetOnline(id, false); err != nil {
		return err
	}
	if s.Tel != nil {
		s.Tel.Emit(telemetry.Event{
			At: now, Kind: telemetry.KindHotplug,
			Task: -1, Core: id, FromCore: -1, Cluster: s.SoC.Cores[id].Cluster,
			Reason: telemetry.ReasonOffline,
		})
	}
	if s.Xray != nil {
		s.xrayHotplug(id, false, len(c.queue), now, telemetry.ReasonOffline)
	}
	// Evict the queue: prefer a same-type online core, else any online core.
	for len(c.queue) > 0 {
		t := c.queue[0]
		dst := s.pickCPU(c.typ, t)
		if dst == nil || dst == c {
			for _, cand := range s.cpus {
				if cand != c && s.SoC.Cores[cand.id].Online {
					dst = cand
					break
				}
			}
		}
		if dst == nil || dst == c {
			// Nothing else online (impossible given the little-core
			// constraint, but fail safe): bring the core back.
			_ = s.SoC.SetOnline(id, true)
			return nil
		}
		t.pinned = -1 // hotplug breaks affinity
		s.migrate(t, dst, now, telemetry.ReasonHotplug)
		t.Migrations--
	}
	s.dispatch(c, now)
	return nil
}

// SetClusterFreq changes a cluster's frequency (used by governors),
// re-synchronizing and re-dispatching affected cores. Returns the frequency
// actually set (clamped to the table).
func (s *System) SetClusterFreq(clusterID, mhz int) int {
	now := s.Eng.Now()
	cl := &s.SoC.Clusters[clusterID]
	prev := cl.CurMHz
	for _, id := range cl.CoreIDs {
		s.sync(s.cpus[id], now)
	}
	got := s.SoC.SetFreq(clusterID, mhz)
	if s.Tel != nil && got != prev {
		s.Tel.Emit(telemetry.Event{
			At: now, Kind: telemetry.KindFreq,
			Task: -1, Core: -1, FromCore: -1, Cluster: clusterID,
			PrevMHz: prev, MHz: got,
		})
	}
	for _, id := range cl.CoreIDs {
		s.dispatch(s.cpus[id], now)
	}
	return got
}

// CoreBusyFraction returns core id's busy fraction between two cumulative
// busy readings over the interval; a convenience for governors/metrics.
func CoreBusyFraction(prevBusy, curBusy, interval event.Time) float64 {
	if interval <= 0 {
		return 0
	}
	f := float64(curBusy-prevBusy) / float64(interval)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
