package sched

import (
	"testing"

	"biglittle/internal/event"
	"biglittle/internal/platform"
)

func newTinySys() (*event.Engine, *System) {
	eng := event.New()
	soc := platform.Exynos5422Tiny()
	s := New(eng, soc, DefaultConfig())
	s.Start()
	return eng, s
}

// A sliver task (tiny burst footprint) migrates down to the tiny tier and
// stays there.
func TestSliverSinksToTiny(t *testing.T) {
	eng, s := newTinySys()
	task := s.NewTask("sliver", 1)
	var gen func(now event.Time)
	gen = func(now event.Time) {
		s.Push(task, 2e5) // 0.4 ms at 500 MHz
		eng.At(now+10*event.Millisecond, gen)
	}
	gen(0)
	eng.Run(2 * event.Second)
	if task.TinyRanNs == 0 {
		t.Fatalf("sliver never ran on a tiny core (sleepLoad %.0f)", task.sleepLoad)
	}
	if task.TinyRanNs < task.LittleRanNs {
		t.Fatalf("sliver mostly on little (%v tiny vs %v little)", task.TinyRanNs, task.LittleRanNs)
	}
}

// A burst-heavy task's footprint is learned after its first burst; from
// then on it never returns to the tiny tier, even though its instantaneous
// load decays to zero between bursts.
func TestBurstyTaskLearnsToAvoidTiny(t *testing.T) {
	eng, s := newTinySys()
	task := s.NewTask("burst", 1.8)
	var gen func(now event.Time)
	gen = func(now event.Time) {
		s.Push(task, 15e6) // ~30 ms at 500 MHz: a real interaction stage
		eng.At(now+500*event.Millisecond, gen)
	}
	gen(0)
	eng.Run(3 * event.Second)
	// At most the first burst (≈38 ms at tiny speed) may touch tiny cores.
	if task.TinyRanNs > 45*event.Millisecond {
		t.Fatalf("bursty task ran %v on tiny cores after footprint learning (little %v)",
			task.TinyRanNs, task.LittleRanNs)
	}
	if task.LittleRanNs < 100*event.Millisecond {
		t.Fatalf("bursty task barely used little cores (%v)", task.LittleRanNs)
	}
}

// The up-migration path works from the tiny tier: a task that becomes
// CPU-bound climbs tiny -> little -> big.
func TestClimbFromTinyToBig(t *testing.T) {
	eng, s := newTinySys()
	s.SetClusterFreq(0, 1300)
	task := s.NewTask("growth", 1.5)
	// Start as a sliver so it settles on tiny.
	var warm func(now event.Time)
	warm = func(now event.Time) {
		if now >= 500*event.Millisecond {
			s.Push(task, 1e12) // becomes a hog
			return
		}
		s.Push(task, 2e5)
		eng.At(now+10*event.Millisecond, warm)
	}
	warm(0)
	eng.Run(2 * event.Second)
	if got := s.SoC.Cores[task.CPU()].Type; got != platform.Big {
		t.Fatalf("hog on %v after 1.5s (load %d)", got, task.Load())
	}
	if task.TinyRanNs == 0 {
		t.Fatal("task never used the tiny tier during its sliver phase")
	}
}

// TinyPerfScale slows execution on tiny cores.
func TestTinyExecutionRate(t *testing.T) {
	eng, s := newTinySys()
	task := s.NewTask("pinned", 1)
	task.Pin(8) // tiny core at fixed 600 MHz
	var doneAt event.Time
	task.OnIdle = func(now event.Time) { doneAt = now }
	// 600 MHz * 0.65 = 390 Mc/s -> 3.9e5 cycles per ms.
	s.Push(task, 3.9e5)
	eng.Run(100 * event.Millisecond)
	if doneAt == 0 {
		t.Fatal("pinned tiny task never finished")
	}
	want := event.Millisecond
	if doneAt < want-want/10 || doneAt > want+want/2 {
		t.Fatalf("tiny execution took %v, want ~1ms", doneAt)
	}
}

// On the standard two-cluster platform nothing can reach a tiny core and
// scheduling behaviour is identical to the pre-extension semantics.
func TestNoTinyOnStandardPlatform(t *testing.T) {
	eng := event.New()
	s := New(eng, platform.Exynos5422(), DefaultConfig())
	s.Start()
	task := s.NewTask("sliver", 1)
	var gen func(now event.Time)
	gen = func(now event.Time) {
		s.Push(task, 2e5)
		eng.At(now+10*event.Millisecond, gen)
	}
	gen(0)
	eng.Run(time500ms)
	if task.TinyRanNs != 0 {
		t.Fatal("tiny execution on a platform without tiny cores")
	}
	if task.CPU() >= 0 && s.SoC.Cores[task.CPU()].Type == platform.Tiny {
		t.Fatal("task on tiny core")
	}
}

const time500ms = 500 * event.Millisecond

// Down-migration from little to tiny is gated by the burst footprint even
// when the instantaneous load is below the down-threshold.
func TestDownMigrationGate(t *testing.T) {
	eng, s := newTinySys()
	task := s.NewTask("gated", 1)
	task.sleepLoad = 500 // established heavy burst footprint
	task.tracker.Set(100)
	task.state = Runnable
	task.cpu, task.lastCPU = 0, 0
	task.remaining = 1e12
	s.cpus[0].queue = append(s.cpus[0].queue, task)
	s.dispatch(s.cpus[0], 0)
	eng.Run(200 * event.Millisecond)
	if task.TinyRanNs != 0 {
		t.Fatal("heavy-footprint task migrated down to tiny")
	}
}

func TestDeepIdleAccounting(t *testing.T) {
	eng := event.New()
	cfg := DefaultConfig()
	cfg.DeepIdleAfter = 2 * event.Millisecond
	cfg.DeepIdleWake = event.Millisecond
	s := New(eng, platform.Exynos5422(), cfg)
	s.Start()
	// Nothing runs: after the residency threshold every core accumulates
	// deep-idle time.
	eng.Run(100 * event.Millisecond)
	s.SyncAll(eng.Now())
	for id := range s.SoC.Cores {
		deep := s.DeepIdleNs(id)
		if deep < 90*event.Millisecond || deep > 99*event.Millisecond {
			t.Fatalf("core %d deep idle %v of 100ms (threshold 2ms)", id, deep)
		}
	}
}

func TestDeepIdleWakePenalty(t *testing.T) {
	run := func(deep bool) event.Time {
		eng := event.New()
		cfg := DefaultConfig()
		if deep {
			cfg.DeepIdleAfter = 2 * event.Millisecond
			cfg.DeepIdleWake = event.Millisecond
		}
		s := New(eng, platform.Exynos5422(), cfg)
		s.Start()
		task := s.NewTask("t", 1)
		task.Pin(0)
		var doneAt event.Time
		task.OnIdle = func(now event.Time) { doneAt = now }
		// Wake after a long idle period: 5e5 cycles = 1ms at 500 MHz.
		eng.At(50*event.Millisecond, func(event.Time) { s.Push(task, 5e5) })
		eng.Run(100 * event.Millisecond)
		return doneAt
	}
	base := run(false)
	slow := run(true)
	penalty := slow - base
	if penalty < event.Millisecond*9/10 || penalty > event.Millisecond*3/2 {
		t.Fatalf("wake penalty %v, want ~1ms", penalty)
	}
}

func TestNoDeepIdleWhenDisabled(t *testing.T) {
	eng, s := newTinySys() // default config: deep idle off
	eng.Run(100 * event.Millisecond)
	s.SyncAll(eng.Now())
	for id := range s.SoC.Cores {
		if s.DeepIdleNs(id) != 0 {
			t.Fatalf("deep idle accumulated with the feature disabled")
		}
	}
}

func TestWakingStateExcludedFromMigration(t *testing.T) {
	eng := event.New()
	cfg := DefaultConfig()
	cfg.DeepIdleAfter = 2 * event.Millisecond
	cfg.DeepIdleWake = 5 * event.Millisecond
	s := New(eng, platform.Exynos5422(), cfg)
	s.Start()
	task := s.NewTask("t", 1)
	eng.At(50*event.Millisecond, func(event.Time) { s.Push(task, 1e6) })
	// Run through several ticks while the task is in Waking state; the
	// migration/balancing paths must not touch it (no panic) and it must
	// eventually run.
	var doneAt event.Time
	task.OnIdle = func(now event.Time) { doneAt = now }
	eng.Run(200 * event.Millisecond)
	if doneAt == 0 {
		t.Fatal("task stuck in waking state")
	}
	if Waking.String() != "waking" {
		t.Fatal("state string")
	}
}
