package sched

import (
	"math"
	"math/rand"
	"testing"

	"biglittle/internal/event"
	"biglittle/internal/platform"
)

func newSys() (*event.Engine, *System) {
	eng := event.New()
	soc := platform.Exynos5422()
	s := New(eng, soc, DefaultConfig())
	s.Start()
	return eng, s
}

func TestSingleTaskExecutes(t *testing.T) {
	eng, s := newSys()
	task := s.NewTask("t", 2.0)
	var doneAt event.Time
	task.OnIdle = func(now event.Time) { doneAt = now }

	// Little cluster starts at 500 MHz: 0.5 cycles/ns -> 1e6 cycles = 2 ms.
	s.Push(task, 1e6)
	eng.Run(10 * event.Millisecond)

	if doneAt == 0 {
		t.Fatal("task never completed")
	}
	want := 2 * event.Millisecond
	if doneAt < want || doneAt > want+event.Millisecond {
		t.Fatalf("completed at %v, want ~%v", doneAt, want)
	}
	if task.CurState() != Sleeping || task.CPU() != -1 {
		t.Fatalf("task state %v cpu %d after drain", task.CurState(), task.CPU())
	}
	if math.Abs(task.TotalWork-1e6) > 1 {
		t.Fatalf("TotalWork %.1f, want 1e6", task.TotalWork)
	}
	if task.SegmentsDone != 1 {
		t.Fatalf("SegmentsDone %d, want 1", task.SegmentsDone)
	}
}

func TestSegmentFIFO(t *testing.T) {
	eng, s := newSys()
	task := s.NewTask("t", 1)
	segments := 0
	task.OnSegment = func(event.Time) { segments++ }
	idles := 0
	task.OnIdle = func(event.Time) { idles++ }
	s.Push(task, 1000)
	s.Push(task, 1000)
	s.Push(task, 1000)
	if task.Queued() != 2 {
		t.Fatalf("Queued = %d, want 2", task.Queued())
	}
	eng.Run(20 * event.Millisecond)
	if segments != 3 || idles != 1 {
		t.Fatalf("segments %d idles %d, want 3/1", segments, idles)
	}
}

func TestPushWhileRunningExtends(t *testing.T) {
	eng, s := newSys()
	task := s.NewTask("t", 1)
	total := 0.0
	task.OnIdle = func(event.Time) { total = task.TotalWork }
	s.Push(task, 1e5)
	eng.Run(event.Microsecond * 50)
	s.Push(task, 1e5) // still running the first segment
	eng.Run(50 * event.Millisecond)
	if math.Abs(total-2e5) > 1 {
		t.Fatalf("TotalWork %.1f, want 2e5", total)
	}
}

func TestBigCoreSpeedup(t *testing.T) {
	eng := event.New()
	soc := platform.Exynos5422()
	s := New(eng, soc, DefaultConfig())
	s.Start()
	s.SetClusterFreq(0, 1300)
	s.SetClusterFreq(1, 1300)

	little := s.NewTask("l", 2.0)
	var littleDone event.Time
	little.OnIdle = func(now event.Time) { littleDone = now }
	s.Push(little, 13e6) // 10 ms on little @1.3GHz

	// White-box: place an identical task directly on a big core.
	bigTask := s.NewTask("b", 2.0)
	var bigDone event.Time
	bigTask.OnIdle = func(now event.Time) { bigDone = now }
	bigTask.tracker.Set(500) // between thresholds: HMP leaves it on big
	bigTask.state = Runnable
	bigTask.cpu, bigTask.lastCPU = 4, 4
	bigTask.remaining = 13e6
	s.cpus[4].queue = append(s.cpus[4].queue, bigTask)
	s.dispatch(s.cpus[4], 0)

	eng.Run(100 * event.Millisecond)
	if littleDone == 0 || bigDone == 0 {
		t.Fatal("tasks did not finish")
	}
	ratio := float64(littleDone) / float64(bigDone)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("big core speedup %.2f, want ~2.0 (little %v big %v)", ratio, littleDone, bigDone)
	}
}

func TestFrequencyChangeMidFlight(t *testing.T) {
	eng, s := newSys()
	task := s.NewTask("t", 1)
	var doneAt event.Time
	task.OnIdle = func(now event.Time) { doneAt = now }
	// 5.2e6 cycles: at 500MHz would take 10.4 ms; we double frequency to
	// 1000MHz at t=2ms, so: 1e6 done by 2ms, remaining 4.2e6 at 1.0/ns
	// -> finishes ~6.2ms.
	s.Push(task, 5.2e6)
	eng.At(2*event.Millisecond, func(event.Time) { s.SetClusterFreq(0, 1000) })
	eng.Run(20 * event.Millisecond)
	want := event.Time(6.2 * float64(event.Millisecond))
	if doneAt < want-event.Millisecond/2 || doneAt > want+event.Millisecond/2 {
		t.Fatalf("completed at %v, want ~%v", doneAt, want)
	}
}

func TestRoundRobinShares(t *testing.T) {
	eng, s := newSys()
	// Force both onto core 0 by saturating: push both at t=0; wake placement
	// puts them on different idle cores, so instead use one core cluster.
	cfg := platform.CoreConfig{Little: 1}
	if err := cfg.Apply(s.SoC); err != nil {
		t.Fatal(err)
	}
	a := s.NewTask("a", 1)
	b := s.NewTask("b", 1)
	s.Push(a, 1e9)
	s.Push(b, 1e9)
	eng.Run(100 * event.Millisecond)
	if a.TotalWork == 0 || b.TotalWork == 0 {
		t.Fatal("a task starved")
	}
	share := a.TotalWork / (a.TotalWork + b.TotalWork)
	if share < 0.4 || share > 0.6 {
		t.Fatalf("unfair sharing: a got %.2f of work", share)
	}
}

func TestLoadBalanceSpreads(t *testing.T) {
	eng, s := newSys()
	// Two CPU-bound tasks pushed at the same instant onto the little
	// cluster must end up on different cores within a few ticks.
	a := s.NewTask("a", 1)
	b := s.NewTask("b", 1)
	s.Push(a, 1e9)
	s.Push(b, 1e9)
	eng.Run(20 * event.Millisecond)
	if a.CPU() == b.CPU() {
		t.Fatalf("both tasks on cpu %d after 20ms", a.CPU())
	}
}

func TestHMPUpMigration(t *testing.T) {
	eng, s := newSys()
	s.SetClusterFreq(0, 1300) // full freqScale so load can reach 1024
	task := s.NewTask("hog", 1.5)
	s.Push(task, 1e12)
	eng.Run(40 * event.Millisecond)
	if s.SoC.Cores[task.CPU()].Type != platform.Little {
		t.Fatal("migrated before load history warranted it")
	}
	eng.Run(200 * event.Millisecond)
	if got := s.SoC.Cores[task.CPU()].Type; got != platform.Big {
		t.Fatalf("CPU-bound task on %v core after 200ms (load %d)", got, task.Load())
	}
	if task.Migrations == 0 {
		t.Fatal("no HMP migration recorded")
	}
}

func TestHMPDownMigration(t *testing.T) {
	eng, s := newSys()
	task := s.NewTask("light", 1)
	// White-box: park a low-load task on a big core.
	task.tracker.Set(100) // below down-threshold 256
	task.state = Runnable
	task.cpu, task.lastCPU = 4, 4
	task.remaining = 1e12
	s.cpus[4].queue = append(s.cpus[4].queue, task)
	s.dispatch(s.cpus[4], 0)
	eng.Run(5 * event.Millisecond)
	if got := s.SoC.Cores[task.CPU()].Type; got != platform.Little {
		t.Fatalf("low-load task still on %v core (load %d)", got, task.Load())
	}
}

func TestNoUpMigrationWithoutBigCores(t *testing.T) {
	eng, s := newSys()
	if err := (platform.CoreConfig{Little: 4}).Apply(s.SoC); err != nil {
		t.Fatal(err)
	}
	s.SetClusterFreq(0, 1300)
	task := s.NewTask("hog", 2)
	s.Push(task, 1e12)
	eng.Run(300 * event.Millisecond)
	if s.SoC.Cores[task.CPU()].Type != platform.Little {
		t.Fatal("task migrated to an offline big core")
	}
}

func TestWakePlacementPrefersIdlePrev(t *testing.T) {
	eng, s := newSys()
	task := s.NewTask("t", 1)
	s.Push(task, 1e5)
	eng.Run(5 * event.Millisecond)
	first := task.lastCPU
	s.Push(task, 1e5)
	if task.CPU() != first {
		t.Fatalf("woke on cpu %d, want previous idle cpu %d", task.CPU(), first)
	}
	eng.Run(10 * event.Millisecond)
}

func TestWakePlacementHighLoadGoesBig(t *testing.T) {
	_, s := newSys()
	task := s.NewTask("t", 1)
	task.tracker.Set(900)
	s.Push(task, 1e6)
	if got := s.SoC.Cores[task.CPU()].Type; got != platform.Big {
		t.Fatalf("high-load wake placed on %v", got)
	}
}

func TestBusyAccounting(t *testing.T) {
	eng, s := newSys()
	task := s.NewTask("t", 1)
	// 50% duty: 1ms of work at 500MHz = 5e5 cycles, every 2 ms.
	var gen func(now event.Time)
	gen = func(now event.Time) {
		s.Push(task, 5e5)
		eng.At(now+2*event.Millisecond, gen)
	}
	gen(0)
	eng.Run(100 * event.Millisecond)
	s.SyncAll(eng.Now())
	var busy event.Time
	for id := range s.SoC.Cores {
		busy += s.BusyNs(id)
	}
	frac := float64(busy) / float64(100*event.Millisecond)
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("busy fraction %.3f, want ~0.5", frac)
	}
}

func TestLoadTracksDuty(t *testing.T) {
	eng, s := newSys()
	s.SetClusterFreq(0, 1300)
	task := s.NewTask("t", 1)
	var gen func(now event.Time)
	gen = func(now event.Time) {
		s.Push(task, 13e5*0.3) // 0.3 ms at 1.3GHz
		eng.At(now+event.Millisecond, gen)
	}
	gen(0)
	eng.Run(500 * event.Millisecond)
	// 30% duty at full frequency: load should hover near 0.3*1024 = 307.
	if l := task.Load(); l < 200 || l > 420 {
		t.Fatalf("load %d, want ~307", l)
	}
}

func TestZeroPushIgnored(t *testing.T) {
	eng, s := newSys()
	task := s.NewTask("t", 1)
	s.Push(task, 0)
	s.Push(task, -5)
	if task.CurState() != Sleeping {
		t.Fatal("zero push woke task")
	}
	eng.Run(5 * event.Millisecond)
}

func TestSpeedupClamped(t *testing.T) {
	_, s := newSys()
	task := s.NewTask("t", 0.5)
	if task.Speedup != 1 {
		t.Fatalf("speedup %f not clamped to 1", task.Speedup)
	}
}

func TestStateString(t *testing.T) {
	if Sleeping.String() != "sleeping" || Runnable.String() != "runnable" || Running.String() != "running" {
		t.Fatal("State.String mismatch")
	}
}

// Property: work conservation — after everything drains, executed work
// equals pushed work for every task, regardless of migrations, frequency
// changes, and contention.
func TestPropertyWorkConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 10; iter++ {
		eng, s := newSys()
		n := 2 + rng.Intn(6)
		pushed := make([]float64, n)
		tasks := make([]*Task, n)
		for i := 0; i < n; i++ {
			tasks[i] = s.NewTask("t", 1+rng.Float64())
		}
		// Random pushes over the first 200 ms.
		for k := 0; k < 30; k++ {
			i := rng.Intn(n)
			w := float64(1+rng.Intn(20)) * 1e5
			at := event.Time(rng.Intn(200)) * event.Millisecond
			pushed[i] += w
			eng.At(at, func(event.Time) { s.Push(tasks[i], w) })
		}
		// Random frequency changes.
		for k := 0; k < 10; k++ {
			cl := rng.Intn(2)
			mhz := 500 + rng.Intn(1500)
			at := event.Time(rng.Intn(200)) * event.Millisecond
			eng.At(at, func(event.Time) { s.SetClusterFreq(cl, mhz) })
		}
		eng.Run(3 * event.Second)
		for i := 0; i < n; i++ {
			if tasks[i].CurState() != Sleeping {
				t.Fatalf("iter %d: task %d not drained (state %v, remaining %.0f)",
					iter, i, tasks[i].CurState(), tasks[i].remaining)
			}
			if math.Abs(tasks[i].TotalWork-pushed[i]) > 1 {
				t.Fatalf("iter %d: task %d executed %.1f, pushed %.1f",
					iter, i, tasks[i].TotalWork, pushed[i])
			}
		}
	}
}

// Property: run-queue invariants hold at every tick — each non-sleeping task
// is on exactly one queue, heads are Running, others Runnable, and offline
// cores have empty queues.
func TestPropertyQueueInvariants(t *testing.T) {
	eng, s := newSys()
	rng := rand.New(rand.NewSource(11))
	tasks := make([]*Task, 6)
	for i := range tasks {
		tasks[i] = s.NewTask("t", 1.5)
		var gen func(now event.Time)
		i := i
		gen = func(now event.Time) {
			s.Push(tasks[i], float64(1+rng.Intn(30))*1e4)
			eng.At(now+event.Time(1+rng.Intn(10))*event.Millisecond, gen)
		}
		eng.At(event.Time(rng.Intn(5))*event.Millisecond, gen)
	}
	violations := 0
	s.TickHook = func(now event.Time) {
		seen := map[*Task]int{}
		for _, c := range s.cpus {
			for qi, task := range c.queue {
				seen[task]++
				if task.cpu != c.id {
					violations++
				}
				if qi == 0 && task.state != Running {
					violations++
				}
				if qi > 0 && task.state != Runnable {
					violations++
				}
			}
		}
		for _, task := range tasks {
			switch task.state {
			case Sleeping:
				if seen[task] != 0 {
					violations++
				}
			default:
				if seen[task] != 1 {
					violations++
				}
			}
		}
	}
	eng.Run(2 * event.Second)
	if violations != 0 {
		t.Fatalf("%d queue invariant violations", violations)
	}
}

func BenchmarkSchedulerTick(b *testing.B) {
	eng, s := newSys()
	for i := 0; i < 8; i++ {
		task := s.NewTask("t", 1.5)
		var gen func(now event.Time)
		gen = func(now event.Time) {
			s.Push(task, 3e5)
			eng.At(now+2*event.Millisecond, gen)
		}
		gen(0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Run(eng.Now() + event.Millisecond)
	}
}

func TestCoreBusyFraction(t *testing.T) {
	if CoreBusyFraction(0, 50, 100) != 0.5 {
		t.Fatal("fraction")
	}
	if CoreBusyFraction(50, 40, 100) != 0 {
		t.Fatal("negative delta not clamped")
	}
	if CoreBusyFraction(0, 200, 100) != 1 {
		t.Fatal("overflow not clamped")
	}
	if CoreBusyFraction(0, 10, 0) != 0 {
		t.Fatal("zero interval")
	}
}

func TestQueueLenAndOnCPUType(t *testing.T) {
	eng, s := newSys()
	task := s.NewTask("t", 1)
	if s.OnCPUType(task) != platform.Little {
		t.Fatal("sleeping task default type")
	}
	s.Push(task, 1e6)
	if s.QueueLen(task.CPU()) != 1 {
		t.Fatal("queue length")
	}
	eng.Run(10 * event.Millisecond)
}

func TestMoveToTypeNoOps(t *testing.T) {
	eng, s := newSys()
	task := s.NewTask("t", 1)
	s.MoveToType(task, platform.Big) // sleeping: no-op, no panic
	s.Push(task, 1e9)
	cur := task.CPU()
	s.MoveToType(task, s.SoC.Cores[cur].Type) // same type: no-op
	if task.CPU() != cur {
		t.Fatal("same-type move relocated the task")
	}
	pinned := s.NewTask("p", 1)
	pinned.Pin(0)
	s.Push(pinned, 1e9)
	s.MoveToType(pinned, platform.Big)
	if s.SoC.Cores[pinned.CPU()].Type != platform.Little {
		t.Fatal("pinned task moved")
	}
	eng.Run(5 * event.Millisecond)
}

func TestSetCoreOnlineRoundTrip(t *testing.T) {
	eng, s := newSys()
	if err := s.SetCoreOnline(7, false); err != nil {
		t.Fatal(err)
	}
	if s.SoC.Cores[7].Online {
		t.Fatal("still online")
	}
	if err := s.SetCoreOnline(7, true); err != nil {
		t.Fatal(err)
	}
	// Offlining the last little core must fail through the System API too.
	for id := 1; id < 4; id++ {
		if err := s.SetCoreOnline(id, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetCoreOnline(0, false); err == nil {
		t.Fatal("last little core went offline")
	}
	eng.Run(5 * event.Millisecond)
}

func TestBoostOnlyRaises(t *testing.T) {
	_, s := newSys()
	task := s.NewTask("t", 1)
	task.Boost(500)
	if task.Load() != 500 {
		t.Fatalf("load %d after boost", task.Load())
	}
	task.Boost(300) // lower boost must not reduce the load
	if task.Load() != 500 {
		t.Fatalf("load %d after weaker boost", task.Load())
	}
}

// Property: hotplug never takes the last little core offline (§II), however
// a governor churns cores — 10k random decisions under load, with and
// without deep idle. The deep-idle variant also regresses the wake window:
// a task paying its deep-idle exit latency must not land on a core that was
// hotplugged offline in the meantime.
func TestPropertyHotplugNeverKillsLastLittle(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"default", DefaultConfig()},
		{"deep-idle", func() Config {
			c := DefaultConfig()
			c.DeepIdleAfter = 500 * event.Microsecond
			c.DeepIdleWake = 100 * event.Microsecond
			return c
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng := event.New()
			soc := platform.Exynos5422()
			s := New(eng, soc, tc.cfg)
			s.Start()
			rng := rand.New(rand.NewSource(42))

			const n = 6
			tasks := make([]*Task, n)
			for i := range tasks {
				tasks[i] = s.NewTask("t", 1.5)
			}

			decisions := 0
			s.TickHook = func(now event.Time) {
				// Intermittent work keeps tasks cycling through sleep, deep
				// idle, and the waking window while cores churn beneath them.
				if rng.Intn(3) == 0 {
					s.Push(tasks[rng.Intn(n)], float64(1+rng.Intn(5))*1e5)
				}
				for k := 0; k < 10; k++ {
					id := rng.Intn(len(soc.Cores))
					online := rng.Intn(2) == 0
					err := s.SetCoreOnline(id, online)
					decisions++
					if soc.OnlineCount(platform.Little) < 1 {
						t.Fatalf("decision %d at %v: SetCoreOnline(%d, %v) err=%v left no little core online",
							decisions, now, id, online, err)
					}
				}
				for i, tk := range tasks {
					st := tk.CurState()
					if st != Runnable && st != Running {
						continue
					}
					if cpu := tk.CPU(); cpu < 0 || !soc.Cores[cpu].Online {
						t.Fatalf("at %v: task %d is %v on offline core %d", now, i, st, tk.CPU())
					}
				}
			}
			eng.Run(event.Second) // 1000 ticks x 10 decisions
			if decisions < 10000 {
				t.Fatalf("only %d hotplug decisions exercised, want >= 10000", decisions)
			}
			// Refusals must come back as errors, not silent constraint breaks.
			for id := 0; id < 4; id++ {
				s.SetCoreOnline(id, true)
			}
			for id := 1; id < 4; id++ {
				if err := s.SetCoreOnline(id, false); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.SetCoreOnline(0, false); err == nil {
				t.Fatal("offlining the last little core did not error")
			}
		})
	}
}
