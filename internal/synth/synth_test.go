package synth

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	for _, p := range SPEC() {
		s1, s2 := NewStream(p), NewStream(p)
		for i := 0; i < 5000; i++ {
			a, b := s1.Next(), s2.Next()
			if a != b {
				t.Fatalf("%s: trace diverged at %d: %+v vs %+v", p.Name, i, a, b)
			}
		}
	}
}

func TestMixMatchesProfile(t *testing.T) {
	for _, p := range SPEC() {
		s := NewStream(p)
		n := 200_000
		counts := map[Kind]int{}
		mispred, taken, branches := 0, 0, 0
		for i := 0; i < n; i++ {
			in := s.Next()
			counts[in.Kind]++
			if in.Kind == Branch {
				branches++
				if in.Mispredicted {
					mispred++
				}
				if in.Taken {
					taken++
				}
			}
		}
		check := func(name string, got int, want float64) {
			g := float64(got) / float64(n)
			if math.Abs(g-want) > 0.01 {
				t.Errorf("%s: %s fraction %.4f, want %.4f", p.Name, name, g, want)
			}
		}
		check("load", counts[Load], p.LoadFrac)
		check("store", counts[Store], p.StoreFrac)
		check("branch", counts[Branch], p.BranchFrac)
		if branches > 0 {
			mr := float64(mispred) / float64(branches)
			if math.Abs(mr-p.MispredictRate) > 0.01 {
				t.Errorf("%s: mispredict rate %.4f, want %.4f", p.Name, mr, p.MispredictRate)
			}
			tr := float64(taken) / float64(branches)
			if math.Abs(tr-p.TakenRate) > 0.05 {
				t.Errorf("%s: taken rate %.4f, want %.4f", p.Name, tr, p.TakenRate)
			}
		}
	}
}

func TestAddressesWithinFootprint(t *testing.T) {
	for _, p := range SPEC() {
		s := NewStream(p)
		for i := 0; i < 50_000; i++ {
			in := s.Next()
			if in.Kind == Load || in.Kind == Store {
				off := in.Addr - dataBase
				if off > p.HotSetB+p.WorkingSetB {
					t.Fatalf("%s: data address %#x beyond footprint", p.Name, in.Addr)
				}
			}
			if p.CodeFootprintB > 0 && s.PC() >= p.CodeFootprintB {
				t.Fatalf("%s: pc %#x beyond code footprint %#x", p.Name, s.PC(), p.CodeFootprintB)
			}
		}
	}
}

func TestSPECRegistry(t *testing.T) {
	ps := SPEC()
	if len(ps) != 12 {
		t.Fatalf("SPEC() returned %d profiles, want 12", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Fatalf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		if p.LoadFrac+p.StoreFrac+p.BranchFrac >= 1 {
			t.Errorf("%s: mix fractions exceed 1", p.Name)
		}
		if p.Instructions <= 0 || p.WorkingSetB == 0 || p.ILP <= 0 || p.MLP <= 0 {
			t.Errorf("%s: degenerate profile %+v", p.Name, p)
		}
	}
	if _, ok := ProfileByName("mcf"); !ok {
		t.Fatal("ProfileByName(mcf) not found")
	}
	if _, ok := ProfileByName("nonesuch"); ok {
		t.Fatal("ProfileByName(nonesuch) found")
	}
}
