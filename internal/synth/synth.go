// Package synth generates deterministic synthetic instruction and memory
// address streams standing in for the SPECCPU2006 binaries the paper runs in
// §III-A. A Profile captures the microarchitecturally relevant behaviour of
// one workload — instruction mix, exploitable ILP, branch predictability,
// memory-level parallelism, and data/code footprints with a hot/cold access
// skew — and Stream expands it into a reproducible per-instruction trace.
//
// The same profile always yields the identical trace regardless of which
// core model consumes it, so big-vs-little comparisons see the same work.
package synth

import (
	"hash/fnv"
	"math/rand"
)

// Kind classifies one synthetic instruction.
type Kind uint8

const (
	ALU Kind = iota
	Load
	Store
	Branch
)

// Instr is one element of a synthetic trace.
type Instr struct {
	Kind Kind
	// Addr is the data address for Load/Store, undefined otherwise.
	Addr uint64
	// Mispredicted marks a Branch that the (modeled) predictor missed.
	Mispredicted bool
	// Taken marks a Branch that redirects instruction fetch.
	Taken bool
	// Target is the fetch redirect address for taken branches.
	Target uint64
	// NextPC is the fetch address after this instruction retires — the value
	// Stream.PC() returns at this point in the trace. Batch consumers use it
	// for instruction-cache modeling without calling back into the stream.
	NextPC uint64
}

// Profile describes a SPEC-like workload statistically.
type Profile struct {
	Name string

	// Instruction mix; the ALU fraction is the remainder.
	LoadFrac   float64
	StoreFrac  float64
	BranchFrac float64

	// ILP is the mean number of independent instructions available per
	// cycle; it caps superscalar issue on wide cores.
	ILP float64

	// MLP is the number of overlappable outstanding misses the workload
	// exposes; out-of-order cores exploit min(MLP, core window).
	MLP float64

	// MispredictRate is the fraction of branches mispredicted.
	MispredictRate float64
	// TakenRate is the fraction of branches taken (fetch redirects).
	TakenRate float64
	// FarJumpFrac is the fraction of taken branches that jump to a uniform
	// random spot in the code footprint; the rest land within ±512 B of the
	// current fetch address (loops and nearby calls dominate real code).
	FarJumpFrac float64

	// WorkingSetB is the total data footprint in bytes.
	WorkingSetB uint64
	// HotSetB is a small frequently-reused region; HotFrac of accesses go
	// there (captures the 90/10 locality of real programs).
	HotSetB uint64
	HotFrac float64
	// StreamFrac of the non-hot accesses walk sequentially (unit-stride)
	// through the working set; the rest are uniform random lines.
	StreamFrac float64

	// CodeFootprintB is the instruction footprint walked by fetch.
	CodeFootprintB uint64

	// Instructions is the trace length used for full experiment runs.
	Instructions int
}

// dataBase separates code and data address spaces so they do not alias.
const dataBase = 1 << 32

// Stream is a deterministic generator of the profile's instruction trace.
//
// The per-instruction loop is the hottest code in every SPEC experiment, so
// the stream draws directly from the underlying rand source (src) with
// inlined copies of math/rand's Float64 and Int63n derivations — bit-identical
// value streams, minus a layer of wrapper calls — and precomputes the
// cumulative instruction-mix thresholds once instead of re-summing the
// fractions on every draw.
type Stream struct {
	p         Profile
	rng       *rand.Rand
	src       rand.Source64 // same source rng wraps; nil only if unavailable
	pc        uint64
	loopBase  uint64
	streamPtr uint64
	emitted   int

	// Cumulative mix thresholds: a uniform draw r selects Load below loadT,
	// Store below storeT, Branch below branchT, else ALU. Precomputed with
	// the same left-to-right additions the inline expressions used, so the
	// comparisons are bit-identical.
	loadT, storeT, branchT float64
}

// NewStream returns a generator seeded purely by the profile name, so two
// streams for the same profile produce identical traces.
func NewStream(p Profile) *Stream {
	h := fnv.New64a()
	h.Write([]byte(p.Name))
	src := rand.NewSource(int64(h.Sum64()))
	s := &Stream{
		p:       p,
		rng:     rand.New(src),
		loadT:   p.LoadFrac,
		storeT:  p.LoadFrac + p.StoreFrac,
		branchT: p.LoadFrac + p.StoreFrac + p.BranchFrac,
	}
	s.src, _ = src.(rand.Source64)
	return s
}

// f64 mirrors math/rand.(*Rand).Float64 over the stream's source: identical
// algorithm (including the astronomically rare resample at exactly 1.0), so
// the value sequence matches the wrapped rng draw-for-draw.
func (s *Stream) f64() float64 {
	if s.src == nil {
		return s.rng.Float64()
	}
	for {
		f := float64(s.src.Int63()) / (1 << 63)
		if f != 1 {
			return f
		}
	}
}

// i63n mirrors math/rand.(*Rand).Int63n over the stream's source, including
// the power-of-two mask shortcut and the modulo-bias rejection loop.
func (s *Stream) i63n(n int64) int64 {
	if s.src == nil {
		return s.rng.Int63n(n)
	}
	if n <= 0 {
		panic("invalid argument to Int63n")
	}
	if n&(n-1) == 0 {
		return s.src.Int63() & (n - 1)
	}
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := s.src.Int63()
	for v > max {
		v = s.src.Int63()
	}
	return v % n
}

// Profile returns the stream's profile.
func (s *Stream) Profile() Profile { return s.p }

// Emitted returns the number of instructions generated so far.
func (s *Stream) Emitted() int { return s.emitted }

// PC returns the current fetch address (for instruction-cache modeling).
func (s *Stream) PC() uint64 { return s.pc }

// Next produces the next instruction in the trace.
func (s *Stream) Next() Instr {
	var one [1]Instr
	s.NextBatch(one[:])
	return one[0]
}

// NextBatch fills buf with the next len(buf) instructions of the trace —
// the same sequence len(buf) Next calls would produce. Consumers reuse one
// buffer across calls so bulk generation stays allocation-free and the
// stream's state loads are amortized over the batch.
func (s *Stream) NextBatch(buf []Instr) {
	p := &s.p
	s.emitted += len(buf)
	for i := range buf {
		var in Instr
		r := s.f64()
		switch {
		case r < s.loadT:
			in.Kind = Load
			in.Addr = s.dataAddr()
		case r < s.storeT:
			in.Kind = Store
			in.Addr = s.dataAddr()
		case r < s.branchT:
			in.Kind = Branch
			in.Mispredicted = s.f64() < p.MispredictRate
			in.Taken = s.f64() < p.TakenRate
			if in.Taken && p.CodeFootprintB > 0 {
				if s.f64() < p.FarJumpFrac {
					// Cold jump: relocate to a fresh region of the footprint
					// (a call into rarely-used code); the loop base moves too.
					in.Target = uint64(s.i63n(int64(p.CodeFootprintB))) &^ 3
					s.loopBase = in.Target
				} else {
					// Loop back-edge: return near the current loop base, which
					// the fetch stream has been re-executing — reproducing the
					// instruction-cache locality of loop-dominated code.
					t := s.loopBase + uint64(s.i63n(64))&^3
					if t >= p.CodeFootprintB {
						t = s.loopBase
					}
					in.Target = t
				}
			}
		default:
			in.Kind = ALU
		}
		// Advance fetch: sequential, redirected by taken branches.
		if in.Kind == Branch && in.Taken {
			s.pc = in.Target
		} else {
			s.pc += 4
			if p.CodeFootprintB > 0 && s.pc >= p.CodeFootprintB {
				s.pc = 0
			}
		}
		in.NextPC = s.pc
		buf[i] = in
	}
}

func (s *Stream) dataAddr() uint64 {
	if s.p.HotSetB > 0 && s.f64() < s.p.HotFrac {
		return dataBase + uint64(s.i63n(int64(s.p.HotSetB)))&^7
	}
	if s.f64() < s.p.StreamFrac {
		s.streamPtr += 8
		if s.streamPtr >= s.p.WorkingSetB {
			s.streamPtr = 0
		}
		return dataBase + s.p.HotSetB + s.streamPtr
	}
	span := int64(s.p.WorkingSetB)
	if span <= 0 {
		span = 64
	}
	return dataBase + s.p.HotSetB + uint64(s.i63n(span))&^7
}

const (
	kb = 1024
	mb = 1024 * 1024
)

// SPEC returns the 12 SPEC-like profiles used for Figures 2 and 3. Footprints
// and mixes are chosen so that cache-insensitive, compute-dense workloads
// (hmmer, h264ref) sit near the low end of the big-core speedup range and
// workloads whose working sets fit the big cluster's 2 MB L2 but overflow the
// little cluster's 512 KB L2 (mcf, omnetpp, xalancbmk, astar) sit near the
// 4.5x top end, matching the paper's Figure 2 spread.
func SPEC() []Profile {
	return []Profile{
		{
			Name: "perlbench", LoadFrac: 0.26, StoreFrac: 0.12, BranchFrac: 0.21,
			ILP: 2.0, MLP: 1.6, MispredictRate: 0.05, TakenRate: 0.6, FarJumpFrac: 0.025,
			WorkingSetB: 640 * kb, HotSetB: 20 * kb, HotFrac: 0.80, StreamFrac: 0.2,
			CodeFootprintB: 160 * kb, Instructions: 400_000,
		},
		{
			Name: "bzip2", LoadFrac: 0.28, StoreFrac: 0.10, BranchFrac: 0.15,
			ILP: 1.9, MLP: 1.8, MispredictRate: 0.06, TakenRate: 0.55, FarJumpFrac: 0.01,
			WorkingSetB: 300 * kb, HotSetB: 20 * kb, HotFrac: 0.80, StreamFrac: 0.35,
			CodeFootprintB: 24 * kb, Instructions: 400_000,
		},
		{
			Name: "gcc", LoadFrac: 0.27, StoreFrac: 0.13, BranchFrac: 0.20,
			ILP: 2.1, MLP: 2.0, MispredictRate: 0.04, TakenRate: 0.6, FarJumpFrac: 0.03,
			WorkingSetB: 900 * kb, HotSetB: 20 * kb, HotFrac: 0.82, StreamFrac: 0.25,
			CodeFootprintB: 256 * kb, Instructions: 400_000,
		},
		{
			Name: "mcf", LoadFrac: 0.35, StoreFrac: 0.09, BranchFrac: 0.19,
			ILP: 1.6, MLP: 3.5, MispredictRate: 0.05, TakenRate: 0.55, FarJumpFrac: 0.01,
			WorkingSetB: 1600 * kb, HotSetB: 16 * kb, HotFrac: 0.65, StreamFrac: 0.05,
			CodeFootprintB: 16 * kb, Instructions: 300_000,
		},
		{
			Name: "gobmk", LoadFrac: 0.25, StoreFrac: 0.13, BranchFrac: 0.21,
			ILP: 1.7, MLP: 1.3, MispredictRate: 0.10, TakenRate: 0.6, FarJumpFrac: 0.03,
			WorkingSetB: 180 * kb, HotSetB: 20 * kb, HotFrac: 0.85, StreamFrac: 0.2,
			CodeFootprintB: 512 * kb, Instructions: 400_000,
		},
		{
			Name: "hmmer", LoadFrac: 0.30, StoreFrac: 0.14, BranchFrac: 0.08,
			ILP: 3.4, MLP: 2.0, MispredictRate: 0.015, TakenRate: 0.5, FarJumpFrac: 0.005,
			WorkingSetB: 48 * kb, HotSetB: 20 * kb, HotFrac: 0.9, StreamFrac: 0.5,
			CodeFootprintB: 16 * kb, Instructions: 400_000,
		},
		{
			Name: "sjeng", LoadFrac: 0.22, StoreFrac: 0.09, BranchFrac: 0.21,
			ILP: 1.8, MLP: 1.3, MispredictRate: 0.09, TakenRate: 0.6, FarJumpFrac: 0.02,
			WorkingSetB: 170 * kb, HotSetB: 20 * kb, HotFrac: 0.85, StreamFrac: 0.15,
			CodeFootprintB: 64 * kb, Instructions: 400_000,
		},
		{
			Name: "libquantum", LoadFrac: 0.26, StoreFrac: 0.08, BranchFrac: 0.25,
			ILP: 2.6, MLP: 4.0, MispredictRate: 0.01, TakenRate: 0.7, FarJumpFrac: 0.005,
			WorkingSetB: 16 * mb, HotSetB: 4 * kb, HotFrac: 0.1, StreamFrac: 0.98,
			CodeFootprintB: 8 * kb, Instructions: 300_000,
		},
		{
			Name: "h264ref", LoadFrac: 0.35, StoreFrac: 0.12, BranchFrac: 0.08,
			ILP: 3.1, MLP: 2.2, MispredictRate: 0.02, TakenRate: 0.5, FarJumpFrac: 0.01,
			WorkingSetB: 280 * kb, HotSetB: 20 * kb, HotFrac: 0.85, StreamFrac: 0.6,
			CodeFootprintB: 96 * kb, Instructions: 400_000,
		},
		{
			Name: "omnetpp", LoadFrac: 0.34, StoreFrac: 0.18, BranchFrac: 0.21,
			ILP: 1.7, MLP: 2.8, MispredictRate: 0.04, TakenRate: 0.6, FarJumpFrac: 0.025,
			WorkingSetB: 1100 * kb, HotSetB: 16 * kb, HotFrac: 0.78, StreamFrac: 0.1,
			CodeFootprintB: 128 * kb, Instructions: 300_000,
		},
		{
			Name: "astar", LoadFrac: 0.31, StoreFrac: 0.09, BranchFrac: 0.17,
			ILP: 1.8, MLP: 2.4, MispredictRate: 0.06, TakenRate: 0.55, FarJumpFrac: 0.01,
			WorkingSetB: 800 * kb, HotSetB: 16 * kb, HotFrac: 0.80, StreamFrac: 0.1,
			CodeFootprintB: 16 * kb, Instructions: 300_000,
		},
		{
			Name: "xalancbmk", LoadFrac: 0.32, StoreFrac: 0.11, BranchFrac: 0.25,
			ILP: 1.9, MLP: 2.6, MispredictRate: 0.035, TakenRate: 0.65, FarJumpFrac: 0.03,
			WorkingSetB: 1000 * kb, HotSetB: 16 * kb, HotFrac: 0.80, StreamFrac: 0.15,
			CodeFootprintB: 320 * kb, Instructions: 300_000,
		},
	}
}

// ProfileByName returns the SPEC profile with the given name.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range SPEC() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
