package uarch

import (
	"testing"

	"biglittle/internal/synth"
)

const testInstr = 150_000

func runAll(t *testing.T, m Model, freq int) map[string]Result {
	t.Helper()
	out := map[string]Result{}
	for _, p := range synth.SPEC() {
		out[p.Name] = Run(m, p, freq, testInstr)
	}
	return out
}

// Calibration anchor (§III-A, Fig. 2): at the same 1.3 GHz the big core is
// faster for every SPEC workload, with the spread reaching roughly 4.5x for
// cache-sensitive workloads and staying modest for compute-dense ones.
func TestSameFrequencySpeedups(t *testing.T) {
	little := runAll(t, CortexA7(), 1300)
	big := runAll(t, CortexA15(), 1300)

	maxSp, minSp := 0.0, 1e9
	for name := range little {
		sp := Speedup(big[name], little[name])
		t.Logf("%-12s speedup %.2f (little CPI %.2f, big CPI %.2f)", name, sp,
			little[name].CPI, big[name].CPI)
		if sp <= 1.0 {
			t.Errorf("%s: big core slower at equal frequency (%.2f)", name, sp)
		}
		if sp > maxSp {
			maxSp = sp
		}
		if sp < minSp {
			minSp = sp
		}
	}
	if maxSp < 3.5 || maxSp > 5.5 {
		t.Errorf("max same-frequency speedup %.2f outside paper's ~4.5x band", maxSp)
	}
	if minSp > 2.0 {
		t.Errorf("min same-frequency speedup %.2f: expected compute-dense workloads near the bottom of the range", minSp)
	}
}

// Calibration anchor (§III-A): at the minimum big frequency (0.8 GHz) a few
// workloads run slower than a little core at 1.3 GHz, but most still win.
func TestMinBigFrequencyCrossover(t *testing.T) {
	little := runAll(t, CortexA7(), 1300)
	big := runAll(t, CortexA15(), 800)
	slower := 0
	for name := range little {
		if Speedup(big[name], little[name]) < 1.0 {
			slower++
		}
	}
	if slower < 2 || slower > 5 {
		t.Errorf("%d workloads slower on big@0.8GHz than little@1.3GHz; paper shows 3", slower)
	}
}

// The L2 size is the decisive factor for mcf-like workloads: the big L2
// contains the working set, the little one does not.
func TestL2SizeDrivesGap(t *testing.T) {
	p, _ := synth.ProfileByName("mcf")
	little := Run(CortexA7(), p, 1300, testInstr)
	big := Run(CortexA15(), p, 1300, testInstr)
	if little.L2MissRate < 0.3 {
		t.Errorf("little L2 miss rate %.2f for mcf, want substantial misses", little.L2MissRate)
	}
	if big.L2MissRate > 0.1 {
		t.Errorf("big L2 miss rate %.2f for mcf, want near-zero (WS fits 2MB)", big.L2MissRate)
	}

	// Control: give the little core a 2MB L2 and the gap must shrink a lot.
	grown := CortexA7()
	grown.L2.SizeB = 2 << 20
	grownRes := Run(grown, p, 1300, testInstr)
	if grownRes.Seconds >= little.Seconds*0.6 {
		t.Errorf("2MB L2 on little core should cut mcf time sharply: %.4fs vs %.4fs",
			grownRes.Seconds, little.Seconds)
	}
}

func TestFrequencyScaling(t *testing.T) {
	for _, name := range []string{"hmmer", "libquantum"} {
		p, _ := synth.ProfileByName(name)
		m := CortexA15()
		r08 := Run(m, p, 800, testInstr)
		r19 := Run(m, p, 1900, testInstr)
		sp := Speedup(r19, r08)
		if sp <= 1.0 {
			t.Errorf("%s: no gain from 0.8->1.9GHz (%.2f)", name, sp)
		}
		// libquantum misses both L2s (16MB stream), so DRAM stalls must damp
		// its frequency scaling well below the 2.375x frequency step.
		if name == "libquantum" && sp > 1.9 {
			t.Errorf("libquantum scaled %.2fx for a 2.375x frequency step; memory stalls should damp it", sp)
		}
		if name == "hmmer" && sp < 2.0 {
			t.Errorf("hmmer scaled only %.2fx; compute-dense should be near-linear", sp)
		}
	}
}

func TestDeterministicResults(t *testing.T) {
	p, _ := synth.ProfileByName("gcc")
	a := Run(CortexA15(), p, 1300, testInstr)
	b := Run(CortexA15(), p, 1300, testInstr)
	if a != b {
		t.Fatalf("same run differed:\n%+v\n%+v", a, b)
	}
}

func TestResultAccounting(t *testing.T) {
	for _, p := range synth.SPEC() {
		r := Run(CortexA7(), p, 1000, 50_000)
		sum := r.BaseCycles + r.BranchCycles + r.MemCycles + r.FetchCycles
		if diff := sum - r.Cycles; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("%s: cycle components %.1f != total %.1f", p.Name, sum, r.Cycles)
		}
		if r.CPI < 0.3 {
			t.Errorf("%s: implausibly low CPI %.2f", p.Name, r.CPI)
		}
		if r.Instructions != 50_000 {
			t.Errorf("%s: instructions %d, want 50000", p.Name, r.Instructions)
		}
	}
}

func TestModelPresets(t *testing.T) {
	a7, a15 := CortexA7(), CortexA15()
	if a7.L2.SizeB != 512<<10 || a15.L2.SizeB != 2<<20 {
		t.Fatal("Table I L2 sizes not encoded")
	}
	if a7.IssueWidth != 2 || a15.IssueWidth != 3 {
		t.Fatal("Table I issue widths not encoded")
	}
	if a7.MinFreqMHz != 500 || a7.MaxFreqMHz != 1300 || a15.MinFreqMHz != 800 || a15.MaxFreqMHz != 1900 {
		t.Fatal("frequency ranges not encoded")
	}
	if !a15.OutOfOrder || a7.OutOfOrder {
		t.Fatal("OoO flags wrong")
	}
}

func BenchmarkRunA15(b *testing.B) {
	p, _ := synth.ProfileByName("gcc")
	m := CortexA15()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(m, p, 1300, 20_000)
	}
}
