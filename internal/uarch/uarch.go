// Package uarch models the Cortex-A15 ("big") and Cortex-A7 ("little") core
// microarchitectures at the fidelity the paper's §III-A experiments need: a
// trace-driven CPI model that charges base issue cycles, branch misprediction
// penalties, and memory stalls computed by running the synthetic address
// stream through the real set-associative cache simulator.
//
// The model reproduces the two mechanisms the paper identifies behind the
// big/little performance gap: (i) wider out-of-order issue with latency
// hiding versus narrow in-order execution, and (ii) the 2 MB versus 512 KB
// L2, which makes cache-sensitive workloads diverge by up to ~4.5x at equal
// frequency.
package uarch

import (
	"sync"

	"biglittle/internal/cache"
	"biglittle/internal/synth"
)

// Model describes one core microarchitecture.
type Model struct {
	Name string

	IssueWidth    int     // superscalar issue slots
	IPCEfficiency float64 // fraction of nominal workload ILP the pipeline extracts
	BranchPenalty float64 // cycles lost per mispredicted branch (pipeline depth)
	// PredictorFactor scales the workload's misprediction rate; the A15's
	// larger predictor resolves a portion of the A7's mispredictions.
	PredictorFactor float64

	OutOfOrder bool
	// MaxMLP caps the overlappable outstanding misses (OoO window / MSHRs).
	MaxMLP float64
	// ShortStallExposed is the fraction of an L2-hit latency the pipeline
	// cannot hide (low for OoO cores).
	ShortStallExposed float64
	// StoreStallExposed is the fraction of store miss latency exposed
	// (store buffers hide most of it).
	StoreStallExposed float64

	L1I cache.Config
	L1D cache.Config
	L2  cache.Config

	L2LatencyCycles float64 // L1-miss-to-L2-hit penalty
	MemLatencyNs    float64 // L2-miss-to-DRAM penalty in wall time

	MinFreqMHz int
	MaxFreqMHz int
}

// CortexA7 returns the little-core model per Table I of the paper.
func CortexA7() Model {
	return Model{
		Name:              "Cortex-A7",
		IssueWidth:        2,
		IPCEfficiency:     0.60, // in-order issue stalls on dependences
		BranchPenalty:     9,
		PredictorFactor:   1.0,
		OutOfOrder:        false,
		MaxMLP:            1.4, // non-blocking L1 + next-line prefetch
		ShortStallExposed: 0.90,
		StoreStallExposed: 0.35,
		L1I:               cache.Config{Name: "A7.L1I", SizeB: 32 << 10, Ways: 2, LineB: 32},
		L1D:               cache.Config{Name: "A7.L1D", SizeB: 32 << 10, Ways: 4, LineB: 64},
		L2:                cache.Config{Name: "A7.L2", SizeB: 512 << 10, Ways: 8, LineB: 64},
		L2LatencyCycles:   10,
		MemLatencyNs:      80,
		MinFreqMHz:        500,
		MaxFreqMHz:        1300,
	}
}

// CortexA15 returns the big-core model per Table I of the paper.
func CortexA15() Model {
	return Model{
		Name:              "Cortex-A15",
		IssueWidth:        3,
		IPCEfficiency:     1.0,
		BranchPenalty:     16,
		PredictorFactor:   0.55,
		OutOfOrder:        true,
		MaxMLP:            4.5,
		ShortStallExposed: 0.30,
		StoreStallExposed: 0.10,
		L1I:               cache.Config{Name: "A15.L1I", SizeB: 32 << 10, Ways: 2, LineB: 64},
		L1D:               cache.Config{Name: "A15.L1D", SizeB: 32 << 10, Ways: 2, LineB: 64},
		L2:                cache.Config{Name: "A15.L2", SizeB: 2 << 20, Ways: 16, LineB: 64},
		L2LatencyCycles:   21,
		MemLatencyNs:      80,
		MinFreqMHz:        800,
		MaxFreqMHz:        1900,
	}
}

// Result summarizes one trace run on one core model at one frequency.
type Result struct {
	Core         string
	Workload     string
	FreqMHz      int
	Instructions int
	Cycles       float64
	Seconds      float64
	CPI          float64
	IPC          float64

	L1IMissRate float64
	L1DMissRate float64
	L2MissRate  float64

	BaseCycles   float64
	BranchCycles float64
	MemCycles    float64
	FetchCycles  float64
}

// Penalty-event codes recorded by trace and replayed by Run. Only the two
// memory-side weights depend on frequency, but all four are recorded so the
// replayed additions interleave in exactly the trace order.
const (
	evL2Load = iota
	evMemLoad
	evL2Store
	evMemStore
)

// runTrace is the frequency-independent outcome of simulating one
// (model, profile, instructions) trace: the three accumulators whose weights
// do not depend on frequency, the ordered sequence of memory-penalty events
// (whose weights do), and the final cache statistics.
type runTrace struct {
	base, branch, fetch         float64
	memEvents                   []uint8
	l1iStats, l1dStats, l2Stats cache.Stats
}

type runKey struct {
	m            Model
	p            synth.Profile
	instructions int
}

var (
	runMu   sync.Mutex
	runMemo = map[runKey]*runTrace{}
)

// Run replays the profile's deterministic trace on the core model at the
// given frequency. instructions overrides the profile's default trace length
// when positive (used by short benchmark runs).
//
// The cache/branch behaviour of a trace does not depend on frequency —
// frequency only scales the DRAM-stall weights — so the simulated trace is
// memoized per (model, profile, length) and each frequency point replays the
// recorded penalty events with its own weights. The replayed float additions
// happen in the identical order the direct simulation performed them, so
// results are bit-identical to simulating every frequency from scratch.
func Run(m Model, p synth.Profile, freqMHz int, instructions int) Result {
	if instructions <= 0 {
		instructions = p.Instructions
	}
	key := runKey{m: m, p: p, instructions: instructions}
	runMu.Lock()
	tr, ok := runMemo[key]
	runMu.Unlock()
	if !ok {
		tr = trace(m, p, instructions)
		runMu.Lock()
		if len(runMemo) >= 64 {
			clear(runMemo) // bound memory across long parameter sweeps
		}
		runMemo[key] = tr
		runMu.Unlock()
	}

	effIssue := min(float64(m.IssueWidth), p.ILP*m.IPCEfficiency)
	if effIssue < 0.5 {
		effIssue = 0.5
	}
	mlp := 1.0
	if m.OutOfOrder {
		mlp = min(m.MaxMLP, p.MLP)
	} else {
		mlp = min(m.MaxMLP, p.MLP)
		if mlp < 1 {
			mlp = 1
		}
	}
	memLatCycles := m.MemLatencyNs * float64(freqMHz) / 1000.0

	weights := [4]float64{
		evL2Load:   m.L2LatencyCycles * m.ShortStallExposed,
		evMemLoad:  memLatCycles / mlp,
		evL2Store:  m.L2LatencyCycles * m.StoreStallExposed,
		evMemStore: memLatCycles / mlp * m.StoreStallExposed,
	}
	var mem float64
	for _, ev := range tr.memEvents {
		mem += weights[ev]
	}

	cycles := tr.base + tr.branch + mem + tr.fetch
	return Result{
		Core:         m.Name,
		Workload:     p.Name,
		FreqMHz:      freqMHz,
		Instructions: instructions,
		Cycles:       cycles,
		Seconds:      cycles / (float64(freqMHz) * 1e6),
		CPI:          cycles / float64(instructions),
		IPC:          float64(instructions) / cycles,
		L1IMissRate:  tr.l1iStats.MissRate(),
		L1DMissRate:  tr.l1dStats.MissRate(),
		L2MissRate:   tr.l2Stats.MissRate(),
		BaseCycles:   tr.base,
		BranchCycles: tr.branch,
		MemCycles:    mem,
		FetchCycles:  tr.fetch,
	}
}

// trace simulates the full instruction trace once, recording every
// frequency-dependent penalty as an event code instead of a cost.
func trace(m Model, p synth.Profile, instructions int) *runTrace {
	l1i := cache.New(m.L1I)
	h := cache.NewHierarchy(m.L1D, m.L2)
	prefill(l1i, h, p)

	effIssue := min(float64(m.IssueWidth), p.ILP*m.IPCEfficiency)
	if effIssue < 0.5 {
		effIssue = 0.5
	}

	st := NewStream(p)
	// Per-instruction costs are loop-invariant; hoisting them preserves the
	// exact float64 values the in-loop expressions produced (each is the same
	// left-to-right computation, evaluated once).
	issueCost := 1 / effIssue
	brPenalty := m.BranchPenalty * m.PredictorFactor
	l1iLineB := uint64(m.L1I.LineB)

	tr := &runTrace{memEvents: make([]uint8, 0, 4096)}
	lastFetchLine := uint64(1) << 62 // sentinel: forces first fetch
	redirected := false
	var buf [256]synth.Instr
	for done := 0; done < instructions; {
		n := instructions - done
		if n > len(buf) {
			n = len(buf)
		}
		st.NextBatch(buf[:n])
		done += n
		for i := 0; i < n; i++ {
			in := &buf[i]
			tr.base += issueCost

			// Instruction fetch: access L1I once per line crossed. Sequential
			// refills are hidden by next-line fetch-ahead; only misses on the
			// fetch immediately following a taken-branch redirect stall the
			// front end (refill from L2 — code footprints fit L2 everywhere).
			fl := in.NextPC / l1iLineB
			if fl != lastFetchLine {
				lastFetchLine = fl
				if !l1i.Access(in.NextPC) && redirected {
					tr.fetch += m.L2LatencyCycles
				}
				redirected = false
			}
			if in.Kind == synth.Branch && in.Taken {
				redirected = true
			}

			switch in.Kind {
			case synth.Branch:
				if in.Mispredicted {
					// The better big-core predictor resolves a fraction of them.
					tr.branch += brPenalty
				}
			case synth.Load:
				switch h.Access(in.Addr) {
				case cache.L2:
					tr.memEvents = append(tr.memEvents, evL2Load)
				case cache.Memory:
					tr.memEvents = append(tr.memEvents, evMemLoad)
				}
			case synth.Store:
				switch h.Access(in.Addr) {
				case cache.L2:
					tr.memEvents = append(tr.memEvents, evL2Store)
				case cache.Memory:
					tr.memEvents = append(tr.memEvents, evMemStore)
				}
			}
		}
	}

	tr.l1iStats = l1i.Stats()
	tr.l1dStats = h.L1D.Stats()
	tr.l2Stats = h.L2.Stats()
	return tr
}

// NewStream wraps synth.NewStream; indirection point for tests.
func NewStream(p synth.Profile) *synth.Stream { return synth.NewStream(p) }

// prefillKey identifies a warmed-cache state: the walk below is a pure
// function of the cache geometries and the profile's footprints.
type prefillKey struct {
	l1i, l1d, l2       cache.Config
	working, hot, code uint64
}

type prefillSnap struct {
	l1i, l1d, l2 cache.Snapshot
}

var (
	prefillMu   sync.Mutex
	prefillMemo = map[prefillKey]prefillSnap{}
)

// prefill warms the caches with the workload's footprint so the measured
// window sees steady-state behaviour rather than cold misses — the paper's
// SPEC runs execute billions of instructions, amortizing cold misses to
// nothing. The cold working set is streamed first and the hot set last, so
// LRU keeps the hot region resident exactly as a steady-state run would.
//
// The warmed state is memoized per (cache configs, footprints): the walk is
// deterministic, so restoring a snapshot is bit-identical to re-walking, and
// sweeps that revisit the same core/workload pair skip the warmup entirely.
func prefill(l1i *cache.Cache, h *cache.Hierarchy, p synth.Profile) {
	key := prefillKey{
		l1i: l1i.Config(), l1d: h.L1D.Config(), l2: h.L2.Config(),
		working: p.WorkingSetB, hot: p.HotSetB, code: p.CodeFootprintB,
	}
	prefillMu.Lock()
	snap, ok := prefillMemo[key]
	prefillMu.Unlock()
	if ok {
		l1i.Restore(snap.l1i)
		h.L1D.Restore(snap.l1d)
		h.L2.Restore(snap.l2)
		return
	}

	const dataBase = 1 << 32 // must match synth's data segment base
	for a := uint64(0); a < p.WorkingSetB; a += 64 {
		h.Access(dataBase + p.HotSetB + a)
	}
	for a := uint64(0); a < p.HotSetB; a += 64 {
		h.Access(dataBase + a)
	}
	for a := uint64(0); a < p.CodeFootprintB; a += uint64(l1i.Config().LineB) {
		l1i.Access(a)
	}
	h.L1D.ResetStats()
	h.L2.ResetStats()
	l1i.ResetStats()

	snap = prefillSnap{l1i: l1i.Snapshot(), l1d: h.L1D.Snapshot(), l2: h.L2.Snapshot()}
	prefillMu.Lock()
	if len(prefillMemo) >= 64 {
		clear(prefillMemo) // bound memory across long parameter sweeps
	}
	prefillMemo[key] = snap
	prefillMu.Unlock()
}

// Speedup returns tBaseline/tCandidate given two results for the same
// workload (higher means candidate is faster).
func Speedup(candidate, baseline Result) float64 {
	if candidate.Seconds == 0 {
		return 0
	}
	// Normalize to per-instruction time so different trace lengths compare.
	ct := candidate.Seconds / float64(candidate.Instructions)
	bt := baseline.Seconds / float64(baseline.Instructions)
	return bt / ct
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
