package uarch

import (
	"testing"

	"biglittle/internal/synth"
)

func resetMemos() {
	runMu.Lock()
	clear(runMemo)
	runMu.Unlock()
	prefillMu.Lock()
	clear(prefillMemo)
	prefillMu.Unlock()
}

// The trace memo must be invisible: a Run served by replaying a recorded
// trace must equal — bit for bit, every float field — a Run that simulated
// the trace from scratch, regardless of which frequency recorded the trace.
func TestRunMemoBitIdentical(t *testing.T) {
	models := []Model{CortexA7(), CortexA15()}
	profiles := synth.SPEC()[:3]
	freqs := []int{800, 1300, 1900}
	const instr = 50_000

	for _, m := range models {
		for _, p := range profiles {
			// Reference: every frequency simulated on a cold memo.
			ref := make(map[int]Result, len(freqs))
			for _, f := range freqs {
				resetMemos()
				ref[f] = Run(m, p, f, instr)
			}
			// Warm replay: same key served from the memo.
			for _, f := range freqs {
				resetMemos()
				Run(m, p, f, instr)
				if got := Run(m, p, f, instr); got != ref[f] {
					t.Errorf("%s/%s@%d: warm replay diverged\n got %+v\nwant %+v", m.Name, p.Name, f, got, ref[f])
				}
			}
			// Cross-frequency replay: record at one frequency, replay at another.
			resetMemos()
			Run(m, p, freqs[0], instr)
			for _, f := range freqs[1:] {
				if got := Run(m, p, f, instr); got != ref[f] {
					t.Errorf("%s/%s@%d: cross-freq replay diverged\n got %+v\nwant %+v", m.Name, p.Name, f, got, ref[f])
				}
			}
		}
	}
}

// Different trace lengths must occupy distinct memo entries.
func TestRunMemoKeyedByLength(t *testing.T) {
	resetMemos()
	m, p := CortexA15(), synth.SPEC()[0]
	a := Run(m, p, 1300, 10_000)
	b := Run(m, p, 1300, 20_000)
	if a.Instructions != 10_000 || b.Instructions != 20_000 {
		t.Fatalf("instruction counts clobbered: %d, %d", a.Instructions, b.Instructions)
	}
	if a.Cycles == b.Cycles {
		t.Fatal("distinct trace lengths returned identical cycle counts")
	}
}
