// Package lab is the experiment orchestrator: it turns every simulation
// into a declarative Job, fans jobs out over a bounded worker pool, and
// memoizes completed results in a content-addressed on-disk cache so warm
// re-runs skip simulation entirely.
//
// Three properties make it safe to put under every paper-reproduction
// driver:
//
//   - Determinism: RunAll returns results in job-submission order no matter
//     which worker finished first, and the simulator itself is a
//     single-threaded deterministic event engine — so report output is
//     byte-identical for 1 worker or N, cold cache or warm.
//   - Isolation: each job runs a fresh, isolated engine. Observers whose
//     event streams are not goroutine-safe (telemetry.Collector's event
//     bus, trace.Recorder) must be per-job; the Prepare hook exists so each
//     job can construct its own.
//   - Robustness: a panicking job is recovered and retried a bounded number
//     of times; a hung job can be abandoned on a per-job timeout; a corrupt
//     cache blob falls back to re-simulation.
package lab

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"biglittle/internal/check"
	"biglittle/internal/core"
	"biglittle/internal/delta"
	"biglittle/internal/event"
	"biglittle/internal/telemetry"
)

// Job is one declarative experiment: a fully resolved simulation config
// plus optional orchestration hooks.
type Job struct {
	Config core.Config

	// Salt is extra fingerprint material for call sites where the config
	// alone under-identifies the run — e.g. composite apps whose background
	// set is hidden inside App.Build.
	Salt string

	// Prepare, if set, runs in the worker immediately before simulation and
	// may attach per-job observers (a fresh telemetry.Collector, a
	// trace.Recorder via OnSystem, ...) to the config copy it receives.
	// Jobs whose final config carries observers are never cached.
	Prepare func(*core.Config)

	// Fork, when non-nil, accelerates the job with a shared snapshot prefix:
	// instead of simulating Config from scratch, the runner warms (or
	// reuses) one prefix of Fork.Base run to Fork.At and resumes it under
	// Config — whose knobs take effect at the fork point. Jobs with an
	// identical (Base, At) share a single prefix simulation, in memory and
	// in the cache's prefix tier. Fork jobs never ship to the remote fleet
	// (snapshots mirror process-local closure state) and are mutually
	// exclusive with Runner.Check.
	Fork *ForkSpec
}

// ForkSpec names the shared prefix of a fork-accelerated job: the base
// config to warm — typically the sweep's config with the swept knob at its
// baseline value — and the fork time. Base must be fingerprintable (no
// observers, hooks, or digest recorder), or the job fails loudly.
type ForkSpec struct {
	Base core.Config
	At   event.Time
}

// Executor runs a job somewhere other than this process — the simulation
// fleet, typically (internal/fleet.Client implements it). Execute reports
// ok=false when the job cannot be shipped out (it carries hooks or observers
// that do not serialize, or an app/platform the remote side cannot rebuild
// by name); the runner then simulates locally. A non-nil error means the
// remote attempt itself failed (coordinator unreachable, job failed on every
// worker); the runner logs it and falls back to local simulation, so a dead
// fleet degrades to in-process execution, never to a lost result.
type Executor interface {
	Execute(job Job) (res core.Result, ok bool, err error)
}

// Stats counts what a runner did. Hits+Remote+Simulated = completed jobs
// (when nothing failed); on a fully warm cache Simulated is zero.
type Stats struct {
	Jobs      int64 // jobs submitted
	Hits      int64 // results served from cache
	Misses    int64 // cache lookups that missed (cacheable jobs only)
	Simulated int64 // simulations actually executed
	Stored    int64 // results written to cache
	Retries   int64 // extra attempts after a panic or timeout
	Failures  int64 // jobs that exhausted their attempts

	// Remote counts jobs executed by the remote fleet (Runner.Remote);
	// RemoteErrors counts remote attempts that failed and fell back to
	// local simulation.
	Remote       int64
	RemoteErrors int64

	// Audited counts jobs that passed invariant auditing (Runner.Check);
	// AuditFailures counts jobs whose audit reported violations or whose
	// cached result disagreed with a fresh audited simulation.
	Audited       int64
	AuditFailures int64

	// Forks counts fork-accelerated continuations resumed from a prefix
	// snapshot. PrefixHits counts fork jobs served by an already-warm prefix
	// (built earlier in this process, or found in the cache's prefix tier);
	// PrefixMisses counts prefix simulations actually executed — on a sweep
	// of N variants sharing one (Base, At), PrefixMisses is 1 and PrefixHits
	// is N-1. PrefixEvictions counts decoded prefixes dropped from the
	// in-process tier to stay under Runner.PrefixBudget; an evicted prefix
	// re-requested later is rebuilt (or reloaded from the disk tier) and
	// counted again.
	Forks           int64
	PrefixHits      int64
	PrefixMisses    int64
	PrefixEvictions int64
}

// Runner executes jobs on a worker pool with caching. The zero value is
// usable: GOMAXPROCS workers, no cache, no telemetry, no timeout, one retry.
type Runner struct {
	// Workers caps concurrent simulations (<=0: GOMAXPROCS).
	Workers int
	// Cache, when non-nil, memoizes results by content fingerprint.
	Cache *Cache
	// Remote, when non-nil, executes fingerprintable jobs on a remote fleet
	// after the local cache misses. Jobs the executor cannot ship (Execute
	// ok=false) and failed remote attempts simulate locally, so attaching a
	// Remote never changes results — only where they are computed. Remote
	// results are stored into the local cache like fresh simulations.
	Remote Executor
	// Tel, when non-nil, receives progress and cache hit/miss counters —
	// one per Stats field: "lab_jobs", "lab_cache_hits", "lab_cache_misses",
	// "lab_simulations", "lab_stored", "lab_retries", "lab_failures",
	// "lab_remote", "lab_remote_errors", "lab_audited",
	// "lab_audit_failures", "lab_forks", "lab_prefix_hits",
	// "lab_prefix_misses". The runner updates them under its
	// own mutex so Stats and the mirrored counters stay in lockstep; the
	// registry itself is goroutine-safe, so exporting this collector (e.g.
	// WritePrometheus) while a sweep runs is fine. Do not share it with
	// concurrently running jobs' event emission — the event bus is still
	// single-threaded.
	Tel *telemetry.Collector
	// Log, when non-nil, receives structured sweep observability: per-job
	// state transitions (cache hit/miss, simulated, stored, retry, failure,
	// audit) at Debug, and sweep-level progress — completed/total, jobs/sec,
	// ETA — at Info. Nil stays silent; the logger must be goroutine-safe
	// (slog's built-in handlers are).
	Log *slog.Logger
	// Timeout abandons a single simulation after this much wall-clock time
	// (0: none). The abandoned goroutine cannot be killed — it drains in the
	// background and its result is discarded — so treat a timeout as a bug
	// signal, not a scheduling tool.
	Timeout time.Duration
	// Retries is how many extra attempts a panicking or timed-out job gets
	// (<0: none; 0: the default of 1).
	Retries int
	// PrefixBudget bounds the bytes of decoded prefix snapshots the
	// in-process fork tier keeps alive at once (estimated via
	// snapshot.State.ApproxBytes). A wide multi-app, multi-rung fork sweep
	// would otherwise hold every decoded state until the runner dies. Least
	// recently handed-out prefixes are evicted first (Stats.PrefixEvictions);
	// the entry just handed out is never evicted, so a single oversized
	// prefix still serves its sweep. 0 means DefaultPrefixBudget; negative
	// means unlimited.
	PrefixBudget int64
	// Check enables invariant auditing (internal/check) for every job: fresh
	// simulations run with an auditor attached and fail on any violation, and
	// cache hits are verified by re-simulating with an auditor and requiring
	// the cached result to match the fresh one byte for byte. Auditing is a
	// pure observation — results are identical with it on or off — but cache
	// hits lose their speedup since each one re-simulates.
	Check bool

	mu    sync.Mutex
	stats Stats

	// prefixes is the in-process tier of the fork-prefix cache: one decoded
	// read-only snapshot per (base fingerprint, fork time), built at most
	// once per runner under singleflight. The on-disk tier lives in the
	// Cache's prefix/ area and survives across processes. prefixKeys
	// memoizes the fingerprint-derived key per spec pointer, so a sweep
	// sharing one *ForkSpec marshals the base config once. prefixLRU orders
	// the tracked keys least-recently-handed-out first and prefixBytes sums
	// their estimated sizes, for PrefixBudget eviction.
	prefixMu    sync.Mutex
	prefixes    map[string]*prefixEntry
	prefixKeys  map[*ForkSpec]string
	prefixLRU   []string
	prefixBytes int64
}

// DefaultPrefixBudget is the in-process prefix tier's byte budget when
// Runner.PrefixBudget is zero: enough for tens of typical decoded
// snapshots, small enough that a hundred-app fork matrix cannot hold every
// prefix alive at once.
const DefaultPrefixBudget int64 = 1 << 30

// New returns a runner with the given worker count and cache.
func New(workers int, cache *Cache) *Runner {
	return &Runner{Workers: workers, Cache: cache}
}

var defaultRunner = sync.OnceValue(func() *Runner { return &Runner{} })

// Default returns the shared process-wide runner: GOMAXPROCS workers, no
// cache. It is what analysis drivers use when no runner is configured.
func Default() *Runner { return defaultRunner() }

// Stats returns a snapshot of the runner's counters.
func (r *Runner) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

func (r *Runner) workers(n int) int {
	w := r.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (r *Runner) retries() int {
	switch {
	case r.Retries < 0:
		return 0
	case r.Retries == 0:
		return 1
	default:
		return r.Retries
	}
}

// count applies fn to the stats and mirrors named counters into the
// attached telemetry registry, all under one lock (the Collector is not
// goroutine-safe).
func (r *Runner) count(fn func(*Stats), counters ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn(&r.stats)
	for _, name := range counters {
		r.Tel.Counter(name).Inc()
	}
}

// countAdd is count for increments larger than one: it applies fn to the
// stats and adds n to the single mirrored counter, under the same lock.
func (r *Runner) countAdd(fn func(*Stats), counter string, n int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn(&r.stats)
	r.Tel.Counter(counter).Add(n)
}

// RunAll executes every job and returns the results in submission order.
// The first error (by submission order) is returned after all jobs finish;
// its result slot is the zero Result. Configs are values: the caller's jobs
// are never mutated.
func (r *Runner) RunAll(jobs []Job) ([]core.Result, error) {
	results := make([]core.Result, len(jobs))
	errs := make([]error, len(jobs))
	prog := r.newProgress(len(jobs))
	r.ForEach(len(jobs), func(i int) {
		results[i], errs[i] = r.runOne(jobs[i])
		prog.step()
	})
	prog.finish()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// progress tracks sweep completion for the structured log. A nil *progress
// (no logger attached) is valid and does nothing.
type progress struct {
	r         *Runner
	total     int
	every     int64 // log an Info line every this many completions
	start     time.Time
	completed atomic.Int64
}

func (r *Runner) newProgress(total int) *progress {
	if r.Log == nil || total <= 0 {
		return nil
	}
	every := int64(total / 10)
	if every < 1 {
		every = 1
	}
	r.Log.Info("sweep start", "jobs", total, "workers", r.workers(total))
	return &progress{r: r, total: total, every: every, start: time.Now()}
}

// step records one finished job and, every `every` completions, logs
// completed/total, throughput, and the ETA extrapolated from the rate so
// far. Called from worker goroutines.
func (p *progress) step() {
	if p == nil {
		return
	}
	n := p.completed.Add(1)
	if n%p.every != 0 && int(n) != p.total {
		return
	}
	elapsed := time.Since(p.start)
	rate := float64(n) / elapsed.Seconds()
	eta := time.Duration(0)
	if rate > 0 {
		eta = time.Duration(float64(p.total-int(n)) / rate * float64(time.Second))
	}
	args := []any{
		"completed", n,
		"total", p.total,
		"jobs_per_sec", math.Round(rate*10) / 10,
		"eta", eta.Round(10 * time.Millisecond).String(),
	}
	// Prefix-tier effectiveness, when the sweep forks: how many
	// continuations have resumed from a warmed prefix, and what share of
	// prefix requests were served without simulating one.
	if s := p.r.Stats(); s.Forks > 0 || s.PrefixMisses > 0 {
		hitPct := 0.0
		if reqs := s.PrefixHits + s.PrefixMisses; reqs > 0 {
			hitPct = 100 * float64(s.PrefixHits) / float64(reqs)
		}
		args = append(args,
			"forks", s.Forks,
			"prefix_hit_pct", math.Round(hitPct*10)/10,
		)
		if s.PrefixEvictions > 0 {
			args = append(args, "prefix_evictions", s.PrefixEvictions)
		}
	}
	p.r.Log.Info("sweep progress", args...)
}

// finish logs the sweep summary with the runner's cumulative tallies.
func (p *progress) finish() {
	if p == nil {
		return
	}
	s := p.r.Stats()
	p.r.Log.Info("sweep complete",
		"jobs", p.completed.Load(),
		"elapsed", time.Since(p.start).Round(time.Millisecond).String(),
		"hits", s.Hits,
		"misses", s.Misses,
		"simulated", s.Simulated,
		"forks", s.Forks,
		"prefix_hits", s.PrefixHits,
		"prefix_evictions", s.PrefixEvictions,
		"remote", s.Remote,
		"stored", s.Stored,
		"retries", s.Retries,
		"failures", s.Failures,
		"audited", s.Audited,
		"audit_failures", s.AuditFailures,
	)
}

// logJob emits one per-job Debug transition when a logger is attached.
func (r *Runner) logJob(msg, app string, args ...any) {
	if r.Log == nil {
		return
	}
	r.Log.Debug(msg, append([]any{"app", app}, args...)...)
}

// RunConfigs is RunAll over bare configs.
func (r *Runner) RunConfigs(cfgs []core.Config) ([]core.Result, error) {
	jobs := make([]Job, len(cfgs))
	for i, cfg := range cfgs {
		jobs[i] = Job{Config: cfg}
	}
	return r.RunAll(jobs)
}

// Run executes a single job (still counted, cached, and recovered).
func (r *Runner) Run(job Job) (core.Result, error) {
	return r.runOne(job)
}

// ForEach runs fn(i) for i in [0, n) on the worker pool with a bounded
// queue, for fan-out work that is not a core simulation (microarchitecture
// sweeps, branch-predictor traces). A panic in fn is re-raised in the
// caller once every worker has drained.
func (r *Runner) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := r.workers(n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		wg      sync.WaitGroup
		next    = make(chan int, workers)
		panicMu sync.Mutex
		panicV  any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				func() {
					defer func() {
						if p := recover(); p != nil {
							panicMu.Lock()
							if panicV == nil {
								panicV = p
							}
							panicMu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
}

// runOne resolves one job: cache lookup, then bounded simulation attempts.
func (r *Runner) runOne(job Job) (core.Result, error) {
	r.count(func(s *Stats) { s.Jobs++ }, "lab_jobs")

	cfg := job.Config
	if job.Prepare != nil {
		job.Prepare(&cfg)
	}
	if job.Fork != nil && r.Check {
		// The auditor must observe a from-scratch run, but a variant fork's
		// result legitimately differs from a from-scratch run of the variant
		// config (its knobs apply only from the fork point), so auditing
		// would flag correct results as corrupt.
		err := fmt.Errorf("lab: job %q: fork acceleration and Check auditing are mutually exclusive — an audit re-simulates from scratch, which a variant fork legitimately diverges from", cfg.App.Name)
		r.count(func(s *Stats) { s.Failures++ }, "lab_failures")
		r.logJob("job failed", cfg.App.Name, "err", err)
		return core.Result{}, err
	}
	// Fingerprinting costs a config marshal (two for fork jobs); skip it
	// when neither the cache nor a remote executor could use the result.
	probe := Job{Config: cfg, Salt: job.Salt, Fork: job.Fork}
	var fp string
	var printable bool
	if r.Cache != nil || r.Remote != nil {
		fp, printable = Fingerprint(probe)
	}
	cacheable := printable && r.Cache != nil
	if cacheable {
		if res, ok := r.Cache.Get(fp); ok {
			if r.Check {
				if aerr := r.auditCached(cfg, res); aerr != nil {
					r.count(func(s *Stats) { s.AuditFailures++ }, "lab_audit_failures")
					r.logJob("audit failure", cfg.App.Name, "err", aerr)
					return core.Result{}, aerr
				}
				r.count(func(s *Stats) { s.Audited++ }, "lab_audited")
				r.logJob("audited", cfg.App.Name, "source", "cache")
			}
			r.count(func(s *Stats) { s.Hits++ }, "lab_cache_hits")
			r.logJob("cache hit", cfg.App.Name, "fingerprint", fp)
			return res, nil
		}
		r.count(func(s *Stats) { s.Misses++ }, "lab_cache_misses")
		r.logJob("cache miss", cfg.App.Name, "fingerprint", fp)
	}

	// Remote execution: ship fingerprintable jobs to the fleet. The executor
	// declines jobs it cannot reconstruct remotely, and any remote failure
	// falls through to local simulation — the fleet is an accelerator, not a
	// dependency.
	if printable && r.Remote != nil {
		res, ok, rerr := r.Remote.Execute(probe)
		switch {
		case rerr != nil:
			r.count(func(s *Stats) { s.RemoteErrors++ }, "lab_remote_errors")
			r.logJob("remote error", cfg.App.Name, "err", rerr)
		case ok:
			if r.Check {
				// A remote result is audited exactly like a cache hit: re-simulate
				// locally with the auditor attached and require byte equality.
				if aerr := r.auditCached(cfg, res); aerr != nil {
					r.count(func(s *Stats) { s.AuditFailures++ }, "lab_audit_failures")
					r.logJob("audit failure", cfg.App.Name, "err", aerr)
					return core.Result{}, aerr
				}
				r.count(func(s *Stats) { s.Audited++ }, "lab_audited")
				r.logJob("audited", cfg.App.Name, "source", "remote")
			}
			r.count(func(s *Stats) { s.Remote++ }, "lab_remote")
			r.logJob("remote", cfg.App.Name, "fingerprint", fp)
			if cacheable {
				if perr := r.Cache.Put(fp, cfg.App.Name, job.Salt, res); perr == nil {
					r.count(func(s *Stats) { s.Stored++ }, "lab_stored")
					r.logJob("stored", cfg.App.Name, "fingerprint", fp)
				}
			}
			return res, nil
		}
	}

	// A fork-accelerated job simulates its continuation from the shared
	// prefix snapshot instead of from time zero. The prefix is acquired once
	// (singleflight across workers) before the attempt loop, so a retry
	// re-runs only the cheap continuation.
	run := runScratch
	if job.Fork != nil {
		st, ferr := r.prefixState(job.Fork)
		if ferr != nil {
			r.count(func(s *Stats) { s.Failures++ }, "lab_failures")
			r.logJob("job failed", cfg.App.Name, "err", ferr)
			return core.Result{}, ferr
		}
		run = forkRun(st)
	}

	var err error
	for attempt := 0; attempt <= r.retries(); attempt++ {
		if attempt > 0 {
			r.count(func(s *Stats) { s.Retries++ }, "lab_retries")
			r.logJob("retry", cfg.App.Name, "attempt", attempt, "err", err)
		}
		// A fresh auditor per attempt: one auditor instance observes one run.
		acfg := cfg
		var aud *check.Auditor
		if r.Check && acfg.Check == nil {
			aud = check.New()
			acfg.Check = aud
		}
		var res core.Result
		res, err = r.attempt(acfg, run)
		if err != nil {
			continue
		}
		if aud != nil {
			if aerr := aud.Err(); aerr != nil {
				// Violations are deterministic, so retrying cannot help.
				r.count(func(s *Stats) { s.AuditFailures++ }, "lab_audit_failures")
				r.logJob("audit failure", cfg.App.Name, "err", aerr)
				return core.Result{}, fmt.Errorf("lab: job %q failed audit: %w", cfg.App.Name, aerr)
			}
			r.count(func(s *Stats) { s.Audited++ }, "lab_audited")
			r.logJob("audited", cfg.App.Name, "source", "fresh")
		}
		if job.Fork != nil {
			r.count(func(s *Stats) { s.Forks++ }, "lab_forks")
			r.logJob("forked", cfg.App.Name, "at", job.Fork.At)
		}
		r.count(func(s *Stats) { s.Simulated++ }, "lab_simulations")
		r.logJob("simulated", cfg.App.Name, "attempt", attempt+1)
		if cacheable {
			if perr := r.Cache.Put(fp, cfg.App.Name, job.Salt, res); perr == nil {
				r.count(func(s *Stats) { s.Stored++ }, "lab_stored")
				r.logJob("stored", cfg.App.Name, "fingerprint", fp)
			}
		}
		return res, nil
	}
	r.count(func(s *Stats) { s.Failures++ }, "lab_failures")
	r.logJob("job failed", cfg.App.Name, "err", err)
	return core.Result{}, err
}

// auditCached re-simulates a cache hit with an auditor attached and requires
// the cached result to equal the fresh one byte for byte (Go float64 JSON
// round-trips exactly, so marshaling both is an exact comparison). This is
// the defense against a silently wrong number being memoized and re-served
// forever: any divergence between the cache blob and today's simulator —
// violation, drift, or corruption — surfaces as an error.
func (r *Runner) auditCached(cfg core.Config, cached core.Result) error {
	aud := check.New()
	cfg.Check = aud
	fresh, err := r.attempt(cfg, runScratch)
	if err != nil {
		return err
	}
	if aerr := aud.Err(); aerr != nil {
		return fmt.Errorf("lab: job %q failed audit: %w", cfg.App.Name, aerr)
	}
	a, aerr := json.Marshal(cached)
	b, berr := json.Marshal(fresh)
	if aerr != nil || berr != nil {
		return fmt.Errorf("lab: job %q: marshal for audit compare: %v / %v", cfg.App.Name, aerr, berr)
	}
	if !bytes.Equal(a, b) {
		// Name exactly what moved rather than reporting an opaque byte
		// mismatch: the structural diff walks both results field by field.
		ds := delta.Diff(cached, fresh, delta.Tolerance{})
		return fmt.Errorf("lab: job %q cached result disagrees with fresh audited simulation; %d field(s) differ (cached -> fresh):\n%s",
			cfg.App.Name, len(ds), delta.Summarize(ds, 8))
	}
	return nil
}

type outcome struct {
	res core.Result
	err error
}

// runScratch is the default attempt body: a full from-scratch simulation.
func runScratch(cfg core.Config) (core.Result, error) { return core.Run(cfg), nil }

// attempt runs one simulation — run(cfg) — with panic recovery and the
// optional wall-clock timeout.
func (r *Runner) attempt(cfg core.Config, run func(core.Config) (core.Result, error)) (core.Result, error) {
	ch := make(chan outcome, 1) // buffered: an abandoned attempt must not leak
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- outcome{err: fmt.Errorf("lab: job %q panicked: %v", cfg.App.Name, p)}
			}
		}()
		res, err := run(cfg)
		ch <- outcome{res: res, err: err}
	}()
	if r.Timeout <= 0 {
		o := <-ch
		return o.res, o.err
	}
	t := time.NewTimer(r.Timeout)
	defer t.Stop()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-t.C:
		return core.Result{}, fmt.Errorf("lab: job %q exceeded timeout %v", cfg.App.Name, r.Timeout)
	}
}
