package lab

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"biglittle/internal/apps"
	"biglittle/internal/check"
	"biglittle/internal/core"
	"biglittle/internal/delta"
	"biglittle/internal/event"
	"biglittle/internal/platform"
	"biglittle/internal/sched"
	"biglittle/internal/telemetry"
	"biglittle/internal/trace"
	"biglittle/internal/workload"
)

func testApp(t *testing.T) apps.App {
	t.Helper()
	app, err := apps.ByName("bbench")
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func testConfig(t *testing.T) core.Config {
	cfg := core.DefaultConfig(testApp(t))
	cfg.Duration = 500 * event.Millisecond
	return cfg
}

func TestFingerprintStable(t *testing.T) {
	cfg := testConfig(t)
	fp1, ok1 := Fingerprint(Job{Config: cfg})
	fp2, ok2 := Fingerprint(Job{Config: cfg})
	if !ok1 || !ok2 {
		t.Fatal("baseline config should be cacheable")
	}
	if fp1 != fp2 {
		t.Fatalf("same config hashed differently: %s vs %s", fp1, fp2)
	}

	// Zero-value fields resolve to the same defaults Run applies, so a
	// sparse config and its fully-resolved twin must share a fingerprint.
	sparse := core.Config{App: cfg.App, Seed: cfg.Seed, Duration: cfg.Duration}
	sparse.Gov = cfg.Gov // Gov default depends on Governor, deliberately not normalized
	fpSparse, ok := Fingerprint(Job{Config: sparse})
	if !ok || fpSparse != fp1 {
		t.Fatalf("normalized sparse config fingerprint = %s, want %s", fpSparse, fp1)
	}

	seeded := cfg
	seeded.Seed = 99
	if fp, _ := Fingerprint(Job{Config: seeded}); fp == fp1 {
		t.Fatal("different seed must change the fingerprint")
	}
	if fp, _ := Fingerprint(Job{Config: cfg, Salt: "variant"}); fp == fp1 {
		t.Fatal("salt must change the fingerprint")
	}
}

func TestFingerprintUncacheable(t *testing.T) {
	base := testConfig(t)

	withTel := base
	withTel.Telemetry = telemetry.NewCollector()
	if _, ok := Fingerprint(Job{Config: withTel}); ok {
		t.Fatal("config with a telemetry collector must not be cacheable")
	}

	withHook := base
	withHook.OnSystem = func(*sched.System) {}
	if _, ok := Fingerprint(Job{Config: withHook}); ok {
		t.Fatal("config with an OnSystem hook must not be cacheable")
	}

	withDigest := base
	withDigest.Digest = &delta.Recorder{}
	if _, ok := Fingerprint(Job{Config: withDigest}); ok {
		t.Fatal("config with a digest recorder must not be cacheable")
	}

	unnamed := base
	unnamed.Platform = func() *platform.SoC {
		soc := platform.Exynos5422()
		soc.Name = ""
		return soc
	}
	if _, ok := Fingerprint(Job{Config: unnamed}); ok {
		t.Fatal("unnamed custom platform must not be cacheable")
	}

	named := base
	named.Platform = platform.Snapdragon810
	if _, ok := Fingerprint(Job{Config: named}); !ok {
		t.Fatal("named platform preset should be cacheable")
	}
}

func TestCacheRoundTrip(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t)
	fp, ok := Fingerprint(Job{Config: cfg})
	if !ok {
		t.Fatal("expected cacheable config")
	}
	if _, ok := cache.Get(fp); ok {
		t.Fatal("empty cache should miss")
	}
	want := core.Run(cfg)
	if err := cache.Put(fp, cfg.App.Name, "", want); err != nil {
		t.Fatal(err)
	}
	got, ok := cache.Get(fp)
	if !ok {
		t.Fatal("expected a hit after Put")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("cached result does not round-trip")
	}

	entries, err := cache.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].App != cfg.App.Name || entries[0].Fingerprint != fp {
		t.Fatalf("List = %+v, want one %s entry", entries, cfg.App.Name)
	}

	if n, err := cache.Invalidate(cfg.App.Name); err != nil || n != 1 {
		t.Fatalf("Invalidate = %d, %v; want 1, nil", n, err)
	}
	if _, ok := cache.Get(fp); ok {
		t.Fatal("invalidated entry should miss")
	}
}

func TestPruneStale(t *testing.T) {
	dir := t.TempDir()
	cache, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Fake an older code version's entry.
	stale := filepath.Join(dir, "v1-oldrev", "ab")
	if err := os.MkdirAll(stale, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stale, "abcd.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := cache.PruneStale()
	if err != nil || n != 1 {
		t.Fatalf("PruneStale = %d, %v; want 1, nil", n, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "v1-oldrev")); !os.IsNotExist(err) {
		t.Fatal("stale version dir should be removed")
	}
	if _, err := os.Stat(filepath.Join(dir, cache.Version())); err != nil {
		t.Fatal("current version dir must survive pruning")
	}
}

func TestWarmRunSkipsSimulation(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []core.Config{testConfig(t)}
	seeded := testConfig(t)
	seeded.Seed = 7
	cfgs = append(cfgs, seeded)

	cold := New(2, cache)
	coldRes, err := cold.RunConfigs(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if s := cold.Stats(); s.Simulated != 2 || s.Hits != 0 || s.Stored != 2 {
		t.Fatalf("cold stats = %+v, want 2 simulated, 0 hits, 2 stored", s)
	}

	warm := New(2, cache)
	warmRes, err := warm.RunConfigs(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if s := warm.Stats(); s.Simulated != 0 || s.Hits != 2 {
		t.Fatalf("warm stats = %+v, want 0 simulated, 2 hits", s)
	}
	if !reflect.DeepEqual(coldRes, warmRes) {
		t.Fatal("warm results differ from cold results")
	}
}

func TestCorruptBlobFallsBackToSimulation(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t)
	fp, _ := Fingerprint(Job{Config: cfg})

	cold := New(1, cache)
	want, err := cold.Run(Job{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}

	// Truncate the blob on disk to garbage.
	p := filepath.Join(cache.Dir(), cache.Version(), fp[:2], fp+".json")
	if err := os.WriteFile(p, []byte(`{"fingerprint":"wrong`), 0o644); err != nil {
		t.Fatal(err)
	}

	warm := New(1, cache)
	got, err := warm.Run(Job{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	s := warm.Stats()
	if s.Hits != 0 || s.Misses != 1 || s.Simulated != 1 {
		t.Fatalf("corrupt-blob stats = %+v, want miss + re-simulation", s)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("re-simulated result differs from original")
	}
	// The repaired entry must serve the next run.
	again := New(1, cache)
	if _, err := again.Run(Job{Config: cfg}); err != nil {
		t.Fatal(err)
	}
	if s := again.Stats(); s.Hits != 1 {
		t.Fatalf("post-repair stats = %+v, want a hit", s)
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	var jobs []Job
	for seed := int64(1); seed <= 6; seed++ {
		cfg := testConfig(t)
		cfg.Seed = seed
		jobs = append(jobs, Job{Config: cfg})
	}
	serial := New(1, nil)
	wide := New(8, nil)
	r1, err1 := serial.RunAll(jobs)
	rN, errN := wide.RunAll(jobs)
	if err1 != nil || errN != nil {
		t.Fatal(err1, errN)
	}
	if !reflect.DeepEqual(r1, rN) {
		t.Fatal("results differ between 1 and 8 workers")
	}
}

func TestPanicRecoveryAndRetry(t *testing.T) {
	app := apps.App{Name: "panicky", Desc: "always panics", Build: func(*workload.Ctx) {
		panic("boom")
	}}
	cfg := core.DefaultConfig(app)
	cfg.Duration = 100 * event.Millisecond

	r := New(1, nil)
	_, err := r.Run(Job{Config: cfg})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want panic error", err)
	}
	s := r.Stats()
	if s.Retries != 1 || s.Failures != 1 {
		t.Fatalf("stats = %+v, want 1 retry and 1 failure", s)
	}
}

func TestTimeout(t *testing.T) {
	app := apps.App{Name: "hung", Desc: "sleeps on the wall clock", Build: func(*workload.Ctx) {
		time.Sleep(30 * time.Second)
	}}
	cfg := core.DefaultConfig(app)
	cfg.Duration = 100 * event.Millisecond

	r := &Runner{Workers: 1, Timeout: 20 * time.Millisecond, Retries: -1}
	start := time.Now()
	_, err := r.Run(Job{Config: cfg})
	if err == nil || !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("err = %v, want timeout error", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, should abandon promptly", elapsed)
	}
	if s := r.Stats(); s.Failures != 1 {
		t.Fatalf("stats = %+v, want 1 failure", s)
	}
}

// TestRaceJobOwnedObservers is the goroutine-safety regression test: under
// -race, many concurrent jobs each attach their own telemetry collector and
// trace recorder via Prepare, which must not race because no observer is
// shared across workers.
func TestRaceJobOwnedObservers(t *testing.T) {
	type observed struct {
		tel *telemetry.Collector
		rec *trace.Recorder
	}
	const n = 8
	obs := make([]observed, n)
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		cfg := testConfig(t)
		cfg.Seed = int64(i + 1)
		jobs[i] = Job{Config: cfg, Prepare: func(c *core.Config) {
			tel := telemetry.NewCollector()
			c.Telemetry = tel
			c.OnSystem = func(sys *sched.System) {
				obs[i].rec = trace.Attach(sys, 0, c.Duration)
			}
			obs[i].tel = tel
		}}
	}
	r := New(4, nil)
	r.Tel = telemetry.NewCollector() // the runner's own counters, serialized internally
	if _, err := r.RunAll(jobs); err != nil {
		t.Fatal(err)
	}
	for i, o := range obs {
		if o.tel == nil || o.tel.TotalEvents() == 0 {
			t.Fatalf("job %d: expected a populated per-job collector", i)
		}
		if o.rec == nil {
			t.Fatalf("job %d: expected an attached trace recorder", i)
		}
	}
	s := r.Stats()
	if s.Jobs != n || s.Simulated != n {
		t.Fatalf("stats = %+v, want %d jobs all simulated", s, n)
	}
	if got := r.Tel.Counter("lab_simulations").Value(); got != n {
		t.Fatalf("lab_simulations counter = %d, want %d", got, n)
	}
}

func TestAuditMode(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t)

	cold := New(1, cache)
	cold.Check = true
	coldRes, err := cold.RunConfigs([]core.Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	if s := cold.Stats(); s.Simulated != 1 || s.Audited != 1 || s.AuditFailures != 0 || s.Stored != 1 {
		t.Fatalf("cold audit stats = %+v, want 1 simulated, 1 audited, 0 failures, 1 stored", s)
	}

	// A warm audited run re-simulates the hit, verifies it byte for byte
	// against the cache blob, and still serves the cached result.
	warm := New(1, cache)
	warm.Check = true
	warmRes, err := warm.RunConfigs([]core.Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	if s := warm.Stats(); s.Hits != 1 || s.Audited != 1 || s.AuditFailures != 0 {
		t.Fatalf("warm audit stats = %+v, want 1 hit, 1 audited, 0 failures", s)
	}
	if !reflect.DeepEqual(coldRes, warmRes) {
		t.Fatal("audited warm results differ from cold results")
	}

	// Audited results are identical to unaudited ones (the auditor is a
	// pure observer), so the cache blob is shared with non-Check runners.
	plain := New(1, cache)
	plainRes, err := plain.RunConfigs([]core.Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	if s := plain.Stats(); s.Hits != 1 {
		t.Fatalf("plain stats = %+v, want 1 hit on the audited blob", s)
	}
	if !reflect.DeepEqual(coldRes, plainRes) {
		t.Fatal("unaudited results differ from audited results")
	}
}

func TestAuditCatchesTamperedCache(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t)
	fp, ok := Fingerprint(Job{Config: cfg})
	if !ok {
		t.Fatal("test config should be cacheable")
	}

	// Memoize a silently wrong result under the correct fingerprint — the
	// failure mode the audit exists for.
	bad := core.Run(cfg)
	bad.EnergyMJ *= 2
	if err := cache.Put(fp, cfg.App.Name, "", bad); err != nil {
		t.Fatal(err)
	}

	r := New(1, cache)
	r.Check = true
	if _, err := r.Run(Job{Config: cfg}); err == nil {
		t.Fatal("audit accepted a tampered cache blob")
	} else if !strings.Contains(err.Error(), "disagrees") {
		t.Fatalf("unexpected audit error: %v", err)
	} else if !strings.Contains(err.Error(), "EnergyMJ") {
		// The structured delta summary must name exactly what moved, not
		// just report an opaque byte mismatch.
		t.Fatalf("audit error does not name the divergent field: %v", err)
	}
	if s := r.Stats(); s.AuditFailures != 1 {
		t.Fatalf("stats = %+v, want 1 audit failure", s)
	}

	// Without auditing the tampered blob is served verbatim — demonstrating
	// the hole the -check flag closes.
	plain := New(1, cache)
	res, err := plain.Run(Job{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyMJ != bad.EnergyMJ {
		t.Fatal("expected the unaudited runner to serve the tampered blob")
	}
}

func TestFingerprintUncacheableWithCheck(t *testing.T) {
	cfg := testConfig(t)
	cfg.Check = check.New()
	if _, ok := Fingerprint(Job{Config: cfg}); ok {
		t.Fatal("config with a caller-supplied auditor must not be cacheable")
	}
}
