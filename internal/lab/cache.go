package lab

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"time"

	"biglittle/internal/core"
	"biglittle/internal/snapshot"
)

// schemaVersion invalidates every cached result when the blob layout or the
// fingerprint definition changes. Bump it alongside such changes.
const schemaVersion = "1"

// CodeVersion identifies the simulator build whose results populate the
// cache: the VCS revision stamped into the binary (suffixed "+dirty" for
// modified working trees), or "dev" when no stamp is available (e.g. test
// binaries). Results from different code versions live in different cache
// subdirectories, so a code change invalidates warm results without ever
// serving stale ones.
func CodeVersion() string {
	rev, dirty := "", false
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
	}
	if rev == "" {
		return "dev"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}

// DefaultCacheDir is where results land when no -cache-dir is given:
// $XDG_CACHE_HOME/biglittle (or the OS equivalent of ~/.cache/biglittle).
func DefaultCacheDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("lab: no user cache dir: %w", err)
	}
	return filepath.Join(base, "biglittle"), nil
}

// Cache is a content-addressed store of simulation results: one JSON blob
// per (fingerprint, code version), laid out as
//
//	<dir>/v<schema>-<code version>/<fp[:2]>/<fp>.json
//
// Reads verify the stored fingerprint and silently treat any corrupt,
// truncated, or mismatched blob as a miss (deleting it), so a damaged cache
// degrades to re-simulation, never to a wrong result. Writes go through a
// temp file plus atomic rename, so concurrent writers of the same
// fingerprint are safe (they produce identical content).
type Cache struct {
	dir     string // root directory
	version string // v<schema>-<code version>
}

// Open returns a cache rooted at dir (""= DefaultCacheDir), creating the
// current version directory.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		d, err := DefaultCacheDir()
		if err != nil {
			return nil, err
		}
		dir = d
	}
	c := &Cache{dir: dir, version: "v" + schemaVersion + "-" + CodeVersion()}
	if err := os.MkdirAll(filepath.Join(dir, c.version), 0o755); err != nil {
		return nil, fmt.Errorf("lab: create cache dir: %w", err)
	}
	return c, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// Version returns the current version-directory name.
func (c *Cache) Version() string { return c.version }

// blob is the on-disk envelope around one cached result.
type blob struct {
	Fingerprint string      `json:"fingerprint"`
	App         string      `json:"app"`
	Salt        string      `json:"salt,omitempty"`
	SavedAt     time.Time   `json:"saved_at"`
	Result      core.Result `json:"result"`
}

func (c *Cache) path(fp string) string {
	return filepath.Join(c.dir, c.version, fp[:2], fp+".json")
}

// Get loads the result stored for fp, reporting whether a valid entry was
// found. Invalid entries are removed so the follow-up Put replaces them.
func (c *Cache) Get(fp string) (core.Result, bool) {
	if c == nil {
		return core.Result{}, false
	}
	p := c.path(fp)
	data, err := os.ReadFile(p)
	if err != nil {
		return core.Result{}, false
	}
	var b blob
	if err := json.Unmarshal(data, &b); err != nil || b.Fingerprint != fp {
		os.Remove(p)
		return core.Result{}, false
	}
	return b.Result, true
}

// Put stores res under fp. A result that cannot be marshaled (NaN metrics,
// say) is not an error worth failing the experiment over; the caller treats
// a Put failure as "this run stays uncached".
func (c *Cache) Put(fp, app, salt string, res core.Result) error {
	if c == nil {
		return nil
	}
	data, err := json.Marshal(blob{
		Fingerprint: fp,
		App:         app,
		Salt:        salt,
		SavedAt:     time.Now().UTC(),
		Result:      res,
	})
	if err != nil {
		return fmt.Errorf("lab: marshal result: %w", err)
	}
	p := c.path(fp)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), p)
}

// prefixPath is the prefix-tier layout: encoded snapshot blobs under
// <dir>/<version>/prefix/<key[:2]>/<key>.blsnap. The tier shares the
// version directory with results — a schema or code change invalidates
// warmed prefixes exactly like memoized results — but uses its own
// extension so List and countEntries see only results.
func (c *Cache) prefixPath(key string) string {
	return filepath.Join(c.dir, c.version, "prefix", key[:2], key+".blsnap")
}

// GetPrefix loads the encoded prefix snapshot stored under key, reporting
// whether a valid blob was found. The blob is validated by a full decode —
// the codec checksums and version-checks it — and corrupt or stale entries
// are removed so the follow-up PutPrefix replaces them.
func (c *Cache) GetPrefix(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	p := c.prefixPath(key)
	data, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	if _, err := snapshot.Decode(data); err != nil {
		os.Remove(p)
		return nil, false
	}
	return data, true
}

// PutPrefix stores an encoded prefix snapshot under key, with the same
// temp-file-plus-rename discipline as Put.
func (c *Cache) PutPrefix(key string, blob []byte) error {
	if c == nil {
		return nil
	}
	p := c.prefixPath(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), p)
}

// PrefixStats reports the disk prefix tier's footprint under the current
// version directory — how many warmed prefix snapshots are persisted and
// their total bytes (what `bllab stat` prints). Results and prefixes share
// the version directory, so PruneStale drops stale prefixes along with
// stale results.
func (c *Cache) PrefixStats() (entries int, bytes int64, err error) {
	root := filepath.Join(c.dir, c.version, "prefix")
	werr := filepath.Walk(root, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if !info.IsDir() && filepath.Ext(p) == ".blsnap" {
			entries++
			bytes += info.Size()
		}
		return nil
	})
	return entries, bytes, werr
}

// Entry describes one cached result for inspection (bllab ls).
type Entry struct {
	Version     string
	Fingerprint string
	App         string
	Salt        string
	SizeB       int64
	SavedAt     time.Time
}

// List returns every entry across all version directories, current or
// stale, sorted by version then app then fingerprint.
func (c *Cache) List() ([]Entry, error) {
	versions, err := c.versionDirs()
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, ver := range versions {
		root := filepath.Join(c.dir, ver)
		err := filepath.Walk(root, func(p string, info os.FileInfo, err error) error {
			if err != nil || info.IsDir() || filepath.Ext(p) != ".json" {
				return err
			}
			e := Entry{Version: ver, SizeB: info.Size(), SavedAt: info.ModTime()}
			if data, rerr := os.ReadFile(p); rerr == nil {
				var b blob
				if json.Unmarshal(data, &b) == nil {
					e.Fingerprint, e.App, e.Salt = b.Fingerprint, b.App, b.Salt
					if !b.SavedAt.IsZero() {
						e.SavedAt = b.SavedAt
					}
				}
			}
			if e.Fingerprint == "" {
				e.Fingerprint = filepath.Base(p[:len(p)-len(".json")])
			}
			out = append(out, e)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Version != out[j].Version {
			return out[i].Version < out[j].Version
		}
		if out[i].App != out[j].App {
			return out[i].App < out[j].App
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out, nil
}

// PruneStale removes every version directory except the current one and
// returns how many entries were deleted — the cleanup after a code change.
func (c *Cache) PruneStale() (int, error) {
	versions, err := c.versionDirs()
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, ver := range versions {
		if ver == c.version {
			continue
		}
		n, err := countEntries(filepath.Join(c.dir, ver))
		if err != nil {
			return removed, err
		}
		if err := os.RemoveAll(filepath.Join(c.dir, ver)); err != nil {
			return removed, err
		}
		removed += n
	}
	return removed, nil
}

// Invalidate removes current-version entries — all of them, or only those
// belonging to the named app — and returns how many were deleted.
func (c *Cache) Invalidate(app string) (int, error) {
	if app == "" {
		root := filepath.Join(c.dir, c.version)
		n, err := countEntries(root)
		if err != nil {
			return 0, err
		}
		if err := os.RemoveAll(root); err != nil {
			return 0, err
		}
		return n, os.MkdirAll(root, 0o755)
	}
	entries, err := c.List()
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, e := range entries {
		if e.Version != c.version || e.App != app {
			continue
		}
		if err := os.Remove(c.path(e.Fingerprint)); err == nil {
			removed++
		}
	}
	return removed, nil
}

func (c *Cache) versionDirs() ([]string, error) {
	des, err := os.ReadDir(c.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []string
	for _, de := range des {
		if de.IsDir() && len(de.Name()) > 1 && de.Name()[0] == 'v' {
			out = append(out, de.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

func countEntries(root string) (int, error) {
	n := 0
	err := filepath.Walk(root, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if !info.IsDir() && filepath.Ext(p) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}
