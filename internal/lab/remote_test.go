package lab

import (
	"encoding/json"
	"errors"
	"testing"

	"biglittle/internal/core"
	"biglittle/internal/telemetry"
)

// stubExecutor is a scriptable lab.Executor: it records every job it was
// offered and answers from its fields.
type stubExecutor struct {
	calls   int
	decline bool  // Execute returns ok=false
	err     error // Execute returns this error
	run     bool  // compute the real result (simulating "the fleet ran it")
}

func (s *stubExecutor) Execute(job Job) (core.Result, bool, error) {
	s.calls++
	if s.err != nil {
		return core.Result{}, true, s.err
	}
	if s.decline {
		return core.Result{}, false, nil
	}
	if s.run {
		return core.Run(job.Config), true, nil
	}
	return core.Result{}, true, nil
}

// TestRemoteExecution pins the remote fast path: a fingerprintable job goes
// to the executor, is not simulated locally, is counted as Remote, and is
// stored into the local cache so the next run is a plain cache hit that
// never touches the fleet again.
func TestRemoteExecution(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ex := &stubExecutor{run: true}
	tel := telemetry.NewCollector()
	r := &Runner{Workers: 1, Cache: cache, Remote: ex, Tel: tel}

	cfg := testConfig(t)
	res, err := r.Run(Job{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if ex.calls != 1 {
		t.Fatalf("executor calls = %d, want 1", ex.calls)
	}
	s := r.Stats()
	if s.Remote != 1 || s.Simulated != 0 || s.Stored != 1 {
		t.Fatalf("stats = %+v, want 1 remote, 0 simulated, 1 stored", s)
	}
	if got := tel.Counter("lab_remote").Value(); got != 1 {
		t.Fatalf("lab_remote counter = %d, want 1", got)
	}

	// The remote result must be the result: byte-compare against a local run.
	want := core.Run(cfg)
	a, _ := json.Marshal(res)
	b, _ := json.Marshal(want)
	if string(a) != string(b) {
		t.Fatalf("remote result differs from local:\nremote %s\nlocal  %s", a, b)
	}

	// Warm re-run: cache hit, no second remote call.
	if _, err := r.Run(Job{Config: cfg}); err != nil {
		t.Fatal(err)
	}
	if ex.calls != 1 {
		t.Fatalf("warm run still called the executor (%d calls)", ex.calls)
	}
	if s := r.Stats(); s.Hits != 1 {
		t.Fatalf("stats after warm run = %+v, want 1 hit", s)
	}
}

// TestRemoteErrorFallsBackLocal: a failing fleet degrades to in-process
// simulation with the error counted, never to a lost job.
func TestRemoteErrorFallsBackLocal(t *testing.T) {
	ex := &stubExecutor{err: errors.New("coordinator unreachable")}
	r := &Runner{Workers: 1, Remote: ex}
	cfg := testConfig(t)
	res, err := r.Run(Job{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if ex.calls != 1 || s.RemoteErrors != 1 || s.Simulated != 1 || s.Remote != 0 {
		t.Fatalf("stats = %+v (calls %d), want 1 remote error + 1 local simulation", s, ex.calls)
	}
	want := core.Run(cfg)
	a, _ := json.Marshal(res)
	b, _ := json.Marshal(want)
	if string(a) != string(b) {
		t.Fatal("fallback result differs from a plain local run")
	}
}

// TestRemoteDeclinedRunsLocal: an executor that cannot ship the job
// (ok=false) leaves no trace beyond the attempt — the job simulates locally
// and is not a remote error.
func TestRemoteDeclinedRunsLocal(t *testing.T) {
	ex := &stubExecutor{decline: true}
	r := &Runner{Workers: 1, Remote: ex}
	if _, err := r.Run(Job{Config: testConfig(t)}); err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if ex.calls != 1 || s.Simulated != 1 || s.Remote != 0 || s.RemoteErrors != 0 {
		t.Fatalf("stats = %+v (calls %d), want declined remote + local simulation", s, ex.calls)
	}
}

// TestRemoteSkipsUnfingerprintableJobs: jobs carrying live observers never
// reach the executor at all — they cannot be identified, let alone shipped.
func TestRemoteSkipsUnfingerprintableJobs(t *testing.T) {
	ex := &stubExecutor{run: true}
	r := &Runner{Workers: 1, Remote: ex}
	cfg := testConfig(t)
	cfg.Telemetry = telemetry.NewCollector()
	if _, err := r.Run(Job{Config: cfg}); err != nil {
		t.Fatal(err)
	}
	if ex.calls != 0 {
		t.Fatalf("executor was offered an unfingerprintable job (%d calls)", ex.calls)
	}
	if s := r.Stats(); s.Simulated != 1 {
		t.Fatalf("stats = %+v, want 1 local simulation", s)
	}
}

// TestRemoteResultAudited: with Check set, a remote result is re-simulated
// locally and compared byte for byte, exactly like a cache hit.
func TestRemoteResultAudited(t *testing.T) {
	ex := &stubExecutor{run: true}
	r := &Runner{Workers: 1, Remote: ex, Check: true}
	if _, err := r.Run(Job{Config: testConfig(t)}); err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if s.Remote != 1 || s.Audited != 1 || s.AuditFailures != 0 {
		t.Fatalf("stats = %+v, want 1 remote audited", s)
	}

	// A lying fleet is caught: corrupt the result the executor returns.
	lying := executorFunc(func(job Job) (core.Result, bool, error) {
		res := core.Run(job.Config)
		res.EnergyMJ += 1
		return res, true, nil
	})
	r2 := &Runner{Workers: 1, Remote: lying, Check: true}
	if _, err := r2.Run(Job{Config: testConfig(t)}); err == nil {
		t.Fatal("corrupted remote result passed the audit")
	} else if s := r2.Stats(); s.AuditFailures != 1 {
		t.Fatalf("stats = %+v, want 1 audit failure (err %v)", s, err)
	}
}

type executorFunc func(Job) (core.Result, bool, error)

func (f executorFunc) Execute(job Job) (core.Result, bool, error) { return f(job) }
