package lab

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"biglittle/internal/core"
	"biglittle/internal/delta"
	"biglittle/internal/event"
	"biglittle/internal/snapshot"
)

const forkAt = 250 * event.Millisecond

// forkSweepJobs is a governor-tunable sweep sharing one prefix: job 0 is the
// base config itself, the rest vary a post-fork knob.
func forkSweepJobs(t *testing.T, n int) (core.Config, []Job) {
	t.Helper()
	base := testConfig(t)
	jobs := make([]Job, n)
	for i := range jobs {
		cfg := base
		if i > 0 {
			cfg.Gov.SampleMs = 20 + 10*i
		}
		jobs[i] = Job{Config: cfg, Fork: &ForkSpec{Base: base, At: forkAt}}
	}
	return base, jobs
}

// directFork is the reference continuation: the core fork path with no lab
// machinery, against which the runner's results must be byte-identical.
func directFork(t *testing.T, base, variant core.Config) core.Result {
	t.Helper()
	sim, err := core.NewSim(base)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunTo(forkAt)
	st, err := sim.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	forked, err := core.Resume(variant, st)
	if err != nil {
		t.Fatal(err)
	}
	forked.RunTo(variant.Duration)
	return forked.Finish()
}

func TestForkSweepSharesOnePrefix(t *testing.T) {
	base, jobs := forkSweepJobs(t, 4)
	r := New(2, nil)
	results, err := r.RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}

	// Job 0 forks the base config itself, so byte-identity with a plain
	// from-scratch run is the contract, not an approximation.
	if want := core.Run(base); !reflect.DeepEqual(results[0], want) {
		t.Fatal("fork of the unchanged base config differs from the from-scratch run")
	}
	// Variant jobs must match the direct core fork path exactly.
	for i := 1; i < len(jobs); i++ {
		if want := directFork(t, base, jobs[i].Config); !reflect.DeepEqual(results[i], want) {
			t.Fatalf("variant %d: lab fork result differs from direct core fork", i)
		}
	}

	s := r.Stats()
	if s.Forks != 4 || s.Simulated != 4 {
		t.Fatalf("Forks=%d Simulated=%d, want 4 and 4", s.Forks, s.Simulated)
	}
	if s.PrefixMisses != 1 || s.PrefixHits != 3 {
		t.Fatalf("PrefixMisses=%d PrefixHits=%d, want one shared prefix simulation and 3 reuses", s.PrefixMisses, s.PrefixHits)
	}
}

func TestForkPrefixDiskTier(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base, jobs := forkSweepJobs(t, 2)

	warm := New(1, cache)
	warmRes, err := warm.RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if s := warm.Stats(); s.PrefixMisses != 1 {
		t.Fatalf("cold runner PrefixMisses=%d, want 1", s.PrefixMisses)
	}

	// A fresh runner on the same cache must find the persisted prefix —
	// and, because fork jobs are fingerprintable, the memoized results too.
	reuse := New(1, cache)
	reuseRes, err := reuse.RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warmRes, reuseRes) {
		t.Fatal("warm rerun results differ from the cold run")
	}
	if s := reuse.Stats(); s.Hits != 2 || s.PrefixMisses != 0 || s.Simulated != 0 {
		t.Fatalf("warm runner Hits=%d PrefixMisses=%d Simulated=%d, want 2, 0, 0", s.Hits, s.PrefixMisses, s.Simulated)
	}

	// Invalidate the memoized results but keep the prefix blob: the rerun
	// must fork again, served entirely by the disk prefix tier.
	if _, err := cache.Invalidate(base.App.Name); err != nil {
		t.Fatal(err)
	}
	again := New(1, cache)
	againRes, err := again.RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warmRes, againRes) {
		t.Fatal("disk-prefix rerun results differ from the cold run")
	}
	if s := again.Stats(); s.PrefixMisses != 0 || s.PrefixHits != 2 || s.Forks != 2 {
		t.Fatalf("disk-tier runner PrefixMisses=%d PrefixHits=%d Forks=%d, want 0, 2, 2", s.PrefixMisses, s.PrefixHits, s.Forks)
	}
}

func TestForkPrefixCorruptBlobRebuilds(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := testConfig(t)
	baseFp, ok := Fingerprint(Job{Config: base})
	if !ok {
		t.Fatal("base config must be fingerprintable")
	}
	key := prefixKey(baseFp, forkAt)
	if err := cache.PutPrefix(key, []byte("not a snapshot")); err != nil {
		t.Fatal(err)
	}

	r := New(1, cache)
	res, err := r.Run(Job{Config: base, Fork: &ForkSpec{Base: base, At: forkAt}})
	if err != nil {
		t.Fatal(err)
	}
	if want := core.Run(base); !reflect.DeepEqual(res, want) {
		t.Fatal("fork after corrupt prefix blob differs from the from-scratch run")
	}
	if s := r.Stats(); s.PrefixMisses != 1 {
		t.Fatalf("PrefixMisses=%d, want 1 (corrupt blob must force a rebuild)", s.PrefixMisses)
	}
	// The corrupt blob was removed and replaced by a valid one.
	blob, ok := cache.GetPrefix(key)
	if !ok {
		t.Fatal("rebuilt prefix blob missing from the cache")
	}
	if _, err := snapshot.Decode(blob); err != nil {
		t.Fatalf("rebuilt prefix blob does not decode: %v", err)
	}
	p := cache.prefixPath(key)
	if !strings.Contains(p, filepath.Join("prefix", key[:2])) {
		t.Fatalf("prefix path %q not under the prefix/ area", p)
	}
	if _, err := os.Stat(p); err != nil {
		t.Fatal(err)
	}
}

// TestForkPrefixBudgetEviction pins the in-process tier's byte budget: with
// a budget too small for two decoded prefixes, the older one is evicted when
// the newer is handed out, a revisit rebuilds it (another PrefixMiss), and
// results are unaffected — eviction only trades memory for rebuild time.
func TestForkPrefixBudgetEviction(t *testing.T) {
	base := testConfig(t)
	jobA := Job{Config: base, Fork: &ForkSpec{Base: base, At: forkAt}}
	jobB := Job{Config: base, Fork: &ForkSpec{Base: base, At: 2 * forkAt}}
	want := core.Run(base)

	r := &Runner{Workers: 1, PrefixBudget: 1} // at most one resident prefix
	for i, job := range []Job{jobA, jobB, jobA} {
		res, err := r.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		// Every job forks the unchanged base, so each result must equal the
		// from-scratch run regardless of which prefixes were evicted.
		if !reflect.DeepEqual(res, want) {
			t.Fatalf("job %d: result differs from the from-scratch run after eviction", i)
		}
	}
	s := r.Stats()
	if s.PrefixMisses != 3 || s.PrefixHits != 0 {
		t.Fatalf("PrefixMisses=%d PrefixHits=%d, want 3 rebuilds and no reuse under a one-byte budget", s.PrefixMisses, s.PrefixHits)
	}
	if s.PrefixEvictions != 2 {
		t.Fatalf("PrefixEvictions=%d, want 2 (A evicted by B, then B by A)", s.PrefixEvictions)
	}

	// Unlimited budget: the same sequence keeps both prefixes resident.
	un := &Runner{Workers: 1, PrefixBudget: -1}
	for _, job := range []Job{jobA, jobB, jobA} {
		if _, err := un.Run(job); err != nil {
			t.Fatal(err)
		}
	}
	if s := un.Stats(); s.PrefixMisses != 2 || s.PrefixHits != 1 || s.PrefixEvictions != 0 {
		t.Fatalf("unlimited budget: PrefixMisses=%d PrefixHits=%d PrefixEvictions=%d, want 2, 1, 0", s.PrefixMisses, s.PrefixHits, s.PrefixEvictions)
	}
}

func TestForkRejections(t *testing.T) {
	base := testConfig(t)

	audited := &Runner{Check: true}
	if _, err := audited.Run(Job{Config: base, Fork: &ForkSpec{Base: base, At: forkAt}}); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("Check + Fork must fail loudly, got %v", err)
	}

	dirty := base
	dirty.Digest = &delta.Recorder{}
	plain := &Runner{}
	if _, err := plain.Run(Job{Config: base, Fork: &ForkSpec{Base: dirty, At: forkAt}}); err == nil || !strings.Contains(err.Error(), "not fingerprintable") {
		t.Fatalf("unfingerprintable fork base must fail loudly, got %v", err)
	}
	if _, err := plain.Run(Job{Config: base, Fork: &ForkSpec{Base: base, At: 0}}); err == nil || !strings.Contains(err.Error(), "positive") {
		t.Fatalf("zero fork time must fail loudly, got %v", err)
	}
	if s := plain.Stats(); s.Failures != 2 {
		t.Fatalf("Failures=%d, want 2", s.Failures)
	}
}

func TestForkFingerprintIdentity(t *testing.T) {
	base := testConfig(t)
	plainFp, ok := Fingerprint(Job{Config: base})
	if !ok {
		t.Fatal("base config must be fingerprintable")
	}
	forkFp, ok := Fingerprint(Job{Config: base, Fork: &ForkSpec{Base: base, At: forkAt}})
	if !ok {
		t.Fatal("fork job with a clean base must be fingerprintable")
	}
	if forkFp == plainFp {
		t.Fatal("fork job must not share a cache entry with the from-scratch run")
	}
	laterFp, _ := Fingerprint(Job{Config: base, Fork: &ForkSpec{Base: base, At: 2 * forkAt}})
	if laterFp == forkFp {
		t.Fatal("fork time must change the fingerprint")
	}
}
