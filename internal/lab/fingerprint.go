package lab

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"biglittle/internal/apps"
	"biglittle/internal/core"
	"biglittle/internal/event"
	"biglittle/internal/governor"
	"biglittle/internal/platform"
	"biglittle/internal/power"
	"biglittle/internal/sched"
	"biglittle/internal/thermal"
)

// print is the canonical, serializable view of a resolved job config. It is
// marshaled with encoding/json — which sorts map keys — and hashed, so the
// fingerprint is stable across processes and field-by-field explicit: adding
// a Config field without extending print is a (reviewable) cache-correctness
// decision, not a silent behavior change.
type print struct {
	App       string                     `json:"app"`
	Desc      string                     `json:"desc"`
	Metric    apps.Metric                `json:"metric"`
	Salt      string                     `json:"salt,omitempty"`
	Seed      int64                      `json:"seed"`
	Duration  event.Time                 `json:"duration"`
	Cores     platform.CoreConfig        `json:"cores"`
	Sched     sched.Config               `json:"sched"`
	Scheduler core.SchedulerKind         `json:"scheduler"`
	Governor  core.GovernorKind          `json:"governor"`
	Gov       governor.InteractiveConfig `json:"gov"`
	PinnedMHz map[int]int                `json:"pinned_mhz,omitempty"`
	Power     power.Params               `json:"power"`
	Platform  string                     `json:"platform,omitempty"`
	Thermal   *thermal.Params            `json:"thermal,omitempty"`

	// Fork identity: a fork-accelerated job's result depends on the prefix
	// it resumed from (variant knobs apply only from the fork point), so the
	// base config's own fingerprint and the fork time fold into the hash —
	// a forked variant never shares a cache entry with a from-scratch run
	// of the same config.
	ForkBase string     `json:"fork_base,omitempty"`
	ForkAt   event.Time `json:"fork_at,omitempty"`
}

// Fingerprint returns the content hash identifying a job's simulation, and
// whether the job is cacheable at all. Uncacheable jobs are those whose
// config carries live observers or opaque hooks that the cache could not
// replay on a hit:
//
//   - OnSystem may mutate the assembled system arbitrarily;
//   - Telemetry, Profiler, and Xray side effects (events, attribution,
//     decision spans) would be silently skipped if the result came from disk;
//   - a caller-supplied Check auditor must observe a live run to report
//     anything;
//   - a Platform constructor returning an unnamed SoC has no stable identity.
//
// Such jobs still run through the worker pool; they just always simulate.
// (The runner's own Check mode attaches its auditor after fingerprinting, so
// it does not affect cacheability.)
func Fingerprint(job Job) (string, bool) {
	cfg := job.Config.Normalized()
	if cfg.OnSystem != nil || cfg.Telemetry != nil || cfg.Profiler != nil || cfg.Xray != nil || cfg.Check != nil || cfg.Digest != nil || cfg.OnSnapshot != nil {
		return "", false
	}
	p := print{
		App:       cfg.App.Name,
		Desc:      cfg.App.Desc,
		Metric:    cfg.App.Metric,
		Salt:      job.Salt,
		Seed:      cfg.Seed,
		Duration:  cfg.Duration,
		Cores:     cfg.Cores,
		Sched:     cfg.Sched,
		Scheduler: cfg.Scheduler,
		Governor:  cfg.Governor,
		Gov:       cfg.Gov,
		PinnedMHz: cfg.PinnedMHz,
		Power:     cfg.Power,
		Thermal:   cfg.Thermal,
	}
	if cfg.Platform != nil {
		soc := cfg.Platform()
		if soc == nil || soc.Name == "" {
			return "", false
		}
		p.Platform = soc.Name
	}
	if job.Fork != nil {
		baseFp, ok := Fingerprint(Job{Config: job.Fork.Base})
		if !ok {
			return "", false
		}
		p.ForkBase = baseFp
		p.ForkAt = job.Fork.At
	}
	blob, err := json.Marshal(p)
	if err != nil {
		return "", false
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), true
}
