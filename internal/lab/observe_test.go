package lab

import (
	"bytes"
	"io"
	"log/slog"
	"reflect"
	"strings"
	"sync"
	"testing"

	"biglittle/internal/apps"
	"biglittle/internal/core"
	"biglittle/internal/event"
	"biglittle/internal/telemetry"
	"biglittle/internal/workload"
)

// statCounters is the contract between lab.Stats and the telemetry
// registry: every Stats field mirrors into exactly this counter.
var statCounters = map[string]string{
	"Jobs":            "lab_jobs",
	"Hits":            "lab_cache_hits",
	"Misses":          "lab_cache_misses",
	"Simulated":       "lab_simulations",
	"Stored":          "lab_stored",
	"Retries":         "lab_retries",
	"Failures":        "lab_failures",
	"Remote":          "lab_remote",
	"RemoteErrors":    "lab_remote_errors",
	"Audited":         "lab_audited",
	"AuditFailures":   "lab_audit_failures",
	"Forks":           "lab_forks",
	"PrefixHits":      "lab_prefix_hits",
	"PrefixMisses":    "lab_prefix_misses",
	"PrefixEvictions": "lab_prefix_evictions",
}

// TestStatsCountersMirrored pins two things: every field of Stats has a
// registered telemetry counter (adding a Stats field without wiring its
// counter fails here), and after exercising the hit, miss, store, retry,
// failure, and audit paths every counter equals its Stats field exactly.
func TestStatsCountersMirrored(t *testing.T) {
	st := reflect.TypeOf(Stats{})
	for i := 0; i < st.NumField(); i++ {
		if _, ok := statCounters[st.Field(i).Name]; !ok {
			t.Errorf("Stats field %s has no telemetry counter mapping", st.Field(i).Name)
		}
	}

	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.NewCollector()
	r := &Runner{Workers: 2, Cache: cache, Tel: tel, Check: true}

	cfg := testConfig(t)
	// Cold run: miss + simulated + audited + stored. Warm run: hit + audited.
	if _, err := r.RunConfigs([]core.Config{cfg}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunConfigs([]core.Config{cfg}); err != nil {
		t.Fatal(err)
	}
	// Panicking job: retry (default 1) then failure.
	pan := core.DefaultConfig(apps.App{Name: "panicky", Desc: "always panics",
		Build: func(*workload.Ctx) { panic("boom") }})
	pan.Duration = 100 * event.Millisecond
	if _, err := r.Run(Job{Config: pan}); err == nil {
		t.Fatal("panicking job should fail")
	}

	s := r.Stats()
	if s.Hits == 0 || s.Misses == 0 || s.Simulated == 0 || s.Stored == 0 ||
		s.Retries == 0 || s.Failures == 0 || s.Audited == 0 {
		t.Fatalf("test did not exercise every path: %+v", s)
	}
	sv := reflect.ValueOf(s)
	for field, counter := range statCounters {
		want := sv.FieldByName(field).Int()
		if got := tel.Counter(counter).Value(); got != want {
			t.Errorf("counter %s = %d, want %d (Stats.%s)", counter, got, want, field)
		}
	}
}

// TestRacePrometheusExportDuringSweep runs a Prometheus exporter in a loop
// while a parallel sweep updates the shared collector's lab counters — the
// exact shape blserve's /metrics handler and a long sweep produce. Under
// -race this pins the registry's goroutine-safety.
func TestRacePrometheusExportDuringSweep(t *testing.T) {
	tel := telemetry.NewCollector()
	r := &Runner{Workers: 8, Tel: tel}

	const n = 32
	jobs := make([]Job, n)
	for i := range jobs {
		cfg := testConfig(t)
		cfg.Seed = int64(i + 1)
		cfg.Duration = 20 * event.Millisecond
		jobs[i] = Job{Config: cfg}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tel.WritePrometheus(io.Discard)
			}
		}
	}()

	if _, err := r.RunAll(jobs); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if got := tel.Counter("lab_jobs").Value(); got != n {
		t.Fatalf("lab_jobs counter = %d, want %d", got, n)
	}
	var out strings.Builder
	if err := tel.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "biglittle_lab_simulations_total 32") {
		t.Fatalf("final export missing lab_simulations:\n%s", out.String())
	}
}

// TestSweepProgressLogging drives a >=100-job sweep with a structured
// logger attached and checks the observability contract: per-job Debug
// transitions, periodic Info progress lines with throughput and ETA, and a
// final summary whose tallies match Runner.Stats.
func TestSweepProgressLogging(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	r := &Runner{Workers: 4, Log: log}

	const n = 100
	jobs := make([]Job, n)
	for i := range jobs {
		cfg := testConfig(t)
		cfg.Seed = int64(i + 1)
		cfg.Duration = 10 * event.Millisecond
		jobs[i] = Job{Config: cfg}
	}
	if _, err := r.RunAll(jobs); err != nil {
		t.Fatal(err)
	}

	out := buf.String()
	if !strings.Contains(out, `msg="sweep start"`) || !strings.Contains(out, "jobs=100") {
		t.Errorf("missing sweep start line:\n%s", firstLines(out, 3))
	}
	progressLines := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, `msg="sweep progress"`) {
			progressLines++
			if !strings.Contains(line, "eta=") || !strings.Contains(line, "jobs_per_sec=") {
				t.Errorf("progress line missing eta/throughput: %s", line)
			}
		}
	}
	// Every 10th completion of 100 jobs logs: 10 lines (the last doubles as
	// completed=100).
	if progressLines != 10 {
		t.Errorf("progress lines = %d, want 10", progressLines)
	}
	if !strings.Contains(out, "completed=100 total=100") {
		t.Error("no final progress line with completed=100 total=100")
	}
	if strings.Count(out, `msg=simulated`) != n {
		t.Errorf("simulated debug lines = %d, want %d", strings.Count(out, `msg=simulated`), n)
	}
	s := r.Stats()
	if s.Simulated != n {
		t.Fatalf("stats = %+v, want %d simulated", s, n)
	}
	want := "msg=\"sweep complete\" jobs=100"
	if !strings.Contains(out, want) || !strings.Contains(out, "simulated=100") ||
		!strings.Contains(out, "failures=0") {
		t.Errorf("summary line does not match stats %+v:\n%s", s, lastLines(out, 3))
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

func lastLines(s string, n int) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return strings.Join(lines, "\n")
}
