package lab

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"sync"

	"biglittle/internal/core"
	"biglittle/internal/event"
	"biglittle/internal/snapshot"
)

// prefixEntry is one singleflight slot of the in-process prefix tier. The
// state is the snapshot decoded from its wire form exactly once: core.Resume
// treats a State as read-only (every Restore copies, the replayer copies the
// log), so concurrent continuations can share it. Decoding per fork would
// cost more than the continuation itself on short runs.
type prefixEntry struct {
	once      sync.Once
	state     *snapshot.State
	simulated bool  // the prefix was built by simulation, not loaded
	size      int64 // estimated decoded footprint, for the byte budget
	tracked   bool  // accounted in prefixLRU/prefixBytes (under prefixMu)
	err       error
}

// prefixKey addresses one warmed prefix: the base config's content
// fingerprint joined with the fork time.
func prefixKey(baseFp string, at event.Time) string {
	sum := sha256.Sum256([]byte(baseFp + "@" + strconv.FormatInt(int64(at), 10)))
	return hex.EncodeToString(sum[:])
}

// prefixState returns the decoded snapshot of spec.Base run to spec.At,
// building it at most once per (Base, At) across all workers and caching its
// encoded form in the Cache's prefix tier for later processes. Every path
// out of here is counted: a simulated prefix is a PrefixMiss, a reused one a
// PrefixHit. The key (a base-config fingerprint, one config marshal) is
// memoized per *ForkSpec, so jobs sharing one spec pointer — the natural way
// to build a fork sweep — fingerprint the base once, not once per job.
func (r *Runner) prefixState(spec *ForkSpec) (*snapshot.State, error) {
	if spec.At <= 0 {
		return nil, fmt.Errorf("lab: fork for %q: fork time must be positive, got %v", spec.Base.App.Name, spec.At)
	}

	r.prefixMu.Lock()
	key, ok := r.prefixKeys[spec]
	if !ok {
		baseFp, printable := Fingerprint(Job{Config: spec.Base})
		if !printable {
			r.prefixMu.Unlock()
			return nil, fmt.Errorf("lab: fork base config for %q is not fingerprintable (it carries observers, hooks, a digest recorder, or an unnamed platform); fork acceleration needs a shareable prefix", spec.Base.App.Name)
		}
		key = prefixKey(baseFp, spec.At)
		if r.prefixKeys == nil {
			r.prefixKeys = make(map[*ForkSpec]string)
		}
		r.prefixKeys[spec] = key
	}
	if r.prefixes == nil {
		r.prefixes = make(map[string]*prefixEntry)
	}
	e := r.prefixes[key]
	if e == nil {
		e = &prefixEntry{}
		r.prefixes[key] = e
	}
	r.prefixMu.Unlock()

	built := false
	e.once.Do(func() {
		built = true
		e.state, e.simulated, e.err = r.loadOrBuildPrefix(spec, key)
		if e.err == nil {
			e.size = e.state.ApproxBytes()
		}
	})
	if e.err != nil {
		return nil, e.err
	}
	if evicted := r.prefixTouch(key, e); evicted > 0 {
		n := int64(evicted)
		r.countAdd(func(s *Stats) { s.PrefixEvictions += n }, "lab_prefix_evictions", n)
		r.logJob("prefix evicted", spec.Base.App.Name, "evicted", evicted, "budget", r.prefixBudget())
	}
	switch {
	case built && e.simulated:
		r.count(func(s *Stats) { s.PrefixMisses++ }, "lab_prefix_misses")
		r.logJob("prefix simulated", spec.Base.App.Name, "at", spec.At, "key", key[:12])
	default:
		r.count(func(s *Stats) { s.PrefixHits++ }, "lab_prefix_hits")
		r.logJob("prefix reused", spec.Base.App.Name, "at", spec.At, "key", key[:12])
	}
	return e.state, nil
}

// loadOrBuildPrefix tries the cache's prefix tier, then simulates the base
// config to the fork time and snapshots it. The captured state is handed out
// directly — Snapshot builds fresh DTOs, and the codec's fidelity is pinned
// by the snapshot round-trip and golden-fork tests — so encoding here is
// purely for the disk tier and is skipped when there is none (it would
// otherwise cost as much as two continuations). Simulation panics are
// recovered into errors so a broken base config fails the jobs that share
// it rather than the whole sweep.
func (r *Runner) loadOrBuildPrefix(spec *ForkSpec, key string) (st *snapshot.State, simulated bool, err error) {
	if blob, ok := r.Cache.GetPrefix(key); ok {
		st, err := snapshot.Decode(blob)
		if err == nil {
			return st, false, nil
		}
		// GetPrefix validates, so this is near-unreachable; rebuild anyway.
	}
	defer func() {
		if p := recover(); p != nil {
			st, err = nil, fmt.Errorf("lab: fork prefix for %q panicked: %v", spec.Base.App.Name, p)
		}
	}()
	sim, err := core.NewSim(spec.Base)
	if err != nil {
		return nil, false, fmt.Errorf("lab: fork prefix for %q: %w", spec.Base.App.Name, err)
	}
	sim.RunTo(spec.At)
	captured, err := sim.Snapshot()
	if err != nil {
		return nil, false, fmt.Errorf("lab: fork prefix for %q: %w", spec.Base.App.Name, err)
	}
	if r.Cache != nil {
		blob, err := snapshot.Encode(captured)
		if err != nil {
			return nil, false, fmt.Errorf("lab: fork prefix for %q: %w", spec.Base.App.Name, err)
		}
		// Best effort: a prefix that cannot be persisted still serves this run.
		r.Cache.PutPrefix(key, blob)
	}
	return captured, true, nil
}

// prefixBudget resolves the Runner.PrefixBudget convention: zero means the
// default, negative means unlimited (reported as 0 = "no budget").
func (r *Runner) prefixBudget() int64 {
	switch {
	case r.PrefixBudget == 0:
		return DefaultPrefixBudget
	case r.PrefixBudget < 0:
		return 0
	default:
		return r.PrefixBudget
	}
}

// prefixTouch marks key as the most recently handed-out prefix and evicts
// least-recently-used entries until the tier fits the byte budget again,
// returning how many were dropped. The entry just handed out is never a
// victim — a single prefix larger than the whole budget still serves the
// sweep that warmed it — and an entry already evicted by a concurrent
// handout is left untracked rather than resurrected, so the byte tally
// only ever counts states reachable from the map.
func (r *Runner) prefixTouch(key string, e *prefixEntry) (evicted int) {
	r.prefixMu.Lock()
	defer r.prefixMu.Unlock()
	if r.prefixes[key] != e {
		return 0
	}
	if !e.tracked {
		e.tracked = true
		r.prefixBytes += e.size
		r.prefixLRU = append(r.prefixLRU, key)
	} else if n := len(r.prefixLRU); n > 0 && r.prefixLRU[n-1] != key {
		for i, k := range r.prefixLRU {
			if k == key {
				copy(r.prefixLRU[i:], r.prefixLRU[i+1:])
				r.prefixLRU[n-1] = key
				break
			}
		}
	}
	budget := r.prefixBudget()
	if budget <= 0 {
		return 0
	}
	for r.prefixBytes > budget && len(r.prefixLRU) > 1 {
		victim := r.prefixLRU[0]
		if victim == key {
			break
		}
		r.prefixLRU = r.prefixLRU[1:]
		if ve := r.prefixes[victim]; ve != nil {
			r.prefixBytes -= ve.size
			delete(r.prefixes, victim)
		}
		evicted++
	}
	return evicted
}

// forkRun is the attempt body of a fork-accelerated job: resume the shared
// read-only prefix under the job's config and run the continuation out.
func forkRun(st *snapshot.State) func(core.Config) (core.Result, error) {
	return func(cfg core.Config) (core.Result, error) {
		sim, err := core.Resume(cfg, st)
		if err != nil {
			return core.Result{}, fmt.Errorf("lab: job %q: resume fork prefix: %w", cfg.App.Name, err)
		}
		sim.RunTo(cfg.Duration)
		return sim.Finish(), nil
	}
}
