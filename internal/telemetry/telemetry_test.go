package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"biglittle/internal/event"
)

func migAt(at event.Time, reason string) Event {
	return Event{At: at, Kind: KindMigration, Task: 1, TaskName: "t",
		FromCore: 0, Core: 4, Cluster: -1, Reason: reason, Value: 800}
}

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector reports enabled")
	}
	c.Emit(migAt(0, ReasonUpThreshold))
	if c.Events() != nil || c.Dropped() != 0 || c.TotalEvents() != 0 {
		t.Fatal("nil collector recorded something")
	}
	if c.Count(KindMigration) != 0 || c.CountReason(KindMigration, ReasonUpThreshold) != 0 {
		t.Fatal("nil collector counted something")
	}
	if c.HMPMigrations() != 0 || c.FreqTransitions() != nil {
		t.Fatal("nil collector aggregated something")
	}
	// Registries hand out nil instruments whose methods are no-ops.
	c.Counter("x").Inc()
	c.Gauge("x").Set(1)
	c.Histogram("x").Observe(1)
	if c.Counter("x").Value() != 0 || c.Gauge("x").Value() != 0 || c.Histogram("x").Count() != 0 {
		t.Fatal("nil instruments recorded values")
	}
	if got := c.Summary(event.Second); !strings.Contains(got, "disabled") {
		t.Fatalf("nil Summary = %q", got)
	}
}

func TestCountsAndReasons(t *testing.T) {
	c := NewCollector()
	c.Emit(migAt(1*event.Millisecond, ReasonUpThreshold))
	c.Emit(migAt(2*event.Millisecond, ReasonUpThreshold))
	c.Emit(migAt(3*event.Millisecond, ReasonDownThreshold))
	c.Emit(migAt(4*event.Millisecond, ReasonBalance))
	c.Emit(migAt(5*event.Millisecond, ReasonPolicy))
	c.Emit(Event{At: 6 * event.Millisecond, Kind: KindWake, Task: 2, Core: 1, FromCore: -1, Cluster: -1})

	if got := c.Count(KindMigration); got != 5 {
		t.Fatalf("Count(migration) = %d, want 5", got)
	}
	if got := c.CountReason(KindMigration, ReasonUpThreshold); got != 2 {
		t.Fatalf("CountReason(up) = %d, want 2", got)
	}
	// HMP view excludes balance pulls and hotplug evictions.
	if got := c.HMPMigrations(); got != 4 {
		t.Fatalf("HMPMigrations = %d, want 4", got)
	}
	if got := c.TotalEvents(); got != 6 {
		t.Fatalf("TotalEvents = %d, want 6", got)
	}
}

func TestRingBufferDropsOldestKeepsAggregates(t *testing.T) {
	c := NewCollector()
	c.MaxEvents = 4
	for i := 0; i < 10; i++ {
		c.Emit(migAt(event.Time(i)*event.Millisecond, ReasonUpThreshold))
	}
	evs := c.Events()
	if len(evs) != 4 {
		t.Fatalf("buffered %d events, want 4", len(evs))
	}
	// Emission order preserved: the four newest, oldest first.
	for i, ev := range evs {
		want := event.Time(6+i) * event.Millisecond
		if ev.At != want {
			t.Fatalf("event %d at %v, want %v", i, ev.At, want)
		}
	}
	if c.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", c.Dropped())
	}
	// Aggregates survive the drops.
	if c.Count(KindMigration) != 10 || c.CountReason(KindMigration, ReasonUpThreshold) != 10 {
		t.Fatal("aggregates lost dropped events")
	}
}

func TestFreqTransitions(t *testing.T) {
	c := NewCollector()
	for _, mhz := range []int{800, 1900, 800, 800} {
		c.Emit(Event{Kind: KindFreq, Task: -1, Core: -1, FromCore: -1, Cluster: 1, MHz: mhz})
	}
	c.Emit(Event{Kind: KindFreq, Task: -1, Core: -1, FromCore: -1, Cluster: 0, MHz: 1300})
	ft := c.FreqTransitions()
	if ft[1][800] != 3 || ft[1][1900] != 1 || ft[0][1300] != 1 {
		t.Fatalf("FreqTransitions = %v", ft)
	}
}

func TestOnEventSubscriber(t *testing.T) {
	c := NewCollector()
	var seen []Kind
	c.OnEvent = func(ev Event) { seen = append(seen, ev.Kind) }
	c.Emit(migAt(0, ReasonUpThreshold))
	c.Emit(Event{Kind: KindBoost, Task: 1, Core: 0, FromCore: -1, Cluster: -1})
	if len(seen) != 2 || seen[0] != KindMigration || seen[1] != KindBoost {
		t.Fatalf("subscriber saw %v", seen)
	}
}

func TestInstruments(t *testing.T) {
	c := NewCollector()
	c.Counter("wakeups").Add(3)
	c.Counter("wakeups").Inc()
	c.Counter("wakeups").Add(-5) // ignored
	if got := c.Counter("wakeups").Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	c.Gauge("temp").Set(61.5)
	if got := c.Gauge("temp").Value(); got != 61.5 {
		t.Fatalf("gauge = %v", got)
	}

	h := c.Histogram("lat")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 || h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("histogram basic stats wrong: n=%d min=%v max=%v", h.Count(), h.Min(), h.Max())
	}
	if m := h.Mean(); m != 50.5 {
		t.Fatalf("mean = %v, want 50.5", m)
	}
	if p50 := h.Quantile(0.50); p50 < 50 || p50 > 51 {
		t.Fatalf("p50 = %v", p50)
	}
	if p95 := h.Quantile(0.95); p95 < 95 || p95 > 96 {
		t.Fatalf("p95 = %v", p95)
	}
	if h.Quantile(0) != 1 || h.Quantile(1) != 100 {
		t.Fatal("extreme quantiles wrong")
	}
	// Observing after a sort-triggering read must not corrupt order.
	h.Observe(0.5)
	if h.Min() != 0.5 {
		t.Fatalf("min after late observe = %v", h.Min())
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	c := NewCollector()
	c.Emit(migAt(1500*event.Microsecond, ReasonUpThreshold))
	c.Emit(Event{At: 2 * event.Millisecond, Kind: KindFreq, Task: -1, Core: -1,
		FromCore: -1, Cluster: 1, PrevMHz: 800, MHz: 1900})

	var b strings.Builder
	if err := c.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want header + 2", len(rows))
	}
	if rows[0][0] != "at_ms" || rows[0][1] != "kind" || rows[0][9] != "reason" {
		t.Fatalf("header = %v", rows[0])
	}
	if rows[1][1] != "migration" || rows[1][0] != "1.500" || rows[1][9] != ReasonUpThreshold {
		t.Fatalf("row 1 = %v", rows[1])
	}
	if rows[2][1] != "freq" || rows[2][7] != "800" || rows[2][8] != "1900" {
		t.Fatalf("row 2 = %v", rows[2])
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := NewCollector()
	c.Emit(migAt(event.Millisecond, ReasonUpThreshold))
	c.Emit(Event{Kind: KindFreq, Task: -1, Core: -1, FromCore: -1, Cluster: 0, MHz: 1300})
	c.Counter("n").Inc()
	c.Gauge("g").Set(2)
	c.Histogram("h").Observe(10)

	data, err := c.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var d Dump
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatalf("JSON dump does not round-trip: %v", err)
	}
	if d.Counts["migration"] != 1 || d.Counts["freq"] != 1 {
		t.Fatalf("counts = %v", d.Counts)
	}
	if d.Reasons["migration/"+ReasonUpThreshold] != 1 {
		t.Fatalf("reasons = %v", d.Reasons)
	}
	if d.FreqTransitions["0"]["1300"] != 1 {
		t.Fatalf("freq transitions = %v", d.FreqTransitions)
	}
	if d.Counters["n"] != 1 || d.Gauges["g"] != 2 || d.Histograms["h"].Count != 1 {
		t.Fatalf("registries = %v %v %v", d.Counters, d.Gauges, d.Histograms)
	}
	if len(d.Events) != 2 {
		t.Fatalf("%d events in dump", len(d.Events))
	}
}

func TestSummaryMentionsKindsAndRates(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 10; i++ {
		c.Emit(migAt(event.Time(i)*event.Millisecond, ReasonUpThreshold))
	}
	c.Histogram("frame_time_ms").Observe(16.7)
	s := c.Summary(event.Second)
	for _, want := range []string{"migration", ReasonUpThreshold, "migration rate", "frame_time_ms", "p95"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Summary missing %q:\n%s", want, s)
		}
	}
}
