// Package telemetry is the simulator's event-level observability layer: a
// near-zero-overhead event bus plus a metrics registry (counters, gauges,
// histograms) that every subsystem publishes into. Where internal/trace
// samples *state* once per scheduler tick, telemetry records *transitions*
// as they happen — each migration with its reason, each governor frequency
// decision with the load that triggered it, each hotplug, throttle, and
// boost — so sub-tick events are never missed and "how many, why, and when"
// has an exact answer.
//
// The disabled path is a nil Collector: every subsystem holds a
// *Collector that defaults to nil and guards emission with a single
// pointer check, so runs without telemetry pay essentially nothing
// (BenchmarkTelemetryOff in the root package quantifies it).
//
// Concurrency: the event bus (Emit, Events, Summary's event aggregates) is
// single-threaded, like the simulator that feeds it. The named-metric
// registry, however, is goroutine-safe — Counter/Gauge lookup and updates
// may run from parallel lab workers while an exporter (WritePrometheus,
// JSON) reads, which is exactly what blserve and a verbose sweep do.
// Histograms are registered under the same lock but their observations
// remain single-writer (Quantile sorts in place).
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"biglittle/internal/event"
)

// Kind classifies a telemetry event.
type Kind int

const (
	// KindMigration: a task moved between cores (Reason says why).
	KindMigration Kind = iota
	// KindWake: a sleeping task was placed on a core.
	KindWake
	// KindPreempt: a running task's round-robin slice expired.
	KindPreempt
	// KindBoost: a task's load was raised by the input booster.
	KindBoost
	// KindFreq: a cluster's frequency actually changed (any cause —
	// governor, touch kick, thermal re-clamp).
	KindFreq
	// KindGovernor: a DVFS governor decided to change frequency; Value
	// carries the triggering utilization (percent).
	KindGovernor
	// KindHotplug: a core went online or offline.
	KindHotplug
	// KindThrottle: the thermal governor stepped a cluster's frequency cap.
	KindThrottle
	// KindPower: a periodic whole-system power-meter snapshot (Value in mW).
	KindPower
	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindMigration:
		return "migration"
	case KindWake:
		return "wake"
	case KindPreempt:
		return "preempt"
	case KindBoost:
		return "boost"
	case KindFreq:
		return "freq"
	case KindGovernor:
		return "governor"
	case KindHotplug:
		return "hotplug"
	case KindThrottle:
		return "throttle"
	case KindPower:
		return "power"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Kinds returns every event kind, in declaration order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Event reasons. Interned constants so emission never allocates strings.
const (
	// Migration reasons.
	ReasonUpThreshold   = "up-threshold"   // HMP load above the up-threshold
	ReasonDownThreshold = "down-threshold" // HMP load below the down-threshold
	ReasonBalance       = "balance"        // intra-cluster idle pull
	ReasonPolicy        = "policy"         // MigrateHook policy (altsched)
	ReasonHotplug       = "hotplug"        // eviction from an offlining core
	// Wake reasons.
	ReasonDeepIdle = "deep-idle" // wake paid a deep-idle exit latency
	// Preempt reasons.
	ReasonSlice = "slice-expired"
	// Governor reasons.
	ReasonHispeed   = "hispeed"
	ReasonScaleUp   = "scale-up"
	ReasonScaleDown = "scale-down"
	// Throttle reasons.
	ReasonThrottle = "throttle"
	ReasonRelease  = "release"
	// Hotplug reasons.
	ReasonOnline  = "online"
	ReasonOffline = "offline"
)

// Event is one recorded occurrence. Fields that do not apply to a kind are
// left at -1 (identifiers) or zero (values); see the Kind constants for
// which fields each kind fills.
type Event struct {
	At   event.Time `json:"at"`
	Kind Kind       `json:"kind"`
	// Task/TaskName identify the subject task (migration, wake, preempt,
	// boost); Task is -1 otherwise.
	Task     int    `json:"task"`
	TaskName string `json:"task_name,omitempty"`
	// Core is the destination/affected core; FromCore the origin (-1 when
	// not applicable).
	Core     int `json:"core"`
	FromCore int `json:"from_core"`
	// Cluster is the affected cluster (freq, governor, throttle), else -1.
	Cluster int `json:"cluster"`
	// MHz/PrevMHz are the new and previous frequency (freq, governor) or
	// the new cap (throttle, 0 = released).
	MHz     int `json:"mhz,omitempty"`
	PrevMHz int `json:"prev_mhz,omitempty"`
	// Reason says why the event happened (one of the Reason constants).
	Reason string `json:"reason,omitempty"`
	// Value is kind-specific: tracked load (migration, wake, boost),
	// triggering utilization percent (governor), temperature °C (throttle),
	// system power mW (power).
	Value float64 `json:"value,omitempty"`
}

// DefaultMaxEvents bounds the in-memory event buffer (~12 MB of events).
// Counters, reason tallies, and the frequency-transition histogram stay
// exact even after the buffer starts dropping its oldest entries.
const DefaultMaxEvents = 100_000

type reasonKey struct {
	Kind   Kind
	Reason string
}

type freqKey struct {
	Cluster, MHz int
}

// Collector is the event bus and metrics registry for one run. A nil
// *Collector is valid everywhere and disables all recording: every method
// is safe to call on nil, which is the telemetry-off fast path.
type Collector struct {
	// MaxEvents caps the event ring buffer (DefaultMaxEvents when zero;
	// negative means unbounded). Aggregates are exact regardless.
	MaxEvents int

	// OnEvent, if set, additionally receives every emitted event — a
	// streaming subscriber for exporters that do not want buffering.
	OnEvent func(Event)

	events  []Event
	head    int // ring start once the buffer is full
	dropped int

	counts  [numKinds]int64
	reasons map[reasonKey]int64
	freq    map[freqKey]int64 // per-(cluster, target MHz) transition counts

	// regMu guards the named-metric registry maps below. Counters and
	// gauges themselves are atomic, so registered metrics can be updated
	// from parallel workers while an exporter iterates under the read lock.
	regMu    sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewCollector returns a Collector with the default event-buffer bound.
func NewCollector() *Collector {
	return &Collector{
		reasons:  map[reasonKey]int64{},
		freq:     map[freqKey]int64{},
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Enabled reports whether the collector records anything (false for nil).
func (c *Collector) Enabled() bool { return c != nil }

// Emit records one event: aggregates always, the event buffer up to
// MaxEvents (oldest entries dropped beyond that). Safe on nil.
func (c *Collector) Emit(ev Event) {
	if c == nil {
		return
	}
	if ev.Kind >= 0 && ev.Kind < numKinds {
		c.counts[ev.Kind]++
	}
	if ev.Reason != "" {
		if c.reasons == nil {
			c.reasons = map[reasonKey]int64{}
		}
		c.reasons[reasonKey{ev.Kind, ev.Reason}]++
	}
	if ev.Kind == KindFreq {
		if c.freq == nil {
			c.freq = map[freqKey]int64{}
		}
		c.freq[freqKey{ev.Cluster, ev.MHz}]++
	}
	max := c.MaxEvents
	if max == 0 {
		max = DefaultMaxEvents
	}
	switch {
	case max < 0 || len(c.events) < max:
		c.events = append(c.events, ev)
	default:
		c.events[c.head] = ev
		c.head = (c.head + 1) % max
		c.dropped++
	}
	if c.OnEvent != nil {
		c.OnEvent(ev)
	}
}

// Events returns the buffered events in emission order (a copy).
func (c *Collector) Events() []Event {
	if c == nil || len(c.events) == 0 {
		return nil
	}
	out := make([]Event, 0, len(c.events))
	out = append(out, c.events[c.head:]...)
	out = append(out, c.events[:c.head]...)
	return out
}

// Dropped returns how many events fell out of the bounded buffer.
func (c *Collector) Dropped() int {
	if c == nil {
		return 0
	}
	return c.dropped
}

// Count returns the exact number of events of kind emitted so far.
func (c *Collector) Count(k Kind) int64 {
	if c == nil || k < 0 || k >= numKinds {
		return 0
	}
	return c.counts[k]
}

// CountReason returns the exact number of (kind, reason) events.
func (c *Collector) CountReason(k Kind, reason string) int64 {
	if c == nil {
		return 0
	}
	return c.reasons[reasonKey{k, reason}]
}

// TotalEvents returns the exact number of events emitted (buffered or not).
func (c *Collector) TotalEvents() int64 {
	if c == nil {
		return 0
	}
	var n int64
	for _, v := range c.counts {
		n += v
	}
	return n
}

// HMPMigrations returns the number of inter-tier migrations visible to the
// scheduler's per-task counters: threshold moves plus policy moves, but not
// intra-cluster balance pulls or hotplug evictions. It matches
// core.Result.HMPMigrations on the same run (cross-validated by tests).
func (c *Collector) HMPMigrations() int64 {
	if c == nil {
		return 0
	}
	return c.reasons[reasonKey{KindMigration, ReasonUpThreshold}] +
		c.reasons[reasonKey{KindMigration, ReasonDownThreshold}] +
		c.reasons[reasonKey{KindMigration, ReasonPolicy}]
}

// FreqTransitions returns the exact per-(cluster, target MHz) transition
// counts for KindFreq events.
func (c *Collector) FreqTransitions() map[int]map[int]int64 {
	if c == nil {
		return nil
	}
	out := map[int]map[int]int64{}
	for k, n := range c.freq {
		if out[k.Cluster] == nil {
			out[k.Cluster] = map[int]int64{}
		}
		out[k.Cluster][k.MHz] = n
	}
	return out
}

// Counter returns (creating on first use) the named monotonic counter.
// Returns nil on a nil collector; Counter methods are nil-safe. Safe to
// call from concurrent goroutines.
func (c *Collector) Counter(name string) *Counter {
	if c == nil {
		return nil
	}
	c.regMu.RLock()
	ctr := c.counters[name]
	c.regMu.RUnlock()
	if ctr != nil {
		return ctr
	}
	c.regMu.Lock()
	defer c.regMu.Unlock()
	if c.counters == nil {
		c.counters = map[string]*Counter{}
	}
	if ctr = c.counters[name]; ctr == nil {
		ctr = &Counter{}
		c.counters[name] = ctr
	}
	return ctr
}

// Gauge returns (creating on first use) the named last-value gauge. Safe to
// call from concurrent goroutines.
func (c *Collector) Gauge(name string) *Gauge {
	if c == nil {
		return nil
	}
	c.regMu.RLock()
	g := c.gauges[name]
	c.regMu.RUnlock()
	if g != nil {
		return g
	}
	c.regMu.Lock()
	defer c.regMu.Unlock()
	if c.gauges == nil {
		c.gauges = map[string]*Gauge{}
	}
	if g = c.gauges[name]; g == nil {
		g = &Gauge{}
		c.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named value distribution.
// Registration is goroutine-safe; observations are not (single writer).
func (c *Collector) Histogram(name string) *Histogram {
	if c == nil {
		return nil
	}
	c.regMu.RLock()
	h := c.hists[name]
	c.regMu.RUnlock()
	if h != nil {
		return h
	}
	c.regMu.Lock()
	defer c.regMu.Unlock()
	if c.hists == nil {
		c.hists = map[string]*Histogram{}
	}
	if h = c.hists[name]; h == nil {
		h = &Histogram{}
		c.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing count. All methods are nil-safe
// and goroutine-safe: parallel lab workers may increment the same counter
// while an exporter reads it.
type Counter struct{ n atomic.Int64 }

// Add increments the counter by delta (negative deltas are ignored).
func (c *Counter) Add(delta int64) {
	if c == nil || delta < 0 {
		return
	}
	c.n.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge holds the most recent value of a quantity. Nil-safe and
// goroutine-safe (last writer wins).
type Gauge struct {
	bits  atomic.Uint64 // math.Float64bits of the last value
	isSet atomic.Bool
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
	g.isSet.Store(true)
}

// Value returns the last set value (0 if never set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Defined reports whether Set has ever been called; exporters use it to
// skip never-set gauges.
func (g *Gauge) Defined() bool { return g != nil && g.isSet.Load() }

// Histogram records a value distribution exactly (all observations kept;
// simulated runs are short enough that this is cheap and precise). Nil-safe.
type Histogram struct {
	vals   []float64
	sum    float64
	sorted bool
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.vals = append(h.vals, v)
	h.sum += v
	h.sorted = false
}

// Count returns the number of observations.
func (h *Histogram) Count() int {
	if h == nil {
		return 0
	}
	return len(h.vals)
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || len(h.vals) == 0 {
		return 0
	}
	return h.sum / float64(len(h.vals))
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() float64 {
	if h == nil || len(h.vals) == 0 {
		return 0
	}
	h.sort()
	return h.vals[0]
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h == nil || len(h.vals) == 0 {
		return 0
	}
	h.sort()
	return h.vals[len(h.vals)-1]
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank on the
// sorted observations; 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || len(h.vals) == 0 {
		return 0
	}
	h.sort()
	if q <= 0 {
		return h.vals[0]
	}
	if q >= 1 {
		return h.vals[len(h.vals)-1]
	}
	idx := int(q*float64(len(h.vals)-1) + 0.5)
	return h.vals[idx]
}

func (h *Histogram) sort() {
	if !h.sorted {
		sort.Float64s(h.vals)
		h.sorted = true
	}
}

// Summary renders a per-run text report: event counts by kind with reason
// breakdowns, the migration rate over duration, the frequency-transition
// histogram per cluster, and percentiles for every registered histogram.
func (c *Collector) Summary(duration event.Time) string {
	if c == nil {
		return "telemetry: disabled (nil collector)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "telemetry: %d events", c.TotalEvents())
	if c.dropped > 0 {
		fmt.Fprintf(&b, " (%d oldest dropped from the %d-entry buffer; aggregates exact)", c.dropped, len(c.events))
	}
	b.WriteString("\n")

	for _, k := range Kinds() {
		if c.counts[k] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-10s %6d", k, c.counts[k])
		var rs []string
		for rk, n := range c.reasons {
			if rk.Kind == k {
				rs = append(rs, fmt.Sprintf("%s %d", rk.Reason, n))
			}
		}
		if len(rs) > 0 {
			sort.Strings(rs)
			fmt.Fprintf(&b, "  (%s)", strings.Join(rs, ", "))
		}
		b.WriteString("\n")
	}

	if duration > 0 && c.Count(KindMigration) > 0 {
		fmt.Fprintf(&b, "migration rate: %.1f/s total, %.1f/s HMP (up/down/policy)\n",
			float64(c.Count(KindMigration))/duration.Seconds(),
			float64(c.HMPMigrations())/duration.Seconds())
	}

	if ft := c.FreqTransitions(); len(ft) > 0 {
		b.WriteString("freq transitions (cluster: targetMHz xCount):\n")
		var clusters []int
		for ci := range ft {
			clusters = append(clusters, ci)
		}
		sort.Ints(clusters)
		for _, ci := range clusters {
			var mhzs []int
			for mhz := range ft[ci] {
				mhzs = append(mhzs, mhz)
			}
			sort.Ints(mhzs)
			fmt.Fprintf(&b, "  cluster %d:", ci)
			for _, mhz := range mhzs {
				fmt.Fprintf(&b, " %d x%d", mhz, ft[ci][mhz])
			}
			b.WriteString("\n")
		}
	}

	c.regMu.RLock()
	defer c.regMu.RUnlock()
	if len(c.hists) > 0 {
		var names []string
		for name, h := range c.hists {
			if h.Count() > 0 {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			h := c.hists[name]
			fmt.Fprintf(&b, "%s: n=%d mean=%.2f p50=%.2f p95=%.2f p99=%.2f min=%.2f max=%.2f\n",
				name, h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Min(), h.Max())
		}
	}

	var cnames []string
	for name, ctr := range c.counters {
		if ctr.Value() != 0 {
			cnames = append(cnames, name)
		}
	}
	sort.Strings(cnames)
	for _, name := range cnames {
		fmt.Fprintf(&b, "counter %s: %d\n", name, c.counters[name].Value())
	}
	var gnames []string
	for name, g := range c.gauges {
		if g.Defined() {
			gnames = append(gnames, name)
		}
	}
	sort.Strings(gnames)
	for _, name := range gnames {
		fmt.Fprintf(&b, "gauge %s: %.3f\n", name, c.gauges[name].Value())
	}
	return b.String()
}
