package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// promName sanitizes an arbitrary registry name into a Prometheus metric
// name component: [a-zA-Z0-9_], everything else collapsed to '_'.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promLabel escapes a Prometheus label value.
func promLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// WritePrometheus renders the collector's aggregates and metrics registry in
// the Prometheus text exposition format (version 0.0.4):
//
//   - biglittle_events_total{kind} and biglittle_event_reasons_total{kind,reason}
//   - biglittle_freq_transitions_total{cluster,mhz}
//   - biglittle_events_dropped_total (ring-buffer evictions; aggregates exact)
//   - each registered Counter as biglittle_<name>_total
//   - each registered Gauge as biglittle_<name>
//   - each registered Histogram as a summary: biglittle_<name>{quantile=...}
//     at 0.5/0.9/0.95/0.99 (exact nearest-rank, not estimates — the
//     collector keeps every observation) plus _sum and _count.
//
// Safe on a nil collector (writes nothing). blserve serves this on /metrics
// and `blmetrics -prom` writes it to a file. The registry section (named
// counters, gauges, histograms) is safe to export while parallel lab
// workers update counters and gauges; the event aggregates assume the
// single-threaded engine has quiesced or is serialized by the caller.
func (c *Collector) WritePrometheus(w io.Writer) error {
	if c == nil {
		return nil
	}
	var b strings.Builder

	b.WriteString("# HELP biglittle_events_total Telemetry events emitted, by kind.\n")
	b.WriteString("# TYPE biglittle_events_total counter\n")
	for _, k := range Kinds() {
		fmt.Fprintf(&b, "biglittle_events_total{kind=%q} %d\n", k.String(), c.counts[k])
	}

	if len(c.reasons) > 0 {
		b.WriteString("# HELP biglittle_event_reasons_total Telemetry events by kind and reason.\n")
		b.WriteString("# TYPE biglittle_event_reasons_total counter\n")
		keys := make([]reasonKey, 0, len(c.reasons))
		for rk := range c.reasons {
			keys = append(keys, rk)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].Kind != keys[j].Kind {
				return keys[i].Kind < keys[j].Kind
			}
			return keys[i].Reason < keys[j].Reason
		})
		for _, rk := range keys {
			fmt.Fprintf(&b, "biglittle_event_reasons_total{kind=%q,reason=%q} %d\n",
				rk.Kind.String(), promLabel(rk.Reason), c.reasons[rk])
		}
	}

	if len(c.freq) > 0 {
		b.WriteString("# HELP biglittle_freq_transitions_total Cluster frequency transitions, by target MHz.\n")
		b.WriteString("# TYPE biglittle_freq_transitions_total counter\n")
		keys := make([]freqKey, 0, len(c.freq))
		for fk := range c.freq {
			keys = append(keys, fk)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].Cluster != keys[j].Cluster {
				return keys[i].Cluster < keys[j].Cluster
			}
			return keys[i].MHz < keys[j].MHz
		})
		for _, fk := range keys {
			fmt.Fprintf(&b, "biglittle_freq_transitions_total{cluster=\"%d\",mhz=\"%d\"} %d\n",
				fk.Cluster, fk.MHz, c.freq[fk])
		}
	}

	b.WriteString("# HELP biglittle_events_dropped_total Events evicted from the bounded buffer (aggregates stay exact).\n")
	b.WriteString("# TYPE biglittle_events_dropped_total counter\n")
	fmt.Fprintf(&b, "biglittle_events_dropped_total %d\n", c.dropped)

	c.regMu.RLock()
	names := make([]string, 0, len(c.counters))
	for name := range c.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mn := "biglittle_" + promName(name) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", mn, mn, c.counters[name].Value())
	}

	names = names[:0]
	for name, g := range c.gauges {
		if g.Defined() {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		mn := "biglittle_" + promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %g\n", mn, mn, c.gauges[name].Value())
	}

	names = names[:0]
	for name := range c.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := c.hists[name]
		mn := "biglittle_" + promName(name)
		fmt.Fprintf(&b, "# TYPE %s summary\n", mn)
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
			fmt.Fprintf(&b, "%s{quantile=\"%g\"} %g\n", mn, q, h.Quantile(q))
		}
		fmt.Fprintf(&b, "%s_sum %g\n%s_count %d\n", mn, h.sum, mn, h.Count())
	}
	c.regMu.RUnlock()

	_, err := io.WriteString(w, b.String())
	return err
}
