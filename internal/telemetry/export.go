package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// WriteCSV streams the buffered events as CSV, one row per event, with a
// header row. Columns: at_ms, kind, task, task_name, from_core, core,
// cluster, prev_mhz, mhz, reason, value.
func (c *Collector) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"at_ms", "kind", "task", "task_name",
		"from_core", "core", "cluster", "prev_mhz", "mhz", "reason", "value"}); err != nil {
		return err
	}
	for _, ev := range c.Events() {
		rec := []string{
			strconv.FormatFloat(ev.At.Milliseconds(), 'f', 3, 64),
			ev.Kind.String(),
			strconv.Itoa(ev.Task),
			ev.TaskName,
			strconv.Itoa(ev.FromCore),
			strconv.Itoa(ev.Core),
			strconv.Itoa(ev.Cluster),
			strconv.Itoa(ev.PrevMHz),
			strconv.Itoa(ev.MHz),
			ev.Reason,
			strconv.FormatFloat(ev.Value, 'f', 3, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// HistogramStats is a Histogram's JSON summary.
type HistogramStats struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// Stats summarizes the histogram for export.
func (h *Histogram) Stats() HistogramStats {
	return HistogramStats{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Min:   h.Min(),
		Max:   h.Max(),
	}
}

// Dump is the JSON export document.
type Dump struct {
	// Counts maps kind name to its exact event count.
	Counts map[string]int64 `json:"counts"`
	// Reasons maps "kind/reason" to its exact count.
	Reasons map[string]int64 `json:"reasons,omitempty"`
	// FreqTransitions maps cluster id (as a string, for JSON) to target-MHz
	// transition counts.
	FreqTransitions map[string]map[string]int64 `json:"freq_transitions,omitempty"`
	// Histograms maps registered histogram name to its stats.
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
	// Counters and Gauges are the registered named metrics.
	Counters map[string]int64   `json:"counters,omitempty"`
	Gauges   map[string]float64 `json:"gauges,omitempty"`
	// Dropped is how many events fell out of the bounded buffer.
	Dropped int `json:"dropped,omitempty"`
	// Events is the buffered event log (may be truncated; see Dropped).
	Events []Event `json:"events"`
}

// JSON marshals the full collector state — exact aggregates plus the
// buffered event log — as an indented JSON document.
func (c *Collector) JSON() ([]byte, error) {
	d := Dump{
		Counts:  map[string]int64{},
		Reasons: map[string]int64{},
		Events:  c.Events(),
	}
	if c != nil {
		for _, k := range Kinds() {
			if n := c.Count(k); n > 0 {
				d.Counts[k.String()] = n
			}
		}
		for rk, n := range c.reasons {
			d.Reasons[rk.Kind.String()+"/"+rk.Reason] = n
		}
		if ft := c.FreqTransitions(); len(ft) > 0 {
			d.FreqTransitions = map[string]map[string]int64{}
			for ci, per := range ft {
				m := map[string]int64{}
				for mhz, n := range per {
					m[strconv.Itoa(mhz)] = n
				}
				d.FreqTransitions[strconv.Itoa(ci)] = m
			}
		}
		c.regMu.RLock()
		if len(c.hists) > 0 {
			d.Histograms = map[string]HistogramStats{}
			var names []string
			for name := range c.hists {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				if h := c.hists[name]; h.Count() > 0 {
					d.Histograms[name] = h.Stats()
				}
			}
		}
		for name, ctr := range c.counters {
			if d.Counters == nil {
				d.Counters = map[string]int64{}
			}
			d.Counters[name] = ctr.Value()
		}
		for name, g := range c.gauges {
			if d.Gauges == nil {
				d.Gauges = map[string]float64{}
			}
			d.Gauges[name] = g.Value()
		}
		c.regMu.RUnlock()
		d.Dropped = c.dropped
	}
	return json.MarshalIndent(d, "", "  ")
}
