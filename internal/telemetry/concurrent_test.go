package telemetry

import (
	"fmt"
	"io"
	"sync"
	"testing"
)

// TestRegistryConcurrent hammers the named-metric registry from parallel
// writers while an exporter goroutine renders continuously — the pattern a
// parallel lab sweep with an attached collector produces. Run under -race
// this pins the goroutine-safety contract of Counter/Gauge and the registry
// maps; the final counter values pin that no increments were lost.
func TestRegistryConcurrent(t *testing.T) {
	const (
		workers = 8
		iters   = 1000
	)
	c := NewCollector()

	stop := make(chan struct{})
	var exporters sync.WaitGroup
	exporters.Add(2)
	go func() {
		defer exporters.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.WritePrometheus(io.Discard)
			}
		}
	}()
	go func() {
		defer exporters.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := c.JSON(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			own := fmt.Sprintf("worker_%d", w)
			for i := 0; i < iters; i++ {
				c.Counter("shared").Inc()
				c.Counter(own).Add(2)
				c.Gauge("progress").Set(float64(i))
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	exporters.Wait()

	if got := c.Counter("shared").Value(); got != workers*iters {
		t.Errorf("shared counter = %d, want %d (lost increments)", got, workers*iters)
	}
	for w := 0; w < workers; w++ {
		name := fmt.Sprintf("worker_%d", w)
		if got := c.Counter(name).Value(); got != 2*iters {
			t.Errorf("counter %s = %d, want %d", name, got, 2*iters)
		}
	}
	if !c.Gauge("progress").Defined() {
		t.Error("gauge never marked as set")
	}
	if got := c.Gauge("progress").Value(); got != float64(iters-1) {
		t.Errorf("gauge = %g, want %d (last writer wins)", got, iters-1)
	}
}
