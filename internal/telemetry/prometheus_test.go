package telemetry

import (
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	c := NewCollector()
	c.Emit(Event{Kind: KindMigration, Reason: ReasonUpThreshold})
	c.Emit(Event{Kind: KindMigration, Reason: ReasonUpThreshold})
	c.Emit(Event{Kind: KindFreq, Cluster: 1, MHz: 1400})
	c.Counter("frames rendered").Add(60)
	c.Gauge("temp_c").Set(41.5)
	h := c.Histogram("latency_ms")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}

	var b strings.Builder
	if err := c.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		`biglittle_events_total{kind="migration"} 2`,
		`biglittle_event_reasons_total{kind="migration",reason="up-threshold"} 2`,
		`biglittle_freq_transitions_total{cluster="1",mhz="1400"} 1`,
		"# TYPE biglittle_frames_rendered_total counter",
		"biglittle_frames_rendered_total 60",
		"biglittle_temp_c 41.5",
		"# TYPE biglittle_latency_ms summary",
		`biglittle_latency_ms{quantile="0.5"} 51`, // nearest-rank on 1..100
		`biglittle_latency_ms{quantile="0.99"} 99`,
		"biglittle_latency_ms_sum 5050",
		"biglittle_latency_ms_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}

	// Every non-comment line must be "name{labels} value" or "name value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestWritePrometheusNil(t *testing.T) {
	var c *Collector
	var b strings.Builder
	if err := c.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil collector: err=%v len=%d", err, b.Len())
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"latency_ms":      "latency_ms",
		"frames rendered": "frames_rendered",
		"9lives":          "_lives",
		"a.b-c":           "a_b_c",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
