package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func small() Config { return Config{Name: "t", SizeB: 1024, Ways: 2, LineB: 64} } // 8 sets

func TestValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{Name: "a", SizeB: 1024, Ways: 2, LineB: 64}, true},
		{Config{Name: "b", SizeB: 0, Ways: 2, LineB: 64}, false},
		{Config{Name: "c", SizeB: 1000, Ways: 2, LineB: 64}, false},
		{Config{Name: "d", SizeB: 1024, Ways: 2, LineB: 48}, false},
		{Config{Name: "e", SizeB: 32 * 1024, Ways: 2, LineB: 64}, true},
		{Config{Name: "f", SizeB: 2 * 1024 * 1024, Ways: 16, LineB: 64}, true},
		{Config{Name: "g", SizeB: 512 * 1024, Ways: 8, LineB: 64}, true},
		{Config{Name: "h", SizeB: 3 * 64 * 2, Ways: 2, LineB: 64}, false}, // 3 sets
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) err=%v, want ok=%v", c.cfg, err, c.ok)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := New(small())
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x1000 + 63) {
		t.Fatal("same-line access missed")
	}
	if c.Access(0x1000 + 64) {
		t.Fatal("next-line access hit")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 4 accesses 2 misses", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(small()) // 8 sets, 2 ways: addresses with same set bits conflict
	setStride := uint64(8 * 64)
	a, b, d := uint64(0), setStride, 2*setStride
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is now MRU
	c.Access(d) // evicts b (LRU)
	if !c.Contains(a) {
		t.Fatal("MRU line evicted")
	}
	if c.Contains(b) {
		t.Fatal("LRU line survived")
	}
	if !c.Contains(d) {
		t.Fatal("filled line missing")
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestWorkingSetFits(t *testing.T) {
	c := New(Config{Name: "l2", SizeB: 64 * 1024, Ways: 8, LineB: 64})
	// Stream a working set half the cache size twice: second pass all hits.
	ws := uint64(32 * 1024)
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < ws; a += 64 {
			c.Access(a)
		}
	}
	st := c.Stats()
	wantMisses := ws / 64
	if st.Misses != wantMisses {
		t.Fatalf("misses = %d, want %d (compulsory only)", st.Misses, wantMisses)
	}
}

func TestWorkingSetExceeds(t *testing.T) {
	c := New(Config{Name: "l2", SizeB: 8 * 1024, Ways: 2, LineB: 64})
	// Working set 4x cache size streamed cyclically: with LRU every access
	// misses after warmup (classic LRU streaming pathology).
	ws := uint64(32 * 1024)
	for pass := 0; pass < 3; pass++ {
		for a := uint64(0); a < ws; a += 64 {
			c.Access(a)
		}
	}
	st := c.Stats()
	if st.MissRate() < 0.99 {
		t.Fatalf("miss rate %.3f, want ~1.0 for cyclic over-capacity stream", st.MissRate())
	}
}

func TestReset(t *testing.T) {
	c := New(small())
	c.Access(0x40)
	c.Reset()
	if c.Contains(0x40) {
		t.Fatal("line survived reset")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("stats after reset = %+v", st)
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy(
		Config{Name: "l1", SizeB: 1024, Ways: 2, LineB: 64},
		Config{Name: "l2", SizeB: 8 * 1024, Ways: 4, LineB: 64},
	)
	if lvl := h.Access(0x100); lvl != Memory {
		t.Fatalf("cold access = %v, want Memory", lvl)
	}
	if lvl := h.Access(0x100); lvl != L1 {
		t.Fatalf("hot access = %v, want L1", lvl)
	}
	// Thrash L1 only: working set bigger than L1, smaller than L2.
	for a := uint64(0); a < 4*1024; a += 64 {
		h.Access(a)
	}
	// Second pass: should be mostly L2 hits (L1 too small to hold it).
	l2HitsBefore := h.L2.Stats().Accesses - h.L2.Stats().Misses
	for a := uint64(0); a < 4*1024; a += 64 {
		if lvl := h.Access(a); lvl == Memory {
			t.Fatalf("addr %#x went to memory, want L2 hit", a)
		}
	}
	l2HitsAfter := h.L2.Stats().Accesses - h.L2.Stats().Misses
	if l2HitsAfter <= l2HitsBefore {
		t.Fatal("expected L2 hits on second pass")
	}
}

func TestLevelString(t *testing.T) {
	if L1.String() != "L1" || L2.String() != "L2" || Memory.String() != "Memory" {
		t.Fatal("Level.String mismatch")
	}
}

// Property: miss count never exceeds access count, and hits+misses add up.
func TestPropertyStatsConsistent(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := New(small())
		hits := uint64(0)
		for _, a := range addrs {
			if c.Access(uint64(a)) {
				hits++
			}
		}
		st := c.Stats()
		return st.Accesses == uint64(len(addrs)) && st.Misses+hits == st.Accesses && st.Misses <= st.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: after any access the line is resident, and residency never
// exceeds capacity (ways per set).
func TestPropertyResidency(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := New(small())
		for _, a := range addrs {
			c.Access(uint64(a))
			if !c.Contains(uint64(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a bigger cache (same ways/line) never has more misses on the
// same trace — inclusion property of LRU.
func TestPropertyLRUInclusion(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 20; iter++ {
		smallC := New(Config{Name: "s", SizeB: 4 * 1024, Ways: 4, LineB: 64})
		bigC := New(Config{Name: "b", SizeB: 16 * 1024, Ways: 16, LineB: 64}) // same sets, more ways
		n := 2000
		for i := 0; i < n; i++ {
			a := uint64(rng.Intn(64*1024)) &^ 63
			smallC.Access(a)
			bigC.Access(a)
		}
		if bigC.Stats().Misses > smallC.Stats().Misses {
			t.Fatalf("iter %d: bigger cache missed more (%d > %d)", iter,
				bigC.Stats().Misses, smallC.Stats().Misses)
		}
	}
}

func BenchmarkAccess(b *testing.B) {
	c := New(Config{Name: "l2", SizeB: 512 * 1024, Ways: 8, LineB: 64})
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(2 * 1024 * 1024))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i%len(addrs)])
	}
}
