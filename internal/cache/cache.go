// Package cache implements a set-associative cache simulator with true-LRU
// replacement and a two-level hierarchy, used by the microarchitecture model
// to reproduce the L2-size-driven performance gap between the Cortex-A15
// (2 MB L2) and Cortex-A7 (512 KB L2) clusters described in the paper.
//
// The simulator is trace-driven: it consumes byte addresses and reports
// hit/miss per level. Latencies are attached by the uarch model, not here.
//
// Way metadata is stored as flat per-set arrays (tags and last-use stamps in
// separate slices) rather than per-way structs: the hit-probe loop scans only
// the tag array, and the common repeated-line case is served by a one-probe
// MRU check before the full set scan. A last-use stamp of zero marks an
// invalid way, so validity needs no separate flag — the global access clock
// starts at one.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	Name  string
	SizeB int // total capacity in bytes
	Ways  int // associativity
	LineB int // line size in bytes
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeB / (c.Ways * c.LineB) }

// Validate reports whether the configuration is internally consistent:
// power-of-two line size and set count, and positive dimensions.
func (c Config) Validate() error {
	if c.SizeB <= 0 || c.Ways <= 0 || c.LineB <= 0 {
		return fmt.Errorf("cache %q: non-positive dimension", c.Name)
	}
	if c.SizeB%(c.Ways*c.LineB) != 0 {
		return fmt.Errorf("cache %q: size %d not divisible by ways*line %d", c.Name, c.SizeB, c.Ways*c.LineB)
	}
	if c.LineB&(c.LineB-1) != 0 {
		return fmt.Errorf("cache %q: line size %d not a power of two", c.Name, c.LineB)
	}
	s := c.Sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("cache %q: set count %d not a power of two", c.Name, s)
	}
	return nil
}

// Stats accumulates access counts for one cache level.
type Stats struct {
	Accesses  uint64
	Misses    uint64
	Evictions uint64
}

// MissRate returns Misses/Accesses, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a single set-associative cache level with LRU replacement.
//
// Way w of set s lives at flat index s*Ways+w. tags holds the full block
// address; use holds the last-access clock stamp, with zero meaning the way
// is invalid. mru remembers the way touched most recently per set for the
// one-probe fast path.
type Cache struct {
	cfg       Config
	tags      []uint64
	use       []uint64
	mru       []int32
	ways      int
	setMask   uint64
	lineShift uint
	clock     uint64
	stats     Stats
}

// New builds a cache from cfg; it panics on an invalid configuration since
// configurations are compile-time constants in this simulator.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.Sets()
	shift := uint(0)
	for 1<<shift < cfg.LineB {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		tags:      make([]uint64, nsets*cfg.Ways),
		use:       make([]uint64, nsets*cfg.Ways),
		mru:       make([]int32, nsets),
		ways:      cfg.Ways,
		setMask:   uint64(nsets - 1),
		lineShift: shift,
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics while keeping cache contents — used to
// exclude warmup accesses from measurement.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Reset clears all contents and statistics.
func (c *Cache) Reset() {
	clear(c.tags)
	clear(c.use)
	clear(c.mru)
	c.clock = 0
	c.stats = Stats{}
}

// Access looks up addr, allocating the line on a miss (write-allocate for
// both loads and stores — the distinction does not matter for the CPI model).
// It returns true on hit. The fast path is a single probe of the set's MRU
// way, which serves the repeated-line accesses that dominate instruction
// fetch and hot-set data streams.
func (c *Cache) Access(addr uint64) bool {
	c.clock++
	c.stats.Accesses++
	blk := addr >> c.lineShift
	set := blk & c.setMask
	base := int(set) * c.ways
	if m := base + int(c.mru[set]); c.tags[m] == blk && c.use[m] != 0 {
		c.use[m] = c.clock
		return true
	}
	return c.accessSlow(blk, set, base)
}

// accessSlow is the full set probe plus miss handling behind the MRU fast
// path. Victim selection is bit-compatible with the historical per-way-struct
// implementation: a zero stamp (invalid way) always loses to any valid stamp,
// and among zeros the first one wins because later zeros are not strictly
// smaller; among valid ways stamps are unique (the clock is monotone), so the
// minimum is the true LRU way.
func (c *Cache) accessSlow(blk, set uint64, base int) bool {
	tags := c.tags[base : base+c.ways]
	use := c.use[base : base+c.ways : base+c.ways]
	for i, t := range tags {
		if t == blk && use[i] != 0 {
			use[i] = c.clock
			c.mru[set] = int32(i)
			return true
		}
	}
	c.stats.Misses++
	victim := 0
	oldest := ^uint64(0)
	for i, u := range use {
		if u < oldest {
			oldest = u
			victim = i
		}
	}
	if use[victim] != 0 {
		c.stats.Evictions++
	}
	tags[victim] = blk
	use[victim] = c.clock
	c.mru[set] = int32(victim)
	return false
}

// Contains reports whether addr is currently resident, without touching
// LRU state or statistics. Intended for tests.
func (c *Cache) Contains(addr uint64) bool {
	blk := addr >> c.lineShift
	base := int(blk&c.setMask) * c.ways
	for i := 0; i < c.ways; i++ {
		if c.tags[base+i] == blk && c.use[base+i] != 0 {
			return true
		}
	}
	return false
}

// Snapshot is a copy of a cache's full replacement state (contents, LRU
// stamps, clock, statistics). It lets a warmed cache be cloned instead of
// re-simulating the warmup access stream; restoring a snapshot reproduces
// the subsequent hit/miss sequence bit-for-bit.
type Snapshot struct {
	cfg   Config
	tags  []uint64
	use   []uint64
	mru   []int32
	clock uint64
	stats Stats
}

// Snapshot captures the cache's current state.
func (c *Cache) Snapshot() Snapshot {
	s := Snapshot{
		cfg:   c.cfg,
		tags:  make([]uint64, len(c.tags)),
		use:   make([]uint64, len(c.use)),
		mru:   make([]int32, len(c.mru)),
		clock: c.clock,
		stats: c.stats,
	}
	copy(s.tags, c.tags)
	copy(s.use, c.use)
	copy(s.mru, c.mru)
	return s
}

// Restore overwrites the cache's state with a snapshot taken from a cache of
// the identical configuration; it panics on a configuration mismatch.
func (c *Cache) Restore(s Snapshot) {
	if s.cfg != c.cfg {
		panic(fmt.Sprintf("cache: restoring %q snapshot into %q", s.cfg.Name, c.cfg.Name))
	}
	copy(c.tags, s.tags)
	copy(c.use, s.use)
	copy(c.mru, s.mru)
	c.clock = s.clock
	c.stats = s.stats
}

// Level identifies where in the hierarchy an access was satisfied.
type Level int

const (
	L1 Level = iota
	L2
	Memory
)

func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	default:
		return "Memory"
	}
}

// Hierarchy is a two-level data-cache hierarchy (L1D backed by a unified L2).
// Instruction caches are modeled separately by the uarch package using a
// standalone Cache, because instruction streams in the synthetic workloads
// have near-perfect locality.
type Hierarchy struct {
	L1D *Cache
	L2  *Cache
}

// NewHierarchy builds a hierarchy from per-level configs.
func NewHierarchy(l1d, l2 Config) *Hierarchy {
	return &Hierarchy{L1D: New(l1d), L2: New(l2)}
}

// Access walks addr through the hierarchy and returns the level that
// satisfied it. An L1 miss always probes L2; an L2 miss goes to memory and
// fills both levels (inclusive fill). The L1-hit common case resolves in the
// single MRU probe inside (*Cache).Access and allocates nothing.
func (h *Hierarchy) Access(addr uint64) Level {
	if h.L1D.Access(addr) {
		return L1
	}
	if h.L2.Access(addr) {
		return L2
	}
	return Memory
}

// Reset clears both levels.
func (h *Hierarchy) Reset() {
	h.L1D.Reset()
	h.L2.Reset()
}
