// Package cache implements a set-associative cache simulator with true-LRU
// replacement and a two-level hierarchy, used by the microarchitecture model
// to reproduce the L2-size-driven performance gap between the Cortex-A15
// (2 MB L2) and Cortex-A7 (512 KB L2) clusters described in the paper.
//
// The simulator is trace-driven: it consumes byte addresses and reports
// hit/miss per level. Latencies are attached by the uarch model, not here.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	Name  string
	SizeB int // total capacity in bytes
	Ways  int // associativity
	LineB int // line size in bytes
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeB / (c.Ways * c.LineB) }

// Validate reports whether the configuration is internally consistent:
// power-of-two line size and set count, and positive dimensions.
func (c Config) Validate() error {
	if c.SizeB <= 0 || c.Ways <= 0 || c.LineB <= 0 {
		return fmt.Errorf("cache %q: non-positive dimension", c.Name)
	}
	if c.SizeB%(c.Ways*c.LineB) != 0 {
		return fmt.Errorf("cache %q: size %d not divisible by ways*line %d", c.Name, c.SizeB, c.Ways*c.LineB)
	}
	if c.LineB&(c.LineB-1) != 0 {
		return fmt.Errorf("cache %q: line size %d not a power of two", c.Name, c.LineB)
	}
	s := c.Sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("cache %q: set count %d not a power of two", c.Name, s)
	}
	return nil
}

// Stats accumulates access counts for one cache level.
type Stats struct {
	Accesses  uint64
	Misses    uint64
	Evictions uint64
}

// MissRate returns Misses/Accesses, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag   uint64
	valid bool
	// lastUse implements true LRU via a global access counter.
	lastUse uint64
}

// Cache is a single set-associative cache level with LRU replacement.
type Cache struct {
	cfg       Config
	sets      [][]line
	setMask   uint64
	lineShift uint
	clock     uint64
	stats     Stats
}

// New builds a cache from cfg; it panics on an invalid configuration since
// configurations are compile-time constants in this simulator.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.Sets()
	sets := make([][]line, nsets)
	backing := make([]line, nsets*cfg.Ways)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	shift := uint(0)
	for 1<<shift < cfg.LineB {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		setMask:   uint64(nsets - 1),
		lineShift: shift,
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics while keeping cache contents — used to
// exclude warmup accesses from measurement.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Reset clears all contents and statistics.
func (c *Cache) Reset() {
	for si := range c.sets {
		for wi := range c.sets[si] {
			c.sets[si][wi] = line{}
		}
	}
	c.clock = 0
	c.stats = Stats{}
}

// Access looks up addr, allocating the line on a miss (write-allocate for
// both loads and stores — the distinction does not matter for the CPI model).
// It returns true on hit.
func (c *Cache) Access(addr uint64) bool {
	c.clock++
	c.stats.Accesses++
	blk := addr >> c.lineShift
	set := c.sets[blk&c.setMask]
	tag := blk >> 0 // full block address as tag; set bits are redundant but harmless
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lastUse = c.clock
			return true
		}
	}
	c.stats.Misses++
	// Choose victim: first invalid way, else LRU.
	victim := 0
	oldest := ^uint64(0)
	for i := range set {
		if !set[i].valid {
			victim = i
			oldest = 0
			break
		}
		if set[i].lastUse < oldest {
			oldest = set[i].lastUse
			victim = i
		}
	}
	if set[victim].valid {
		c.stats.Evictions++
	}
	set[victim] = line{tag: tag, valid: true, lastUse: c.clock}
	return false
}

// Contains reports whether addr is currently resident, without touching
// LRU state or statistics. Intended for tests.
func (c *Cache) Contains(addr uint64) bool {
	blk := addr >> c.lineShift
	set := c.sets[blk&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == blk {
			return true
		}
	}
	return false
}

// Level identifies where in the hierarchy an access was satisfied.
type Level int

const (
	L1 Level = iota
	L2
	Memory
)

func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	default:
		return "Memory"
	}
}

// Hierarchy is a two-level data-cache hierarchy (L1D backed by a unified L2).
// Instruction caches are modeled separately by the uarch package using a
// standalone Cache, because instruction streams in the synthetic workloads
// have near-perfect locality.
type Hierarchy struct {
	L1D *Cache
	L2  *Cache
}

// NewHierarchy builds a hierarchy from per-level configs.
func NewHierarchy(l1d, l2 Config) *Hierarchy {
	return &Hierarchy{L1D: New(l1d), L2: New(l2)}
}

// Access walks addr through the hierarchy and returns the level that
// satisfied it. An L1 miss always probes L2; an L2 miss goes to memory and
// fills both levels (inclusive fill).
func (h *Hierarchy) Access(addr uint64) Level {
	if h.L1D.Access(addr) {
		return L1
	}
	if h.L2.Access(addr) {
		return L2
	}
	return Memory
}

// Reset clears both levels.
func (h *Hierarchy) Reset() {
	h.L1D.Reset()
	h.L2.Reset()
}
