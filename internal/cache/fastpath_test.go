package cache

import (
	"math/rand"
	"testing"
)

// The flat-array + MRU-probe implementation must be behaviourally identical
// to a straightforward per-way LRU model: same hit/miss verdict on every
// access and same final stats, for random address streams over several
// geometries.
func TestMatchesReferenceLRU(t *testing.T) {
	cfgs := []Config{
		{Name: "dm", SizeB: 4 << 10, Ways: 1, LineB: 64},
		{Name: "a2", SizeB: 8 << 10, Ways: 2, LineB: 32},
		{Name: "a4", SizeB: 32 << 10, Ways: 4, LineB: 64},
		{Name: "a16", SizeB: 64 << 10, Ways: 16, LineB: 64},
	}
	for _, cfg := range cfgs {
		c := New(cfg)
		ref := newRefCache(cfg)
		rng := rand.New(rand.NewSource(7))
		// Mix of hot reuse, streaming, and random addresses.
		hot := make([]uint64, 32)
		for i := range hot {
			hot[i] = uint64(rng.Intn(1 << 14))
		}
		var streamPtr uint64
		for i := 0; i < 200_000; i++ {
			var addr uint64
			switch rng.Intn(4) {
			case 0, 1:
				addr = hot[rng.Intn(len(hot))]
			case 2:
				streamPtr += 8
				addr = 1<<20 + streamPtr
			default:
				addr = uint64(rng.Intn(1 << 18))
			}
			got, want := c.Access(addr), ref.access(addr)
			if got != want {
				t.Fatalf("%s: access %d addr %#x: got hit=%v, reference %v", cfg.Name, i, addr, got, want)
			}
		}
		if c.Stats() != ref.stats {
			t.Fatalf("%s: stats %+v, reference %+v", cfg.Name, c.Stats(), ref.stats)
		}
	}
}

// refCache is the original per-way-struct implementation, kept verbatim as
// the behavioural oracle.
type refCache struct {
	sets      [][]refLine
	setMask   uint64
	lineShift uint
	clock     uint64
	stats     Stats
}

type refLine struct {
	tag     uint64
	valid   bool
	lastUse uint64
}

func newRefCache(cfg Config) *refCache {
	nsets := cfg.Sets()
	sets := make([][]refLine, nsets)
	for i := range sets {
		sets[i] = make([]refLine, cfg.Ways)
	}
	shift := uint(0)
	for 1<<shift < cfg.LineB {
		shift++
	}
	return &refCache{sets: sets, setMask: uint64(nsets - 1), lineShift: shift}
}

func (c *refCache) access(addr uint64) bool {
	c.clock++
	c.stats.Accesses++
	blk := addr >> c.lineShift
	set := c.sets[blk&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == blk {
			set[i].lastUse = c.clock
			return true
		}
	}
	c.stats.Misses++
	victim := 0
	oldest := ^uint64(0)
	for i := range set {
		if !set[i].valid {
			victim = i
			oldest = 0
			break
		}
		if set[i].lastUse < oldest {
			oldest = set[i].lastUse
			victim = i
		}
	}
	if set[victim].valid {
		c.stats.Evictions++
	}
	set[victim] = refLine{tag: blk, valid: true, lastUse: c.clock}
	return false
}

// Restoring a snapshot must reproduce the exact subsequent access behaviour
// of the cache it was taken from.
func TestSnapshotRestoreExact(t *testing.T) {
	cfg := Config{Name: "snap", SizeB: 16 << 10, Ways: 4, LineB: 64}
	warm := func() *Cache {
		c := New(cfg)
		for a := uint64(0); a < 64<<10; a += 64 {
			c.Access(a)
		}
		c.ResetStats()
		return c
	}
	a, b := warm(), New(cfg)
	b.Restore(a.Snapshot())

	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50_000; i++ {
		addr := uint64(rng.Intn(128 << 10))
		ha, hb := a.Access(addr), b.Access(addr)
		if ha != hb {
			t.Fatalf("access %d addr %#x: original hit=%v, restored hit=%v", i, addr, ha, hb)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestRestoreConfigMismatchPanics(t *testing.T) {
	a := New(Config{Name: "a", SizeB: 16 << 10, Ways: 4, LineB: 64})
	b := New(Config{Name: "b", SizeB: 32 << 10, Ways: 4, LineB: 64})
	defer func() {
		if recover() == nil {
			t.Fatal("Restore with mismatched config did not panic")
		}
	}()
	b.Restore(a.Snapshot())
}

// An L1 hit — the overwhelmingly common case in every SPEC run — must not
// allocate. This is half of the allocation budget the CI gate enforces (the
// other half is the event fire path).
func TestZeroAllocL1Hit(t *testing.T) {
	h := NewHierarchy(
		Config{Name: "l1", SizeB: 32 << 10, Ways: 4, LineB: 64},
		Config{Name: "l2", SizeB: 512 << 10, Ways: 8, LineB: 64},
	)
	h.Access(0x1000) // fill
	if avg := testing.AllocsPerRun(1000, func() {
		if h.Access(0x1000) != L1 {
			t.Fatal("expected L1 hit")
		}
	}); avg != 0 {
		t.Fatalf("L1-hit access allocates %.1f objects, want 0", avg)
	}
}

// Misses through the full hierarchy must not allocate either.
func TestZeroAllocMissPath(t *testing.T) {
	h := NewHierarchy(
		Config{Name: "l1", SizeB: 4 << 10, Ways: 2, LineB: 64},
		Config{Name: "l2", SizeB: 16 << 10, Ways: 4, LineB: 64},
	)
	addr := uint64(0)
	if avg := testing.AllocsPerRun(1000, func() {
		addr += 1 << 16 // always a fresh set-conflicting line
		h.Access(addr)
	}); avg != 0 {
		t.Fatalf("miss-path access allocates %.1f objects, want 0", avg)
	}
}
