package xray

import "testing"

// TestNilTracerZeroAlloc pins the repo-wide nil-observer contract for the
// tracer: every recording method on a nil *Tracer must be allocation-free,
// so leaving xray disabled costs nothing beyond the call-site pointer check
// (which BenchmarkSingleRun's alloc gate covers end to end).
func TestNilTracerZeroAlloc(t *testing.T) {
	var x *Tracer
	cases := map[string]func(){
		"Wake":      func() { x.Wake(0, 1, "t", 0, 0, "c", "r", nil, nil) },
		"Migration": func() { x.Migration(0, 1, "t", 0, 1, 0, "c", "r", nil, nil) },
		"FreqStep":  func() { x.FreqStep(0, 0, 1000, 1200, "c", "r", nil, nil) },
		"Throttle":  func() { x.Throttle(0, 0, 1400, "c", "r", nil) },
		"Hotplug":   func() { x.Hotplug(0, 0, 0, "c", "r", nil) },
		"Len":       func() { x.Len() },
		"Dropped":   func() { x.Dropped() },
		"Spans":     func() { x.Spans() },
		"Enabled":   func() { x.Enabled() },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
			t.Errorf("nil tracer %s: %.1f allocs/op, want 0", name, allocs)
		}
	}
}
