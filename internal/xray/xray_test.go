package xray

import (
	"strings"
	"testing"

	"biglittle/internal/event"
)

const ms = event.Millisecond

// chainTracer records a canonical wake → migration → freq → throttle →
// hotplug chain on cluster 1 plus an unrelated wake on cluster 0.
func chainTracer() *Tracer {
	x := New()
	x.Wake(0, 7, "other.task", 0, 0, "placed on cpu0", "wake", nil, nil)
	x.Wake(10*ms, 3, "br.render", 1, 0, "placed on cpu1", "wake",
		[]Input{{"load", 120}, {"up_threshold", 700}},
		[]Candidate{{Core: 1, Type: "little", QueueLen: 0}, {Core: 2, Type: "little", QueueLen: 1, Rejected: "deeper-queue"}})
	x.Migration(140*ms, 3, "br.render", 1, 4, 1, "cpu1 -> cpu4", "up-threshold",
		[]Input{{"load", 812}, {"up_threshold", 700}},
		[]Candidate{{Core: 4, Type: "big", QueueLen: 0}, {Core: 5, Type: "big", QueueLen: 2, Rejected: "deeper-queue"}})
	x.FreqStep(160*ms, 1, 1000, 1600, "cluster1 1000 -> 1600 MHz", "scale-up",
		[]Input{{"max_util_pct", 92}}, nil)
	x.Throttle(400*ms, 1, 1400, "cap cluster1 at 1400 MHz", "throttle",
		[]Input{{"temp_c", 76.2}, {"trip_c", 75}})
	x.Hotplug(410*ms, 5, 1, "cpu5 offline", "hotplug",
		[]Input{{"temp_c", 86.1}})
	return x
}

func TestCausalChain(t *testing.T) {
	x := chainTracer()
	d := x.Dump()
	if len(d.Spans) != 6 {
		t.Fatalf("spans = %d, want 6", len(d.Spans))
	}
	// IDs are assigned in order: 0 other-wake, 1 wake, 2 migration, 3 freq,
	// 4 throttle, 5 hotplug.
	wantParent := map[int64]int64{0: -1, 1: -1, 2: 1, 3: 2, 4: 3, 5: 4}
	for _, s := range d.Spans {
		if s.Parent != wantParent[s.ID] {
			t.Errorf("span %d (%s): parent = %d, want %d", s.ID, s.Kind, s.Parent, wantParent[s.ID])
		}
	}

	anc := d.Ancestors(5)
	if len(anc) != 4 {
		t.Fatalf("Ancestors(5) = %d spans, want 4", len(anc))
	}
	if anc[0].Kind != KindThrottle || anc[3].Kind != KindWake {
		t.Errorf("ancestor order wrong: closest=%s furthest=%s", anc[0].Kind, anc[3].Kind)
	}

	desc := d.Descendants(1)
	if len(desc) != 4 {
		t.Fatalf("Descendants(1) = %d spans, want 4", len(desc))
	}
	if desc[0].Kind != KindMigration || desc[3].Kind != KindHotplug {
		t.Errorf("descendant order wrong: first=%s last=%s", desc[0].Kind, desc[3].Kind)
	}
	// The unrelated wake (span 0) must appear in neither walk.
	for _, s := range append(anc, desc...) {
		if s.ID == 0 {
			t.Errorf("span 0 leaked into the causal walk of span 1's chain")
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	x := chainTracer()
	data, err := x.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"kind": "migration"`) {
		t.Errorf("dump should name kinds as strings:\n%s", data)
	}
	d, err := ParseDump(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Spans) != x.Len() {
		t.Fatalf("round-trip spans = %d, want %d", len(d.Spans), x.Len())
	}
	for i, s := range d.Spans {
		orig := x.Spans()[i]
		if s.ID != orig.ID || s.Kind != orig.Kind || s.Parent != orig.Parent || s.At != orig.At {
			t.Errorf("span %d changed in round trip: %+v != %+v", i, s, orig)
		}
	}
	if _, err := ParseDump([]byte("{nope")); err == nil {
		t.Error("ParseDump should reject invalid JSON")
	}
}

func TestRingEviction(t *testing.T) {
	x := New()
	x.MaxSpans = 4
	for i := 0; i < 10; i++ {
		x.Wake(event.Time(i)*ms, i, "t", 0, 0, "w", "wake", nil, nil)
	}
	if x.Len() != 4 {
		t.Fatalf("Len = %d, want 4", x.Len())
	}
	if x.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", x.Dropped())
	}
	spans := x.Spans()
	for i, s := range spans {
		if want := int64(6 + i); s.ID != want {
			t.Errorf("spans[%d].ID = %d, want %d (oldest-first order)", i, s.ID, want)
		}
	}
	// A link to an evicted parent terminates the walk instead of failing.
	d := x.Dump()
	if _, ok := d.Get(0); ok {
		t.Error("evicted span still retrievable")
	}
	if got := d.Ancestors(9); len(got) != 0 {
		t.Errorf("Ancestors of a root = %d spans, want 0", len(got))
	}
}

func TestTaskSpanNear(t *testing.T) {
	x := chainTracer()
	d := x.Dump()

	// At t=140ms exactly, the migration span is the answer.
	s, ok := d.TaskSpanNear("br.render", 140*ms)
	if !ok || s.Kind != KindMigration {
		t.Fatalf("TaskSpanNear(140ms) = %+v, %v; want the migration", s, ok)
	}
	// Before the migration, the wake.
	s, ok = d.TaskSpanNear("br.render", 50*ms)
	if !ok || s.Kind != KindWake {
		t.Fatalf("TaskSpanNear(50ms) = %+v, %v; want the wake", s, ok)
	}
	// Before any span for the task: earliest span after.
	s, ok = d.TaskSpanNear("br.render", 0)
	if !ok || s.Kind != KindWake {
		t.Fatalf("TaskSpanNear(0) = %+v, %v; want the wake", s, ok)
	}
	if _, ok := d.TaskSpanNear("nope", 0); ok {
		t.Error("TaskSpanNear found a span for an unknown task")
	}
}

func TestFormat(t *testing.T) {
	x := chainTracer()
	d := x.Dump()
	mig, _ := d.Get(2)
	out := mig.Format()
	for _, want := range []string{"migration", "inputs:", "up_threshold=700", "candidates:", "CHOSEN", "rejected: deeper-queue"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(mig.Line(), "br.render") {
		t.Errorf("Line() should name the task: %s", mig.Line())
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("kind %d has no name", k)
		}
		var back Kind
		if err := back.UnmarshalJSON([]byte(`"` + k.String() + `"`)); err != nil || back != k {
			t.Errorf("kind %v did not round-trip: %v %v", k, back, err)
		}
	}
	var k Kind
	if err := k.UnmarshalJSON([]byte(`"bogus"`)); err == nil {
		t.Error("UnmarshalJSON accepted an unknown kind")
	}
}

func TestSameDecision(t *testing.T) {
	a := Span{ID: 3, Parent: 1, At: 5, Kind: KindWake, Task: 0, TaskName: "t",
		Core: 4, FromCore: -1, Cluster: -1, Choice: "wake on cpu4",
		Inputs: []Input{{Name: "up_threshold", Value: 700}}}
	b := a
	b.ID, b.Parent = 99, 42 // identity differs
	b.Inputs = []Input{{Name: "up_threshold", Value: 350}}
	b.Candidates = []Candidate{{Core: 4}} // provenance differs
	if !a.SameDecision(b) {
		t.Fatal("spans differing only in identity/provenance must be the same decision")
	}
	c := a
	c.Core = 5
	if a.SameDecision(c) {
		t.Fatal("different destination core must not be the same decision")
	}
	d := a
	d.At++
	if a.SameDecision(d) {
		t.Fatal("different time must not be the same decision")
	}
}
