// Package xray is the causal decision tracer — the fourth observability
// layer, above events (telemetry), attribution (profile), and live serving
// (blserve). Where telemetry records that a migration happened and why in
// one word, xray records the decision itself: every candidate core that was
// considered with its queue depth and load, every threshold that was
// compared, the choice, and the rejection reason for each alternative —
// then links decisions causally (wake → placement → migration → DVFS
// response → thermal throttle → emergency hotplug) so a chain can be walked
// in either direction.
//
// The disabled path follows the repo-wide nil-observer contract: every
// subsystem holds a *Tracer that defaults to nil and guards recording with
// a single pointer check, every Tracer method is safe on nil, and the
// nil path allocates nothing (TestNilTracerZeroAlloc pins that budget).
// The tracer is a pure observer — a traced run produces byte-identical
// results (TestXrayPureObserver in the root package pins this against the
// golden corpus).
//
// Memory is bounded: the tracer is a flight recorder keeping the most
// recent MaxSpans decisions in a ring; causal links to spans that have
// fallen out of the ring simply terminate the walk.
package xray

import (
	"encoding/json"
	"fmt"

	"biglittle/internal/event"
)

// Kind classifies a decision span.
type Kind int

const (
	// KindWake: a sleeping task was placed on a core (the placement
	// decision, with the full candidate set).
	KindWake Kind = iota
	// KindMigration: the scheduler moved a task between cores.
	KindMigration
	// KindFreq: a DVFS governor stepped a cluster's frequency.
	KindFreq
	// KindHotplug: a core went online or offline.
	KindHotplug
	// KindThrottle: the thermal governor stepped a cluster's frequency cap.
	KindThrottle
	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindWake:
		return "wake"
	case KindMigration:
		return "migration"
	case KindFreq:
		return "freq"
	case KindHotplug:
		return "hotplug"
	case KindThrottle:
		return "throttle"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// MarshalJSON renders the kind as its string name so dumps read naturally
// and survive renumbering.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON accepts the string names written by MarshalJSON.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for i := Kind(0); i < numKinds; i++ {
		if i.String() == s {
			*k = i
			return nil
		}
	}
	return fmt.Errorf("xray: unknown kind %q", s)
}

// Input is one named quantity the decision compared — a threshold, a load
// signal, a temperature. A slice (not a map) keeps JSON output and tests
// deterministic and readable.
type Input struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Candidate is one alternative the decision considered. Rejected is empty
// for the chosen candidate and a short reason for every loser.
type Candidate struct {
	// Core is the candidate core ID (or -1 for cluster-level alternatives).
	Core int `json:"core"`
	// Type is the core type name ("little", "big", "tiny").
	Type string `json:"type,omitempty"`
	// QueueLen is the candidate's run-queue depth at decision time.
	QueueLen int `json:"queue_len"`
	// Load carries a kind-specific signal: per-core utilization percent for
	// governor decisions, zero otherwise.
	Load float64 `json:"load,omitempty"`
	// TargetMHz is the per-core frequency target (governor decisions only).
	TargetMHz int `json:"target_mhz,omitempty"`
	// Rejected says why this candidate lost ("" = chosen).
	Rejected string `json:"rejected,omitempty"`
}

// Span is one recorded decision with its provenance.
type Span struct {
	ID int64 `json:"id"`
	// Parent is the causally preceding span's ID (-1 for a chain root).
	// Wake placements are roots; a migration's parent is the task's previous
	// placement; a governor step's parent is the last placement onto the
	// cluster (the load arrival that drove DVFS); a throttle's parent is the
	// cluster's last governor step (the activity that heated it); an
	// emergency hotplug's parent is the cluster's last throttle step.
	Parent int64      `json:"parent"`
	At     event.Time `json:"at"`
	Kind   Kind       `json:"kind"`
	// Task/TaskName identify the subject task (wake, migration); Task is -1
	// otherwise.
	Task     int    `json:"task"`
	TaskName string `json:"task_name,omitempty"`
	// Core is the destination/affected core; FromCore the origin (-1 when
	// not applicable).
	Core     int `json:"core"`
	FromCore int `json:"from_core"`
	// Cluster is the affected cluster (freq, throttle, hotplug), else -1.
	Cluster int `json:"cluster"`
	// PrevMHz/MHz are the previous and new frequency (freq) or cap
	// (throttle, 0 = released).
	PrevMHz int `json:"prev_mhz,omitempty"`
	MHz     int `json:"mhz,omitempty"`
	// Choice is a one-line human summary of what was decided.
	Choice string `json:"choice"`
	// Reason is the interned telemetry reason for the decision.
	Reason string `json:"reason,omitempty"`
	// Inputs are the signals and thresholds the decision compared.
	Inputs []Input `json:"inputs,omitempty"`
	// Candidates are the alternatives considered, chosen one included.
	Candidates []Candidate `json:"candidates,omitempty"`
}

// DefaultMaxSpans bounds the flight-recorder ring (~8k decisions; a 30 s
// baseline run records a few thousand).
const DefaultMaxSpans = 8192

// Tracer records decision spans into a bounded ring and maintains the
// causal-link state. A nil *Tracer is valid everywhere and records nothing;
// every method is safe (and allocation-free) on nil.
//
// Like telemetry.Collector, the tracer assumes the single-threaded event
// engine and is not goroutine-safe.
type Tracer struct {
	// MaxSpans caps the ring (DefaultMaxSpans when zero; negative means
	// unbounded).
	MaxSpans int

	spans   []Span
	head    int // ring start once the buffer is full
	dropped int64
	nextID  int64

	// Causal-link state: the last relevant span ID per task / cluster.
	lastByTask         map[int]int64
	lastTaskByCluster  map[int]int64
	lastFreqByCluster  map[int]int64
	lastThermByCluster map[int]int64
}

// New returns an enabled tracer with the default ring bound.
func New() *Tracer {
	return &Tracer{
		lastByTask:         map[int]int64{},
		lastTaskByCluster:  map[int]int64{},
		lastFreqByCluster:  map[int]int64{},
		lastThermByCluster: map[int]int64{},
	}
}

// Enabled reports whether the tracer records anything (false for nil).
func (x *Tracer) Enabled() bool { return x != nil }

// record appends a span to the ring, assigning its ID.
func (x *Tracer) record(s Span) int64 {
	s.ID = x.nextID
	x.nextID++
	max := x.MaxSpans
	if max == 0 {
		max = DefaultMaxSpans
	}
	switch {
	case max < 0 || len(x.spans) < max:
		x.spans = append(x.spans, s)
	default:
		x.spans[x.head] = s
		x.head = (x.head + 1) % max
		x.dropped++
	}
	return s.ID
}

func (x *Tracer) link(m map[int]int64, key int) int64 {
	if id, ok := m[key]; ok {
		return id
	}
	return -1
}

// Wake records a wake-placement decision: task woke and was placed on core
// (in cluster). Wake spans are causal-chain roots. Returns the span ID
// (-1 on a nil tracer).
func (x *Tracer) Wake(at event.Time, task int, name string, core, cluster int, choice, reason string, inputs []Input, cands []Candidate) int64 {
	if x == nil {
		return -1
	}
	id := x.record(Span{
		Parent: -1, At: at, Kind: KindWake,
		Task: task, TaskName: name,
		Core: core, FromCore: -1, Cluster: cluster,
		Choice: choice, Reason: reason, Inputs: inputs, Candidates: cands,
	})
	x.lastByTask[task] = id
	x.lastTaskByCluster[cluster] = id
	return id
}

// Migration records a scheduler migration decision; its parent is the
// task's previous placement or migration span.
func (x *Tracer) Migration(at event.Time, task int, name string, from, to, cluster int, choice, reason string, inputs []Input, cands []Candidate) int64 {
	if x == nil {
		return -1
	}
	id := x.record(Span{
		Parent: x.link(x.lastByTask, task), At: at, Kind: KindMigration,
		Task: task, TaskName: name,
		Core: to, FromCore: from, Cluster: cluster,
		Choice: choice, Reason: reason, Inputs: inputs, Candidates: cands,
	})
	x.lastByTask[task] = id
	x.lastTaskByCluster[cluster] = id
	return id
}

// FreqStep records a governor frequency decision for a cluster; its parent
// is the last task placement onto that cluster — the load arrival the
// governor is responding to.
func (x *Tracer) FreqStep(at event.Time, cluster, prevMHz, mhz int, choice, reason string, inputs []Input, cands []Candidate) int64 {
	if x == nil {
		return -1
	}
	id := x.record(Span{
		Parent: x.link(x.lastTaskByCluster, cluster), At: at, Kind: KindFreq,
		Task: -1, Core: -1, FromCore: -1, Cluster: cluster,
		PrevMHz: prevMHz, MHz: mhz,
		Choice: choice, Reason: reason, Inputs: inputs, Candidates: cands,
	})
	x.lastFreqByCluster[cluster] = id
	return id
}

// Throttle records a thermal cap step for a cluster; its parent is the
// cluster's last governor step (the DVFS activity that heated it), falling
// back to the last task placement.
func (x *Tracer) Throttle(at event.Time, cluster, capMHz int, choice, reason string, inputs []Input) int64 {
	if x == nil {
		return -1
	}
	parent := x.link(x.lastFreqByCluster, cluster)
	if parent < 0 {
		parent = x.link(x.lastTaskByCluster, cluster)
	}
	id := x.record(Span{
		Parent: parent, At: at, Kind: KindThrottle,
		Task: -1, Core: -1, FromCore: -1, Cluster: cluster,
		MHz:    capMHz,
		Choice: choice, Reason: reason, Inputs: inputs,
	})
	x.lastThermByCluster[cluster] = id
	return id
}

// Hotplug records a core online/offline transition; its parent is the
// cluster's last throttle span when one exists (the emergency-hotplug
// chain), else -1 (manual hotplug).
func (x *Tracer) Hotplug(at event.Time, core, cluster int, choice, reason string, inputs []Input) int64 {
	if x == nil {
		return -1
	}
	id := x.record(Span{
		Parent: x.link(x.lastThermByCluster, cluster), At: at, Kind: KindHotplug,
		Task: -1, Core: core, FromCore: -1, Cluster: cluster,
		Choice: choice, Reason: reason, Inputs: inputs,
	})
	return id
}

// Len returns the number of spans currently held in the ring.
func (x *Tracer) Len() int {
	if x == nil {
		return 0
	}
	return len(x.spans)
}

// Dropped returns how many spans fell out of the bounded ring.
func (x *Tracer) Dropped() int64 {
	if x == nil {
		return 0
	}
	return x.dropped
}

// Spans returns the retained spans in recording order (a copy).
func (x *Tracer) Spans() []Span {
	if x == nil || len(x.spans) == 0 {
		return nil
	}
	out := make([]Span, 0, len(x.spans))
	out = append(out, x.spans[x.head:]...)
	out = append(out, x.spans[:x.head]...)
	return out
}

// Dump is the queryable snapshot of a tracer: the retained spans plus the
// drop count. It is what blxray consumes (via JSON) and what blserve serves
// at /xray.
type Dump struct {
	Spans   []Span `json:"spans"`
	Dropped int64  `json:"dropped"`
}

// Dump snapshots the tracer.
func (x *Tracer) Dump() Dump {
	return Dump{Spans: x.Spans(), Dropped: x.Dropped()}
}

// JSON renders the tracer's snapshot as indented JSON.
func (x *Tracer) JSON() ([]byte, error) {
	return json.MarshalIndent(x.Dump(), "", "  ")
}

// ParseDump reads a JSON dump written by Tracer.JSON (or served at /xray).
func ParseDump(data []byte) (*Dump, error) {
	var d Dump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("xray: bad dump: %w", err)
	}
	return &d, nil
}

// Get returns the span with the given ID, if it is still retained.
func (d *Dump) Get(id int64) (Span, bool) {
	for _, s := range d.Spans {
		if s.ID == id {
			return s, true
		}
	}
	return Span{}, false
}

// Ancestors walks the causal chain backwards from id (exclusive): the
// span's parent, grandparent, ..., oldest retained first is NOT the order —
// the closest cause comes first. The walk stops at a chain root or at a
// parent that has fallen out of the ring.
func (d *Dump) Ancestors(id int64) []Span {
	var out []Span
	s, ok := d.Get(id)
	for ok && s.Parent >= 0 {
		s, ok = d.Get(s.Parent)
		if ok {
			out = append(out, s)
		}
	}
	return out
}

// Descendants returns every retained span causally downstream of id
// (exclusive), in recording order — the forward walk of the chain.
func (d *Dump) Descendants(id int64) []Span {
	reach := map[int64]bool{id: true}
	var out []Span
	for _, s := range d.Spans {
		if s.Parent >= 0 && reach[s.Parent] {
			reach[s.ID] = true
			out = append(out, s)
		}
	}
	return out
}

// ByKind returns the retained spans of one kind, in recording order.
func (d *Dump) ByKind(k Kind) []Span {
	var out []Span
	for _, s := range d.Spans {
		if s.Kind == k {
			out = append(out, s)
		}
	}
	return out
}

// TaskSpanNear returns the wake/migration span for the named task closest
// to time at — the latest such span at or before `at`, else the earliest
// one after it. ok is false when the task has no retained placement spans.
func (d *Dump) TaskSpanNear(name string, at event.Time) (Span, bool) {
	var best Span
	found := false
	for _, s := range d.Spans {
		if s.TaskName != name || (s.Kind != KindWake && s.Kind != KindMigration) {
			continue
		}
		switch {
		case !found:
			best, found = s, true
		case best.At > at && s.At < best.At:
			// Anything earlier beats an after-`at` candidate.
			best = s
		case s.At <= at && s.At >= best.At:
			// Latest span at or before `at` wins.
			best = s
		}
	}
	return best, found
}

// Format renders one span as the multi-line text block blxray prints:
// header, inputs, and candidates with rejection reasons.
func (s Span) Format() string {
	b := fmt.Sprintf("#%d %s %s at %v", s.ID, s.Kind, s.Choice, s.At)
	if s.Reason != "" {
		b += fmt.Sprintf(" (reason: %s)", s.Reason)
	}
	b += "\n"
	if len(s.Inputs) > 0 {
		b += "  inputs:"
		for _, in := range s.Inputs {
			b += fmt.Sprintf(" %s=%g", in.Name, in.Value)
		}
		b += "\n"
	}
	if len(s.Candidates) > 0 {
		b += "  candidates:\n"
		for _, c := range s.Candidates {
			line := fmt.Sprintf("    cpu%-2d %-7s queue=%d", c.Core, c.Type, c.QueueLen)
			if c.TargetMHz > 0 {
				line += fmt.Sprintf(" util=%.0f%% target=%dMHz", c.Load, c.TargetMHz)
			}
			if c.Rejected == "" {
				line += "  CHOSEN"
			} else {
				line += "  rejected: " + c.Rejected
			}
			b += line + "\n"
		}
	}
	return b
}

// Line renders one span as the single-line summary blxray ls prints.
func (s Span) Line() string {
	who := ""
	if s.TaskName != "" {
		who = " " + s.TaskName
	}
	return fmt.Sprintf("#%-5d %-9s t=%-12v%s %s parent=%d", s.ID, s.Kind, s.At, who, s.Choice, s.Parent)
}

// SameDecision reports whether two spans record the same decision outcome:
// same kind, time, subject, placement, and frequency change. Span identity
// (ID, Parent) and provenance (Inputs, Candidates) are deliberately ignored —
// two runs with different tunables legitimately record different threshold
// inputs on every span, and candidate tables encode surrounding state; what
// makes a decision *divergent* is the outcome going a different way. Cross-run
// diffing (internal/delta) aligns span streams with this predicate and then
// reports the ignored provenance fields of the first non-matching pair.
func (s Span) SameDecision(o Span) bool {
	return s.Kind == o.Kind &&
		s.At == o.At &&
		s.Task == o.Task &&
		s.TaskName == o.TaskName &&
		s.Core == o.Core &&
		s.FromCore == o.FromCore &&
		s.Cluster == o.Cluster &&
		s.PrevMHz == o.PrevMHz &&
		s.MHz == o.MHz &&
		s.Choice == o.Choice &&
		s.Reason == o.Reason
}
