package session

import (
	"math"
	"strings"
	"testing"

	"biglittle/internal/apps"
	"biglittle/internal/event"
)

func mustApp(t *testing.T, name string) apps.App {
	t.Helper()
	a, err := apps.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSessionPhases(t *testing.T) {
	cfg := DefaultConfig(
		Phase{App: mustApp(t, "browser"), Duration: 5 * event.Second},
		Phase{App: mustApp(t, "video_player"), Duration: 5 * event.Second},
		Phase{App: mustApp(t, "eternity_warrior"), Duration: 5 * event.Second},
	)
	r := Run(cfg)
	if len(r.Phases) != 3 {
		t.Fatalf("%d phases", len(r.Phases))
	}
	if r.Duration != 15*event.Second {
		t.Fatalf("duration %v", r.Duration)
	}
	// Per-phase energies sum to the total.
	sum := 0.0
	for _, p := range r.Phases {
		sum += p.EnergyJ
		if p.AvgPowerMW < 250 {
			t.Errorf("%s: phase power %.0f below base rail", p.App, p.AvgPowerMW)
		}
	}
	if math.Abs(sum-r.TotalEnergyJ) > 1e-9 {
		t.Fatalf("phase energies %.3f != total %.3f", sum, r.TotalEnergyJ)
	}
	// Each phase reports its own app's metrics.
	if r.Phases[0].Interactions == 0 {
		t.Error("browser phase recorded no page loads")
	}
	if r.Phases[1].AvgFPS < 20 {
		t.Errorf("video phase FPS %.1f", r.Phases[1].AvgFPS)
	}
	if r.Phases[2].AvgFPS < 30 {
		t.Errorf("game phase FPS %.1f", r.Phases[2].AvgFPS)
	}
	// The game phase burns more than the browser phase.
	if r.Phases[2].AvgPowerMW <= r.Phases[0].AvgPowerMW {
		t.Errorf("game %.0f mW <= browser %.0f mW", r.Phases[2].AvgPowerMW, r.Phases[0].AvgPowerMW)
	}
	if r.TotalDrainPct <= 0 {
		t.Fatal("no battery drain")
	}
}

func TestSessionDeterministic(t *testing.T) {
	mk := func() Result {
		return Run(DefaultConfig(
			Phase{App: mustApp(t, "pdf_reader"), Duration: 3 * event.Second},
			Phase{App: mustApp(t, "angry_bird"), Duration: 3 * event.Second},
		))
	}
	a, b := mk(), mk()
	if a.TotalEnergyJ != b.TotalEnergyJ {
		t.Fatal("session nondeterministic")
	}
}

func TestSessionEmpty(t *testing.T) {
	r := Run(Config{})
	if len(r.Phases) != 0 || r.TotalEnergyJ != 0 {
		t.Fatalf("empty session %+v", r)
	}
}

func TestSessionRender(t *testing.T) {
	r := Run(DefaultConfig(
		Phase{App: mustApp(t, "youtube"), Duration: 3 * event.Second},
	))
	out := Render(r)
	if !strings.Contains(out, "youtube") || !strings.Contains(out, "total") {
		t.Fatalf("render:\n%s", out)
	}
}

// Phase boundaries do not leak workload activity: a heavy phase followed by
// a quiet one ends up quiet (generators stop at their phase end).
func TestPhaseIsolation(t *testing.T) {
	r := Run(DefaultConfig(
		Phase{App: mustApp(t, "bbench"), Duration: 5 * event.Second},
		Phase{App: mustApp(t, "browser"), Duration: 5 * event.Second},
	))
	if r.Phases[1].AvgPowerMW > r.Phases[0].AvgPowerMW/1.5 {
		t.Errorf("quiet phase %.0f mW vs heavy phase %.0f mW: bbench leaked",
			r.Phases[1].AvgPowerMW, r.Phases[0].AvgPowerMW)
	}
}
