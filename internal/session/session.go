// Package session runs multi-app usage scenarios — a sequence of
// application phases (browse, watch, play, ...) inside one continuous
// simulation, with per-phase performance, power, and battery accounting.
// The paper characterizes apps in isolation; sessions show how the
// asymmetric platform behaves across a realistic stretch of device use,
// including the governor and load-tracker state carried across app
// switches.
package session

import (
	"fmt"
	"math/rand"
	"text/tabwriter"

	"biglittle/internal/apps"
	"biglittle/internal/battery"
	"biglittle/internal/delta"
	"biglittle/internal/event"
	"biglittle/internal/governor"
	"biglittle/internal/metrics"
	"biglittle/internal/platform"
	"biglittle/internal/power"
	"biglittle/internal/profile"
	"biglittle/internal/sched"
	"biglittle/internal/telemetry"
	"biglittle/internal/thermal"
	"biglittle/internal/workload"
	"biglittle/internal/xray"
)

// Phase is one segment of a session.
type Phase struct {
	App      apps.App
	Duration event.Time
}

// Config describes a session run.
type Config struct {
	Phases []Phase
	Seed   int64
	Cores  platform.CoreConfig
	Sched  sched.Config
	Gov    governor.InteractiveConfig
	Power  power.Params
	Pack   battery.Pack

	// Telemetry, when non-nil, receives scheduler/governor/power events for
	// the whole session, plus the "latency_ms" and "frame_time_ms"
	// histograms across all phases. Nil disables recording at near-zero
	// cost.
	Telemetry *telemetry.Collector
	// Profiler, when non-nil, attributes the whole session to individual
	// tasks (run/wait time by core type, frequency residency, energy,
	// migrations). Threads live per phase, so the attribution table carries
	// every phase's threads side by side.
	Profiler *profile.Profiler
	// Thermal, when non-nil, attaches the exponential thermal model and
	// its throttling governor cap; MaxTempC/ThrottledPct land on Result.
	Thermal *thermal.Params
	// Xray, when non-nil, records causal decision spans (wake placements,
	// migrations, frequency steps, throttle caps, hotplug) across the whole
	// session — the flight recorder cmd/blserve serves at /xray. Nil
	// disables tracing at one pointer check per decision.
	Xray *xray.Tracer
	// Check, when non-nil, attaches an invariant auditor (see internal/check)
	// that observes the whole session and reconciles its totals at the end.
	Check Checker
	// Digest, when non-nil, folds the session's state into chained
	// per-window digests (see internal/delta) — the same cross-run
	// fingerprint core.Run records, spanning every phase.
	Digest *delta.Recorder
}

// Checker is the session-side view of an invariant auditor; *check.Auditor
// satisfies it. Declared here (identically to core.Checker) so session does
// not import internal/check, which imports internal/core.
type Checker interface {
	Attach(sys *sched.System, pw power.Params)
	Finish(elapsed event.Time, meterMJ float64)
}

// DefaultConfig returns a session on the paper's baseline platform with the
// Galaxy S5 battery.
func DefaultConfig(phases ...Phase) Config {
	return Config{
		Phases: phases,
		Seed:   1,
		Cores:  platform.Baseline(),
		Sched:  sched.DefaultConfig(),
		Gov:    governor.DefaultInteractive(),
		Power:  power.Default(),
		Pack:   battery.GalaxyS5(),
	}
}

// PhaseResult holds one phase's metrics.
type PhaseResult struct {
	App          string
	Duration     event.Time
	AvgPowerMW   float64
	EnergyJ      float64
	DrainPct     float64
	AvgFPS       float64
	Interactions int
	MeanLatency  event.Time
	BigPct       float64
}

// Result summarizes a session.
type Result struct {
	Phases        []PhaseResult
	Duration      event.Time
	TotalEnergyJ  float64
	TotalDrainPct float64
	AvgPowerMW    float64
	// Thermal metrics across the whole session (zero unless Config.Thermal
	// was set).
	MaxTempC     float64
	ThrottledPct float64
}

// Run executes the session. Phases run back to back on one platform: the
// governor's frequencies and each surviving thread's load history persist
// across switches, as on a real device.
func Run(cfg Config) Result {
	if len(cfg.Phases) == 0 {
		return Result{}
	}
	l := NewLive(cfg)
	l.Advance(l.Duration())
	return l.Result()
}

// Live is an incrementally-advanced session: the same assembly and phase
// sequencing as Run, but the caller controls how far simulated time moves on
// each Advance call. This is what cmd/blserve drives, pacing simulated time
// against the wall clock while HTTP handlers read the attached telemetry
// collector, profiler, and sampler between steps.
//
// Live is not goroutine-safe: Advance and any reads of the attached
// observers (including Profiler snapshots and telemetry rendering) must be
// externally serialized.
type Live struct {
	Cfg     Config
	Eng     *event.Engine
	Sys     *sched.System
	Sampler *metrics.Sampler

	res        Result
	therm      *thermal.Model
	rng        *rand.Rand
	phaseIdx   int        // index of the phase currently running (or next to build)
	phaseStart event.Time // start time of phase phaseIdx
	ctx        *workload.Ctx
	prevEnergy float64
	prevBig    int
	prevActive int
	done       bool
}

// NewLive assembles the session platform exactly as Run does and returns it
// ready to Advance. Zero-valued config fields get the same defaults as Run.
func NewLive(cfg Config) *Live {
	eng := event.New()
	soc := platform.Exynos5422()
	if cfg.Cores.Tiny > 0 {
		soc = platform.Exynos5422Tiny()
	}
	if cfg.Cores == (platform.CoreConfig{}) {
		cfg.Cores = platform.Baseline()
	}
	if err := cfg.Cores.Apply(soc); err != nil {
		panic(err)
	}
	if cfg.Sched == (sched.Config{}) {
		cfg.Sched = sched.DefaultConfig()
	}
	if cfg.Power == (power.Params{}) {
		cfg.Power = power.Default()
	}
	if cfg.Pack == (battery.Pack{}) {
		cfg.Pack = battery.GalaxyS5()
	}
	sys := sched.New(eng, soc, cfg.Sched)
	sys.Tel = cfg.Telemetry
	sys.Prof = cfg.Profiler
	sys.Xray = cfg.Xray
	sys.Start()
	g := governor.NewInteractive(sys, cfg.Gov)
	g.Tel = cfg.Telemetry
	g.Xray = cfg.Xray
	g.Start()
	sampler := metrics.NewSampler(sys, cfg.Power)
	sampler.Tel = cfg.Telemetry
	sampler.Prof = cfg.Profiler
	sampler.Start()

	// As in core.Run, the auditor attaches directly after the sampler so its
	// sampling events always fire right after the sampler's and both read
	// identical state.
	if cfg.Check != nil {
		cfg.Check.Attach(sys, cfg.Power)
	}

	var therm *thermal.Model
	if cfg.Thermal != nil {
		therm = thermal.Attach(sys, cfg.Power, *cfg.Thermal)
		therm.Tel = cfg.Telemetry
		therm.Xray = cfg.Xray
		therm.Start()
	}

	// As in core.Run, the digest recorder attaches last among the tick
	// observers; the window default derives from the summed phase plan.
	var total event.Time
	for _, p := range cfg.Phases {
		total += p.Duration
	}
	cfg.Digest.Attach(sys, sampler, therm, total)

	l := &Live{Cfg: cfg, Eng: eng, Sys: sys, Sampler: sampler, therm: therm}
	l.rngInit()
	if len(cfg.Phases) == 0 {
		l.done = true
	}
	return l
}

// rng is stored on the first phase ctx; keep one source for the session.
func (l *Live) rngInit() {
	l.ctx = nil
	l.rng = rand.New(rand.NewSource(l.Cfg.Seed))
}

// Duration returns the total session length (the sum of phase durations).
func (l *Live) Duration() event.Time {
	var d event.Time
	for _, ph := range l.Cfg.Phases {
		d += ph.Duration
	}
	return d
}

// Now returns the current simulated time.
func (l *Live) Now() event.Time { return l.Eng.Now() }

// Done reports whether every phase has completed.
func (l *Live) Done() bool { return l.done }

// Phase returns the name of the phase currently running ("" when done).
func (l *Live) Phase() string {
	if l.done || l.phaseIdx >= len(l.Cfg.Phases) {
		return ""
	}
	return l.Cfg.Phases[l.phaseIdx].App.Name
}

// buildPhase constructs the current phase's workload at its start time,
// mirroring one loop iteration of the original Run.
func (l *Live) buildPhase() {
	ph := l.Cfg.Phases[l.phaseIdx]
	phaseEnd := l.phaseStart + ph.Duration
	l.ctx = &workload.Ctx{
		Eng:      l.Eng,
		Sys:      l.Sys,
		Rng:      l.rng,
		Duration: phaseEnd,
		FPS:      &metrics.FPSTracker{},
		Lat:      &metrics.LatencyTracker{},
	}
	if tel := l.Cfg.Telemetry; tel != nil {
		lat := tel.Histogram("latency_ms")
		l.ctx.Lat.Observe = func(d event.Time) { lat.Observe(d.Milliseconds()) }
	}
	ph.App.Build(l.ctx)
}

// finishPhase captures the completed phase's metrics (energy delta, big-core
// share, performance) into the session result.
func (l *Live) finishPhase() {
	ph := l.Cfg.Phases[l.phaseIdx]
	ctx := l.ctx

	energy := l.Sampler.EnergyMJ()
	dE := (energy - l.prevEnergy) / 1000
	l.prevEnergy = energy

	// Per-phase big-core share from the matrix deltas.
	big, active := 0, 0
	for b := 0; b <= 4; b++ {
		for lc := 0; lc <= 4; lc++ {
			n := l.Sampler.Matrix[b][lc]
			if b == 0 && lc == 0 {
				continue
			}
			active += n
			if b > 0 {
				big += n
			}
		}
	}
	bigPct := 0.0
	if active > l.prevActive {
		bigPct = 100 * float64(big-l.prevBig) / float64(active-l.prevActive)
	}
	l.prevBig, l.prevActive = big, active

	if tel := l.Cfg.Telemetry; tel != nil {
		ft := tel.Histogram("frame_time_ms")
		times := ctx.FPS.Times()
		for i := 1; i < len(times); i++ {
			ft.Observe((times[i] - times[i-1]).Milliseconds())
		}
	}

	l.res.Phases = append(l.res.Phases, PhaseResult{
		App:          ph.App.Name,
		Duration:     ph.Duration,
		AvgPowerMW:   dE * 1000 / ph.Duration.Seconds(),
		EnergyJ:      dE,
		DrainPct:     l.Cfg.Pack.DrainPct(dE * 1000),
		AvgFPS:       ctx.FPS.Avg(ph.Duration),
		Interactions: ctx.Lat.N,
		MeanLatency:  ctx.Lat.Mean(),
		BigPct:       bigPct,
	})
	l.res.TotalEnergyJ += dE
	l.res.Duration += ph.Duration
}

// Advance runs the simulation up to absolute simulated time `to`, building
// each phase's workload at its start and capturing its metrics at its end —
// the same sequencing as Run, so a session advanced in any step sizes
// produces the identical Result. Returns true once every phase has
// completed; times beyond the session end are clamped.
func (l *Live) Advance(to event.Time) bool {
	if l.done {
		return true
	}
	if max := l.Duration(); to > max {
		to = max
	}
	for l.phaseIdx < len(l.Cfg.Phases) {
		phaseEnd := l.phaseStart + l.Cfg.Phases[l.phaseIdx].Duration
		if l.ctx == nil {
			l.buildPhase()
		}
		target := to
		if phaseEnd < target {
			target = phaseEnd
		}
		l.Eng.Run(target)
		if target < phaseEnd {
			return false // mid-phase: resume here on the next Advance
		}
		l.finishPhase()
		l.ctx = nil
		l.phaseStart = phaseEnd
		l.phaseIdx++
		if phaseEnd >= to && l.phaseIdx < len(l.Cfg.Phases) {
			return false
		}
	}
	l.done = true
	l.res.TotalDrainPct = l.Cfg.Pack.DrainPct(l.res.TotalEnergyJ * 1000)
	if l.res.Duration > 0 {
		l.res.AvgPowerMW = l.res.TotalEnergyJ * 1000 / l.res.Duration.Seconds()
	}
	if l.therm != nil {
		l.res.MaxTempC = l.therm.MaxTempC
		l.res.ThrottledPct = l.therm.ThrottledPct(l.res.Duration)
	}
	// Finish after the result is final so reconciliation can never perturb
	// what the caller observes.
	if l.Cfg.Check != nil {
		l.Cfg.Check.Finish(l.res.Duration, l.Sampler.EnergyMJ())
	}
	return true
}

// Result returns the session result so far: completed phases only, with
// session totals filled in once every phase is done.
func (l *Live) Result() Result { return l.res }

// Render formats a session result.
func Render(r Result) string {
	out := ""
	w := newTable(&out)
	fmt.Fprintln(w, "Session: per-phase power, performance, and battery drain")
	fmt.Fprintln(w, "phase\tduration\tavg mW\tenergy J\tdrain %\tbig %\tperf")
	for _, p := range r.Phases {
		perf := fmt.Sprintf("%.1f fps", p.AvgFPS)
		if p.Interactions > 0 {
			perf = fmt.Sprintf("%v x%d", p.MeanLatency, p.Interactions)
		}
		fmt.Fprintf(w, "%s\t%v\t%.0f\t%.1f\t%.2f\t%.1f\t%s\n",
			p.App, p.Duration, p.AvgPowerMW, p.EnergyJ, p.DrainPct, p.BigPct, perf)
	}
	fmt.Fprintf(w, "total\t%v\t%.0f\t%.1f\t%.2f\t\t\n",
		r.Duration, r.AvgPowerMW, r.TotalEnergyJ, r.TotalDrainPct)
	w.Flush()
	return out
}

func newTable(out *string) *tabwriter.Writer {
	return tabwriter.NewWriter(&stringWriter{out}, 2, 4, 2, ' ', 0)
}

type stringWriter struct{ s *string }

func (w *stringWriter) Write(p []byte) (int, error) {
	*w.s += string(p)
	return len(p), nil
}
