// Package session runs multi-app usage scenarios — a sequence of
// application phases (browse, watch, play, ...) inside one continuous
// simulation, with per-phase performance, power, and battery accounting.
// The paper characterizes apps in isolation; sessions show how the
// asymmetric platform behaves across a realistic stretch of device use,
// including the governor and load-tracker state carried across app
// switches.
package session

import (
	"fmt"
	"math/rand"
	"text/tabwriter"

	"biglittle/internal/apps"
	"biglittle/internal/battery"
	"biglittle/internal/event"
	"biglittle/internal/governor"
	"biglittle/internal/metrics"
	"biglittle/internal/platform"
	"biglittle/internal/power"
	"biglittle/internal/sched"
	"biglittle/internal/workload"
)

// Phase is one segment of a session.
type Phase struct {
	App      apps.App
	Duration event.Time
}

// Config describes a session run.
type Config struct {
	Phases []Phase
	Seed   int64
	Cores  platform.CoreConfig
	Sched  sched.Config
	Gov    governor.InteractiveConfig
	Power  power.Params
	Pack   battery.Pack
}

// DefaultConfig returns a session on the paper's baseline platform with the
// Galaxy S5 battery.
func DefaultConfig(phases ...Phase) Config {
	return Config{
		Phases: phases,
		Seed:   1,
		Cores:  platform.Baseline(),
		Sched:  sched.DefaultConfig(),
		Gov:    governor.DefaultInteractive(),
		Power:  power.Default(),
		Pack:   battery.GalaxyS5(),
	}
}

// PhaseResult holds one phase's metrics.
type PhaseResult struct {
	App          string
	Duration     event.Time
	AvgPowerMW   float64
	EnergyJ      float64
	DrainPct     float64
	AvgFPS       float64
	Interactions int
	MeanLatency  event.Time
	BigPct       float64
}

// Result summarizes a session.
type Result struct {
	Phases        []PhaseResult
	Duration      event.Time
	TotalEnergyJ  float64
	TotalDrainPct float64
	AvgPowerMW    float64
}

// Run executes the session. Phases run back to back on one platform: the
// governor's frequencies and each surviving thread's load history persist
// across switches, as on a real device.
func Run(cfg Config) Result {
	if len(cfg.Phases) == 0 {
		return Result{}
	}
	eng := event.New()
	soc := platform.Exynos5422()
	if cfg.Cores.Tiny > 0 {
		soc = platform.Exynos5422Tiny()
	}
	if cfg.Cores == (platform.CoreConfig{}) {
		cfg.Cores = platform.Baseline()
	}
	if err := cfg.Cores.Apply(soc); err != nil {
		panic(err)
	}
	if cfg.Sched == (sched.Config{}) {
		cfg.Sched = sched.DefaultConfig()
	}
	if cfg.Power == (power.Params{}) {
		cfg.Power = power.Default()
	}
	if cfg.Pack == (battery.Pack{}) {
		cfg.Pack = battery.GalaxyS5()
	}
	sys := sched.New(eng, soc, cfg.Sched)
	sys.Start()
	governor.NewInteractive(sys, cfg.Gov).Start()
	sampler := metrics.NewSampler(sys, cfg.Power)
	sampler.Start()
	rng := rand.New(rand.NewSource(cfg.Seed))

	var res Result
	phaseStart := event.Time(0)
	prevEnergy := 0.0
	prevBig, prevActive := 0, 0
	for _, ph := range cfg.Phases {
		phaseEnd := phaseStart + ph.Duration
		ctx := &workload.Ctx{
			Eng:      eng,
			Sys:      sys,
			Rng:      rng,
			Duration: phaseEnd,
			FPS:      &metrics.FPSTracker{},
			Lat:      &metrics.LatencyTracker{},
		}
		ph.App.Build(ctx)
		eng.Run(phaseEnd)

		energy := sampler.EnergyMJ()
		dE := (energy - prevEnergy) / 1000
		prevEnergy = energy

		// Per-phase big-core share from the matrix deltas.
		big, active := 0, 0
		for b := 0; b <= 4; b++ {
			for l := 0; l <= 4; l++ {
				n := sampler.Matrix[b][l]
				if b == 0 && l == 0 {
					continue
				}
				active += n
				if b > 0 {
					big += n
				}
			}
		}
		bigPct := 0.0
		if active > prevActive {
			bigPct = 100 * float64(big-prevBig) / float64(active-prevActive)
		}
		prevBig, prevActive = big, active

		pr := PhaseResult{
			App:          ph.App.Name,
			Duration:     ph.Duration,
			AvgPowerMW:   dE * 1000 / ph.Duration.Seconds(),
			EnergyJ:      dE,
			DrainPct:     cfg.Pack.DrainPct(dE * 1000),
			AvgFPS:       ctx.FPS.Avg(ph.Duration),
			Interactions: ctx.Lat.N,
			MeanLatency:  ctx.Lat.Mean(),
			BigPct:       bigPct,
		}
		res.Phases = append(res.Phases, pr)
		res.TotalEnergyJ += dE
		res.Duration += ph.Duration
		phaseStart = phaseEnd
	}
	res.TotalDrainPct = cfg.Pack.DrainPct(res.TotalEnergyJ * 1000)
	if res.Duration > 0 {
		res.AvgPowerMW = res.TotalEnergyJ * 1000 / res.Duration.Seconds()
	}
	return res
}

// Render formats a session result.
func Render(r Result) string {
	out := ""
	w := newTable(&out)
	fmt.Fprintln(w, "Session: per-phase power, performance, and battery drain")
	fmt.Fprintln(w, "phase\tduration\tavg mW\tenergy J\tdrain %\tbig %\tperf")
	for _, p := range r.Phases {
		perf := fmt.Sprintf("%.1f fps", p.AvgFPS)
		if p.Interactions > 0 {
			perf = fmt.Sprintf("%v x%d", p.MeanLatency, p.Interactions)
		}
		fmt.Fprintf(w, "%s\t%v\t%.0f\t%.1f\t%.2f\t%.1f\t%s\n",
			p.App, p.Duration, p.AvgPowerMW, p.EnergyJ, p.DrainPct, p.BigPct, perf)
	}
	fmt.Fprintf(w, "total\t%v\t%.0f\t%.1f\t%.2f\t\t\n",
		r.Duration, r.AvgPowerMW, r.TotalEnergyJ, r.TotalDrainPct)
	w.Flush()
	return out
}

func newTable(out *string) *tabwriter.Writer {
	return tabwriter.NewWriter(&stringWriter{out}, 2, 4, 2, ' ', 0)
}

type stringWriter struct{ s *string }

func (w *stringWriter) Write(p []byte) (int, error) {
	*w.s += string(p)
	return len(p), nil
}
