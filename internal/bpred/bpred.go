// Package bpred implements dynamic branch predictors (bimodal and gshare
// two-bit-counter schemes) and a structured branch-trace generator, used to
// validate the uarch package's calibration: the Cortex-A15 model assumes
// its larger predictor resolves ~45% of the mispredictions the Cortex-A7's
// simpler predictor suffers (PredictorFactor 0.55). Here the factor is
// *measured* by running both predictor classes over branch traces whose
// structure (loops, biased branches, correlated pairs) is derived from the
// SPEC-like workload profiles.
package bpred

// Predictor is a dynamic branch predictor.
type Predictor interface {
	// Predict returns the predicted direction for the branch at site.
	Predict(site uint32) bool
	// Update trains the predictor with the actual outcome.
	Update(site uint32, taken bool)
	Name() string
}

// counter is a 2-bit saturating counter: 0,1 predict not-taken; 2,3 taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// StaticTaken predicts every branch taken — the baseline.
type StaticTaken struct{}

func (StaticTaken) Predict(uint32) bool { return true }
func (StaticTaken) Update(uint32, bool) {}
func (StaticTaken) Name() string        { return "static-taken" }

// Bimodal is a per-site table of 2-bit counters — the class of predictor in
// small in-order cores like the Cortex-A7.
type Bimodal struct {
	table []counter
	mask  uint32
}

// NewBimodal builds a bimodal predictor with entries slots (rounded up to a
// power of two), counters initialized weakly taken.
func NewBimodal(entries int) *Bimodal {
	n := 1
	for n < entries {
		n <<= 1
	}
	t := make([]counter, n)
	for i := range t {
		t[i] = 2
	}
	return &Bimodal{table: t, mask: uint32(n - 1)}
}

func (b *Bimodal) Predict(site uint32) bool { return b.table[site&b.mask].taken() }

func (b *Bimodal) Update(site uint32, taken bool) {
	i := site & b.mask
	b.table[i] = b.table[i].update(taken)
}

func (b *Bimodal) Name() string { return "bimodal" }

// GShare XORs a global history register into the table index, capturing
// correlated branch behaviour — the class of predictor in big out-of-order
// cores like the Cortex-A15.
type GShare struct {
	table    []counter
	mask     uint32
	history  uint32
	histBits uint
}

// NewGShare builds a gshare predictor with entries slots and histBits of
// global history.
func NewGShare(entries int, histBits uint) *GShare {
	n := 1
	for n < entries {
		n <<= 1
	}
	t := make([]counter, n)
	for i := range t {
		t[i] = 2
	}
	return &GShare{table: t, mask: uint32(n - 1), histBits: histBits}
}

func (g *GShare) index(site uint32) uint32 {
	return (site ^ g.history) & g.mask
}

func (g *GShare) Predict(site uint32) bool { return g.table[g.index(site)].taken() }

func (g *GShare) Update(site uint32, taken bool) {
	i := g.index(site)
	g.table[i] = g.table[i].update(taken)
	g.history = (g.history << 1) & ((1 << g.histBits) - 1)
	if taken {
		g.history |= 1
	}
}

func (g *GShare) Name() string { return "gshare" }

// Tournament combines a bimodal and a gshare predictor behind a per-site
// chooser (the Alpha 21264 scheme): history-friendly branches use gshare,
// history-hostile ones fall back to bimodal. This is the class of hybrid
// predictor in big out-of-order cores.
type Tournament struct {
	bimodal *Bimodal
	gshare  *GShare
	meta    []counter // >=2 selects gshare
	mask    uint32
}

// NewTournament builds a tournament predictor with the given component
// sizes and history length.
func NewTournament(entries int, histBits uint) *Tournament {
	n := 1
	for n < entries {
		n <<= 1
	}
	meta := make([]counter, n)
	for i := range meta {
		meta[i] = 1 // weakly prefer bimodal until history proves useful
	}
	return &Tournament{
		bimodal: NewBimodal(n),
		gshare:  NewGShare(n, histBits),
		meta:    meta,
		mask:    uint32(n - 1),
	}
}

func (t *Tournament) Predict(site uint32) bool {
	if t.meta[site&t.mask].taken() {
		return t.gshare.Predict(site)
	}
	return t.bimodal.Predict(site)
}

func (t *Tournament) Update(site uint32, taken bool) {
	bOK := t.bimodal.Predict(site) == taken
	gOK := t.gshare.Predict(site) == taken
	i := site & t.mask
	if gOK && !bOK {
		t.meta[i] = t.meta[i].update(true)
	} else if bOK && !gOK {
		t.meta[i] = t.meta[i].update(false)
	}
	t.bimodal.Update(site, taken)
	t.gshare.Update(site, taken)
}

func (t *Tournament) Name() string { return "tournament" }

// CortexA7Predictor approximates the A7's front end: a small bimodal table.
func CortexA7Predictor() Predictor { return NewBimodal(512) }

// CortexA15Predictor approximates the A15's front end: a large tournament
// predictor with global history.
func CortexA15Predictor() Predictor { return NewTournament(4096, 10) }

// Measure runs a predictor over a branch trace and returns its
// misprediction rate.
func Measure(p Predictor, trace []Branch) float64 {
	if len(trace) == 0 {
		return 0
	}
	miss := 0
	for _, b := range trace {
		if p.Predict(b.Site) != b.Taken {
			miss++
		}
		p.Update(b.Site, b.Taken)
	}
	return float64(miss) / float64(len(trace))
}
