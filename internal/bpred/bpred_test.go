package bpred

import (
	"testing"

	"biglittle/internal/synth"
)

func loopTrace(period, n int) []Branch {
	out := make([]Branch, n)
	for i := 0; i < n; i++ {
		out[i] = Branch{Site: 7, Taken: (i+1)%period != 0}
	}
	return out
}

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 || !c.taken() {
		t.Fatalf("counter %d after saturating taken", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c != 0 || c.taken() {
		t.Fatalf("counter %d after saturating not-taken", c)
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	// A heavily-taken loop branch: bimodal should mispredict only the exits.
	tr := loopTrace(10, 10000)
	rate := Measure(NewBimodal(512), tr)
	// Exits are 10% of branches; bimodal mispredicts each exit (and the
	// first post-exit iteration at worst): expect ~10%, far below 50%.
	if rate > 0.15 {
		t.Fatalf("bimodal mispredict %.3f on a 90%%-taken loop", rate)
	}
	if static := Measure(StaticTaken{}, tr); static < 0.09 || static > 0.11 {
		t.Fatalf("static-taken baseline %.3f, want ~0.10", static)
	}
}

func TestGShareLearnsPattern(t *testing.T) {
	// A short loop's exit is perfectly predictable from history: gshare
	// approaches zero mispredicts, bimodal stays stuck at the exit rate.
	tr := loopTrace(4, 20000)
	g := Measure(NewGShare(4096, 10), tr)
	b := Measure(NewBimodal(512), tr)
	if g > b/2 {
		t.Fatalf("gshare %.4f not clearly better than bimodal %.4f on a periodic pattern", g, b)
	}
	if g > 0.05 {
		t.Fatalf("gshare mispredict %.4f on a period-4 loop, want near zero", g)
	}
}

func TestCorrelatedBranch(t *testing.T) {
	// A branch that repeats the previous outcome: invisible to bimodal
	// (50/50 per site), captured by gshare's history.
	tr := make([]Branch, 20000)
	prev := true
	r := uint32(12345)
	for i := range tr {
		r = r*1664525 + 1013904223
		if i%2 == 0 {
			prev = r%100 < 50
			tr[i] = Branch{Site: 1, Taken: prev}
		} else {
			tr[i] = Branch{Site: 2, Taken: prev} // copies branch 1
		}
	}
	g := Measure(NewGShare(4096, 10), tr)
	b := Measure(NewBimodal(512), tr)
	if g > 0.35 || g > b {
		t.Fatalf("gshare %.3f vs bimodal %.3f on correlated branches", g, b)
	}
}

func TestTraceDeterministic(t *testing.T) {
	p, _ := synth.ProfileByName("gobmk")
	a := Trace(p, 5000)
	b := Trace(p, 5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverged at %d", i)
		}
	}
}

func TestTraceDifficultyTracksProfile(t *testing.T) {
	easy, _ := synth.ProfileByName("libquantum") // mispredict 0.01
	hard, _ := synth.ProfileByName("gobmk")      // mispredict 0.10
	pe := Measure(NewBimodal(512), Trace(easy, 50000))
	ph := Measure(NewBimodal(512), Trace(hard, 50000))
	if pe >= ph {
		t.Fatalf("bimodal mispredicts: easy %.3f >= hard %.3f", pe, ph)
	}
}

// Calibration validation: across the SPEC profiles, the A15-class gshare
// resolves a substantial share of the A7-class bimodal's mispredictions —
// consistent with the uarch model's PredictorFactor of 0.55.
func TestPredictorFactorCalibration(t *testing.T) {
	var sumRatio float64
	n := 0
	for _, p := range synth.SPEC() {
		tr := Trace(p, 60000)
		b := Measure(CortexA7Predictor(), tr)
		g := Measure(CortexA15Predictor(), tr)
		if b <= 0 {
			continue
		}
		if g > b*1.05 {
			t.Errorf("%s: gshare (%.4f) worse than bimodal (%.4f)", p.Name, g, b)
		}
		sumRatio += g / b
		n++
	}
	avg := sumRatio / float64(n)
	if avg < 0.3 || avg > 0.85 {
		t.Errorf("measured predictor factor %.2f outside the calibrated 0.55 band [0.3, 0.85]", avg)
	}
	t.Logf("measured gshare/bimodal mispredict ratio: %.2f (uarch assumes 0.55)", avg)
}

func TestPredictorNames(t *testing.T) {
	if NewBimodal(10).Name() != "bimodal" || NewGShare(10, 4).Name() != "gshare" ||
		(StaticTaken{}).Name() != "static-taken" {
		t.Fatal("names")
	}
}

func TestMeasureEmpty(t *testing.T) {
	if Measure(NewBimodal(16), nil) != 0 {
		t.Fatal("empty trace")
	}
}
