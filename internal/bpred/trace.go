package bpred

import (
	"hash/fnv"
	"math/rand"

	"biglittle/internal/synth"
)

// Branch is one dynamic branch in a structured trace.
type Branch struct {
	Site  uint32
	Taken bool
}

// site behaviours composing a realistic branch population.
type siteKind int

const (
	loopSite       siteKind = iota // taken body-length times, then one exit
	biasedSite                     // strongly biased one way
	correlatedSite                 // repeats the previous branch's outcome
	randomSite                     // data-dependent coin flip
)

type site struct {
	kind   siteKind
	id     uint32
	period int     // loop body length
	state  int     // loop progress
	bias   float64 // P(taken) for biased/random sites
}

// Trace generates a structured branch trace whose aggregate taken rate
// matches the profile's TakenRate and whose difficulty scales with the
// profile's MispredictRate: predictable workloads are loop-dominated,
// unpredictable ones carry more data-dependent random branches.
func Trace(p synth.Profile, n int) []Branch {
	h := fnv.New64a()
	h.Write([]byte(p.Name + "/branches"))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))

	// Every site class's difficulty scales with the profile's misprediction
	// rate, so a bimodal predictor over the trace lands near the rate the
	// profile reports (which is an A7-class measurement): loop periods
	// shrink, biases weaken, and the share of data-dependent random
	// branches grows for hard workloads.
	target := p.MispredictRate
	if target < 0.005 {
		target = 0.005
	}
	randShare := target * 0.8
	corrShare := 0.08
	loopShare := 0.5 * (1 - randShare - corrShare)
	biasShare := 1 - randShare - corrShare - loopShare

	// Enough distinct sites to pressure a small predictor's table (the
	// A7-class bimodal has 512 entries) without overwhelming a big one.
	const nSites = 1024
	sites := make([]*site, nSites)
	for i := range sites {
		s := &site{id: uint32(i * 2654435761)}
		r := rng.Float64()
		switch {
		case r < loopShare:
			s.kind = loopSite
			// Period sized so exits cost ~target mispredicts per branch.
			base := int(1.5 / target)
			if base < 3 {
				base = 3
			}
			s.period = base/2 + rng.Intn(base)
		case r < loopShare+biasShare:
			s.kind = biasedSite
			s.bias = 1 - target*(0.5+rng.Float64())
			if s.bias < 0.7 {
				s.bias = 0.7
			}
			if rng.Float64() > p.TakenRate {
				s.bias = 1 - s.bias
			}
		case r < loopShare+biasShare+corrShare:
			s.kind = correlatedSite
		default:
			s.kind = randomSite
			s.bias = 0.35 + 0.3*rng.Float64()
		}
		sites[i] = s
	}

	out := make([]Branch, n)
	prevTaken := true
	for i := 0; i < n; i++ {
		s := sites[rng.Intn(nSites)]
		var taken bool
		switch s.kind {
		case loopSite:
			s.state++
			taken = s.state%s.period != 0
		case biasedSite:
			taken = rng.Float64() < s.bias
		case correlatedSite:
			taken = prevTaken
		default:
			taken = rng.Float64() < s.bias
		}
		out[i] = Branch{Site: s.id, Taken: taken}
		prevTaken = taken
	}
	return out
}
