package profile

import (
	"math"
	"strings"
	"testing"

	"biglittle/internal/event"
	"biglittle/internal/platform"
	"biglittle/internal/telemetry"
)

const ms = event.Millisecond

func TestRunWaitAccounting(t *testing.T) {
	p := New()
	p.OnWake(0, "worker", 0)
	p.OnRun(0, "worker", 4, platform.Big, 1400, 6*ms, 10*ms)
	p.OnRun(0, "worker", 1, platform.Little, 800, 3*ms, 20*ms)
	p.OnWait(0, "worker", 2*ms)

	s := p.Snapshot(20 * ms)
	w, ok := s.Task("worker")
	if !ok {
		t.Fatal("worker missing from snapshot")
	}
	if w.BigRunNs != 6*ms || w.LittleRunNs != 3*ms || w.RunNs != 9*ms {
		t.Fatalf("run split big=%v little=%v total=%v", w.BigRunNs, w.LittleRunNs, w.RunNs)
	}
	if w.WaitNs != 2*ms {
		t.Fatalf("wait %v", w.WaitNs)
	}
	if w.SleepNs != 20*ms-9*ms-2*ms {
		t.Fatalf("sleep %v", w.SleepNs)
	}
	if w.Wakes != 1 {
		t.Fatalf("wakes %d", w.Wakes)
	}
	// Wake at 0, first run interval [4ms, 10ms) → 4 ms latency.
	if w.WakeLatencyNs != 4*ms {
		t.Fatalf("wake latency %v", w.WakeLatencyNs)
	}
	if len(w.Residency) != 2 || w.Residency[0].Type != "big" || w.Residency[0].MHz != 1400 ||
		w.Residency[1].Type != "little" || w.Residency[1].MHz != 800 {
		t.Fatalf("residency %+v", w.Residency)
	}
}

func TestMigrationAccounting(t *testing.T) {
	p := New()
	p.OnMigration(0, "mover", platform.Little, platform.Big, telemetry.ReasonUpThreshold)
	p.OnWait(0, "mover", 3*ms) // stall: runnable right after the move
	p.OnRun(0, "mover", 4, platform.Big, 1400, 5*ms, 8*ms)
	p.OnWait(0, "mover", 2*ms) // not a stall: the task has run since
	p.OnMigration(0, "mover", platform.Big, platform.Little, telemetry.ReasonDownThreshold)
	p.OnMigration(0, "mover", platform.Little, platform.Little, telemetry.ReasonBalance)

	m, _ := p.Snapshot(20 * ms).Task("mover")
	if m.Migrations != 3 || m.HMPMigrations != 2 || m.UpMigrations != 1 || m.DownMigrations != 1 {
		t.Fatalf("migrations %+v", m)
	}
	if m.MigrationStallNs != 3*ms {
		t.Fatalf("stall %v", m.MigrationStallNs)
	}
	if got := p.Snapshot(20 * ms).HMPMigrations(); got != 2 {
		t.Fatalf("snapshot HMP sum %d", got)
	}
}

func TestEnergyAttributionSplitsAndConserves(t *testing.T) {
	p := New()
	// Core 0: task a ran 6 ms, task b ran 2 ms → a gets 75% of core 0.
	p.OnRun(0, "a", 0, platform.Little, 800, 6*ms, 10*ms)
	p.OnRun(1, "b", 0, platform.Little, 800, 2*ms, 10*ms)
	// Core 4 idle; core 5 ran only b.
	p.OnRun(1, "b", 5, platform.Big, 1400, 4*ms, 10*ms)
	cores := []CorePower{{Core: 0, MW: 100}, {Core: 4, MW: 50}, {Core: 5, MW: 200}}
	p.OnPowerInterval(10*ms, 40, cores) // 1.0, 0.5, 2.0, base 0.4 mJ

	s := p.Snapshot(10 * ms)
	a, _ := s.Task("a")
	b, _ := s.Task("b")
	// a: 0.75 of core0 (0.75) + 6/12 of base (0.2) = 0.95
	if math.Abs(a.EnergyMJ-0.95) > 1e-12 {
		t.Fatalf("a energy %v", a.EnergyMJ)
	}
	// b: 0.25 of core0 + all of core5 + 6/12 of base = 0.25+2.0+0.2 = 2.45
	if math.Abs(b.EnergyMJ-2.45) > 1e-12 {
		t.Fatalf("b energy %v", b.EnergyMJ)
	}
	// Idle core 4 is unattributed.
	if math.Abs(s.UnattributedMJ-0.5) > 1e-12 {
		t.Fatalf("unattributed %v", s.UnattributedMJ)
	}
	want := (100.0 + 50 + 200 + 40) * 0.010
	if math.Abs(s.TotalEnergyMJ-want) > 1e-9 {
		t.Fatalf("total %v want %v", s.TotalEnergyMJ, want)
	}

	// A fully idle second interval goes entirely to the unattributed bucket.
	p.OnPowerInterval(10*ms, 40, cores)
	s = p.Snapshot(20 * ms)
	if math.Abs(s.UnattributedMJ-(0.5+want)) > 1e-9 {
		t.Fatalf("idle interval unattributed %v", s.UnattributedMJ)
	}
	if s.Intervals != 2 {
		t.Fatalf("intervals %d", s.Intervals)
	}
}

func TestNilProfilerIsSafe(t *testing.T) {
	var p *Profiler
	if p.Enabled() {
		t.Fatal("nil profiler claims enabled")
	}
	p.OnWake(0, "x", 0)
	p.OnRun(0, "x", 0, platform.Little, 800, ms, ms)
	p.OnWait(0, "x", ms)
	p.OnMigration(0, "x", platform.Little, platform.Big, telemetry.ReasonUpThreshold)
	p.OnPowerInterval(ms, 40, nil)
	s := p.Snapshot(ms)
	if len(s.Tasks) != 0 || s.TotalEnergyMJ != 0 {
		t.Fatalf("nil snapshot not empty: %+v", s)
	}
}

func TestSnapshotOrderAndRendering(t *testing.T) {
	p := New()
	p.OnRun(0, "cold", 0, platform.Little, 800, ms, ms)
	p.OnRun(1, "hot", 4, platform.Big, 2000, 8*ms, 8*ms)
	p.OnPowerInterval(10*ms, 40, []CorePower{{Core: 0, MW: 10}, {Core: 4, MW: 500}})

	s := p.Snapshot(10 * ms)
	if s.Tasks[0].Name != "hot" {
		t.Fatalf("tasks not sorted by energy: %v first", s.Tasks[0].Name)
	}
	sum := s.Summary()
	for _, want := range []string{"hot", "cold", "attributed", "mJ total"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`biglittle_task_run_seconds{task="hot",type="big"} 0.008`,
		`biglittle_task_energy_millijoules{task="hot"}`,
		`biglittle_task_residency_seconds{task="cold",type="little",mhz="800"} 0.001`,
		"biglittle_profile_unattributed_millijoules",
	} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, b.String())
		}
	}
}

func TestResidencyPct(t *testing.T) {
	p := New()
	p.OnRun(0, "w", 0, platform.Little, 800, 3*ms, 3*ms)
	p.OnRun(0, "w", 0, platform.Little, 1300, ms, 4*ms)
	w, _ := p.Snapshot(4 * ms).Task("w")
	pct := w.ResidencyPct("little", []int{500, 800, 1300})
	if pct[0] != 0 || math.Abs(pct[1]-75) > 1e-9 || math.Abs(pct[2]-25) > 1e-9 {
		t.Fatalf("residency pct %v", pct)
	}
}
