package profile

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Summary renders the snapshot as a per-task text table plus the
// conservation footer — the report blserve prints on shutdown and
// examples/profile walks through.
func (s Snapshot) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile: %d tasks over %v (%d power intervals)\n",
		len(s.Tasks), s.ElapsedNs, s.Intervals)
	if len(s.Tasks) == 0 {
		return b.String()
	}
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "task\trun ms\tbig ms\tlittle ms\ttiny ms\twait ms\tsleep ms\tenergy mJ\tmigr (hmp ↑/↓)\tstall ms")
	for _, t := range s.Tasks {
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%d (%d %d/%d)\t%.2f\n",
			t.Name,
			t.RunNs.Milliseconds(), t.BigRunNs.Milliseconds(),
			t.LittleRunNs.Milliseconds(), t.TinyRunNs.Milliseconds(),
			t.WaitNs.Milliseconds(), t.SleepNs.Milliseconds(),
			t.EnergyMJ,
			t.Migrations, t.HMPMigrations, t.UpMigrations, t.DownMigrations,
			t.MigrationStallNs.Milliseconds())
	}
	w.Flush()
	fmt.Fprintf(&b, "energy: %.1f mJ attributed + %.1f mJ unattributed (idle+base) = %.1f mJ total\n",
		s.AttributedMJ, s.UnattributedMJ, s.TotalEnergyMJ)
	return b.String()
}

// promEscape escapes a Prometheus label value.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// WritePrometheus renders the snapshot's per-task attribution as Prometheus
// text-format gauges, labelled by task (and core type / MHz where it
// applies). blserve appends this to the telemetry registry's exposition on
// /metrics.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder

	b.WriteString("# HELP biglittle_task_run_seconds Per-task run time split by core type.\n")
	b.WriteString("# TYPE biglittle_task_run_seconds gauge\n")
	for _, t := range s.Tasks {
		name := promEscape(t.Name)
		fmt.Fprintf(&b, "biglittle_task_run_seconds{task=%q,type=\"big\"} %g\n", name, t.BigRunNs.Seconds())
		fmt.Fprintf(&b, "biglittle_task_run_seconds{task=%q,type=\"little\"} %g\n", name, t.LittleRunNs.Seconds())
		if t.TinyRunNs > 0 {
			fmt.Fprintf(&b, "biglittle_task_run_seconds{task=%q,type=\"tiny\"} %g\n", name, t.TinyRunNs.Seconds())
		}
	}

	b.WriteString("# HELP biglittle_task_wait_seconds Per-task runnable-wait (schedstat run_delay).\n")
	b.WriteString("# TYPE biglittle_task_wait_seconds gauge\n")
	for _, t := range s.Tasks {
		fmt.Fprintf(&b, "biglittle_task_wait_seconds{task=%q} %g\n", promEscape(t.Name), t.WaitNs.Seconds())
	}

	b.WriteString("# HELP biglittle_task_energy_millijoules Per-task attributed system energy.\n")
	b.WriteString("# TYPE biglittle_task_energy_millijoules gauge\n")
	for _, t := range s.Tasks {
		fmt.Fprintf(&b, "biglittle_task_energy_millijoules{task=%q} %g\n", promEscape(t.Name), t.EnergyMJ)
	}

	b.WriteString("# HELP biglittle_task_migrations_total Per-task migrations by direction.\n")
	b.WriteString("# TYPE biglittle_task_migrations_total gauge\n")
	for _, t := range s.Tasks {
		name := promEscape(t.Name)
		fmt.Fprintf(&b, "biglittle_task_migrations_total{task=%q,direction=\"up\"} %d\n", name, t.UpMigrations)
		fmt.Fprintf(&b, "biglittle_task_migrations_total{task=%q,direction=\"down\"} %d\n", name, t.DownMigrations)
	}

	b.WriteString("# HELP biglittle_task_residency_seconds Per-task run time at each (core type, MHz).\n")
	b.WriteString("# TYPE biglittle_task_residency_seconds gauge\n")
	for _, t := range s.Tasks {
		name := promEscape(t.Name)
		for _, r := range t.Residency {
			fmt.Fprintf(&b, "biglittle_task_residency_seconds{task=%q,type=%q,mhz=\"%d\"} %g\n",
				name, r.Type, r.MHz, r.Ns.Seconds())
		}
	}

	b.WriteString("# HELP biglittle_profile_unattributed_millijoules Idle and base-rail energy no task ran under.\n")
	b.WriteString("# TYPE biglittle_profile_unattributed_millijoules gauge\n")
	fmt.Fprintf(&b, "biglittle_profile_unattributed_millijoules %g\n", s.UnattributedMJ)
	fmt.Fprintf(&b, "# TYPE biglittle_profile_attributed_millijoules gauge\nbiglittle_profile_attributed_millijoules %g\n", s.AttributedMJ)

	_, err := io.WriteString(w, b.String())
	return err
}

// ResidencyPct returns one task's active-time share per frequency of a core
// type, aligned with freqs — the per-task Figure 9/10 row.
func (t TaskSnapshot) ResidencyPct(coreType string, freqs []int) []float64 {
	out := make([]float64, len(freqs))
	var total float64
	byMHz := map[int]float64{}
	for _, r := range t.Residency {
		if r.Type == coreType {
			byMHz[r.MHz] = float64(r.Ns)
			total += float64(r.Ns)
		}
	}
	if total == 0 {
		return out
	}
	idx := make(map[int]int, len(freqs))
	for i, f := range freqs {
		idx[f] = i
	}
	for mhz, ns := range byMHz {
		if i, ok := idx[mhz]; ok {
			out[i] = 100 * ns / total
		}
	}
	return out
}
