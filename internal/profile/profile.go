// Package profile is the simulator's per-task attribution layer: where
// internal/trace samples state per tick and internal/telemetry records
// transitions, profile answers "which task got what" — schedstat-style
// run/runnable/sleep time split by core type, per-(core type, MHz) frequency
// residency (the per-task version of the Figure 9/10 distributions), energy
// attribution that partitions every metered millijoule across the tasks that
// ran while it was burned, and migration accounting with direction and the
// runnable stall each move cost.
//
// The profiler consumes three streams:
//
//   - the scheduler's sync intervals (OnRun/OnWait/OnWake/OnMigration),
//     emitted from internal/sched behind a single nil check per site;
//   - the 10 ms power-model intervals (OnPowerInterval), emitted by
//     internal/metrics with the same per-core power terms it feeds the
//     meter, so attribution is conservative by construction: the sum of
//     per-task energy plus the unattributed (idle + base while nothing ran)
//     remainder equals power.Meter.EnergyMJ to float rounding.
//
// Attribution rules: a power interval's per-core energy (dynamic + overhead,
// including the core's own idle share) is split across the tasks that ran on
// that core during the interval, proportional to their run time there; a
// core that ran nothing contributes to the unattributed bucket. The base
// rail is split across all tasks proportional to total run time in the
// interval, or unattributed when the whole system was idle. This is the
// powertop convention: whoever kept the silicon awake owns its cost.
//
// The disabled path is a nil *Profiler: every method is safe on nil and
// every emit site in the scheduler guards with one pointer check, so runs
// without profiling pay essentially nothing (BenchmarkProfilerOff/On in the
// root package quantifies it). Like telemetry, the profiler assumes the
// single-threaded event engine; concurrent readers (blserve) must serialize
// against the simulation externally.
package profile

import (
	"sort"

	"biglittle/internal/event"
	"biglittle/internal/platform"
	"biglittle/internal/telemetry"
)

// CorePower is one online core's power during a power-model interval, as
// computed by the metrics sampler (dynamic + activity overhead, after deep
// idle gating). Core identifies the core so the profiler can match it with
// the per-core run accounting of the same interval.
type CorePower struct {
	Core int
	MW   float64
}

// taskState is the mutable per-task accumulator.
type taskState struct {
	id   int
	name string

	run       [3]event.Time // indexed by platform.CoreType.Tier(): tiny, little, big
	waitNs    event.Time    // runnable-but-not-running (schedstat run_delay)
	residency map[resKey]event.Time

	energyMJ float64

	migrations     int        // every inter-core move (incl. balance, hotplug)
	hmpMigrations  int        // up/down-threshold + policy moves (= Result.HMPMigrations share)
	upMigrations   int        // moves to a higher tier
	downMigrations int        // moves to a lower tier
	stallNs        event.Time // runnable time spent waiting right after a migration

	wakes     int
	wakeLatNs event.Time // cumulative wake-to-first-run latency
	lastWake  event.Time
	awaiting  bool // between a wake and its first run interval
	migrating bool // between a migration and its next run interval
}

type resKey struct {
	typ platform.CoreType
	mhz int
}

// Profiler accumulates per-task attribution for one run. A nil *Profiler is
// valid everywhere and disables all recording.
type Profiler struct {
	tasks []*taskState // indexed by task ID; nil slots for unseen IDs

	// Per-power-interval run accounting: ivRun[core][taskID] is the run time
	// of taskID on core since the last OnPowerInterval. Rows grow lazily and
	// are zeroed (not freed) at each interval boundary.
	ivRun [][]event.Time
	// ivTotal is a scratch buffer of per-task run totals for base splitting.
	ivTotal []event.Time

	attributedMJ   float64
	unattributedMJ float64
	intervals      int
}

// New returns an enabled Profiler.
func New() *Profiler { return &Profiler{} }

// Enabled reports whether the profiler records anything (false for nil).
func (p *Profiler) Enabled() bool { return p != nil }

// task returns (creating if needed) the accumulator for id.
func (p *Profiler) task(id int, name string) *taskState {
	for id >= len(p.tasks) {
		p.tasks = append(p.tasks, nil)
	}
	t := p.tasks[id]
	if t == nil {
		t = &taskState{id: id, name: name, residency: map[resKey]event.Time{}}
		p.tasks[id] = t
	}
	return t
}

// OnWake records a sleeping task being woken at now. The next OnRun for the
// task closes the wake-to-run latency.
func (p *Profiler) OnWake(id int, name string, now event.Time) {
	if p == nil {
		return
	}
	t := p.task(id, name)
	t.wakes++
	t.lastWake = now
	t.awaiting = true
}

// OnRun attributes dt of execution ending at now to task id on the given
// core: run time by core type, frequency residency at (typ, mhz), and the
// interval accounting used for energy attribution.
func (p *Profiler) OnRun(id int, name string, core int, typ platform.CoreType, mhz int, dt, now event.Time) {
	if p == nil || dt <= 0 {
		return
	}
	t := p.task(id, name)
	t.run[typ.Tier()] += dt
	t.residency[resKey{typ, mhz}] += dt
	if t.awaiting {
		// The run interval started at now-dt; latency is wake → first run.
		if lat := now - dt - t.lastWake; lat > 0 {
			t.wakeLatNs += lat
		}
		t.awaiting = false
	}
	t.migrating = false

	for core >= len(p.ivRun) {
		p.ivRun = append(p.ivRun, nil)
	}
	row := p.ivRun[core]
	for id >= len(row) {
		row = append(row, 0)
	}
	row[id] += dt
	p.ivRun[core] = row
}

// OnWait attributes dt of runnable-but-not-running time to task id
// (schedstat's run_delay). Waits immediately following a migration also
// accrue to the task's migration stall.
func (p *Profiler) OnWait(id int, name string, dt event.Time) {
	if p == nil || dt <= 0 {
		return
	}
	t := p.task(id, name)
	t.waitNs += dt
	if t.migrating {
		t.stallNs += dt
	}
}

// OnMigration records task id moving between core types for the given
// telemetry reason. Up/down direction follows the capability tiers; the
// HMP count covers the same reasons as telemetry.HMPMigrations and the
// scheduler's Result.HMPMigrations (threshold and policy moves only).
func (p *Profiler) OnMigration(id int, name string, from, to platform.CoreType, reason string) {
	if p == nil {
		return
	}
	t := p.task(id, name)
	t.migrations++
	switch {
	case to.Tier() > from.Tier():
		t.upMigrations++
	case to.Tier() < from.Tier():
		t.downMigrations++
	}
	switch reason {
	case telemetry.ReasonUpThreshold, telemetry.ReasonDownThreshold, telemetry.ReasonPolicy:
		t.hmpMigrations++
	}
	t.migrating = true
}

// OnPowerInterval attributes one power-model interval: each core's energy
// (cp.MW over dt) is split across the tasks that ran on it since the last
// interval, proportional to run time; idle cores and the base rail while no
// task ran go to the unattributed bucket. The per-interval run accounting is
// reset afterwards. Called by the metrics sampler with the same per-core
// power terms it feeds the meter, so attributed + unattributed energy equals
// the meter's total.
func (p *Profiler) OnPowerInterval(dt event.Time, baseMW float64, cores []CorePower) {
	if p == nil || dt <= 0 {
		return
	}
	p.intervals++
	secs := dt.Seconds()

	for _, cp := range cores {
		eMJ := cp.MW * secs
		if eMJ == 0 {
			continue
		}
		var row []event.Time
		if cp.Core < len(p.ivRun) {
			row = p.ivRun[cp.Core]
		}
		var coreRun event.Time
		for _, r := range row {
			coreRun += r
		}
		if coreRun <= 0 {
			p.unattributedMJ += eMJ
			continue
		}
		for id, r := range row {
			if r > 0 {
				share := eMJ * float64(r) / float64(coreRun)
				p.tasks[id].energyMJ += share
				p.attributedMJ += share
			}
		}
	}

	// Base rail: split by each task's total run time this interval.
	for i := range p.ivTotal {
		p.ivTotal[i] = 0
	}
	var total event.Time
	for _, row := range p.ivRun {
		for id, r := range row {
			if r <= 0 {
				continue
			}
			for id >= len(p.ivTotal) {
				p.ivTotal = append(p.ivTotal, 0)
			}
			p.ivTotal[id] += r
			total += r
		}
	}
	baseMJ := baseMW * secs
	if total <= 0 {
		p.unattributedMJ += baseMJ
	} else {
		for id, r := range p.ivTotal {
			if r > 0 {
				share := baseMJ * float64(r) / float64(total)
				p.tasks[id].energyMJ += share
				p.attributedMJ += share
			}
		}
	}

	for _, row := range p.ivRun {
		for i := range row {
			row[i] = 0
		}
	}
}

// ResidencySlot is one (core type, MHz) cell of a task's frequency
// residency.
type ResidencySlot struct {
	Type string     `json:"type"`
	MHz  int        `json:"mhz"`
	Ns   event.Time `json:"ns"`
}

// TaskSnapshot is one task's attribution at a point in time.
type TaskSnapshot struct {
	ID   int    `json:"id"`
	Name string `json:"name"`

	// Schedstat-style time accounting. SleepNs is derived: elapsed minus run
	// minus wait (it includes deep-idle wake latency, which is neither).
	TinyRunNs   event.Time `json:"tiny_run_ns,omitempty"`
	LittleRunNs event.Time `json:"little_run_ns"`
	BigRunNs    event.Time `json:"big_run_ns"`
	RunNs       event.Time `json:"run_ns"`
	WaitNs      event.Time `json:"wait_ns"`
	SleepNs     event.Time `json:"sleep_ns"`

	// Wake accounting: wake count and cumulative wake-to-first-run latency.
	Wakes         int        `json:"wakes"`
	WakeLatencyNs event.Time `json:"wake_latency_ns"`

	// Residency is the per-(core type, MHz) run time, sorted by type then
	// ascending frequency — the per-task Figures 9/10.
	Residency []ResidencySlot `json:"residency,omitempty"`

	// EnergyMJ is the task's attributed share of metered system energy.
	EnergyMJ float64 `json:"energy_mj"`

	// Migration accounting. HMPMigrations counts threshold + policy moves
	// (the Result.HMPMigrations definition); Migrations counts every move
	// including balance pulls and hotplug evictions. MigrationStallNs is the
	// runnable time spent waiting immediately after a migration — the cost
	// of each move in this model.
	Migrations       int        `json:"migrations"`
	HMPMigrations    int        `json:"hmp_migrations"`
	UpMigrations     int        `json:"up_migrations"`
	DownMigrations   int        `json:"down_migrations"`
	MigrationStallNs event.Time `json:"migration_stall_ns"`
}

// Snapshot is the full attribution table at a point in time.
type Snapshot struct {
	// ElapsedNs is the simulated time the snapshot covers.
	ElapsedNs event.Time `json:"elapsed_ns"`
	// Tasks is sorted by attributed energy, descending.
	Tasks []TaskSnapshot `json:"tasks"`
	// AttributedMJ + UnattributedMJ = the power meter's EnergyMJ (to float
	// rounding): the conservation invariant tests assert.
	AttributedMJ   float64 `json:"attributed_mj"`
	UnattributedMJ float64 `json:"unattributed_mj"`
	TotalEnergyMJ  float64 `json:"total_energy_mj"`
	// Intervals is the number of power-model intervals attributed.
	Intervals int `json:"intervals"`
}

// Snapshot returns a copy of the current attribution tables; elapsed is the
// simulated time covered (used to derive per-task sleep time).
func (p *Profiler) Snapshot(elapsed event.Time) Snapshot {
	s := Snapshot{ElapsedNs: elapsed}
	if p == nil {
		return s
	}
	s.AttributedMJ = p.attributedMJ
	s.UnattributedMJ = p.unattributedMJ
	s.TotalEnergyMJ = p.attributedMJ + p.unattributedMJ
	s.Intervals = p.intervals
	for _, t := range p.tasks {
		if t == nil {
			continue
		}
		ts := TaskSnapshot{
			ID:   t.id,
			Name: t.name,

			TinyRunNs:   t.run[platform.Tiny.Tier()],
			LittleRunNs: t.run[platform.Little.Tier()],
			BigRunNs:    t.run[platform.Big.Tier()],
			WaitNs:      t.waitNs,

			Wakes:         t.wakes,
			WakeLatencyNs: t.wakeLatNs,

			EnergyMJ: t.energyMJ,

			Migrations:       t.migrations,
			HMPMigrations:    t.hmpMigrations,
			UpMigrations:     t.upMigrations,
			DownMigrations:   t.downMigrations,
			MigrationStallNs: t.stallNs,
		}
		ts.RunNs = ts.TinyRunNs + ts.LittleRunNs + ts.BigRunNs
		if sleep := elapsed - ts.RunNs - ts.WaitNs; sleep > 0 {
			ts.SleepNs = sleep
		}
		for k, ns := range t.residency {
			ts.Residency = append(ts.Residency, ResidencySlot{Type: k.typ.String(), MHz: k.mhz, Ns: ns})
		}
		sort.Slice(ts.Residency, func(i, j int) bool {
			if ts.Residency[i].Type != ts.Residency[j].Type {
				return ts.Residency[i].Type < ts.Residency[j].Type
			}
			return ts.Residency[i].MHz < ts.Residency[j].MHz
		})
		s.Tasks = append(s.Tasks, ts)
	}
	sort.Slice(s.Tasks, func(i, j int) bool {
		if s.Tasks[i].EnergyMJ != s.Tasks[j].EnergyMJ {
			return s.Tasks[i].EnergyMJ > s.Tasks[j].EnergyMJ
		}
		return s.Tasks[i].ID < s.Tasks[j].ID
	})
	return s
}

// Task returns the named task's snapshot, or false when unknown.
func (s Snapshot) Task(name string) (TaskSnapshot, bool) {
	for _, t := range s.Tasks {
		if t.Name == name {
			return t, true
		}
	}
	return TaskSnapshot{}, false
}

// HMPMigrations sums the per-task HMP migration counts — the quantity that
// reconciles with core.Result.HMPMigrations and telemetry.HMPMigrations.
func (s Snapshot) HMPMigrations() int {
	n := 0
	for _, t := range s.Tasks {
		n += t.HMPMigrations
	}
	return n
}
