// Package snapshot defines the whole-simulation snapshot: a versioned,
// checksummed capture of every piece of simulator state — event engine
// counters, pending-event ordering keys, scheduler run queues and PELT
// signals, DVFS and thermal state, metric accumulators, the workload
// record/replay log — sufficient to fork a run. A fork restored from a
// State and continued to time T produces results byte-identical to a
// from-scratch run to T (DESIGN.md §9); internal/lab uses that to run one
// warmed prefix and fork N cheap sweep continuations.
//
// The package is pure data + codec. Capture and restore live in
// internal/core (Sim.Snapshot / Resume), which orchestrates the
// per-subsystem Snapshot/Restore methods this State aggregates.
package snapshot

import (
	"biglittle/internal/altsched"
	"biglittle/internal/delta"
	"biglittle/internal/event"
	"biglittle/internal/governor"
	"biglittle/internal/metrics"
	"biglittle/internal/platform"
	"biglittle/internal/sched"
	"biglittle/internal/thermal"
	"biglittle/internal/workload"
)

// Version is the current snapshot format version. Decode rejects any other
// value: snapshot state mirrors unexported simulator internals, so there is
// no cross-version migration — a snapshot is only valid for the binary
// lineage that wrote it.
const Version = 1

// EngineSnap is the event engine's counters at the capture point. Restore
// forces them with event.Engine.Reset; Fired must be exact because the
// digest recorder folds it into every window digest.
type EngineSnap struct {
	Now   event.Time `json:"now"`
	Seq   uint64     `json:"seq"`
	Fired uint64     `json:"fired"`
}

// WorkloadSnap is the workload layer's state: the record/replay log that
// reconstructs the closure graph and RNG position (see internal/workload
// record.go), the pending workload events' ordering keys, and the
// performance trackers' contents — the latter are reconstructed by replay
// and cross-checked against these captured copies.
type WorkloadSnap struct {
	Log     []workload.Record       `json:"log"`
	Pending []workload.PendingEvent `json:"pending,omitempty"`
	Threads int                     `json:"threads"`

	Frames   []event.Time `json:"frames,omitempty"`
	LatTotal event.Time   `json:"latTotal"`
	LatMax   event.Time   `json:"latMax"`
	LatN     int          `json:"latN"`
}

// State is one whole-simulation snapshot. The identity fields pin what a
// resuming config must agree on (app, seed, topology); the remaining
// config knobs (governor tuning, scheduler policy, thermal envelope) may
// legitimately differ — that is what a fork sweep varies, and the change
// takes effect at the fork point.
type State struct {
	// Identity: a resuming run must match these exactly.
	App            string              `json:"app"`
	Seed           int64               `json:"seed"`
	Cores          platform.CoreConfig `json:"cores"`
	CustomPlatform bool                `json:"customPlatform,omitempty"`

	// Provenance: the kinds the capturing run used. Resume restores policy
	// state only when the resuming config's kind matches; otherwise the new
	// policy starts fresh at the fork point.
	SchedKind string `json:"schedKind"`
	GovKind   string `json:"govKind"`

	// Time is the capture point; Duration the capturing run's horizon.
	Time     event.Time `json:"time"`
	Duration event.Time `json:"duration"`

	Engine   EngineSnap   `json:"engine"`
	Workload WorkloadSnap `json:"workload"`

	Sched   sched.Snap    `json:"sched"`
	SoC     platform.Snap `json:"soc"`
	Gov     governor.Snap `json:"gov"`
	Metrics metrics.Snap  `json:"metrics"`

	Thermal *thermal.Snap     `json:"thermal,omitempty"`
	EAS     *altsched.EASSnap `json:"eas,omitempty"`
	Delta   *delta.Snap       `json:"delta,omitempty"`
}

// PendingEvents returns the number of engine events the snapshot accounts
// for. Capture proves it equals the engine's queue length — any unaccounted
// event (an auditor's sample, a custom hook's timer) makes the run
// unsnapshottable and capture fails loudly.
func (st *State) PendingEvents() int {
	n := st.Sched.PendingEvents() + st.Gov.PendingEvents() + st.Metrics.PendingEvents()
	if st.Thermal != nil {
		n += st.Thermal.PendingEvents()
	}
	return n + len(st.Workload.Pending)
}
