package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
)

// Wire format, all integers big-endian:
//
//	offset  size  field
//	0       6     magic "BLSNAP"
//	6       2     format version (== Version)
//	8       8     payload length
//	16      32    SHA-256 of payload
//	48      n     payload: JSON-encoded State
//
// The checksum guards cached blobs against torn writes and bit rot; the
// version gate refuses skewed formats; DisallowUnknownFields refuses
// payloads written by a newer State shape under the same version. Decode
// returns errors for every malformed input — it never panics.

var magic = [6]byte{'B', 'L', 'S', 'N', 'A', 'P'}

const headerLen = 6 + 2 + 8 + sha256.Size

// maxPayload bounds a blob's declared payload length. Real snapshots are a
// few hundred KB; the bound keeps a corrupt length field from driving a
// huge allocation.
const maxPayload = 1 << 30

// Encode serializes st into a self-describing, checksummed blob.
func Encode(st *State) ([]byte, error) {
	if st == nil {
		return nil, fmt.Errorf("snapshot: encode nil state")
	}
	payload, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("snapshot: encode: %w", err)
	}
	out := make([]byte, headerLen+len(payload))
	copy(out[0:6], magic[:])
	binary.BigEndian.PutUint16(out[6:8], Version)
	binary.BigEndian.PutUint64(out[8:16], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(out[16:headerLen], sum[:])
	copy(out[headerLen:], payload)
	return out, nil
}

// Decode parses a blob produced by Encode, verifying magic, version,
// length, and checksum before unmarshalling. Any corruption, truncation,
// or version skew yields an error.
func Decode(blob []byte) (*State, error) {
	if len(blob) < headerLen {
		return nil, fmt.Errorf("snapshot: blob too short: %d bytes, need at least %d", len(blob), headerLen)
	}
	if !bytes.Equal(blob[0:6], magic[:]) {
		return nil, fmt.Errorf("snapshot: bad magic %q", blob[0:6])
	}
	if v := binary.BigEndian.Uint16(blob[6:8]); v != Version {
		return nil, fmt.Errorf("snapshot: format version %d, this binary reads %d", v, Version)
	}
	n := binary.BigEndian.Uint64(blob[8:16])
	if n > maxPayload {
		return nil, fmt.Errorf("snapshot: declared payload length %d exceeds limit", n)
	}
	if uint64(len(blob)-headerLen) != n {
		return nil, fmt.Errorf("snapshot: payload is %d bytes, header declares %d", len(blob)-headerLen, n)
	}
	payload := blob[headerLen:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], blob[16:headerLen]) {
		return nil, fmt.Errorf("snapshot: checksum mismatch — blob is corrupt")
	}
	st := &State{}
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(st); err != nil {
		return nil, fmt.Errorf("snapshot: decode payload: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err == nil || len(trailing) > 0 {
		return nil, fmt.Errorf("snapshot: trailing data after payload")
	}
	return st, nil
}
