package snapshot

import "reflect"

// ApproxBytes estimates the in-memory footprint of a decoded State: the
// struct graph walked recursively, counting struct fields, slice and map
// backing arrays, string bytes, and pointed-to values. It exists so the
// lab's in-process prefix tier can enforce a byte budget over the decoded
// snapshots it keeps alive for fork handout — an estimate is enough for
// eviction decisions, and walking the DTO graph is far cheaper than an
// encode round-trip (which the fork fast path deliberately avoids).
//
// The walk assumes the State is the tree of plain-data DTOs the codec
// produces: no cycles, no channels, no functions. Unknown kinds count as
// their reflect.Type size.
func (st *State) ApproxBytes() int64 {
	if st == nil {
		return 0
	}
	return deepSize(reflect.ValueOf(st))
}

// deepSize returns the approximate bytes reachable from v, including v's
// own storage when it is a pointed-to or interface-boxed value.
func deepSize(v reflect.Value) int64 {
	switch v.Kind() {
	case reflect.Ptr, reflect.Interface:
		if v.IsNil() {
			return int64(v.Type().Size())
		}
		return int64(v.Type().Size()) + deepSize(v.Elem())
	case reflect.Slice:
		if v.IsNil() {
			return int64(v.Type().Size())
		}
		n := int64(v.Type().Size())
		elem := v.Type().Elem()
		switch elem.Kind() {
		case reflect.Bool, reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
			reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
			reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128:
			// Flat element type: the backing array is element size x capacity.
			return n + int64(elem.Size())*int64(v.Cap())
		}
		for i := 0; i < v.Len(); i++ {
			n += deepSize(v.Index(i))
		}
		return n
	case reflect.Map:
		if v.IsNil() {
			return int64(v.Type().Size())
		}
		n := int64(v.Type().Size())
		iter := v.MapRange()
		for iter.Next() {
			n += deepSize(iter.Key()) + deepSize(iter.Value())
		}
		return n
	case reflect.String:
		return int64(v.Type().Size()) + int64(v.Len())
	case reflect.Struct:
		n := int64(0)
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			switch f.Kind() {
			case reflect.Ptr, reflect.Interface, reflect.Slice, reflect.Map, reflect.String, reflect.Struct, reflect.Array:
				n += deepSize(f)
			default:
				n += int64(f.Type().Size())
			}
		}
		if n == 0 {
			n = int64(v.Type().Size())
		}
		return n
	case reflect.Array:
		elem := v.Type().Elem()
		switch elem.Kind() {
		case reflect.Ptr, reflect.Interface, reflect.Slice, reflect.Map, reflect.String, reflect.Struct, reflect.Array:
			n := int64(0)
			for i := 0; i < v.Len(); i++ {
				n += deepSize(v.Index(i))
			}
			return n
		}
		return int64(v.Type().Size())
	default:
		return int64(v.Type().Size())
	}
}
