package snapshot

import (
	"crypto/sha256"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"

	"biglittle/internal/delta"
	"biglittle/internal/event"
	"biglittle/internal/platform"
	"biglittle/internal/workload"
)

func sampleState() *State {
	return &State{
		App:       "browser",
		Seed:      7,
		Cores:     platform.CoreConfig{Little: 4, Big: 4},
		SchedKind: "hmp",
		GovKind:   "interactive",
		Time:      3 * event.Second,
		Duration:  10 * event.Second,
		Engine:    EngineSnap{Now: 3 * event.Second, Seq: 991, Fired: 874},
		Workload: WorkloadSnap{
			Log: []workload.Record{
				{Kind: workload.RecFire, Wid: 0, At: event.Second},
				{Kind: workload.RecSeg, Th: 1, At: 2 * event.Second},
				{Kind: workload.RecBusy, Busy: true},
			},
			Pending:  []workload.PendingEvent{{Wid: 3, At: 4 * event.Second, Seq: 870}},
			Threads:  2,
			Frames:   []event.Time{event.Second, 2 * event.Second},
			LatTotal: 40 * event.Millisecond,
			LatMax:   25 * event.Millisecond,
			LatN:     3,
		},
		Delta: &delta.Snap{Window: 29296875, Cur: 102, Acc: 0xdeadbeef, Cum: 0xfeedface,
			Sealed: []uint64{1, 2, 3}},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	st := sampleState()
	blob, err := Encode(st)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(blob)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Fatalf("round trip mismatch:\n  in  %+v\n  out %+v", st, got)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a, err := Encode(sampleState())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(sampleState())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("two encodings of the same state differ")
	}
}

func TestEncodeNil(t *testing.T) {
	if _, err := Encode(nil); err == nil {
		t.Fatal("Encode(nil) succeeded")
	}
}

func TestDecodeRejections(t *testing.T) {
	blob, err := Encode(sampleState())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want string
	}{
		{"empty", func(b []byte) []byte { return nil }, "too short"},
		{"truncated header", func(b []byte) []byte { return b[:headerLen-1] }, "too short"},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "bad magic"},
		{"version skew", func(b []byte) []byte {
			binary.BigEndian.PutUint16(b[6:8], Version+1)
			return b
		}, "format version"},
		{"huge declared length", func(b []byte) []byte {
			binary.BigEndian.PutUint64(b[8:16], maxPayload+1)
			return b
		}, "exceeds limit"},
		{"length mismatch", func(b []byte) []byte {
			binary.BigEndian.PutUint64(b[8:16], uint64(len(b)-headerLen+5))
			return b
		}, "header declares"},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-7] }, "header declares"},
		{"flipped payload bit", func(b []byte) []byte {
			b[headerLen+10] ^= 0x40
			return b
		}, "checksum"},
		{"flipped checksum bit", func(b []byte) []byte {
			b[20] ^= 0x01
			return b
		}, "checksum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mut(append([]byte(nil), blob...))
			_, err := Decode(b)
			if err == nil {
				t.Fatal("Decode accepted a corrupt blob")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestDecodeUnknownField pins the skew guard: a payload with a field this
// State shape does not declare is refused even when the checksum is valid.
func TestDecodeUnknownField(t *testing.T) {
	payload := []byte(`{"app":"x","futureField":1}`)
	blob := frame(payload)
	if _, err := Decode(blob); err == nil || !strings.Contains(err.Error(), "decode payload") {
		t.Fatalf("unknown field not rejected: %v", err)
	}
}

func TestDecodeTrailingData(t *testing.T) {
	payload := []byte(`{"app":"x"} {"more":true}`)
	blob := frame(payload)
	if _, err := Decode(blob); err == nil {
		t.Fatal("trailing JSON accepted")
	}
}

func TestDecodeMalformedJSON(t *testing.T) {
	blob := frame([]byte(`{"app":`))
	if _, err := Decode(blob); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestPendingEventsAccounting(t *testing.T) {
	st := sampleState()
	if got := st.PendingEvents(); got != 1 {
		t.Fatalf("PendingEvents = %d, want 1 (the workload event)", got)
	}
	st.Sched.TickPending = true
	st.Gov.SamplePending = true
	st.Metrics.SamplePending = true
	if got := st.PendingEvents(); got != 4 {
		t.Fatalf("PendingEvents = %d, want 4", got)
	}
}

// frame wraps payload in a valid header (correct length and checksum) so
// tests can exercise the JSON layer in isolation.
func frame(payload []byte) []byte {
	head := make([]byte, headerLen)
	copy(head[0:6], magic[:])
	binary.BigEndian.PutUint16(head[6:8], Version)
	binary.BigEndian.PutUint64(head[8:16], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(head[16:headerLen], sum[:])
	return append(head, payload...)
}
