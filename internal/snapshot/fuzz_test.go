package snapshot

import (
	"reflect"
	"testing"
)

// FuzzDecode drives the codec with arbitrary blobs: Decode must either
// return an error or a State that round-trips — and must never panic,
// whatever the corruption, truncation, or version skew. make fuzz-smoke
// runs this briefly on every CI pass.
func FuzzDecode(f *testing.F) {
	good, err := Encode(sampleState())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("BLSNAP"))
	f.Add(good[:headerLen])
	f.Add(good[:len(good)-1])
	f.Add(append(append([]byte(nil), good...), 0))
	tampered := append([]byte(nil), good...)
	tampered[headerLen+3] ^= 0xff
	f.Add(tampered)
	skewed := append([]byte(nil), good...)
	skewed[7] = 99
	f.Add(skewed)
	f.Add(frame([]byte(`{"app":"x","bogus":[]}`)))

	f.Fuzz(func(t *testing.T, blob []byte) {
		st, err := Decode(blob)
		if err != nil {
			if st != nil {
				t.Fatal("Decode returned both a state and an error")
			}
			return
		}
		// Accepted blobs must round-trip: the decoded state re-encodes and
		// re-decodes to an equal value.
		re, err := Encode(st)
		if err != nil {
			t.Fatalf("re-encode of accepted state failed: %v", err)
		}
		st2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(st, st2) {
			t.Fatal("accepted state does not round-trip")
		}
	})
}
