// Package event provides the discrete-event simulation substrate used by the
// biglittle platform simulator: a monotonic simulated clock, a pooled 4-ary
// heap event queue with stable FIFO ordering for simultaneous events, and
// cancellable event handles.
//
// All simulated components (scheduler ticks, governor sampling, task
// completions, workload wakeups, metric samplers) are driven by a single
// Engine so that every interleaving is deterministic for a given seed.
//
// The engine is the innermost loop of every simulation, so it is built to do
// zero heap allocations per scheduled-and-fired event in steady state: event
// records live on an engine-owned free list and the priority queue is a flat
// slice of pointer-free entries (a 4-ary heap — shallower than a binary heap
// and with all four children of a node on one cache line). Cancelled events
// are removed from the queue eagerly rather than occupying a slot until their
// fire time would have arrived.
package event

import "fmt"

// Time is a simulated timestamp in nanoseconds since the start of the run.
type Time int64

// Common durations, expressed in Time units.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Milliseconds returns t as a floating-point millisecond count.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds returns t as a floating-point second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string {
	return fmt.Sprintf("%.3fms", t.Milliseconds())
}

// Handler is a callback invoked when an event fires. The engine passes the
// firing time, which equals the engine's current time during the call.
type Handler func(now Time)

// node is a pooled event record. Nodes are owned by the engine's nodes slab
// and recycled through the free list; gen distinguishes successive
// occupancies of the same slot so stale Handles are harmless.
type node struct {
	fn    Handler
	index int32 // heap index; -1 while on the free list or firing
	gen   uint32
}

// entry is one heap element. It carries the ordering key inline so the sift
// paths compare without touching the node slab, and holds no pointers so
// sifting stays free of GC write barriers.
type entry struct {
	at   Time
	seq  uint64
	node int32
}

// Handle refers to a scheduled event. The zero Handle is valid and refers to
// no event. Handles are small values: copy them freely. A Handle left over
// after its event fired (or was cancelled) is inert — Cancel on it is a
// no-op, even though the engine may have recycled the underlying record for
// a new event.
type Handle struct {
	e   *Engine
	at  Time
	id  int32
	gen uint32
}

// At returns the time the event was scheduled to fire.
func (h Handle) At() Time { return h.at }

// Pending reports whether the event is still queued: it has neither fired
// nor been cancelled.
func (h Handle) Pending() bool {
	return h.e != nil && h.e.nodes[h.id].gen == h.gen
}

// Cancel removes a pending event from the queue and reports whether it did.
// Cancelling an event that has already fired or been cancelled is a no-op
// returning false. Cancel is safe to call from inside handlers, including
// the cancelled event's own.
func (h Handle) Cancel() bool {
	if h.e == nil {
		return false
	}
	n := &h.e.nodes[h.id]
	if n.gen != h.gen || n.index < 0 {
		return false
	}
	h.e.removeAt(int(n.index))
	h.e.recycle(h.id, n)
	return true
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now     Time
	seq     uint64
	fired   uint64
	heap    []entry
	nodes   []node
	free    []int32
	stopped bool
}

// New returns a fresh Engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled events. Cancelled events are
// removed immediately, so they never count.
func (e *Engine) Pending() int { return len(e.heap) }

// Fired returns the number of events that have fired so far. Together with
// Scheduled it fingerprints the engine's progress: two deterministic runs
// that have processed the same event sequence report the same counters.
func (e *Engine) Fired() uint64 { return e.fired }

// Scheduled returns the number of events ever scheduled (including ones
// later cancelled; cancellation does not rewind the sequence counter).
func (e *Engine) Scheduled() uint64 { return e.seq }

// alloc takes a node from the free list, growing the slab when empty.
func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		id := e.free[n-1]
		e.free = e.free[:n-1]
		return id
	}
	e.nodes = append(e.nodes, node{index: -1})
	return int32(len(e.nodes) - 1)
}

// recycle returns a fired or cancelled node to the free list, bumping its
// generation so outstanding Handles to the old occupancy go inert.
func (e *Engine) recycle(id int32, n *node) {
	n.gen++
	n.fn = nil
	n.index = -1
	e.free = append(e.free, id)
}

// At schedules fn to run at absolute time at. Scheduling in the past (before
// Now) panics: it indicates a simulator bug, not a recoverable condition.
func (e *Engine) At(at Time, fn Handler) Handle {
	if at < e.now {
		panic(fmt.Sprintf("event: scheduling at %v before now %v", at, e.now))
	}
	id := e.alloc()
	n := &e.nodes[id]
	n.fn = fn
	seq := e.seq
	e.seq++
	e.heap = append(e.heap, entry{at: at, seq: seq, node: id})
	e.siftUp(len(e.heap) - 1)
	return Handle{e: e, at: at, id: id, gen: n.gen}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn Handler) Handle { return e.At(e.now+d, fn) }

// Stop makes Run return after the currently-firing event completes.
func (e *Engine) Stop() { e.stopped = true }

// less orders entries by time, then scheduling sequence (FIFO among
// equal-time events). seq is unique, so this is a total order and the firing
// sequence is independent of the heap's internal arrangement.
func (a entry) less(b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

const arity = 4

// siftUp restores the heap property from slot i toward the root.
func (e *Engine) siftUp(i int) {
	h := e.heap
	ent := h[i]
	for i > 0 {
		p := (i - 1) / arity
		if !ent.less(h[p]) {
			break
		}
		h[i] = h[p]
		e.nodes[h[i].node].index = int32(i)
		i = p
	}
	h[i] = ent
	e.nodes[ent.node].index = int32(i)
}

// siftDown restores the heap property from slot i toward the leaves.
func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	ent := h[i]
	for {
		first := i*arity + 1
		if first >= n {
			break
		}
		min := first
		last := first + arity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h[c].less(h[min]) {
				min = c
			}
		}
		if !h[min].less(ent) {
			break
		}
		h[i] = h[min]
		e.nodes[h[i].node].index = int32(i)
		i = min
	}
	h[i] = ent
	e.nodes[ent.node].index = int32(i)
}

// removeAt deletes the heap entry at index i, preserving the heap property.
func (e *Engine) removeAt(i int) {
	last := len(e.heap) - 1
	if i != last {
		e.heap[i] = e.heap[last]
		e.heap = e.heap[:last]
		// The moved entry may need to go either way relative to its new
		// neighbourhood.
		e.siftDown(i)
		e.siftUp(i)
	} else {
		e.heap = e.heap[:last]
	}
}

// popMin removes the earliest entry, recycles its node, and returns the
// handler and fire time. The caller must have checked len(e.heap) > 0.
func (e *Engine) popMin() (Handler, Time) {
	root := e.heap[0]
	e.removeAt(0)
	id := root.node
	n := &e.nodes[id]
	fn := n.fn
	e.recycle(id, n)
	e.fired++
	return fn, root.at
}

// Step fires the single earliest pending event and returns true, or returns
// false if no events remain.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	fn, at := e.popMin()
	e.now = at
	fn(at)
	return true
}

// Run fires events in order until no events remain, the clock would pass
// until, or Stop is called. Events scheduled exactly at until do fire.
// On return the clock is advanced to until if the run exhausted the horizon,
// or to the last fired event otherwise.
func (e *Engine) Run(until Time) {
	e.stopped = false
	for !e.stopped && len(e.heap) > 0 && e.heap[0].at <= until {
		fn, at := e.popMin()
		e.now = at
		fn(at)
	}
	if e.now < until {
		e.now = until
	}
}

// RunAll fires events until the queue is empty or Stop is called.
func (e *Engine) RunAll() {
	e.stopped = false
	for !e.stopped && len(e.heap) > 0 {
		fn, at := e.popMin()
		e.now = at
		fn(at)
	}
}
