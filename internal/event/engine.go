// Package event provides the discrete-event simulation substrate used by the
// biglittle platform simulator: a monotonic simulated clock, a binary-heap
// event queue with stable FIFO ordering for simultaneous events, and
// cancellable event handles.
//
// All simulated components (scheduler ticks, governor sampling, task
// completions, workload wakeups, metric samplers) are driven by a single
// Engine so that every interleaving is deterministic for a given seed.
package event

import (
	"container/heap"
	"fmt"
)

// Time is a simulated timestamp in nanoseconds since the start of the run.
type Time int64

// Common durations, expressed in Time units.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Milliseconds returns t as a floating-point millisecond count.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds returns t as a floating-point second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string {
	return fmt.Sprintf("%.3fms", t.Milliseconds())
}

// Handler is a callback invoked when an event fires. The engine passes the
// firing time, which equals the engine's current time during the call.
type Handler func(now Time)

// Event is a scheduled occurrence. Events are ordered by time, then by
// scheduling sequence (FIFO among equal-time events).
type Event struct {
	at        Time
	seq       uint64
	fn        Handler
	index     int // heap index; -1 once removed
	cancelled bool
}

// At returns the time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired or been cancelled is a no-op. Cancel is safe to call from
// inside handlers.
func (e *Event) Cancel() { e.cancelled = true }

// Cancelled reports whether Cancel has been called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now     Time
	seq     uint64
	heap    eventHeap
	stopped bool
}

// New returns a fresh Engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled (possibly cancelled) events.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at absolute time at. Scheduling in the past (before
// Now) panics: it indicates a simulator bug, not a recoverable condition.
func (e *Engine) At(at Time, fn Handler) *Event {
	if at < e.now {
		panic(fmt.Sprintf("event: scheduling at %v before now %v", at, e.now))
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.heap, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn Handler) *Event { return e.At(e.now+d, fn) }

// Stop makes Run return after the currently-firing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the single earliest pending non-cancelled event and returns
// true, or returns false if no events remain.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ev := heap.Pop(&e.heap).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.fn(e.now)
		return true
	}
	return false
}

// Run fires events in order until no events remain, the clock would pass
// until, or Stop is called. Events scheduled exactly at until do fire.
// On return the clock is advanced to until if the run exhausted the horizon,
// or to the last fired event otherwise.
func (e *Engine) Run(until Time) {
	e.stopped = false
	for !e.stopped {
		// Peek for horizon check without popping cancelled noise first.
		idx := -1
		for len(e.heap) > 0 {
			if e.heap[0].cancelled {
				heap.Pop(&e.heap)
				continue
			}
			idx = 0
			break
		}
		if idx == -1 {
			break
		}
		if e.heap[0].at > until {
			break
		}
		ev := heap.Pop(&e.heap).(*Event)
		e.now = ev.at
		ev.fn(e.now)
	}
	if e.now < until {
		e.now = until
	}
}

// RunAll fires events until the queue is empty or Stop is called.
func (e *Engine) RunAll() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}
