package event

import "fmt"

// This file is the engine half of whole-simulation snapshot/restore (see
// DESIGN.md §9). A snapshot cannot serialize Handler closures, so restoring a
// queue works by re-binding: each subsystem re-schedules its own pending
// events with the original (at, seq) keys via ScheduleAt, after Reset has
// cleared the queue and forced the clock and counters. Because equal-time
// ordering is (at, seq) and seq values are reproduced exactly, the restored
// engine fires events in the same total order as the original.

// SetNow forces the simulated clock. It is used by the snapshot replay
// driver, which re-runs workload build code while stepping the clock through
// the recorded firing times so every re-created closure observes the same
// Now() it did originally.
func (e *Engine) SetNow(t Time) { e.now = t }

// Reset clears the event queue and forces the clock and the scheduled/fired
// counters, preparing the engine for handler re-binding. Every queued node is
// recycled (generation bumped), so Handles held by stale closures from a
// replayed build go inert rather than referring to recycled slots. The node
// slab and free list are retained.
func (e *Engine) Reset(now Time, seq, fired uint64) {
	for _, ent := range e.heap {
		id := ent.node
		e.recycle(id, &e.nodes[id])
	}
	e.heap = e.heap[:0]
	e.now = now
	e.seq = seq
	e.fired = fired
	e.stopped = false
}

// ScheduleAt schedules fn at absolute time at with an explicit scheduling
// sequence number, without advancing the engine's own sequence counter. It
// exists solely for snapshot restore, which re-inserts the pending events of
// a captured run under their original (at, seq) ordering keys; seq must be
// below the counter value passed to Reset and unique among re-inserted
// events, which restore guarantees by construction.
func (e *Engine) ScheduleAt(at Time, seq uint64, fn Handler) Handle {
	if at < e.now {
		panic(fmt.Sprintf("event: scheduling at %v before now %v", at, e.now))
	}
	if seq >= e.seq {
		panic(fmt.Sprintf("event: ScheduleAt seq %d not below counter %d", seq, e.seq))
	}
	id := e.alloc()
	n := &e.nodes[id]
	n.fn = fn
	e.heap = append(e.heap, entry{at: at, seq: seq, node: id})
	e.siftUp(len(e.heap) - 1)
	return Handle{e: e, at: at, id: id, gen: n.gen}
}

// EventSeq returns the scheduling sequence number of the pending event the
// handle refers to, or ok=false if the event already fired or was cancelled.
// Snapshot capture pairs it with Handle.At to record each pending event's
// full ordering key.
func (h Handle) EventSeq() (seq uint64, ok bool) {
	if h.e == nil {
		return 0, false
	}
	n := &h.e.nodes[h.id]
	if n.gen != h.gen || n.index < 0 {
		return 0, false
	}
	return h.e.heap[n.index].seq, true
}
