package event

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroValueReady(t *testing.T) {
	var e Engine
	fired := false
	e.At(5, func(now Time) { fired = true })
	e.Run(10)
	if !fired {
		t.Fatal("event did not fire")
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %v, want 10", e.Now())
	}
}

func TestOrdering(t *testing.T) {
	e := New()
	var got []Time
	for _, at := range []Time{30, 10, 20, 10, 5} {
		at := at
		e.At(at, func(now Time) { got = append(got, now) })
	}
	e.RunAll()
	want := []Time{5, 10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(7, func(Time) { got = append(got, i) })
	}
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-time events fired out of FIFO order at %d: %v", i, v)
		}
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := 0
	ev := e.At(10, func(Time) { fired++ })
	e.At(5, func(Time) { ev.Cancel() })
	e.RunAll()
	if fired != 0 {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	// Cancelling again must be a no-op.
	ev.Cancel()
}

func TestCancelAlreadyFired(t *testing.T) {
	e := New()
	var ev *Event
	ev = e.At(10, func(Time) {})
	e.RunAll()
	ev.Cancel() // must not panic
}

func TestHorizon(t *testing.T) {
	e := New()
	fired := make(map[Time]bool)
	for _, at := range []Time{10, 20, 30} {
		at := at
		e.At(at, func(now Time) { fired[now] = true })
	}
	e.Run(20)
	if !fired[10] || !fired[20] {
		t.Fatal("events at or before horizon must fire")
	}
	if fired[30] {
		t.Fatal("event past horizon fired")
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %v, want horizon 20", e.Now())
	}
	e.Run(40)
	if !fired[30] {
		t.Fatal("remaining event did not fire on later Run")
	}
	if e.Now() != 40 {
		t.Fatalf("Now = %v, want 40", e.Now())
	}
}

func TestScheduleFromHandler(t *testing.T) {
	e := New()
	var got []Time
	e.At(10, func(now Time) {
		got = append(got, now)
		e.After(5, func(now Time) { got = append(got, now) })
	})
	e.RunAll()
	if len(got) != 2 || got[0] != 10 || got[1] != 15 {
		t.Fatalf("got %v, want [10 15]", got)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.At(10, func(Time) {})
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(5, func(Time) {})
}

func TestStop(t *testing.T) {
	e := New()
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.At(i, func(Time) {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run(100)
	if count != 3 {
		t.Fatalf("fired %d events after Stop, want 3", count)
	}
}

// Property: for any set of scheduled times, events fire in sorted order and
// the engine clock is non-decreasing.
func TestPropertyOrdering(t *testing.T) {
	f := func(times []uint16) bool {
		e := New()
		var fired []Time
		last := Time(-1)
		monotone := true
		for _, u := range times {
			at := Time(u)
			e.At(at, func(now Time) {
				fired = append(fired, now)
				if now < last {
					monotone = false
				}
				last = now
			})
		}
		e.RunAll()
		if !monotone || len(fired) != len(times) {
			return false
		}
		want := make([]Time, len(times))
		for i, u := range times {
			want[i] = Time(u)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset fires exactly the complement.
func TestPropertyCancelSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 100; iter++ {
		e := New()
		n := 1 + rng.Intn(50)
		firedCount := 0
		events := make([]*Event, n)
		cancelled := make([]bool, n)
		for i := 0; i < n; i++ {
			events[i] = e.At(Time(rng.Intn(100)), func(Time) { firedCount++ })
		}
		wantFired := 0
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				events[i].Cancel()
				cancelled[i] = true
			} else {
				wantFired++
			}
		}
		e.RunAll()
		if firedCount != wantFired {
			t.Fatalf("iter %d: fired %d, want %d", iter, firedCount, wantFired)
		}
	}
}

func BenchmarkEngineChurn(b *testing.B) {
	e := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%100), func(Time) {})
		if e.Pending() > 1000 {
			e.Run(e.Now() + 50)
		}
	}
	e.RunAll()
}
