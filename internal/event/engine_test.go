package event

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroValueReady(t *testing.T) {
	var e Engine
	fired := false
	e.At(5, func(now Time) { fired = true })
	e.Run(10)
	if !fired {
		t.Fatal("event did not fire")
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %v, want 10", e.Now())
	}
}

func TestOrdering(t *testing.T) {
	e := New()
	var got []Time
	for _, at := range []Time{30, 10, 20, 10, 5} {
		e.At(at, func(now Time) { got = append(got, now) })
	}
	e.RunAll()
	want := []Time{5, 10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(7, func(Time) { got = append(got, i) })
	}
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-time events fired out of FIFO order at %d: %v", i, v)
		}
	}
}

// FIFO must survive node recycling: after a full drain, re-scheduled events
// reuse pooled records and must still fire in scheduling order at equal
// times.
func TestFIFOAcrossPoolReuse(t *testing.T) {
	e := New()
	for round := 0; round < 5; round++ {
		at := e.Now() + 10
		var got []int
		for i := 0; i < 200; i++ {
			i := i
			e.At(at, func(Time) { got = append(got, i) })
		}
		e.RunAll()
		if len(got) != 200 {
			t.Fatalf("round %d: fired %d events, want 200", round, len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("round %d: equal-time events fired out of FIFO order at %d: got %d", round, i, v)
			}
		}
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := 0
	ev := e.At(10, func(Time) { fired++ })
	if !ev.Pending() {
		t.Fatal("Pending() = false before run")
	}
	e.At(5, func(Time) {
		if !ev.Cancel() {
			t.Error("Cancel() = false on a pending event")
		}
	})
	e.RunAll()
	if fired != 0 {
		t.Fatal("cancelled event fired")
	}
	if ev.Pending() {
		t.Fatal("Pending() = true after Cancel")
	}
	// Cancelling again must be a no-op.
	if ev.Cancel() {
		t.Fatal("second Cancel() = true")
	}
}

func TestCancelAlreadyFired(t *testing.T) {
	e := New()
	ev := e.At(10, func(Time) {})
	e.RunAll()
	if ev.Cancel() {
		t.Fatal("Cancel() = true on a fired event")
	}
	if ev.Pending() {
		t.Fatal("Pending() = true after fire")
	}
}

// A stale handle must stay inert even after its pooled record has been
// recycled for a new event: cancelling the old handle must not cancel the
// new occupant.
func TestStaleHandleAfterReuse(t *testing.T) {
	e := New()
	old := e.At(1, func(Time) {})
	e.RunAll() // fires; record returns to the free list
	fired := false
	fresh := e.At(e.Now()+5, func(Time) { fired = true }) // reuses the record
	if old.Cancel() {
		t.Fatal("stale handle cancelled something")
	}
	if !fresh.Pending() {
		t.Fatal("fresh event lost to a stale handle")
	}
	e.RunAll()
	if !fired {
		t.Fatal("fresh event did not fire")
	}
}

// Cancel from inside handlers: a handler cancelling a later event, a handler
// cancelling an equal-time event scheduled after it, and a handler using its
// own (already-fired) handle.
func TestCancelInsideHandler(t *testing.T) {
	e := New()
	fired := make(map[string]bool)

	later := e.At(20, func(Time) { fired["later"] = true })
	var self Handle
	self = e.At(10, func(Time) {
		fired["self"] = true
		if self.Cancel() {
			t.Error("handler cancelled its own firing event")
		}
		if !later.Cancel() {
			t.Error("handler failed to cancel a later pending event")
		}
	})
	// Equal-time pair: the first handler cancels the second before it fires.
	var second Handle
	e.At(15, func(Time) { second.Cancel() })
	second = e.At(15, func(Time) { fired["second"] = true })

	e.RunAll()
	if !fired["self"] {
		t.Fatal("self event did not fire")
	}
	if fired["later"] {
		t.Fatal("cancelled later event fired")
	}
	if fired["second"] {
		t.Fatal("equal-time event cancelled from a handler still fired")
	}
}

// Cancelled events must leave the queue immediately, not at their fire time.
func TestMassCancelShrinksQueue(t *testing.T) {
	e := New()
	handles := make([]Handle, 1000)
	for i := range handles {
		handles[i] = e.At(Time(1_000_000+i), func(Time) {})
	}
	if e.Pending() != 1000 {
		t.Fatalf("Pending = %d, want 1000", e.Pending())
	}
	cancelled := 0
	for i := range handles {
		if i%3 != 0 {
			handles[i].Cancel()
			cancelled++
		}
	}
	if got, want := e.Pending(), 1000-cancelled; got != want {
		t.Fatalf("Pending = %d after cancelling %d, want %d (eager removal)", got, cancelled, want)
	}
	e.At(2_000_000, func(Time) {})
	e.RunAll()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after RunAll, want 0", e.Pending())
	}
}

func TestHorizon(t *testing.T) {
	e := New()
	fired := make(map[Time]bool)
	for _, at := range []Time{10, 20, 30} {
		e.At(at, func(now Time) { fired[now] = true })
	}
	e.Run(20)
	if !fired[10] || !fired[20] {
		t.Fatal("events at or before horizon must fire")
	}
	if fired[30] {
		t.Fatal("event past horizon fired")
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %v, want horizon 20", e.Now())
	}
	e.Run(40)
	if !fired[30] {
		t.Fatal("remaining event did not fire on later Run")
	}
	if e.Now() != 40 {
		t.Fatalf("Now = %v, want 40", e.Now())
	}
}

func TestScheduleFromHandler(t *testing.T) {
	e := New()
	var got []Time
	e.At(10, func(now Time) {
		got = append(got, now)
		e.After(5, func(now Time) { got = append(got, now) })
	})
	e.RunAll()
	if len(got) != 2 || got[0] != 10 || got[1] != 15 {
		t.Fatalf("got %v, want [10 15]", got)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.At(10, func(Time) {})
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(5, func(Time) {})
}

func TestStop(t *testing.T) {
	e := New()
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.At(i, func(Time) {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run(100)
	if count != 3 {
		t.Fatalf("fired %d events after Stop, want 3", count)
	}
}

// Property: for any set of scheduled times, events fire in sorted order and
// the engine clock is non-decreasing.
func TestPropertyOrdering(t *testing.T) {
	f := func(times []uint16) bool {
		e := New()
		var fired []Time
		last := Time(-1)
		monotone := true
		for _, u := range times {
			at := Time(u)
			e.At(at, func(now Time) {
				fired = append(fired, now)
				if now < last {
					monotone = false
				}
				last = now
			})
		}
		e.RunAll()
		if !monotone || len(fired) != len(times) {
			return false
		}
		want := make([]Time, len(times))
		for i, u := range times {
			want[i] = Time(u)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset fires exactly the complement.
func TestPropertyCancelSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 100; iter++ {
		e := New()
		n := 1 + rng.Intn(50)
		firedCount := 0
		events := make([]Handle, n)
		for i := 0; i < n; i++ {
			events[i] = e.At(Time(rng.Intn(100)), func(Time) { firedCount++ })
		}
		wantFired := 0
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				events[i].Cancel()
			} else {
				wantFired++
			}
		}
		e.RunAll()
		if firedCount != wantFired {
			t.Fatalf("iter %d: fired %d, want %d", iter, firedCount, wantFired)
		}
	}
}

// --- Reference-model equivalence -----------------------------------------

// refEngine is an obviously-correct unpooled reference: a flat slice scanned
// for the (time, seq) minimum on every step. It exists only to pin down the
// pooled engine's observable behaviour.
type refEngine struct {
	now    Time
	seq    uint64
	events []*refEvent
}

type refEvent struct {
	at        Time
	seq       uint64
	fn        Handler
	done      bool
	cancelled bool
}

func (r *refEngine) At(at Time, fn Handler) *refEvent {
	ev := &refEvent{at: at, seq: r.seq, fn: fn}
	r.seq++
	r.events = append(r.events, ev)
	return ev
}

func (r *refEngine) RunAll() {
	for {
		var min *refEvent
		for _, ev := range r.events {
			if ev.done || ev.cancelled {
				continue
			}
			if min == nil || ev.at < min.at || (ev.at == min.at && ev.seq < min.seq) {
				min = ev
			}
		}
		if min == nil {
			return
		}
		min.done = true
		r.now = min.at
		min.fn(r.now)
	}
}

// Property: for 10k random schedules — including cancels and re-schedules
// from inside handlers, which exercise pool reuse mid-run — the pooled
// engine fires the identical (time, tag) sequence as the unpooled reference.
func TestPooledMatchesReference(t *testing.T) {
	const total = 10_000

	type op struct {
		delay     Time // relative to the current clock when scheduled
		tag       int
		chainTag  int  // if >= 0, the handler schedules a follow-up with this tag
		chainAt   Time // follow-up delay
		cancelTag int  // if >= 0, the handler cancels this tag's event
	}
	rng := rand.New(rand.NewSource(42))
	ops := make([]op, total)
	for i := range ops {
		o := op{delay: Time(rng.Intn(5000)), tag: i, chainTag: -1, cancelTag: -1}
		switch rng.Intn(10) {
		case 0:
			o.chainTag = total + i
			o.chainAt = Time(rng.Intn(500))
		case 1:
			o.cancelTag = rng.Intn(total)
		}
		ops[i] = o
	}

	run := func(schedule func(at Time, fn Handler) (cancel func() bool), runAll func(), now func() Time) []string {
		var fired []string
		cancels := map[int]func() bool{}
		var exec func(o op) Handler
		exec = func(o op) Handler {
			return func(at Time) {
				fired = append(fired, timeTag(at, o.tag))
				if o.chainTag >= 0 {
					co := op{delay: o.chainAt, tag: o.chainTag, chainTag: -1, cancelTag: -1}
					cancels[co.tag] = schedule(now()+co.delay, exec(co))
				}
				if o.cancelTag >= 0 {
					if c := cancels[o.cancelTag]; c != nil {
						c()
					}
				}
			}
		}
		for _, o := range ops {
			cancels[o.tag] = schedule(now()+o.delay, exec(o))
		}
		runAll()
		return fired
	}

	e := New()
	pooled := run(
		func(at Time, fn Handler) func() bool { h := e.At(at, fn); return h.Cancel },
		e.RunAll,
		e.Now,
	)

	r := &refEngine{}
	reference := run(
		func(at Time, fn Handler) func() bool {
			ev := r.At(at, fn)
			return func() bool {
				was := !ev.done && !ev.cancelled
				ev.cancelled = true
				return was
			}
		},
		r.RunAll,
		func() Time { return r.now },
	)

	if len(pooled) != len(reference) {
		t.Fatalf("pooled fired %d events, reference %d", len(pooled), len(reference))
	}
	for i := range pooled {
		if pooled[i] != reference[i] {
			t.Fatalf("firing sequence diverges at %d: pooled %s, reference %s", i, pooled[i], reference[i])
		}
	}
}

func timeTag(at Time, tag int) string {
	return at.String() + "#" + itoa(tag)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func BenchmarkEngineChurn(b *testing.B) {
	e := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%100), func(Time) {})
		if e.Pending() > 1000 {
			e.Run(e.Now() + 50)
		}
	}
	e.RunAll()
}

func TestFiredScheduledCounters(t *testing.T) {
	e := New()
	if e.Fired() != 0 || e.Scheduled() != 0 {
		t.Fatalf("fresh engine: Fired=%d Scheduled=%d, want 0/0", e.Fired(), e.Scheduled())
	}
	for i := 0; i < 5; i++ {
		e.At(Time(i), func(Time) {})
	}
	h := e.At(100, func(Time) {})
	h.Cancel()
	e.RunAll()
	if e.Scheduled() != 6 {
		t.Fatalf("Scheduled = %d, want 6 (cancellation must not rewind)", e.Scheduled())
	}
	if e.Fired() != 5 {
		t.Fatalf("Fired = %d, want 5 (cancelled events never fire)", e.Fired())
	}
	// Step is the same fire path.
	e.At(200, func(Time) {})
	e.Step()
	if e.Fired() != 6 {
		t.Fatalf("Fired after Step = %d, want 6", e.Fired())
	}
}
