package event

import "testing"

func noopHandler(Time) {}

// The engine's schedule-and-fire cycle is the innermost loop of every
// simulation; it must not allocate in steady state. This is the allocation
// budget the perf-regression gate relies on (see DESIGN.md "Performance").
func TestZeroAllocSteadyStateFire(t *testing.T) {
	e := New()
	// Warm the node pool and heap capacity.
	for i := 0; i < 64; i++ {
		e.After(Time(i), noopHandler)
	}
	e.RunAll()

	if avg := testing.AllocsPerRun(1000, func() {
		e.After(10, noopHandler)
		e.After(5, noopHandler)
		e.Run(e.Now() + 20)
	}); avg != 0 {
		t.Fatalf("schedule+fire allocates %.1f objects per cycle, want 0", avg)
	}
}

// Cancel must also be allocation-free: the scheduler cancels a completion
// event on nearly every dispatch.
func TestZeroAllocCancel(t *testing.T) {
	e := New()
	for i := 0; i < 64; i++ {
		e.After(Time(i), noopHandler)
	}
	e.RunAll()

	if avg := testing.AllocsPerRun(1000, func() {
		h := e.After(10, noopHandler)
		h.Cancel()
	}); avg != 0 {
		t.Fatalf("schedule+cancel allocates %.1f objects per cycle, want 0", avg)
	}
}
