package event

import "testing"

// TestResetAndScheduleAt drives an engine partway, captures the pending
// (at, seq) keys, re-binds them onto a Reset engine, and asserts the firing
// order and counters match a run that was never interrupted.
func TestResetAndScheduleAt(t *testing.T) {
	type fireRec struct {
		tag string
		at  Time
	}
	build := func(e *Engine, log *[]fireRec) []Handle {
		rec := func(tag string) Handler {
			return func(now Time) { *log = append(*log, fireRec{tag, now}) }
		}
		hs := []Handle{
			e.At(10, rec("a")),
			e.At(30, rec("b")),
			e.At(30, rec("c")), // same time as b: seq must break the tie
			e.At(50, rec("d")),
			e.At(20, rec("e")),
		}
		return hs
	}

	// Reference: run straight through.
	var refLog []fireRec
	ref := New()
	build(ref, &refLog)
	ref.Run(60)

	// Interrupted: run to 20, capture, reset, re-bind, continue.
	var gotLog []fireRec
	e := New()
	hs := build(e, &gotLog)
	e.Run(20)
	if e.Fired() != 2 {
		t.Fatalf("fired = %d, want 2", e.Fired())
	}
	type pend struct {
		at  Time
		seq uint64
		tag string
	}
	tags := []string{"a", "b", "c", "d", "e"}
	var pending []pend
	for i, h := range hs {
		if seq, ok := h.EventSeq(); ok {
			pending = append(pending, pend{h.At(), seq, tags[i]})
		}
	}
	if len(pending) != 3 {
		t.Fatalf("pending = %d, want 3", len(pending))
	}

	now, seq, fired := e.Now(), e.Scheduled(), e.Fired()
	e.Reset(now, seq, fired)
	if e.Pending() != 0 || e.Now() != now || e.Scheduled() != seq || e.Fired() != fired {
		t.Fatalf("Reset left engine in wrong state")
	}
	// Old handles must be inert after Reset.
	for _, h := range hs {
		if h.Pending() {
			t.Fatalf("handle still pending after Reset")
		}
		if h.Cancel() {
			t.Fatalf("stale handle cancelled a recycled node")
		}
	}
	for _, p := range pending {
		tag := p.tag
		e.ScheduleAt(p.at, p.seq, func(now Time) {
			gotLog = append(gotLog, fireRec{tag, now})
		})
	}
	e.Run(60)

	if len(gotLog) != len(refLog) {
		t.Fatalf("fired %d events, want %d", len(gotLog), len(refLog))
	}
	for i := range refLog {
		if gotLog[i] != refLog[i] {
			t.Fatalf("event %d = %+v, want %+v", i, gotLog[i], refLog[i])
		}
	}
	if e.Fired() != ref.Fired() || e.Scheduled() != ref.Scheduled() {
		t.Fatalf("counters (%d,%d) != reference (%d,%d)",
			e.Fired(), e.Scheduled(), ref.Fired(), ref.Scheduled())
	}
}

// TestScheduleAtPanics pins the guard rails: past-time and out-of-range seq
// both panic (simulator bugs, not recoverable conditions).
func TestScheduleAtPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: did not panic", name)
			}
		}()
		f()
	}
	e := New()
	e.At(5, func(Time) {})
	e.Run(10)
	mustPanic("past time", func() { e.ScheduleAt(3, 0, func(Time) {}) })
	mustPanic("seq >= counter", func() { e.ScheduleAt(20, 1, func(Time) {}) })
}

// TestSetNow pins the clock override used by the replay driver.
func TestSetNow(t *testing.T) {
	e := New()
	e.SetNow(42)
	if e.Now() != 42 {
		t.Fatalf("Now = %v, want 42", e.Now())
	}
	h := e.At(42, func(Time) {})
	if !h.Pending() {
		t.Fatalf("event at forced now not pending")
	}
}
