package explore

import (
	"fmt"
	"io"

	"biglittle/internal/event"
)

// simDur renders a simulated duration at human scale.
func simDur(t event.Time) string {
	switch {
	case t >= event.Second:
		return fmt.Sprintf("%.3gs", t.Seconds())
	case t >= event.Millisecond:
		return fmt.Sprintf("%.3gms", t.Milliseconds())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Render writes the human-readable exploration report. Everything printed
// here is deterministic for fixed (space, options) — planned ladder costs,
// not actual ones — so a warm re-run's report is byte-identical to the
// cold run that populated the cache (runtime stats belong on stderr, see
// cli.PrintLabStats).
func (rep *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "explore: app=%s objective=%s space=%d configs (%s)\n",
		rep.App, rep.Objective, rep.SpaceSize, rep.Shape)
	mode := "screened all"
	if rep.Sampled {
		mode = fmt.Sprintf("sampled %d (budget)", rep.Screened)
	}
	fmt.Fprintf(w, "ladder: %d rungs, eta=%d, keep=%d, %s\n", len(rep.Rungs), rep.Eta, rep.Keep, mode)
	for i, rg := range rep.Rungs {
		fork := "from scratch"
		if rg.ForkAt > 0 {
			fork = "fork@" + simDur(rg.ForkAt)
		}
		fmt.Fprintf(w, "  rung %d: %4d candidates x %-8s (%s)  -> promoted %d, pruned %d\n",
			i, rg.Candidates, simDur(rg.Duration), fork, rg.Promoted, rg.Pruned)
	}
	if rep.SpaceSize > rep.Screened {
		fmt.Fprintf(w, "note: %d of %d configs never screened (budget sampling)\n",
			rep.SpaceSize-rep.Screened, rep.SpaceSize)
	}
	ratio := 0.0
	if rep.PlannedNs > 0 {
		ratio = float64(rep.ExhaustiveNs) / float64(rep.PlannedNs)
	}
	fmt.Fprintf(w, "planned simulation: %s vs exhaustive %s — %.1fx avoided\n",
		simDur(event.Time(rep.PlannedNs)), simDur(event.Time(rep.ExhaustiveNs)), ratio)
	fmt.Fprintf(w, "frontier (%d non-dominated of %d finalists):\n",
		len(rep.Frontier), rep.Rungs[len(rep.Rungs)-1].Candidates)
	for _, p := range rep.Frontier {
		fmt.Fprintf(w, "  [%4d] %-40s energy_j=%.3f delay_ms=%.3f %s=%.4g\n",
			p.Index, p.Desc, p.EnergyMJ/1000, p.DelayS*1000, rep.Objective, p.Score)
	}
	fmt.Fprintf(w, "winner: [%d] %s (%s=%.4g, energy_j=%.3f, delay_ms=%.3f)\n",
		rep.Winner.Index, rep.Winner.Desc, rep.Objective, rep.Winner.Score,
		rep.Winner.EnergyMJ/1000, rep.Winner.DelayS*1000)
}
