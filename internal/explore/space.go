// Package explore searches a declared configuration space for the Pareto
// front of (energy, delay) using successive halving: cheap low-fidelity
// runs — short durations, snapshot-forked from a shared prefix — screen the
// whole space, and only the survivors of each rung graduate to longer,
// higher-fidelity runs. Every rung goes through the lab runner, so results
// memoize in the content-addressed cache and a repeated exploration
// simulates nothing.
//
// The engine is deterministic: the same space, options, and seed produce
// the same ladder, the same survivors at every rung, and the same frontier,
// whatever the worker count or cache temperature.
package explore

import (
	"fmt"
	"strings"

	"biglittle/internal/cli"
	"biglittle/internal/core"
)

// Dim is one axis of the search space: an override key from the
// cli.ApplyOverrides vocabulary (up, down, sample-ms, target-load,
// governor, scheduler, cores, seed, ...) and the candidate values to try,
// in declared order.
type Dim struct {
	Key    string
	Values []string
}

// Space is the full cross product of its dimensions applied over a base
// configuration. Config(i) materializes one point; indices are mixed-radix
// with Dims[0] varying fastest, so the enumeration order is the nested-loop
// order a hand-written sweep would produce.
type Space struct {
	// Base is the configuration every point starts from. Its Duration is
	// the full-fidelity duration D of the exploration.
	Base core.Config
	Dims []Dim
}

// identityDims are override keys that change the simulation's snapshot
// identity (snapshot.State pins App, Seed, and Cores): a space varying one
// of these cannot share fork prefixes across points, so the engine screens
// it with short from-scratch runs instead.
var identityDims = map[string]bool{"cores": true, "seed": true}

// Size returns the number of points in the space.
func (s *Space) Size() int {
	if len(s.Dims) == 0 {
		return 0
	}
	n := 1
	for _, d := range s.Dims {
		n *= len(d.Values)
	}
	return n
}

// Validate checks the space once up front: at least one dimension, no
// empty value lists, no duplicate keys, and every single value applies
// cleanly to the base config — so a typo fails before any simulation, not
// at rung three.
func (s *Space) Validate() error {
	if len(s.Dims) == 0 {
		return fmt.Errorf("explore: empty space (no dimensions)")
	}
	seen := make(map[string]bool, len(s.Dims))
	for _, d := range s.Dims {
		if len(d.Values) == 0 {
			return fmt.Errorf("explore: dimension %q has no values", d.Key)
		}
		if seen[d.Key] {
			return fmt.Errorf("explore: dimension %q declared twice", d.Key)
		}
		seen[d.Key] = true
		for _, v := range d.Values {
			cfg := s.Base
			if err := cli.ApplyOverrides(&cfg, d.Key+"="+v); err != nil {
				return fmt.Errorf("explore: dimension %q: %w", d.Key, err)
			}
		}
	}
	return nil
}

// Config materializes point i of the space.
func (s *Space) Config(i int) (core.Config, error) {
	if i < 0 || i >= s.Size() {
		return core.Config{}, fmt.Errorf("explore: config index %d out of range [0, %d)", i, s.Size())
	}
	cfg := s.Base
	for _, d := range s.Dims {
		v := d.Values[i%len(d.Values)]
		i /= len(d.Values)
		if err := cli.ApplyOverrides(&cfg, d.Key+"="+v); err != nil {
			return core.Config{}, err
		}
	}
	return cfg, nil
}

// Desc renders point i as the override spec that produces it, e.g.
// "sample-ms=60,target-load=85" — valid input for bldiff's -a/-b flags.
func (s *Space) Desc(i int) string {
	parts := make([]string, len(s.Dims))
	for di, d := range s.Dims {
		parts[di] = d.Key + "=" + d.Values[i%len(d.Values)]
		i /= len(d.Values)
	}
	return strings.Join(parts, ",")
}

// Shape renders the space's dimensions compactly, e.g.
// "sample-ms(4) x target-load(3)".
func (s *Space) Shape() string {
	parts := make([]string, len(s.Dims))
	for i, d := range s.Dims {
		parts[i] = fmt.Sprintf("%s(%d)", d.Key, len(d.Values))
	}
	return strings.Join(parts, " x ")
}

// Forkable reports whether points of this space can resume from a shared
// snapshot prefix of Base: they can unless a dimension rewrites the
// snapshot identity (cores, seed).
func (s *Space) Forkable() bool {
	for _, d := range s.Dims {
		if identityDims[d.Key] {
			return false
		}
	}
	return true
}

// ParseDim parses one "key=v1,v2,v3" dimension spec (the blexplore -dim
// flag syntax).
func ParseDim(spec string) (Dim, error) {
	key, vals, ok := strings.Cut(spec, "=")
	key = strings.TrimSpace(key)
	if !ok || key == "" {
		return Dim{}, fmt.Errorf("explore: bad dimension %q (want key=v1,v2,...)", spec)
	}
	d := Dim{Key: key}
	for _, v := range strings.Split(vals, ",") {
		if v = strings.TrimSpace(v); v != "" {
			d.Values = append(d.Values, v)
		}
	}
	if len(d.Values) == 0 {
		return Dim{}, fmt.Errorf("explore: dimension %q has no values", key)
	}
	return d, nil
}

// ParseSpec parses a space specification: one "key = v1,v2,v3" dimension
// per line, '#' comments and blank lines ignored (the blexplore -space file
// format).
func ParseSpec(text string) ([]Dim, error) {
	var dims []Dim
	for ln, line := range strings.Split(text, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		if line = strings.TrimSpace(line); line == "" {
			continue
		}
		d, err := ParseDim(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		dims = append(dims, d)
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("explore: space spec declares no dimensions")
	}
	return dims, nil
}
