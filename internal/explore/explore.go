package explore

import (
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"sort"

	"biglittle/internal/core"
	"biglittle/internal/event"
	"biglittle/internal/lab"
)

// Objective is the scalar the search minimizes when it must rank
// candidates (the Pareto front itself is always bi-objective).
type Objective int

const (
	// Energy minimizes total energy consumed over the run.
	Energy Objective = iota
	// EDP minimizes the energy-delay product — the paper's preferred
	// single-number efficiency metric.
	EDP
	// Runtime minimizes delay (inverse performance): mean interaction
	// latency for latency apps, frame time for FPS apps.
	Runtime
)

func (o Objective) String() string {
	switch o {
	case Energy:
		return "energy"
	case EDP:
		return "edp"
	case Runtime:
		return "runtime"
	}
	return fmt.Sprintf("Objective(%d)", int(o))
}

// ParseObjective parses the -objective flag vocabulary.
func ParseObjective(s string) (Objective, error) {
	for _, o := range []Objective{Energy, EDP, Runtime} {
		if o.String() == s {
			return o, nil
		}
	}
	return 0, fmt.Errorf("explore: unknown objective %q (want energy, edp, or runtime)", s)
}

// Options tunes one exploration. The zero value (plus a Runner) is usable.
type Options struct {
	// Runner executes the rungs. Required; its cache makes repeated
	// explorations free and its Remote ships full-fidelity from-scratch
	// rungs to the fleet (fork-accelerated screening rungs always run
	// locally — snapshots mirror process-local closure state).
	Runner *lab.Runner
	// Objective ranks candidates within a rung (default Energy).
	Objective Objective
	// Budget caps the planned simulated time of the whole ladder, in
	// simulated nanoseconds. When the full space does not fit, rung 0 is
	// downsampled (seeded, deterministic) to the largest candidate count
	// whose ladder fits. 0 means no cap: screen every point.
	Budget event.Time
	// Eta is the halving factor: each screening rung keeps ~1/Eta of its
	// candidates and the next rung runs Eta times longer (default 4).
	Eta int
	// Keep is how many finalists graduate to the full-fidelity final rung
	// (default 4).
	Keep int
	// MinDuration floors the screening fidelity: no rung runs shorter than
	// this (default Base.Duration/16). Raise it when the app's behavior
	// needs longer than that to differentiate configurations.
	MinDuration event.Time
	// Seed drives rung-0 downsampling when Budget forces it. It has no
	// effect when the whole space is screened.
	Seed int64
	// Check audits the final full-fidelity rung with the invariant checker
	// (screening rungs are fork-accelerated and cannot be audited; if the
	// runner itself has Check set, forking is disabled and every rung is
	// audited from scratch instead).
	Check bool
	// Log, when non-nil, narrates the ladder at Info level.
	Log *slog.Logger
}

func (o Options) eta() int {
	if o.Eta < 2 {
		if o.Eta != 0 {
			return 2
		}
		return 4
	}
	return o.Eta
}

func (o Options) keep() int {
	if o.Keep < 1 {
		return 4
	}
	return o.Keep
}

// Rung is one level of the successive-halving ladder.
type Rung struct {
	// Candidates is the planned candidate count entering this rung.
	Candidates int
	// Duration is the simulated duration of each run at this rung.
	Duration event.Time
	// ForkAt, when positive, snapshot-accelerates the rung: one shared
	// prefix of the base config runs to this time and every candidate
	// resumes from it. 0 means from-scratch runs (always the final rung).
	ForkAt event.Time
}

// RungReport is what one executed rung did.
type RungReport struct {
	Candidates int
	Duration   event.Time
	ForkAt     event.Time
	// Promoted is how many candidates survived into the next rung (or, at
	// the final rung, onto the frontier); Pruned is the rest.
	Promoted int
	Pruned   int
	// SimulatedNs is the simulated time actually executed for this rung —
	// continuations, prefix builds, and remote runs included. Zero when the
	// whole rung was served from the result cache.
	SimulatedNs int64
}

// Point is one evaluated configuration.
type Point struct {
	// Index is the point's position in the space's enumeration order.
	Index int
	// Desc is the override spec producing it ("sample-ms=60,target-load=85").
	Desc string
	// EnergyMJ and DelayS are the two Pareto objectives: total energy in
	// millijoules and delay in seconds (inverse Result.Performance; +Inf
	// when the run produced no performance signal).
	EnergyMJ float64
	DelayS   float64
	// Score is the scalar objective value used for ranking.
	Score  float64
	Result core.Result
}

// Report is the outcome of one exploration.
type Report struct {
	App       string
	Objective Objective
	// SpaceSize is the declared space; Screened is how many points entered
	// rung 0 (smaller than SpaceSize only when Budget forced sampling).
	SpaceSize int
	Screened  int
	Sampled   bool
	Shape     string
	Eta, Keep int
	Rungs     []RungReport
	// Frontier is the Pareto front (energy vs delay) of the final
	// full-fidelity rung, sorted by ascending energy.
	Frontier []Point
	// Winner is the frontier point minimizing the scalar objective.
	Winner Point
	// PlannedNs is the ladder's simulated-time plan — what a cold cache
	// executes. SimulatedNs is what this run actually executed (0 when
	// fully warm). ExhaustiveNs is the cost of the full-fidelity
	// exhaustive sweep the ladder replaces: SpaceSize x Base.Duration.
	PlannedNs    int64
	SimulatedNs  int64
	ExhaustiveNs int64
}

// ladder plans the successive-halving rungs for n0 starting candidates:
// R screening rungs shrinking the field by eta each time while durations
// grow by eta toward D, then a from-scratch final rung of keep candidates
// at full fidelity. Screening rungs fork from a shared prefix when the
// space allows it, with the fork point sliding from 25% of the rung
// duration at rung 0 (broad screening wants most of the run after the
// fork, so every candidate's knobs get maximum influence on its measured
// tail) to 75% at the last screening rung (refinement among near-identical
// survivors amortizes a long shared prefix and isolates the knob's
// late-run effect).
func ladder(n0, keep, eta int, D, minDur event.Time, forkable bool) []Rung {
	if n0 <= keep {
		return []Rung{{Candidates: n0, Duration: D, ForkAt: 0}}
	}
	screens := int(math.Ceil(math.Log(float64(n0)/float64(keep)) / math.Log(float64(eta))))
	rungs := make([]Rung, 0, screens+1)
	for r := 0; r < screens; r++ {
		n := int(math.Ceil(float64(n0) / math.Pow(float64(eta), float64(r))))
		d := event.Time(float64(D) / math.Pow(float64(eta), float64(screens-r)))
		if d < minDur {
			d = minDur
		}
		if d > D {
			d = D
		}
		var at event.Time
		if forkable {
			frac := 0.25
			if screens > 1 {
				frac += 0.5 * float64(r) / float64(screens-1)
			}
			at = event.Time(float64(d) * frac)
			if at <= 0 || at >= d {
				at = 0
			}
		}
		rungs = append(rungs, Rung{Candidates: n, Duration: d, ForkAt: at})
	}
	return append(rungs, Rung{Candidates: keep, Duration: D, ForkAt: 0})
}

// plannedNs is the simulated time a cold cache spends executing the
// ladder: per rung, one shared prefix (if forked) plus each candidate's
// continuation (or full run).
func plannedNs(rungs []Rung) int64 {
	var total int64
	for _, rg := range rungs {
		per := int64(rg.Duration)
		if rg.ForkAt > 0 {
			per = int64(rg.Duration - rg.ForkAt)
			total += int64(rg.ForkAt)
		}
		total += int64(rg.Candidates) * per
	}
	return total
}

// measure extracts the two Pareto objectives from a result.
func measure(r core.Result) (energyMJ, delayS float64) {
	energyMJ = r.EnergyMJ
	if p := r.Performance(); p > 0 {
		delayS = 1 / p
	} else {
		delayS = math.Inf(1)
	}
	return
}

func (o Objective) score(energyMJ, delayS float64) float64 {
	switch o {
	case Runtime:
		return delayS
	case EDP:
		return energyMJ * delayS
	default:
		return energyMJ
	}
}

// paretoFront returns the non-dominated subset of pts: no other point is
// at least as good on both objectives and strictly better on one.
// Duplicate (energy, delay) pairs all survive. Output is sorted by
// ascending energy, ties by index, for deterministic reports.
func paretoFront(pts []Point) []Point {
	var front []Point
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i == j {
				continue
			}
			if q.EnergyMJ <= p.EnergyMJ && q.DelayS <= p.DelayS &&
				(q.EnergyMJ < p.EnergyMJ || q.DelayS < p.DelayS) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].EnergyMJ != front[j].EnergyMJ {
			return front[i].EnergyMJ < front[j].EnergyMJ
		}
		return front[i].Index < front[j].Index
	})
	return front
}

// survivors picks the candidates promoted out of a screening rung: the
// best `want` by scalar objective, plus up to `want` more from the rung's
// Pareto front — a point that is the cheapest or the fastest seen so far
// is not pruned by a middling scalar rank. The front bonus is capped
// because low-fidelity ties can put most of a large rung on the front,
// and an uncapped union would promote it wholesale and erase the ladder's
// savings; capped promotion keeps every rung within 2x its plan. Returned
// indices are sorted ascending so the next rung's job order is
// deterministic.
func survivors(pts []Point, want int, obj Objective) []int {
	byScore := make([]Point, len(pts))
	copy(byScore, pts)
	sort.Slice(byScore, func(i, j int) bool {
		if byScore[i].Score != byScore[j].Score {
			return byScore[i].Score < byScore[j].Score
		}
		return byScore[i].Index < byScore[j].Index
	})
	if want > len(byScore) {
		want = len(byScore)
	}
	keep := make(map[int]bool, 2*want)
	for _, p := range byScore[:want] {
		keep[p.Index] = true
	}
	onFront := make(map[int]bool)
	for _, p := range paretoFront(pts) {
		onFront[p.Index] = true
	}
	// Front members join in score order until the bonus budget is spent —
	// deterministic, and biased toward frontier points that are also good
	// on the scalar objective.
	bonus := want
	for _, p := range byScore[want:] {
		if bonus == 0 {
			break
		}
		if onFront[p.Index] && !keep[p.Index] {
			keep[p.Index] = true
			bonus--
		}
	}
	out := make([]int, 0, len(keep))
	for idx := range keep {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}

// fitBudget returns the largest rung-0 candidate count n0 <= size whose
// planned ladder fits the budget (binary search; ladder cost grows with
// n0). Returns an error when even the minimum ladder — the final rung
// alone — exceeds the budget.
func fitBudget(size, keep, eta int, D, minDur event.Time, forkable bool, budget event.Time) (int, error) {
	cost := func(n0 int) int64 { return plannedNs(ladder(n0, keep, eta, D, minDur, forkable)) }
	if cost(size) <= int64(budget) {
		return size, nil
	}
	lo, hi := keep, size // cost(lo) minimal; invariant: cost(hi) > budget
	if cost(lo) > int64(budget) {
		return 0, fmt.Errorf("explore: budget %v cannot cover even the final full-fidelity rung (%d x %v = %v); raise -budget or lower -keep",
			budget, keep, D, event.Time(cost(lo)))
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if cost(mid) <= int64(budget) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// Run explores the space: plan the ladder, execute each rung through the
// lab runner, promote survivors, and return the final rung's Pareto
// frontier. Deterministic for fixed (space, options): worker count, cache
// temperature, and fleet availability never change the outcome, only
// where and whether simulations execute.
func Run(space Space, opts Options) (*Report, error) {
	return run(space, opts, false)
}

// Exhaustive evaluates every point of the space at full fidelity from
// scratch and returns the same Report shape (one rung, no pruning before
// the frontier). Its jobs fingerprint identically to an exploration's
// final rung, so verifying an exploration against Exhaustive on a warm
// cache re-simulates only the points the ladder pruned.
func Exhaustive(space Space, opts Options) (*Report, error) {
	return run(space, opts, true)
}

func run(space Space, opts Options, exhaustive bool) (*Report, error) {
	r := opts.Runner
	if r == nil {
		return nil, fmt.Errorf("explore: Options.Runner is required")
	}
	if err := space.Validate(); err != nil {
		return nil, err
	}
	space.Base = space.Base.Normalized()
	D := space.Base.Duration
	size := space.Size()
	eta, keep := opts.eta(), opts.keep()
	minDur := opts.MinDuration
	if minDur <= 0 {
		minDur = D / 16
	}
	if minDur > D {
		minDur = D
	}
	// A checking runner audits every job from scratch; fork acceleration is
	// mutually exclusive with auditing, so the ladder degrades to short
	// from-scratch screening runs (still a large saving over exhaustive).
	forkable := space.Forkable() && !r.Check

	var rungs []Rung
	n0 := size
	if exhaustive {
		rungs = []Rung{{Candidates: size, Duration: D, ForkAt: 0}}
	} else {
		if opts.Budget > 0 {
			var err error
			if n0, err = fitBudget(size, keep, eta, D, minDur, forkable, opts.Budget); err != nil {
				return nil, err
			}
		}
		rungs = ladder(n0, keep, eta, D, minDur, forkable)
	}

	rep := &Report{
		App:          space.Base.App.Name,
		Objective:    opts.Objective,
		SpaceSize:    size,
		Screened:     n0,
		Sampled:      n0 < size,
		Shape:        space.Shape(),
		Eta:          eta,
		Keep:         keep,
		PlannedNs:    plannedNs(rungs),
		ExhaustiveNs: int64(size) * int64(D),
	}

	// Candidate indices entering rung 0: the whole space, or a seeded
	// deterministic sample of it when the budget forced downsampling.
	cands := make([]int, size)
	for i := range cands {
		cands[i] = i
	}
	if n0 < size {
		rng := rand.New(rand.NewSource(opts.Seed))
		perm := rng.Perm(size)
		cands = perm[:n0]
		sort.Ints(cands)
	}

	if opts.Log != nil {
		opts.Log.Info("explore start", "app", rep.App, "space", size,
			"screened", n0, "rungs", len(rungs), "objective", opts.Objective.String(),
			"forkable", forkable)
	}

	var finalPts []Point
	for ri, rg := range rungs {
		final := ri == len(rungs)-1
		var spec *lab.ForkSpec
		if rg.ForkAt > 0 {
			base := space.Base
			base.Duration = rg.Duration
			spec = &lab.ForkSpec{Base: base, At: rg.ForkAt}
		}
		jobs := make([]lab.Job, len(cands))
		for j, idx := range cands {
			cfg, err := space.Config(idx)
			if err != nil {
				return nil, err
			}
			cfg.Duration = rg.Duration
			jobs[j] = lab.Job{Config: cfg, Fork: spec}
		}

		before := r.Stats()
		results, err := runRung(r, jobs, final && opts.Check)
		if err != nil {
			return nil, fmt.Errorf("explore: rung %d: %w", ri, err)
		}
		after := r.Stats()

		pts := make([]Point, len(cands))
		for j, res := range results {
			e, d := measure(res)
			pts[j] = Point{
				Index:    cands[j],
				Desc:     space.Desc(cands[j]),
				EnergyMJ: e,
				DelayS:   d,
				Score:    opts.Objective.score(e, d),
				Result:   res,
			}
		}

		rr := RungReport{
			Candidates:  len(cands),
			Duration:    rg.Duration,
			ForkAt:      rg.ForkAt,
			SimulatedNs: rungSimNs(before, after, rg),
		}
		if final {
			finalPts = pts
			rep.Frontier = paretoFront(pts)
			rr.Promoted = len(rep.Frontier)
		} else {
			cands = survivors(pts, rungs[ri+1].Candidates, opts.Objective)
			rr.Promoted = len(cands)
		}
		rr.Pruned = rr.Candidates - rr.Promoted
		rep.Rungs = append(rep.Rungs, rr)
		if opts.Log != nil {
			opts.Log.Info("rung complete", "rung", ri, "candidates", rr.Candidates,
				"duration", rg.Duration.String(), "fork_at", rg.ForkAt.String(),
				"promoted", rr.Promoted, "pruned", rr.Pruned,
				"simulated_ns", rr.SimulatedNs)
		}
	}

	for _, rr := range rep.Rungs {
		rep.SimulatedNs += rr.SimulatedNs
	}

	// Winner: the frontier point minimizing the scalar objective (the
	// frontier always contains it, since it is non-dominated).
	if len(rep.Frontier) == 0 {
		// Every final point dominated is impossible (the front of a
		// non-empty set is non-empty); guard anyway.
		if len(finalPts) == 0 {
			return nil, fmt.Errorf("explore: no final candidates")
		}
		rep.Frontier = finalPts
	}
	rep.Winner = rep.Frontier[0]
	for _, p := range rep.Frontier[1:] {
		if p.Score < rep.Winner.Score ||
			(p.Score == rep.Winner.Score && p.Index < rep.Winner.Index) {
			rep.Winner = p
		}
	}
	return rep, nil
}

// runRung executes one rung's jobs, flipping the runner's auditor on for
// the duration when audit is requested (the final full-fidelity rung under
// Options.Check). The flip is restored even on error.
func runRung(r *lab.Runner, jobs []lab.Job, audit bool) ([]core.Result, error) {
	if audit && !r.Check {
		r.Check = true
		defer func() { r.Check = false }()
	}
	return r.RunAll(jobs)
}

// rungSimNs converts the runner's stats delta across one rung into
// simulated nanoseconds: from-scratch simulations (local or remote) cost
// the rung duration, fork continuations cost duration minus the fork
// point, and each prefix actually built costs the fork point once.
func rungSimNs(before, after lab.Stats, rg Rung) int64 {
	simulated := after.Simulated - before.Simulated
	remote := after.Remote - before.Remote
	forks := after.Forks - before.Forks
	prefixes := after.PrefixMisses - before.PrefixMisses
	scratch := simulated - forks + remote
	return scratch*int64(rg.Duration) +
		forks*int64(rg.Duration-rg.ForkAt) +
		prefixes*int64(rg.ForkAt)
}

// SameFrontier reports whether two reports found the same frontier (as
// point index sets, in order) and the same winner — the property the
// explore-smoke gate checks against an exhaustive sweep.
func SameFrontier(a, b *Report) bool {
	if len(a.Frontier) != len(b.Frontier) || a.Winner.Index != b.Winner.Index {
		return false
	}
	for i := range a.Frontier {
		if a.Frontier[i].Index != b.Frontier[i].Index {
			return false
		}
	}
	return true
}
