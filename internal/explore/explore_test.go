package explore

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"biglittle/internal/apps"
	"biglittle/internal/core"
	"biglittle/internal/event"
	"biglittle/internal/lab"
)

func testSpace(t *testing.T) Space {
	t.Helper()
	app, err := apps.ByName("bbench")
	if err != nil {
		t.Fatal(err)
	}
	base := core.DefaultConfig(app)
	base.Duration = 1 * event.Second
	return Space{
		Base: base,
		Dims: []Dim{
			{Key: "sample-ms", Values: []string{"20", "40", "60", "80"}},
			{Key: "target-load", Values: []string{"70", "80", "90", "95"}},
		},
	}
}

func TestSpaceEnumeration(t *testing.T) {
	s := testSpace(t)
	if got := s.Size(); got != 16 {
		t.Fatalf("Size = %d, want 16", got)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Dims[0] varies fastest: index 1 moves sample-ms, index 4 target-load.
	if got := s.Desc(0); got != "sample-ms=20,target-load=70" {
		t.Fatalf("Desc(0) = %q", got)
	}
	if got := s.Desc(1); got != "sample-ms=40,target-load=70" {
		t.Fatalf("Desc(1) = %q", got)
	}
	if got := s.Desc(4); got != "sample-ms=20,target-load=80" {
		t.Fatalf("Desc(4) = %q", got)
	}
	cfg, err := s.Config(6) // sample-ms=60, target-load=80
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Gov.SampleMs != 60 || cfg.Gov.TargetLoad != 80 {
		t.Fatalf("Config(6): SampleMs=%d TargetLoad=%d, want 60 and 80", cfg.Gov.SampleMs, cfg.Gov.TargetLoad)
	}
	if !s.Forkable() {
		t.Fatal("governor-tunable space must be forkable")
	}

	bad := s
	bad.Dims = append([]Dim{}, s.Dims...)
	bad.Dims = append(bad.Dims, Dim{Key: "sample-ms", Values: []string{"10"}})
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicate dim must fail, got %v", err)
	}
	bad = s
	bad.Dims = []Dim{{Key: "warp-factor", Values: []string{"9"}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown override key must fail Validate")
	}
	bad.Dims = []Dim{{Key: "sample-ms", Values: []string{"fast"}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("unparseable value must fail Validate")
	}
}

func TestParseSpec(t *testing.T) {
	dims, err := ParseSpec("# governor tunables\nsample-ms = 20, 40\n\ntarget-load=80,90 # late comment\n")
	if err != nil {
		t.Fatal(err)
	}
	want := []Dim{
		{Key: "sample-ms", Values: []string{"20", "40"}},
		{Key: "target-load", Values: []string{"80", "90"}},
	}
	if !reflect.DeepEqual(dims, want) {
		t.Fatalf("ParseSpec = %+v, want %+v", dims, want)
	}
	if _, err := ParseSpec("sample-ms\n"); err == nil {
		t.Fatal("missing '=' must fail")
	}
	if _, err := ParseSpec("# only comments\n"); err == nil {
		t.Fatal("empty spec must fail")
	}
}

func TestLadderShape(t *testing.T) {
	D := 16 * event.Second
	rungs := ladder(1024, 4, 4, D, D/16, true)
	if len(rungs) != 5 { // 4 screening rungs + final
		t.Fatalf("rungs = %d, want 5: %+v", len(rungs), rungs)
	}
	final := rungs[len(rungs)-1]
	if final.Candidates != 4 || final.Duration != D || final.ForkAt != 0 {
		t.Fatalf("final rung %+v, want 4 candidates at full fidelity from scratch", final)
	}
	for i := 0; i < len(rungs)-1; i++ {
		rg := rungs[i]
		if rg.ForkAt <= 0 || rg.ForkAt >= rg.Duration {
			t.Fatalf("rung %d fork point %v outside (0, %v)", i, rg.ForkAt, rg.Duration)
		}
		if i > 0 {
			if rg.Candidates >= rungs[i-1].Candidates {
				t.Fatalf("rung %d candidates %d did not shrink", i, rg.Candidates)
			}
			if rg.Duration < rungs[i-1].Duration {
				t.Fatalf("rung %d duration %v shrank", i, rg.Duration)
			}
			// Fork points slide later (as a fraction) up the ladder: early
			// broad screening forks early, late refinement forks late.
			prev := float64(rungs[i-1].ForkAt) / float64(rungs[i-1].Duration)
			cur := float64(rg.ForkAt) / float64(rg.Duration)
			if cur <= prev {
				t.Fatalf("rung %d fork fraction %.2f not later than rung %d's %.2f", i, cur, i-1, prev)
			}
		}
	}
	if planned := plannedNs(rungs); planned*10 > int64(1024)*int64(D) {
		t.Fatalf("planned ladder %d ns not >=10x cheaper than exhaustive %d ns", planned, int64(1024)*int64(D))
	}

	// A space no bigger than keep degenerates to one exhaustive rung.
	rungs = ladder(3, 4, 4, D, D/16, true)
	if len(rungs) != 1 || rungs[0].Candidates != 3 || rungs[0].ForkAt != 0 || rungs[0].Duration != D {
		t.Fatalf("degenerate ladder %+v", rungs)
	}
	// An unforkable space screens from scratch.
	for _, rg := range ladder(64, 4, 4, D, D/16, false) {
		if rg.ForkAt != 0 {
			t.Fatalf("unforkable ladder has fork rung %+v", rg)
		}
	}
}

func TestFitBudget(t *testing.T) {
	D := 16 * event.Second
	full := plannedNs(ladder(1024, 4, 4, D, D/16, true))
	n0, err := fitBudget(1024, 4, 4, D, D/16, true, event.Time(full))
	if err != nil || n0 != 1024 {
		t.Fatalf("ample budget: n0=%d err=%v, want the whole space", n0, err)
	}
	n0, err = fitBudget(1024, 4, 4, D, D/16, true, event.Time(full/2))
	if err != nil || n0 >= 1024 || n0 < 4 {
		t.Fatalf("half budget: n0=%d err=%v, want a proper subsample", n0, err)
	}
	if got := plannedNs(ladder(n0, 4, 4, D, D/16, true)); got > full/2 {
		t.Fatalf("fitted ladder costs %d, over the %d budget", got, full/2)
	}
	if _, err := fitBudget(1024, 4, 4, D, D/16, true, D); err == nil {
		t.Fatal("budget below the final rung must fail")
	}
}

func TestSurvivorsKeepParetoFront(t *testing.T) {
	// Point 3 has the worst score but the lowest energy: pruning it would
	// lose a frontier point forever. Point 2 is dominated by point 1 and
	// outside the top-2, so it is the one pruned.
	pts := []Point{
		{Index: 0, EnergyMJ: 10, DelayS: 1, Score: 1},
		{Index: 1, EnergyMJ: 9, DelayS: 2, Score: 2},
		{Index: 2, EnergyMJ: 9.5, DelayS: 2.5, Score: 3},
		{Index: 3, EnergyMJ: 1, DelayS: 9, Score: 9},
	}
	got := survivors(pts, 2, Runtime)
	if !reflect.DeepEqual(got, []int{0, 1, 3}) {
		t.Fatalf("survivors = %v, want [0 1 3] (top-2 by delay plus the energy-optimal frontier point)", got)
	}

	// The front bonus is capped at `want`: with every point non-dominated,
	// promotion tops out at 2*want, taking front members in score order.
	chain := make([]Point, 8)
	for i := range chain {
		chain[i] = Point{Index: i, EnergyMJ: float64(10 - i), DelayS: float64(1 + i), Score: float64(1 + i)}
	}
	got = survivors(chain, 2, Runtime)
	if !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Fatalf("capped survivors = %v, want [0 1 2 3] (top-2 plus 2 front members by score)", got)
	}
}

// faithfulSpace is a space whose low-fidelity screening preserves the
// full-fidelity ranking: fifa15's steady game loop reaches its regime
// quickly, so a truncated run scores governors the way a full run does.
// Phase-heavy apps (bbench, encoder) reorder under truncation and are
// deliberately not used for exhaustive-equality tests.
func faithfulSpace(t *testing.T) Space {
	t.Helper()
	app, err := apps.ByName("fifa15")
	if err != nil {
		t.Fatal(err)
	}
	base := core.DefaultConfig(app)
	base.Duration = 2 * event.Second
	return Space{
		Base: base,
		Dims: []Dim{
			{Key: "governor", Values: []string{
				"interactive", "performance", "powersave", "userspace",
				"ondemand", "conservative", "past",
			}},
		},
	}
}

// TestExploreMatchesExhaustive is the engine's core property: on a space
// small enough to enumerate, successive halving returns exactly the
// frontier an exhaustive full-fidelity sweep finds — same points, same
// winner, byte-identical winning result — for any seed (seeds only affect
// budget downsampling, which never triggers here).
func TestExploreMatchesExhaustive(t *testing.T) {
	space := faithfulSpace(t)
	for _, objective := range []Objective{Energy, EDP, Runtime} {
		for _, seed := range []int64{1, 7, 42} {
			opts := Options{Runner: &lab.Runner{Workers: 4}, Objective: objective, Eta: 2, Keep: 3, Seed: seed}
			rep, err := Run(space, opts)
			if err != nil {
				t.Fatal(err)
			}
			ex, err := Exhaustive(space, Options{Runner: &lab.Runner{Workers: 4}, Objective: objective})
			if err != nil {
				t.Fatal(err)
			}
			if !SameFrontier(rep, ex) {
				t.Fatalf("objective %v seed %d: explore frontier %v differs from exhaustive %v",
					objective, seed, indices(rep.Frontier), indices(ex.Frontier))
			}
			if !reflect.DeepEqual(rep.Winner.Result, ex.Winner.Result) {
				t.Fatalf("objective %v seed %d: winner result differs from exhaustive", objective, seed)
			}
			if len(rep.Rungs) < 2 {
				t.Fatalf("objective %v: ladder did not screen (%d rungs)", objective, len(rep.Rungs))
			}
			pruned := 0
			for _, rg := range rep.Rungs {
				pruned += rg.Pruned
			}
			if pruned == 0 {
				t.Fatalf("objective %v: nothing pruned — the ladder did no work", objective)
			}
			if rep.SimulatedNs >= ex.SimulatedNs {
				t.Fatalf("objective %v: explore simulated %d ns, exhaustive only %d", objective, rep.SimulatedNs, ex.SimulatedNs)
			}
		}
	}
}

func indices(pts []Point) []int {
	out := make([]int, len(pts))
	for i, p := range pts {
		out[i] = p.Index
	}
	return out
}

// TestExploreWarmRunSimulatesNothing pins the memoization property: a
// second exploration of the same space over the same cache serves every
// rung — continuations and prefixes included — from the result cache, and
// its rendered report is byte-identical to the cold run's.
func TestExploreWarmRunSimulatesNothing(t *testing.T) {
	space := testSpace(t)
	dir := t.TempDir()
	open := func() *lab.Runner {
		cache, err := lab.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return &lab.Runner{Workers: 2, Cache: cache}
	}

	cold := open()
	rep1, err := Run(space, Options{Runner: cold, Objective: EDP, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s := cold.Stats(); s.Simulated == 0 {
		t.Fatal("cold run simulated nothing")
	}
	if rep1.SimulatedNs == 0 {
		t.Fatal("cold report claims zero simulated time")
	}

	warm := open()
	rep2, err := Run(space, Options{Runner: warm, Objective: EDP, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s := warm.Stats(); s.Simulated != 0 || s.PrefixMisses != 0 {
		t.Fatalf("warm run Simulated=%d PrefixMisses=%d, want 0 and 0", s.Simulated, s.PrefixMisses)
	}
	if rep2.SimulatedNs != 0 {
		t.Fatalf("warm report SimulatedNs=%d, want 0", rep2.SimulatedNs)
	}

	var r1, r2 bytes.Buffer
	rep1.Render(&r1)
	rep2.Render(&r2)
	if r1.String() != r2.String() {
		t.Fatalf("warm report differs from cold:\n--- cold\n%s--- warm\n%s", r1.String(), r2.String())
	}
}

// TestExploreDeterministicAcrossWorkers: worker count changes scheduling,
// never the report.
func TestExploreDeterministicAcrossWorkers(t *testing.T) {
	space := testSpace(t)
	var outs []string
	for _, workers := range []int{1, 8} {
		rep, err := Run(space, Options{Runner: &lab.Runner{Workers: workers}, Eta: 2})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		rep.Render(&buf)
		outs = append(outs, buf.String())
	}
	if outs[0] != outs[1] {
		t.Fatalf("report depends on worker count:\n--- 1 worker\n%s--- 8 workers\n%s", outs[0], outs[1])
	}
}

// TestExploreIdentityDimDisablesFork: a dimension that rewrites snapshot
// identity (cores, seed) must screen from scratch — and still match
// exhaustive.
func TestExploreIdentityDimDisablesFork(t *testing.T) {
	seedSpace := Space{Dims: []Dim{{Key: "seed", Values: []string{"1", "2"}}}}
	if seedSpace.Forkable() {
		t.Fatal("seed dimension must make the space unforkable")
	}

	space := faithfulSpace(t)
	space.Dims = []Dim{
		{Key: "cores", Values: []string{"L4+B4", "L4+B2", "L4", "L2+B2", "L2"}},
		{Key: "governor", Values: []string{"interactive", "performance", "powersave"}},
	}
	if space.Forkable() {
		t.Fatal("cores dimension must make the space unforkable")
	}
	r := &lab.Runner{Workers: 4}
	rep, err := Run(space, Options{Runner: r, Eta: 2, Keep: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s := r.Stats(); s.Forks != 0 {
		t.Fatalf("Forks=%d, want 0 on an identity-varying space", s.Forks)
	}
	ex, err := Exhaustive(space, Options{Runner: &lab.Runner{Workers: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !SameFrontier(rep, ex) {
		t.Fatalf("frontier %v differs from exhaustive %v", indices(rep.Frontier), indices(ex.Frontier))
	}
}

// TestExploreCheckAuditsFinalRung: Options.Check audits exactly the final
// full-fidelity rung and restores the runner's Check flag afterwards.
func TestExploreCheckAuditsFinalRung(t *testing.T) {
	space := testSpace(t)
	r := &lab.Runner{Workers: 2}
	rep, err := Run(space, Options{Runner: r, Eta: 2, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Check {
		t.Fatal("runner Check flag not restored after the final rung")
	}
	s := r.Stats()
	finalists := rep.Rungs[len(rep.Rungs)-1].Candidates
	if s.Audited != int64(finalists) {
		t.Fatalf("Audited=%d, want the %d finalists", s.Audited, finalists)
	}
	if s.Forks == 0 {
		t.Fatal("screening rungs should still fork when only the final rung is audited")
	}

	// A runner with Check set globally audits everything — so the engine
	// must not fork at all.
	ar := &lab.Runner{Workers: 2, Check: true}
	if _, err := Run(space, Options{Runner: ar, Eta: 2}); err != nil {
		t.Fatal(err)
	}
	if s := ar.Stats(); s.Forks != 0 || s.Audited == 0 {
		t.Fatalf("checking runner: Forks=%d Audited=%d, want 0 forks and full auditing", s.Forks, s.Audited)
	}
}

// TestExploreBudgetSampling: a budget too small for the space downsamples
// rung 0 deterministically per seed.
func TestExploreBudgetSampling(t *testing.T) {
	space := testSpace(t)
	D := space.Base.Duration
	full := plannedNs(ladder(16, 4, 2, D, D/16, true))
	opts := Options{Runner: &lab.Runner{Workers: 4}, Eta: 2, Budget: event.Time(full / 2), Seed: 3}
	rep, err := Run(space, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sampled || rep.Screened >= 16 || rep.Screened < 4 {
		t.Fatalf("Sampled=%v Screened=%d, want a proper subsample of 16", rep.Sampled, rep.Screened)
	}
	if rep.PlannedNs > full/2 {
		t.Fatalf("planned %d ns exceeds the %d budget", rep.PlannedNs, full/2)
	}

	opts.Runner = &lab.Runner{Workers: 4}
	rep2, err := Run(space, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(indices(rep.Frontier), indices(rep2.Frontier)) {
		t.Fatal("same seed, same budget: sampling must be deterministic")
	}
}
